package amt

import (
	"bufio"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// SocketTransport is the multi-process data plane: a mesh of TCP or
// unix-domain connections between ranks, implementing the same Transport
// interface as the in-process wires. Each peer gets a dedicated writer
// goroutine draining a bounded outbound queue, so sends never block the
// scheduler and consecutive frames to the same destination coalesce into
// one buffered write + flush (the per-destination batching seam from the
// executor extends down to the syscall layer). Connections are asymmetric:
// a dialed connection is write-only (its first frame is an ATTACH preamble
// carrying rank/world/stamp), an accepted connection is read-only (served
// by Cluster.serveData). Dialing retries with exponential backoff and
// jitter; a broken or unavailable connection is never an error surfaced to
// the caller — queued and in-flight frames are simply lost, which the
// delivery layer (delivery.go) observes as wire loss and repairs with
// seq/ack/retransmit. Reliable() is therefore false by construction.
type SocketTransport struct {
	cl *Cluster

	mu    sync.Mutex
	peers []*peerLink // guarded by mu until setPeers, immutable after

	sink atomic.Pointer[func(Frame)]

	dropped        atomic.Int64
	messages       atomic.Int64
	bytesOut       atomic.Int64
	bytesIn        atomic.Int64
	reconnects     atomic.Int64
	handshakeFails atomic.Int64
	staleFenced    atomic.Int64 // inbound frames dropped by the generation fence

	closed atomic.Bool
	wg     sync.WaitGroup
}

// peerLink is the outbound half of one rank↔rank edge: a bounded queue of
// encoded frames drained by a single writer goroutine.
type peerLink struct {
	rank int
	addr string

	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]byte // guarded by mu
	qbytes int      // guarded by mu
	dead   bool     // guarded by mu: rank declared dead, stop dialing
	closed bool     // guarded by mu: transport shutting down
}

func newSocketTransport(cl *Cluster) *SocketTransport {
	return &SocketTransport{cl: cl}
}

// Name implements Transport.
func (t *SocketTransport) Name() string { return t.cl.cfg.Network }

// Reliable implements Transport: sockets lose whatever a broken connection
// had queued or in flight, so the delivery layer must engage.
func (t *SocketTransport) Reliable() bool { return false }

// Stats implements Transport.
func (t *SocketTransport) Stats() WireStats {
	return WireStats{
		Dropped:           t.dropped.Load(),
		Messages:          t.messages.Load(),
		BytesOut:          t.bytesOut.Load(),
		BytesIn:           t.bytesIn.Load(),
		Reconnects:        t.reconnects.Load(),
		HandshakeFailures: t.handshakeFails.Load(),
		StaleFenced:       t.staleFenced.Load(),
	}
}

// OnFrame registers the inbound frame handler. Frames decoded from peer
// connections are handed to fn on the reader goroutine; fn must not block
// indefinitely.
func (t *SocketTransport) OnFrame(fn func(Frame)) { t.sink.Store(&fn) }

func (t *SocketTransport) deliver(f Frame) {
	if fn := t.sink.Load(); fn != nil {
		(*fn)(f)
	}
}

func (t *SocketTransport) noteReceived(n int) { t.bytesIn.Add(int64(n)) }

// setPeers installs the data-plane address list at START and spawns one
// writer goroutine per remote peer.
//
//dashmm:detached writer goroutines exit when their link is closed; close() closes every link and t.wg.Wait joins them
func (t *SocketTransport) setPeers(addrs []string, dead []atomic.Bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.peers != nil {
		return
	}
	t.peers = make([]*peerLink, len(addrs))
	for r, addr := range addrs {
		if r == t.cl.cfg.Rank {
			continue
		}
		p := &peerLink{rank: r, addr: addr, dead: dead[r].Load()}
		p.cond = sync.NewCond(&p.mu)
		t.peers[r] = p
		t.wg.Add(1)
		go t.writerLoop(p)
	}
}

// Send implements Transport: encode the message as a wire frame and queue
// it on the destination's link. Unknown destinations, dead peers, a full
// queue, and a not-yet-started mesh all count as wire loss.
func (t *SocketTransport) Send(m Message) {
	f := Frame{
		Kind: m.Kind,
		Src:  m.Src,
		Dst:  m.Dst,
		// The adopted wire generation rides in the epoch's high 16 bits;
		// the receiver's fence (Cluster.serveData) strips it back off. The
		// run-level epoch in the low bits stays far below 2^16 (it counts
		// death verdicts), so nothing is lost to the split.
		Epoch:   (m.Epoch & 0xffff) | uint32(uint16(t.cl.gen.Load()))<<16,
		Seq:     m.Seq,
		Payload: m.Payload,
	}
	if m.Ack {
		f.Flags |= FlagAck
	}
	enc := AppendFrame(nil, &f)
	t.messages.Add(1)
	t.mu.Lock()
	var p *peerLink
	if m.Dst >= 0 && m.Dst < len(t.peers) {
		p = t.peers[m.Dst]
	}
	t.mu.Unlock()
	if p == nil {
		t.dropped.Add(1)
		return
	}
	p.mu.Lock()
	if p.dead || p.closed || len(p.queue) >= t.cl.cfg.MaxQueue {
		p.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	p.queue = append(p.queue, enc)
	p.qbytes += len(enc)
	p.mu.Unlock()
	p.cond.Signal()
	t.bytesOut.Add(int64(len(enc)))
}

// severPeer marks a rank dead: its queue is discarded and its writer stops
// dialing the corpse and exits.
func (t *SocketTransport) severPeer(rank int) {
	t.mu.Lock()
	var p *peerLink
	if t.peers != nil && rank >= 0 && rank < len(t.peers) {
		p = t.peers[rank]
	}
	t.mu.Unlock()
	if p == nil {
		return
	}
	p.mu.Lock()
	p.dead = true
	t.dropped.Add(int64(len(p.queue)))
	p.queue = nil
	p.qbytes = 0
	p.mu.Unlock()
	p.cond.Broadcast()
}

// revivePeer resurrects a re-admitted rank's outbound link at its new
// address: the severed link (if any) is retired and a fresh writer
// goroutine spawned. Frames queued for the corpse died with severPeer.
//
//dashmm:detached the fresh writer exits when its link is closed; close() closes every installed link and t.wg.Wait joins it
func (t *SocketTransport) revivePeer(rank int, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed.Load() || t.peers == nil || rank < 0 || rank >= len(t.peers) || rank == t.cl.cfg.Rank {
		return
	}
	if old := t.peers[rank]; old != nil {
		old.mu.Lock()
		old.closed = true
		t.dropped.Add(int64(len(old.queue)))
		old.queue = nil
		old.qbytes = 0
		old.mu.Unlock()
		old.cond.Broadcast()
	}
	p := &peerLink{rank: rank, addr: addr}
	p.cond = sync.NewCond(&p.mu)
	t.peers[rank] = p
	t.wg.Add(1)
	go t.writerLoop(p)
}

// close stops every writer goroutine and joins them (called by
// Cluster.Close).
func (t *SocketTransport) close() {
	if !t.closed.CompareAndSwap(false, true) {
		return
	}
	t.mu.Lock()
	peers := t.peers
	t.mu.Unlock()
	for _, p := range peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		p.closed = true
		p.queue = nil
		p.qbytes = 0
		p.mu.Unlock()
		p.cond.Broadcast()
	}
	t.wg.Wait()
}

// writerLoop owns one peer's connection: dial (with backoff + jitter, and
// an ATTACH preamble announcing who we are), then drain the queue in
// batches — one bufio flush per batch, so bursts of frames to the same
// destination coalesce into few syscalls. On a write error the connection
// is dropped and redialed; the batch that failed is lost (wire loss, the
// delivery layer retransmits).
func (t *SocketTransport) writerLoop(p *peerLink) {
	defer t.wg.Done()
	rng := rand.New(rand.NewSource(int64(t.cl.cfg.Rank)*1_000_003 + int64(p.rank)*7919 + 1))
	var conn net.Conn
	var bw *bufio.Writer
	dropConn := func() {
		if conn != nil {
			conn.Close()
			conn, bw = nil, nil
		}
	}
	defer dropConn()
	everConnected := false
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed && !p.dead {
			p.cond.Wait()
		}
		if p.closed || p.dead {
			t.dropped.Add(int64(len(p.queue)))
			p.queue = nil
			p.qbytes = 0
			p.mu.Unlock()
			return
		}
		batch := p.queue
		p.queue = nil
		p.qbytes = 0
		p.mu.Unlock()

		if conn == nil {
			conn = t.dialPeer(p, rng)
			if conn == nil {
				// Link closed or peer declared dead while dialing: the batch
				// is lost.
				t.dropped.Add(int64(len(batch)))
				continue
			}
			if everConnected {
				t.reconnects.Add(1)
			}
			everConnected = true
			bw = bufio.NewWriterSize(conn, 256<<10)
			attach := &Frame{Kind: ctlAttach, Src: t.cl.cfg.Rank, Dst: p.rank,
				Payload: encodeHello(t.cl.cfg, "")}
			if _, err := bw.Write(AppendFrame(nil, attach)); err != nil {
				dropConn()
				t.dropped.Add(int64(len(batch)))
				continue
			}
		}
		ok := true
		for _, enc := range batch {
			if _, err := bw.Write(enc); err != nil {
				ok = false
				break
			}
		}
		if ok {
			ok = bw.Flush() == nil
		}
		if !ok {
			// The peer hung up or the pipe broke mid-batch: everything
			// buffered or in flight may be gone. Count the whole batch as
			// dropped and redial on the next one.
			dropConn()
			t.dropped.Add(int64(len(batch)))
		}
	}
}

// dialPeer connects to a peer with exponential backoff and jitter,
// returning nil once the link is closed or the peer is declared dead.
func (t *SocketTransport) dialPeer(p *peerLink, rng *rand.Rand) net.Conn {
	backoff := t.cl.cfg.DialBase
	for {
		p.mu.Lock()
		stop := p.closed || p.dead
		p.mu.Unlock()
		if stop {
			return nil
		}
		conn, err := net.DialTimeout(t.cl.cfg.Network, p.addr, time.Second)
		if err == nil {
			return conn
		}
		// Full jitter on the current backoff step keeps simultaneous
		// redials from synchronizing against one recovering peer.
		sleep := backoff + time.Duration(rng.Int63n(int64(backoff)+1))
		time.Sleep(sleep)
		if backoff *= 2; backoff > t.cl.cfg.DialMax {
			backoff = t.cl.cfg.DialMax
		}
	}
}
