// Package dist implements the distribution policies that place the nodes of
// the implicit (LCO) DAG onto localities (paper, Section IV). The only hard
// constraint is the paper's: nodes tied to leaf data — the S and T bundles,
// the multipole expansion of a source leaf and the local expansion of a
// target leaf — are fixed to the locality that owns the underlying points
// (the a-priori coarse block distribution of each ensemble). Everything
// else is policy.
package dist

import (
	"repro/internal/dag"
	"repro/internal/tree"
)

// Policy assigns a locality to every node of the graph.
type Policy interface {
	Name() string
	Assign(g *dag.Graph, localities int)
}

// owner returns the block-distribution owner of a box: points are split
// into `localities` equal contiguous ranges in tree (Morton-ish) order, and
// a box belongs to the locality owning its middle point. This matches the
// paper's "sorted at a coarse level ... then distributed equally across
// localities".
func owner(b *tree.Box, total, localities int) int32 {
	if total == 0 {
		return 0
	}
	mid := (b.Lo + b.Hi) / 2
	o := mid * localities / total
	if o >= localities {
		o = localities - 1
	}
	return int32(o)
}

// Block places every node at the block-distribution owner of its box. It is
// the straightforward baseline.
type Block struct{}

// Name implements Policy.
func (Block) Name() string { return "block" }

// Assign implements Policy.
func (Block) Assign(g *dag.Graph, localities int) {
	ns := len(g.Source.Pts)
	nt := len(g.Target.Pts)
	for i := range g.Nodes {
		n := &g.Nodes[i]
		switch n.Kind {
		case dag.NodeS, dag.NodeM, dag.NodeIs:
			n.Locality = owner(n.Box, ns, localities)
		default:
			n.Locality = owner(n.Box, nt, localities)
		}
	}
}

// Cyclic places non-leaf-pinned nodes round-robin, ignoring locality of
// reference. It is a deliberately bad policy used by the ablation
// benchmarks to show how much placement matters.
type Cyclic struct{}

// Name implements Policy.
func (Cyclic) Name() string { return "cyclic" }

// Assign implements Policy.
func (Cyclic) Assign(g *dag.Graph, localities int) {
	ns := len(g.Source.Pts)
	nt := len(g.Target.Pts)
	rr := 0
	for i := range g.Nodes {
		n := &g.Nodes[i]
		switch {
		case n.Kind == dag.NodeS || n.Kind == dag.NodeT:
			// Point bundles stay with their data.
			if n.Kind == dag.NodeS {
				n.Locality = owner(n.Box, ns, localities)
			} else {
				n.Locality = owner(n.Box, nt, localities)
			}
		case n.Kind == dag.NodeM && n.Box.IsLeaf():
			n.Locality = owner(n.Box, ns, localities)
		case n.Kind == dag.NodeL && n.Box.IsLeaf():
			n.Locality = owner(n.Box, nt, localities)
		default:
			n.Locality = int32(rr % localities)
			rr++
		}
	}
}

// MinComm is the paper's merge-and-shift-aware policy: leaf-pinned nodes go
// to their data owner; source-side M and Is nodes go to the owner of their
// box; the local expansion of a target box goes to its owner; and the
// target-side intermediate (It) node — the node with the heaviest fan-in —
// is placed at the locality from which it receives the most bytes, breaking
// ties toward its box owner to keep the I->L edge local. This mirrors
// "the node representing the intermediate expansion of a target box is
// placed by trying to minimize communication cost while increasing slack
// time to hide communication latency".
type MinComm struct{}

// Name implements Policy.
func (MinComm) Name() string { return "mincomm" }

// Assign implements Policy.
func (MinComm) Assign(g *dag.Graph, localities int) {
	ns := len(g.Source.Pts)
	nt := len(g.Target.Pts)
	// First pass: everything but It at its box owner.
	for i := range g.Nodes {
		n := &g.Nodes[i]
		switch n.Kind {
		case dag.NodeS, dag.NodeM, dag.NodeIs:
			n.Locality = owner(n.Box, ns, localities)
		default:
			n.Locality = owner(n.Box, nt, localities)
		}
	}
	if localities == 1 {
		return
	}
	// Second pass: tally incoming bytes per It node per source locality.
	inBytes := make(map[int32]map[int32]int64)
	for i := range g.Nodes {
		n := &g.Nodes[i]
		for _, e := range n.Out {
			to := &g.Nodes[e.To]
			if to.Kind != dag.NodeIt {
				continue
			}
			m := inBytes[to.ID]
			if m == nil {
				m = make(map[int32]int64)
				inBytes[to.ID] = m
			}
			m[n.Locality] += int64(e.Bytes)
		}
	}
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if n.Kind != dag.NodeIt {
			continue
		}
		home := owner(n.Box, nt, localities)
		best := home
		var bestBytes int64 = -1
		if m := inBytes[n.ID]; m != nil {
			// The I->L edge to the local expansion weighs in for the home
			// locality. Scan localities in rank order — not map order — so
			// equal-byte ties resolve identically on every process: in
			// multi-process runs each rank computes this placement
			// independently and all copies must agree.
			m[home] += int64(g.Kernel.MLSize() * 16)
			for loc := int32(0); loc < int32(localities); loc++ {
				b, ok := m[loc]
				if !ok {
					continue
				}
				if b > bestBytes || (b == bestBytes && loc == home) {
					best, bestBytes = loc, b
				}
			}
		}
		n.Locality = best
	}
}

// Failover reassigns ownership after a locality crash: every entry of
// homes (the current node→locality assignment, one entry per DAG node)
// equal to dead is rewritten to one of the surviving ranks, round-robin by
// node index so the orphaned work spreads evenly across the survivors. The
// rule is a pure function of (homes, dead, survivors), so every participant
// of a recovery — and a re-execution of the same failure scenario — picks
// identical new owners, which is what makes crash recovery deterministic.
// It returns the number of reassigned nodes. survivors must be non-empty
// and must not contain dead.
func Failover(homes []int32, dead int32, survivors []int32) int {
	if len(survivors) == 0 {
		panic("dist: Failover with no surviving localities")
	}
	for _, s := range survivors {
		if s == dead {
			panic("dist: Failover survivor list contains the dead rank")
		}
	}
	moved := 0
	for i := range homes {
		if homes[i] == dead {
			homes[i] = survivors[i%len(survivors)]
			moved++
		}
	}
	return moved
}

// RemoteBytes sums the bytes of edges that cross localities under the
// current assignment — the communication volume a policy will incur.
func RemoteBytes(g *dag.Graph) int64 {
	var total int64
	for i := range g.Nodes {
		n := &g.Nodes[i]
		for _, e := range n.Out {
			if g.Nodes[e.To].Locality != n.Locality {
				total += int64(e.Bytes)
			}
		}
	}
	return total
}

// RemoteEdges counts edges that cross localities.
func RemoteEdges(g *dag.Graph) int64 {
	var total int64
	for i := range g.Nodes {
		n := &g.Nodes[i]
		for _, e := range n.Out {
			if g.Nodes[e.To].Locality != n.Locality {
				total++
			}
		}
	}
	return total
}
