package kernel

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// Operator-table export/import for the persistent plan store (see
// internal/serve/store.go). Two families of lazily built dense operators
// make a kernel warm:
//
//   - the translation matrices in base.xl — the eight M->M and L->L
//     parent/child octant operators and the per-(side, lattice-offset)
//     list-2 M->L operators — each costing MLSize() spectral projections;
//   - the plane-wave M->I and I->L projection matrices, built once per
//     (level, direction) by the exponential list-2 pipeline the DAG uses
//     by default (see planewave.go).
//
// A warm server spills both so a restarted process replays them instead of
// rebuilding.

// OperatorTable is one cached dense operator matrix in serializable form.
// Kinds 0-2 (M->M, L->L, M->L) mirror the internal xlKey: SideBits is the
// math.Float64bits of the box side the operator was built for (so the key
// survives a round trip through disk bit-exactly) and DX/DY/DZ are the
// octant or lattice offset. Kinds 3-4 are the plane-wave M->I and I->L
// matrices: DX carries the direction, DY the tree level.
type OperatorTable struct {
	Kind       uint8
	SideBits   uint64
	DX, DY, DZ int8
	Mx         []complex128
}

// Plane-wave table kinds, above the xlKey kinds (0 M->M, 1 L->L, 2 M->L).
const (
	pwM2IKind = 3
	pwI2LKind = 4
)

// OperatorCache is implemented by the built-in kernels: it exposes the
// dense-operator cache for persistence. Callers type-assert, matching how
// the accuracy tests reach SetM2LCache.
type OperatorCache interface {
	// ExportOperators snapshots every cached dense operator, in a
	// deterministic order (so spilled records are byte-stable).
	ExportOperators() []OperatorTable
	// ImportOperators seeds the cache with previously exported operators.
	// Tables whose matrix size does not match the kernel's MLSize are
	// ignored (a record from a different accuracy must not corrupt the
	// cache). Not safe to call concurrently with operator use.
	ImportOperators([]OperatorTable)
}

// ExportOperators implements OperatorCache.
func (b *base) ExportOperators() []OperatorTable {
	var out []OperatorTable
	b.xl.Range(func(k, v any) bool {
		key := k.(xlKey)
		out = append(out, OperatorTable{
			Kind:     key.kind,
			SideBits: key.sideBits,
			DX:       key.ox,
			DY:       key.oy,
			DZ:       key.oz,
			Mx:       v.([]complex128),
		})
		return true
	})
	if b.pw != nil {
		for l, lv := range b.pw.levels {
			for dir := geom.Direction(0); dir < geom.NumDirections; dir++ {
				if lv.m2i[dir] == nil {
					continue
				}
				sideBits := math.Float64bits(lv.side)
				out = append(out,
					OperatorTable{Kind: pwM2IKind, SideBits: sideBits, DX: int8(dir), DY: int8(l), Mx: lv.m2i[dir]},
					OperatorTable{Kind: pwI2LKind, SideBits: sideBits, DX: int8(dir), DY: int8(l), Mx: lv.i2l[dir]})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, c := out[i], out[j]
		if a.Kind != c.Kind {
			return a.Kind < c.Kind
		}
		if a.SideBits != c.SideBits {
			return a.SideBits < c.SideBits
		}
		if a.DX != c.DX {
			return a.DX < c.DX
		}
		if a.DY != c.DY {
			return a.DY < c.DY
		}
		return a.DZ < c.DZ
	})
	return out
}

// ImportOperators implements OperatorCache. Plane-wave tables (whose sizes
// depend on the per-level quadrature rule) are parked in pwPending and
// adopted — after a size check — when Prepare builds the level tables.
func (b *base) ImportOperators(ts []OperatorTable) {
	sq := b.MLSize()
	for _, t := range ts {
		switch t.Kind {
		case pwM2IKind, pwI2LKind:
			if b.pwPending == nil {
				b.pwPending = make(map[xlKey][]complex128)
			}
			b.pwPending[xlKey{kind: t.Kind, sideBits: t.SideBits, ox: t.DX}] = t.Mx
		default:
			if len(t.Mx) != sq*sq {
				continue
			}
			key := xlKey{kind: t.Kind, sideBits: t.SideBits, ox: t.DX, oy: t.DY, oz: t.DZ}
			b.xl.Store(key, t.Mx)
		}
	}
}
