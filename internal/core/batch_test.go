package core

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/geom"
	"repro/internal/kernel"
	"repro/internal/points"
)

// batchTestPlan builds a plan over the given distribution and kernel, plus
// its sequential reference.
func batchTestPlan(t *testing.T, method dag.Method, d points.Distribution, k kernel.Kernel, n int) (*Plan, []float64, []float64) {
	t.Helper()
	sp := points.Generate(d, n, 1)
	tp := points.Generate(d, n, 2)
	q := points.Charges(n, 3)
	plan, err := NewPlan(sp, tp, k, Options{Method: method, Threshold: 40})
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.EvaluateSequential(q)
	if err != nil {
		t.Fatal(err)
	}
	return plan, q, want
}

// TestBatchedEvaluateMatchesPerEdge is the tentpole accuracy gate: on both
// geometries and both kernels, for the method with dense M->L list-2
// traffic (Basic) and the default plane-wave method (Advanced, where only
// the near field batches), the batched evaluation must agree with the
// forced per-edge evaluation and with the sequential reference to 1e-12.
func TestBatchedEvaluateMatchesPerEdge(t *testing.T) {
	p := kernel.OrderForDigits(3)
	for _, kc := range []struct {
		name string
		k    kernel.Kernel
	}{
		{"laplace", kernel.NewLaplace(p)},
		{"yukawa", kernel.NewYukawa(p, 4.0)},
	} {
		for _, d := range []struct {
			name string
			dist points.Distribution
		}{
			{"cube", points.Cube},
			{"sphere", points.Sphere},
		} {
			for _, m := range []dag.Method{dag.Basic, dag.Advanced} {
				plan, q, want := batchTestPlan(t, m, d.dist, kc.k, 1500)
				if m == dag.Basic && len(plan.batches.M2L) == 0 {
					t.Fatalf("%s/%s/%v: no M2L batches built", kc.name, d.name, m)
				}
				if len(plan.batches.P2P) == 0 {
					t.Fatalf("%s/%s/%v: no P2P batches built", kc.name, d.name, m)
				}
				batched, _, err := plan.Evaluate(q, ExecOptions{Localities: 2, Workers: 2})
				if err != nil {
					t.Fatalf("%s/%s/%v batched: %v", kc.name, d.name, m, err)
				}
				perEdge, _, err := plan.Evaluate(q, ExecOptions{Localities: 2, Workers: 2, PerEdge: true})
				if err != nil {
					t.Fatalf("%s/%s/%v per-edge: %v", kc.name, d.name, m, err)
				}
				assertSame(t, batched, perEdge, 1e-12)
				assertSame(t, batched, want, 1e-9)
			}
		}
	}
}

// TestBatchedMixedLatticeFallsBackPerEdge is the end-to-end mirror of
// kernel.TestM2LCacheFallsBackOffLattice: with part of the list-2 geometry
// pushed off the interaction lattice, BuildBatches must leave those edges
// unbatched, the executor must run the resulting batched/per-edge mix, and
// the potentials must match a fully per-edge evaluation to 1e-12.
func TestBatchedMixedLatticeFallsBackPerEdge(t *testing.T) {
	plan, q, _ := testPlan(t, dag.Basic, 1500)

	// Nudge some source boxes with list-2 edges off the lattice. The graph
	// and the sequential reference both read the same mutated centers, so
	// this stays a pure batched-vs-per-edge comparison.
	perturbed := 0
	for i := range plan.Graph.Nodes {
		n := &plan.Graph.Nodes[i]
		if n.Kind != dag.NodeM || len(n.Out) == 0 || n.Out[0].Op != dag.OpM2L {
			continue
		}
		if perturbed%3 == 0 {
			n.Box.Center = n.Box.Center.Add(geom.Point{X: 0.3071 * n.Box.Side})
		}
		perturbed++
	}
	if perturbed < 3 {
		t.Fatalf("only %d list-2 sources found, fixture too small", perturbed)
	}
	plan.batches = dag.BuildBatches(plan.Graph, plan.Kernel)

	var batchedEdges, fallbackEdges int
	for i := range plan.Graph.Nodes {
		for _, e := range plan.Graph.Nodes[i].Out {
			if e.Op != dag.OpM2L {
				continue
			}
			if e.Batched {
				batchedEdges++
			} else {
				fallbackEdges++
			}
		}
	}
	if batchedEdges == 0 || fallbackEdges == 0 {
		t.Fatalf("want a batched/per-edge mix, got %d batched, %d fallback", batchedEdges, fallbackEdges)
	}

	got, _, err := plan.Evaluate(q, ExecOptions{Localities: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := plan.Evaluate(q, ExecOptions{Localities: 2, Workers: 2, PerEdge: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, got, want, 1e-12)
}

// TestBatchedSteadyStateAllocsPerEdge extends the zero-allocation gate to
// the batched hot path, on the method whose list-2 traffic is dense M->L.
func TestBatchedSteadyStateAllocsPerEdge(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	plan, q, _ := testPlan(t, dag.Basic, 2500)
	if plan.batches.Empty() {
		t.Fatal("no batches built for the Basic-method plan")
	}
	pe, err := plan.NewParallelEvaluation(ExecOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := pe.Run(q); err != nil {
			t.Fatal(err)
		}
	}
	edges := float64(plan.Graph.NumEdges())
	allocs := testing.AllocsPerRun(3, func() {
		if _, _, err := pe.Run(q); err != nil {
			t.Fatal(err)
		}
	})
	perEdge := allocs / edges
	t.Logf("allocs/run = %.0f over %.0f edges -> %.4f per edge", allocs, edges, perEdge)
	if perEdge > 0.05 {
		t.Errorf("batched steady-state allocations %.4f per edge exceed 0.05 (%.0f per run)", perEdge, allocs)
	}
}

// TestBatchedCrashRecoveryMatchesSequential crosses the tentpole with the
// recovery subsystem: under the Basic method every list-2 edge belongs to a
// batch, a rank dies mid-run, and the per-edge applied bits plus the batch
// demotion scan must still deliver exactly-once semantics to 1e-12.
func TestBatchedCrashRecoveryMatchesSequential(t *testing.T) {
	plan, q, want := testPlan(t, dag.Basic, 1500)
	if plan.batches.Empty() {
		t.Fatal("no batches built for the Basic-method plan")
	}
	for _, at := range []float64{0.25, 0.50, 0.75} {
		got, rep, err := plan.Evaluate(q, ExecOptions{
			Localities: 4, Workers: 2, Seed: 7,
			Detector: testDetector(),
			Crash:    []CrashPlan{{Rank: 1, At: at}},
		})
		if err != nil {
			t.Fatalf("crash at %.0f%%: %v", at*100, err)
		}
		assertSame(t, got, want, 1e-12)
		if r := rep.Recovery; r.RanksKilled != 1 || r.Recoveries != 1 {
			t.Errorf("at %.0f%%: killed=%d recoveries=%d, want 1/1", at*100, r.RanksKilled, r.Recoveries)
		}
	}
}
