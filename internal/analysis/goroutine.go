package analysis

import (
	"go/ast"
	"strings"
)

// Goroutine enforces goroutine hygiene in the runtime packages: every `go`
// statement must be lexically paired with teardown machinery in the same
// function — a sync.WaitGroup Wait, a close(...) of a done/stop channel, or
// a channel receive — or the function must carry `//dashmm:detached reason`
// explicitly declaring the goroutine fire-and-forget.
//
// The pairing is lexical, not a leak proof: the point is that whoever reads
// the function sees either the shutdown path or an annotated, justified
// absence of one. Goroutines that outlive their spawner silently are how the
// runtime's earlier shutdown hangs happened.
type Goroutine struct {
	// Packages lists the import-path suffixes the checker applies to.
	Packages []string
}

// NewGoroutine returns the goroutine-hygiene analyzer with the default
// package list (the runtime layers that own goroutines).
func NewGoroutine() *Goroutine {
	return &Goroutine{Packages: []string{
		"internal/amt",
		"internal/core",
		"internal/serve",
	}}
}

// Name implements Analyzer.
func (*Goroutine) Name() string { return "goroutine-hygiene" }

// Doc implements Analyzer.
func (*Goroutine) Doc() string {
	return "go statements need lexical teardown (Wait/close/receive) or //dashmm:detached"
}

// applies reports whether the pass's package is on the checker's list.
func (c *Goroutine) applies(p *Pass) bool {
	for _, suffix := range c.Packages {
		if p.Path == suffix || strings.HasSuffix(p.Path, "/"+suffix) {
			return true
		}
	}
	return false
}

// Run implements Analyzer.
func (c *Goroutine) Run(p *Pass) {
	if !c.applies(p) {
		return
	}
	walkFuncs(p, func(_ *ast.File, fn *ast.FuncDecl) {
		var goStmts []*ast.GoStmt
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				goStmts = append(goStmts, g)
			}
			return true
		})
		if len(goStmts) == 0 {
			return
		}
		if rest, ok := funcHasDirective(fn, "dashmm:detached"); ok {
			if strings.TrimSpace(rest) == "" {
				p.Report(fn.Pos(), "//dashmm:detached needs a reason: //dashmm:detached <why no teardown>")
			}
			return
		}
		if hasTeardown(fn.Body) {
			return
		}
		for _, g := range goStmts {
			p.Report(g.Pos(),
				"go statement in %s has no lexical teardown (WaitGroup Wait, close, or channel receive); add one or annotate the function //dashmm:detached reason",
				funcName(fn))
		}
	})
}

// hasTeardown reports whether the body lexically contains any of the
// accepted teardown shapes: a .Wait() call, a close(...) call, or a channel
// receive (<-ch as an expression or in a select).
func hasTeardown(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch node := n.(type) {
		case *ast.CallExpr:
			switch fun := node.Fun.(type) {
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Wait" {
					found = true
				}
			case *ast.Ident:
				if fun.Name == "close" {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if node.Op.String() == "<-" {
				found = true
			}
		}
		return !found
	})
	return found
}
