package kernel

import "repro/internal/geom"

// Gradient (field/force) evaluation. Production multipole libraries expose
// the gradient of the potential alongside the potential itself — for the
// Laplace kernel this is the electric field or gravitational acceleration.
// Only the three target-facing operators need gradient forms; everything
// upstream of them is unchanged expansion algebra.
//
// The direct operator uses the analytic kernel derivative. The expansion
// evaluations (M->T, L->T) use symmetric differences of the expansion's
// field with a step proportional to the target's distance from the
// expansion center; the differencing error is far below the expansion
// truncation error at every tested order (see gradient_test.go).

// GradKernel is implemented by kernels that can evaluate potential
// gradients. Both built-in kernels implement it.
type GradKernel interface {
	Kernel
	// S2TGrad accumulates the direct potential and its gradient at the
	// targets.
	S2TGrad(spts []geom.Point, q []float64, tpts []geom.Point, pot []float64, grad []geom.Point)
	// M2TGrad evaluates a multipole expansion and its gradient at the
	// targets.
	M2TGrad(c geom.Point, m []complex128, tpts []geom.Point, pot []float64, grad []geom.Point)
	// L2TGrad evaluates a local expansion and its gradient at the targets.
	L2TGrad(c geom.Point, l []complex128, tpts []geom.Point, pot []float64, grad []geom.Point)
}

// S2TGrad implements GradKernel using dG/dr supplied by the concrete
// kernel.
func (b *base) S2TGrad(spts []geom.Point, q []float64, tpts []geom.Point, pot []float64, grad []geom.Point) {
	for ti, t := range tpts {
		var acc float64
		var g geom.Point
		for si, s := range spts {
			d := t.Sub(s)
			r := d.Norm()
			if r == 0 {
				continue
			}
			acc += q[si] * b.directF(r)
			// grad G = G'(r) * (t-s)/r
			f := q[si] * b.gradF(r) / r
			g.X += f * d.X
			g.Y += f * d.Y
			g.Z += f * d.Z
		}
		pot[ti] += acc
		grad[ti] = grad[ti].Add(g)
	}
}

// M2TGrad implements GradKernel.
func (b *base) M2TGrad(c geom.Point, m []complex128, tpts []geom.Point, pot []float64, grad []geom.Point) {
	b.expGrad(c, m, b.radOut, tpts, pot, grad)
}

// L2TGrad implements GradKernel.
func (b *base) L2TGrad(c geom.Point, l []complex128, tpts []geom.Point, pot []float64, grad []geom.Point) {
	b.expGrad(c, l, b.radReg, tpts, pot, grad)
}

// expGrad evaluates an expansion and its symmetric-difference gradient.
func (b *base) expGrad(c geom.Point, coeff []complex128, rf radialFunc, tpts []geom.Point, pot []float64, grad []geom.Point) {
	ws := b.wsp.get(b)
	defer b.wsp.put(ws)
	for ti, t := range tpts {
		pot[ti] += real(b.evalExpansion(ws, c, coeff, rf, t))
		// Step scaled to the evaluation geometry: small relative to the
		// distance from the center, large relative to float64 granularity.
		h := 1e-6 * t.Dist(c)
		if h == 0 {
			h = 1e-12
		}
		inv := 1 / (2 * h)
		var g geom.Point
		g.X = inv * real(b.evalExpansion(ws, c, coeff, rf, t.Add(geom.Point{X: h}))-
			b.evalExpansion(ws, c, coeff, rf, t.Sub(geom.Point{X: h})))
		g.Y = inv * real(b.evalExpansion(ws, c, coeff, rf, t.Add(geom.Point{Y: h}))-
			b.evalExpansion(ws, c, coeff, rf, t.Sub(geom.Point{Y: h})))
		g.Z = inv * real(b.evalExpansion(ws, c, coeff, rf, t.Add(geom.Point{Z: h}))-
			b.evalExpansion(ws, c, coeff, rf, t.Sub(geom.Point{Z: h})))
		grad[ti] = grad[ti].Add(g)
	}
}

// DirectGrad returns the gradient of G(t, s) with respect to t.
func (b *base) DirectGrad(t, s geom.Point) geom.Point {
	d := t.Sub(s)
	r := d.Norm()
	if r == 0 {
		return geom.Point{}
	}
	return d.Scale(b.gradF(r) / r)
}
