package trace

import (
	"bufio"
	"encoding/json"
	"io"
)

// The paper's evaluation used "a mild modification of ... DASHMM that added
// the ability to trace DASHMM execution events". This file is that
// facility's serialization: traces are written as JSON lines so external
// tooling (or a later analysis run) can consume them.

// WriteJSON writes the events as one JSON object per line.
func WriteJSON(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSON reads events written by WriteJSON.
func ReadJSON(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, err
		}
		out = append(out, ev)
	}
}
