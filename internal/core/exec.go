package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/amt"
	"repro/internal/dag"
	"repro/internal/dist"
	"repro/internal/geom"
	"repro/internal/kernel"
	"repro/internal/trace"
)

// ExecOptions configures a parallel evaluation on the AMT runtime.
type ExecOptions struct {
	// Localities and Workers shape the runtime (defaults 1 and 1).
	Localities int
	Workers    int
	// Policy places the implicit DAG (default dist.MinComm, the paper's
	// policy).
	Policy dist.Policy
	// Tracer, if non-nil, records one event per operator application for
	// the utilization analysis.
	Tracer *trace.Tracer
	// Latency is injected per remote parcel.
	Latency time.Duration
	// Seed makes the scheduler's steal order reproducible.
	Seed int64
	// Priority enables the binary priority hints the paper proposes in
	// Section VI: tasks of the upward source-tree sweep (S and M nodes) run
	// before everything else, pulling the critical path forward.
	Priority bool
	// PerEdge disables batched kernel execution (the multi-RHS M->L batches
	// and tiled P2P of batch.go): every DAG edge is applied individually, as
	// before the batching work. The accuracy gates evaluate both paths and
	// compare them; it is also the escape hatch if a batch-ineligible
	// configuration is wanted explicitly. Latency-modeled runs are per-edge
	// regardless, since batches complete in shared memory and would bypass
	// the modeled wire.
	PerEdge bool
	// Gradient also computes the potential gradient at every target;
	// retrieve it with EvaluateGrad.
	Gradient bool
	// Fault injects wire faults: when non-nil every remote parcel travels
	// an amt.FaultyTransport built from this profile (fresh per Run, so the
	// seeded fault sequence is reproducible), with the reliable ack/retry
	// delivery layer engaged on top. Nil keeps the perfect in-process wire.
	Fault *amt.FaultProfile
	// Delivery tunes the reliable-delivery layer used when Fault is set
	// (zero value = amt defaults).
	Delivery amt.DeliveryConfig
	// Detector arms the runtime's heartbeat failure detector and this
	// package's crash-recovery coordinator (recover.go): a rank declared
	// dead has its nodes failed over to the survivors and its orphaned DAG
	// subgraph rebuilt and re-executed. Required when Crash is non-empty.
	Detector *amt.FailureDetectorConfig
	// Crash schedules injected locality crashes at DAG progress fractions
	// (the chaos harness's knob). Requires Detector.
	Crash []CrashPlan
	// StallWindow, when positive, arms a watchdog that aborts the run with
	// a diagnostic listing the unsatisfied LCOs (owner rank, arrived/needed
	// counts) if no task executes for a full window, instead of hanging.
	StallWindow time.Duration
}

func (o ExecOptions) withDefaults() ExecOptions {
	if o.Localities <= 0 {
		o.Localities = 1
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Policy == nil {
		o.Policy = dist.MinComm{}
	}
	return o
}

// ExecReport describes one parallel evaluation.
type ExecReport struct {
	// Gradients holds the per-target potential gradient when
	// ExecOptions.Gradient was set (nil otherwise), in the caller's target
	// order.
	Gradients   []geom.Point
	Runtime     amt.Stats
	Elapsed     time.Duration
	RemoteBytes int64
	RemoteEdges int64
	Localities  int
	Workers     int
	// RuntimeReused reports that the evaluation ran on a pooled runtime
	// re-armed from a previous Run instead of a freshly built one.
	RuntimeReused bool
	// Recovery reports crash-recovery activity (zero-valued when no
	// detector was armed or no rank died).
	Recovery RecoveryStats
}

// parcelOverhead is the per-edge descriptor cost added to a coalesced
// parcel (operation type + target global address), as in Section IV.
const parcelOverhead = 16

// Evaluate runs the DAG on the AMT runtime: every expansion node becomes a
// custom LCO holding its payload and out-edge list; the last arriving input
// triggers a continuation that processes the out edges — local edges
// sequentially (the paper's cache-locality choice), remote edges coalesced
// into one parcel per destination locality carrying the expansion data and
// the relevant edges.
//
// For the paper's iterative use case (many charge vectors over one DAG)
// prefer NewParallelEvaluation, which allocates the payloads and the LCO
// network once and reuses them run over run.
func (p *Plan) Evaluate(charges []float64, opts ExecOptions) ([]float64, ExecReport, error) {
	pe, err := p.NewParallelEvaluation(opts)
	if err != nil {
		return nil, ExecReport{}, err
	}
	return pe.Run(charges)
}

// ParallelEvaluation is a reusable parallel evaluation context over one
// Plan: the expansion payloads, the LCO trigger counters and the node
// continuations are allocated once, so steady-state runs allocate nothing
// per evaluated edge. On the perfect-wire, detector-less configuration the
// runtime itself is kept across Runs too (amt.Runtime.Reset re-arms it per
// generation), so repeated evaluations skip the amt.New worker/deque setup;
// fault-injected and detector-armed shapes fall back to a fresh single-shot
// runtime per Run.
type ParallelEvaluation struct {
	plan *Plan
	opts ExecOptions
	ex   *executor
	// rt is the pooled runtime of the reusable configuration (nil until the
	// first Run, and always nil for single-shot configurations).
	rt *amt.Runtime
}

// NewParallelEvaluation allocates a parallel evaluation context. The DAG
// placement is computed per Run (it depends only on the policy and the
// locality count, but reassigning keeps Plan sharing across contexts with
// different shapes correct).
func (p *Plan) NewParallelEvaluation(opts ExecOptions) (*ParallelEvaluation, error) {
	opts = opts.withDefaults()
	st, err := p.newState(make([]float64, len(p.Source.Pts)), opts.Gradient)
	if err != nil {
		return nil, err
	}
	g := p.Graph
	ex := &executor{
		st:        st,
		g:         g,
		tracer:    opts.Tracer,
		priority:  opts.Priority,
		remaining: make([]atomic.Int32, len(g.Nodes)),
		locks:     make([]sync.Mutex, len(g.Nodes)),
		tasks:     make([]amt.Task, len(g.Nodes)),
	}
	// One continuation closure per node, built once and spawned by pointer
	// on every trigger — the hot path never allocates a closure.
	for i := range ex.tasks {
		id := int32(i)
		ex.tasks[i] = func(w *amt.Worker) { ex.runNode(w, id) }
	}
	ex.initBatches(p, opts)
	if len(opts.Crash) > 0 && opts.Detector == nil {
		return nil, fmt.Errorf("core: ExecOptions.Crash requires ExecOptions.Detector")
	}
	if opts.Detector != nil {
		rec, err := newRecovery(ex)
		if err != nil {
			return nil, err
		}
		ex.rec = rec
	}
	pe := &ParallelEvaluation{plan: p, opts: opts, ex: ex}
	p.registerCtx(pe)
	return pe, nil
}

// Reset re-arms the context for a fresh run: payloads zeroed, every node's
// trigger counter restored to its input count, the watchdog diagnosis
// cleared, and any pooled runtime discarded. Run re-arms itself at entry,
// so Reset matters for scrubbing a context whose last Run failed mid-way
// (see Plan.Reset).
func (e *ParallelEvaluation) Reset() {
	ex := e.ex
	ex.st.zeroAll()
	for i := range ex.remaining {
		ex.remaining[i].Store(ex.g.Nodes[i].In)
	}
	ex.resetBatchPending()
	ex.stallMu.Lock()
	ex.stallErr = nil
	ex.stallMu.Unlock()
	// A mid-run failure may have left the pooled runtime with undrained
	// queues; drop it rather than reason about its state (amt.Runtime.Reset
	// would refuse it anyway).
	e.rt = nil
}

// Run evaluates the DAG for one charge vector on a fresh runtime, reusing
// the context's payload buffers and LCO network.
func (e *ParallelEvaluation) Run(charges []float64) ([]float64, ExecReport, error) {
	p, ex, opts := e.plan, e.ex, e.opts
	if len(charges) != len(p.Source.Pts) {
		return nil, ExecReport{}, fmt.Errorf("core: %d charges for %d sources", len(charges), len(p.Source.Pts))
	}
	ex.st.reset(charges)
	g := p.Graph
	opts.Policy.Assign(g, opts.Localities)
	for i := range g.Nodes {
		ex.remaining[i].Store(g.Nodes[i].In)
	}
	ex.resetBatchPending()
	if ex.rec != nil {
		ex.rec.resetRun(opts.Localities, opts.Workers)
	}
	ex.stallMu.Lock()
	ex.stallErr = nil
	ex.stallMu.Unlock()

	// Runtime: the perfect-wire, detector-less configuration (the serving
	// hot path) keeps one runtime across Runs and re-arms it per generation
	// (amt.Runtime.Reset), skipping the worker/deque/delivery allocation of
	// amt.New. Fault-injected, latency-modeled and detector-armed shapes are
	// genuinely single-shot — their wire and fencing state encode one run's
	// history — and get a fresh runtime every time.
	reusable := opts.Fault == nil && opts.Detector == nil && opts.Latency == 0
	rt := e.rt
	runtimeReused := false
	if rt != nil {
		if err := rt.Reset(); err == nil {
			runtimeReused = true
		} else {
			rt = nil
		}
	}
	if rt == nil {
		var tp amt.Transport
		if opts.Fault != nil {
			tp = amt.NewFaultyTransport(*opts.Fault)
		}
		rt = amt.New(amt.Config{
			Localities: opts.Localities,
			Workers:    opts.Workers,
			Latency:    opts.Latency,
			Seed:       opts.Seed,
			Transport:  tp,
			Delivery:   opts.Delivery,
			Tracer:     opts.Tracer,
			Detector:   opts.Detector,
		})
	}
	if reusable {
		e.rt = rt
	}
	ex.rt = rt
	if ex.rec != nil {
		rt.OnFailure(ex.rec.onRankFailure)
	}

	var stopWatchdog func()
	if len(opts.Crash) > 0 {
		ex.rec.armCrash(opts.Crash, len(g.Nodes))
	}
	if opts.StallWindow > 0 {
		stopWatchdog = ex.runWatchdog(rt, opts.StallWindow)
	}

	start := time.Now()
	stats := rt.Run(func() {
		for _, id := range g.Roots() {
			n := &g.Nodes[id]
			loc := rt.Locality(int(n.Locality))
			if ex.isHigh(id) {
				loc.SpawnHigh(ex.tasks[id])
			} else {
				loc.Spawn(ex.tasks[id])
			}
		}
	})
	elapsed := time.Since(start)
	if stopWatchdog != nil {
		stopWatchdog()
	}

	var recStats RecoveryStats
	if ex.rec != nil {
		recStats = ex.rec.stats()
		recStats.RanksKilled = int(stats.RanksKilled)
		if err := ex.rec.fatal(); err != nil {
			return nil, ExecReport{}, err
		}
	}
	if err := ex.stallError(); err != nil {
		return nil, ExecReport{}, err
	}

	// Sanity: every node must have fired. Parcels abandoned at the delivery
	// deadline are the one legitimate way inputs can go missing — name them.
	for i := range ex.remaining {
		if ex.remaining[i].Load() > 0 {
			err := fmt.Errorf("core: node %d (%v) never triggered (%d inputs missing)",
				i, g.Nodes[i].Kind, ex.remaining[i].Load())
			if ded := stats.Transport.DeadlineExceeded; ded > 0 {
				err = fmt.Errorf("%w; %d parcels exceeded the delivery deadline", err, ded)
			}
			if stats.RanksKilled > 0 {
				err = fmt.Errorf("%w; %d ranks crashed during the run", err, stats.RanksKilled)
			}
			return nil, ExecReport{}, err
		}
	}
	return ex.st.potentials(), ExecReport{
		Gradients:     ex.st.gradients(),
		Runtime:       stats,
		Elapsed:       elapsed,
		RemoteBytes:   dist.RemoteBytes(g),
		RemoteEdges:   dist.RemoteEdges(g),
		Localities:    opts.Localities,
		Workers:       opts.Workers,
		RuntimeReused: runtimeReused,
		Recovery:      recStats,
	}, nil
}

// executor is the LCO network of one evaluation context.
type executor struct {
	st        *state
	g         *dag.Graph
	rt        *amt.Runtime // the current run's runtime
	tracer    *trace.Tracer
	priority  bool
	remaining []atomic.Int32
	locks     []sync.Mutex
	tasks     []amt.Task // prebuilt node continuations, indexed by node ID
	// Batched execution (batch.go): descriptors from the plan, the
	// per-kind enable switches, one pending-source counter and prebuilt
	// task per batch, and the pooled GEMM/chunk scratch.
	batches      *dag.Batches
	bk           kernel.BatchKernel
	m2lOn, p2pOn bool
	batchPending []atomic.Int32
	batchTasks   []amt.Task
	batchScratch sync.Pool
	// rec, when non-nil, switches node execution to the crash-recovery
	// path (recover.go); nil leaves the hot path untouched.
	rec *recovery
	// stallMu/stallErr carry the watchdog diagnosis when no recovery state
	// exists (the rec-armed variant lives on recovery).
	stallMu  sync.Mutex
	stallErr error // guarded by stallMu
}

// isHigh reports whether a node's continuation carries the high priority
// hint: the upward source-tree sweep feeding the critical path.
func (ex *executor) isHigh(id int32) bool {
	if !ex.priority {
		return false
	}
	k := ex.g.Nodes[id].Kind
	return k == dag.NodeS || k == dag.NodeM
}

// parcelEdges is a pooled remote-edge list: the out edges of one node
// bound for one destination locality. Ownership passes to the parcel
// action, which recycles it after delivering every edge. idx carries the
// matching global edge indexes in recovery mode (empty on the hot path).
type parcelEdges struct {
	edges []dag.Edge
	idx   []int32
}

var parcelEdgesPool = sync.Pool{New: func() any { return new(parcelEdges) }}

// remoteBatch groups one node's remote out-edges by destination locality.
// Nodes touch only a few localities, so a linear scan over a small pooled
// slice beats a map allocation per trigger.
type remoteBatch struct {
	dests []int32
	lists []*parcelEdges
}

var remoteBatchPool = sync.Pool{New: func() any { return new(remoteBatch) }}

//dashmm:noalloc
func (b *remoteBatch) add(dest int32, e dag.Edge) {
	for i, d := range b.dests {
		if d == dest {
			b.lists[i].edges = append(b.lists[i].edges, e)
			return
		}
	}
	pe := parcelEdgesPool.Get().(*parcelEdges)
	pe.edges = append(pe.edges[:0], e)
	b.dests = append(b.dests, dest)
	b.lists = append(b.lists, pe)
}

// addIdx is the recovery-mode variant of add: it also records the edge's
// global index so the receiver can mark the applied bit.
//
//dashmm:noalloc
func (b *remoteBatch) addIdx(dest int32, e dag.Edge, gidx int32) {
	for i, d := range b.dests {
		if d == dest {
			b.lists[i].edges = append(b.lists[i].edges, e)
			b.lists[i].idx = append(b.lists[i].idx, gidx)
			return
		}
	}
	pe := parcelEdgesPool.Get().(*parcelEdges)
	pe.edges = append(pe.edges[:0], e)
	pe.idx = append(pe.idx[:0], gidx)
	b.dests = append(b.dests, dest)
	b.lists = append(b.lists, pe)
}

//dashmm:noalloc
func (b *remoteBatch) release() {
	for i := range b.lists {
		b.lists[i] = nil // ownership moved to the parcel actions
	}
	b.dests = b.dests[:0]
	b.lists = b.lists[:0]
	remoteBatchPool.Put(b)
}

// runNode is the continuation of node id: process the out-edge list. It
// runs once per evaluation, when the node's LCO triggers (all inputs
// arrived).
func (ex *executor) runNode(w *amt.Worker, id int32) {
	if ex.rec != nil {
		ex.runNodeRecov(w, id)
		return
	}
	n := &ex.g.Nodes[id]
	myLoc := int32(w.Rank())
	// Local edges first, sequentially: the large input payload is reused
	// while hot (Section VI discusses this trade-off).
	var batch *remoteBatch
	for _, e := range n.Out {
		if e.Batched && ex.batchEdgeOn(e.Op) {
			// A batch task owns this edge; it fires when every source of
			// its batch has triggered (noteBatchSources below).
			continue
		}
		dest := ex.g.Nodes[e.To].Locality
		if dest == myLoc {
			ex.deliver(w, n, e)
			continue
		}
		if batch == nil {
			batch = remoteBatchPool.Get().(*remoteBatch)
		}
		batch.add(dest, e)
	}
	if batch != nil {
		// One coalesced parcel per destination locality: expansion data +
		// edge descriptors travel once, the transforms run at the receiver.
		for i, dest := range batch.dests {
			pe := batch.lists[i]
			bytes := int(n.Bytes) + parcelOverhead*len(pe.edges)
			w.SendParcel(int(dest), bytes, func(w2 *amt.Worker) {
				for _, e := range pe.edges {
					ex.deliver(w2, n, e)
				}
				pe.edges = pe.edges[:0]
				parcelEdgesPool.Put(pe)
			})
		}
		batch.release()
	}
	ex.noteBatchSources(w, id)
}

// deliver applies one edge into its target LCO: the transform plus
// reduction runs under the target's lock; the final input triggers the
// target's continuation.
//
//dashmm:noalloc
func (ex *executor) deliver(w *amt.Worker, from *dag.Node, e dag.Edge) {
	var t0 int64
	if ex.tracer.Enabled() {
		t0 = ex.tracer.Now()
	}
	ex.locks[e.To].Lock()
	ex.st.apply(from, e)
	ex.locks[e.To].Unlock()
	if ex.tracer.Enabled() {
		ex.tracer.Record(w.GlobalID, trace.Event{
			Class:    uint8(e.Op),
			Worker:   int32(w.GlobalID),
			Locality: int32(w.Rank()),
			Start:    t0,
			End:      ex.tracer.Now(),
		})
	}
	if ex.remaining[e.To].Add(-1) == 0 {
		ex.fireNode(w, e.To)
	}
}

// fireNode spawns the continuation of a node whose last input just arrived,
// on its home locality (the LCO lives there) with the priority hint of its
// class. Shared by the per-edge delivery and the batch completion paths.
//
//dashmm:noalloc
func (ex *executor) fireNode(w *amt.Worker, id int32) {
	to := &ex.g.Nodes[id]
	high := ex.isHigh(to.ID)
	switch {
	case int32(w.Rank()) == to.Locality && high:
		w.SpawnHigh(ex.tasks[to.ID])
	case int32(w.Rank()) == to.Locality:
		w.Spawn(ex.tasks[to.ID])
	case high:
		ex.rt.Locality(int(to.Locality)).SpawnHigh(ex.tasks[to.ID])
	default:
		ex.rt.Locality(int(to.Locality)).Spawn(ex.tasks[to.ID])
	}
}
