package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/amt"
	"repro/internal/core"
)

// Pool is a supervised standing worker-rank pool: the daemon (rank 0 of an
// amt.Cluster) plus N self-exec worker processes, held across requests so a
// distributed evaluation pays no bootstrap cost. The supervisor respawns
// dead ranks (full-jitter exponential backoff, a sliding-window restart
// budget) and the cluster re-admits them with a fresh wire generation; when
// a rank's budget is exhausted the breaker is forced open and the server
// degrades distributed-eligible requests to the in-process path.
type Pool struct {
	cfg     PoolConfig
	stamp   string // handshake stamp, fixed at construction
	cl      *amt.Cluster
	breaker *breaker

	// jobMu serializes distributed evaluations: the cluster runs one job at
	// a time (StartJob defers re-admission until EndJob).
	jobMu    sync.Mutex
	prevWire amt.WireStats // guarded by jobMu: last run's cumulative wire counters

	ranks []*rankState // index 1..World-1; [0] unused

	requests atomic.Int64
	okCount  atomic.Int64
	failed   atomic.Int64
	retries  atomic.Int64

	cmdMu sync.Mutex
	cmd   []string // guarded by cmdMu: worker argv (test hook)

	quit      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// PoolConfig sizes and tunes the pool.
type PoolConfig struct {
	// Workers is the number of worker ranks (world = Workers+1; minimum 1).
	Workers int
	// Network is "unix" (default) or "tcp".
	Network string
	// Addr overrides rank 0's control/data address (default: a socket in a
	// fresh temp dir for unix, a probed localhost port for tcp).
	Addr string
	// RankThreads is each rank's scheduler thread count (default
	// GOMAXPROCS / (Workers+1), at least 1).
	RankThreads int
	// Heartbeat tunes the death detector (default 25ms × 8).
	Heartbeat amt.FailureDetectorConfig
	// JoinTimeout bounds the bootstrap barrier and each respawn's
	// re-admission wait (default 30s).
	JoinTimeout time.Duration
	// RestartBudget is the strike limit per rank: more than this many
	// strikes (death verdicts + failed respawn attempts) inside
	// RestartWindow abandons the rank (defaults 5 strikes / 1 minute).
	RestartBudget int
	RestartWindow time.Duration
	// BackoffBase/BackoffMax bound the respawn backoff (defaults 50ms/2s).
	BackoffBase, BackoffMax time.Duration
	// BreakerThreshold consecutive distributed failures open the breaker
	// for BreakerCooldown (defaults 3 / 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// WorkerCommand overrides the worker argv (tests). Default: this
	// executable, relying on MaybeWorker to divert it.
	WorkerCommand []string
}

func (c PoolConfig) withDefaults() (PoolConfig, error) {
	if c.Workers < 1 {
		return c, fmt.Errorf("serve: pool needs at least 1 worker, got %d", c.Workers)
	}
	if c.Network == "" {
		c.Network = "unix"
	}
	if c.Network != "unix" && c.Network != "tcp" {
		return c, fmt.Errorf("serve: unsupported pool network %q", c.Network)
	}
	if c.RankThreads <= 0 {
		c.RankThreads = maxInt(1, runtimeGOMAXPROCS()/(c.Workers+1))
	}
	if c.Heartbeat.Interval <= 0 {
		c.Heartbeat.Interval = 25 * time.Millisecond
	}
	if c.Heartbeat.MissedBeats <= 0 {
		c.Heartbeat.MissedBeats = 8
	}
	if c.JoinTimeout <= 0 {
		c.JoinTimeout = 30 * time.Second
	}
	if c.RestartBudget <= 0 {
		c.RestartBudget = 5
	}
	if c.RestartWindow <= 0 {
		c.RestartWindow = time.Minute
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if len(c.WorkerCommand) == 0 {
		self, err := os.Executable()
		if err != nil {
			return c, fmt.Errorf("serve: cannot locate own executable for worker re-exec: %w", err)
		}
		c.WorkerCommand = []string{self}
	}
	return c, nil
}

// ErrDegraded marks a distributed attempt that was refused or abandoned;
// the caller falls back to the in-process path.
var ErrDegraded = errors.New("serve: distributed fabric degraded")

// NewPool boots the cluster: bind rank 0, fork the workers, run the join
// barrier, start the supervisor. On any bootstrap error the forked workers
// are killed before returning.
//
//dashmm:detached supervise exits on p.quit; Pool.Close closes quit and p.wg.Wait joins
func NewPool(cfg PoolConfig) (*Pool, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if cfg.Addr == "" {
		cfg.Addr, err = poolAddr(cfg.Network)
		if err != nil {
			return nil, err
		}
	}
	stamp := fmt.Sprintf("dashmm-serve-pool-v1/w%d/%s", cfg.Workers, cfg.Network)
	world := cfg.Workers + 1
	cl, err := amt.NewCluster(amt.ClusterConfig{
		Rank:        0,
		World:       world,
		Network:     cfg.Network,
		Addr:        cfg.Addr,
		Stamp:       stamp,
		Heartbeat:   cfg.Heartbeat,
		JoinTimeout: cfg.JoinTimeout,
	})
	if err != nil {
		return nil, err
	}
	p := &Pool{
		cfg:     cfg,
		cl:      cl,
		breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		ranks:   make([]*rankState, world),
		cmd:     cfg.WorkerCommand,
		quit:    make(chan struct{}),
	}
	for r := 1; r < world; r++ {
		p.ranks[r] = &rankState{rank: r, state: "starting"}
	}
	cl.OnRejoin(p.noteRejoin)

	p.stamp = stamp
	for r := 1; r < world; r++ {
		if err := p.spawn(p.ranks[r], false); err != nil {
			p.killAll()
			cl.Close()
			return nil, fmt.Errorf("serve: spawn worker rank %d: %w", r, err)
		}
	}
	if err := cl.Start(); err != nil {
		p.killAll()
		cl.Close()
		return nil, fmt.Errorf("serve: pool bootstrap: %w", err)
	}
	for r := 1; r < world; r++ {
		p.ranks[r].setState("up")
	}
	p.wg.Add(1)
	go p.supervise()
	return p, nil
}

// poolAddr picks rank 0's default address.
func poolAddr(network string) (string, error) {
	if network == "unix" {
		dir, err := os.MkdirTemp("", "dashmm-serve-pool")
		if err != nil {
			return "", err
		}
		return filepath.Join(dir, "coord.sock"), nil
	}
	// TCP: probe a free localhost port. The tiny close-to-bind window is
	// the same compromise cmd/dashmm-bench makes.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// Evaluate runs one distributed evaluation over the pool: broadcast the
// job, run rank 0's side of DistRun against the cached plan, retry once on
// the surviving ranks if a worker died mid-run, and feed the breaker.
// Returns ErrDegraded (possibly wrapped) when the caller should fall back
// to in-process evaluation.
func (p *Pool) Evaluate(ctx context.Context, req *Request, entry *planEntry, charges []float64) ([]float64, core.ExecReport, error) {
	select {
	case <-p.quit:
		return nil, core.ExecReport{}, fmt.Errorf("%w: pool closed", ErrDegraded)
	default:
	}
	if !p.breaker.allow() {
		return nil, core.ExecReport{}, fmt.Errorf("%w: breaker %s", ErrDegraded, p.breaker.current())
	}
	p.requests.Add(1)
	p.jobMu.Lock()
	defer p.jobMu.Unlock()
	if p.cl.LiveWorkers() == 0 {
		p.breaker.failure()
		return nil, core.ExecReport{}, fmt.Errorf("%w: no live workers", ErrDegraded)
	}
	//lint:ignore lockorder jobMu serializes whole distributed jobs by design — the standing cluster runs one collective job at a time, so the critical section IS the job
	pots, rep, err := p.runJob(ctx, req, entry, charges)
	if err != nil && ctx.Err() == nil && p.cl.LiveWorkers() > 0 {
		// A worker died mid-run (or the run otherwise broke) and time
		// remains: one retry on whatever ranks survive. The fresh job
		// carries the updated dead-rank base, so the retry places nothing
		// on the corpse.
		p.retries.Add(1)
		//lint:ignore lockorder jobMu serializes whole distributed jobs by design — the standing cluster runs one collective job at a time, so the critical section IS the job
		pots, rep, err = p.runJob(ctx, req, entry, charges)
	}
	if err != nil {
		p.failed.Add(1)
		p.breaker.failure()
		return nil, core.ExecReport{}, fmt.Errorf("%w: %v", ErrDegraded, err)
	}
	p.okCount.Add(1)
	p.breaker.success()
	return pots, rep, nil
}

// runJob broadcasts one job and runs rank 0's side of it.
//
//dashmm:locked Pool.jobMu — documented precondition: Evaluate serializes jobs on jobMu before calling.
func (p *Pool) runJob(ctx context.Context, req *Request, entry *planEntry, charges []float64) ([]float64, core.ExecReport, error) {
	timeout := 2 * time.Minute
	if d, ok := ctx.Deadline(); ok {
		timeout = time.Until(d)
		if timeout <= 0 {
			return nil, core.ExecReport{}, context.DeadlineExceeded
		}
	}
	spec := jobSpecFrom(req)
	spec.TimeoutMS = timeout.Milliseconds()
	//lint:ignore lockorder jobMu serializes whole distributed jobs by design — the standing cluster runs one collective job at a time, so the critical section IS the job
	gen, deadOrder := p.cl.StartJob(func(gen uint32, deadOrder []int) []byte {
		spec.Gen = gen
		spec.PreDead = deadOrder
		spec.RunSeed = int64(gen)
		return spec.encode()
	})
	defer p.cl.EndJob()
	//lint:ignore lockorder jobMu serializes whole distributed jobs by design — the standing cluster runs one collective job at a time, so the critical section IS the job
	pots, rep, err := core.DistRun(entry.plan, p.cl, charges, core.DistOptions{
		Workers:    p.cfg.RankThreads,
		Seed:       spec.RunSeed,
		Timeout:    timeout,
		Generation: gen,
		PreDead:    deadOrder,
		Cancel:     ctx.Done(),
	})
	if err != nil {
		// Release the surviving workers' runs: their rank≠0 DistRun returns
		// cleanly on Shutdown and they stay alive for the retry.
		//lint:ignore lockorder jobMu serializes whole distributed jobs by design — the standing cluster runs one collective job at a time, so the critical section IS the job
		p.cl.Shutdown()
	}
	// The transport's wire counters are cumulative over the standing
	// cluster; report this run's delta so /metrics aggregation stays
	// additive per request.
	cur := p.cl.Transport().Stats()
	tr := &rep.Runtime.Transport
	tr.Dropped = cur.Dropped - p.prevWire.Dropped
	tr.WireMessages = cur.Messages - p.prevWire.Messages
	tr.BytesOut = cur.BytesOut - p.prevWire.BytesOut
	tr.BytesIn = cur.BytesIn - p.prevWire.BytesIn
	tr.Reconnects = cur.Reconnects - p.prevWire.Reconnects
	tr.HandshakeFailures = cur.HandshakeFailures - p.prevWire.HandshakeFailures
	tr.StaleFenced = cur.StaleFenced - p.prevWire.StaleFenced
	p.prevWire = cur
	return pots, rep, err
}

// Close tears the pool down: broadcast EXIT, reap the workers (SIGKILL
// stragglers), close the cluster, join the supervisor.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		close(p.quit)
		p.cl.BroadcastExit()
		deadline := time.Now().Add(3 * time.Second)
		for r := 1; r < len(p.ranks); r++ {
			p.ranks[r].reap(deadline)
		}
		p.cl.Close()
		p.wg.Wait()
	})
}

// Generation exposes the cluster's current wire generation (metrics).
func (p *Pool) Generation() uint32 { return p.cl.Generation() }

// SetWorkerCommand swaps the argv used for future respawns (tests: point
// respawns at a fast-fail stub to exercise the restart budget).
func (p *Pool) SetWorkerCommand(argv []string) {
	p.cmdMu.Lock()
	p.cmd = append([]string(nil), argv...)
	p.cmdMu.Unlock()
}

func (p *Pool) workerCommand() []string {
	p.cmdMu.Lock()
	defer p.cmdMu.Unlock()
	return p.cmd
}

// spawn forks one worker process for a rank. Caller transitions the rank
// state.
func (p *Pool) spawn(rs *rankState, rejoin bool) error {
	argv := p.workerCommand()
	env := WorkerEnv{
		Rank:        rs.rank,
		World:       p.cfg.Workers + 1,
		Network:     p.cfg.Network,
		Addr:        p.cfg.Addr,
		Stamp:       p.stamp,
		Threads:     p.cfg.RankThreads,
		Rejoin:      rejoin,
		Heartbeat:   p.cfg.Heartbeat,
		JoinTimeout: p.cfg.JoinTimeout,
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(), env.environ()...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	exited := make(chan struct{})
	go func() { // reap: no zombies, and the supervisor can watch for early exits
		cmd.Wait()
		close(exited)
	}()
	rs.setProc(cmd.Process, exited)
	return nil
}

// killAll SIGKILLs every tracked worker process (bootstrap failure path).
func (p *Pool) killAll() {
	for r := 1; r < len(p.ranks); r++ {
		p.ranks[r].kill()
	}
}

// PoolSnapshot is the /metrics rendering of the pool.
type PoolSnapshot struct {
	World       int          `json:"world"`
	LiveWorkers int          `json:"live_workers"`
	Generation  uint32       `json:"generation"`
	Breaker     string       `json:"breaker"`
	Requests    int64        `json:"requests"`
	OK          int64        `json:"ok"`
	Failed      int64        `json:"failed"`
	Retries     int64        `json:"retries"`
	Ranks       []RankHealth `json:"ranks"`
}

// RankHealth is one worker rank's supervision state.
type RankHealth struct {
	Rank     int    `json:"rank"`
	State    string `json:"state"` // starting | up | respawning | dead
	PID      int    `json:"pid"`   // current incarnation's process id (0: none)
	Restarts int64  `json:"restarts"`
	Strikes  int    `json:"strikes"`
	// LastVerdictAgeMS is the time since this rank's latest death verdict
	// (-1: never died).
	LastVerdictAgeMS int64 `json:"last_verdict_age_ms"`
}

// Snapshot renders the pool for /metrics.
func (p *Pool) Snapshot() *PoolSnapshot {
	s := &PoolSnapshot{
		World:       p.cfg.Workers + 1,
		LiveWorkers: p.cl.LiveWorkers(),
		Generation:  p.cl.Generation(),
		Breaker:     p.breaker.current(),
		Requests:    p.requests.Load(),
		OK:          p.okCount.Load(),
		Failed:      p.failed.Load(),
		Retries:     p.retries.Load(),
	}
	now := time.Now()
	for r := 1; r < len(p.ranks); r++ {
		s.Ranks = append(s.Ranks, p.ranks[r].health(now, p.cfg.RestartWindow))
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func runtimeGOMAXPROCS() int { return runtime.GOMAXPROCS(0) }
