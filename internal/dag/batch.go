package dag

import (
	"math"
	"sort"

	"repro/internal/kernel"
)

// Batch descriptors (DESIGN.md, "Batched execution"): the graph's list-2
// M->L edges are aggregated at plan-build time by the dense operator they
// apply — one batch per (level, side, lattice offset) — and the near-field
// S->T edges by their target leaf. A batch-aware executor fires a batch
// once every source feeding it has triggered, replacing many per-edge
// operator applications with one blocked multi-RHS apply (far field) or one
// cache-tiled sweep (near field). Edges whose geometry falls off the
// interaction lattice are left unbatched and flow through the ordinary
// per-edge path, so batching is an execution strategy, never a semantics
// change.

// BatchEdge locates one member edge of a batch: out-edge Out of node From,
// delivering into To (denormalized from Nodes[From].Out[Out].To so the
// executor avoids a double indirection per edge).
type BatchEdge struct {
	From int32
	Out  int32
	To   int32
}

// M2LBatch groups the same-level list-2 edges sharing one cached dense
// operator, in source-id order; every edge of the batch has the same
// offset, so the kernel's multi-RHS apply sees one maximal run.
type M2LBatch struct {
	// Side is the source box side; Level the tree level of the sources.
	Side  float64
	Level int
	// Off is the shared lattice offset of every edge.
	Off kernel.M2LOffset
	// Offs holds Off repeated per edge, in the layout kernel.M2LBatch
	// consumes (kept materialized so the hot path never allocates).
	Offs  []kernel.M2LOffset
	Edges []BatchEdge
	// Srcs lists the distinct source nodes feeding the batch; the batch
	// fires when all of them have triggered.
	Srcs []int32
}

// P2PBatch groups the S->T edges into one terminal target node.
type P2PBatch struct {
	Target int32
	Edges  []BatchEdge
	Srcs   []int32
}

// Batches is the batch-descriptor set carried by a core.Plan (and therefore
// reused by the serve plan cache along with the rest of the plan). Batch
// ids are M2L batches first, then P2P batches offset by len(M2L).
type Batches struct {
	M2L []M2LBatch
	P2P []P2PBatch
	// SrcBatches[node] lists the batch ids the node feeds; the executor
	// decrements each batch's pending counter once when the node triggers.
	SrcBatches [][]int32
}

// Empty reports whether there is nothing to batch.
func (b *Batches) Empty() bool {
	return b == nil || (len(b.M2L) == 0 && len(b.P2P) == 0)
}

// NumBatches returns the total batch count; ids range over [0, NumBatches).
func (b *Batches) NumBatches() int {
	if b == nil {
		return 0
	}
	return len(b.M2L) + len(b.P2P)
}

// SrcCount returns the pending-source count of batch id.
func (b *Batches) SrcCount(id int32) int {
	if int(id) < len(b.M2L) {
		return len(b.M2L[id].Srcs)
	}
	return len(b.P2P[int(id)-len(b.M2L)].Srcs)
}

// m2lGroupKey identifies one far-field batch.
type m2lGroupKey struct {
	sideBits uint64
	off      kernel.M2LOffset
}

// BuildBatches aggregates the graph's batchable edges and marks them with
// Edge.Batched. It is deterministic (same graph, same descriptors) and
// idempotent: every flag is recomputed from the current geometry, so a
// graph whose box centers were perturbed after a previous build reclassifies
// cleanly. A kernel that does not implement kernel.BatchKernel yields an
// empty descriptor set and a fully per-edge graph.
func BuildBatches(g *Graph, k kernel.Kernel) *Batches {
	b := &Batches{SrcBatches: make([][]int32, len(g.Nodes))}
	bk, ok := k.(kernel.BatchKernel)
	for i := range g.Nodes {
		for j := range g.Nodes[i].Out {
			g.Nodes[i].Out[j].Batched = false
		}
	}
	if !ok {
		return b
	}

	// Far field: group list-2 edges by (side, offset); off-lattice edges
	// keep flowing per-edge.
	m2l := make(map[m2lGroupKey]*M2LBatch)
	var m2lKeys []m2lGroupKey
	for i := range g.Nodes {
		n := &g.Nodes[i]
		for j := range n.Out {
			e := &n.Out[j]
			if e.Op != OpM2L {
				continue
			}
			from, to := n.Box, g.Nodes[e.To].Box
			off, onLattice := bk.M2LOffsetOf(from.Center, to.Center, from.Side)
			if !onLattice {
				continue
			}
			key := m2lGroupKey{sideBits: math.Float64bits(from.Side), off: off}
			mb := m2l[key]
			if mb == nil {
				mb = &M2LBatch{Side: from.Side, Level: from.Level(), Off: off}
				m2l[key] = mb
				m2lKeys = append(m2lKeys, key)
			}
			e.Batched = true
			mb.Edges = append(mb.Edges, BatchEdge{From: int32(i), Out: int32(j), To: e.To})
			mb.Offs = append(mb.Offs, off)
		}
	}
	// Deterministic batch order: by level (coarse first), then offset.
	sort.Slice(m2lKeys, func(a, c int) bool {
		ka, kc := m2lKeys[a], m2lKeys[c]
		if m2l[ka].Level != m2l[kc].Level {
			return m2l[ka].Level < m2l[kc].Level
		}
		if ka.off.DX != kc.off.DX {
			return ka.off.DX < kc.off.DX
		}
		if ka.off.DY != kc.off.DY {
			return ka.off.DY < kc.off.DY
		}
		return ka.off.DZ < kc.off.DZ
	})
	for _, key := range m2lKeys {
		mb := m2l[key]
		mb.Srcs = distinctSources(mb.Edges)
		b.M2L = append(b.M2L, *mb)
	}

	// Near field: group S->T edges by target. Single-edge groups still
	// batch — the tiled apply beats the closure-per-pair S2T either way.
	p2p := make(map[int32]*P2PBatch)
	var tgts []int32
	for i := range g.Nodes {
		n := &g.Nodes[i]
		for j := range n.Out {
			e := &n.Out[j]
			if e.Op != OpS2T {
				continue
			}
			pb := p2p[e.To]
			if pb == nil {
				pb = &P2PBatch{Target: e.To}
				p2p[e.To] = pb
				tgts = append(tgts, e.To)
			}
			e.Batched = true
			pb.Edges = append(pb.Edges, BatchEdge{From: int32(i), Out: int32(j), To: e.To})
		}
	}
	sort.Slice(tgts, func(a, c int) bool { return tgts[a] < tgts[c] })
	for _, t := range tgts {
		pb := p2p[t]
		pb.Srcs = distinctSources(pb.Edges)
		b.P2P = append(b.P2P, *pb)
	}

	for bi := range b.M2L {
		for _, s := range b.M2L[bi].Srcs {
			b.SrcBatches[s] = append(b.SrcBatches[s], int32(bi))
		}
	}
	off := int32(len(b.M2L))
	for bi := range b.P2P {
		for _, s := range b.P2P[bi].Srcs {
			b.SrcBatches[s] = append(b.SrcBatches[s], off+int32(bi))
		}
	}
	return b
}

// distinctSources returns the sorted distinct From nodes of the edges.
func distinctSources(edges []BatchEdge) []int32 {
	srcs := make([]int32, 0, len(edges))
	for _, e := range edges {
		srcs = append(srcs, e.From)
	}
	sort.Slice(srcs, func(a, c int) bool { return srcs[a] < srcs[c] })
	out := srcs[:0]
	for i, s := range srcs {
		if i == 0 || s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}
