package core

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/points"
)

// TestParallelEvaluationReuse checks the reusable parallel context: many
// charge vectors over one LCO network, each matching the sequential
// reference, with correct buffer resets in between.
func TestParallelEvaluationReuse(t *testing.T) {
	plan, q1, want1 := testPlan(t, dag.Advanced, 2000)
	pe, err := plan.NewParallelEvaluation(ExecOptions{Localities: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	q2 := points.Charges(2000, 77)
	want2, err := plan.EvaluateSequential(q2)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		got1, _, err := pe.Run(q1)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertSame(t, got1, want1, 1e-9)
		got2, _, err := pe.Run(q2)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertSame(t, got2, want2, 1e-9)
	}
}

// TestSteadyStateAllocsPerEdge is the ISSUE's zero-allocation acceptance
// gate: once the context is warm, a full parallel DAG evaluation must
// allocate ~nothing per evaluated edge (the fixed per-run cost — one
// single-shot runtime, its worker goroutines, and the returned potential
// vector — is amortized over every edge of the DAG).
func TestSteadyStateAllocsPerEdge(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	plan, q, _ := testPlan(t, dag.Advanced, 2500)
	pe, err := plan.NewParallelEvaluation(ExecOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Warm runs: grow deque rings, fill the kernel workspace free list and
	// the parcel pools, and build any lazy operator matrices.
	for i := 0; i < 2; i++ {
		if _, _, err := pe.Run(q); err != nil {
			t.Fatal(err)
		}
	}
	edges := float64(plan.Graph.NumEdges())
	allocs := testing.AllocsPerRun(3, func() {
		if _, _, err := pe.Run(q); err != nil {
			t.Fatal(err)
		}
	})
	perEdge := allocs / edges
	t.Logf("allocs/run = %.0f over %.0f edges -> %.4f per edge", allocs, edges, perEdge)
	if perEdge > 0.05 {
		t.Errorf("steady-state allocations %.4f per edge exceed 0.05 (%.0f per run)", perEdge, allocs)
	}
}

// TestSequentialEvaluationAllocs gates the sequential reusable context the
// same way (it shares state buffers and the kernel workspace free list).
func TestSequentialEvaluationAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	plan, q, _ := testPlan(t, dag.Advanced, 2000)
	ev, err := plan.NewEvaluation()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Run(q); err != nil {
		t.Fatal(err)
	}
	edges := float64(plan.Graph.NumEdges())
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := ev.Run(q); err != nil {
			t.Fatal(err)
		}
	})
	if perEdge := allocs / edges; perEdge > 0.05 {
		t.Errorf("sequential steady-state allocations %.4f per edge exceed 0.05 (%.0f per run)", perEdge, allocs)
	}
}
