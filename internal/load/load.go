// Package load is the production load harness for dashmm-serve: it drives
// the daemon over HTTP with open-loop (Poisson) arrivals whose plan keys
// follow a Zipf distribution across simulated tenants, through scripted
// cold / warm / mixed phases, and records per-phase latency quantiles and
// shed / deadline / coalesce / degraded rates. The whole request schedule
// is precomputed from one seed, so a run is reproducible end to end: same
// seed, same arrival times, same key sequence.
package load

import (
	"fmt"
	"math/rand"
	"time"
)

// Phase kinds. A cold phase requests globally unique plan keys (every
// request is a guaranteed plan build — or a store hit after a restart); a
// warm phase draws tenants from the Zipf distribution over keys primed
// before the first warm/mixed phase; a mixed phase is warm traffic with a
// cold fraction folded in.
const (
	KindCold  = "cold"
	KindWarm  = "warm"
	KindMixed = "mixed"
	// KindPrime labels the synthetic serial phase the runner inserts to
	// build each tenant's plan before the first warm or mixed phase.
	KindPrime = "prime"
)

// PhaseSpec scripts one phase of the run.
type PhaseSpec struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // cold | warm | mixed
	// Duration bounds the phase's arrival process.
	Duration time.Duration `json:"duration_ns"`
	// RateRPS is the open-loop Poisson arrival rate (requests/second).
	RateRPS float64 `json:"rate_rps"`
	// ColdFraction of a mixed phase's arrivals request unique keys.
	ColdFraction float64 `json:"cold_fraction,omitempty"`
}

// Config configures a harness run.
type Config struct {
	BaseURL string `json:"base_url"`
	// Seed drives the whole schedule: arrival times, tenant draws, cold-key
	// sequence and charge-seed variants.
	Seed int64 `json:"seed"`
	// Tenants is the number of distinct warm plan keys.
	Tenants int `json:"tenants"`
	// ZipfS / ZipfV shape the tenant skew (math/rand Zipf; s > 1, v >= 1).
	ZipfS float64 `json:"zipf_s"`
	ZipfV float64 `json:"zipf_v"`
	// N, Digits, Threshold, Workers shape every evaluation request.
	N         int `json:"n"`
	Digits    int `json:"digits"`
	Threshold int `json:"threshold,omitempty"`
	Workers   int `json:"workers"`
	// ChargeVariants cycles a small set of charge seeds per plan key, so
	// identical concurrent requests exercise the coalescing path.
	ChargeVariants int `json:"charge_variants"`
	// DeadlineMS is forwarded on every request (0 = server default).
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// MaxInflight caps concurrently outstanding requests; an arrival that
	// would exceed it is counted client-dropped, keeping the generator
	// open-loop (it never blocks the clock) without drowning the client.
	MaxInflight int `json:"max_inflight"`

	Phases []PhaseSpec `json:"phases"`
}

// Seed bases separating the warm tenant keyspace from the cold unique
// keyspace. Warm tenant t requests Seed warmSeedBase+t; cold request i
// (numbered across the whole run) requests coldSeedBase+i. Request seed 0
// means "server default", so both bases stay positive.
const (
	warmSeedBase = 100
	coldSeedBase = 1 << 20
)

// Defaults fills unset fields with sensible values and validates the rest.
func (c *Config) Defaults() error {
	if c.BaseURL == "" {
		c.BaseURL = "http://localhost:8075"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Tenants <= 0 {
		c.Tenants = 8
	}
	if c.Tenants > coldSeedBase-warmSeedBase {
		return fmt.Errorf("load: %d tenants collide with the cold keyspace", c.Tenants)
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.2
	}
	if c.ZipfS <= 1 {
		return fmt.Errorf("load: zipf s must be > 1, got %g", c.ZipfS)
	}
	if c.ZipfV == 0 {
		c.ZipfV = 1
	}
	if c.ZipfV < 1 {
		return fmt.Errorf("load: zipf v must be >= 1, got %g", c.ZipfV)
	}
	if c.N == 0 {
		c.N = 4000
	}
	if c.N < 0 {
		return fmt.Errorf("load: n must be positive")
	}
	if c.Digits == 0 {
		c.Digits = 3
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.ChargeVariants <= 0 {
		c.ChargeVariants = 4
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 512
	}
	if len(c.Phases) == 0 {
		return fmt.Errorf("load: no phases scripted")
	}
	for i := range c.Phases {
		p := &c.Phases[i]
		switch p.Kind {
		case KindCold, KindWarm, KindMixed:
		default:
			return fmt.Errorf("load: phase %d has unknown kind %q", i, p.Kind)
		}
		if p.Name == "" {
			p.Name = fmt.Sprintf("%s-%d", p.Kind, i)
		}
		if p.Duration <= 0 {
			return fmt.Errorf("load: phase %q has no duration", p.Name)
		}
		if p.RateRPS <= 0 {
			return fmt.Errorf("load: phase %q has no arrival rate", p.Name)
		}
		if p.ColdFraction < 0 || p.ColdFraction > 1 {
			return fmt.Errorf("load: phase %q cold fraction %g out of [0,1]", p.Name, p.ColdFraction)
		}
	}
	return nil
}

// Arrival is one scheduled request: when to fire it (offset from the phase
// start) and which plan key / charge vector it asks for.
type Arrival struct {
	At time.Duration
	// Seed is the request's plan seed: warmSeedBase+tenant for warm
	// traffic, coldSeedBase+i for cold.
	Seed int64
	// Tenant is the Zipf draw for warm traffic, -1 for cold.
	Tenant int
	// ChargeSeed cycles ChargeVariants values so duplicate in-flight
	// requests coalesce.
	ChargeSeed int64
}

// Schedule precomputes every phase's arrival sequence from the config seed.
// The schedule depends only on the config, never on the wall clock, so two
// runs with one seed issue the identical request sequence.
func Schedule(cfg *Config) ([][]Arrival, error) {
	if err := cfg.Defaults(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(cfg.Tenants-1))
	phases := make([][]Arrival, len(cfg.Phases))
	cold := 0
	for pi, spec := range cfg.Phases {
		var arrivals []Arrival
		t := time.Duration(0)
		for {
			// Exponential inter-arrival times make the process Poisson.
			dt := time.Duration(rng.ExpFloat64() / spec.RateRPS * float64(time.Second))
			t += dt
			if t >= spec.Duration {
				break
			}
			a := Arrival{At: t, ChargeSeed: 1 + int64(rng.Intn(cfg.ChargeVariants))}
			isCold := spec.Kind == KindCold ||
				(spec.Kind == KindMixed && rng.Float64() < spec.ColdFraction)
			if isCold {
				a.Tenant = -1
				a.Seed = coldSeedBase + int64(cold)
				cold++
			} else {
				a.Tenant = int(zipf.Uint64())
				a.Seed = warmSeedBase + int64(a.Tenant)
			}
			arrivals = append(arrivals, a)
		}
		phases[pi] = arrivals
	}
	return phases, nil
}
