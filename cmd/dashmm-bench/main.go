// Command dashmm-bench regenerates the utilization figures of the paper:
//
//	-fig4   Figure 4: total utilization fraction f_k over 100 uniform
//	        intervals for runs on 64, 128 and 512 cores (cube data, Laplace
//	        kernel; the paper uses 30M points — scale with -n).
//	-fig5   Figure 5: utilization fraction by operator class for the
//	        128-core run, grouped into the three panels of the paper: the
//	        operations up the source tree, the operations bridging the
//	        trees, and the operations producing the target values.
//	-real   run the goroutine runtime on this machine (single locality)
//	        instead of the simulator and report measured utilization.
//
// The simulated runs replay the explicit DAG under the Table II cost model
// with HPX-5-style oblivious FIFO scheduling (see DESIGN.md), which is what
// reproduces the end-of-run starvation dip the paper diagnoses.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"syscall"
	"time"

	"repro/internal/amt"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dist"
	"repro/internal/kernel"
	"repro/internal/points"
	"repro/internal/sim"
	"repro/internal/trace"
)

const coresPerLocality = 32

func main() {
	var (
		n        = flag.Int("n", 300000, "points per ensemble (paper: 30M)")
		fig4     = flag.Bool("fig4", false, "total utilization for 64/128/512 cores")
		fig5     = flag.Bool("fig5", false, "per-class utilization at 128 cores")
		real     = flag.Bool("real", false, "measure the real runtime on this machine instead of simulating")
		traceOut = flag.String("trace-out", "", "with -real: write the event trace as JSON lines to this file (read it back with cmd/traceview)")
		digits   = flag.Int("digits", 3, "accuracy digits")
		thr      = flag.Int("threshold", 60, "refinement threshold")

		// Fault-injection knobs for -real runs: the parcel wire becomes an
		// amt.FaultyTransport with reliable ack/retry delivery on top, and
		// the transport counters are reported so the run is inspectable.
		locs      = flag.Int("locs", 1, "with -real: localities to split the workers across")
		drop      = flag.Float64("drop", 0, "with -real: parcel drop probability")
		dup       = flag.Float64("dup", 0, "with -real: parcel duplication probability")
		reorder   = flag.Bool("reorder", false, "with -real: randomly reorder parcel arrivals")
		slowRank  = flag.Int("slow-rank", -1, "with -real: rank to pause (requires -slow-delay)")
		slowDelay = flag.Duration("slow-delay", 0, "with -real: extra delay per parcel to/from -slow-rank")
		faultSeed = flag.Int64("fault-seed", 1, "with -real: fault RNG seed")

		// Crash-recovery knobs for -real runs: arm the heartbeat failure
		// detector and optionally kill a locality mid-run; the recovery
		// counters (ranks killed, subgraph nodes re-executed, recovery wall
		// time) are reported after the run.
		detect   = flag.Bool("detect", false, "with -real: arm the heartbeat failure detector")
		killRank = flag.Int("kill-rank", -1, "with -real: locality to crash mid-run (implies -detect); with -net: worker rank to SIGKILL")
		killAt   = flag.Float64("kill-at", 0.5, "with -real: DAG progress fraction at which -kill-rank dies")

		// Multi-process mode: -net forks -locs real OS processes joined over
		// a socket mesh; -kill-rank then SIGKILLs that worker process at
		// -kill-at of its local progress and the run must still verify.
		netMode  = flag.String("net", "", "with -real: run -locs separate processes over this network (tcp|unix)")
		distRank = flag.Int("dist-rank", -1, "internal: rank of a forked -net worker process")
		distAddr = flag.String("dist-addr", "", "internal: coordinator address for a forked -net worker")
	)
	flag.Parse()
	if !*fig4 && !*fig5 && !*real {
		*fig4, *fig5 = true, true
	}

	sp := points.Generate(points.Cube, *n, 1)
	tp := points.Generate(points.Cube, *n, 2)
	k := kernel.NewLaplace(kernel.OrderForDigits(*digits))
	plan, err := core.NewPlan(sp, tp, k, core.Options{Threshold: *thr})
	if err != nil {
		log.Fatal(err)
	}
	if *distRank > 0 {
		os.Exit(runDistWorker(plan, *distRank, *locs, *netMode, *distAddr,
			distStamp(*n, *digits, *thr, *locs), *killRank, *killAt))
	}
	fmt.Printf("# dashmm-bench: N=%d, %d DAG nodes, %d edges\n",
		*n, len(plan.Graph.Nodes), plan.Graph.NumEdges())

	if *real && *netMode != "" {
		runDistCoordinator(plan, *n, *netMode, *locs, *killRank, *killAt, *digits, *thr)
		return
	}
	if *real {
		var fault *amt.FaultProfile
		if *drop > 0 || *dup > 0 || *reorder || (*slowRank >= 0 && *slowDelay > 0) {
			fault = &amt.FaultProfile{
				Seed: *faultSeed, Drop: *drop, Duplicate: *dup, Reorder: *reorder,
				SlowRank: *slowRank, SlowDelay: *slowDelay,
			}
		}
		var det *amt.FailureDetectorConfig
		if *detect || *killRank >= 0 {
			det = &amt.FailureDetectorConfig{}
		}
		var crash []core.CrashPlan
		if *killRank >= 0 {
			crash = []core.CrashPlan{{Rank: *killRank, At: *killAt}}
		}
		runReal(plan, *n, *traceOut, *locs, fault, det, crash)
	}

	cm := sim.PaperCostModel()
	if *fig4 {
		fmt.Printf("\n# Figure 4: total utilization fraction f_k, 100 intervals, cube Laplace\n")
		fmt.Printf("%4s %10s %10s %10s\n", "k", "n=64", "n=128", "n=512")
		var series [][]float64
		for _, cores := range []int{64, 128, 512} {
			u, r := simulate(plan.Graph, cm, cores)
			series = append(series, u.Total)
			first, last, plateau, found := u.Starvation(0.7)
			fmt.Printf("# n=%d: makespan %.3fs, plateau f=%.2f, dip=%v",
				cores, r.Makespan/1e9, plateau, found)
			if found {
				fmt.Printf(" at k=[%d,%d] (width %d%%)", first, last, last-first+1)
			}
			fmt.Println()
		}
		for kk := 0; kk < 100; kk++ {
			fmt.Printf("%4d %10.4f %10.4f %10.4f\n", kk, series[0][kk], series[1][kk], series[2][kk])
		}
	}

	if *fig5 {
		fmt.Printf("\n# Figure 5: utilization fraction by class, 128 cores, 100 intervals\n")
		u, _ := simulate(plan.Graph, cm, 128)
		panels := []struct {
			name string
			ops  []dag.OpKind
		}{
			{"up the source tree", []dag.OpKind{dag.OpS2M, dag.OpM2M}},
			{"source tree to target tree", []dag.OpKind{dag.OpM2I, dag.OpI2I, dag.OpI2L}},
			{"final target values", []dag.OpKind{dag.OpS2T, dag.OpL2L, dag.OpL2T}},
		}
		for _, p := range panels {
			fmt.Printf("\n## panel: %s\n%4s", p.name, "k")
			for _, op := range p.ops {
				fmt.Printf(" %10s", op)
			}
			fmt.Println()
			for kk := 0; kk < 100; kk++ {
				fmt.Printf("%4d", kk)
				for _, op := range p.ops {
					v := 0.0
					if s := u.ByClass[uint8(op)]; s != nil {
						v = s[kk]
					}
					fmt.Printf(" %10.4f", v)
				}
				fmt.Println()
			}
			// Last interval where each class is active: the paper's point
			// is that S->M / M->M stretch deep into the run under oblivious
			// scheduling.
			for _, op := range p.ops {
				lastK := -1
				if s := u.ByClass[uint8(op)]; s != nil {
					for kk, v := range s {
						if v > 1e-6 {
							lastK = kk
						}
					}
				}
				fmt.Printf("# %v last active at k=%d\n", op, lastK)
			}
		}
	}
}

// distStamp encodes the binary's scenario parameters into the handshake
// stamp, so a worker built from different flags (or a different binary) is
// rejected at join instead of silently computing a different DAG.
func distStamp(n, digits, thr, locs int) string {
	return fmt.Sprintf("dashmm-bench/n=%d,digits=%d,thr=%d,locs=%d", n, digits, thr, locs)
}

// distHeartbeat is the multi-process failure detector: 500ms of silence
// before a verdict, slack enough for a loaded CI runner hosting every rank.
func distHeartbeat() amt.FailureDetectorConfig {
	return amt.FailureDetectorConfig{Interval: 50 * time.Millisecond, MissedBeats: 10}
}

// distWorkers splits the machine's cores across the ranks.
func distWorkers(locs int) int {
	w := runtime.GOMAXPROCS(0) / locs
	if w < 1 {
		w = 1
	}
	return w
}

// coordinatorAddr picks rank 0's well-known address before the workers are
// forked: a tmpdir socket for unix, a just-probed free loopback port for tcp.
func coordinatorAddr(network string) string {
	switch network {
	case "unix":
		return filepath.Join(os.TempDir(), fmt.Sprintf("dashmm-bench-%d.sock", os.Getpid()))
	case "tcp":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		return addr
	}
	log.Fatalf("unknown -net %q (want tcp or unix)", network)
	return ""
}

// runDistCoordinator is rank 0 of a multi-process run: it forks the worker
// ranks as child processes of this same binary, evaluates over the socket
// mesh, verifies the gathered potentials against the sequential evaluation
// at 1e-12, and reports the transport and recovery counters.
func runDistCoordinator(plan *core.Plan, n int, network string, locs, killRank int, killAt float64, digits, thr int) {
	if locs < 2 {
		log.Fatal("-net requires -locs >= 2")
	}
	if killRank >= 0 && (killRank == 0 || killRank >= locs) {
		log.Fatalf("-kill-rank %d: must be a worker rank in 1..%d", killRank, locs-1)
	}
	addr := coordinatorAddr(network)
	if network == "unix" {
		defer os.Remove(addr)
	}
	cl, err := amt.NewCluster(amt.ClusterConfig{
		Rank: 0, World: locs, Network: network, Addr: addr,
		Stamp: distStamp(n, digits, thr, locs), Heartbeat: distHeartbeat(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	kids := make([]*exec.Cmd, 0, locs-1)
	for r := 1; r < locs; r++ {
		cmd := exec.Command(self,
			"-dist-rank", strconv.Itoa(r), "-dist-addr", addr,
			"-net", network, "-locs", strconv.Itoa(locs),
			"-n", strconv.Itoa(n), "-digits", strconv.Itoa(digits), "-threshold", strconv.Itoa(thr),
			"-kill-rank", strconv.Itoa(killRank), "-kill-at", fmt.Sprint(killAt))
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatalf("fork rank %d: %v", r, err)
		}
		kids = append(kids, cmd)
	}

	q := points.Charges(n, 3)
	got, rep, err := core.DistRun(plan, cl, q, core.DistOptions{
		Workers: distWorkers(locs), Seed: 1, Timeout: 5 * time.Minute,
	})
	for i, cmd := range kids {
		werr := cmd.Wait()
		rank := i + 1
		if rank == killRank {
			fmt.Printf("# rank %d (victim) exited: %v\n", rank, werr)
			continue
		}
		if werr != nil {
			log.Fatalf("rank %d exited: %v", rank, werr)
		}
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n# distributed run: %d processes (%s) x %d workers, elapsed %v, %s\n",
		locs, network, rep.Workers, rep.Elapsed, rep.Runtime)
	ts := rep.Runtime.Transport
	fmt.Printf("# wire: messages=%d bytes-out=%d bytes-in=%d reconnects=%d handshake-failures=%d\n",
		ts.WireMessages, ts.BytesOut, ts.BytesIn, ts.Reconnects, ts.HandshakeFailures)
	fmt.Printf("# delivery: sent=%d acked=%d retried=%d deadline-exceeded=%d dropped=%d\n",
		ts.Sent, ts.Acked, ts.Retried, ts.DeadlineExceeded, ts.Dropped)
	r := rep.Recovery
	fmt.Printf("# recovery: ranks-killed=%d subgraph-nodes-reexecuted=%d edges-replayed=%d\n",
		r.RanksKilled, r.NodesRebuilt, r.EdgesReplayed)

	want, err := plan.EvaluateSequential(q)
	if err != nil {
		log.Fatal(err)
	}
	var den, worst float64
	for i := range want {
		if m := math.Abs(want[i]); m > den {
			den = m
		}
	}
	for i := range got {
		if e := math.Abs(got[i]-want[i]) / den; e > worst {
			worst = e
		}
	}
	if worst > 1e-12 {
		fmt.Printf("# dist: FAIL max relative error %.3e (gate 1e-12)\n", worst)
		os.Exit(1)
	}
	fmt.Printf("# dist: PASS max relative error %.3e (gate 1e-12)\n", worst)
}

// runDistWorker is one forked worker rank: join the cluster, evaluate, and
// — when chosen as the chaos victim — SIGKILL itself at the requested local
// progress fraction, leaving the survivors to detect and recover.
func runDistWorker(plan *core.Plan, rank, locs int, network, addr, stamp string, killRank int, killAt float64) int {
	cl, err := amt.NewCluster(amt.ClusterConfig{
		Rank: rank, World: locs, Network: network, Addr: addr,
		Stamp: stamp, Heartbeat: distHeartbeat(),
	})
	if err != nil {
		log.Printf("rank %d join: %v", rank, err)
		return 1
	}
	defer cl.Close()
	opts := core.DistOptions{Workers: distWorkers(locs), Seed: int64(rank) + 1, Timeout: 5 * time.Minute}
	if killRank == rank {
		opts.OnProgress = func(fired, owned int) {
			if owned > 0 && float64(fired) >= killAt*float64(owned) {
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		}
	}
	if _, _, err := core.DistRun(plan, cl, nil, opts); err != nil {
		log.Printf("rank %d: %v", rank, err)
		return 1
	}
	return 0
}

// simulate runs the DAG on `cores` simulated cores (32 per locality) and
// returns the 100-interval utilization analysis.
func simulate(g *dag.Graph, cm sim.CostModel, cores int) (*trace.Utilization, sim.Result) {
	L := cores / coresPerLocality
	if L < 1 {
		L = 1
	}
	dist.MinComm{}.Assign(g, L)
	r := sim.Run(g, sim.Config{
		Localities: L, Cores: cores / L, Model: cm, Sched: sim.FIFO, CollectEvents: true,
	})
	u := trace.Analyze(r.Events, cores, 100, 0, int64(r.Makespan))
	return u, r
}

// runReal executes the DAG on the goroutine runtime of this machine
// (optionally split across simulated localities with an injected-fault
// parcel wire) and prints measured utilization, per-op averages, and the
// transport counters.
func runReal(plan *core.Plan, n int, traceOut string, locs int, fault *amt.FaultProfile,
	det *amt.FailureDetectorConfig, crash []core.CrashPlan) {
	if locs < 1 {
		locs = 1
	}
	w := runtime.GOMAXPROCS(0) / locs
	if w < 1 {
		w = 1
	}
	q := points.Charges(n, 3)
	tr := trace.New(locs * w)
	_, rep, err := plan.Evaluate(q, core.ExecOptions{
		Localities: locs, Workers: w, Tracer: tr, Fault: fault,
		Detector: det, Crash: crash,
	})
	if err != nil {
		log.Fatal(err)
	}
	events := tr.Snapshot()
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteJSON(f, events); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# trace written to %s (%d events)\n", traceOut, len(events))
	}
	totalW := locs * w
	fmt.Printf("\n# real runtime: %d localities x %d workers, elapsed %v, %s\n",
		locs, w, rep.Elapsed, rep.Runtime)
	ts := rep.Runtime.Transport
	fmt.Printf("# transport: sent=%d retried=%d acked=%d delivered=%d deduped=%d dropped=%d duplicated=%d deadline-exceeded=%d\n",
		ts.Sent, ts.Retried, ts.Acked, ts.Delivered, ts.Deduped, ts.Dropped, ts.Duplicated, ts.DeadlineExceeded)
	if det != nil {
		r := rep.Recovery
		fmt.Printf("# recovery: ranks-killed=%d recoveries=%d subgraph-nodes-reexecuted=%d edges-replayed=%d stale-dropped=%d recovery-wall=%v\n",
			r.RanksKilled, r.Recoveries, r.NodesRebuilt, r.EdgesReplayed, r.StaleDropped, r.RecoveryWall)
	}
	start, end := trace.Span(events)
	u := trace.Analyze(events, totalW, 100, start, end)
	var avg float64
	for _, v := range u.Total {
		avg += v
	}
	fmt.Printf("# measured mean utilization: %.2f (paper: ~0.98 single locality)\n", avg/100)
	fmt.Printf("# per-op averages [µs]:\n")
	am := trace.AvgMicrosByClass(events)
	var ops []int
	for c := range am {
		ops = append(ops, int(c))
	}
	sort.Ints(ops)
	netEvents := map[string]int{}
	for _, ev := range events {
		if name := trace.NetClassName(ev.Class); name != "" {
			netEvents[name]++
		}
	}
	for _, c := range ops {
		// Transport fault markers are zero-duration; report their counts
		// separately instead of a meaningless average.
		if trace.NetClassName(uint8(c)) != "" {
			continue
		}
		fmt.Printf("#   %-5v %10.2f\n", dag.OpKind(c), am[uint8(c)])
	}
	if len(netEvents) > 0 {
		var names []string
		for name := range netEvents {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("# transport fault events:\n")
		for _, name := range names {
			fmt.Printf("#   %-12s %6d\n", name, netEvents[name])
		}
	}
}
