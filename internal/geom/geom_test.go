package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	a := Point{1, 2, 3}
	b := Point{-2, 0.5, 4}
	if got := a.Add(b); got != (Point{-1, 2.5, 7}) {
		t.Errorf("Add: %v", got)
	}
	if got := a.Sub(b); got != (Point{3, 1.5, -1}) {
		t.Errorf("Sub: %v", got)
	}
	if got := a.Scale(2); got != (Point{2, 4, 6}) {
		t.Errorf("Scale: %v", got)
	}
	if got := a.Dot(b); got != -2+1+12 {
		t.Errorf("Dot: %v", got)
	}
	if math.Abs(a.Norm()-math.Sqrt(14)) > 1e-15 {
		t.Errorf("Norm: %v", a.Norm())
	}
}

func TestBoundingCubeContainsAll(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := make([]Point, 50)
		for i := range pts {
			pts[i] = Point{rng.NormFloat64() * 3, rng.NormFloat64(), rng.Float64() * 10}
		}
		c := BoundingCube(pts)
		for _, p := range pts {
			if !c.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBoundingCubeIsCube(t *testing.T) {
	pts := []Point{{0, 0, 0}, {10, 1, 2}}
	c := BoundingCube(pts)
	if c.Side < 10 {
		t.Errorf("side %v too small", c.Side)
	}
}

func TestChildParentRoundTrip(t *testing.T) {
	ix := Index{Level: 3, X: 5, Y: 2, Z: 7}
	for o := 0; o < 8; o++ {
		c := ix.Child(o)
		if c.Parent() != ix {
			t.Errorf("child %d parent mismatch", o)
		}
		if c.Octant() != o {
			t.Errorf("octant %d reported as %d", o, c.Octant())
		}
		if !c.Valid() {
			t.Errorf("child %d invalid", o)
		}
	}
}

func TestIndexCubeNesting(t *testing.T) {
	dom := Cube{Low: Point{-1, -1, -1}, Side: 4}
	ix := Index{Level: 2, X: 1, Y: 3, Z: 0}
	c := ix.Cube(dom)
	if c.Side != 1 {
		t.Errorf("level-2 side %v, want 1", c.Side)
	}
	// The child cube containing a point must contain it.
	p := Point{0.3, 2.9, -0.7}
	root := Root
	cur := root
	for l := 0; l < 5; l++ {
		o := cur.ChildContaining(dom, p)
		cur = cur.Child(o)
		if !cur.Cube(dom).Contains(p) {
			t.Fatalf("level %d cube %v does not contain %v", l+1, cur, p)
		}
	}
}

func TestWellSeparated(t *testing.T) {
	a := Index{Level: 3, X: 4, Y: 4, Z: 4}
	cases := []struct {
		b    Index
		want bool
	}{
		{Index{Level: 3, X: 5, Y: 5, Z: 5}, false},
		{Index{Level: 3, X: 4, Y: 4, Z: 4}, false},
		{Index{Level: 3, X: 6, Y: 4, Z: 4}, true},
		{Index{Level: 3, X: 3, Y: 2, Z: 4}, true},
		{Index{Level: 3, X: 5, Y: 3, Z: 4}, false},
	}
	for _, c := range cases {
		if got := a.WellSeparated(c.b); got != c.want {
			t.Errorf("WellSeparated(%v, %v) = %v", a, c.b, got)
		}
	}
}

func TestAdjacentCrossLevel(t *testing.T) {
	// A level-2 box and the level-3 box sharing a face are adjacent.
	a := Index{Level: 2, X: 1, Y: 1, Z: 1}
	b := Index{Level: 3, X: 4, Y: 2, Z: 2} // touches a's low-x face region
	if !Adjacent(a, b) {
		t.Error("face-sharing boxes not adjacent")
	}
	far := Index{Level: 3, X: 0, Y: 0, Z: 0}
	if Adjacent(a, far) {
		t.Error("distant boxes adjacent")
	}
	// A box is adjacent to itself and to its parent.
	if !Adjacent(a, a) || !Adjacent(a, a.Parent()) {
		t.Error("self/parent adjacency broken")
	}
}

func TestAdjacentSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Index{Level: int8(rng.Intn(4)), X: int32(rng.Intn(8)), Y: int32(rng.Intn(8)), Z: int32(rng.Intn(8))}
		b := Index{Level: int8(rng.Intn(4)), X: int32(rng.Intn(8)), Y: int32(rng.Intn(8)), Z: int32(rng.Intn(8))}
		na := int32(1) << uint(a.Level)
		nb := int32(1) << uint(b.Level)
		a.X, a.Y, a.Z = a.X%na, a.Y%na, a.Z%na
		b.X, b.Y, b.Z = b.X%nb, b.Y%nb, b.Z%nb
		return Adjacent(a, b) == Adjacent(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMortonDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for x := uint32(0); x < 8; x++ {
		for y := uint32(0); y < 8; y++ {
			for z := uint32(0); z < 8; z++ {
				m := Morton(x, y, z)
				if seen[m] {
					t.Fatalf("collision at (%d,%d,%d)", x, y, z)
				}
				seen[m] = true
			}
		}
	}
}

func TestDirectionProperties(t *testing.T) {
	for d := Direction(0); d < NumDirections; d++ {
		if d.Opposite().Opposite() != d {
			t.Errorf("%v: double opposite", d)
		}
		if d.Opposite().Axis() != d.Axis() {
			t.Errorf("%v: opposite changes axis", d)
		}
		if d.Opposite().Sign() != -d.Sign() {
			t.Errorf("%v: opposite keeps sign", d)
		}
	}
}

func TestDirectionOfSlabPriority(t *testing.T) {
	cases := []struct {
		dx, dy, dz int32
		want       Direction
	}{
		{0, 0, 2, Up}, {0, 0, -3, Down},
		{3, 3, 2, Up},    // z-slab wins regardless of lateral offset
		{3, 2, 1, North}, // then y
		{2, 1, -1, East}, // then x
		{-3, 1, 0, West},
	}
	for _, c := range cases {
		got, ok := DirectionOf(c.dx, c.dy, c.dz)
		if !ok || got != c.want {
			t.Errorf("DirectionOf(%d,%d,%d) = %v,%v want %v", c.dx, c.dy, c.dz, got, ok, c.want)
		}
	}
	if _, ok := DirectionOf(1, 1, 1); ok {
		t.Error("near offset classified")
	}
}
