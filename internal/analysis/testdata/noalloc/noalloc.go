// Package noalloc is a fixture for the hotpath-noalloc analyzer.
package noalloc

import "fmt"

type buf struct {
	items []int
}

// addOK appends in place: amortized zero allocation, true negative.
//
//dashmm:noalloc
func (b *buf) addOK(v int) {
	b.items = append(b.items, v)
}

// resetOK uses the buffer-reuse idiom: true negative.
//
//dashmm:noalloc
func (b *buf) resetOK(v int) {
	b.items = append(b.items[:0], v)
}

// structValOK builds a plain struct value, which stays on the stack: true
// negative.
//
//dashmm:noalloc
func structValOK() int {
	p := struct{ x, y int }{1, 2}
	return p.x + p.y
}

// makeBad allocates with make: true positive.
//
//dashmm:noalloc
func (b *buf) makeBad() {
	b.items = make([]int, 4) // want "make allocates"
}

// litBad allocates a slice literal: true positive.
//
//dashmm:noalloc
func (b *buf) litBad() {
	b.items = []int{1} // want "slice literal"
}

// escapeBad takes the address of a composite literal: true positive.
//
//dashmm:noalloc
func escapeBad() *buf {
	return &buf{} // want "escapes"
}

// fmtBad formats on the hot path: true positive.
//
//dashmm:noalloc
func fmtBad(v int) {
	fmt.Println(v) // want "fmt"
}

// freshAppendBad grows a fresh backing array: true positive.
//
//dashmm:noalloc
func freshAppendBad(dst, src []int) []int {
	dst = append(src, 1) // want "fresh backing array"
	return dst
}

// closureBad allocates a capturing closure: true positive.
//
//dashmm:noalloc
func closureBad(n int) func() int {
	return func() int { return n } // want "closure captures"
}

// suppressedMake is a cold branch inside an annotated function, silenced
// with a justification.
//
//dashmm:noalloc
func suppressedMake(init bool) {
	if init {
		//lint:ignore hotpath-noalloc one-time warmup branch, off the steady state
		_ = make([]int, 4)
	}
}

// coldPath is unannotated: allocations are fine, true negative.
func coldPath() []int {
	return make([]int, 8)
}
