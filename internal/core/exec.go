package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/amt"
	"repro/internal/dag"
	"repro/internal/dist"
	"repro/internal/geom"
	"repro/internal/trace"
)

// ExecOptions configures a parallel evaluation on the AMT runtime.
type ExecOptions struct {
	// Localities and Workers shape the runtime (defaults 1 and 1).
	Localities int
	Workers    int
	// Policy places the implicit DAG (default dist.MinComm, the paper's
	// policy).
	Policy dist.Policy
	// Tracer, if non-nil, records one event per operator application for
	// the utilization analysis.
	Tracer *trace.Tracer
	// Latency is injected per remote parcel.
	Latency time.Duration
	// Seed makes the scheduler's steal order reproducible.
	Seed int64
	// Priority enables the binary priority hints the paper proposes in
	// Section VI: tasks of the upward source-tree sweep (S and M nodes) run
	// before everything else, pulling the critical path forward.
	Priority bool
	// Gradient also computes the potential gradient at every target;
	// retrieve it with EvaluateGrad.
	Gradient bool
}

// ExecReport describes one parallel evaluation.
type ExecReport struct {
	// Gradients holds the per-target potential gradient when
	// ExecOptions.Gradient was set (nil otherwise), in the caller's target
	// order.
	Gradients   []geom.Point
	Runtime     amt.Stats
	Elapsed     time.Duration
	RemoteBytes int64
	RemoteEdges int64
	Localities  int
	Workers     int
}

// parcelOverhead is the per-edge descriptor cost added to a coalesced
// parcel (operation type + target global address), as in Section IV.
const parcelOverhead = 16

// Evaluate runs the DAG on the AMT runtime: every expansion node becomes a
// custom LCO holding its payload and out-edge list; the last arriving input
// triggers a continuation that processes the out edges — local edges
// sequentially (the paper's cache-locality choice), remote edges coalesced
// into one parcel per destination locality carrying the expansion data and
// the relevant edges.
func (p *Plan) Evaluate(charges []float64, opts ExecOptions) ([]float64, ExecReport, error) {
	if opts.Localities <= 0 {
		opts.Localities = 1
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.Policy == nil {
		opts.Policy = dist.MinComm{}
	}
	st, err := p.newState(charges, opts.Gradient)
	if err != nil {
		return nil, ExecReport{}, err
	}
	g := p.Graph
	opts.Policy.Assign(g, opts.Localities)

	rt := amt.New(amt.Config{
		Localities: opts.Localities,
		Workers:    opts.Workers,
		Latency:    opts.Latency,
		Seed:       opts.Seed,
	})
	ex := &executor{
		st:        st,
		g:         g,
		rt:        rt,
		tracer:    opts.Tracer,
		priority:  opts.Priority,
		remaining: make([]atomic.Int32, len(g.Nodes)),
		locks:     make([]sync.Mutex, len(g.Nodes)),
	}
	for i := range g.Nodes {
		ex.remaining[i].Store(g.Nodes[i].In)
	}

	start := time.Now()
	stats := rt.Run(func() {
		for _, id := range g.Roots() {
			n := &g.Nodes[id]
			loc := rt.Locality(int(n.Locality))
			if ex.isHigh(id) {
				loc.SpawnHigh(ex.nodeTask(id))
			} else {
				loc.Spawn(ex.nodeTask(id))
			}
		}
	})
	elapsed := time.Since(start)

	// Sanity: every node must have fired.
	for i := range ex.remaining {
		if ex.remaining[i].Load() > 0 {
			return nil, ExecReport{}, fmt.Errorf("core: node %d (%v) never triggered (%d inputs missing)",
				i, g.Nodes[i].Kind, ex.remaining[i].Load())
		}
	}
	return st.potentials(), ExecReport{
		Gradients:   st.gradients(),
		Runtime:     stats,
		Elapsed:     elapsed,
		RemoteBytes: dist.RemoteBytes(g),
		RemoteEdges: dist.RemoteEdges(g),
		Localities:  opts.Localities,
		Workers:     opts.Workers,
	}, nil
}

// executor is the LCO network of one evaluation.
type executor struct {
	st        *state
	g         *dag.Graph
	rt        *amt.Runtime
	tracer    *trace.Tracer
	priority  bool
	remaining []atomic.Int32
	locks     []sync.Mutex
}

// isHigh reports whether a node's continuation carries the high priority
// hint: the upward source-tree sweep feeding the critical path.
func (ex *executor) isHigh(id int32) bool {
	if !ex.priority {
		return false
	}
	k := ex.g.Nodes[id].Kind
	return k == dag.NodeS || k == dag.NodeM
}

// nodeTask returns the continuation of node id: process the out-edge list.
// It runs once, when the node's LCO triggers (all inputs arrived).
func (ex *executor) nodeTask(id int32) amt.Task {
	return func(w *amt.Worker) {
		n := &ex.g.Nodes[id]
		myLoc := int32(w.Rank())
		// Local edges first, sequentially: the large input payload is
		// reused while hot (Section VI discusses this trade-off).
		var remote map[int32][]dag.Edge
		for _, e := range n.Out {
			dest := ex.g.Nodes[e.To].Locality
			if dest == myLoc {
				ex.deliver(w, n, e)
				continue
			}
			if remote == nil {
				remote = make(map[int32][]dag.Edge)
			}
			remote[dest] = append(remote[dest], e)
		}
		// One coalesced parcel per destination locality: expansion data +
		// edge descriptors travel once, the transforms run at the receiver.
		for dest, edges := range remote {
			edges := edges
			bytes := int(n.Bytes) + parcelOverhead*len(edges)
			w.SendParcel(int(dest), bytes, func(w2 *amt.Worker) {
				for _, e := range edges {
					ex.deliver(w2, n, e)
				}
			})
		}
	}
}

// deliver applies one edge into its target LCO: the transform plus
// reduction runs under the target's lock; the final input triggers the
// target's continuation.
func (ex *executor) deliver(w *amt.Worker, from *dag.Node, e dag.Edge) {
	var t0 int64
	if ex.tracer.Enabled() {
		t0 = ex.tracer.Now()
	}
	ex.locks[e.To].Lock()
	ex.st.apply(from, e)
	ex.locks[e.To].Unlock()
	if ex.tracer.Enabled() {
		ex.tracer.Record(w.GlobalID, trace.Event{
			Class:    uint8(e.Op),
			Worker:   int32(w.GlobalID),
			Locality: int32(w.Rank()),
			Start:    t0,
			End:      ex.tracer.Now(),
		})
	}
	if ex.remaining[e.To].Add(-1) == 0 {
		to := &ex.g.Nodes[e.To]
		high := ex.isHigh(to.ID)
		switch {
		case int32(w.Rank()) == to.Locality && high:
			w.SpawnHigh(ex.nodeTask(to.ID))
		case int32(w.Rank()) == to.Locality:
			w.Spawn(ex.nodeTask(to.ID))
		case high:
			ex.rt.Locality(int(to.Locality)).SpawnHigh(ex.nodeTask(to.ID))
		default:
			// The LCO lives on its home locality; its continuation runs
			// there.
			ex.rt.Locality(int(to.Locality)).Spawn(ex.nodeTask(to.ID))
		}
	}
}
