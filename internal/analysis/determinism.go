package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism keeps the numeric core reproducible: packages on its list may
// not read wall-clock time, may not draw from the global math/rand source,
// and may not iterate a map to produce ordered output. Identical inputs must
// yield bit-identical expansions, or the paper's accuracy comparisons (and
// the repo's golden-file tests) stop meaning anything.
//
// Flagged in a listed package:
//
//   - time.Now / time.Since / time.Until calls (wall clock);
//   - calls to math/rand package-level functions other than New/NewSource —
//     the process-global source is seeded per-process, so results vary run
//     to run. Explicitly-seeded rand.New(rand.NewSource(seed)) is fine;
//   - `for ... := range m` over a map type: Go randomizes map iteration
//     order, so any output built from it is nondeterministic. Iterations
//     that provably commute can be suppressed with //lint:ignore.
type Determinism struct {
	// Packages lists the import-path suffixes the checker applies to.
	Packages []string
}

// NewDeterminism returns the determinism analyzer with the default package
// list: the numeric core, plus tree construction and DAG derivation — the
// ROADMAP's incremental-repair work diffs Morton orders and DAG regions
// between time steps, which only means anything if both are reproducible.
func NewDeterminism() *Determinism {
	return &Determinism{Packages: []string{
		"internal/points",
		"internal/kernel",
		"internal/sphharm",
		"internal/geom",
		"internal/tree",
		"internal/dag",
	}}
}

// Name implements Analyzer.
func (*Determinism) Name() string { return "determinism" }

// Doc implements Analyzer.
func (*Determinism) Doc() string {
	return "numeric-core packages may not use wall clock, global math/rand, or map iteration order"
}

// applies reports whether the pass's package is on the checker's list.
func (c *Determinism) applies(p *Pass) bool {
	for _, suffix := range c.Packages {
		if p.Path == suffix || strings.HasSuffix(p.Path, "/"+suffix) {
			return true
		}
	}
	return false
}

// randAllowed are the math/rand package-level functions that don't touch the
// global source.
var randAllowed = map[string]bool{"New": true, "NewSource": true}

// Run implements Analyzer.
func (c *Determinism) Run(p *Pass) {
	if !c.applies(p) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				pkgPath, name, ok := packageLevelCall(p, node)
				if !ok {
					return true
				}
				switch pkgPath {
				case "time":
					switch name {
					case "Now", "Since", "Until":
						p.Report(node.Pos(),
							"time.%s reads the wall clock; deterministic packages must take time as a parameter",
							name)
					}
				case "math/rand", "math/rand/v2":
					if !randAllowed[name] {
						p.Report(node.Pos(),
							"rand.%s uses the process-global random source; use an explicitly seeded rand.New(rand.NewSource(seed))",
							name)
					}
				}
			case *ast.RangeStmt:
				tv, ok := p.Info.Types[node.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					p.Report(node.Pos(),
						"map iteration order is randomized; collect and sort keys before producing ordered output")
				}
			}
			return true
		})
	}
}

// packageLevelCall resolves a call of the form pkg.Fn(...) to its package
// path and function name.
func packageLevelCall(p *Pass, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := p.Info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}
