package amt

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestLCORejectsOverflowInputs: inputs past `needed` must not run their
// reduction, must not re-trigger, and must be counted.
func TestLCORejectsOverflowInputs(t *testing.T) {
	rt := New(Config{Localities: 1, Workers: 2})
	var sum atomic.Int64
	var fired atomic.Int64
	var rejected atomic.Int64
	lco := NewLCO(rt.Locality(0), 3)
	rt.Run(func() {
		loc := rt.Locality(0)
		lco.Register(func(w *Worker) { fired.Add(1) })
		for i := 0; i < 8; i++ {
			loc.Spawn(func(w *Worker) {
				if !lco.Input(func() { sum.Add(1) }) {
					rejected.Add(1)
				}
			})
		}
	})
	if fired.Load() != 1 {
		t.Fatalf("LCO fired %d times, want 1", fired.Load())
	}
	if sum.Load() != 3 {
		t.Errorf("reduction ran %d times, want exactly needed=3", sum.Load())
	}
	if rejected.Load() != 5 {
		t.Errorf("%d inputs rejected, want 5", rejected.Load())
	}
	if got, want := lco.Arrived(), 3; got != want {
		t.Errorf("Arrived() = %d, want %d", got, want)
	}
	if got, want := lco.Needed(), 3; got != want {
		t.Errorf("Needed() = %d, want %d", got, want)
	}
	if got, want := lco.Overflow(), 5; got != want {
		t.Errorf("Overflow() = %d, want %d", got, want)
	}
}

// TestLCOAccessorsBeforeTrigger: Arrived tracks accepted inputs while the
// LCO is still waiting.
func TestLCOAccessorsBeforeTrigger(t *testing.T) {
	rt := New(Config{Localities: 1, Workers: 1})
	lco := NewLCO(rt.Locality(0), 5)
	rt.Run(func() {
		rt.Locality(0).Spawn(func(w *Worker) {
			lco.Input(nil)
			lco.Input(nil)
		})
	})
	if lco.Arrived() != 2 || lco.Triggered() {
		t.Fatalf("arrived=%d triggered=%v, want 2/false", lco.Arrived(), lco.Triggered())
	}
	if lco.Overflow() != 0 {
		t.Fatalf("overflow=%d before saturation", lco.Overflow())
	}
}

// TestLCOZeroInputTriggersImmediately: an LCO expecting nothing is born
// triggered, so registrations run and stray inputs are rejected.
func TestLCOZeroInputTriggersImmediately(t *testing.T) {
	rt := New(Config{Localities: 1, Workers: 1})
	var ran atomic.Bool
	lco := NewLCO(rt.Locality(0), 0)
	rt.Run(func() {
		if !lco.Triggered() {
			t.Error("zero-input LCO not triggered at creation")
		}
		lco.Register(func(w *Worker) { ran.Store(true) })
		if lco.Input(nil) {
			t.Error("input accepted by a zero-input LCO")
		}
	})
	if !ran.Load() {
		t.Fatal("continuation did not run")
	}
}

// TestLCORegisterInputRaceSpawnsOnce is the regression test for late
// registration racing the trigger: every continuation registered
// concurrently with the final inputs must run exactly once — never zero
// times (lost registration) and never twice (spawned both by the trigger
// sweep and the late-registration path). Run under -race via `make race`.
func TestLCORegisterInputRaceSpawnsOnce(t *testing.T) {
	const (
		trials = 50
		conts  = 16
		inputs = 8
	)
	for trial := 0; trial < trials; trial++ {
		rt := New(Config{Localities: 1, Workers: 4, Seed: int64(trial)})
		var runs [conts]atomic.Int64
		lco := NewLCO(rt.Locality(0), inputs)
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(conts + inputs)
		rt.Run(func() {
			// One task blocks a worker until every Register/Input has
			// landed, holding the runtime open; its pending unit guarantees
			// Run cannot drain before the raced spawns are accounted.
			rt.Locality(0).Spawn(func(w *Worker) {
				start.Done()
				done.Wait()
			})
			// Raw goroutines (not tasks) maximize the Register/Input
			// interleavings; the spawned continuations still run on the
			// runtime's remaining workers.
			for i := 0; i < conts; i++ {
				i := i
				go func() {
					defer done.Done()
					start.Wait()
					lco.Register(func(w *Worker) { runs[i].Add(1) })
				}()
			}
			for i := 0; i < inputs; i++ {
				go func() {
					defer done.Done()
					start.Wait()
					lco.Input(nil)
				}()
			}
		})
		for i := 0; i < conts; i++ {
			if n := runs[i].Load(); n != 1 {
				t.Fatalf("trial %d: continuation %d ran %d times, want exactly 1", trial, i, n)
			}
		}
	}
}
