// Package lockguard is a fixture for the lockguard analyzer: true
// positives are marked with want comments carrying a message substring,
// true negatives carry no marker, and one diagnostic is silenced with
// //lint:ignore.
package lockguard

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

type registry struct {
	mu    sync.RWMutex
	names []string // guarded by mu
}

// inc holds the mutex: a true negative.
func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// incDeferred uses the defer idiom: still a lexical lock, true negative.
func (c *counter) incDeferred() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// readRLock takes the read lock on an RWMutex: accepted as holding.
func (r *registry) readRLock() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.names)
}

// bad reads the guarded field without any lock: a true positive.
func (c *counter) bad() int {
	return c.n // want "guarded by"
}

// suppressed reads without the lock but carries a justified suppression.
func (c *counter) suppressed() int {
	//lint:ignore lockguard monitoring read tolerates a stale count
	return c.n
}

// lockedByCaller relies on its caller's critical section, declared with the
// dashmm:locked annotation: a true negative.
//
//dashmm:locked counter.mu — fixture precondition: caller holds the lock.
func (c *counter) lockedByCaller() int { return c.n }

// newCounter initializes the guarded field inside a composite literal,
// which is exempt (initialization before publication).
func newCounter() *counter {
	return &counter{n: 1}
}

type badspec struct {
	x int // guarded by nosuch — want "has no field"
}
