package core

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/points"
)

// The pooled-runtime path of ParallelEvaluation: the first Run builds the
// runtime, every following Run re-arms it (RuntimeReused), and the results
// stay bit-compatible with the sequential reference across generations.
func TestParallelEvaluationRuntimeReuse(t *testing.T) {
	plan, q, want := testPlan(t, dag.Advanced, 2500)
	pe, err := plan.NewParallelEvaluation(ExecOptions{Localities: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 4; run++ {
		got, rep, err := pe.Run(q)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		assertSame(t, got, want, 1e-9)
		if run == 0 && rep.RuntimeReused {
			t.Error("first run cannot reuse a runtime")
		}
		if run > 0 && !rep.RuntimeReused {
			t.Errorf("run %d rebuilt the runtime instead of reusing it", run)
		}
		if rep.Runtime.TasksRun == 0 {
			t.Errorf("run %d reports zero tasks (stale per-generation stats?)", run)
		}
	}
	// A different charge vector on the reused runtime still evaluates
	// correctly (the payload reset is per-run, the runtime per-context).
	q2 := points.Charges(len(q), 17)
	want2, err := plan.EvaluateSequential(q2)
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := pe.Run(q2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.RuntimeReused {
		t.Error("charge swap dropped the pooled runtime")
	}
	assertSame(t, got, want2, 1e-9)
}

// Plan.Reset re-arms every evaluation context created from the plan: after
// a Reset (as the serving layer issues following a failed request) both the
// sequential and the parallel contexts still produce correct results.
func TestPlanResetReexecutable(t *testing.T) {
	plan, q, want := testPlan(t, dag.Advanced, 1500)
	ev, err := plan.NewEvaluation()
	if err != nil {
		t.Fatal(err)
	}
	pe, err := plan.NewParallelEvaluation(ExecOptions{Localities: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Dirty both contexts with a run, then Reset the plan and re-run.
	if _, err := ev.Run(q); err != nil {
		t.Fatal(err)
	}
	if _, _, err := pe.Run(q); err != nil {
		t.Fatal(err)
	}
	plan.Reset()
	got, err := ev.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, got, want, 1e-12)
	pgot, rep, err := pe.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, pgot, want, 1e-9)
	if rep.RuntimeReused {
		t.Error("Plan.Reset must discard the pooled runtime (conservative re-arm)")
	}
	// The run after the post-Reset one pools again.
	if _, rep, err = pe.Run(q); err != nil || !rep.RuntimeReused {
		t.Errorf("pooling did not resume after Reset: reused=%v err=%v", rep.RuntimeReused, err)
	}
}

// Single-shot configurations (fault wire, detector) must not pool the
// runtime: their wire and fencing state encode one run's history.
func TestRuntimeNotReusedWithDetector(t *testing.T) {
	plan, q, want := testPlan(t, dag.Advanced, 1500)
	pe, err := plan.NewParallelEvaluation(ExecOptions{
		Localities: 2, Workers: 2, Detector: testDetector(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 2; run++ {
		got, rep, err := pe.Run(q)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		assertSame(t, got, want, 1e-9)
		if rep.RuntimeReused {
			t.Fatalf("run %d reused a detector-armed runtime", run)
		}
	}
}
