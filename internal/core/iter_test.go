package core

import (
	"math"
	"testing"

	"repro/internal/kernel"
	"repro/internal/points"
)

func TestEvaluationMatchesSequential(t *testing.T) {
	const n = 3000
	pts := points.Generate(points.Sphere, n, 21)
	k := kernel.NewLaplace(6)
	plan, err := NewPlan(pts, pts, k, Options{Threshold: 40})
	if err != nil {
		t.Fatal(err)
	}
	q := points.UnitCharges(n)
	want, err := plan.EvaluateSequential(q)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := plan.NewEvaluation()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 2; trial++ {
		got, err := ev.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9*math.Abs(want[i]) {
				t.Fatalf("trial %d: mismatch at %d: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
}
