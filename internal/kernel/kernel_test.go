package kernel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// testCase bundles one kernel configuration for the operator accuracy tests.
type testCase struct {
	name string
	k    Kernel
	tol  float64 // relative error target: 3 digits, with margin
}

func kernels(t testing.TB) []testCase {
	p := OrderForDigits(3)
	lap := NewLaplace(p)
	yuk := NewYukawa(p, 4.0)
	// Prepare for a unit root domain refined to level 5.
	lap.Prepare(1.0, 5)
	yuk.Prepare(1.0, 5)
	return []testCase{
		{"laplace", lap, 1e-3},
		{"yukawa", yuk, 1e-3},
	}
}

// randBox returns n points uniform in the cube of the given center and side.
func randBox(rng *rand.Rand, c geom.Point, side float64, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: c.X + side*(rng.Float64()-0.5),
			Y: c.Y + side*(rng.Float64()-0.5),
			Z: c.Z + side*(rng.Float64()-0.5),
		}
	}
	return pts
}

func randCharges(rng *rand.Rand, n int) []float64 {
	q := make([]float64, n)
	for i := range q {
		q[i] = 2*rng.Float64() - 1
	}
	return q
}

// direct computes the reference potentials.
func direct(k Kernel, spts []geom.Point, q []float64, tpts []geom.Point) []float64 {
	pot := make([]float64, len(tpts))
	k.S2T(spts, q, tpts, pot)
	return pot
}

// relErr returns max_i |a_i - b_i| / max_i |b_i|.
func relErr(a, b []float64) float64 {
	var num, den float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > num {
			num = d
		}
		if m := math.Abs(b[i]); m > den {
			den = m
		}
	}
	if den == 0 {
		return num
	}
	return num / den
}

func TestS2MM2TAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range kernels(t) {
		c := geom.Point{X: 0.5, Y: 0.5, Z: 0.5}
		spts := randBox(rng, c, 0.25, 40) // side 0.25 box
		q := randCharges(rng, 40)
		// Targets in a well-separated region (two box sides away).
		tpts := randBox(rng, c.Add(geom.Point{X: 0.5, Y: 0.25, Z: -0.25}), 0.25, 30)
		m := make([]complex128, tc.k.MLSize())
		tc.k.S2M(c, spts, q, m)
		pot := make([]float64, len(tpts))
		tc.k.M2T(c, m, tpts, pot)
		want := direct(tc.k, spts, q, tpts)
		if e := relErr(pot, want); e > tc.tol {
			t.Errorf("%s: S2M+M2T rel err %.2e > %.0e", tc.name, e, tc.tol)
		}
	}
}

func TestS2LL2TAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tc := range kernels(t) {
		c := geom.Point{X: 0.5, Y: 0.5, Z: 0.5}
		// Sources far away, targets near c.
		spts := randBox(rng, c.Add(geom.Point{X: -0.5, Y: 0.5, Z: 0.25}), 0.25, 40)
		q := randCharges(rng, 40)
		tpts := randBox(rng, c, 0.25, 30)
		l := make([]complex128, tc.k.MLSize())
		tc.k.S2L(c, spts, q, l)
		pot := make([]float64, len(tpts))
		tc.k.L2T(c, l, tpts, pot)
		want := direct(tc.k, spts, q, tpts)
		if e := relErr(pot, want); e > tc.tol {
			t.Errorf("%s: S2L+L2T rel err %.2e > %.0e", tc.name, e, tc.tol)
		}
	}
}

func TestM2MAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range kernels(t) {
		childSide := 0.125
		parent := geom.Point{X: 0.5, Y: 0.5, Z: 0.5}
		// One child in each octant contributes sources.
		mParent := make([]complex128, tc.k.MLSize())
		var allS []geom.Point
		var allQ []float64
		for o := 0; o < 8; o++ {
			off := geom.Point{
				X: childSide / 2 * float64(2*(o&1)-1),
				Y: childSide / 2 * float64(2*(o>>1&1)-1),
				Z: childSide / 2 * float64(2*(o>>2&1)-1),
			}
			cc := parent.Add(off)
			spts := randBox(rng, cc, childSide, 15)
			q := randCharges(rng, 15)
			mc := make([]complex128, tc.k.MLSize())
			tc.k.S2M(cc, spts, q, mc)
			tc.k.M2M(cc, parent, childSide, mc, mParent)
			allS = append(allS, spts...)
			allQ = append(allQ, q...)
		}
		// Evaluate at list-2 distance of the parent box (side 0.25).
		tpts := randBox(rng, parent.Add(geom.Point{X: 0.5, Y: -0.25, Z: 0.25}), 0.2, 25)
		pot := make([]float64, len(tpts))
		tc.k.M2T(parent, mParent, tpts, pot)
		want := direct(tc.k, allS, allQ, tpts)
		if e := relErr(pot, want); e > tc.tol {
			t.Errorf("%s: M2M rel err %.2e > %.0e", tc.name, e, tc.tol)
		}
	}
}

func TestM2LAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, tc := range kernels(t) {
		side := 0.25
		sc := geom.Point{X: 0.25, Y: 0.25, Z: 0.25}
		// Worst-case list-2 geometry: centers exactly two box sides apart.
		for _, off := range []geom.Point{
			{X: 2 * side}, {X: 2 * side, Y: 2 * side, Z: 2 * side},
			{X: -2 * side, Y: side}, {Z: 3 * side},
		} {
			tcn := sc.Add(off)
			spts := randBox(rng, sc, side, 30)
			q := randCharges(rng, 30)
			tpts := randBox(rng, tcn, side, 20)
			m := make([]complex128, tc.k.MLSize())
			tc.k.S2M(sc, spts, q, m)
			l := make([]complex128, tc.k.MLSize())
			tc.k.M2L(sc, tcn, side, m, l)
			pot := make([]float64, len(tpts))
			tc.k.L2T(tcn, l, tpts, pot)
			want := direct(tc.k, spts, q, tpts)
			if e := relErr(pot, want); e > tc.tol {
				t.Errorf("%s: M2L offset %v rel err %.2e > %.0e", tc.name, off, e, tc.tol)
			}
		}
	}
}

func TestL2LAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tc := range kernels(t) {
		side := 0.25
		parent := geom.Point{X: 0.5, Y: 0.5, Z: 0.5}
		spts := randBox(rng, parent.Add(geom.Point{X: 2.5 * side, Y: -2 * side}), side, 30)
		q := randCharges(rng, 30)
		lp := make([]complex128, tc.k.MLSize())
		tc.k.S2L(parent, spts, q, lp)
		// Translate to each child and evaluate inside the child.
		for o := 0; o < 8; o++ {
			childSide := side / 2
			cc := parent.Add(geom.Point{
				X: childSide / 2 * float64(2*(o&1)-1),
				Y: childSide / 2 * float64(2*(o>>1&1)-1),
				Z: childSide / 2 * float64(2*(o>>2&1)-1),
			})
			lc := make([]complex128, tc.k.MLSize())
			tc.k.L2L(parent, cc, childSide, lp, lc)
			tpts := randBox(rng, cc, childSide, 10)
			pot := make([]float64, len(tpts))
			tc.k.L2T(cc, lc, tpts, pot)
			want := direct(tc.k, spts, q, tpts)
			if e := relErr(pot, want); e > tc.tol {
				t.Errorf("%s: L2L octant %d rel err %.2e > %.0e", tc.name, o, e, tc.tol)
			}
		}
	}
}

func TestYukawaDegeneratesToLaplace(t *testing.T) {
	// With a tiny screening parameter the Yukawa potential over a unit-scale
	// configuration matches Laplace to first order.
	p := 8
	lap := NewLaplace(p)
	yuk := NewYukawa(p, 1e-6)
	rng := rand.New(rand.NewSource(6))
	spts := randBox(rng, geom.Point{X: 0.3, Y: 0.3, Z: 0.3}, 0.2, 20)
	q := randCharges(rng, 20)
	tpts := randBox(rng, geom.Point{X: 0.8, Y: 0.8, Z: 0.8}, 0.2, 20)
	a := direct(lap, spts, q, tpts)
	b := direct(yuk, spts, q, tpts)
	if e := relErr(a, b); e > 1e-5 {
		t.Errorf("Yukawa(1e-6) vs Laplace rel err %.2e", e)
	}
	// And the expansions agree too.
	ml := make([]complex128, lap.MLSize())
	my := make([]complex128, yuk.MLSize())
	c := geom.Point{X: 0.3, Y: 0.3, Z: 0.3}
	lap.S2M(c, spts, q, ml)
	yuk.S2M(c, spts, q, my)
	for i := range ml {
		if d := cAbs(ml[i] - my[i]); d > 1e-4*(1+cAbs(ml[i])) {
			t.Errorf("moment %d differs: %v vs %v", i, ml[i], my[i])
		}
	}
}

func cAbs(z complex128) float64 { return math.Hypot(real(z), imag(z)) }

func TestExpansionLinearity(t *testing.T) {
	// Superposition: S2M of the union equals the sum of S2M of the parts,
	// and doubling charges doubles the expansion.
	for _, tc := range kernels(t) {
		rng := rand.New(rand.NewSource(7))
		c := geom.Point{X: 0.5, Y: 0.5, Z: 0.5}
		a := randBox(rng, c, 0.25, 10)
		bq := randBox(rng, c, 0.25, 10)
		qa := randCharges(rng, 10)
		qb := randCharges(rng, 10)
		mU := make([]complex128, tc.k.MLSize())
		tc.k.S2M(c, append(append([]geom.Point{}, a...), bq...), append(append([]float64{}, qa...), qb...), mU)
		mA := make([]complex128, tc.k.MLSize())
		tc.k.S2M(c, a, qa, mA)
		tc.k.S2M(c, bq, qb, mA) // accumulate
		for i := range mU {
			if cAbs(mU[i]-mA[i]) > 1e-12*(1+cAbs(mU[i])) {
				t.Fatalf("%s: superposition violated at %d: %v vs %v", tc.name, i, mU[i], mA[i])
			}
		}
		q2 := make([]float64, len(qa))
		for i := range q2 {
			q2[i] = 2 * qa[i]
		}
		m2 := make([]complex128, tc.k.MLSize())
		tc.k.S2M(c, a, q2, m2)
		m1 := make([]complex128, tc.k.MLSize())
		tc.k.S2M(c, a, qa, m1)
		for i := range m2 {
			if cAbs(m2[i]-2*m1[i]) > 1e-12*(1+cAbs(m2[i])) {
				t.Fatalf("%s: homogeneity violated at %d", tc.name, i)
			}
		}
	}
}

func TestS2TSkipsCoincidentPoints(t *testing.T) {
	k := NewLaplace(4)
	pts := []geom.Point{{X: 0.1}, {X: 0.2}}
	q := []float64{1, 1}
	pot := make([]float64, 2)
	k.S2T(pts, q, pts, pot)
	want := 1 / 0.1
	for i := range pot {
		if math.Abs(pot[i]-want) > 1e-12 {
			t.Errorf("pot[%d] = %v, want %v", i, pot[i], want)
		}
	}
}

func TestOrderForDigits(t *testing.T) {
	if p := OrderForDigits(3); p < 8 || p > 10 {
		t.Errorf("OrderForDigits(3) = %d, expected around 8", p)
	}
	if p3, p6 := OrderForDigits(3), OrderForDigits(6); p6 <= p3 {
		t.Errorf("order must grow with digits: %d vs %d", p3, p6)
	}
}
