// Command dashmm-serve is the long-lived evaluation daemon: it keeps built
// plans (tree + DAG + kernel tables), evaluation contexts and amt runtimes
// warm across requests, so the iterative-evaluation amortization of the
// paper's Section IV extends across clients of a service.
//
// Endpoints:
//
//	POST /evaluate      JSON evaluation request -> potentials + report
//	GET  /healthz       liveness
//	GET  /metrics       counters, gauges and per-phase latency histograms
//	GET  /debug/pprof/  standard pprof handlers
//
// A minimal request is {"n": 10000}; see internal/serve.Request for the
// full schema (distribution / inline points, kernel, accuracy, execution
// shape, charges, deadline_ms, trace).
//
// With -workers N the daemon forks N worker-rank processes (this same
// binary, re-executed) into a supervised standing pool: requests of at
// least -dist-threshold points run distributed across the ranks, dead
// workers are respawned and re-admitted with a fresh wire generation, and
// when the fabric cannot be healed the daemon degrades to in-process
// evaluation (responses marked "degraded") instead of failing.
//
// Example:
//
//	dashmm-serve -addr :8075 -workers 4 &
//	curl -s localhost:8075/evaluate -d '{"n":20000,"workers":4}' | head -c 200
//	curl -s localhost:8075/metrics          # per-rank health under "dist"
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	// Worker re-exec: a process forked by the pool never reaches the flag
	// parsing below — it joins the coordinator and serves jobs until EXIT.
	if serve.MaybeWorker() {
		return
	}

	var (
		addr       = flag.String("addr", ":8075", "listen address")
		maxQueue   = flag.Int("max-queue", 64, "admission queue depth; excess requests get 429")
		maxConc    = flag.Int("max-concurrent", 2, "evaluations running at once")
		cacheSize  = flag.Int("cache-size", 16, "plan-cache capacity (plans)")
		deadline   = flag.Duration("default-deadline", 30*time.Second, "deadline for requests without deadline_ms")
		maxPoints  = flag.Int("max-points", 200000, "largest accepted ensemble (-1 = unlimited)")
		drainGrace = flag.Duration("drain", 10*time.Second, "shutdown grace period")
		storeDir   = flag.String("store", "", "persistent plan-store directory (empty = no spill/recovery)")

		workers     = flag.Int("workers", 0, "worker-rank pool size (0 = in-process only)")
		distNet     = flag.String("dist-net", "unix", "pool transport: unix or tcp")
		distThresh  = flag.Int("dist-threshold", 4096, "smallest ensemble routed over the pool (-1 = never)")
		rankThreads = flag.Int("rank-threads", 0, "scheduler threads per rank (0 = auto)")
	)
	flag.Parse()

	srv := serve.New(serve.Config{
		MaxQueue:        *maxQueue,
		MaxConcurrent:   *maxConc,
		CacheSize:       *cacheSize,
		DefaultDeadline: *deadline,
		MaxPoints:       *maxPoints,
		DistThreshold:   *distThresh,
	})

	if *storeDir != "" {
		st, err := serve.OpenStore(*storeDir)
		if err != nil {
			log.Fatalf("dashmm-serve: %v", err)
		}
		srv.UseStore(st)
		recovered, skipped, err := srv.RecoverFromStore()
		if err != nil {
			log.Fatalf("dashmm-serve: recovering plan store: %v", err)
		}
		log.Printf("dashmm-serve: plan store %s: %d plans recovered, %d unreadable records skipped",
			*storeDir, recovered, skipped)
	}

	var pool *serve.Pool
	if *workers > 0 {
		p, err := serve.NewPool(serve.PoolConfig{
			Workers:     *workers,
			Network:     *distNet,
			RankThreads: *rankThreads,
		})
		if err != nil {
			// Degraded from birth: the daemon still serves everything
			// in-process rather than refusing to start.
			log.Printf("dashmm-serve: worker pool failed to start, serving in-process only: %v", err)
		} else {
			srv.AttachPool(p)
			pool = p
			log.Printf("dashmm-serve: worker pool up (%d ranks over %s, threshold %d points)",
				*workers, *distNet, *distThresh)
		}
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("dashmm-serve: draining (up to %v)", *drainGrace)
		ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("dashmm-serve: forced shutdown: %v", err)
		}
		// Tear the pool down only after the listener drained: in-flight
		// distributed requests finish (or degrade) first, and no worker
		// process outlives the daemon.
		if pool != nil {
			pool.Close()
			log.Printf("dashmm-serve: worker pool stopped")
		}
		close(done)
	}()

	log.Printf("dashmm-serve: listening on %s (queue=%d, concurrent=%d, cache=%d plans)",
		*addr, *maxQueue, *maxConc, *cacheSize)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		if pool != nil {
			pool.Close()
		}
		log.Fatal(err)
	}
	<-done
}
