package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches golden markers in fixture comments: a want keyword
// followed by a double-quoted substring of the expected message.
var wantRe = regexp.MustCompile(`want "([^"]*)"`)

// loadFixture type-checks one testdata package.
func loadFixture(t *testing.T, name string) (*Loader, *Pass) {
	t.Helper()
	l := NewLoader(".")
	pass, err := l.LoadDir(filepath.Join("testdata", name), "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return l, pass
}

// runFixture checks an analyzer's diagnostics against the fixture's want
// markers: every marker must be hit by a diagnostic on its line whose
// message contains the quoted substring, and every diagnostic must have a
// marker. Suppressed and true-negative lines therefore fail the test if the
// analyzer fires on them.
func runFixture(t *testing.T, name string, analyzers ...Analyzer) {
	t.Helper()
	l, pass := loadFixture(t, name)
	diags := Run([]*Pass{pass}, analyzers)

	type key struct {
		file string
		line int
	}
	expected := map[key][]string{}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pos := l.Fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					expected[k] = append(expected[k], m[1])
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		subs := expected[k]
		matched := -1
		for i, s := range subs {
			if strings.Contains(d.Message, s) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		expected[k] = append(subs[:matched], subs[matched+1:]...)
		if len(expected[k]) == 0 {
			delete(expected, k)
		}
	}
	for k, subs := range expected {
		for _, s := range subs {
			t.Errorf("%s:%d: want diagnostic containing %q, got none", k.file, k.line, s)
		}
	}
}

func TestLockGuardFixture(t *testing.T) {
	runFixture(t, "lockguard", NewLockGuard())
}

func TestAtomicFieldFixture(t *testing.T) {
	runFixture(t, "atomicfield", NewAtomicField())
}

func TestDeterminismFixture(t *testing.T) {
	runFixture(t, "determinism", &Determinism{Packages: []string{"fixture/determinism"}})
}

func TestNoAllocFixture(t *testing.T) {
	runFixture(t, "noalloc", NewNoAlloc())
}

func TestGoroutineFixture(t *testing.T) {
	runFixture(t, "goroutine", &Goroutine{Packages: []string{"fixture/goroutine"}})
}

func TestLockOrderFixture(t *testing.T) {
	runFixture(t, "lockorder", &LockOrder{Packages: []string{"fixture/lockorder"}})
}

func TestWireProtoFixture(t *testing.T) {
	runFixture(t, "wireproto", NewWireProto())
}

// TestDiagnosticDetail asserts the machine-readable payloads -json exposes:
// every lockorder finding carries its acquisition chain in Detail, and
// wireproto coverage/order findings carry both sides' field layouts.
func TestDiagnosticDetail(t *testing.T) {
	_, pass := loadFixture(t, "lockorder")
	diags := Run([]*Pass{pass}, []Analyzer{&LockOrder{Packages: []string{"fixture/lockorder"}}})
	if len(diags) == 0 {
		t.Fatal("lockorder fixture produced no diagnostics")
	}
	for _, d := range diags {
		if d.Detail == "" {
			t.Errorf("lockorder diagnostic missing acquisition chain: %s", d)
		}
	}

	_, pass = loadFixture(t, "wireproto")
	diags = Run([]*Pass{pass}, []Analyzer{NewWireProto()})
	withLayout := 0
	for _, d := range diags {
		if strings.Contains(d.Detail, "encode:") && strings.Contains(d.Detail, "decode:") {
			withLayout++
		}
	}
	if withLayout == 0 {
		t.Errorf("no wireproto diagnostic carries the field-layout detail: %v", diags)
	}
}

// TestLockOrderScoping verifies the package allowlist: outside its
// configured universe the checker records nothing and stays silent.
func TestLockOrderScoping(t *testing.T) {
	_, pass := loadFixture(t, "lockorder")
	diags := Run([]*Pass{pass}, []Analyzer{NewLockOrder()})
	if len(diags) != 0 {
		t.Fatalf("lockorder fired outside its package list: %v", diags)
	}
}

// TestEscapeGate compiles the escapegate fixture in a throwaway module and
// checks the compiler-backed gate: the genuine escape is reported, the
// suppressed one is not, the clean and unannotated functions stay silent.
func TestEscapeGate(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "escapegate", "esc.go"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module escfixture\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "esc.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}

	diags, err := RunEscapeGate(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("RunEscapeGate: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly the Leak diagnostic, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Check != "escape-gate" {
		t.Errorf("check = %q, want escape-gate", d.Check)
	}
	if !strings.Contains(d.Message, "heap escape in //dashmm:noalloc Leak") ||
		!strings.Contains(d.Message, "moved to heap") {
		t.Errorf("unexpected message: %s", d.Message)
	}
}

// TestDeterminismScoping verifies the package allowlist: the same fixture
// linted under an import path outside the configured list yields nothing.
func TestDeterminismScoping(t *testing.T) {
	_, pass := loadFixture(t, "determinism")
	diags := Run([]*Pass{pass}, []Analyzer{NewDeterminism()})
	if len(diags) != 0 {
		t.Fatalf("determinism fired outside its package list: %v", diags)
	}
}

// TestMalformedSuppressions asserts that //lint:ignore directives lacking a
// check list or reason surface as pseudo-check "lint" diagnostics, that they
// do not suppress anything, and that the well-formed control both stays
// silent and suppresses its diagnostic.
func TestMalformedSuppressions(t *testing.T) {
	_, pass := loadFixture(t, "suppress")
	diags := Run([]*Pass{pass}, []Analyzer{NewLockGuard()})

	var lintLines, lockguardLines []int
	for _, d := range diags {
		switch d.Check {
		case "lint":
			lintLines = append(lintLines, d.Pos.Line)
		case "lockguard":
			lockguardLines = append(lockguardLines, d.Pos.Line)
		default:
			t.Errorf("unexpected check %q: %s", d.Check, d)
		}
	}
	if len(lintLines) != 2 {
		t.Errorf("want 2 malformed-suppression diagnostics, got %d: %v", len(lintLines), diags)
	}
	// The two malformed directives fail to suppress, so their guarded reads
	// still fire; the well-formed control's read must not.
	if len(lockguardLines) != 2 {
		t.Errorf("want 2 unsuppressed lockguard diagnostics, got %d: %v", len(lockguardLines), diags)
	}
}

// TestDiagnosticOrdering checks the driver sorts by file, line, column.
func TestDiagnosticOrdering(t *testing.T) {
	_, pass := loadFixture(t, "noalloc")
	diags := Run([]*Pass{pass}, []Analyzer{NewNoAlloc()})
	if len(diags) < 2 {
		t.Fatalf("fixture produced %d diagnostics, want several", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1].Pos, diags[i].Pos
		if a.Filename > b.Filename || (a.Filename == b.Filename && a.Line > b.Line) {
			t.Fatalf("diagnostics out of order: %s before %s", diags[i-1], diags[i])
		}
	}
}

// TestAnalyzerRegistry pins the suite: seven checkers with stable names.
func TestAnalyzerRegistry(t *testing.T) {
	want := []string{"lockguard", "atomicfield", "determinism", "hotpath-noalloc", "goroutine-hygiene", "lockorder", "wireproto"}
	got := DefaultAnalyzers()
	if len(got) != len(want) {
		t.Fatalf("registry has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name() != want[i] {
			t.Errorf("analyzer %d named %q, want %q", i, a.Name(), want[i])
		}
		if a.Doc() == "" {
			t.Errorf("analyzer %s has no doc", a.Name())
		}
	}
}
