package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockGuard enforces `// guarded by <mu>` field annotations: a field so
// annotated may only be read or written inside a function that lexically
// acquires that mutex (Lock/RLock/TryLock on a value of the mutex's holder
// type) or that is annotated `//dashmm:locked <Type>.<mu> reason`, asserting
// its caller holds the lock.
//
// Two annotation forms are accepted on a struct field:
//
//	f T // guarded by mu         the mutex is field <mu> of this struct
//	f T // guarded by Type.mu    the mutex is field <mu> of package type Type
//
// The check is lexical and type-granular, not object-granular: locking any
// value of the holder type satisfies it, and a Lock anywhere in the function
// covers the whole body. That deliberately trades soundness for zero false
// positives on the runtime's lock idioms (lock/unlock windows, deferred
// unlocks, closures run under a callee's critical section). Composite
// literals are exempt: initialization before publication needs no lock.
type LockGuard struct{}

// NewLockGuard returns the lockguard analyzer.
func NewLockGuard() *LockGuard { return &LockGuard{} }

// Name implements Analyzer.
func (*LockGuard) Name() string { return "lockguard" }

// Doc implements Analyzer.
func (*LockGuard) Doc() string {
	return "fields annotated `guarded by <mu>` must only be accessed with the mutex held"
}

// guardSpec names the mutex protecting one guarded field.
type guardSpec struct {
	holder *types.TypeName // type owning the mutex field
	mutex  string          // mutex field name on holder
}

func (g guardSpec) String() string { return g.holder.Name() + "." + g.mutex }

// lockKey is one "this function holds that mutex" fact.
type lockKey struct {
	holder *types.TypeName
	mutex  string
}

const guardedByMarker = "guarded by "

// Run implements Analyzer.
func (c *LockGuard) Run(p *Pass) {
	guards := c.collectGuards(p)
	if len(guards) == 0 {
		return
	}
	walkFuncs(p, func(_ *ast.File, fn *ast.FuncDecl) {
		held := c.heldLocks(p, fn)
		inComposite := compositeRanges(fn.Body)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection := p.Info.Selections[sel]
			if selection == nil || selection.Kind() != types.FieldVal {
				return true
			}
			v, ok := selection.Obj().(*types.Var)
			if !ok {
				return true
			}
			spec, guarded := guards[v]
			if !guarded {
				return true
			}
			if inComposite.contains(sel.Pos()) {
				return true
			}
			if held[lockKey{spec.holder, spec.mutex}] {
				return true
			}
			p.Report(sel.Sel.Pos(),
				"field %s.%s is guarded by %s, but %s neither locks a %s's %s nor is annotated //dashmm:locked %s",
				fieldOwnerName(v), v.Name(), spec, funcName(fn), spec.holder.Name(), spec.mutex, spec)
			return true
		})
	})
}

// collectGuards parses the `guarded by` annotations of every struct field in
// the package, reporting malformed or unresolvable specs.
func (c *LockGuard) collectGuards(p *Pass) map[*types.Var]guardSpec {
	guards := map[*types.Var]guardSpec{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, s := range gd.Specs {
				ts, ok := s.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					specText, pos, found := fieldGuardAnnotation(field)
					if !found {
						continue
					}
					spec, err := c.resolveSpec(p, ts, specText)
					if err != nil {
						p.Report(pos, "bad `guarded by` annotation %q: %v", specText, err)
						continue
					}
					for _, name := range field.Names {
						if v, ok := p.Info.Defs[name].(*types.Var); ok {
							guards[v] = spec
						}
					}
				}
			}
		}
	}
	return guards
}

// fieldGuardAnnotation extracts the spec following "guarded by " from a
// field's doc or trailing comment.
func fieldGuardAnnotation(field *ast.Field) (spec string, pos token.Pos, found bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		text := cg.Text()
		i := strings.Index(text, guardedByMarker)
		if i < 0 {
			continue
		}
		rest := text[i+len(guardedByMarker):]
		end := strings.IndexFunc(rest, func(r rune) bool {
			return !(r == '.' || r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9')
		})
		if end >= 0 {
			rest = rest[:end]
		}
		return strings.TrimSpace(rest), cg.Pos(), true
	}
	return "", token.NoPos, false
}

// resolveSpec turns "mu" or "Type.mu" into a validated guardSpec relative to
// the struct declared by ts.
func (c *LockGuard) resolveSpec(p *Pass, ts *ast.TypeSpec, spec string) (guardSpec, error) {
	if spec == "" {
		return guardSpec{}, fmt.Errorf("empty mutex name")
	}
	typeName, mutex := ts.Name.Name, spec
	if dot := strings.IndexByte(spec, '.'); dot >= 0 {
		typeName, mutex = spec[:dot], spec[dot+1:]
		if typeName == "" || mutex == "" || strings.Contains(mutex, ".") {
			return guardSpec{}, fmt.Errorf("want \"mu\" or \"Type.mu\"")
		}
	}
	named, st := lookupNamed(p.Pkg, typeName)
	if named == nil || st == nil {
		return guardSpec{}, fmt.Errorf("no struct type %q in package %s", typeName, p.Pkg.Path())
	}
	mf := structFieldByName(st, mutex)
	if mf == nil {
		return guardSpec{}, fmt.Errorf("type %s has no field %q", typeName, mutex)
	}
	if !isMutexType(mf.Type()) {
		return guardSpec{}, fmt.Errorf("field %s.%s is not a sync.Mutex/RWMutex", typeName, mutex)
	}
	return guardSpec{holder: named.Obj(), mutex: mutex}, nil
}

// heldLocks collects the (holder type, mutex field) pairs this function
// acquires lexically, plus any //dashmm:locked annotations.
func (c *LockGuard) heldLocks(p *Pass, fn *ast.FuncDecl) map[lockKey]bool {
	held := map[lockKey]bool{}
	if rest, ok := funcHasDirective(fn, "dashmm:locked"); ok {
		// Annotation form: //dashmm:locked Type.mu reason...
		spec, _, _ := strings.Cut(rest, " ")
		if typeName, mutex, ok := strings.Cut(spec, "."); ok {
			if named, _ := lookupNamed(p.Pkg, typeName); named != nil {
				held[lockKey{named.Obj(), mutex}] = true
			} else {
				p.Report(fn.Pos(), "//dashmm:locked names unknown type %q", typeName)
			}
		} else {
			p.Report(fn.Pos(), "malformed //dashmm:locked %q: want \"Type.mu reason\"", rest)
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch method.Sel.Name {
		case "Lock", "RLock", "TryLock", "TryRLock":
		default:
			return true
		}
		mutexSel, ok := method.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		holderType, ok := p.Info.Types[mutexSel.X]
		if !ok {
			return true
		}
		named := namedOf(holderType.Type)
		if named == nil {
			return true
		}
		held[lockKey{named.Obj(), mutexSel.Sel.Name}] = true
		return true
	})
	return held
}

// ---- helpers ----

// posRanges is a set of [start, end] source intervals.
type posRanges [][2]int

func (rs posRanges) contains(p token.Pos) bool {
	for _, r := range rs {
		if int(p) >= r[0] && int(p) <= r[1] {
			return true
		}
	}
	return false
}

// compositeRanges returns the source ranges of every composite literal in
// the body: keyed initialization before publication is exempt from guards.
func compositeRanges(body *ast.BlockStmt) posRanges {
	var rs posRanges
	ast.Inspect(body, func(n ast.Node) bool {
		if cl, ok := n.(*ast.CompositeLit); ok {
			rs = append(rs, [2]int{int(cl.Pos()), int(cl.End())})
		}
		return true
	})
	return rs
}

// fieldOwnerName names the struct type a field belongs to, best-effort.
func fieldOwnerName(v *types.Var) string {
	// The field's parent scope doesn't name the struct; walk the package
	// scope for a named struct containing exactly this object.
	if pkg := v.Pkg(); pkg != nil {
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == v {
					return tn.Name()
				}
			}
		}
	}
	return "?"
}

// funcName renders a function's name with its receiver type.
func funcName(fn *ast.FuncDecl) string {
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		if t := recvTypeString(fn.Recv.List[0].Type); t != "" {
			return t + "." + fn.Name.Name
		}
	}
	return fn.Name.Name
}

func recvTypeString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return recvTypeString(t.X)
	case *ast.IndexExpr: // generic receiver
		return recvTypeString(t.X)
	}
	return ""
}
