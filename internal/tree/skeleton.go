package tree

import (
	"fmt"

	"repro/internal/geom"
)

// Skeleton is the serializable shape of a built Tree: the domain cube, the
// Morton-order permutation the adaptive partitioning produced, and every
// box in BFS order. Together with the original (unsorted) points — which
// for spec-generated ensembles are re-derivable from the request seed — it
// reconstructs the Tree exactly, skipping the recursive octant
// partitioning. The persistent plan store spills this per plan.
type Skeleton struct {
	Domain geom.Cube
	// Perm[i] is the original index of reordered position i (Tree.Perm).
	Perm []int
	// Boxes lists every box in the Tree.Boxes BFS order.
	Boxes []SkeletonBox
}

// SkeletonBox is one box of a Skeleton. Center, side, parent and children
// are all derivable from the Index and the domain; Lo/Hi delimit the box's
// slice of the reordered point array.
type SkeletonBox struct {
	Index  geom.Index
	Lo, Hi int
}

// Skeleton extracts the serializable shape of the tree.
func (t *Tree) Skeleton() Skeleton {
	sk := Skeleton{
		Domain: t.Domain,
		Perm:   append([]int(nil), t.Perm...),
		Boxes:  make([]SkeletonBox, len(t.Boxes)),
	}
	for i, b := range t.Boxes {
		sk.Boxes[i] = SkeletonBox{Index: b.Index, Lo: b.Lo, Hi: b.Hi}
	}
	return sk
}

// FromSkeleton reconstructs the Tree of pts from a skeleton previously
// produced by (*Tree).Skeleton on the same ensemble. pts is the ensemble in
// its original (caller) order; the skeleton's permutation re-derives the
// Morton-sorted point array without re-partitioning. Every structural claim
// of the skeleton is validated — a corrupt record must surface as an error,
// never as a panic or a silently wrong tree.
func FromSkeleton(pts []geom.Point, sk Skeleton) (*Tree, error) {
	n := len(pts)
	if len(sk.Perm) != n {
		return nil, fmt.Errorf("tree: skeleton permutation has %d entries for %d points", len(sk.Perm), n)
	}
	if len(sk.Boxes) == 0 {
		return nil, fmt.Errorf("tree: skeleton has no boxes")
	}
	seen := make([]bool, n)
	for _, p := range sk.Perm {
		if p < 0 || p >= n || seen[p] {
			return nil, fmt.Errorf("tree: skeleton permutation is not a permutation of %d points", n)
		}
		seen[p] = true
	}
	t := &Tree{
		Domain: sk.Domain,
		Pts:    make([]geom.Point, n),
		Perm:   append([]int(nil), sk.Perm...),
		byKey:  make(map[uint64]*Box, len(sk.Boxes)),
	}
	for i, p := range sk.Perm {
		t.Pts[i] = pts[p]
	}
	root := sk.Boxes[0]
	if root.Index != geom.Root || root.Lo != 0 || root.Hi != n {
		return nil, fmt.Errorf("tree: skeleton root is %v [%d,%d), want %v [0,%d)",
			root.Index, root.Lo, root.Hi, geom.Root, n)
	}
	for i, sb := range sk.Boxes {
		if !sb.Index.Valid() {
			return nil, fmt.Errorf("tree: skeleton box %d has invalid index %v", i, sb.Index)
		}
		if sb.Lo < 0 || sb.Hi > n || sb.Lo >= sb.Hi {
			return nil, fmt.Errorf("tree: skeleton box %d has bad range [%d,%d)", i, sb.Lo, sb.Hi)
		}
		if _, dup := t.byKey[sb.Index.Key()]; dup {
			return nil, fmt.Errorf("tree: skeleton repeats box %v", sb.Index)
		}
		cube := sb.Index.Cube(sk.Domain)
		b := &Box{
			Index:  sb.Index,
			Center: cube.Center(),
			Side:   cube.Side,
			Lo:     sb.Lo,
			Hi:     sb.Hi,
			Seq:    i,
		}
		if i > 0 {
			parent := t.byKey[sb.Index.Parent().Key()]
			if parent == nil {
				return nil, fmt.Errorf("tree: skeleton box %v has no parent (not BFS order?)", sb.Index)
			}
			o := sb.Index.Octant()
			if parent.Children[o] != nil {
				return nil, fmt.Errorf("tree: skeleton repeats octant %d of %v", o, parent.Index)
			}
			if sb.Lo < parent.Lo || sb.Hi > parent.Hi {
				return nil, fmt.Errorf("tree: skeleton box %v range [%d,%d) outside parent [%d,%d)",
					sb.Index, sb.Lo, sb.Hi, parent.Lo, parent.Hi)
			}
			b.Parent = parent
			parent.Children[o] = b
			parent.NChildren++
		}
		if i == 0 {
			t.Root = b
		}
		t.Boxes = append(t.Boxes, b)
		t.byKey[sb.Index.Key()] = b
		if b.Level() > t.MaxLevel {
			t.MaxLevel = b.Level()
		}
	}
	for _, b := range t.Boxes {
		if b.IsLeaf() {
			t.Leaves = append(t.Leaves, b)
		}
	}
	return t, nil
}
