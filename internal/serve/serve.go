// Package serve is the long-lived evaluation service behind cmd/dashmm-serve.
//
// The paper's premise (Section IV) is that FMM evaluation is iterative: the
// same tree + DAG is evaluated for many charge vectors, so setup cost must
// be amortized. This package lifts that amortization across requests of a
// daemon: plans (tree + lists + DAG + kernel tables) are cached by their
// problem key, evaluation contexts (payload buffers, LCO network) are
// pooled per execution shape, and the amt runtime itself is multi-shot
// (amt.Runtime.Reset), so a warm request skips every allocation the first
// request paid for.
//
// Admission control keeps the daemon stable under load: a bounded queue
// sheds excess requests with 429, per-request deadlines turn into 503
// instead of unbounded waits, a semaphore caps concurrent evaluations, and
// identical concurrent requests coalesce into a single evaluation.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"repro/internal/trace"
)

// Config bounds the server.
type Config struct {
	// MaxQueue is the admission-queue depth; requests beyond it are shed
	// with 429 (default 64).
	MaxQueue int
	// MaxConcurrent caps evaluations running at once (default 2; plans are
	// independently lockable, so two requests for different problems
	// genuinely overlap).
	MaxConcurrent int
	// CacheSize is the plan-cache capacity in plans (default 16).
	CacheSize int
	// DefaultDeadline bounds requests that do not set deadline_ms
	// (default 30s).
	DefaultDeadline time.Duration
	// MaxPoints rejects requests above this ensemble size with 400
	// (default 200000; 0 keeps the default, -1 disables the limit).
	MaxPoints int
	// DistThreshold routes eligible requests of at least this many points
	// through an attached worker-rank pool (default 4096; -1 disables
	// distributed routing even with a pool attached).
	DistThreshold int
}

func (c Config) withDefaults() Config {
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 16
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxPoints == 0 {
		c.MaxPoints = 200000
	} else if c.MaxPoints < 0 {
		c.MaxPoints = 0
	}
	if c.DistThreshold == 0 {
		c.DistThreshold = 4096
	} else if c.DistThreshold < 0 {
		c.DistThreshold = 0
	}
	return c
}

// call is one in-flight evaluation that identical concurrent requests
// piggyback on. The leader fills status + resp/errBody, then closes done.
type call struct {
	done    chan struct{}
	status  int
	resp    *Response
	errBody *errorBody
}

// Server is the evaluation daemon. Create with New, mount via Handler.
type Server struct {
	cfg     Config
	cache   *planCache
	metrics Metrics
	sem     chan struct{}
	start   time.Time
	pool    *Pool  // optional worker-rank pool; set before serving
	store   *Store // optional persistent plan store; set before serving

	callMu sync.Mutex
	calls  map[string]*call // guarded by callMu

	mux *http.ServeMux
}

// New builds a Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: newPlanCache(cfg.CacheSize),
		sem:   make(chan struct{}, cfg.MaxConcurrent),
		start: time.Now(),
		calls: make(map[string]*call),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("/evaluate", s.handleEvaluate)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	// pprof is registered explicitly on this mux (the server never uses
	// http.DefaultServeMux, so the blank-import side effect would miss).
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's counters (for tests and embedding).
func (s *Server) Metrics() *Metrics { return &s.metrics }

// AttachPool routes distributed-eligible requests through a worker-rank
// pool. Attach before serving; the server does not own the pool (the caller
// still closes it).
func (s *Server) AttachPool(p *Pool) { s.pool = p }

// Pool returns the attached worker-rank pool (nil without one).
func (s *Server) Pool() *Pool { return s.pool }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_ns": time.Since(s.start).Nanoseconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var dist *PoolSnapshot
	if s.pool != nil {
		dist = s.pool.Snapshot()
	}
	writeJSON(w, http.StatusOK, s.metrics.snapshot(s.cache.len(), dist))
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	s.metrics.Requests.Add(1)
	t0 := time.Now()

	var req Request
	body := http.MaxBytesReader(w, r.Body, 64<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.metrics.BadRequest.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	if err := req.normalize(s.cfg); err != nil {
		s.metrics.BadRequest.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}

	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	// Coalescing: an identical request already in flight (same plan, shape,
	// charges and trace flag) is waited on instead of re-evaluated. The
	// leader is registered before it queues for a slot, so duplicates
	// arriving any time before its response coalesce deterministically.
	key := req.requestKey()
	s.callMu.Lock()
	if c := s.calls[key]; c != nil {
		s.callMu.Unlock()
		s.metrics.Coalesced.Add(1)
		s.awaitCall(w, ctx, c, t0)
		return
	}

	// Admission: bound the queue while still holding callMu, so the
	// shed/registration decision is atomic with respect to duplicates.
	if n := s.metrics.queued.Add(1); n > int64(s.cfg.MaxQueue) {
		s.metrics.queued.Add(-1)
		s.callMu.Unlock()
		s.metrics.Shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests,
			errorBody{Error: fmt.Sprintf("queue full (%d waiting)", s.cfg.MaxQueue)})
		return
	}
	c := &call{done: make(chan struct{})}
	s.calls[key] = c
	s.callMu.Unlock()

	// Leader: wait for an evaluation slot within the deadline.
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.metrics.queued.Add(-1)
		s.finishCall(key, c, http.StatusServiceUnavailable,
			nil, &errorBody{Error: "deadline expired while queued"})
		s.metrics.Deadline.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, *c.errBody)
		return
	}
	queueWait := time.Since(t0)
	s.metrics.queued.Add(-1)
	s.metrics.QueueWait.Observe(queueWait)
	s.metrics.inflight.Add(1)
	defer func() {
		s.metrics.inflight.Add(-1)
		<-s.sem
	}()

	resp, status, errb := s.evaluate(ctx, &req, queueWait, t0)
	if errb != nil {
		s.finishCall(key, c, status, nil, errb)
		s.metrics.Failed.Add(1)
		if status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, status, *errb)
		return
	}
	s.metrics.Total.Observe(resp.Report.Total)
	s.finishCall(key, c, http.StatusOK, resp, nil)
	s.metrics.OK.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// finishCall publishes the leader's outcome and unregisters the call so a
// later identical request starts fresh.
func (s *Server) finishCall(key string, c *call, status int, resp *Response, errb *errorBody) {
	c.status = status
	c.resp = resp
	c.errBody = errb
	s.callMu.Lock()
	delete(s.calls, key)
	s.callMu.Unlock()
	close(c.done)
}

// awaitCall serves a coalesced duplicate: it waits for the leader's result
// (bounded by the duplicate's own deadline) and mirrors it.
func (s *Server) awaitCall(w http.ResponseWriter, ctx context.Context, c *call, t0 time.Time) {
	select {
	case <-ctx.Done():
		s.metrics.Deadline.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable,
			errorBody{Error: "deadline expired waiting on a coalesced request"})
		return
	case <-c.done:
	}
	if c.status != http.StatusOK {
		s.metrics.Failed.Add(1)
		writeJSON(w, c.status, *c.errBody)
		return
	}
	resp := *c.resp
	resp.Report.Coalesced = true
	resp.Report.QueueWait = time.Since(t0)
	resp.Report.Total = time.Since(t0)
	s.metrics.OK.Add(1)
	writeJSON(w, http.StatusOK, &resp)
}

// evaluate serves one admitted request through the plan cache. On error it
// returns the HTTP status alongside the body (500 for evaluation failures,
// 503 when the degraded fallback could not fit in the deadline).
func (s *Server) evaluate(reqCtx context.Context, req *Request, queueWait time.Duration, t0 time.Time) (*Response, int, *errorBody) {
	entry, hit, evicted := s.cache.get(req.planKey())
	if evicted > 0 {
		s.metrics.CacheEvicted.Add(int64(evicted))
	}
	if hit {
		s.metrics.CacheHits.Add(1)
		if entry.fromStore {
			s.metrics.StoreHits.Add(1)
		}
	} else {
		s.metrics.CacheMisses.Add(1)
	}
	if err := entry.ensureBuilt(req); err != nil {
		// A failed build latches its error in the entry forever; drop it so
		// a transient failure does not poison the key until LRU eviction.
		s.cache.drop(req.planKey(), entry)
		return nil, http.StatusInternalServerError, &errorBody{Error: "plan build failed: " + err.Error()}
	}
	var planBuild time.Duration
	if !hit {
		planBuild = entry.buildTime
		s.metrics.PlanBuild.Observe(planBuild)
	}

	// Evaluations on one plan serialize: the placement policy mutates the
	// shared graph per run. Different plans still run concurrently up to
	// MaxConcurrent.
	entry.mu.Lock()
	defer entry.mu.Unlock()

	// Distributed routing: large spec-generated requests go over the worker
	// pool; any pool failure degrades to the in-process path below — unless
	// the deadline already expired, which is a 503 the client should retry.
	degraded := false
	if s.pool != nil && req.distEligible(s.cfg.DistThreshold) {
		s.metrics.DistRequests.Add(1)
		// Measure from just before the pool runs, as the in-process path
		// measures from after ensureBuilt: subtracting queueWait from the
		// request total would fold cold plan-build (and entry-lock wait)
		// time into the Evaluate histogram.
		evalStart := time.Now()
		//lint:ignore lockorder entry.mu serializes evaluation of one plan by design (stampede protection): the critical section is the evaluation itself
		pots, rep, derr := s.pool.Evaluate(reqCtx, req, entry, req.chargeVector())
		if derr == nil {
			s.metrics.DistOK.Add(1)
			evalDur := time.Since(evalStart)
			s.metrics.Evaluate.Observe(evalDur)
			s.metrics.observeTransport(rep.Runtime.Transport)
			s.persistPlan(req, entry)
			g := entry.plan.Graph
			return &Response{
				Potentials: pots,
				Report: Report{
					CacheHit:      hit,
					StoreHit:      entry.fromStore,
					RuntimeReused: rep.RuntimeReused,
					QueueWait:     queueWait,
					PlanBuild:     planBuild,
					Evaluate:      evalDur,
					Total:         time.Since(t0),
					Localities:    rep.Localities,
					Workers:       rep.Workers,
					DAGNodes:      len(g.Nodes),
					DAGEdges:      g.NumEdges(),
					TasksRun:      rep.Runtime.TasksRun,
					ParcelsSent:   rep.Runtime.ParcelsSent,
					Steals:        rep.Runtime.Steals,
					Distributed:   true,
				},
			}, 0, nil
		}
		s.metrics.DistFailed.Add(1)
		if reqCtx.Err() != nil {
			s.metrics.Deadline.Add(1)
			return nil, http.StatusServiceUnavailable, &errorBody{
				Error:    "distributed evaluation failed and the deadline expired: " + derr.Error(),
				Degraded: true,
			}
		}
		// Fabric down but time remains: serve in-process, marked degraded.
		s.metrics.DegradedOK.Add(1)
		degraded = true
	}

	ctx, err := entry.shape(req)
	if err != nil {
		return nil, http.StatusInternalServerError, &errorBody{Error: "evaluation context: " + err.Error()}
	}
	if req.Trace {
		ctx.tracer.Reset()
		ctx.tracer.SetEnabled(true)
	}
	evalStart := time.Now()
	//lint:ignore lockorder entry.mu serializes evaluation of one plan by design (stampede protection): the critical section is the evaluation itself
	potentials, rep, err := ctx.pe.Run(req.chargeVector())
	evalDur := time.Since(evalStart)
	var traceJSONL string
	if req.Trace {
		events := ctx.tracer.Snapshot()
		ctx.tracer.SetEnabled(false)
		var buf bytes.Buffer
		if werr := trace.WriteJSON(&buf, events); werr == nil {
			traceJSONL = buf.String()
			s.metrics.Traces.Add(1)
		}
	}
	if err != nil {
		// Scrub the dirty mid-run state so the cached plan stays usable.
		entry.plan.Reset()
		return nil, http.StatusInternalServerError,
			&errorBody{Error: "evaluation failed: " + err.Error(), Degraded: degraded}
	}
	s.metrics.Evaluate.Observe(evalDur)
	s.metrics.observeTransport(rep.Runtime.Transport)
	if rep.RuntimeReused {
		s.metrics.RuntimeReuses.Add(1)
	}
	s.persistPlan(req, entry)

	g := entry.plan.Graph
	return &Response{
		Potentials: potentials,
		Report: Report{
			CacheHit:      hit,
			StoreHit:      entry.fromStore,
			RuntimeReused: rep.RuntimeReused,
			QueueWait:     queueWait,
			PlanBuild:     planBuild,
			Evaluate:      evalDur,
			Total:         time.Since(t0),
			Localities:    rep.Localities,
			Workers:       rep.Workers,
			DAGNodes:      len(g.Nodes),
			DAGEdges:      g.NumEdges(),
			TasksRun:      rep.Runtime.TasksRun,
			ParcelsSent:   rep.Runtime.ParcelsSent,
			Steals:        rep.Runtime.Steals,
			Degraded:      degraded,
		},
		TraceJSONL: traceJSONL,
	}, 0, nil
}
