// Command dagstat regenerates Tables I and II of the paper: the census of
// DAG nodes (count, payload size, in-/out-degree extrema per class) and of
// DAG edges (count, transferred bytes, and — with -time — the measured
// average execution time per operator class from a traced run).
//
// Paper configuration: 30M sources and targets in a cube, threshold 60,
// 3 digits. Scale N to this machine with -n.
//
//	dagstat -n 2000000 -dist cube -kernel laplace -time
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/kernel"
	"repro/internal/points"
	"repro/internal/trace"
)

func main() {
	var (
		n        = flag.Int("n", 200000, "number of sources and of targets (paper: 30M)")
		distName = flag.String("dist", "cube", "point distribution: cube | sphere | plummer")
		kernName = flag.String("kernel", "laplace", "kernel: laplace | yukawa")
		lambda   = flag.Float64("lambda", 4.0, "Yukawa screening parameter")
		digits   = flag.Int("digits", 3, "accuracy digits (paper: 3)")
		thr      = flag.Int("threshold", 60, "refinement threshold (paper: 60)")
		method   = flag.String("method", "advanced", "method: advanced | basic | barneshut")
		withTime = flag.Bool("time", false, "execute the DAG once and report t_avg per operator (Table II column 4)")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "workers for the timed run")
	)
	flag.Parse()

	dist, err := parseDist(*distName)
	if err != nil {
		log.Fatal(err)
	}
	var k kernel.Kernel
	switch *kernName {
	case "laplace":
		k = kernel.NewLaplace(kernel.OrderForDigits(*digits))
	case "yukawa":
		k = kernel.NewYukawa(kernel.OrderForDigits(*digits), *lambda)
	default:
		log.Fatalf("unknown kernel %q", *kernName)
	}
	m, err := parseMethod(*method)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("# dagstat: N=%d dist=%s kernel=%s digits=%d threshold=%d method=%s\n",
		*n, dist, k.Name(), *digits, *thr, m)
	sp := points.Generate(dist, *n, 1)
	tp := points.Generate(dist, *n, 2)
	plan, err := core.NewPlan(sp, tp, k, core.Options{Method: m, Threshold: *thr})
	if err != nil {
		log.Fatal(err)
	}
	nodes, edges := plan.Graph.Census()

	fmt.Printf("\nTable I: count, size and min/max in-/out-degree of DAG nodes\n")
	fmt.Print(dag.FormatNodeCensus(nodes))
	fmt.Printf("(%d nodes, %d edges total)\n", len(plan.Graph.Nodes), plan.Graph.NumEdges())

	var avg map[dag.OpKind]float64
	if *withTime {
		q := points.Charges(*n, 3)
		tr := trace.New(*workers)
		if _, _, err := plan.Evaluate(q, core.ExecOptions{Workers: *workers, Tracer: tr}); err != nil {
			log.Fatal(err)
		}
		avg = map[dag.OpKind]float64{}
		for c, v := range trace.AvgMicrosByClass(tr.Snapshot()) {
			avg[dag.OpKind(c)] = v
		}
	}
	fmt.Printf("\nTable II: count, message size and average execution time of DAG edges\n")
	fmt.Print(dag.FormatEdgeCensus(edges, avg))
	if !*withTime {
		fmt.Println("(rerun with -time for the t_avg column)")
	}
}

func parseDist(s string) (points.Distribution, error) {
	switch s {
	case "cube":
		return points.Cube, nil
	case "sphere":
		return points.Sphere, nil
	case "plummer":
		return points.Plummer, nil
	}
	return 0, fmt.Errorf("unknown distribution %q", s)
}

func parseMethod(s string) (dag.Method, error) {
	switch s {
	case "advanced":
		return dag.Advanced, nil
	case "basic":
		return dag.Basic, nil
	case "barneshut":
		return dag.BarnesHut, nil
	}
	return 0, fmt.Errorf("unknown method %q", s)
}

func init() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dagstat [flags]\nRegenerates Tables I and II of the paper.\n\n")
		flag.PrintDefaults()
	}
}
