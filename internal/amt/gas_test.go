package amt

import (
	"bytes"
	"testing"
)

func TestGASLocalPinAndRemoteDenied(t *testing.T) {
	rt := New(Config{Localities: 2, Workers: 1})
	a := rt.Alloc(1, 64)
	rt.Run(func() {
		rt.Locality(0).Spawn(func(w *Worker) {
			if _, ok := w.TryPin(a); ok {
				t.Error("pinned a remote block")
			}
		})
		rt.Locality(1).Spawn(func(w *Worker) {
			b, ok := w.TryPin(a)
			if !ok || len(b) != 64 {
				t.Error("owner failed to pin its block")
			}
		})
	})
}

func TestGASMemputMemgetRoundTrip(t *testing.T) {
	rt := New(Config{Localities: 3, Workers: 2})
	a := rt.Alloc(2, 32)
	want := []byte("hello, global address space!")
	var got []byte
	stats := rt.Run(func() {
		rt.Locality(0).Spawn(func(w *Worker) {
			w.Memput(a, 0, want, func(w2 *Worker) {
				if w2.Rank() != 2 {
					t.Errorf("memput continuation on rank %d", w2.Rank())
				}
				w2.Memget(a, 0, len(want), func(w3 *Worker, data []byte) {
					if w3.Rank() != 2 {
						// The continuation must come home to the getter's
						// locality (rank 2 issued the get).
						t.Errorf("memget continuation on rank %d", w3.Rank())
					}
					got = data
				})
			})
		})
	})
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q want %q", got, want)
	}
	if stats.ParcelsSent == 0 {
		t.Error("remote memput/memget sent no parcels")
	}
}

func TestGASAllocCyclic(t *testing.T) {
	rt := New(Config{Localities: 4, Workers: 1})
	addrs := rt.AllocCyclic(8, 16)
	for i, a := range addrs {
		if int(a.Locality) != i%4 {
			t.Errorf("block %d on locality %d, want %d", i, a.Locality, i%4)
		}
	}
	// Distinct blocks.
	seen := map[GlobalAddr]bool{}
	for _, a := range addrs {
		if seen[a] {
			t.Fatal("duplicate address")
		}
		seen[a] = true
	}
}

func TestGASFree(t *testing.T) {
	rt := New(Config{Localities: 1, Workers: 1})
	a := rt.Alloc(0, 8)
	rt.Free(a)
	rt.Run(func() {
		rt.Locality(0).Spawn(func(w *Worker) {
			if _, ok := w.TryPin(a); ok {
				t.Error("pinned a freed block")
			}
		})
	})
}
