package dag

import (
	"fmt"
	"sort"
	"strings"
)

// NodeCensus summarizes one node class as in Table I of the paper: count,
// payload size range, and in-/out-degree extrema.
type NodeCensus struct {
	Kind     NodeKind
	Count    int64
	MinBytes int32
	MaxBytes int32
	MinIn    int32
	MaxIn    int32
	MinOut   int32
	MaxOut   int32
}

// EdgeCensus summarizes one operator class as in Table II: count and
// transferred-size range. The average execution time column is measured by
// the executor, not here.
type EdgeCensus struct {
	Op       OpKind
	Count    int64
	MinBytes int32
	MaxBytes int32
}

// Census computes the Table I and Table II static structure of the DAG.
func (g *Graph) Census() ([]NodeCensus, []EdgeCensus) {
	var nc [NumNodeKinds]NodeCensus
	for k := range nc {
		nc[k] = NodeCensus{
			Kind: NodeKind(k), MinBytes: 1 << 30, MinIn: 1 << 30, MinOut: 1 << 30,
		}
	}
	var ec [NumOpKinds]EdgeCensus
	for o := range ec {
		ec[o] = EdgeCensus{Op: OpKind(o), MinBytes: 1 << 30}
	}
	for i := range g.Nodes {
		n := &g.Nodes[i]
		c := &nc[n.Kind]
		c.Count++
		c.MinBytes = min32(c.MinBytes, n.Bytes)
		c.MaxBytes = max32(c.MaxBytes, n.Bytes)
		c.MinIn = min32(c.MinIn, n.In)
		c.MaxIn = max32(c.MaxIn, n.In)
		c.MinOut = min32(c.MinOut, int32(len(n.Out)))
		c.MaxOut = max32(c.MaxOut, int32(len(n.Out)))
		for _, e := range n.Out {
			x := &ec[e.Op]
			x.Count++
			x.MinBytes = min32(x.MinBytes, e.Bytes)
			x.MaxBytes = max32(x.MaxBytes, e.Bytes)
		}
	}
	var nodes []NodeCensus
	for _, c := range nc {
		if c.Count > 0 {
			nodes = append(nodes, c)
		}
	}
	var edges []EdgeCensus
	for _, x := range ec {
		if x.Count > 0 {
			edges = append(edges, x)
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].Op < edges[j].Op })
	return nodes, edges
}

// FormatNodeCensus renders the node census as an aligned text table in the
// layout of Table I.
func FormatNodeCensus(nodes []NodeCensus) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-4s %12s %16s %8s %8s %8s %8s\n",
		"Type", "Count", "Size [B]", "din min", "din max", "dout min", "dout max")
	for _, c := range nodes {
		size := fmt.Sprintf("%d", c.MinBytes)
		if c.MaxBytes != c.MinBytes {
			size = fmt.Sprintf("%d-%d", c.MinBytes, c.MaxBytes)
		}
		fmt.Fprintf(&sb, "%-4s %12d %16s %8d %8d %8d %8d\n",
			c.Kind, c.Count, size, c.MinIn, c.MaxIn, c.MinOut, c.MaxOut)
	}
	return sb.String()
}

// FormatEdgeCensus renders the edge census as an aligned text table in the
// layout of Table II. avgMicros, if non-nil, supplies the measured average
// execution time per operator in microseconds.
func FormatEdgeCensus(edges []EdgeCensus, avgMicros map[OpKind]float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-5s %12s %16s %12s\n", "Type", "Count", "Size [B]", "tavg [µs]")
	for _, x := range edges {
		size := fmt.Sprintf("%d", x.MinBytes)
		if x.MaxBytes != x.MinBytes {
			size = fmt.Sprintf("%d-%d", x.MinBytes, x.MaxBytes)
		}
		t := "-"
		if avgMicros != nil {
			if v, ok := avgMicros[x.Op]; ok {
				t = fmt.Sprintf("%.2f", v)
			}
		}
		fmt.Fprintf(&sb, "%-5s %12d %16s %12s\n", x.Op, x.Count, size, t)
	}
	return sb.String()
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// Validate checks structural invariants of the DAG and returns an error
// describing the first violation: edges in range, input counts consistent,
// acyclicity (via topological sort), and every T reachable.
func (g *Graph) Validate() error {
	n := len(g.Nodes)
	indeg := make([]int32, n)
	for i := range g.Nodes {
		for _, e := range g.Nodes[i].Out {
			if e.To < 0 || int(e.To) >= n {
				return fmt.Errorf("dag: node %d edge to out-of-range %d", i, e.To)
			}
			indeg[e.To]++
		}
	}
	for i := range g.Nodes {
		if indeg[i] != g.Nodes[i].In {
			return fmt.Errorf("dag: node %d (%v) In=%d but %d incoming edges",
				i, g.Nodes[i].Kind, g.Nodes[i].In, indeg[i])
		}
	}
	// Kahn topological sort must consume every node (acyclic).
	queue := make([]int32, 0, n)
	deg := append([]int32(nil), indeg...)
	for i := range g.Nodes {
		if deg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	seen := 0
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, e := range g.Nodes[id].Out {
			deg[e.To]--
			if deg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if seen != n {
		return fmt.Errorf("dag: cycle detected (%d of %d nodes sorted)", seen, n)
	}
	return nil
}

// TopoOrder returns a topological ordering of the node ids.
func (g *Graph) TopoOrder() []int32 {
	n := len(g.Nodes)
	deg := make([]int32, n)
	for i := range g.Nodes {
		for _, e := range g.Nodes[i].Out {
			deg[e.To]++
		}
	}
	order := make([]int32, 0, n)
	queue := make([]int32, 0, n)
	for i := range g.Nodes {
		if deg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, id)
		for _, e := range g.Nodes[id].Out {
			deg[e.To]--
			if deg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	return order
}

// CriticalPath returns the length of the longest path through the DAG under
// the given per-operator cost model (nil means unit cost per edge), along
// with the total cost of all edges. The ratio bounds achievable speedup and
// is the quantity the paper's scheduling discussion (Section V-C) is about.
func (g *Graph) CriticalPath(cost func(OpKind) float64) (critical, total float64) {
	if cost == nil {
		cost = func(OpKind) float64 { return 1 }
	}
	order := g.TopoOrder()
	dist := make([]float64, len(g.Nodes))
	for _, id := range order {
		d := dist[id]
		if d > critical {
			critical = d
		}
		for _, e := range g.Nodes[id].Out {
			c := cost(e.Op)
			total += c
			if nd := d + c; nd > dist[e.To] {
				dist[e.To] = nd
			}
		}
	}
	return critical, total
}
