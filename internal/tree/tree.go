// Package tree builds the adaptive dual-tree decomposition of the FMM: one
// octree for the source ensemble and one for the target ensemble over the
// shared domain cube, with empty children pruned and refinement stopping at
// a point-count threshold (the paper uses 60). It also computes, for every
// target box, the four interaction lists of the adaptive FMM and the
// pruning of target sub-trees that are well-separated from the entire
// source tree (paper, Section II).
package tree

import (
	"fmt"

	"repro/internal/geom"
)

// Box is one node of an octree. Leaf boxes own a contiguous range of the
// tree's reordered point array.
type Box struct {
	Index  geom.Index
	Center geom.Point
	Side   float64

	Parent    *Box
	Children  [8]*Box
	NChildren int

	// Lo and Hi delimit the points of this box (leaves and internal boxes
	// alike; an internal box spans its descendants).
	Lo, Hi int

	// Seq is the position of the box in Tree.Boxes (BFS order).
	Seq int

	// Pruned marks a target box whose subtree is well-separated from the
	// whole source tree; evaluation stops here and the local expansion is
	// evaluated directly at every point below (ref [11] of the paper).
	Pruned bool
}

// IsLeaf reports whether the box has no children.
func (b *Box) IsLeaf() bool { return b.NChildren == 0 }

// NPoints returns the number of points in the box.
func (b *Box) NPoints() int { return b.Hi - b.Lo }

// Level returns the tree level of the box.
func (b *Box) Level() int { return int(b.Index.Level) }

func (b *Box) String() string {
	return fmt.Sprintf("box %v [%d,%d)", b.Index, b.Lo, b.Hi)
}

// Tree is an adaptive octree over one ensemble.
type Tree struct {
	Domain geom.Cube
	Root   *Box
	// Boxes lists every box in BFS order (coarse levels first).
	Boxes []*Box
	// Leaves lists the leaf boxes.
	Leaves []*Box
	// Pts is the reordered ensemble; Perm[i] is the original index of
	// reordered position i.
	Pts  []geom.Point
	Perm []int
	// MaxLevel is the deepest level with boxes.
	MaxLevel int

	byKey map[uint64]*Box
}

// Threshold is the default refinement threshold from the paper.
const Threshold = 60

// Build constructs the adaptive octree of the points over the domain,
// refining until each leaf holds at most threshold points.
func Build(pts []geom.Point, domain geom.Cube, threshold int) *Tree {
	if threshold < 1 {
		panic("tree: threshold must be at least 1")
	}
	t := &Tree{
		Domain: domain,
		Pts:    append([]geom.Point(nil), pts...),
		Perm:   make([]int, len(pts)),
		byKey:  make(map[uint64]*Box),
	}
	for i := range t.Perm {
		t.Perm[i] = i
	}
	rootCube := domain
	t.Root = &Box{
		Index:  geom.Root,
		Center: rootCube.Center(),
		Side:   rootCube.Side,
		Lo:     0,
		Hi:     len(pts),
	}
	scratchP := make([]geom.Point, len(pts))
	scratchI := make([]int, len(pts))
	t.split(t.Root, threshold, scratchP, scratchI)
	// BFS numbering.
	queue := []*Box{t.Root}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		b.Seq = len(t.Boxes)
		t.Boxes = append(t.Boxes, b)
		t.byKey[b.Index.Key()] = b
		if b.Level() > t.MaxLevel {
			t.MaxLevel = b.Level()
		}
		if b.IsLeaf() {
			t.Leaves = append(t.Leaves, b)
			continue
		}
		for _, c := range b.Children {
			if c != nil {
				queue = append(queue, c)
			}
		}
	}
	return t
}

// split recursively partitions box b.
func (t *Tree) split(b *Box, threshold int, scratchP []geom.Point, scratchI []int) {
	if b.NPoints() <= threshold {
		return
	}
	// Bucket the points of b by octant with a stable counting pass.
	var count [8]int
	for i := b.Lo; i < b.Hi; i++ {
		count[b.Index.ChildContaining(t.Domain, t.Pts[i])]++
	}
	var start [8]int
	for o := 1; o < 8; o++ {
		start[o] = start[o-1] + count[o-1]
	}
	pos := start
	for i := b.Lo; i < b.Hi; i++ {
		o := b.Index.ChildContaining(t.Domain, t.Pts[i])
		scratchP[b.Lo+pos[o]] = t.Pts[i]
		scratchI[b.Lo+pos[o]] = t.Perm[i]
		pos[o]++
	}
	copy(t.Pts[b.Lo:b.Hi], scratchP[b.Lo:b.Hi])
	copy(t.Perm[b.Lo:b.Hi], scratchI[b.Lo:b.Hi])
	// Create non-empty children and recurse.
	for o := 0; o < 8; o++ {
		if count[o] == 0 {
			continue
		}
		ci := b.Index.Child(o)
		cc := ci.Cube(t.Domain)
		c := &Box{
			Index:  ci,
			Center: cc.Center(),
			Side:   cc.Side,
			Parent: b,
			Lo:     b.Lo + start[o],
			Hi:     b.Lo + start[o] + count[o],
		}
		b.Children[o] = c
		b.NChildren++
		t.split(c, threshold, scratchP, scratchI)
	}
}

// Lookup returns the box with the given index, or nil.
func (t *Tree) Lookup(ix geom.Index) *Box {
	return t.byKey[ix.Key()]
}

// Points returns the reordered points of box b.
func (t *Tree) Points(b *Box) []geom.Point { return t.Pts[b.Lo:b.Hi] }

// Lists holds the four adaptive-FMM interaction lists of one target box
// with respect to a source tree. Entries reference boxes of the source
// tree.
type Lists struct {
	// L1: leaf source boxes not well-separated from this (leaf) target box;
	// handled by S->T.
	L1 []*Box
	// L2: same-level source boxes well-separated from the target box whose
	// parents are not well-separated from the target parent; handled by the
	// plane-wave pipeline (advanced FMM) or M->L (basic FMM).
	L2 []*Box
	// L3: source boxes (descendants of near boxes of a leaf target) that
	// are well-separated from the target box but whose parents are not;
	// handled by M->T.
	L3 []*Box
	// L4: leaf source boxes, coarser than the target, well-separated from
	// the target box but not from its parent; handled by S->L.
	L4 []*Box
}

// DualLists computes the interaction lists of every target box against the
// source tree. The result is indexed by target Box.Seq. Target boxes whose
// near set becomes empty are marked Pruned: no list entries are produced
// below them and their local expansion is final.
func DualLists(target, source *Tree) []Lists {
	lists := make([]Lists, len(target.Boxes))
	// near[seq] holds the source boxes adjacent to the target box: same
	// level boxes still refined in step, plus coarser source leaves.
	near := make([][]*Box, len(target.Boxes))
	near[target.Root.Seq] = []*Box{source.Root}
	for _, bt := range target.Boxes {
		if bt.Parent != nil && bt.Parent.Pruned {
			bt.Pruned = true
			continue
		}
		nr := near[bt.Seq]
		if bt.Parent != nil && len(nr) == 0 {
			// Well-separated from the entire source tree: prune the
			// subtree (the paper's non-leaf target pruning).
			bt.Pruned = true
			continue
		}
		if bt.IsLeaf() || bt.Pruned {
			// Refine the near set fully: descend into non-leaf members.
			ls := &lists[bt.Seq]
			for _, s := range nr {
				refineLeafNear(bt, s, ls)
			}
			continue
		}
		// Push the near set down to each child.
		for _, ct := range bt.Children {
			if ct == nil {
				continue
			}
			var cn []*Box
			ls := &lists[ct.Seq]
			for _, s := range nr {
				if s.IsLeaf() && s.Level() <= bt.Level() {
					// Coarse source leaf carried down from an ancestor.
					if geom.Adjacent(ct.Index, s.Index) {
						cn = append(cn, s)
					} else {
						// Well-separated from ct but it was adjacent to
						// bt: list 4.
						ls.L4 = append(ls.L4, s)
					}
					continue
				}
				// Same-level source box (level == bt.Level()): consider its
				// children against ct.
				for _, cs := range s.Children {
					if cs == nil {
						continue
					}
					if !cs.Index.WellSeparated(ct.Index) {
						cn = append(cn, cs)
					} else {
						ls.L2 = append(ls.L2, cs)
					}
				}
				if s.IsLeaf() {
					// Same-level source leaf: no children to classify; it
					// stays near if adjacent, else list 4.
					if geom.Adjacent(ct.Index, s.Index) {
						cn = append(cn, s)
					} else {
						ls.L4 = append(ls.L4, s)
					}
				}
			}
			near[ct.Seq] = cn
		}
		near[bt.Seq] = nil
	}
	return lists
}

// refineLeafNear descends from the near source box s of leaf (or pruned)
// target bt, producing list-1 and list-3 entries.
func refineLeafNear(bt *Box, s *Box, ls *Lists) {
	if !geom.Adjacent(bt.Index, s.Index) {
		// Well-separated from bt, but s's parent was adjacent: list 3.
		ls.L3 = append(ls.L3, s)
		return
	}
	if s.IsLeaf() {
		ls.L1 = append(ls.L1, s)
		return
	}
	// Only descend into source boxes at the target's level or deeper; a
	// coarser adjacent non-leaf is refined level by level.
	for _, c := range s.Children {
		if c != nil {
			refineLeafNear(bt, c, ls)
		}
	}
}
