package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/amt"
)

// A standing cluster serves several runs back to back (the serve pool's
// shape), and a rank that died between runs is excluded up front via
// PreDead: the survivors replay the death before the next run starts, place
// nothing on the corpse, and still hit the 1e-12 gate.
func TestDistRunStandingClusterPreDead(t *testing.T) {
	const world, n = 3, 1500
	const victim = world - 1
	refPlan, q := distScenario(t, n)
	want, err := refPlan.EvaluateSequential(q)
	if err != nil {
		t.Fatal(err)
	}

	cls := distClusters(t, world, func(c *amt.ClusterConfig) {
		c.Heartbeat = amt.FailureDetectorConfig{Interval: 50 * time.Millisecond, MissedBeats: 20}
	})
	plans := make([]*Plan, world)
	for r := 0; r < world; r++ {
		plans[r], _ = distScenario(t, n)
	}

	// runAll executes one fault-free run on the given ranks of the standing
	// cluster; dead ranks pass a nil cluster slot.
	runAll := func(seed int64, gen uint32, preDead []int) []float64 {
		t.Helper()
		pots := make([][]float64, world)
		errs := make([]error, world)
		var wg sync.WaitGroup
		for r := 0; r < world; r++ {
			if cls[r] == nil {
				continue
			}
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				charges := q
				if r != 0 {
					charges = nil
				}
				pots[r], _, errs[r] = DistRun(plans[r], cls[r], charges, DistOptions{
					Seed: seed, Timeout: 60 * time.Second,
					Generation: gen, PreDead: preDead,
				})
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if cls[r] != nil && err != nil {
				t.Fatalf("rank %d (seed %d): %v", r, seed, err)
			}
		}
		return pots[0]
	}

	// Two warm runs on the full world: the second reuses every socket and
	// runtime the first set up.
	assertSame(t, runAll(301, 0, nil), want, 1e-12)
	assertSame(t, runAll(302, 0, nil), want, 1e-12)

	// The victim dies between runs; every survivor records the verdict.
	cls[victim].Close()
	cls[victim] = nil
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok := true
		for r := 0; r < world; r++ {
			if cls[r] != nil && len(cls[r].DeadOrder()) != 1 {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("survivors never recorded the victim's death verdict")
		}
		time.Sleep(time.Millisecond)
	}
	order := cls[0].DeadOrder()
	if len(order) != 1 || order[0] != victim {
		t.Fatalf("DeadOrder = %v, want [%d]", order, victim)
	}

	// The next run starts from the shrunken membership (PreDead replay, a
	// bumped generation fencing any straggler frames) and must still match.
	got := runAll(303, 1, order)
	assertSame(t, got, want, 1e-12)
}
