# Standard entry points for the repro repository. Everything uses the Go
# toolchain only — no external dependencies.

GO ?= go

.PHONY: build test race vet bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The scheduler and executor are the concurrency-critical packages; run
# them under the race detector (the full tree under -race is slow on small
# machines and adds nothing — the remaining packages are sequential).
race:
	$(GO) test -race -timeout 20m ./internal/amt ./internal/core

vet:
	$(GO) vet ./...

# Hot-path benchmark suite (deque, M2L cache, end-to-end evaluation);
# writes BENCH_hotpath.json next to the raw output.
bench:
	scripts/bench.sh

ci: build vet test race
