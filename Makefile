# Standard entry points for the repro repository. Everything uses the Go
# toolchain only — no external dependencies.

GO ?= go

.PHONY: build test race vet lint escape-gate fuzz-smoke fmt-check bench bench-smoke bench-serve bench-load load-smoke serve-smoke serve-chaos chaos chaos-short chaos-crash dist-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The scheduler, executor, server, distributed driver, load harness and
# tracer are the concurrency-touching packages; run them under the race
# detector (the remaining packages are sequential, and the full tree under
# -race is slow on small machines without adding coverage).
race:
	$(GO) test -race -timeout 20m ./internal/amt ./internal/core ./internal/serve ./internal/dist ./internal/trace ./internal/load

vet:
	$(GO) vet ./...

# Project-specific concurrency & determinism checkers (see DESIGN.md,
# "Invariant catalog"). Exits non-zero on any finding.
lint:
	$(GO) run ./cmd/dashmm-lint ./...

# Compiler-backed //dashmm:noalloc verification: every annotated function
# must be free of `go build -gcflags=-m` heap escapes (ground truth for the
# syntactic hotpath-noalloc fast path).
escape-gate:
	$(GO) run ./cmd/dashmm-lint -escape ./...

# Native-fuzz every decode surface for 20s each: the wire frame codec, the
# control-plane job spec, and the persistent plan-store record. The seed
# corpora live in testdata/fuzz/ and replay under plain `go test` too.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeFrame$$' -fuzztime 20s ./internal/amt
	$(GO) test -run '^$$' -fuzz '^FuzzJobSpec$$' -fuzztime 20s ./internal/serve
	$(GO) test -run '^$$' -fuzz '^FuzzStoreLoad$$' -fuzztime 20s ./internal/serve

# Fail if any file needs gofmt; prints the offending files.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Hot-path benchmark suite (deque, M2L cache, end-to-end evaluation);
# writes BENCH_hotpath.json next to the raw output.
bench:
	scripts/bench.sh

# One-iteration pass over the batched-execution benchmarks: compiles and
# exercises the multi-RHS M2L and the batched/per-edge hot-path variants
# end to end without the full bench.sh measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkM2LBatchedVsSingle|BenchmarkEvaluateHotPathBatched' -benchtime 1x -timeout 30m .

# Evaluation-service smoke test: concurrent mixed requests against an
# in-process server (httptest), asserting every response is a 200 and the
# cache/coalescing/queue metrics add up, plus a goroutine-leak check.
serve-smoke:
	$(GO) test ./internal/serve -run TestServeSmoke -v -count=1 -timeout 5m

# Self-healing serve gate: a daemon with a forked worker-rank pool serves
# concurrent distributed requests while one worker is SIGKILLed mid-load.
# Every request must match the sequential reference at 1e-12 or fail closed
# as a degraded 503; afterwards the supervisor must respawn and re-admit the
# worker (generation bump in /metrics) and distributed service must resume.
serve-chaos:
	$(GO) test ./internal/serve -run TestServeChaos -v -count=1 -timeout 10m

# Warm-vs-cold serving benchmark (plan cache + pooled runtime against
# per-request setup); writes BENCH_serve.json.
bench-serve:
	scripts/bench.sh serve

# Production load harness: a live dashmm-serve (persistent plan store in a
# scratch dir) driven through scripted cold/warm/mixed phases with open-loop
# Poisson arrivals and Zipf-skewed tenant keys; writes BENCH_load.json with
# per-phase p50/p99/p999 and shed/deadline/coalesce/degraded rates.
bench-load:
	scripts/bench.sh load

# Short harness run against a live server: asserts the emitted
# BENCH_load.json is well-formed and that warm traffic actually hit the
# plan cache (nonzero warm hits), exiting non-zero otherwise.
load-smoke:
	LOAD_PHASES="cold:2s:5,warm:4s:20" scripts/bench.sh load

# Chaos harness: full cube/sphere x Laplace/Yukawa evaluations over a
# fault-injected parcel wire (drop/duplicate/reorder/slow-rank), gated at
# 1e-12 against the fault-free potentials. chaos-short keeps only the
# combined acceptance profile (still all four workloads).
chaos:
	$(GO) test ./internal/amt -run TestChaosProfiles -v -count=1 -timeout 15m

chaos-short:
	$(GO) test ./internal/amt -run TestChaosProfiles -short -count=1 -timeout 10m

# Crash-recovery chaos harness: kill one of four localities at 25/50/75%
# DAG progress (plus the combined crash-on-faulty-wire profile) on every
# workload, gated at 1e-12 against the fault-free potentials. The full
# matrix is cheap enough to run in ci; the race job picks the crash tests
# up via ./internal/amt ./internal/core with the shrunk -short shapes.
chaos-crash:
	$(GO) test ./internal/amt -run TestChaosCrash -v -count=1 -timeout 15m

# Multi-process smoke: four real OS processes joined over unix sockets, one
# worker rank SIGKILLed at 50% of its local progress; the driver gates the
# gathered potentials at 1e-12 against the sequential evaluation and exits
# non-zero on any mismatch, wedge, or unexpected child failure.
dist-smoke: build
	$(GO) run ./cmd/dashmm-bench -real -n 20000 -locs 4 -net unix -kill-rank 2 -kill-at 0.5

ci: build vet fmt-check lint escape-gate test fuzz-smoke race serve-smoke serve-chaos chaos-short chaos-crash dist-smoke bench-smoke load-smoke
