package amt

import (
	"time"

	"repro/internal/trace"
)

// Wire-mode parcel delivery: the frame-carrying counterpart of delivery.go's
// closure path, used when Config.World > 1. A wire parcel cannot ship a
// closure across the process boundary, so the sender hands the delivery
// layer an encoded payload plus its kind tag; the payload is retained by the
// sender-side entry so retransmission re-emits the identical frame, and the
// receiving process routes decoded frames through the runtime's registered
// wire handler. Sequence numbering, receiver dedup, acks, exponential
// backoff + jitter, the delivery deadline, and rank severing are all the
// same machinery as the in-process unreliable path — a broken socket is
// just another lossy wire.

// WireHandler consumes one deduplicated inbound data frame on a scheduler
// worker of the local locality.
type WireHandler func(w *Worker, f Frame)

// OnWire registers the inbound data-frame handler (wire mode). Must be set
// before frames can arrive, i.e. before the cluster's data plane starts.
func (rt *Runtime) OnWire(h WireHandler) { rt.wireHandler = h }

// LocalLocality returns the single locality hosted by this process (wire
// mode), or locality 0.
func (rt *Runtime) LocalLocality() *Locality { return rt.locs[0] }

// Hold acquires one pending unit, keeping Run alive while remote input may
// still arrive: a wire-mode rank cannot infer global quiescence from its
// local counter, so the driver holds the runtime open until the cluster
// signals completion.
func (rt *Runtime) Hold() { rt.pending.Add(1) }

// Release releases a Hold.
func (rt *Runtime) Release() { rt.finish() }

// SeverRank fences a dead rank's wire endpoints: sends to it are refused,
// unacked parcels touching it settle, and inbound frames from it are
// dropped. Called on the cluster's death verdict.
func (rt *Runtime) SeverRank(rank int) { rt.net.sever(rank) }

// RankSevered reports whether a rank has been fenced.
func (rt *Runtime) RankSevered(rank int) bool { return rt.net.rankDead(int32(rank)) }

// SendWire sends one typed encoded parcel from this rank to a remote rank,
// with reliable-delivery bookkeeping (wire mode only). The payload slice is
// retained until the parcel settles; callers must not reuse it.
func (rt *Runtime) SendWire(dst int, kind uint16, epoch uint32, payload []byte) {
	rt.parcelsSent.Add(1)
	rt.parcelBytes.Add(int64(len(payload)))
	rt.net.sendWire(rt.locs[0].Rank, dst, kind, epoch, payload)
}

// DeliverWireFrame is the inbound edge of wire mode, called by the cluster's
// connection readers for every decoded frame. Acks settle sender entries;
// data frames are deduplicated, acked, and handed to the wire handler on a
// scheduler worker. Frames from a fenced (dead) source rank are dropped
// unacknowledged — a corpse gets no replies.
func (rt *Runtime) DeliverWireFrame(f Frame) {
	d := rt.net
	key := pairKey{int32(f.Src), int32(f.Dst)}
	if f.Ack() {
		// An ack frame flows dst→src of the data parcel it settles, so the
		// sender's entry is keyed by the reversed pair.
		d.onAck(pairKey{int32(f.Dst), int32(f.Src)}, f.Seq)
		return
	}
	if d.rankDead(key.src) {
		return
	}
	if rt.shuttingDown.Load() {
		d.lateDrops.Add(1)
		d.ackWire(key, f.Seq)
		return
	}
	d.mu.Lock()
	sm := d.seen[key]
	if sm == nil {
		sm = make(map[uint64]bool)
		d.seen[key] = sm
	}
	dup := sm[f.Seq]
	sm[f.Seq] = true
	d.mu.Unlock()
	if dup {
		d.deduped.Add(1)
	} else {
		d.delivered.Add(1)
		h := rt.wireHandler
		rt.locs[0].Spawn(func(w *Worker) { h(w, f) })
	}
	d.ackWire(key, f.Seq)
}

// ackWire emits the delivery acknowledgment frame for one received parcel.
func (d *delivery) ackWire(key pairKey, seq uint64) {
	d.wire.Send(Message{Src: int(key.dst), Dst: int(key.src), Seq: seq, Ack: true})
}

// sendWire allocates a sequence number, registers the parcel for
// retransmission (holding one pending unit until it settles) and puts the
// first copy on the wire. Mirrors delivery.send's unreliable branch.
func (d *delivery) sendWire(src, dst int, kind uint16, epoch uint32, payload []byte) {
	if d.rankDead(int32(dst)) {
		d.severed.Add(1)
		return
	}
	key := pairKey{int32(src), int32(dst)}
	d.mu.Lock()
	seq := d.nextSeq[key] + 1
	d.nextSeq[key] = seq
	e := &sendEntry{
		key:      key,
		seq:      seq,
		bytes:    len(payload),
		deadline: time.Now().Add(d.cfg.Deadline),
		backoff:  d.cfg.RetryBase,
	}
	um := d.unacked[key]
	if um == nil {
		um = make(map[uint64]*sendEntry)
		d.unacked[key] = um
	}
	um[seq] = e
	d.mu.Unlock()

	d.rt.pending.Add(1) // released when the entry settles
	d.sent.Add(1)
	d.transmitWire(e, kind, epoch, payload)
}

// transmitWire emits one copy of a wire parcel and arms the retransmission
// timer with the entry's current (jittered) backoff.
func (d *delivery) transmitWire(e *sendEntry, kind uint16, epoch uint32, payload []byte) {
	m := Message{
		Src: int(e.key.src), Dst: int(e.key.dst), Bytes: e.bytes, Seq: e.seq,
		Kind: kind, Epoch: epoch, Payload: payload,
	}
	d.mu.Lock()
	if e.settled {
		d.mu.Unlock()
		return
	}
	wait := time.Duration(float64(e.backoff) * (1 + d.rng.Float64()*d.cfg.RetryJitter))
	if e.backoff < d.cfg.RetryMax {
		e.backoff *= 2
		if e.backoff > d.cfg.RetryMax {
			e.backoff = d.cfg.RetryMax
		}
	}
	e.timer = time.AfterFunc(wait, func() { d.retryWire(e, kind, epoch, payload) })
	d.mu.Unlock()
	d.wire.Send(m)
}

// retryWire is the wire-parcel retransmission: give up on a severed
// endpoint or past the deadline, otherwise re-emit the identical frame.
func (d *delivery) retryWire(e *sendEntry, kind uint16, epoch uint32, payload []byte) {
	severed := d.rankDead(e.key.dst) || d.rankDead(e.key.src)
	d.mu.Lock()
	if e.settled {
		d.mu.Unlock()
		return
	}
	expired := time.Now().After(e.deadline)
	if expired || severed {
		e.settled = true
		delete(d.unacked[e.key], e.seq)
	}
	d.mu.Unlock()
	if severed {
		d.severed.Add(1)
		d.rt.finish()
		return
	}
	if expired {
		d.deadlineExceeded.Add(1)
		d.record(trace.ClassNetDeadline)
		d.rt.finish()
		return
	}
	d.retried.Add(1)
	d.record(trace.ClassNetRetry)
	d.transmitWire(e, kind, epoch, payload)
}
