package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// RunEscapeGate is the compiler-backed replacement for the hotpath-noalloc
// heuristic: it shells out to `go build -gcflags=-m`, parses the escape
// diagnostics the gc compiler emits (the build cache replays them on cached
// builds, so repeated runs stay cheap), and reports every "escapes to heap"
// or "moved to heap" decision that lands inside a //dashmm:noalloc-annotated
// function. The syntactic checker stays as the fast in-editor path; this is
// ground truth — if the compiler proves an allocation, the annotation is
// violated no matter how idiomatic the code looks.
//
// dir is the module directory to run the go tool in; patterns are package
// patterns ("./..."). Findings use check name "escape-gate" and respect the
// strict //lint:ignore escape-gate form on the flagged line or the line
// above. The returned diagnostics include malformed-suppression reports
// (pseudo-check "lint"), mirroring the analyzer driver.
func RunEscapeGate(dir string, patterns []string) ([]Diagnostic, error) {
	l := NewLoader(dir)
	out, err := l.goList(append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	pkgs, err := decodeListedPkgs(out)
	if err != nil {
		return nil, err
	}

	// Parse every file of every listed package, collect the annotated
	// function ranges and the //lint:ignore table.
	type noallocFn struct {
		file       string
		start, end int
		name       string
	}
	fset := token.NewFileSet()
	sup := newSuppressions()
	var diags []Diagnostic
	var fns []noallocFn
	annotated := map[string]bool{} // import paths that need -gcflags=-m
	for _, pkg := range pkgs {
		var files []*ast.File
		for _, gf := range pkg.GoFiles {
			path := filepath.Join(pkg.Dir, gf)
			af, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", path, err)
			}
			files = append(files, af)
			for _, decl := range af.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if _, ok := funcHasDirective(fd, "dashmm:noalloc"); !ok {
					continue
				}
				fns = append(fns, noallocFn{
					file:  path,
					start: fset.Position(fd.Pos()).Line,
					end:   fset.Position(fd.End()).Line,
					name:  funcName(fd),
				})
				annotated[pkg.ImportPath] = true
			}
		}
		diags = append(diags, sup.collect(fset, files)...)
	}
	if len(fns) == 0 {
		return diags, nil
	}

	var buildPkgs []string
	for p := range annotated {
		buildPkgs = append(buildPkgs, p)
	}
	sort.Strings(buildPkgs)

	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m"}, buildPkgs...)...)
	cmd.Dir = dir
	raw, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, raw)
	}
	lines := strings.Split(string(raw), "\n")

	// The compiler always has something to say under -m for packages of
	// this size; a totally silent run means the diagnostics were lost
	// (e.g. a cache layer that strips replayed output) and the gate must
	// not pretend it proved anything.
	sawAny := false
	diagRe := regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)
	for _, line := range lines {
		m := diagRe.FindStringSubmatch(strings.TrimPrefix(line, "# "))
		if m == nil {
			continue
		}
		sawAny = true
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		var lineNo, col int
		fmt.Sscanf(m[2], "%d", &lineNo)
		fmt.Sscanf(m[3], "%d", &col)
		for _, fn := range fns {
			if fn.file != file || lineNo < fn.start || lineNo > fn.end {
				continue
			}
			pos := token.Position{Filename: file, Line: lineNo, Column: col}
			if sup.suppressed("escape-gate", pos) {
				break
			}
			diags = append(diags, Diagnostic{
				Check:   "escape-gate",
				Pos:     pos,
				Message: fmt.Sprintf("heap escape in //dashmm:noalloc %s: %s", fn.name, msg),
			})
			break
		}
	}
	if !sawAny {
		return nil, fmt.Errorf("go build -gcflags=-m produced no compiler diagnostics for %s; cannot prove the noalloc contract", strings.Join(buildPkgs, " "))
	}
	sortDiagnostics(diags)
	return diags, nil
}

// decodeListedPkgs parses the stream of go list -json objects.
func decodeListedPkgs(out []byte) ([]listedPkg, error) {
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -json: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// sortDiagnostics orders diagnostics by position, matching the driver.
func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}
