package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/tree"
)

// The persistent plan store: warm plan state spilled to checksummed on-disk
// records so a restarted dashmm-serve recovers its cache without
// recomputation. A record holds everything expensive about a built, warmed
// plan that is not re-derivable for free:
//
//   - the request spec (distribution, n, seed, kernel, accuracy) — the
//     cheap part: points regenerate deterministically from the seed;
//   - the tree skeletons (Morton-order permutation + box structure) for
//     both ensembles — recovery skips the recursive octant partitioning;
//   - the kernel's cached dense translation operators (M->M, M->L, L->L)
//     — the matrices a first evaluation pays MLSize() spectral
//     projections each to build.
//
// Interaction lists, the DAG and the batch descriptors are recomputed from
// the revived trees (deterministic and cheap relative to what is skipped).
// Inline-ensemble plans are not spilled: their geometry is not re-derivable
// from a spec and would bloat records for a workload that is by definition
// not seed-replayable.
//
// Framing follows the amt parcel codec discipline (internal/amt/codec.go):
// a fixed header with magic, version, payload length and a CRC32 over the
// payload, then the payload. The decoder errors — never panics — on a
// truncated, corrupted, oversized or version-skewed record; Load skips such
// records (counted, surfaced as store_corrupt in /metrics) rather than
// refusing to start.
//
// Record header (little endian):
//
//	off  size  field
//	0    4     magic "DMMP"
//	4    1     store version
//	5    3     reserved (zero)
//	8    8     payload length
//	16   4     CRC32 (IEEE) over the payload
//	20   ...   payload

const (
	storeMagic   = 0x444d4d50 // "DMMP"
	storeVersion = 1
	// storeHeaderSize is the fixed record header length in bytes.
	storeHeaderSize = 20
	// maxStoreRecord bounds a record so a corrupted length field cannot
	// make recovery allocate absurd buffers.
	maxStoreRecord = 1 << 30 // 1 GiB
)

// Store decode errors.
var (
	errStoreMagic    = errors.New("serve: bad store record magic")
	errStoreVersion  = errors.New("serve: store record version mismatch")
	errStoreChecksum = errors.New("serve: store record checksum mismatch")
	errStoreTooBig   = errors.New("serve: store record exceeds size limit")
	errStoreShort    = errors.New("serve: truncated store record")
)

// Store is a directory of plan records, one file per plan key.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) a plan store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: opening plan store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

// PlanRecord is the spilled state of one warm plan.
type PlanRecord struct {
	Key    string
	Spec   Request // plan-determining spec fields only
	Source tree.Skeleton
	Target tree.Skeleton
	Ops    []kernel.OperatorTable
}

// recordPath names the record file for a plan key: a stable content hash of
// the key, so keys with path-hostile characters spill safely.
func (st *Store) recordPath(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return filepath.Join(st.dir, fmt.Sprintf("%016x.plan", h.Sum64()))
}

// Put writes one record atomically (temp file + rename) and returns the
// record size in bytes.
func (st *Store) Put(rec *PlanRecord) (int64, error) {
	payload := appendRecord(nil, rec)
	buf := make([]byte, storeHeaderSize, storeHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:], storeMagic)
	buf[4] = storeVersion
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(buf[16:], crc32.ChecksumIEEE(payload))
	buf = append(buf, payload...)

	path := st.recordPath(rec.Key)
	tmp, err := os.CreateTemp(st.dir, ".plan-*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, err
	}
	return int64(len(buf)), nil
}

// Load reads every record in the store. Corrupt, truncated or
// version-skewed records are skipped and counted, never fatal; only a
// directory-level failure returns an error.
func (st *Store) Load() (recs []*PlanRecord, corrupt int, err error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, 0, fmt.Errorf("serve: reading plan store: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".plan") {
			continue
		}
		rec, rerr := readRecordFile(filepath.Join(st.dir, e.Name()))
		if rerr != nil {
			corrupt++
			continue
		}
		recs = append(recs, rec)
	}
	return recs, corrupt, nil
}

func readRecordFile(path string) (*PlanRecord, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(buf) < storeHeaderSize {
		return nil, errStoreShort
	}
	if binary.LittleEndian.Uint32(buf[0:]) != storeMagic {
		return nil, errStoreMagic
	}
	if buf[4] != storeVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", errStoreVersion, buf[4], storeVersion)
	}
	plen := binary.LittleEndian.Uint64(buf[8:])
	if plen > maxStoreRecord {
		return nil, fmt.Errorf("%w: %d bytes", errStoreTooBig, plen)
	}
	if uint64(len(buf)-storeHeaderSize) != plen {
		return nil, errStoreShort
	}
	payload := buf[storeHeaderSize:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(buf[16:]) {
		return nil, errStoreChecksum
	}
	return decodeRecord(payload)
}

// --- payload codec -------------------------------------------------------

// appendRecord encodes the record payload: the spec as JSON (small, schema-
// tolerant), then the two tree skeletons and the operator tables in packed
// little-endian binary (bulk data).
//
//dashmm:wire planrecord encode PlanRecord
func appendRecord(dst []byte, rec *PlanRecord) []byte {
	dst = appendBytes(dst, []byte(rec.Key))
	spec, _ := json.Marshal(rec.Spec)
	dst = appendBytes(dst, spec)
	dst = appendSkeleton(dst, rec.Source)
	dst = appendSkeleton(dst, rec.Target)
	dst = appendU32(dst, uint32(len(rec.Ops)))
	for _, op := range rec.Ops {
		dst = append(dst, op.Kind)
		dst = appendU64(dst, op.SideBits)
		dst = append(dst, byte(op.DX), byte(op.DY), byte(op.DZ))
		dst = appendU32(dst, uint32(len(op.Mx)))
		for _, v := range op.Mx {
			dst = appendU64(dst, math.Float64bits(real(v)))
			dst = appendU64(dst, math.Float64bits(imag(v)))
		}
	}
	return dst
}

func appendSkeleton(dst []byte, sk tree.Skeleton) []byte {
	dst = appendU64(dst, math.Float64bits(sk.Domain.Low.X))
	dst = appendU64(dst, math.Float64bits(sk.Domain.Low.Y))
	dst = appendU64(dst, math.Float64bits(sk.Domain.Low.Z))
	dst = appendU64(dst, math.Float64bits(sk.Domain.Side))
	dst = appendU32(dst, uint32(len(sk.Perm)))
	for _, p := range sk.Perm {
		dst = appendU32(dst, uint32(p))
	}
	dst = appendU32(dst, uint32(len(sk.Boxes)))
	for _, b := range sk.Boxes {
		dst = append(dst, byte(b.Index.Level))
		dst = appendU32(dst, uint32(b.Index.X))
		dst = appendU32(dst, uint32(b.Index.Y))
		dst = appendU32(dst, uint32(b.Index.Z))
		dst = appendU32(dst, uint32(b.Lo))
		dst = appendU32(dst, uint32(b.Hi))
	}
	return dst
}

func appendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func appendBytes(dst, v []byte) []byte {
	dst = appendU32(dst, uint32(len(v)))
	return append(dst, v...)
}

// recReader is a bounds-checked cursor over a record payload. Every read
// checks remaining length; the first failure latches err and subsequent
// reads return zero values, so decode paths stay straight-line.
type recReader struct {
	buf []byte
	pos int
	err error
}

func (r *recReader) fail() {
	if r.err == nil {
		r.err = errStoreShort
	}
}

func (r *recReader) u8() byte {
	if r.err != nil || r.pos+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.pos]
	r.pos++
	return v
}

func (r *recReader) u32() uint32 {
	if r.err != nil || r.pos+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v
}

func (r *recReader) u64() uint64 {
	if r.err != nil || r.pos+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}

func (r *recReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *recReader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.pos+n > len(r.buf) {
		r.fail()
		return nil
	}
	v := r.buf[r.pos : r.pos+n]
	r.pos += n
	return v
}

// count reads a u32 element count and sanity-bounds it against the bytes
// that remain (each element needs at least elemSize bytes), so a corrupted
// count cannot drive a huge allocation.
func (r *recReader) count(elemSize int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n*elemSize > len(r.buf)-r.pos {
		r.fail()
		return 0
	}
	return n
}

//dashmm:wire planrecord decode PlanRecord
func decodeRecord(payload []byte) (*PlanRecord, error) {
	r := &recReader{buf: payload}
	rec := &PlanRecord{Key: string(r.bytes())}
	specJSON := r.bytes()
	if r.err == nil {
		if err := json.Unmarshal(specJSON, &rec.Spec); err != nil {
			return nil, fmt.Errorf("serve: store record spec: %w", err)
		}
	}
	rec.Source = readSkeleton(r)
	rec.Target = readSkeleton(r)
	nOps := r.count(1 + 8 + 3 + 4)
	for i := 0; i < nOps && r.err == nil; i++ {
		op := kernel.OperatorTable{
			Kind:     r.u8(),
			SideBits: r.u64(),
			DX:       int8(r.u8()),
			DY:       int8(r.u8()),
			DZ:       int8(r.u8()),
		}
		nMx := r.count(16)
		op.Mx = make([]complex128, 0, nMx)
		for j := 0; j < nMx && r.err == nil; j++ {
			re, im := r.f64(), r.f64()
			op.Mx = append(op.Mx, complex(re, im))
		}
		rec.Ops = append(rec.Ops, op)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(r.buf) {
		return nil, fmt.Errorf("serve: %d trailing bytes in store record", len(r.buf)-r.pos)
	}
	if rec.Key == "" {
		return nil, errors.New("serve: store record has an empty plan key")
	}
	return rec, nil
}

func readSkeleton(r *recReader) tree.Skeleton {
	var sk tree.Skeleton
	sk.Domain.Low.X = r.f64()
	sk.Domain.Low.Y = r.f64()
	sk.Domain.Low.Z = r.f64()
	sk.Domain.Side = r.f64()
	nPerm := r.count(4)
	sk.Perm = make([]int, 0, nPerm)
	for i := 0; i < nPerm && r.err == nil; i++ {
		sk.Perm = append(sk.Perm, int(r.u32()))
	}
	nBoxes := r.count(1 + 4*5)
	sk.Boxes = make([]tree.SkeletonBox, 0, nBoxes)
	for i := 0; i < nBoxes && r.err == nil; i++ {
		var b tree.SkeletonBox
		b.Index.Level = int8(r.u8())
		b.Index.X = int32(r.u32())
		b.Index.Y = int32(r.u32())
		b.Index.Z = int32(r.u32())
		b.Lo = int(r.u32())
		b.Hi = int(r.u32())
		sk.Boxes = append(sk.Boxes, b)
	}
	return sk
}

// --- record <-> plan -----------------------------------------------------

// recordFor snapshots a built, warmed plan into its spilled form. Only the
// plan-determining spec fields are kept: charges, execution shape, deadline
// and trace flags are per-request, not per-plan.
func recordFor(req *Request, plan *core.Plan) *PlanRecord {
	rec := &PlanRecord{
		Key: req.planKey(),
		Spec: Request{
			Distribution: req.Distribution,
			N:            req.N,
			Seed:         req.Seed,
			Kernel:       req.Kernel,
			Lambda:       req.Lambda,
			Digits:       req.Digits,
			Threshold:    req.Threshold,
		},
		Source: plan.Source.Skeleton(),
		Target: plan.Target.Skeleton(),
	}
	if oc, ok := plan.Kernel.(kernel.OperatorCache); ok {
		rec.Ops = oc.ExportOperators()
	}
	return rec
}

// rebuild revives the record into a built plan: points regenerate from the
// spec seed, the trees rise from their skeletons without re-partitioning,
// the spilled dense operators seed the kernel cache, and only the
// (deterministic, comparatively cheap) lists + DAG assembly reruns.
func (rec *PlanRecord) rebuild() (*core.Plan, error) {
	spec := rec.Spec
	if len(spec.Sources) > 0 || len(spec.Targets) > 0 {
		return nil, errors.New("serve: store record carries inline ensembles")
	}
	if err := spec.normalize(Config{}); err != nil {
		return nil, fmt.Errorf("serve: store record spec: %w", err)
	}
	if got := spec.planKey(); got != rec.Key {
		return nil, fmt.Errorf("serve: store record key %q does not match its spec (%q)", rec.Key, got)
	}
	srcPts, tgtPts := spec.ensembles()
	src, err := tree.FromSkeleton(srcPts, rec.Source)
	if err != nil {
		return nil, fmt.Errorf("serve: store record source tree: %w", err)
	}
	tgt, err := tree.FromSkeleton(tgtPts, rec.Target)
	if err != nil {
		return nil, fmt.Errorf("serve: store record target tree: %w", err)
	}
	k := spec.newKernel()
	if oc, ok := k.(kernel.OperatorCache); ok {
		oc.ImportOperators(rec.Ops)
	}
	plan, err := core.NewPlanFromTrees(src, tgt, k, core.Options{Threshold: spec.Threshold})
	if err != nil {
		return nil, fmt.Errorf("serve: store record plan: %w", err)
	}
	return plan, nil
}

// --- server integration --------------------------------------------------

// UseStore attaches an opened plan store: cold builds spill their warmed
// state after the first successful evaluation, and RecoverFromStore revives
// spilled plans into the cache. Attach before serving.
func (s *Server) UseStore(st *Store) { s.store = st }

// Store returns the attached plan store (nil without one).
func (s *Server) Store() *Store { return s.store }

// RecoverFromStore loads every readable record from the attached store and
// installs the revived plans in the cache, so the first request on a
// previously-warm key is a cache hit with zero plan rebuilds. Unreadable
// records — corrupt, truncated, version-skewed, or no longer revivable —
// are skipped and counted (store_corrupt in /metrics), never fatal.
func (s *Server) RecoverFromStore() (recovered, skipped int, err error) {
	if s.store == nil {
		return 0, 0, errors.New("serve: no store attached")
	}
	recs, corrupt, err := s.store.Load()
	if err != nil {
		return 0, 0, err
	}
	skipped = corrupt
	for _, rec := range recs {
		plan, rerr := rec.rebuild()
		if rerr != nil {
			skipped++
			continue
		}
		e := &planEntry{key: rec.Key, evals: make(map[string]*evalCtx), fromStore: true, stored: true}
		e.build.Do(func() { e.plan = plan })
		s.cache.put(rec.Key, e)
		recovered++
	}
	s.metrics.StoreCorrupt.Add(int64(skipped))
	s.metrics.StoreRecovered.Add(int64(recovered))
	return recovered, skipped, nil
}

// persistPlan spills a freshly built plan's warm state after its first
// successful evaluation (by then the dense operator tables the evaluation
// touched all exist). One attempt per entry; failures are counted, not
// retried. Caller must hold entry.mu.
//
//dashmm:locked planEntry.mu — documented precondition: evaluate calls persistPlan inside the entry's critical section.
func (s *Server) persistPlan(req *Request, entry *planEntry) {
	if s.store == nil || entry.stored || len(req.Sources) > 0 {
		return
	}
	entry.stored = true
	n, err := s.store.Put(recordFor(req, entry.plan))
	if err != nil {
		s.metrics.StoreFailed.Add(1)
		return
	}
	s.metrics.StoreWrites.Add(1)
	s.metrics.StoreBytes.Add(n)
}
