package sim

import (
	"math"
	"testing"

	"repro/internal/dag"
	"repro/internal/dist"
	"repro/internal/geom"
	"repro/internal/kernel"
	"repro/internal/points"
	"repro/internal/trace"
	"repro/internal/tree"
)

func simGraph(t testing.TB, n int, distr points.Distribution) *dag.Graph {
	t.Helper()
	sp := points.Generate(distr, n, 1)
	tp := points.Generate(distr, n, 2)
	dom := geom.BoundingCube(sp, tp)
	src := tree.Build(sp, dom, 60)
	tgt := tree.Build(tp, dom, 60)
	lists := tree.DualLists(tgt, src)
	k := kernel.NewLaplace(3)
	mx := src.MaxLevel
	if tgt.MaxLevel > mx {
		mx = tgt.MaxLevel
	}
	k.Prepare(dom.Side, mx+1)
	return dag.Build(dag.Config{Method: dag.Advanced}, src, tgt, lists, k)
}

func TestSingleCoreEqualsTotalWork(t *testing.T) {
	g := simGraph(t, 5000, points.Cube)
	dist.MinComm{}.Assign(g, 1)
	m := PaperCostModel()
	m.LatencyNanos = 0
	m.TaskOverhead = 0
	r := Run(g, Config{Localities: 1, Cores: 1, Model: m})
	if math.Abs(r.Makespan-r.TotalWork) > 1e-6*r.TotalWork {
		t.Fatalf("1-core makespan %v != total work %v", r.Makespan, r.TotalWork)
	}
	if r.Messages != 0 {
		t.Fatalf("single locality sent %d messages", r.Messages)
	}
}

func TestMakespanDecreasesWithCores(t *testing.T) {
	g := simGraph(t, 20000, points.Cube)
	dist.MinComm{}.Assign(g, 1)
	m := PaperCostModel()
	prev := math.Inf(1)
	for _, cores := range []int{1, 2, 4, 8, 16, 32} {
		r := Run(g, Config{Localities: 1, Cores: cores, Model: m})
		if r.Makespan > prev*1.0001 {
			t.Errorf("makespan grew at %d cores: %v -> %v", cores, prev, r.Makespan)
		}
		prev = r.Makespan
	}
}

func TestMakespanBoundedByCriticalPath(t *testing.T) {
	g := simGraph(t, 10000, points.Cube)
	dist.MinComm{}.Assign(g, 1)
	m := PaperCostModel()
	m.TaskOverhead = 0
	m.LatencyNanos = 0
	// Critical path under the same cost function bounds any schedule.
	crit, total := g.CriticalPath(func(op dag.OpKind) float64 { return m.OpNanos[op] })
	r := Run(g, Config{Localities: 1, Cores: 1 << 14, Model: m})
	// With effectively infinite cores the makespan approaches a path bound.
	// Units(): the critical path helper uses per-edge cost 1*OpNanos, while
	// the simulator scales point ops by units, so compare loosely.
	if r.Makespan > total {
		t.Errorf("makespan %v exceeds total work %v", r.Makespan, total)
	}
	if r.Makespan <= 0 || crit <= 0 {
		t.Fatalf("degenerate: makespan=%v crit=%v", r.Makespan, crit)
	}
}

func TestWorkConservedAcrossSchedules(t *testing.T) {
	g := simGraph(t, 10000, points.Cube)
	dist.MinComm{}.Assign(g, 4)
	m := PaperCostModel()
	var works []float64
	for _, sch := range []Scheduler{FIFO, LIFO, Priority, Levelwise} {
		r := Run(g, Config{Localities: 4, Cores: 8, Model: m, Sched: sch})
		works = append(works, r.TotalWork)
		if r.Makespan < r.TotalWork/(4*8) {
			t.Errorf("%v: makespan below perfect speedup", sch)
		}
	}
	for i := 1; i < len(works); i++ {
		if math.Abs(works[i]-works[0]) > 1e-6*works[0] {
			t.Errorf("total work differs across schedulers: %v", works)
		}
	}
}

func TestEventsSumToWork(t *testing.T) {
	g := simGraph(t, 8000, points.Cube)
	dist.MinComm{}.Assign(g, 2)
	r := Run(g, Config{Localities: 2, Cores: 4, Model: PaperCostModel(), CollectEvents: true})
	var sum float64
	for _, ev := range r.Events {
		sum += float64(ev.End - ev.Start)
	}
	if math.Abs(sum-r.TotalWork) > 0.01*r.TotalWork {
		t.Errorf("event durations %v vs total work %v", sum, r.TotalWork)
	}
}

func TestPriorityBeatsFIFOAtScale(t *testing.T) {
	// The Section VI estimate: priority scheduling removes the end-of-run
	// starvation and improves the makespan at high core counts.
	g := simGraph(t, 60000, points.Cube)
	m := PaperCostModel()
	dist.MinComm{}.Assign(g, 16)
	fifo := Run(g, Config{Localities: 16, Cores: 32, Model: m, Sched: FIFO})
	prio := Run(g, Config{Localities: 16, Cores: 32, Model: m, Sched: Priority})
	if prio.Makespan > fifo.Makespan*1.001 {
		t.Errorf("priority (%v) worse than fifo (%v)", prio.Makespan, fifo.Makespan)
	}
}

func TestLevelwiseWorseThanAsync(t *testing.T) {
	// The introduction's claim: strict levelwise execution cannot exploit
	// all available parallelism, hurting strong scaling.
	g := simGraph(t, 60000, points.Sphere)
	m := PaperCostModel()
	dist.MinComm{}.Assign(g, 8)
	fifo := Run(g, Config{Localities: 8, Cores: 32, Model: m, Sched: FIFO})
	lvl := Run(g, Config{Localities: 8, Cores: 32, Model: m, Sched: Levelwise})
	if lvl.Makespan < fifo.Makespan {
		t.Errorf("levelwise (%v) beats async (%v); expected the opposite",
			lvl.Makespan, fifo.Makespan)
	}
}

func TestStrongScalingShape(t *testing.T) {
	// Speedup grows with locality count but efficiency decays (Fig. 3's
	// qualitative shape).
	g := simGraph(t, 60000, points.Cube)
	m := PaperCostModel()
	var t1 float64
	prevSpeedup := 0.0
	for _, L := range []int{1, 2, 4, 8, 16} {
		dist.MinComm{}.Assign(g, L)
		r := Run(g, Config{Localities: L, Cores: 32, Model: m, Sched: FIFO})
		if L == 1 {
			t1 = r.Makespan
			prevSpeedup = 1
			continue
		}
		sp := t1 / r.Makespan
		if sp < prevSpeedup {
			t.Errorf("speedup decreased at L=%d: %v -> %v", L, prevSpeedup, sp)
		}
		eff := sp / float64(L)
		if eff > 1.01 {
			t.Errorf("superlinear efficiency %v at L=%d", eff, L)
		}
		prevSpeedup = sp
	}
	// Efficiency at 16 localities must be below 1 (communication +
	// starvation) but not collapsed.
	finalEff := prevSpeedup / 16
	if finalEff >= 1 || finalEff < 0.05 {
		t.Errorf("implausible final efficiency %v", finalEff)
	}
}

func TestUtilizationDipExistsAtScale(t *testing.T) {
	// Fig. 4: an end-of-run underutilization dip appears under oblivious
	// scheduling and its relative width grows with core count. The
	// comparison is made in the regime where the plateau is still saturated
	// (enough work per core), as in the paper.
	g := simGraph(t, 100000, points.Cube)
	m := PaperCostModel()
	widths := map[int]float64{}
	for _, L := range []int{2, 4} {
		dist.MinComm{}.Assign(g, L)
		r := Run(g, Config{Localities: L, Cores: 32, Model: m, Sched: FIFO, CollectEvents: true})
		u := trace.Analyze(r.Events, L*32, 100, 0, int64(r.Makespan))
		first, last, plateau, found := u.Starvation(0.7)
		if !found {
			t.Errorf("L=%d: no starvation dip found (plateau %v)", L, plateau)
			continue
		}
		if plateau < 0.9 {
			t.Errorf("L=%d: plateau %v not saturated; test regime invalid", L, plateau)
		}
		widths[L] = float64(last - first + 1)
	}
	if len(widths) == 2 && widths[4] <= widths[2] {
		t.Errorf("dip width did not grow with scale: %v", widths)
	}
}

func TestCalibrateRoundTrip(t *testing.T) {
	g := simGraph(t, 5000, points.Cube)
	dist.MinComm{}.Assign(g, 1)
	// Simulate with a known model, collect events, calibrate, and check
	// the recovered per-unit costs match.
	m := PaperCostModel()
	m.TaskOverhead = 0
	r := Run(g, Config{Localities: 1, Cores: 2, Model: m, CollectEvents: true})
	got := Calibrate(g, r.Events)
	for op := 0; op < int(dag.NumOpKinds); op++ {
		if m.OpNanos[op] == 0 || g.EdgeCount[dag.OpKind(op)] == 0 {
			continue
		}
		rel := math.Abs(got.OpNanos[op]-m.OpNanos[op]) / m.OpNanos[op]
		if rel > 0.02 {
			t.Errorf("op %v: calibrated %v vs true %v", dag.OpKind(op), got.OpNanos[op], m.OpNanos[op])
		}
	}
}

func TestYukawaScaleHeavierImprovesEfficiency(t *testing.T) {
	// The paper: heavier grain (Yukawa) scales better because the fixed
	// runtime costs (latency, task overhead) and the starved tail are a
	// smaller fraction of the run. The effect needs a realistic
	// points-per-locality ratio to rise above scheduling noise, so this
	// test uses the largest graph of the suite.
	if testing.Short() {
		t.Skip("large graph")
	}
	g := simGraph(t, 250000, points.Cube)
	lap := PaperCostModel()
	yuk := YukawaScale(PaperCostModel(), 3)
	const L = 16
	effOf := func(m CostModel) float64 {
		dist.MinComm{}.Assign(g, 1)
		r1 := Run(g, Config{Localities: 1, Cores: 32, Model: m, Sched: FIFO})
		dist.MinComm{}.Assign(g, L)
		rL := Run(g, Config{Localities: L, Cores: 32, Model: m, Sched: FIFO})
		return r1.Makespan / (rL.Makespan * L)
	}
	el, ey := effOf(lap), effOf(yuk)
	if ey < el {
		t.Errorf("yukawa-grain efficiency %v below laplace %v; paper expects the opposite", ey, el)
	}
}
