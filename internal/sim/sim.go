// Package sim is a discrete-event simulator that replays the explicit DAG
// of an evaluation on a configurable machine: L localities of C cores each,
// a latency+bandwidth network, and a choice of scheduling disciplines. It
// substitutes for the 4096-core Cray XE6 of the paper's evaluation (see
// DESIGN.md, substitution 1): per-operator costs are calibrated from real
// traced executions, the DAG and its distribution are exactly those the
// real runtime executes, and the scheduling discipline mirrors HPX-5's
// critical-path-oblivious work stealing — or, for the Section VI ablation,
// a priority-aware variant.
package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/dag"
	"repro/internal/trace"
)

// CostModel maps DAG edges to virtual execution times in nanoseconds.
type CostModel struct {
	// OpNanos is the cost per work unit of each operator class; see Units.
	OpNanos [dag.NumOpKinds]float64
	// TaskOverhead is the fixed scheduling cost per task (thread spawn,
	// LCO bookkeeping).
	TaskOverhead float64
	// LatencyNanos is the per-parcel network latency between localities.
	LatencyNanos float64
	// BytesPerNano is the network bandwidth (0 = infinite).
	BytesPerNano float64
	// RecvNanosPerByte is the unattributed receiver-side cost of a parcel
	// (memory copies and dynamic allocation for non-local out-edge
	// handling): the paper blames exactly these for the ~10% utilization
	// deficit of multi-locality runs (Section V-B).
	RecvNanosPerByte float64
}

// Units returns the number of cost units of an edge: point-dependent
// operators scale with the number of points involved, expansion-to-
// expansion operators cost one unit.
func Units(g *dag.Graph, from *dag.Node, e dag.Edge) float64 {
	to := &g.Nodes[e.To]
	switch e.Op {
	case dag.OpS2T:
		return float64(from.Box.NPoints()) * float64(to.Box.NPoints())
	case dag.OpS2M, dag.OpS2L:
		return float64(from.Box.NPoints())
	case dag.OpM2T, dag.OpL2T:
		return float64(to.Box.NPoints())
	default:
		return 1
	}
}

// Scheduler selects the task-ordering discipline of each locality's ready
// pool.
type Scheduler int

// Disciplines.
const (
	// FIFO approximates HPX-5's critical-path-oblivious scheduling: tasks
	// run in arrival order regardless of graph position.
	FIFO Scheduler = iota
	// LIFO runs the most recently readied task first (cache-friendly depth
	// first).
	LIFO
	// Priority is the paper's proposed fix (Sections V-C and VI): a binary
	// high/low priority where work feeding the critical path — the upward
	// source-tree sweep — runs as soon as it is ready.
	Priority
	// Levelwise is the SPMD baseline of the introduction: the DAG is
	// executed in strict level-by-level phases with a global barrier
	// between phases; within a phase tasks run in arrival order.
	Levelwise
)

func (s Scheduler) String() string {
	switch s {
	case FIFO:
		return "fifo"
	case LIFO:
		return "lifo"
	case Priority:
		return "priority"
	case Levelwise:
		return "levelwise"
	default:
		return fmt.Sprintf("Scheduler(%d)", int(s))
	}
}

// Config describes the simulated machine and run.
type Config struct {
	Localities int
	Cores      int // per locality
	Model      CostModel
	Sched      Scheduler
	// CollectEvents records per-edge trace events in virtual time for the
	// utilization analysis (Figs. 4 and 5).
	CollectEvents bool
}

// Result of a simulated run.
type Result struct {
	// Makespan is the virtual wall time in nanoseconds.
	Makespan float64
	// TotalWork is the sum of all edge costs (the sequential time).
	TotalWork float64
	// Messages and MessageBytes count inter-locality parcels.
	Messages     int64
	MessageBytes int64
	// Events holds the virtual trace if requested.
	Events []trace.Event
	// TasksRun counts scheduled tasks.
	TasksRun int64
}

// Efficiency returns the parallel efficiency relative to a baseline
// (typically the 1-locality makespan): eff = base / (scale * makespan).
func Efficiency(base, makespan float64, scale float64) float64 {
	return base / (makespan * scale)
}

// task is one schedulable unit: a node trigger processing local out-edges,
// or an arrived parcel applying a group of edges.
type task struct {
	node  int32
	edges []dag.Edge // nil: the node's own local out-edges
	bytes int        // parcel payload size (parcel tasks only)
	prio  int
	phase int32 // levelwise phase index
	seq   int64 // arrival order tiebreak
}

// event is a DES event: a core finishing, or a message arriving.
type event struct {
	at   float64
	kind int8 // 0: core free, 1: task ready (message arrival or trigger)
	loc  int32
	t    *task
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Run simulates one evaluation of the graph. Node localities must have been
// assigned (dist.Policy.Assign) before calling.
func Run(g *dag.Graph, cfg Config) Result {
	if cfg.Localities <= 0 {
		cfg.Localities = 1
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	s := &simState{
		g:       g,
		cfg:     cfg,
		remain:  make([]int32, len(g.Nodes)),
		ready:   make([]readyPool, cfg.Localities),
		free:    make([]int, cfg.Localities),
		coreAt:  make([][]float64, cfg.Localities),
		phaseOf: phaseIndex(g),
	}
	for l := 0; l < cfg.Localities; l++ {
		s.free[l] = cfg.Cores
		s.coreAt[l] = make([]float64, cfg.Cores)
		s.ready[l].sched = cfg.Sched
	}
	for i := range g.Nodes {
		s.remain[i] = g.Nodes[i].In
	}
	// Seed: all roots ready at t=0.
	for _, id := range g.Roots() {
		s.enqueue(0, &task{node: id, prio: s.prio(id), phase: s.phaseOf[id]})
	}
	s.drain()
	return s.result
}

// simState carries the DES machinery.
type simState struct {
	g       *dag.Graph
	cfg     Config
	remain  []int32
	events  eventHeap
	ready   []readyPool
	free    []int
	coreAt  [][]float64 // per-core busy-until (for event emission only)
	phaseOf []int32
	phase   int32 // current levelwise phase
	inPhase int64 // running tasks + ready tasks of current phase (levelwise)
	seq     int64
	result  Result
	now     float64
}

// prio maps a node to its binary-ish priority: the upward source-tree sweep
// (S and M nodes) first, the bridge next, the downward sweep last.
func (s *simState) prio(id int32) int {
	switch s.g.Nodes[id].Kind {
	case dag.NodeS, dag.NodeM:
		return 0
	case dag.NodeIs, dag.NodeIt:
		return 1
	default:
		return 2
	}
}

// phaseIndex assigns each node the levelwise phase of its trigger task:
// upward phases by source level (deepest first), bridge, downward by target
// level.
func phaseIndex(g *dag.Graph) []int32 {
	maxSrc := int32(g.Source.MaxLevel)
	maxTgt := int32(g.Target.MaxLevel)
	out := make([]int32, len(g.Nodes))
	for i := range g.Nodes {
		n := &g.Nodes[i]
		lvl := int32(n.Level())
		switch n.Kind {
		case dag.NodeS:
			out[i] = 0
		case dag.NodeM: // deepest level first: phase 1..maxSrc+1
			out[i] = 1 + (maxSrc - lvl)
		case dag.NodeIs:
			out[i] = maxSrc + 2 + (maxSrc - lvl)
		case dag.NodeIt:
			out[i] = 2*maxSrc + 3 + lvl
		case dag.NodeL:
			out[i] = 2*maxSrc + maxTgt + 4 + lvl
		default: // T
			out[i] = 2*maxSrc + 2*maxTgt + 5
		}
	}
	return out
}

// enqueue makes a task ready at time at on its node's locality.
func (s *simState) enqueue(at float64, t *task) {
	t.seq = s.seq
	s.seq++
	heap.Push(&s.events, event{at: at, kind: 1, loc: s.g.Nodes[t.node].Locality, t: t})
}

// drain runs the event loop to completion.
func (s *simState) drain() {
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(event)
		s.now = ev.at
		if s.now > s.result.Makespan {
			s.result.Makespan = s.now
		}
		switch ev.kind {
		case 1: // task became ready at its locality
			s.ready[ev.loc].push(ev.t)
		case 0: // a core became free
			s.free[ev.loc]++
			if s.cfg.Sched == Levelwise && ev.t != nil {
				s.inPhase--
			}
		}
		if s.cfg.Sched == Levelwise {
			// A finished task may open the phase barrier for every
			// locality.
			for l := range s.ready {
				s.dispatch(l)
			}
		} else {
			s.dispatch(int(ev.loc))
		}
	}
}

// dispatch assigns ready tasks to free cores of locality l.
func (s *simState) dispatch(l int) {
	for s.free[l] > 0 {
		t := s.ready[l].pop(s)
		if t == nil {
			return
		}
		s.free[l]--
		s.runTask(l, t)
	}
}

// runTask executes a task on a core of locality l starting now.
func (s *simState) runTask(l int, t *task) {
	g := s.g
	n := &g.Nodes[t.node]
	m := &s.cfg.Model
	start := s.now
	cur := start + m.TaskOverhead
	if t.bytes > 0 {
		// Receiver-side copy/allocation cost of the arrived parcel; busy
		// time not attributed to any operator class.
		cur += float64(t.bytes) * m.RecvNanosPerByte
	}
	s.result.TasksRun++
	var remote map[int32][]dag.Edge
	edges := t.edges
	own := edges == nil
	if own {
		edges = n.Out
	}
	for _, e := range edges {
		dest := g.Nodes[e.To].Locality
		if own && dest != n.Locality {
			if remote == nil {
				remote = make(map[int32][]dag.Edge)
			}
			remote[dest] = append(remote[dest], e)
			continue
		}
		// Apply the edge here (local edge of a trigger task, or any edge of
		// a parcel task).
		c := Units(g, n, e) * m.OpNanos[e.Op]
		if s.cfg.CollectEvents {
			s.result.Events = append(s.result.Events, trace.Event{
				Class:    uint8(e.Op),
				Locality: int32(l),
				Start:    int64(cur),
				End:      int64(cur + c),
			})
		}
		cur += c
		s.result.TotalWork += c
		s.complete(e.To, cur)
	}
	// Coalesced parcels leave when the task ends.
	for dest, grp := range remote {
		bytes := int(n.Bytes) + 16*len(grp)
		arrive := cur + m.LatencyNanos
		if m.BytesPerNano > 0 {
			arrive += float64(bytes) / m.BytesPerNano
		}
		s.result.Messages++
		s.result.MessageBytes += int64(bytes)
		pt := &task{node: t.node, edges: grp, bytes: bytes, prio: t.prio, phase: t.phase}
		pt.seq = s.seq
		s.seq++
		heap.Push(&s.events, event{at: arrive, kind: 1, loc: dest, t: pt})
	}
	if s.cfg.Sched == Levelwise {
		// The barrier holds until this task's core-free event fires.
		heap.Push(&s.events, event{at: cur, kind: 0, loc: int32(l), t: t})
		return
	}
	heap.Push(&s.events, event{at: cur, kind: 0, loc: int32(l)})
}

// complete delivers one input to a node; the final input readies its
// trigger task at time at on the node's home locality.
func (s *simState) complete(id int32, at float64) {
	s.remain[id]--
	if s.remain[id] == 0 {
		s.enqueue(at, &task{node: id, prio: s.prio(id), phase: s.phaseOf[id]})
	}
}

// readyPool orders the ready tasks of one locality per the discipline.
type readyPool struct {
	sched Scheduler
	fifo  []*task
	pq    taskHeap
}

func (p *readyPool) push(t *task) {
	switch p.sched {
	case FIFO, LIFO:
		p.fifo = append(p.fifo, t)
	default:
		heap.Push(&p.pq, t)
	}
}

func (p *readyPool) pop(s *simState) *task {
	switch p.sched {
	case FIFO:
		if len(p.fifo) == 0 {
			return nil
		}
		t := p.fifo[0]
		p.fifo = p.fifo[1:]
		return t
	case LIFO:
		if len(p.fifo) == 0 {
			return nil
		}
		t := p.fifo[len(p.fifo)-1]
		p.fifo = p.fifo[:len(p.fifo)-1]
		return t
	case Priority:
		if p.pq.Len() == 0 {
			return nil
		}
		return heap.Pop(&p.pq).(*task)
	default: // Levelwise: only tasks of the current global phase may run
		if p.pq.Len() == 0 {
			return nil
		}
		t := p.pq[0]
		if t.phase > s.phase {
			// Barrier: may this locality advance the phase? Only when no
			// task of the current phase is ready or running anywhere.
			if s.phaseDone() {
				s.phase = t.phase
			} else {
				return nil
			}
		}
		t = heap.Pop(&p.pq).(*task)
		s.inPhase++
		return t
	}
}

// phaseDone reports whether no ready or running task belongs to a phase
// <= the current one (levelwise barrier condition).
func (s *simState) phaseDone() bool {
	if s.inPhase > 0 {
		return false
	}
	for l := range s.ready {
		for _, t := range s.ready[l].pq {
			if t.phase <= s.phase {
				return false
			}
		}
	}
	// Any in-flight readiness events for the current phase also block.
	for _, ev := range s.events {
		if ev.kind == 1 && ev.t != nil && ev.t.phase <= s.phase {
			return false
		}
	}
	return true
}

// taskHeap orders by (phase or priority, arrival).
type taskHeap []*task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	if h[i].phase != h[j].phase {
		return h[i].phase < h[j].phase
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x interface{}) { *h = append(*h, x.(*task)) }
func (h *taskHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	*h = old[:n-1]
	return t
}
