package serve

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"time"

	"repro/internal/geom"
	"repro/internal/kernel"
	"repro/internal/points"
)

// Request is one JSON evaluation request. The ensemble is given either as a
// spec (distribution + n + seed, the paper's generated workloads) or as
// inline source/target coordinates; charges likewise come from a seed or
// inline. Everything else defaults sensibly so the minimal request is
// {"n": 10000}.
type Request struct {
	// Ensemble spec.
	Distribution string `json:"distribution,omitempty"` // cube | sphere | plummer (default cube)
	N            int    `json:"n,omitempty"`            // points per ensemble
	Seed         int64  `json:"seed,omitempty"`         // point RNG seed (default 1; targets use Seed+1)

	// Inline ensembles (alternative to the spec). Each point is [x,y,z].
	Sources [][3]float64 `json:"sources,omitempty"`
	Targets [][3]float64 `json:"targets,omitempty"`

	// Kernel and accuracy.
	Kernel    string  `json:"kernel,omitempty"` // laplace | yukawa (default laplace)
	Lambda    float64 `json:"lambda,omitempty"` // yukawa screening parameter (default 4.0)
	Digits    int     `json:"digits,omitempty"` // accuracy digits (default 3)
	Threshold int     `json:"threshold,omitempty"`

	// Execution shape.
	Localities int `json:"localities,omitempty"` // default 1
	Workers    int `json:"workers,omitempty"`    // default 1

	// Charges: inline values or a generator seed (default seed 3).
	Charges    []float64 `json:"charges,omitempty"`
	ChargeSeed int64     `json:"charge_seed,omitempty"`

	// DeadlineMS bounds the request's total time in queue; a request that
	// cannot be admitted before the deadline is shed. 0 uses the server
	// default.
	DeadlineMS int `json:"deadline_ms,omitempty"`

	// Trace captures the evaluation's event trace (trace.WriteJSON lines)
	// into the response.
	Trace bool `json:"trace,omitempty"`
}

// Response is the JSON reply to an evaluation request.
type Response struct {
	Potentials []float64 `json:"potentials"`
	Report     Report    `json:"report"`
	// TraceJSONL carries the per-request event trace (one JSON object per
	// line, the trace.WriteJSON format) when the request asked for it.
	TraceJSONL string `json:"trace_jsonl,omitempty"`
}

// Report describes how the request was served.
type Report struct {
	CacheHit      bool          `json:"cache_hit"`           // plan served from the cache
	StoreHit      bool          `json:"store_hit,omitempty"` // plan revived from the persistent store
	Coalesced     bool          `json:"coalesced"`           // piggybacked on an identical in-flight request
	RuntimeReused bool          `json:"runtime_reused"`      // evaluation ran on a pooled runtime generation
	QueueWait     time.Duration `json:"queue_wait_ns"`
	PlanBuild     time.Duration `json:"plan_build_ns"` // zero on a cache hit
	Evaluate      time.Duration `json:"evaluate_ns"`
	Total         time.Duration `json:"total_ns"`
	Localities    int           `json:"localities"`
	Workers       int           `json:"workers"`
	DAGNodes      int           `json:"dag_nodes"`
	DAGEdges      int64         `json:"dag_edges"`
	TasksRun      int64         `json:"tasks_run"`
	ParcelsSent   int64         `json:"parcels_sent"`
	Steals        int64         `json:"steals"`
	// Distributed: the evaluation ran over the worker-rank pool. Degraded:
	// it was eligible for the pool but fell back in-process (breaker open,
	// no live workers, or a mid-run failure that exhausted the retry).
	Distributed bool `json:"distributed,omitempty"`
	Degraded    bool `json:"degraded,omitempty"`
}

// errorBody is the JSON error payload.
type errorBody struct {
	Error string `json:"error"`
	// Degraded marks a failure on the degraded path: the distributed fabric
	// was down and the fallback could not complete within the deadline.
	Degraded bool `json:"degraded,omitempty"`
}

// normalize applies defaults and validates the request against the server
// limits. It returns a user-facing error for malformed requests.
func (r *Request) normalize(limits Config) error {
	inline := len(r.Sources) > 0 || len(r.Targets) > 0
	if inline {
		if len(r.Sources) == 0 || len(r.Targets) == 0 {
			return fmt.Errorf("inline ensembles need both sources and targets")
		}
		if r.N != 0 && r.N != len(r.Sources) {
			return fmt.Errorf("n=%d contradicts %d inline sources", r.N, len(r.Sources))
		}
		r.N = len(r.Sources)
	}
	if r.Distribution == "" {
		r.Distribution = "cube"
	}
	r.Distribution = strings.ToLower(r.Distribution)
	switch r.Distribution {
	case "cube", "sphere", "plummer":
	default:
		return fmt.Errorf("unknown distribution %q (want cube, sphere or plummer)", r.Distribution)
	}
	if r.N <= 0 {
		return fmt.Errorf("n must be positive")
	}
	if limits.MaxPoints > 0 && r.N > limits.MaxPoints {
		return fmt.Errorf("n=%d exceeds the server limit of %d points", r.N, limits.MaxPoints)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Kernel == "" {
		r.Kernel = "laplace"
	}
	r.Kernel = strings.ToLower(r.Kernel)
	switch r.Kernel {
	case "laplace":
	case "yukawa":
		if r.Lambda == 0 {
			r.Lambda = 4.0
		}
		if r.Lambda < 0 || math.IsNaN(r.Lambda) || math.IsInf(r.Lambda, 0) {
			return fmt.Errorf("invalid lambda %v", r.Lambda)
		}
	default:
		return fmt.Errorf("unknown kernel %q (want laplace or yukawa)", r.Kernel)
	}
	if r.Digits == 0 {
		r.Digits = 3
	}
	if r.Digits < 1 || r.Digits > 12 {
		return fmt.Errorf("digits=%d out of range [1,12]", r.Digits)
	}
	if r.Threshold < 0 {
		return fmt.Errorf("threshold must be non-negative")
	}
	if r.Localities <= 0 {
		r.Localities = 1
	}
	if r.Workers <= 0 {
		r.Workers = 1
	}
	if r.Localities > 64 || r.Workers > 256 {
		return fmt.Errorf("execution shape %dx%d too large", r.Localities, r.Workers)
	}
	if len(r.Charges) > 0 && len(r.Charges) != r.N {
		return fmt.Errorf("%d charges for %d sources", len(r.Charges), r.N)
	}
	if r.ChargeSeed == 0 {
		r.ChargeSeed = 3
	}
	if r.DeadlineMS < 0 {
		return fmt.Errorf("deadline_ms must be non-negative")
	}
	return nil
}

// planKey identifies the cacheable part of a request: everything that goes
// into building the tree, the DAG and the kernel tables — (distribution, N,
// seed, kernel, accuracy, threshold). Inline ensembles key on a content
// hash so a client replaying the same geometry still hits the cache.
func (r *Request) planKey() string {
	if len(r.Sources) > 0 {
		h := fnv.New64a()
		hashPoints(h, r.Sources)
		hashPoints(h, r.Targets)
		return fmt.Sprintf("inline/%016x/%s/%s", h.Sum64(), r.kernelKey(), r.accuracyKey())
	}
	return fmt.Sprintf("%s/n=%d/seed=%d/%s/%s", r.Distribution, r.N, r.Seed, r.kernelKey(), r.accuracyKey())
}

func (r *Request) kernelKey() string {
	if r.Kernel == "yukawa" {
		return fmt.Sprintf("yukawa(%g)", r.Lambda)
	}
	return "laplace"
}

func (r *Request) accuracyKey() string {
	return fmt.Sprintf("d=%d/thr=%d", r.Digits, r.Threshold)
}

// requestKey identifies a whole evaluation for coalescing: the plan, the
// execution shape, the charge vector and whether a trace is wanted. Two
// concurrent requests with equal keys produce byte-identical responses and
// share one evaluation.
func (r *Request) requestKey() string {
	charges := fmt.Sprintf("qseed=%d", r.ChargeSeed)
	if len(r.Charges) > 0 {
		h := fnv.New64a()
		var b [8]byte
		for _, q := range r.Charges {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(q))
			h.Write(b[:])
		}
		charges = fmt.Sprintf("q=%016x", h.Sum64())
	}
	return fmt.Sprintf("%s|%dx%d|%s|trace=%v", r.planKey(), r.Localities, r.Workers, charges, r.Trace)
}

func hashPoints(h interface{ Write([]byte) (int, error) }, pts [][3]float64) {
	var b [8]byte
	for _, p := range pts {
		for _, c := range p {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(c))
			h.Write(b[:])
		}
	}
}

// distEligible reports whether the request should route through the
// worker-rank pool: spec-generated geometry only (inline points do not fit
// in a job broadcast), no trace capture (traces are per-process), and large
// enough that distribution beats the in-process path.
func (r *Request) distEligible(threshold int) bool {
	return threshold > 0 && len(r.Sources) == 0 && !r.Trace && r.N >= threshold
}

// ensembles materializes the request's source/target points.
func (r *Request) ensembles() (src, tgt []geom.Point) {
	if len(r.Sources) > 0 {
		return toGeom(r.Sources), toGeom(r.Targets)
	}
	var d points.Distribution
	switch r.Distribution {
	case "sphere":
		d = points.Sphere
	case "plummer":
		d = points.Plummer
	default:
		d = points.Cube
	}
	return points.Generate(d, r.N, r.Seed), points.Generate(d, r.N, r.Seed+1)
}

// newKernel constructs the kernel the (normalized) request asks for.
func (r *Request) newKernel() kernel.Kernel {
	order := kernel.OrderForDigits(r.Digits)
	if r.Kernel == "yukawa" {
		return kernel.NewYukawa(order, r.Lambda)
	}
	return kernel.NewLaplace(order)
}

// charges materializes the request's charge vector.
func (r *Request) chargeVector() []float64 {
	if len(r.Charges) > 0 {
		return r.Charges
	}
	return points.Charges(r.N, r.ChargeSeed)
}

func toGeom(pts [][3]float64) []geom.Point {
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = geom.Point{X: p[0], Y: p[1], Z: p[2]}
	}
	return out
}
