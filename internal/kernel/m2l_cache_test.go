package kernel

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// m2lCase is one list-2 geometry: boxes of side `side` separated by the
// lattice offset (dx,dy,dz).
type m2lCase struct {
	side       float64
	dx, dy, dz int
}

var m2lCases = []m2lCase{
	{0.125, 2, 0, 0},   // face-adjacent well-separated pair
	{0.125, 2, 1, -1},  // generic list-2 offset
	{0.125, 3, 3, 3},   // corner of the interaction lattice
	{0.25, -2, 0, 1},   // coarser level
	{0.0625, 0, -3, 2}, // finer level
}

func (c m2lCase) centers() (from, to geom.Point) {
	from = geom.Point{X: 0.5, Y: 0.5, Z: 0.5}
	to = from.Add(geom.Point{
		X: float64(c.dx) * c.side,
		Y: float64(c.dy) * c.side,
		Z: float64(c.dz) * c.side,
	})
	return
}

// maxCoefDiff is the max relative coefficient difference between two
// expansions, normalized by the largest magnitude in b.
func maxCoefDiff(a, b []complex128) float64 {
	var num, den float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > num {
			num = d
		}
		if m := cmplx.Abs(b[i]); m > den {
			den = m
		}
	}
	if den == 0 {
		return num
	}
	return num / den
}

// TestM2LCachedMatchesProjection checks that the cached dense operator and
// the spectral projection agree to near machine precision on every lattice
// offset class, for both kernels: the two paths are the same linear
// operator.
func TestM2LCachedMatchesProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tc := range kernels(t) {
		k := tc.k.(interface {
			Kernel
			SetM2LCache(bool)
		})
		m := make([]complex128, k.MLSize())
		for i := range m {
			m[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		for _, c := range m2lCases {
			from, to := c.centers()
			cached := make([]complex128, k.MLSize())
			projected := make([]complex128, k.MLSize())
			k.SetM2LCache(true)
			k.M2L(from, to, c.side, m, cached)
			k.SetM2LCache(false)
			k.M2L(from, to, c.side, m, projected)
			k.SetM2LCache(true)
			if e := maxCoefDiff(cached, projected); e > 1e-12 {
				t.Errorf("%s offset (%d,%d,%d) side %g: cached vs projected rel diff %.2e",
					tc.name, c.dx, c.dy, c.dz, c.side, e)
			}
		}
	}
}

// TestM2LCacheFallsBackOffLattice checks that geometry off the interaction
// lattice bypasses the cache and still lands on the projection result.
func TestM2LCacheFallsBackOffLattice(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, tc := range kernels(t) {
		k := tc.k.(interface {
			Kernel
			SetM2LCache(bool)
		})
		m := make([]complex128, k.MLSize())
		for i := range m {
			m[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		from := geom.Point{X: 0.5, Y: 0.5, Z: 0.5}
		// Not an integer multiple of the side: must not be cached.
		to := from.Add(geom.Point{X: 0.3071, Y: 0.011, Z: -0.29})
		a := make([]complex128, k.MLSize())
		b := make([]complex128, k.MLSize())
		k.SetM2LCache(true)
		k.M2L(from, to, 0.125, m, a)
		k.SetM2LCache(false)
		k.M2L(from, to, 0.125, m, b)
		k.SetM2LCache(true)
		if e := maxCoefDiff(a, b); e != 0 {
			t.Errorf("%s: off-lattice M2L differs with cache on: %.2e", tc.name, e)
		}
	}
}

// TestM2LCachedEndToEndAccuracy gates the cached path against the direct
// sum: S2M + cached M2L + L2T on a well-separated pair must deliver the
// 3-digit requirement, exactly like the projection path it replaces.
func TestM2LCachedEndToEndAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range kernels(t) {
		const side = 0.125
		from := geom.Point{X: 0.5, Y: 0.5, Z: 0.5}
		to := from.Add(geom.Point{X: 2 * side, Y: side, Z: -side})
		spts := randBox(rng, from, side, 40)
		q := randCharges(rng, 40)
		tpts := randBox(rng, to, side, 30)
		m := make([]complex128, tc.k.MLSize())
		l := make([]complex128, tc.k.MLSize())
		tc.k.S2M(from, spts, q, m)
		tc.k.M2L(from, to, side, m, l)
		pot := make([]float64, len(tpts))
		tc.k.L2T(to, l, tpts, pot)
		want := direct(tc.k, spts, q, tpts)
		if e := relErr(pot, want); e > tc.tol {
			t.Errorf("%s: cached S2M+M2L+L2T rel err %.2e > %.0e", tc.name, e, tc.tol)
		}
	}
}

// BenchmarkM2LCachedVsProjected measures the per-edge M->L cost of the
// cached dense operator against the spectral projection it replaces
// (ISSUE acceptance: >= 3x).
func BenchmarkM2LCachedVsProjected(b *testing.B) {
	for _, mode := range []string{"cached", "projected"} {
		for name, k0 := range benchKernels() {
			b.Run(mode+"/"+name, func(b *testing.B) {
				k := k0.(interface {
					Kernel
					SetM2LCache(bool)
				})
				rng := rand.New(rand.NewSource(3))
				m := make([]complex128, k.MLSize())
				for i := range m {
					m[i] = complex(rng.NormFloat64(), rng.NormFloat64())
				}
				l := make([]complex128, k.MLSize())
				from := geom.Point{X: 0.5, Y: 0.5, Z: 0.5}
				const side = 0.125
				to := from.Add(geom.Point{X: 2 * side, Y: 0, Z: side})
				k.SetM2LCache(mode == "cached")
				k.M2L(from, to, side, m, l) // warm the cache / workspace
				b.ResetTimer()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					k.M2L(from, to, side, m, l)
				}
				k.SetM2LCache(true)
			})
		}
	}
}

// benchKernels builds fresh prepared kernels for the benches.
func benchKernels() map[string]Kernel {
	p := OrderForDigits(3)
	lap := NewLaplace(p)
	yuk := NewYukawa(p, 4.0)
	lap.Prepare(1.0, 5)
	yuk.Prepare(1.0, 5)
	return map[string]Kernel{"laplace": lap, "yukawa": yuk}
}
