// Gravity: an N-body workload in the style the paper's introduction
// motivates — the gravitational potential of a Plummer star cluster acting
// on itself (identical source and target ensembles, 1/r kernel).
//
// The example compares the Barnes–Hut and advanced-FMM methods DASHMM is
// generic over: same ensembles, same API, different method parameter, and
// reports the accuracy and DAG shape of both, plus the total potential
// energy of the cluster.
//
//	go run ./examples/gravity
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/geom"
	"repro/internal/kernel"
	"repro/internal/points"
)

func main() {
	const n = 20000
	stars := points.Generate(points.Plummer, n, 7)
	// Equal masses normalized to a unit-mass cluster.
	masses := make([]float64, n)
	for i := range masses {
		masses[i] = 1.0 / n
	}
	k := kernel.NewLaplace(kernel.OrderForDigits(3))

	workers := runtime.GOMAXPROCS(0)
	rng := rand.New(rand.NewSource(9))
	sample := make([]int, 25)
	for i := range sample {
		sample[i] = rng.Intn(n)
	}
	exact := baseline.DirectSample(k, stars, masses, stars, sample)

	for _, m := range []dag.Method{dag.BarnesHut, dag.Advanced} {
		plan, err := core.NewPlan(stars, stars, k, core.Options{Method: m, Theta: 0.5})
		if err != nil {
			log.Fatal(err)
		}
		pot, rep, err := plan.Evaluate(masses, core.ExecOptions{Workers: workers, Gradient: true})
		if err != nil {
			log.Fatal(err)
		}
		var worst float64
		for _, i := range sample {
			rel := abs(pot[i]-exact[i]) / abs(exact[i])
			if rel > worst {
				worst = rel
			}
		}
		// Total potential energy: U = -1/2 sum_i m_i phi_i (sign flipped
		// since the 1/r kernel is positive). The accelerations a_i =
		// grad phi_i come from the same evaluation; for an isolated system
		// the total momentum flux sum m_i a_i must vanish (Newton's third
		// law), a strong end-to-end consistency check.
		var u float64
		var net geom.Point
		for i, p := range pot {
			u -= 0.5 * masses[i] * p
			net = net.Add(rep.Gradients[i].Scale(masses[i]))
		}
		fmt.Printf("%-12s %8d nodes %9d edges  %9v  U=%.6f  |sum m*a|=%.1e  worst rel.err %.1e\n",
			m, len(plan.Graph.Nodes), plan.Graph.NumEdges(), rep.Elapsed, u, net.Norm(), worst)
	}
	fmt.Println("(an unclipped Plummer model with scale radius a=0.1 has U = -3*pi/(32*a)*G*M^2 ~ -2.95;")
	fmt.Println(" clipping to the unit cube concentrates the cluster and binds it slightly tighter)")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
