// Package kernel implements the interaction kernels of the FMM: the
// scale-invariant Laplace kernel 1/r and the scale-variant Yukawa kernel
// e^{-lambda r}/r, together with the eleven operators of the advanced
// (merge-and-shift) fast multipole method used by the paper:
//
//	S->M, M->M, M->L, L->L, L->T, M->T, S->L, S->T    (basic FMM, Fig. 1c)
//	M->I, I->I, I->L                                  (advanced FMM)
//
// Both kernels share one spherical-harmonic framework. Multipole (M) and
// local (L) expansions hold (p+1)^2 complex coefficients in the dense
// sphharm.SqIndex layout. The translation operators M->M, M->L and L->L are
// realized by spectral projection: the expansion's field is evaluated on a
// Gauss–Legendre x trapezoid sphere about the new center and projected back
// onto the basis by orthogonality. For the harmonic (Laplace) and modified
// Helmholtz (Yukawa) equations this is exact up to the quadrature band
// limit, and it sidesteps kernel-specific analytic translation theorems
// (the substitution is recorded in DESIGN.md); correctness is gated by the
// direct-summation accuracy tests in this package and in internal/core.
//
// Intermediate (I) expansions are directional plane-wave expansions; see
// planewave.go.
package kernel

import (
	"math"
	"math/cmplx"
	"sync"

	"repro/internal/geom"
	"repro/internal/sphharm"
)

// Kernel is the interaction-specific part of the FMM. Implementations are
// safe for concurrent use after Prepare has been called. All "out"
// parameters are accumulated into (so a zeroed slice receives the plain
// result); this matches the LCO reduction semantics of the runtime.
type Kernel interface {
	// Name identifies the kernel ("laplace" or "yukawa").
	Name() string
	// P returns the truncation order of the M and L expansions.
	P() int
	// MLSize returns the number of complex coefficients in an M or L
	// expansion.
	MLSize() int
	// ISize returns the number of complex coefficients in one directional
	// plane-wave expansion at the given tree level (an I DAG node holds six
	// of these). For the scale-variant Yukawa kernel this varies with level.
	ISize(level int) int

	// Prepare precomputes per-level tables for a domain whose root cube has
	// the given side, for tree levels 0..maxLevel. It must be called before
	// any operator is used and is not safe to call concurrently with them.
	Prepare(rootSide float64, maxLevel int)

	// Direct evaluates the kernel G(t, s) for one pair of points.
	Direct(t, s geom.Point) float64

	// S2T accumulates the direct interaction of the sources into the
	// potentials of the targets. Coincident points are skipped (self
	// interaction).
	S2T(spts []geom.Point, q []float64, tpts []geom.Point, pot []float64)
	// S2M forms the multipole expansion about center c of the given sources.
	S2M(c geom.Point, spts []geom.Point, q []float64, out []complex128)
	// S2L forms the local expansion about center c due to well-separated
	// sources.
	S2L(c geom.Point, spts []geom.Point, q []float64, out []complex128)
	// M2T evaluates a multipole expansion at the targets.
	M2T(c geom.Point, m []complex128, tpts []geom.Point, pot []float64)
	// L2T evaluates a local expansion at the targets.
	L2T(c geom.Point, l []complex128, tpts []geom.Point, pot []float64)

	// M2M translates a child multipole expansion (child box side childSide,
	// centered at from) to the parent center to.
	M2M(from, to geom.Point, childSide float64, in, out []complex128)
	// M2L converts a multipole expansion of a source box with side `side`
	// centered at from into a local expansion about to.
	M2L(from, to geom.Point, side float64, in, out []complex128)
	// L2L translates a parent local expansion to a child center; childSide
	// is the side of the child box.
	L2L(from, to geom.Point, childSide float64, in, out []complex128)

	// M2I converts a multipole expansion of a level-`level` box into the
	// outgoing plane-wave expansion for direction dir about the same center.
	M2I(dir geom.Direction, level int, in, out []complex128)
	// I2I translates a plane-wave expansion by the world-frame vector shift
	// (a diagonal, pointwise operation) and accumulates it into out.
	I2I(dir geom.Direction, level int, shift geom.Point, in, out []complex128)
	// I2L converts an accumulated incoming plane-wave expansion into a local
	// expansion about the box center.
	I2L(dir geom.Direction, level int, in, out []complex128)
}

// radialFunc fills out[n], n = 0..p, with a radial basis function at r.
type radialFunc func(r float64, out []float64)

// base carries the kernel-independent spherical-harmonic engine. The
// concrete kernels embed it and supply the radial functions, the moment
// prefactors and the plane-wave quadrature rule.
type base struct {
	name string
	p    int
	coef *sphharm.Coef

	radReg radialFunc // regular radial functions R_n (r^n or i_n(kr))
	radOut radialFunc // outer radial functions O_n (r^{-n-1} or k_n(kr))
	cn     []float64  // moment prefactor c_n (see S2M)

	// Sphere quadrature for the projection-based translations: directions
	// and weights integrating spherical harmonics of degree <= band exactly,
	// with oversampling to suppress aliasing of out-of-band modes.
	sph []sphNode

	// Projection radii, as multiples of the relevant box side.
	aM2M, aM2L, aL2L float64

	directF  func(r float64) float64                 // pointwise kernel G(r)
	gradF    func(r float64) float64                 // dG/dr, for gradient eval
	p2pF     p2pFunc                                 // tiled near-field apply (p2p.go)
	pwNodes  func(side float64) (u, mu, w []float64) // box-unit quadrature generator
	pwParams pwGenParams
	pw       *pwTables // plane-wave machinery, set up by Prepare
	wsp      wsChan    // scratch workspace free list

	// xl caches dense translation matrices for the eight fixed
	// parent/child offsets of M->M and L->L and for the per-(side,
	// lattice-offset) list-2 M->L operators (see api.go).
	xl sync.Map
	// m2lCacheOff disables the cached M->L path (SetM2LCache), so the
	// accuracy tests can compare it against pure projection.
	m2lCacheOff bool
	// pwPending holds imported plane-wave matrices (ImportOperators) until
	// Prepare builds the level tables that adopt them (see preparePW).
	pwPending map[xlKey][]complex128
}

type sphNode struct {
	dir geom.Point // unit direction
	w   float64    // quadrature weight (sums to 4 pi)
	y   []complex128
}

const sphOversample = 3 // extra theta rows beyond exactness

func newBase(name string, p int, radReg, radOut radialFunc, cn []float64) *base {
	b := &base{
		name:   name,
		p:      p,
		coef:   sphharm.NewCoef(p),
		radReg: radReg,
		radOut: radOut,
		cn:     cn,
		aM2M:   1.5,
		aM2L:   1.05,
		aL2L:   1.0,
	}
	b.p2pF = genericP2PTile(b)
	nth := p + 1 + sphOversample
	nph := 2*p + 2 + 2*sphOversample
	xs, ws := sphharm.GaussLegendre(nth)
	scratch := make([]float64, sphharm.TriSize(p))
	for i := 0; i < nth; i++ {
		ct := xs[i]
		st := math.Sqrt(1 - ct*ct)
		for j := 0; j < nph; j++ {
			phi := 2 * math.Pi * float64(j) / float64(nph)
			n := sphNode{
				dir: geom.Point{X: st * math.Cos(phi), Y: st * math.Sin(phi), Z: ct},
				w:   ws[i] * 2 * math.Pi / float64(nph),
				y:   make([]complex128, sphharm.SqSize(p)),
			}
			b.coef.Ynm(ct, phi, n.y, scratch)
			b.sph = append(b.sph, n)
		}
	}
	return b
}

func (b *base) Name() string { return b.name }
func (b *base) P() int       { return b.p }
func (b *base) MLSize() int  { return sphharm.SqSize(b.p) }

// workspace bundles the per-call scratch buffers so the hot paths do not
// allocate. Callers on distinct goroutines get distinct workspaces via the
// free list below.
type workspace struct {
	rad     []float64
	tri     []float64
	ylm     []complex128
	field   []complex128
	scratch []complex128
}

func (b *base) newWorkspace() *workspace {
	return &workspace{
		rad:     make([]float64, b.p+1),
		tri:     make([]float64, sphharm.TriSize(b.p)),
		ylm:     make([]complex128, sphharm.SqSize(b.p)),
		field:   make([]complex128, len(b.sph)),
		scratch: make([]complex128, sphharm.SqSize(b.p)),
	}
}

// wsPool is a tiny free list of workspaces; a sync.Pool would also do but
// this keeps allocation behaviour deterministic for the benchmarks.
type wsChan chan *workspace

func newWSChan(b *base) wsChan { return make(chan *workspace, 64) }

func (c wsChan) get(b *base) *workspace {
	select {
	case w := <-c:
		return w
	default:
		return b.newWorkspace()
	}
}

func (c wsChan) put(w *workspace) {
	select {
	case c <- w:
	default:
	}
}

// S2M accumulates the multipole expansion about c:
//
//	M_n^m = sum_s q_s c_n R_n(r_s) conj(Y_n^m(s_hat))
//
// so that the far field is Phi(t) = sum M_n^m O_n(r_t) Y_n^m(t_hat).
func (b *base) s2m(ws *workspace, c geom.Point, spts []geom.Point, q []float64, out []complex128) {
	b.project(ws, c, spts, q, b.radReg, out)
}

// S2L accumulates the local expansion about c due to distant sources:
//
//	L_n^m = sum_s q_s c_n O_n(r_s) conj(Y_n^m(s_hat))
//
// so that Phi(t) = sum L_n^m R_n(r_t) Y_n^m(t_hat) for targets nearer to c
// than every source.
func (b *base) s2l(ws *workspace, c geom.Point, spts []geom.Point, q []float64, out []complex128) {
	b.project(ws, c, spts, q, b.radOut, out)
}

func (b *base) project(ws *workspace, c geom.Point, spts []geom.Point, q []float64, rf radialFunc, out []complex128) {
	p := b.p
	for i, s := range spts {
		v := s.Sub(c)
		r := v.Norm()
		ct, phi := angles(v, r)
		rf(r, ws.rad)
		b.coef.Ynm(ct, phi, ws.ylm, ws.tri)
		for n := 0; n <= p; n++ {
			f := complex(q[i]*b.cn[n]*ws.rad[n], 0)
			for m := -n; m <= n; m++ {
				idx := sphharm.SqIndex(n, m)
				out[idx] += f * cmplx.Conj(ws.ylm[idx])
			}
		}
	}
}

// evalExpansion evaluates sum coeff_n^m rad_n(r) Y_n^m(t_hat) at point t
// relative to center c.
func (b *base) evalExpansion(ws *workspace, c geom.Point, coeff []complex128, rf radialFunc, t geom.Point) complex128 {
	v := t.Sub(c)
	r := v.Norm()
	ct, phi := angles(v, r)
	rf(r, ws.rad)
	b.coef.Ynm(ct, phi, ws.ylm, ws.tri)
	var acc complex128
	for n := 0; n <= b.p; n++ {
		var sn complex128
		for m := -n; m <= n; m++ {
			idx := sphharm.SqIndex(n, m)
			sn += coeff[idx] * ws.ylm[idx]
		}
		acc += sn * complex(ws.rad[n], 0)
	}
	return acc
}

func (b *base) m2t(ws *workspace, c geom.Point, m []complex128, tpts []geom.Point, pot []float64) {
	for i, t := range tpts {
		pot[i] += real(b.evalExpansion(ws, c, m, b.radOut, t))
	}
}

func (b *base) l2t(ws *workspace, c geom.Point, l []complex128, tpts []geom.Point, pot []float64) {
	for i, t := range tpts {
		pot[i] += real(b.evalExpansion(ws, c, l, b.radReg, t))
	}
}

// translate implements the projection-based translations. The field of the
// input expansion (with radial family inRF about center from) is sampled on
// the sphere of radius a about to and projected onto the output radial
// family outRF; the result is accumulated into out.
func (b *base) translate(ws *workspace, from, to geom.Point, a float64, in []complex128, inRF, outRF radialFunc, out []complex128) {
	p := b.p
	// Sample the field.
	for i, n := range b.sph {
		pt := to.Add(n.dir.Scale(a))
		ws.field[i] = b.evalExpansion(ws, from, in, inRF, pt)
	}
	// Project: coeff_n^m = int f(a Omega) conj(Y_n^m) dOmega / outRF_n(a).
	for i := range ws.scratch {
		ws.scratch[i] = 0
	}
	for i, n := range b.sph {
		fw := ws.field[i] * complex(n.w, 0)
		for idx := 0; idx < sphharm.SqSize(p); idx++ {
			ws.scratch[idx] += fw * cmplx.Conj(n.y[idx])
		}
	}
	outRF(a, ws.rad)
	for n := 0; n <= p; n++ {
		inv := complex(1/ws.rad[n], 0)
		for m := -n; m <= n; m++ {
			idx := sphharm.SqIndex(n, m)
			out[idx] += ws.scratch[idx] * inv
		}
	}
}

// angles returns (cos theta, phi) of the vector v with |v| = r, mapping the
// zero vector to the north pole.
func angles(v geom.Point, r float64) (ct, phi float64) {
	if r == 0 {
		return 1, 0
	}
	ct = v.Z / r
	if ct > 1 {
		ct = 1
	} else if ct < -1 {
		ct = -1
	}
	phi = math.Atan2(v.Y, v.X)
	return ct, phi
}
