// Package core is the DASHMM-style user-facing layer: it assembles the dual
// tree, the interaction lists and the explicit DAG for a (sources, targets,
// kernel, method) problem, owns the expansion payloads, and evaluates the
// DAG either sequentially (reference) or on the AMT runtime (see exec.go).
//
// As in the paper, the same Plan can be evaluated many times for different
// charge inputs, amortizing the setup cost (Section IV: "the FMM is widely
// used in an iterative procedure where the same DAG is evaluated multiple
// times").
package core

import (
	"fmt"
	"sync"

	"repro/internal/dag"
	"repro/internal/geom"
	"repro/internal/kernel"
	"repro/internal/tree"
)

// Options configures plan construction.
type Options struct {
	// Method selects the HMM variant (default: advanced merge-and-shift
	// FMM).
	Method dag.Method
	// Threshold is the tree refinement threshold (default 60, the paper's
	// setting).
	Threshold int
	// Theta is the Barnes–Hut opening angle (default 0.5).
	Theta float64
	// TreeWorkers > 1 partitions the ensembles with the paper's parallel
	// three-step tree construction (coarse sort, concurrent partitioning,
	// compact stitch) instead of the sequential builder.
	TreeWorkers int
}

func (o *Options) withDefaults() Options {
	v := *o
	if v.Threshold == 0 {
		v.Threshold = tree.Threshold
	}
	return v
}

// Plan is a prepared evaluation: trees, lists, explicit DAG and the
// per-level kernel tables.
type Plan struct {
	Kernel kernel.Kernel
	Source *tree.Tree
	Target *tree.Tree
	Lists  []tree.Lists
	Graph  *dag.Graph
	opts   Options

	// batches carries the plan-build-time batch descriptors (dag.BuildBatches):
	// far-field edges grouped per dense operator, near-field edges per target
	// leaf. The serve plan cache reuses them along with the rest of the plan.
	batches *dag.Batches

	// ctxMu guards ctxs, the evaluation contexts handed out by
	// NewEvaluation / NewParallelEvaluation. Plan.Reset re-arms them all so
	// a cached plan is re-executable without being rebuilt.
	ctxMu sync.Mutex
	ctxs  []resettable // guarded by ctxMu
}

// resettable is an evaluation context that can be re-armed for a fresh run.
type resettable interface{ Reset() }

// registerCtx records an evaluation context for Plan.Reset.
func (p *Plan) registerCtx(c resettable) {
	p.ctxMu.Lock()
	p.ctxs = append(p.ctxs, c)
	p.ctxMu.Unlock()
}

// Reset re-arms every evaluation context created from this plan: payload
// buffers are zeroed and the LCO trigger counters restored to their input
// counts (the amt.LCO.Reset semantics lifted to the whole plan). A cached
// plan whose last evaluation failed mid-run (stall abort, unrecovered
// crash) is re-executable after Reset instead of being rebuilt from the
// ensembles. Runs themselves re-arm their own context at entry, so Reset
// is only needed to scrub state outside a Run — it must not be called
// concurrently with one.
func (p *Plan) Reset() {
	p.ctxMu.Lock()
	ctxs := append([]resettable(nil), p.ctxs...)
	p.ctxMu.Unlock()
	for _, c := range ctxs {
		c.Reset()
	}
}

// NewPlan partitions the ensembles, computes the dual-tree lists, and builds
// the explicit DAG.
func NewPlan(sources, targets []geom.Point, k kernel.Kernel, opts Options) (*Plan, error) {
	if len(sources) == 0 || len(targets) == 0 {
		return nil, fmt.Errorf("core: empty ensemble (%d sources, %d targets)", len(sources), len(targets))
	}
	o := opts.withDefaults()
	dom := geom.BoundingCube(sources, targets)
	var src, tgt *tree.Tree
	if o.TreeWorkers > 1 {
		src = tree.BuildParallel(sources, dom, o.Threshold, o.TreeWorkers)
		tgt = tree.BuildParallel(targets, dom, o.Threshold, o.TreeWorkers)
	} else {
		src = tree.Build(sources, dom, o.Threshold)
		tgt = tree.Build(targets, dom, o.Threshold)
	}
	return NewPlanFromTrees(src, tgt, k, opts)
}

// NewPlanFromTrees assembles a plan from already-built source and target
// trees over a shared domain: dual-tree lists, kernel tables and the
// explicit DAG. It is the second half of NewPlan, split out so the
// persistent plan store can revive a spilled tree skeleton (see
// tree.FromSkeleton) without re-partitioning the ensembles. The target
// tree's pruning marks are (re)computed here.
func NewPlanFromTrees(src, tgt *tree.Tree, k kernel.Kernel, opts Options) (*Plan, error) {
	if src == nil || tgt == nil || len(src.Pts) == 0 || len(tgt.Pts) == 0 {
		return nil, fmt.Errorf("core: empty tree")
	}
	if src.Domain != tgt.Domain {
		return nil, fmt.Errorf("core: source and target trees disagree on the domain")
	}
	o := opts.withDefaults()
	lists := tree.DualLists(tgt, src)
	maxLevel := src.MaxLevel
	if tgt.MaxLevel > maxLevel {
		maxLevel = tgt.MaxLevel
	}
	k.Prepare(src.Domain.Side, maxLevel+1)
	g := dag.Build(dag.Config{Method: o.Method, Theta: o.Theta}, src, tgt, lists, k)
	return &Plan{
		Kernel: k, Source: src, Target: tgt, Lists: lists, Graph: g, opts: o,
		batches: dag.BuildBatches(g, k),
	}, nil
}

// state holds the payloads of one evaluation of the DAG.
type state struct {
	p *Plan
	// exp holds the M or L coefficients of NodeM / NodeL nodes.
	exp [][]complex128
	// own holds the own-level directional waves of Is / It nodes.
	own [][geom.NumDirections][]complex128
	// mrg holds the merged (Is) or shared (It) child-level waves.
	mrg [][geom.NumDirections][]complex128
	// q is the source charge vector in tree order.
	q []float64
	// pot is the target potential vector in tree order.
	pot []float64
	// grad, when non-nil, accumulates the potential gradient per target
	// point (field/force evaluation).
	grad []geom.Point
}

// newState allocates payloads for every node of the graph; withGrad also
// allocates the gradient accumulators (requires a kernel.GradKernel).
func (p *Plan) newState(charges []float64, withGrad bool) (*state, error) {
	if len(charges) != len(p.Source.Pts) {
		return nil, fmt.Errorf("core: %d charges for %d sources", len(charges), len(p.Source.Pts))
	}
	g := p.Graph
	k := p.Kernel
	s := &state{
		p:   p,
		exp: make([][]complex128, len(g.Nodes)),
		own: make([][geom.NumDirections][]complex128, len(g.Nodes)),
		mrg: make([][geom.NumDirections][]complex128, len(g.Nodes)),
		q:   make([]float64, len(charges)),
		pot: make([]float64, len(p.Target.Pts)),
	}
	if withGrad {
		if _, ok := k.(kernel.GradKernel); !ok {
			return nil, fmt.Errorf("core: kernel %s does not support gradients", k.Name())
		}
		s.grad = make([]geom.Point, len(p.Target.Pts))
	}
	for i, orig := range p.Source.Perm {
		s.q[i] = charges[orig]
	}
	for i := range g.Nodes {
		n := &g.Nodes[i]
		switch n.Kind {
		case dag.NodeM, dag.NodeL:
			s.exp[i] = make([]complex128, k.MLSize())
		case dag.NodeIs, dag.NodeIt:
			lvl := n.Level()
			if n.OwnMask != 0 {
				sz := k.ISize(lvl)
				for d := 0; d < geom.NumDirections; d++ {
					if n.OwnMask&(1<<uint(d)) != 0 {
						s.own[i][d] = make([]complex128, sz)
					}
				}
			}
			if n.MergedMask != 0 {
				sz := k.ISize(lvl + 1)
				for d := 0; d < geom.NumDirections; d++ {
					if n.MergedMask&(1<<uint(d)) != 0 {
						s.mrg[i][d] = make([]complex128, sz)
					}
				}
			}
		}
	}
	return s, nil
}

// reset zeroes all payloads so the state can be reused for another charge
// vector.
func (s *state) reset(charges []float64) {
	for i, orig := range s.p.Source.Perm {
		s.q[i] = charges[orig]
	}
	s.zeroDerived()
}

// zeroAll clears every payload including the charge vector: the state of a
// freshly allocated context.
func (s *state) zeroAll() {
	for i := range s.q {
		s.q[i] = 0
	}
	s.zeroDerived()
}

// zeroDerived zeroes everything computed from the charges: potentials,
// gradients and all expansion payloads.
func (s *state) zeroDerived() {
	for i := range s.pot {
		s.pot[i] = 0
	}
	for i := range s.grad {
		s.grad[i] = geom.Point{}
	}
	zero := func(v []complex128) {
		for j := range v {
			v[j] = 0
		}
	}
	for i := range s.exp {
		zero(s.exp[i])
		for d := 0; d < geom.NumDirections; d++ {
			zero(s.own[i][d])
			zero(s.mrg[i][d])
		}
	}
}

// zeroNode clears the payload of one node for a crash-recovery rebuild:
// the rebuilt LCO re-accumulates its inputs from scratch, so whatever
// partial reduction was lost with the dead rank must not linger. S nodes
// have no derived payload (the charge vector is re-readable input); T nodes
// own their box's slice of the potential (and gradient) accumulators.
// Callers serialize against concurrent deliveries via the node's lock.
func (s *state) zeroNode(n *dag.Node) {
	switch n.Kind {
	case dag.NodeM, dag.NodeL:
		for j := range s.exp[n.ID] {
			s.exp[n.ID][j] = 0
		}
	case dag.NodeIs, dag.NodeIt:
		for d := 0; d < geom.NumDirections; d++ {
			for j := range s.own[n.ID][d] {
				s.own[n.ID][d][j] = 0
			}
			for j := range s.mrg[n.ID][d] {
				s.mrg[n.ID][d][j] = 0
			}
		}
	case dag.NodeT:
		b := n.Box
		for j := b.Lo; j < b.Hi; j++ {
			s.pot[j] = 0
		}
		if s.grad != nil {
			for j := b.Lo; j < b.Hi; j++ {
				s.grad[j] = geom.Point{}
			}
		}
	}
}

// potentials un-permutes the tree-ordered potentials back to the caller's
// target order.
func (s *state) potentials() []float64 {
	out := make([]float64, len(s.pot))
	for i, orig := range s.p.Target.Perm {
		out[orig] = s.pot[i]
	}
	return out
}

// gradients un-permutes the tree-ordered gradients back to the caller's
// target order.
func (s *state) gradients() []geom.Point {
	if s.grad == nil {
		return nil
	}
	out := make([]geom.Point, len(s.grad))
	for i, orig := range s.p.Target.Perm {
		out[orig] = s.grad[i]
	}
	return out
}

// apply executes one DAG edge: it transforms the payload of node `from` and
// accumulates the result into the payload of edge.To. It is the single
// definition of operator semantics shared by every executor. Concurrent
// callers must serialize per destination node (the LCO lock in the runtime
// executor).
func (s *state) apply(from *dag.Node, e dag.Edge) {
	g := s.p.Graph
	k := s.p.Kernel
	to := &g.Nodes[e.To]
	switch e.Op {
	case dag.OpS2M:
		b := from.Box
		k.S2M(b.Center, s.srcPts(b), s.q[b.Lo:b.Hi], s.exp[to.ID])
	case dag.OpM2M:
		k.M2M(from.Box.Center, to.Box.Center, from.Box.Side, s.exp[from.ID], s.exp[to.ID])
	case dag.OpM2L:
		k.M2L(from.Box.Center, to.Box.Center, from.Box.Side, s.exp[from.ID], s.exp[to.ID])
	case dag.OpL2L:
		k.L2L(from.Box.Center, to.Box.Center, to.Box.Side, s.exp[from.ID], s.exp[to.ID])
	case dag.OpL2T:
		b := to.Box
		if s.grad != nil {
			k.(kernel.GradKernel).L2TGrad(from.Box.Center, s.exp[from.ID], s.tgtPts(b),
				s.pot[b.Lo:b.Hi], s.grad[b.Lo:b.Hi])
			return
		}
		k.L2T(from.Box.Center, s.exp[from.ID], s.tgtPts(b), s.pot[b.Lo:b.Hi])
	case dag.OpM2T:
		b := to.Box
		if s.grad != nil {
			k.(kernel.GradKernel).M2TGrad(from.Box.Center, s.exp[from.ID], s.tgtPts(b),
				s.pot[b.Lo:b.Hi], s.grad[b.Lo:b.Hi])
			return
		}
		k.M2T(from.Box.Center, s.exp[from.ID], s.tgtPts(b), s.pot[b.Lo:b.Hi])
	case dag.OpS2L:
		b := from.Box
		k.S2L(to.Box.Center, s.srcPts(b), s.q[b.Lo:b.Hi], s.exp[to.ID])
	case dag.OpS2T:
		sb, tb := from.Box, to.Box
		if s.grad != nil {
			k.(kernel.GradKernel).S2TGrad(s.srcPts(sb), s.q[sb.Lo:sb.Hi], s.tgtPts(tb),
				s.pot[tb.Lo:tb.Hi], s.grad[tb.Lo:tb.Hi])
			return
		}
		k.S2T(s.srcPts(sb), s.q[sb.Lo:sb.Hi], s.tgtPts(tb), s.pot[tb.Lo:tb.Hi])
	case dag.OpM2I:
		for d := 0; d < geom.NumDirections; d++ {
			if e.DirMask&(1<<uint(d)) != 0 {
				k.M2I(geom.Direction(d), from.Level(), s.exp[from.ID], s.own[to.ID][d])
			}
		}
	case dag.OpI2L:
		for d := 0; d < geom.NumDirections; d++ {
			if from.OwnMask&(1<<uint(d)) != 0 {
				k.I2L(geom.Direction(d), from.Level(), s.own[from.ID][d], s.exp[to.ID])
			}
		}
	case dag.OpI2I:
		s.applyI2I(from, to, e)
	default:
		panic("core: unknown op " + e.Op.String())
	}
}

// applyI2I handles the four I->I shapes: child-to-parent merge, box-to-box
// transfer, hoisted transfer into a shared wave, and parent-to-children
// distribution.
func (s *state) applyI2I(from, to *dag.Node, e dag.Edge) {
	k := s.p.Kernel
	shift := to.Box.Center.Sub(from.Box.Center)
	if e.DirMask != 0 {
		// Merge (Is->Is) or distribution (It->It): per-direction, reading
		// own (merge) or shared (distribution) waves.
		for d := 0; d < geom.NumDirections; d++ {
			if e.DirMask&(1<<uint(d)) == 0 {
				continue
			}
			dir := geom.Direction(d)
			if e.FromMerged {
				// Distribution: parent's shared (child-level) wave into the
				// child's own accumulation.
				k.I2I(dir, to.Level(), shift, s.mrg[from.ID][d], s.own[to.ID][d])
			} else {
				// Merge: child's own wave into the parent's merged buffer.
				k.I2I(dir, from.Level(), shift, s.own[from.ID][d], s.mrg[to.ID][d])
			}
		}
		return
	}
	// Transfer (Is->It): one direction.
	d := int(e.Dir)
	dir := geom.Direction(d)
	in := s.own[from.ID][d]
	lvl := to.Level()
	if e.FromMerged {
		in = s.mrg[from.ID][d]
	}
	out := s.own[to.ID][d]
	if e.ToMerged {
		out = s.mrg[to.ID][d]
		lvl = to.Level() + 1
	}
	k.I2I(dir, lvl, shift, in, out)
}

func (s *state) srcPts(b *tree.Box) []geom.Point { return s.p.Source.Pts[b.Lo:b.Hi] }
func (s *state) tgtPts(b *tree.Box) []geom.Point { return s.p.Target.Pts[b.Lo:b.Hi] }

// EvaluateSequential runs the DAG in one goroutine in topological order and
// returns the potentials in the caller's target order. It is the reference
// executor used by the correctness tests and by the cost calibration of the
// simulator.
func (p *Plan) EvaluateSequential(charges []float64) ([]float64, error) {
	pot, _, err := p.evalSeq(charges, false)
	return pot, err
}

// EvaluateSequentialGrad also computes the potential gradient (field /
// force) at every target.
func (p *Plan) EvaluateSequentialGrad(charges []float64) ([]float64, []geom.Point, error) {
	return p.evalSeq(charges, true)
}

func (p *Plan) evalSeq(charges []float64, withGrad bool) ([]float64, []geom.Point, error) {
	st, err := p.newState(charges, withGrad)
	if err != nil {
		return nil, nil, err
	}
	order := p.Graph.TopoOrder()
	if len(order) != len(p.Graph.Nodes) {
		return nil, nil, fmt.Errorf("core: graph is not a DAG")
	}
	for _, id := range order {
		n := &p.Graph.Nodes[id]
		for _, e := range n.Out {
			st.apply(n, e)
		}
	}
	return st.potentials(), st.gradients(), nil
}

// Stats summarizes the plan for diagnostics.
func (p *Plan) Stats() string {
	nodes, edges := p.Graph.Census()
	return fmt.Sprintf("method=%v nodes=%d edges=%d\n%s\n%s",
		p.Graph.Method, len(p.Graph.Nodes), p.Graph.NumEdges(),
		dag.FormatNodeCensus(nodes), dag.FormatEdgeCensus(edges, nil))
}

// Evaluation is a reusable evaluation context over one Plan: the payload
// buffers are allocated once and reset between runs, serving the paper's
// iterative use case where the same DAG is evaluated for many charge
// vectors and the setup cost is amortized (Section IV).
type Evaluation struct {
	plan  *Plan
	st    *state
	order []int32
}

// NewEvaluation allocates an evaluation context.
func (p *Plan) NewEvaluation() (*Evaluation, error) {
	st, err := p.newState(make([]float64, len(p.Source.Pts)), false)
	if err != nil {
		return nil, err
	}
	order := p.Graph.TopoOrder()
	if len(order) != len(p.Graph.Nodes) {
		return nil, fmt.Errorf("core: graph is not a DAG")
	}
	e := &Evaluation{plan: p, st: st, order: order}
	p.registerCtx(e)
	return e, nil
}

// Reset zeroes the context's payload buffers; the next Run starts from a
// clean state. Run re-arms itself at entry, so Reset is only needed when
// scrubbing a cached context outside a Run (see Plan.Reset).
func (e *Evaluation) Reset() { e.st.zeroAll() }

// Run evaluates the DAG for one charge vector, reusing the context's
// buffers, and returns the potentials in the caller's target order.
func (e *Evaluation) Run(charges []float64) ([]float64, error) {
	if len(charges) != len(e.plan.Source.Pts) {
		return nil, fmt.Errorf("core: %d charges for %d sources", len(charges), len(e.plan.Source.Pts))
	}
	e.st.reset(charges)
	for _, id := range e.order {
		n := &e.plan.Graph.Nodes[id]
		for _, ed := range n.Out {
			e.st.apply(n, ed)
		}
	}
	return e.st.potentials(), nil
}
