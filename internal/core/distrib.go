package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/amt"
	"repro/internal/dag"
	"repro/internal/dist"
)

// Multi-process evaluation (DESIGN.md, "Distribution"). The model is SPMD:
// every process builds the identical Plan from the identical scenario, runs
// one amt locality whose rank is its global cluster rank, and computes the
// identical placement (dist.MinComm is deterministic), so node→rank routing
// needs no coordination. Rank 0 broadcasts the charge vector, gathers the
// completed target potentials, and owns the completion decision; data
// parcels flow point-to-point as typed payloads (wire.go) over the
// cluster's socket mesh with the amt delivery layer's seq/ack/retransmit
// underneath.
//
// Process death is handled with the same DAG-recomputation insight as the
// in-process coordinator (recover.go), adapted to the fact that a dead
// process takes a whole address space with it: on a death verdict —
// broadcast by rank 0 in a total order every rank observes identically —
// each survivor independently (1) fences the corpse's wire endpoints,
// (2) takes the rebuild set to be every node homed on the dead rank,
// (3) fails their ownership over deterministically (dist.Failover),
// (4) resets its newly-owned nodes, and (5) replays the in-edges of
// rebuild-set nodes whose sources it owns and has already fired. Parcels
// carry complete payload values, so an installed copy is never invalidated
// by a later death, and the per-edge applied bits make every replayed or
// duplicated contribution apply exactly once.
//
// Concurrency discipline: node fires and parcel applies run under a shared
// read lock; a death verdict takes the write lock, so recovery observes a
// quiesced executor — no node is mid-fire, no parcel mid-install — and the
// subtle orderings the in-process fast path needs (epoch snapshots,
// staleness guards) are unnecessary here. The wire is the bottleneck in
// this mode, not the lock.

// DistOptions configures one rank's participation in a distributed
// evaluation.
type DistOptions struct {
	// Workers is the scheduler thread count of this rank's locality
	// (default 1).
	Workers int
	// Seed seeds the runtime's steal and backoff RNGs.
	Seed int64
	// Gradient also computes the potential gradient at every target.
	Gradient bool
	// Delivery tunes the reliable-delivery layer (zero value = amt
	// defaults).
	Delivery amt.DeliveryConfig
	// Timeout bounds the whole evaluation; a rank that cannot finish —
	// coordinator gone, peers wedged — errors out instead of hanging
	// (default 2 minutes).
	Timeout time.Duration
	// OnProgress, when non-nil, is invoked after every locally-fired node
	// with the cumulative fire count and this rank's current owned-node
	// total. The chaos harness uses it to SIGKILL the process at a chosen
	// local progress fraction; core stays OS-agnostic.
	OnProgress func(fired, ownedTotal int)
	// Generation, when non-zero, is the wire generation this run adopts (a
	// standing cluster allocates one per job via StartJob). It is adopted
	// only after the run's frame sink is live, so frames of the new
	// generation are fenced — not acked and dropped — until this run can
	// accept them.
	Generation uint32
	// PreDead lists ranks already declared dead when the run begins, in
	// verdict order. Every rank of a job must pass the same list (the job
	// broadcast carries it), so all ranks derive the identical starting
	// placement; failover composition is order-sensitive.
	PreDead []int
	// Cancel, when non-nil, aborts the run when closed (a serve request's
	// deadline propagating into the fabric).
	Cancel <-chan struct{}
}

func (o DistOptions) withDefaults() DistOptions {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Minute
	}
	if o.Delivery == (amt.DeliveryConfig{}) {
		// Socket transports operate in milliseconds, not the microseconds of
		// the in-process wire. The amt defaults (2ms retry base) retransmit
		// multi-megabyte parcel bursts while the originals still sit in the
		// socket buffers, amplifying wire traffic ~20x; pace retries at
		// round-trip scale instead.
		o.Delivery = amt.DeliveryConfig{
			RetryBase: 200 * time.Millisecond, RetryMax: 2 * time.Second,
			RetryJitter: 0.5, Deadline: 30 * time.Second,
		}
	}
	return o
}

// DistRun evaluates the plan across the cluster. Every rank of the cluster
// must call it with an identically-built plan; rank 0 supplies the charge
// vector and receives the potentials (and gradients, via the report), the
// workers pass nil charges and receive nil potentials. DistRun runs the
// cluster's join barrier itself (registering its membership callbacks
// first), so callers go NewCluster → DistRun → Close.
func DistRun(p *Plan, cl *amt.Cluster, charges []float64, opts DistOptions) ([]float64, ExecReport, error) {
	opts = opts.withDefaults()
	if cl.Rank() == 0 && len(charges) != len(p.Source.Pts) {
		return nil, ExecReport{}, fmt.Errorf("core: %d charges for %d sources", len(charges), len(p.Source.Pts))
	}
	st, err := p.newState(make([]float64, len(p.Source.Pts)), opts.Gradient)
	if err != nil {
		return nil, ExecReport{}, err
	}
	dx, err := newDistExec(p, st, cl, opts)
	if err != nil {
		return nil, ExecReport{}, err
	}
	// The membership callbacks registered by newDistExec must not outlive
	// this run: a standing cluster keeps issuing verdicts between jobs, and
	// one landing in a discarded executor would corrupt the next run's
	// state. Cleared explicitly after rt.Run below (before the results are
	// read); the defer covers the error paths.
	defer cl.ClearRunHandlers()
	if err := cl.Start(); err != nil {
		return nil, ExecReport{}, err
	}
	if opts.Generation != 0 {
		cl.AdoptGeneration(opts.Generation)
	}
	// Replay pre-run death verdicts in their broadcast order: first the
	// job's consistent base, then anything the cluster has verdicted since
	// (idempotent — a concurrent callback for the same rank is a no-op).
	for _, r := range opts.PreDead {
		if r == cl.Rank() {
			return nil, ExecReport{}, fmt.Errorf("core: rank %d is listed dead in the job placement", r)
		}
		dx.applyDeath(r)
	}
	dx.syncDeaths()

	if opts.Cancel != nil {
		cancelStop := make(chan struct{})
		defer close(cancelStop)
		go func() {
			select {
			case <-opts.Cancel:
				dx.fail(fmt.Errorf("core: rank %d distributed evaluation canceled", cl.Rank()))
			case <-cancelStop:
			}
		}()
	}

	timeout := time.AfterFunc(opts.Timeout, func() {
		dx.gateMu.Lock()
		parked := len(dx.deferred)
		dx.gateMu.Unlock()
		tr := dx.rt.StatsNow().Transport
		dx.fail(fmt.Errorf("core: rank %d distributed evaluation timed out after %s "+
			"(%d/%d owned nodes fired, %d parcels parked, %d decode errors; "+
			"wire sent=%d acked=%d retried=%d expired=%d dropped=%d)",
			dx.rank, opts.Timeout, dx.firedCnt.Load(), dx.ownedTotal.Load(),
			parked, dx.decodeErrs.Load(),
			tr.Sent, tr.Acked, tr.Retried, tr.DeadlineExceeded, tr.Dropped))
	})
	defer timeout.Stop()

	start := time.Now()
	stats := dx.rt.Run(func() {
		dx.rt.Hold()
		if dx.rank == 0 {
			dx.applyCharges(charges)
			enc := encodeCharges(charges)
			for r := 1; r < dx.world; r++ {
				dx.rt.SendWire(r, wireKindCharges, 0, enc)
			}
		}
	})
	elapsed := time.Since(start)
	// Quiesce before reading any run state: the defer above runs only
	// after the return values (st.potentials()) have been evaluated, too
	// late to stop a straggling verdict from mutating st under the copy.
	cl.ClearRunHandlers()

	if err := dx.err(); err != nil {
		return nil, ExecReport{}, err
	}
	rep := ExecReport{
		Runtime:     stats,
		Elapsed:     elapsed,
		RemoteBytes: dist.RemoteBytes(p.Graph),
		RemoteEdges: dist.RemoteEdges(p.Graph),
		Localities:  dx.world,
		Workers:     opts.Workers,
		Recovery: RecoveryStats{
			RanksKilled:   int(dx.deaths.Load()),
			Recoveries:    int(dx.deaths.Load()),
			NodesRebuilt:  dx.rebuilt.Load(),
			EdgesReplayed: dx.replayed.Load(),
			StaleDropped:  dx.staleDrops.Load(),
		},
	}
	if dx.rank != 0 {
		return nil, rep, nil
	}
	dx.covMu.Lock()
	done := dx.done
	covered := len(dx.covered)
	dx.covMu.Unlock()
	if !done {
		return nil, ExecReport{}, fmt.Errorf("core: run ended with %d/%d target nodes gathered", covered, len(dx.tnodes))
	}
	rep.Gradients = st.gradients()
	return st.potentials(), rep, nil
}

// distExec is the per-rank distributed executor.
type distExec struct {
	p           *Plan
	st          *state
	g           *dag.Graph
	rt          *amt.Runtime
	cl          *amt.Cluster
	rank, world int
	opts        DistOptions

	// runMu is the executor/recovery exclusion: node fires and parcel
	// applies hold it shared, a death verdict holds it exclusively.
	runMu sync.RWMutex

	locks     []sync.Mutex
	remaining []atomic.Int32
	tasks     []amt.Task
	homes     []atomic.Int32
	fired     []atomic.Bool
	edgeBase  []int32
	applied   []atomic.Bool
	inEdges   [][]inRef
	tnodes    []int32

	// ownedTotal/ownedLeft count this rank's homed nodes (grown by
	// failover); ownedLeft hitting zero triggers the result report.
	ownedTotal atomic.Int64
	ownedLeft  atomic.Int64
	firedCnt   atomic.Int64

	// chargesReady gates data-parcel processing until the charge broadcast
	// arrived; gateGen versions the defer/retry handshake (bumped per
	// verdict and at charges-ready); deferred holds parcels waiting for
	// either.
	chargesReady atomic.Bool
	gateMu       sync.Mutex
	gateGen      atomic.Int64
	deferred     []amt.Frame // guarded by gateMu

	// deadRanks mirrors the verdict sequence (identical on every rank:
	// rank 0 broadcasts in a total order).
	deadRanks []bool // guarded by runMu (write side)

	// Rank-0 gather state.
	covMu   sync.Mutex
	covered map[int32]bool // guarded by covMu
	done    bool           // guarded by covMu

	relOnce sync.Once
	errMu   sync.Mutex
	runErr  error // guarded by errMu

	deaths     atomic.Int64
	rebuilt    atomic.Int64
	replayed   atomic.Int64
	decodeErrs atomic.Int64
	staleDrops atomic.Int64
}

func newDistExec(p *Plan, st *state, cl *amt.Cluster, opts DistOptions) (*distExec, error) {
	g := p.Graph
	n := len(g.Nodes)
	dx := &distExec{
		p: p, st: st, g: g, cl: cl,
		rank: cl.Rank(), world: cl.World(), opts: opts,
		locks:     make([]sync.Mutex, n),
		remaining: make([]atomic.Int32, n),
		tasks:     make([]amt.Task, n),
		homes:     make([]atomic.Int32, n),
		fired:     make([]atomic.Bool, n),
		edgeBase:  make([]int32, n+1),
		inEdges:   make([][]inRef, n),
		deadRanks: make([]bool, cl.World()),
		covered:   make(map[int32]bool),
	}
	// SPMD placement: every rank computes the same assignment.
	dist.MinComm{}.Assign(g, dx.world)
	var edges int32
	owned := int64(0)
	for i := range g.Nodes {
		dx.edgeBase[i] = edges
		edges += int32(len(g.Nodes[i].Out))
		dx.homes[i].Store(g.Nodes[i].Locality)
		dx.remaining[i].Store(g.Nodes[i].In)
		if int(g.Nodes[i].Locality) == dx.rank {
			owned++
		}
		if g.Nodes[i].Kind == dag.NodeT {
			dx.tnodes = append(dx.tnodes, g.Nodes[i].ID)
		}
	}
	dx.edgeBase[n] = edges
	dx.applied = make([]atomic.Bool, edges)
	for i := range g.Nodes {
		for j, e := range g.Nodes[i].Out {
			dx.inEdges[e.To] = append(dx.inEdges[e.To], inRef{src: int32(i), out: int32(j)})
		}
	}
	dx.ownedTotal.Store(owned)
	dx.ownedLeft.Store(owned)
	for i := range dx.tasks {
		id := int32(i)
		dx.tasks[i] = func(w *amt.Worker) { dx.runNode(w, id) }
	}

	dx.rt = amt.New(amt.Config{
		World:     dx.world,
		Rank:      dx.rank,
		Workers:   opts.Workers,
		Seed:      opts.Seed,
		Transport: cl.Transport(),
		Delivery:  opts.Delivery,
	})
	dx.rt.OnWire(dx.onWire)
	cl.Transport().OnFrame(dx.rt.DeliverWireFrame)
	cl.OnDeath(dx.onDeath)
	cl.OnShutdown(func() { dx.release() })
	cl.OnCoordinatorLost(func(err error) { dx.fail(err) })
	return dx, nil
}

// release lets Run drain (idempotent).
func (dx *distExec) release() { dx.relOnce.Do(dx.rt.Release) }

// fail records a fatal error and unblocks Run.
func (dx *distExec) fail(err error) {
	dx.errMu.Lock()
	if dx.runErr == nil {
		dx.runErr = err
	}
	dx.errMu.Unlock()
	dx.release()
	dx.rt.Abort()
}

func (dx *distExec) err() error {
	dx.errMu.Lock()
	defer dx.errMu.Unlock()
	return dx.runErr
}

// applyCharges installs the charge vector, opens the data-parcel gate and
// seeds this rank's roots. Runs once, at setup (rank 0) or on the charge
// broadcast (workers).
func (dx *distExec) applyCharges(charges []float64) {
	dx.st.reset(charges)
	dx.chargesReady.Store(true)
	dx.gateGen.Add(1)
	loc := dx.rt.LocalLocality()
	for _, id := range dx.g.Roots() {
		if int(dx.homes[id].Load()) == dx.rank {
			loc.Spawn(dx.tasks[id])
		}
	}
	// A rank that owns nothing (tiny DAG, many ranks) completes immediately.
	if dx.ownedLeft.Load() == 0 {
		dx.runMu.RLock()
		//lint:ignore lockorder runMu's read half is held across run-side sends by design: the write half is the rank-death reset, which must only run between parcels (quiescing gate, never held by a sender's peer)
		dx.completeLocal()
		dx.runMu.RUnlock()
	}
	dx.drainDeferred()
}

// onWire is the inbound frame handler, running as a task on this rank's
// scheduler.
func (dx *distExec) onWire(w *amt.Worker, f amt.Frame) {
	switch f.Kind {
	case wireKindCharges:
		if dx.chargesReady.Load() {
			return // duplicate broadcast (retransmit): already installed
		}
		charges, err := decodeCharges(f.Payload, len(dx.p.Source.Pts))
		if err != nil {
			dx.fail(fmt.Errorf("core: rank %d: bad charge broadcast: %w", dx.rank, err))
			return
		}
		dx.applyCharges(charges)
	case wireKindParcel:
		dx.handleParcel(w, f)
	case wireKindResult:
		dx.handleResult(f)
	default:
		dx.decodeErrs.Add(1)
	}
}

// handleParcel processes one data parcel, deferring it while its
// prerequisites (the charge broadcast, a death verdict this rank has not
// yet observed) are outstanding. The defer/retry loop re-checks the gate
// generation so a verdict landing between the attempt and the enqueue
// cannot strand a frame.
func (dx *distExec) handleParcel(w *amt.Worker, f amt.Frame) {
	for {
		gen := dx.gateGen.Load()
		dx.runMu.RLock()
		ok := dx.tryParcel(w, f)
		dx.runMu.RUnlock()
		if ok {
			return
		}
		dx.gateMu.Lock()
		if dx.gateGen.Load() == gen {
			dx.deferred = append(dx.deferred, f)
			dx.gateMu.Unlock()
			return
		}
		dx.gateMu.Unlock()
	}
}

// tryParcel installs and applies one parcel; false means "not yet" — the
// frame must wait for the gate to advance. A parcel routed here names only
// targets this rank homes; seeing a foreign target means the sender has
// processed a death verdict this rank has not, so the frame waits for it.
func (dx *distExec) tryParcel(w *amt.Worker, f amt.Frame) bool {
	if !dx.chargesReady.Load() {
		return false
	}
	src, outIdx, r, err := decodeParcelHeader(dx.g, f.Payload)
	if err != nil {
		dx.decodeErrs.Add(1)
		return true // malformed: consume and drop, never wedge the gate
	}
	if int(dx.homes[src].Load()) == dx.rank {
		// Only the owner may hold the authoritative copy of a node, and we
		// are it: this parcel is a corpse's in-flight frame for a node a
		// failover just rebuilt here. Installing its payload on top of the
		// reset node would double the replayed contributions; the rebuild
		// re-derives and re-delivers everything the frame carried, so drop
		// it.
		dx.staleDrops.Add(1)
		return true
	}
	n := &dx.g.Nodes[src]
	for _, j := range outIdx {
		if int(dx.homes[n.Out[j].To].Load()) != dx.rank {
			return false
		}
	}
	dx.locks[src].Lock()
	err = dx.st.installNodePayload(n, r)
	if err == nil {
		err = r.done()
	}
	dx.locks[src].Unlock()
	if err != nil {
		dx.decodeErrs.Add(1)
		return true
	}
	for _, j := range outIdx {
		dx.deliverEdge(n, dx.edgeBase[src]+j, n.Out[j])
	}
	return true
}

// drainDeferred re-dispatches every deferred parcel after the gate
// advanced (charges arrived or a verdict was processed).
func (dx *distExec) drainDeferred() {
	dx.gateMu.Lock()
	frames := dx.deferred
	dx.deferred = nil
	dx.gateMu.Unlock()
	if len(frames) == 0 {
		return
	}
	loc := dx.rt.LocalLocality()
	for _, f := range frames {
		f := f
		loc.Spawn(func(w *amt.Worker) { dx.handleParcel(w, f) })
	}
}

// deliverEdge applies one edge into its target with exactly-once effect:
// both endpoint locks (ordered) so the source payload cannot be rewritten
// mid-read, the applied bit as the dedup filter, and the final input
// firing the target. Callers hold runMu (shared) or are the verdict path
// (exclusive).
func (dx *distExec) deliverEdge(from *dag.Node, gidx int32, e dag.Edge) {
	a, b := from.ID, e.To
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	dx.locks[lo].Lock()
	//lint:ignore lockorder two-lock protocol acquires in global index order (lo < hi after the swap above); the type-granular lock graph cannot see the ordering
	dx.locks[hi].Lock()
	if dx.applied[gidx].Load() {
		dx.locks[hi].Unlock()
		dx.locks[lo].Unlock()
		return
	}
	dx.st.apply(from, e)
	dx.applied[gidx].Store(true)
	rem := dx.remaining[b].Add(-1)
	dx.locks[hi].Unlock()
	dx.locks[lo].Unlock()
	if rem == 0 {
		dx.rt.LocalLocality().Spawn(dx.tasks[b])
	}
}

// runNode is the distributed node continuation: local edges apply
// directly, remote edges coalesce into one typed parcel per destination
// rank carrying the node's payload values.
func (dx *distExec) runNode(w *amt.Worker, id int32) {
	dx.runMu.RLock()
	defer dx.runMu.RUnlock()
	if dx.fired[id].Swap(true) {
		return
	}
	n := &dx.g.Nodes[id]
	base := dx.edgeBase[id]
	var batch *remoteBatch
	for j, e := range n.Out {
		dest := dx.homes[e.To].Load()
		if int(dest) == dx.rank {
			dx.deliverEdge(n, base+int32(j), e)
			continue
		}
		if batch == nil {
			batch = remoteBatchPool.Get().(*remoteBatch)
		}
		// idx carries the out-edge index within n.Out; the receiver derives
		// the global dedup index from its own edgeBase.
		batch.addIdx(dest, e, int32(j))
	}
	if batch != nil {
		epoch := uint32(dx.deaths.Load())
		for i, dest := range batch.dests {
			pe := batch.lists[i]
			// The payload read is unsynchronized but safe: all inputs are
			// applied (the node just fired), resets are excluded by runMu,
			// and no peer installs into a node this rank homes.
			payload := dx.st.encodeParcel(n, pe.idx)
			//lint:ignore lockorder runMu's read half is held across run-side sends by design: the write half is the rank-death reset, which must only run between parcels (quiescing gate, never held by a sender's peer)
			dx.rt.SendWire(int(dest), wireKindParcel, epoch, payload)
			pe.edges = pe.edges[:0]
			pe.idx = pe.idx[:0]
			parcelEdgesPool.Put(pe)
		}
		batch.release()
	}
	fired := dx.firedCnt.Add(1)
	if dx.opts.OnProgress != nil {
		dx.opts.OnProgress(int(fired), int(dx.ownedTotal.Load()))
	}
	if dx.ownedLeft.Add(-1) == 0 {
		//lint:ignore lockorder runMu's read half is held across run-side sends by design: the write half is the rank-death reset, which must only run between parcels (quiescing gate, never held by a sender's peer)
		dx.completeLocal()
	}
}

// completeLocal reports this rank's completed targets: rank 0 marks its own
// coverage, workers ship potentials to rank 0. Re-entered after a failover
// grows the owned set back above zero and drains again; re-reports are
// idempotent. Callers hold runMu (shared).
func (dx *distExec) completeLocal() {
	var ids []int32
	for _, id := range dx.tnodes {
		if int(dx.homes[id].Load()) == dx.rank && dx.fired[id].Load() {
			ids = append(ids, id)
		}
	}
	if dx.rank == 0 {
		dx.markCovered(ids)
		return
	}
	dx.rt.SendWire(0, wireKindResult, uint32(dx.deaths.Load()), dx.st.encodeResult(ids))
}

// handleResult installs a worker's completed-targets report (rank 0).
func (dx *distExec) handleResult(f amt.Frame) {
	if dx.rank != 0 {
		dx.decodeErrs.Add(1)
		return
	}
	dx.runMu.RLock()
	defer dx.runMu.RUnlock()
	dx.covMu.Lock()
	ids, err := dx.st.installResult(f.Payload)
	dx.covMu.Unlock()
	if err != nil {
		dx.decodeErrs.Add(1)
		return
	}
	//lint:ignore lockorder runMu's read half is held across run-side sends by design: the write half is the rank-death reset, which must only run between parcels (quiescing gate, never held by a sender's peer)
	dx.markCovered(ids)
}

// markCovered records gathered target nodes and completes the run once
// every target is in: shut the cluster down and let everyone drain.
func (dx *distExec) markCovered(ids []int32) {
	dx.covMu.Lock()
	for _, id := range ids {
		dx.covered[id] = true
	}
	finished := !dx.done && len(dx.covered) == len(dx.tnodes)
	if finished {
		dx.done = true
	}
	dx.covMu.Unlock()
	if finished {
		dx.cl.Shutdown()
		dx.release()
	}
}

// onDeath is the membership callback: one death verdict, observed in the
// same order by every rank.
func (dx *distExec) onDeath(deadRank, epoch int) {
	if deadRank == dx.rank {
		// The cluster declared *us* dead (a false heartbeat verdict under
		// load): the survivors have fenced this rank and rebuilt its work,
		// so fail fast instead of running to the timeout.
		dx.fail(fmt.Errorf("core: rank %d declared dead by the cluster at epoch %d", dx.rank, epoch))
		return
	}
	// Failover composition is order-sensitive: process every verdict this
	// executor has not yet applied in the cluster's authoritative order,
	// not just the one that fired the callback. On a standing cluster a
	// verdict can predate the callback registration (it reaches the run
	// via DeadOrder replay in DistRun); whoever gets there first applies
	// it, in order, and the other path no-ops.
	dx.syncDeaths()
}

// syncDeaths applies, in verdict order, every death this executor has not
// yet processed.
func (dx *distExec) syncDeaths() {
	for _, r := range dx.cl.DeadOrder() {
		if r != dx.rank {
			dx.applyDeath(r)
		}
	}
}

// applyDeath performs one rank's failover. It runs with the executor
// quiesced (write lock), so the recovery below never races a node fire or
// parcel apply. Idempotent: a verdict already applied is a no-op.
func (dx *distExec) applyDeath(deadRank int) {
	dx.runMu.Lock()
	if dx.deadRanks[deadRank] {
		dx.runMu.Unlock()
		return
	}
	dx.rt.SeverRank(deadRank)
	g := dx.g
	dx.deadRanks[deadRank] = true
	var survivors []int32
	for r, dead := range dx.deadRanks {
		if !dead {
			survivors = append(survivors, int32(r))
		}
	}

	// Rebuild set: everything homed on the corpse. A node that already
	// discharged its role is recomputed anyway — sound (deterministic
	// values, applied-bit dedup) and decidable without any cross-rank
	// negotiation, which matters more here than a minimal set.
	inSet := make([]bool, len(g.Nodes))
	var set []int32
	for i := range g.Nodes {
		if int(dx.homes[i].Load()) == deadRank {
			inSet[i] = true
			set = append(set, int32(i))
		}
	}

	// Deterministic failover: every survivor computes the same new homes.
	plain := make([]int32, len(g.Nodes))
	for i := range plain {
		plain[i] = dx.homes[i].Load()
	}
	dist.Failover(plain, int32(deadRank), survivors)
	for i := range plain {
		dx.homes[i].Store(plain[i])
	}

	// Reset the rebuild-set nodes that are now this rank's: payload zeroed,
	// inputs re-armed, in-edge applied bits cleared so replayed
	// contributions land exactly once.
	newMine := int64(0)
	for _, id := range set {
		if int(plain[id]) != dx.rank {
			continue
		}
		n := &g.Nodes[id]
		dx.locks[id].Lock()
		dx.st.zeroNode(n)
		for _, ref := range dx.inEdges[id] {
			dx.applied[dx.edgeBase[ref.src]+ref.out].Store(false)
		}
		dx.remaining[id].Store(n.In)
		dx.locks[id].Unlock()
		dx.fired[id].Store(false)
		newMine++
	}
	if newMine > 0 {
		dx.rebuilt.Add(newMine)
		dx.ownedTotal.Add(newMine)
		dx.ownedLeft.Add(newMine)
	}

	// Replay: an in-edge of a rebuild-set node whose source this rank owns
	// and has fired will never be re-sent naturally — re-send it (coalesced
	// per source and destination). Sources inside the set re-send when they
	// re-fire; unfired sources deliver in due course. Re-seed rebuilt roots.
	type replayKey struct{ src, dest int32 }
	replays := make(map[replayKey][]int32)
	loc := dx.rt.LocalLocality()
	replayed := int64(0)
	for _, id := range set {
		for _, ref := range dx.inEdges[id] {
			if inSet[ref.src] || int(dx.homes[ref.src].Load()) != dx.rank || !dx.fired[ref.src].Load() {
				continue
			}
			replayed++
			n := &g.Nodes[ref.src]
			e := n.Out[ref.out]
			if int(plain[id]) == dx.rank {
				dx.deliverEdge(n, dx.edgeBase[ref.src]+ref.out, e)
				continue
			}
			k := replayKey{ref.src, plain[id]}
			replays[k] = append(replays[k], ref.out)
		}
		// Re-seed rebuilt roots — but only once charges are installed. Before
		// that (a PreDead replay, or a verdict racing the broadcast) the task
		// would fire on zero charges and its applied bits would then shadow
		// the real contributions; applyCharges spawns every root this rank
		// homes, from the already-updated placement. The store/load order
		// (homes then chargesReady here; chargesReady then homes there) makes
		// the handoff airtight: at least one side sees the other's write.
		if g.Nodes[id].In == 0 && int(plain[id]) == dx.rank && dx.chargesReady.Load() {
			loc.Spawn(dx.tasks[id])
		}
	}
	ep := uint32(dx.deaths.Add(1))
	for k, outIdx := range replays {
		n := &g.Nodes[k.src]
		//lint:ignore lockorder runMu's read half is held across run-side sends by design: the write half is the rank-death reset, which must only run between parcels (quiescing gate, never held by a sender's peer)
		dx.rt.SendWire(int(k.dest), wireKindParcel, ep, dx.st.encodeParcel(n, outIdx))
	}
	dx.replayed.Add(replayed)
	dx.runMu.Unlock()

	// A failover can only shrink a rank's unfinished set to empty outside
	// runNode when the rank owned nothing new; re-check completion for the
	// degenerate already-drained case (owned nothing, still owns nothing —
	// covered elsewhere) and unwedge any frames that waited for this
	// verdict.
	dx.gateGen.Add(1)
	dx.drainDeferred()
}
