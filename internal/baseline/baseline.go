// Package baseline provides the comparison points of the evaluation: the
// exact O(N^2) direct summation (the accuracy oracle and the naive
// comparator HMMs are measured against) and helpers for sampling it when
// the full quadratic sum is too slow.
package baseline

import (
	"sync"

	"repro/internal/geom"
	"repro/internal/kernel"
)

// Direct computes the exact potentials of every target due to every source
// with the given kernel, splitting the target range across `workers`
// goroutines. Coincident points are skipped, matching the library's
// self-interaction convention.
func Direct(k kernel.Kernel, spts []geom.Point, q []float64, tpts []geom.Point, workers int) []float64 {
	if workers <= 0 {
		workers = 1
	}
	pot := make([]float64, len(tpts))
	var wg sync.WaitGroup
	chunk := (len(tpts) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(tpts) {
			break
		}
		hi := lo + chunk
		if hi > len(tpts) {
			hi = len(tpts)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			k.S2T(spts, q, tpts[lo:hi], pot[lo:hi])
		}(lo, hi)
	}
	wg.Wait()
	return pot
}

// DirectSample computes the exact potential at the given target indices
// only, returning a map from index to potential. It is the standard
// accuracy-checking tool for large N.
func DirectSample(k kernel.Kernel, spts []geom.Point, q []float64, tpts []geom.Point, idx []int) map[int]float64 {
	out := make(map[int]float64, len(idx))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, ti := range idx {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			var acc float64
			t := tpts[ti]
			for si, sp := range spts {
				r := t.Dist(sp)
				if r == 0 {
					continue
				}
				acc += q[si] * k.Direct(t, sp)
			}
			mu.Lock()
			out[ti] = acc
			mu.Unlock()
		}(ti)
	}
	wg.Wait()
	return out
}
