package core

import (
	"sync/atomic"

	"repro/internal/amt"
	"repro/internal/dag"
	"repro/internal/kernel"
	"repro/internal/trace"
)

// Batched execution (DESIGN.md, "Batched execution"). The plan carries
// batch descriptors (dag.BuildBatches); the executor turns each into one
// prebuilt task guarded by a pending-source counter. A triggering node
// skips its batched out-edges on the per-edge path and decrements the
// counters of the batches it feeds; the last source in spawns the batch
// task, which applies every member edge through the kernel's blocked
// multi-RHS M->L (far field) or cache-tiled P2P (near field) and then runs
// the ordinary LCO bookkeeping per edge — target lock, reduction, input
// countdown, trigger — so downstream scheduling is identical to per-edge
// execution. Batches complete in shared memory: the member edges bypass
// the parcel wire (they are skipped by the coalescing loop), which is why
// latency-modeled runs disable batching.
//
// Under crash recovery the batch aggregates only the scheduling: the batch
// task applies its members through deliverRecov, one edge at a time, so the
// per-edge applied bits, staleness epochs and exactly-once dedupe keep
// working unchanged when a batch is replayed. After a crash verdict the
// batch counters are abandoned entirely — sources that complete post-crash
// deliver their batched edges inline (runNodeRecov), and the coordinator's
// demotion scan (recover.go) re-delivers any member edge of an
// already-complete source that a lost or never-fired batch task left
// unapplied.

// batchBlock is the far-field GEMM block: 16 right-hand sides of scratch
// (25.6 KB at p=9) keep the accumulation out of the target locks while the
// 160 KB operator plus the block stays L2-resident.
const batchBlock = 16

// batchScratch is the pooled per-task scratch of the batch paths.
type batchScratch struct {
	buf    []complex128 // batchBlock contiguous out vectors
	ins    [batchBlock][]complex128
	outs   [batchBlock][]complex128
	chunks []kernel.P2PChunk
}

// initBatches wires the plan's batch descriptors into the executor:
// per-batch pending counters, prebuilt batch tasks and the scratch pool.
// Batching is an execution strategy with a per-shape gate — PerEdge opts
// out wholesale, latency-modeled runs stay per-edge (batches bypass the
// modeled wire), and gradient runs keep the near field per-edge (the tiled
// P2P computes potentials only).
func (ex *executor) initBatches(p *Plan, opts ExecOptions) {
	bk, isBatch := p.Kernel.(kernel.BatchKernel)
	if !isBatch || p.batches.Empty() || opts.PerEdge || opts.Latency != 0 {
		return
	}
	ex.batches = p.batches
	ex.bk = bk
	ex.m2lOn = len(p.batches.M2L) > 0
	ex.p2pOn = len(p.batches.P2P) > 0 && !opts.Gradient
	if !ex.m2lOn && !ex.p2pOn {
		ex.batches = nil
		return
	}
	nb := p.batches.NumBatches()
	ex.batchPending = make([]atomic.Int32, nb)
	ex.batchTasks = make([]amt.Task, nb)
	nm2l := int32(len(p.batches.M2L))
	for i := range ex.batchTasks {
		bi := int32(i)
		if bi < nm2l {
			ex.batchTasks[i] = func(w *amt.Worker) { ex.runBatchM2L(w, bi) }
		} else {
			pi := bi - nm2l
			ex.batchTasks[i] = func(w *amt.Worker) { ex.runBatchP2P(w, pi) }
		}
	}
	sq := p.Kernel.MLSize()
	ex.batchScratch.New = func() any {
		sc := &batchScratch{
			buf:    make([]complex128, batchBlock*sq),
			chunks: make([]kernel.P2PChunk, 0, 64),
		}
		for k := 0; k < batchBlock; k++ {
			sc.outs[k] = sc.buf[k*sq : (k+1)*sq]
		}
		return sc
	}
	ex.resetBatchPending()
}

// resetBatchPending re-arms every batch counter to its source count.
func (ex *executor) resetBatchPending() {
	if ex.batches == nil {
		return
	}
	for i := range ex.batchPending {
		ex.batchPending[i].Store(int32(ex.batches.SrcCount(int32(i))))
	}
}

// batchEdgeOn reports whether edges of the operator class are being
// executed through batches in this context.
//
//dashmm:noalloc
func (ex *executor) batchEdgeOn(op dag.OpKind) bool {
	if op == dag.OpM2L {
		return ex.m2lOn
	}
	return ex.p2pOn
}

// batchIDOn reports whether batch bi's kind is enabled.
//
//dashmm:noalloc
func (ex *executor) batchIDOn(bi int32) bool {
	if int(bi) < len(ex.batches.M2L) {
		return ex.m2lOn
	}
	return ex.p2pOn
}

// noteBatchSources records that node id has triggered against every batch
// it feeds; the last source in spawns the batch task on the triggering
// worker's locality.
//
//dashmm:noalloc
func (ex *executor) noteBatchSources(w *amt.Worker, id int32) {
	if !ex.m2lOn && !ex.p2pOn {
		return
	}
	for _, bi := range ex.batches.SrcBatches[id] {
		if !ex.batchIDOn(bi) {
			continue
		}
		if ex.batchPending[bi].Add(-1) == 0 {
			w.Spawn(ex.batchTasks[bi])
		}
	}
}

// runBatchM2L applies one far-field batch: blocks of batchBlock edges are
// run through the kernel's multi-RHS apply into pooled scratch (no lock
// held while the GEMM streams), then each edge's result is reduced into its
// target under the target lock with the usual LCO countdown. Every source
// of the batch is complete before the task spawns, so the source payloads
// are immutable here and are read without their locks.
//
//dashmm:noalloc
func (ex *executor) runBatchM2L(w *amt.Worker, bi int32) {
	mb := &ex.batches.M2L[bi]
	if ex.rec != nil {
		ex.runBatchRecov(w, mb.Edges)
		return
	}
	sc := ex.batchScratch.Get().(*batchScratch)
	st := ex.st
	for lo := 0; lo < len(mb.Edges); lo += batchBlock {
		hi := lo + batchBlock
		if hi > len(mb.Edges) {
			hi = len(mb.Edges)
		}
		nb := hi - lo
		for k := 0; k < nb; k++ {
			sc.ins[k] = st.exp[mb.Edges[lo+k].From]
			out := sc.outs[k]
			for j := range out {
				out[j] = 0
			}
		}
		var t0 int64
		if ex.tracer.Enabled() {
			t0 = ex.tracer.Now()
		}
		ex.bk.M2LBatch(mb.Offs[lo:hi], mb.Side, mb.Level, sc.ins[:nb], sc.outs[:nb])
		for k := 0; k < nb; k++ {
			be := mb.Edges[lo+k]
			out := sc.outs[k]
			ex.locks[be.To].Lock()
			dst := st.exp[be.To]
			for j, v := range out {
				dst[j] += v
			}
			ex.locks[be.To].Unlock()
			if ex.tracer.Enabled() {
				// One event per member edge, partitioning the block's wall
				// time so the utilization analysis conserves operator mass.
				now := ex.tracer.Now()
				ex.tracer.Record(w.GlobalID, trace.Event{
					Class:    uint8(dag.OpM2L),
					Worker:   int32(w.GlobalID),
					Locality: int32(w.Rank()),
					Start:    t0,
					End:      now,
				})
				t0 = now
			}
			if ex.remaining[be.To].Add(-1) == 0 {
				ex.fireNode(w, be.To)
			}
		}
	}
	ex.batchScratch.Put(sc)
}

// runBatchP2P applies one near-field batch: the source leaves of every
// member edge are gathered into chunks and swept through the kernel's tiled
// P2P under the single target lock, then the LCO countdown runs per edge.
//
//dashmm:noalloc
func (ex *executor) runBatchP2P(w *amt.Worker, pi int32) {
	pb := &ex.batches.P2P[pi]
	if ex.rec != nil {
		ex.runBatchRecov(w, pb.Edges)
		return
	}
	sc := ex.batchScratch.Get().(*batchScratch)
	st := ex.st
	sc.chunks = sc.chunks[:0]
	for _, be := range pb.Edges {
		sb := ex.g.Nodes[be.From].Box
		sc.chunks = append(sc.chunks, kernel.P2PChunk{
			Pts: st.srcPts(sb),
			Q:   st.q[sb.Lo:sb.Hi],
		})
	}
	tb := ex.g.Nodes[pb.Target].Box
	var t0 int64
	if ex.tracer.Enabled() {
		t0 = ex.tracer.Now()
	}
	ex.locks[pb.Target].Lock()
	ex.bk.P2P(sc.chunks, st.tgtPts(tb), st.pot[tb.Lo:tb.Hi])
	ex.locks[pb.Target].Unlock()
	if ex.tracer.Enabled() {
		// One event per member edge: the first spans the sweep, the rest are
		// zero-width markers, conserving both event counts and time mass.
		end := ex.tracer.Now()
		for k := range pb.Edges {
			start := end
			if k == 0 {
				start = t0
			}
			ex.tracer.Record(w.GlobalID, trace.Event{
				Class:    uint8(dag.OpS2T),
				Worker:   int32(w.GlobalID),
				Locality: int32(w.Rank()),
				Start:    start,
				End:      end,
			})
		}
	}
	if ex.remaining[pb.Target].Add(-int32(len(pb.Edges))) == 0 {
		ex.fireNode(w, pb.Target)
	}
	ex.batchScratch.Put(sc)
}

// runBatchRecov is the crash-recovery form of a batch task: the aggregation
// bought the scheduling (one task for the whole batch), but every member
// edge is applied through deliverRecov so the applied bits, epochs and
// exactly-once dedupe behave exactly as on the per-edge path.
func (ex *executor) runBatchRecov(w *amt.Worker, edges []dag.BatchEdge) {
	rec := ex.rec
	ep := rec.epoch.Load()
	for _, be := range edges {
		from := &ex.g.Nodes[be.From]
		ex.deliverRecov(w, from, rec.edgeBase[be.From]+be.Out, from.Out[be.Out], ep)
	}
}
