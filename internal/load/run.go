package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/serve"
)

// PhaseResult is the harness's measurement of one phase. Latency quantiles
// are exact (computed from the sorted OK latencies, not a histogram).
type PhaseResult struct {
	Name string `json:"name"`
	Kind string `json:"kind"`

	Offered       int `json:"offered"`        // scheduled arrivals
	Sent          int `json:"sent"`           // actually issued
	ClientDropped int `json:"client_dropped"` // skipped at the in-flight cap
	OK            int `json:"ok"`
	Shed          int `json:"shed"`     // HTTP 429
	Deadline      int `json:"deadline"` // HTTP 503
	Errors        int `json:"errors"`   // anything else

	Coalesced int `json:"coalesced"`
	Degraded  int `json:"degraded"`
	CacheHits int `json:"cache_hits"`
	StoreHits int `json:"store_hits"`

	P50US  int64 `json:"p50_us"`
	P99US  int64 `json:"p99_us"`
	P999US int64 `json:"p999_us"`
	MeanUS int64 `json:"mean_us"`
	MaxUS  int64 `json:"max_us"`

	DurationS   float64 `json:"duration_s"`
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
}

// Output is the BENCH_load.json schema.
type Output struct {
	Bench  string        `json:"bench"` // always "load"
	Config Config        `json:"config"`
	Phases []PhaseResult `json:"phases"`
	// Server carries the daemon's /metrics deltas over the run when the
	// endpoint was reachable.
	Server *ServerDelta `json:"server,omitempty"`
}

// ServerDelta is the change in the daemon's own counters across the run —
// the server-side view the per-request reports cannot give (e.g. plans
// spilled to the store, evictions).
type ServerDelta struct {
	Requests     int64 `json:"requests"`
	OK           int64 `json:"ok"`
	Shed         int64 `json:"shed"`
	Deadline     int64 `json:"deadline"`
	Failed       int64 `json:"failed"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheEvicted int64 `json:"cache_evicted"`
	Coalesced    int64 `json:"coalesced"`
	DegradedOK   int64 `json:"degraded"`
	StoreHits    int64 `json:"store_hits"`
	StoreWrites  int64 `json:"store_writes"`
	StoreBytes   int64 `json:"store_bytes"`
}

// phaseAcc accumulates one phase's responses under a lock.
type phaseAcc struct {
	mu  sync.Mutex
	res PhaseResult
	lat []int64 // OK latencies, microseconds
}

func (a *phaseAcc) record(code int, resp *serve.Response, lat time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch code {
	case http.StatusOK:
		a.res.OK++
		a.lat = append(a.lat, lat.Microseconds())
		if resp.Report.Coalesced {
			a.res.Coalesced++
		}
		if resp.Report.Degraded {
			a.res.Degraded++
		}
		if resp.Report.CacheHit {
			a.res.CacheHits++
		}
		if resp.Report.StoreHit {
			a.res.StoreHits++
		}
	case http.StatusTooManyRequests:
		a.res.Shed++
	case http.StatusServiceUnavailable:
		a.res.Deadline++
	default:
		a.res.Errors++
	}
}

// finish computes the derived fields. Quantiles use the nearest-rank method
// on the sorted OK latencies.
func (a *phaseAcc) finish(wall time.Duration) PhaseResult {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.res
	sort.Slice(a.lat, func(i, j int) bool { return a.lat[i] < a.lat[j] })
	quantile := func(q float64) int64 {
		if len(a.lat) == 0 {
			return 0
		}
		i := int(q*float64(len(a.lat))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(a.lat) {
			i = len(a.lat) - 1
		}
		return a.lat[i]
	}
	r.P50US = quantile(0.50)
	r.P99US = quantile(0.99)
	r.P999US = quantile(0.999)
	if n := len(a.lat); n > 0 {
		r.MaxUS = a.lat[n-1]
		var sum int64
		for _, v := range a.lat {
			sum += v
		}
		r.MeanUS = sum / int64(n)
	}
	r.DurationS = wall.Seconds()
	if wall > 0 {
		r.OfferedRPS = float64(r.Offered) / wall.Seconds()
		r.AchievedRPS = float64(r.OK) / wall.Seconds()
	}
	return r
}

// Runner drives one scheduled run against a live daemon.
type Runner struct {
	cfg    *Config
	client *http.Client
}

// NewRunner validates the config (applying defaults) and returns a runner.
func NewRunner(cfg Config) (*Runner, error) {
	if err := cfg.Defaults(); err != nil {
		return nil, err
	}
	return &Runner{cfg: &cfg, client: &http.Client{}}, nil
}

// Config returns the runner's defaulted config.
func (r *Runner) Config() Config { return *r.cfg }

func (r *Runner) request(a Arrival) serve.Request {
	return serve.Request{
		N:          r.cfg.N,
		Seed:       a.Seed,
		Digits:     r.cfg.Digits,
		Threshold:  r.cfg.Threshold,
		Workers:    r.cfg.Workers,
		ChargeSeed: a.ChargeSeed,
		DeadlineMS: r.cfg.DeadlineMS,
	}
}

// post issues one evaluation request, returning the HTTP status (0 on a
// transport error) and the decoded body for 200s.
func (r *Runner) post(ctx context.Context, req serve.Request) (int, *serve.Response) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		r.cfg.BaseURL+"/evaluate", bytes.NewReader(body))
	if err != nil {
		return 0, nil
	}
	hreq.Header.Set("Content-Type", "application/json")
	hr, err := r.client.Do(hreq)
	if err != nil {
		return 0, nil
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		return hr.StatusCode, nil
	}
	var resp serve.Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		return 0, nil
	}
	return hr.StatusCode, &resp
}

// metricsSnapshot fetches /metrics; nil (not an error) when unreachable.
func (r *Runner) metricsSnapshot(ctx context.Context) *serve.MetricsSnapshot {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.BaseURL+"/metrics", nil)
	if err != nil {
		return nil
	}
	hr, err := r.client.Do(hreq)
	if err != nil {
		return nil
	}
	defer hr.Body.Close()
	var m serve.MetricsSnapshot
	if json.NewDecoder(hr.Body).Decode(&m) != nil {
		return nil
	}
	return &m
}

// Run executes the scheduled phases in order. Before the first warm or
// mixed phase it primes every tenant's plan serially (reported as a
// synthetic "prime" phase), so warm traffic measures the warm path, not a
// thundering herd of builds. Phases drain fully before the next one starts,
// keeping per-phase attribution exact.
func (r *Runner) Run(ctx context.Context) (*Output, error) {
	schedule, err := Schedule(r.cfg)
	if err != nil {
		return nil, err
	}
	out := &Output{Bench: "load", Config: *r.cfg}
	before := r.metricsSnapshot(ctx)

	primed := false
	for pi, spec := range r.cfg.Phases {
		if !primed && (spec.Kind == KindWarm || spec.Kind == KindMixed) {
			pr, err := r.prime(ctx)
			if err != nil {
				return nil, err
			}
			out.Phases = append(out.Phases, pr)
			primed = true
		}
		res, err := r.runPhase(ctx, spec, schedule[pi])
		if err != nil {
			return nil, err
		}
		out.Phases = append(out.Phases, res)
	}

	if after := r.metricsSnapshot(ctx); before != nil && after != nil {
		out.Server = &ServerDelta{
			Requests:     after.Requests - before.Requests,
			OK:           after.OK - before.OK,
			Shed:         after.Shed - before.Shed,
			Deadline:     after.Deadline - before.Deadline,
			Failed:       after.Failed - before.Failed,
			CacheHits:    after.CacheHits - before.CacheHits,
			CacheMisses:  after.CacheMisses - before.CacheMisses,
			CacheEvicted: after.CacheEvicted - before.CacheEvicted,
			Coalesced:    after.Coalesced - before.Coalesced,
			DegradedOK:   after.DegradedOK - before.DegradedOK,
			StoreHits:    after.StoreHits - before.StoreHits,
			StoreWrites:  after.StoreWrites - before.StoreWrites,
			StoreBytes:   after.StoreBytes - before.StoreBytes,
		}
	}
	return out, nil
}

// prime serially evaluates each tenant key once.
func (r *Runner) prime(ctx context.Context) (PhaseResult, error) {
	acc := &phaseAcc{res: PhaseResult{Name: "prime", Kind: KindPrime}}
	start := time.Now()
	for tnt := 0; tnt < r.cfg.Tenants; tnt++ {
		if err := ctx.Err(); err != nil {
			return PhaseResult{}, err
		}
		acc.res.Offered++
		acc.res.Sent++
		t0 := time.Now()
		code, resp := r.post(ctx, r.request(Arrival{Seed: warmSeedBase + int64(tnt), Tenant: tnt, ChargeSeed: 1}))
		acc.record(code, resp, time.Since(t0))
	}
	res := acc.finish(time.Since(start))
	if res.OK != r.cfg.Tenants {
		return res, fmt.Errorf("load: priming built %d of %d tenant plans", res.OK, r.cfg.Tenants)
	}
	return res, nil
}

// runPhase fires one phase's arrivals open-loop: each request launches at
// its scheduled offset whether or not earlier ones finished. The in-flight
// cap sheds client-side instead of blocking the clock.
func (r *Runner) runPhase(ctx context.Context, spec PhaseSpec, arrivals []Arrival) (PhaseResult, error) {
	acc := &phaseAcc{res: PhaseResult{Name: spec.Name, Kind: spec.Kind, Offered: len(arrivals)}}
	sem := make(chan struct{}, r.cfg.MaxInflight)
	var wg sync.WaitGroup
	start := time.Now()
	for _, a := range arrivals {
		if err := ctx.Err(); err != nil {
			wg.Wait()
			return PhaseResult{}, err
		}
		if d := a.At - time.Since(start); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				wg.Wait()
				return PhaseResult{}, ctx.Err()
			}
		}
		select {
		case sem <- struct{}{}:
		default:
			acc.mu.Lock()
			acc.res.ClientDropped++
			acc.mu.Unlock()
			continue
		}
		acc.mu.Lock()
		acc.res.Sent++
		acc.mu.Unlock()
		wg.Add(1)
		go func(a Arrival) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			code, resp := r.post(ctx, r.request(a))
			acc.record(code, resp, time.Since(t0))
		}(a)
	}
	wg.Wait()
	return acc.finish(time.Since(start)), nil
}

// Verify checks that data is a well-formed BENCH_load.json: the schema
// decodes, phases are present and internally consistent, and (optionally)
// warm traffic actually hit the cache. This is what `make load-smoke` gates
// on, without needing anything beyond the Go toolchain.
func Verify(data []byte, requireWarmHits bool) error {
	var out Output
	if err := json.Unmarshal(data, &out); err != nil {
		return fmt.Errorf("load: BENCH_load.json does not decode: %w", err)
	}
	if out.Bench != "load" {
		return fmt.Errorf("load: bench field is %q, want \"load\"", out.Bench)
	}
	if len(out.Phases) == 0 {
		return fmt.Errorf("load: no phases recorded")
	}
	warmHits := 0
	for _, p := range out.Phases {
		switch p.Kind {
		case KindCold, KindWarm, KindMixed, KindPrime:
		default:
			return fmt.Errorf("load: phase %q has unknown kind %q", p.Name, p.Kind)
		}
		if p.Sent != p.OK+p.Shed+p.Deadline+p.Errors {
			return fmt.Errorf("load: phase %q outcomes do not add up: sent %d != %d+%d+%d+%d",
				p.Name, p.Sent, p.OK, p.Shed, p.Deadline, p.Errors)
		}
		if p.Offered != p.Sent+p.ClientDropped {
			return fmt.Errorf("load: phase %q offered %d != sent %d + dropped %d",
				p.Name, p.Offered, p.Sent, p.ClientDropped)
		}
		if p.OK > 0 && !(p.P50US <= p.P99US && p.P99US <= p.P999US && p.P999US <= p.MaxUS) {
			return fmt.Errorf("load: phase %q quantiles not monotone: p50=%d p99=%d p999=%d max=%d",
				p.Name, p.P50US, p.P99US, p.P999US, p.MaxUS)
		}
		if p.Kind == KindWarm || p.Kind == KindMixed {
			warmHits += p.CacheHits
		}
	}
	if requireWarmHits && warmHits == 0 {
		return fmt.Errorf("load: warm phases recorded zero cache hits")
	}
	return nil
}
