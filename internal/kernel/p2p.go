package kernel

import (
	"math"

	"repro/internal/geom"
)

// Tiled near-field execution: the S->T lists of one target leaf touch many
// source leaves, and the generic S2T walks each pair through the directF
// closure. P2P instead blocks the targets into L1-sized tiles with a stack
// accumulator and streams every source chunk through each tile once, with
// the kernel evaluation inlined (no closure call per pair).

// P2PChunk is one source block of a tiled near-field apply: the points and
// matching charges of one source leaf.
type P2PChunk struct {
	Pts []geom.Point
	Q   []float64
}

// p2pTile is the target tile size: 64 targets (1.5 KB of positions plus a
// 512 B accumulator) stay L1-resident while the source chunks stream.
const p2pTile = 64

// p2pFunc accumulates all chunks into one target tile (len(tile) <= p2pTile).
type p2pFunc func(chunks []P2PChunk, tile []geom.Point, pot []float64)

// P2P implements BatchKernel: the near-field lists of one target leaf
// applied as cache-blocked source/target chunks. Coincident pairs are
// skipped, matching S2T.
//
//dashmm:noalloc
func (b *base) P2P(chunks []P2PChunk, tpts []geom.Point, pot []float64) {
	for lo := 0; lo < len(tpts); lo += p2pTile {
		hi := lo + p2pTile
		if hi > len(tpts) {
			hi = len(tpts)
		}
		b.p2pF(chunks, tpts[lo:hi], pot[lo:hi])
	}
}

// genericP2PTile is the fallback tile apply through the directF closure,
// used by kernels without an inlined specialization.
func genericP2PTile(b *base) p2pFunc {
	return func(chunks []P2PChunk, tile []geom.Point, pot []float64) {
		var acc [p2pTile]float64
		nt := len(tile)
		for ti := 0; ti < nt; ti++ {
			acc[ti] = 0
		}
		for _, ch := range chunks {
			for si, s := range ch.Pts {
				qv := ch.Q[si]
				for ti := 0; ti < nt; ti++ {
					r := tile[ti].Dist(s)
					if r == 0 {
						continue
					}
					acc[ti] += qv * b.directF(r)
				}
			}
		}
		for ti := 0; ti < nt; ti++ {
			pot[ti] += acc[ti]
		}
	}
}

// laplaceP2PTile inlines 1/r: one sqrt per pair, no closure call.
func laplaceP2PTile(chunks []P2PChunk, tile []geom.Point, pot []float64) {
	var acc [p2pTile]float64
	nt := len(tile)
	for ti := 0; ti < nt; ti++ {
		acc[ti] = 0
	}
	for _, ch := range chunks {
		for si, s := range ch.Pts {
			qv := ch.Q[si]
			for ti := 0; ti < nt; ti++ {
				dx := tile[ti].X - s.X
				dy := tile[ti].Y - s.Y
				dz := tile[ti].Z - s.Z
				r2 := dx*dx + dy*dy + dz*dz
				if r2 == 0 {
					continue
				}
				acc[ti] += qv / math.Sqrt(r2)
			}
		}
	}
	for ti := 0; ti < nt; ti++ {
		pot[ti] += acc[ti]
	}
}

// yukawaP2PTile inlines e^{-lambda r}/r for the given screening parameter.
func yukawaP2PTile(lambda float64) p2pFunc {
	return func(chunks []P2PChunk, tile []geom.Point, pot []float64) {
		var acc [p2pTile]float64
		nt := len(tile)
		for ti := 0; ti < nt; ti++ {
			acc[ti] = 0
		}
		for _, ch := range chunks {
			for si, s := range ch.Pts {
				qv := ch.Q[si]
				for ti := 0; ti < nt; ti++ {
					dx := tile[ti].X - s.X
					dy := tile[ti].Y - s.Y
					dz := tile[ti].Z - s.Z
					r2 := dx*dx + dy*dy + dz*dz
					if r2 == 0 {
						continue
					}
					r := math.Sqrt(r2)
					acc[ti] += qv * math.Exp(-lambda*r) / r
				}
			}
		}
		for ti := 0; ti < nt; ti++ {
			pot[ti] += acc[ti]
		}
	}
}
