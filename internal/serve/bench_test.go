package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchPost issues one request and fails the benchmark on a non-200.
func benchPost(b *testing.B, url string, req Request) *Response {
	b.Helper()
	body, _ := json.Marshal(req)
	hr, err := http.Post(url+"/evaluate", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		b.Fatalf("HTTP %d", hr.StatusCode)
	}
	var resp Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		b.Fatal(err)
	}
	return &resp
}

// The benchmark problem: 6000-point cube ensembles at 5 accuracy digits.
// At this accuracy the cold path is dominated by per-plan setup — tree +
// lists + DAG construction plus the lazy M->L/M2M/L2L translation-operator
// cache on the plan's kernel instance — all of which warm requests skip.
const (
	benchN      = 6000
	benchDigits = 5
)

// BenchmarkServeCold measures requests that never hit the plan cache: each
// iteration uses a fresh point seed, so the tree + lists + DAG + kernel
// tables are rebuilt and a fresh runtime is spun up per request.
func BenchmarkServeCold(b *testing.B) {
	s := New(Config{CacheSize: 2, MaxConcurrent: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := benchPost(b, ts.URL, Request{N: benchN, Digits: benchDigits, Workers: 2, Seed: int64(100 + i)})
		if resp.Report.CacheHit {
			b.Fatal("cold iteration hit the cache")
		}
	}
}

// BenchmarkServeWarm measures the steady state of an iterative client: the
// plan is cached, the evaluation context pooled, the runtime re-armed per
// generation. The ratio to BenchmarkServeCold is the serving speedup
// reported in EXPERIMENTS.md.
func BenchmarkServeWarm(b *testing.B) {
	s := New(Config{CacheSize: 2, MaxConcurrent: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	req := Request{N: benchN, Digits: benchDigits, Workers: 2}
	benchPost(b, ts.URL, req) // prime the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := benchPost(b, ts.URL, req)
		if !resp.Report.CacheHit {
			b.Fatal("warm iteration missed the cache")
		}
	}
}
