// Command scaling regenerates Figure 3 of the paper — the strong scaling of
// DAG evaluation, time-to-completion t_n and speedup t_32/t_n for core
// counts n = 32..4096 — together with the Section V-A scaling-efficiency
// summary and the Section VI priority-scheduling estimate.
//
// The paper ran on Big Red II (128 nodes x 32 cores, Gemini). This machine
// has one core, so the scaling curves are produced by the discrete-event
// simulator replaying the true explicit DAG under measured (or paper)
// per-operator costs; see DESIGN.md substitution 1. Cores are grouped 32
// per locality as on Big Red II.
//
//	scaling -n 1000000 -max-cores 4096 -model paper
//	scaling -n 200000 -model calibrate   # costs measured on this machine
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"runtime"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dist"
	"repro/internal/kernel"
	"repro/internal/points"
	"repro/internal/sim"
	"repro/internal/trace"
)

const coresPerLocality = 32 // Big Red II: two 16-core Opterons per node

type workload struct {
	name   string
	dist   points.Distribution
	kernel string
	n      int
}

func main() {
	var (
		nCube    = flag.Int("n", 400000, "cube points (paper: 60M); sphere uses 0.7x as in the paper")
		maxCores = flag.Int("max-cores", 4096, "largest core count (paper: 4096)")
		model    = flag.String("model", "paper", "cost model: paper | calibrate")
		digits   = flag.Int("digits", 3, "accuracy digits")
		thr      = flag.Int("threshold", 60, "refinement threshold")
		prio     = flag.Bool("priority", true, "also run the Section VI priority-scheduling estimate")
	)
	flag.Parse()

	nSphere := *nCube * 7 / 10 // 42M vs 60M in the paper
	workloads := []workload{
		{"cube Laplace", points.Cube, "laplace", *nCube},
		{"cube Yukawa", points.Cube, "yukawa", *nCube},
		{"sphere Laplace", points.Sphere, "laplace", nSphere},
		{"sphere Yukawa", points.Sphere, "yukawa", nSphere},
	}

	fmt.Printf("# Figure 3: strong scaling of DAG evaluation (simulated machine, %d cores/locality)\n", coresPerLocality)
	fmt.Printf("# cost model: %s\n\n", *model)

	type series struct {
		name string
		tn   map[int]float64
	}
	var all []series
	coreCounts := []int{}
	for c := coresPerLocality; c <= *maxCores; c *= 2 {
		coreCounts = append(coreCounts, c)
	}

	for _, wl := range workloads {
		g, cm := buildWorkload(wl, *digits, *thr, *model)
		s := series{name: wl.name, tn: map[int]float64{}}
		for _, cores := range coreCounts {
			L := cores / coresPerLocality
			dist.MinComm{}.Assign(g, L)
			r := sim.Run(g, sim.Config{Localities: L, Cores: coresPerLocality, Model: cm, Sched: sim.FIFO})
			s.tn[cores] = r.Makespan / 1e9
		}
		all = append(all, s)

		if *prio {
			// Section VI: priority hints recover the starved region. The
			// paper estimates "10% or more"; the gain depends on how large
			// the starved tail is relative to the run, so report several
			// scales.
			for _, cores := range coreCounts {
				if cores < *maxCores/8 {
					continue
				}
				L := cores / coresPerLocality
				dist.MinComm{}.Assign(g, L)
				f := sim.Run(g, sim.Config{Localities: L, Cores: coresPerLocality, Model: cm, Sched: sim.FIFO})
				p := sim.Run(g, sim.Config{Localities: L, Cores: coresPerLocality, Model: cm, Sched: sim.Priority})
				base := s.tn[coreCounts[0]]
				effF := base / f.Makespan * 1e9 / float64(L)
				effP := base / p.Makespan * 1e9 / float64(L)
				fmt.Printf("# %-15s priority ablation at %4d cores: eff %.0f%% -> %.0f%% (%+.0f pts)\n",
					wl.name+":", cores, 100*effF, 100*effP, 100*(effP-effF))
			}
		}
	}

	// t_n table.
	fmt.Printf("\n%-8s", "n")
	for _, s := range all {
		fmt.Printf(" %16s", s.name)
	}
	fmt.Println("  [t_n seconds]")
	for _, c := range coreCounts {
		fmt.Printf("%-8d", c)
		for _, s := range all {
			fmt.Printf(" %16.3f", s.tn[c])
		}
		fmt.Println()
	}

	// Speedup table (t_32 / t_n).
	fmt.Printf("\n%-8s", "n")
	for _, s := range all {
		fmt.Printf(" %16s", s.name)
	}
	fmt.Println("  [speedup t_32/t_n]")
	for _, c := range coreCounts {
		fmt.Printf("%-8d", c)
		for _, s := range all {
			fmt.Printf(" %16.2f", s.tn[coreCounts[0]]/s.tn[c])
		}
		fmt.Println()
	}

	// Section V-A: final scaling efficiency at max cores (paper: 60% cube
	// Laplace, 74% cube Yukawa, 62% sphere Laplace, 69% sphere Yukawa).
	last := coreCounts[len(coreCounts)-1]
	ideal := float64(last / coreCounts[0])
	fmt.Printf("\n# scaling efficiency at %d cores (paper: 60%% / 74%% / 62%% / 69%%):\n", last)
	for _, s := range all {
		eff := s.tn[coreCounts[0]] / s.tn[last] / ideal
		fmt.Printf("#   %-15s %5.0f%%\n", s.name+":", 100*eff)
	}
	_ = math.Inf
}

// buildWorkload constructs the DAG of one workload and its cost model.
func buildWorkload(wl workload, digits, thr int, model string) (*dag.Graph, sim.CostModel) {
	sp := points.Generate(wl.dist, wl.n, 1)
	tp := points.Generate(wl.dist, wl.n, 2)
	var k kernel.Kernel
	if wl.kernel == "laplace" {
		k = kernel.NewLaplace(kernel.OrderForDigits(digits))
	} else {
		k = kernel.NewYukawa(kernel.OrderForDigits(digits), 4.0)
	}
	plan, err := core.NewPlan(sp, tp, k, core.Options{Threshold: thr})
	if err != nil {
		log.Fatal(err)
	}
	var cm sim.CostModel
	switch model {
	case "paper":
		cm = sim.PaperCostModel()
		if wl.kernel == "yukawa" {
			// The Yukawa operators are heavier at equal DAG shape (paper
			// Section V-A); the factor matches our measured kernel ratio.
			cm = sim.YukawaScale(cm, 2.5)
		}
	case "calibrate":
		// Measure this machine's per-operator costs from a real traced run
		// on a smaller instance of the same workload, then extrapolate.
		cal := calibrationRun(wl, digits, thr)
		cm = cal
		cm.LatencyNanos = 10000
		cm.BytesPerNano = 6
	default:
		log.Fatalf("unknown cost model %q", model)
	}
	return plan.Graph, cm
}

func calibrationRun(wl workload, digits, thr int) sim.CostModel {
	n := wl.n
	if n > 100000 {
		n = 100000
	}
	sp := points.Generate(wl.dist, n, 1)
	tp := points.Generate(wl.dist, n, 2)
	q := points.Charges(n, 3)
	var k kernel.Kernel
	if wl.kernel == "laplace" {
		k = kernel.NewLaplace(kernel.OrderForDigits(digits))
	} else {
		k = kernel.NewYukawa(kernel.OrderForDigits(digits), 4.0)
	}
	plan, err := core.NewPlan(sp, tp, k, core.Options{Threshold: thr})
	if err != nil {
		log.Fatal(err)
	}
	w := runtime.GOMAXPROCS(0)
	tr := trace.New(w)
	if _, _, err := plan.Evaluate(q, core.ExecOptions{Workers: w, Tracer: tr}); err != nil {
		log.Fatal(err)
	}
	return sim.Calibrate(plan.Graph, tr.Snapshot())
}
