package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// LockOrder is the interprocedural lock-acquisition checker. Across every
// package it applies to (by import-path suffix) it builds a call graph,
// tracks which (type, mutex-field) locks are held at each call site and
// blocking operation with a flow-approximate walk of every function body,
// and then propagates acquisitions and blocking effects through the graph
// to a fixpoint. It reports two finding classes:
//
//   - lock-order cycles: if lock A is ever held while B is acquired and —
//     anywhere in the program, possibly through calls — B is held while A
//     is acquired, the acquisition graph has a cycle and the two paths can
//     deadlock against each other. Every edge on a cycle is reported, each
//     with its full acquisition chain.
//
//   - blocking while locked: a channel send/receive, blocking select,
//     net.Conn read/write, amt Transport.Send, sync.WaitGroup.Wait or
//     time.Sleep reached (directly or through calls) while any mutex is
//     held. Holding a lock across an unbounded wait extends the critical
//     section arbitrarily and couples the lock to the liveness of whatever
//     the wait is for.
//
// Lock identity is type-granular — (package, type, mutex field) — like
// lockguard: two instances of the same type count as the same lock, which
// over-approximates (a parent/child pair locked in both orders is a real
// cycle this flags) but keeps the analysis annotation-free. The held-set
// walk understands early-return unlock idioms (`if ... { mu.Unlock();
// return }`), deferred unlocks (held to function end), and merges branches
// by intersection; `go` statements and function literals are not charged
// to the spawning function, and sync.Cond.Wait is not a blocking op (it
// releases the associated mutex while waiting). //dashmm:locked annotations
// seed the entry held-set. Findings are suppressed only by the strict
// //lint:ignore form on the reported line.
type LockOrder struct {
	// Packages lists import-path suffixes included in the call graph.
	Packages []string

	funcs map[string]*loFunc
}

// NewLockOrder returns the lockorder analyzer scoped to the runtime's
// concurrency-bearing packages.
func NewLockOrder() *LockOrder {
	return &LockOrder{
		Packages: []string{"internal/amt", "internal/core", "internal/serve"},
		funcs:    map[string]*loFunc{},
	}
}

// Name implements Analyzer.
func (*LockOrder) Name() string { return "lockorder" }

// Doc implements Analyzer.
func (*LockOrder) Doc() string {
	return "interprocedural lock-acquisition cycles and blocking calls made while a mutex is held"
}

// loHeld is one lock held at a program point.
type loHeld struct {
	lock string         // canonical key: pkgpath.Type.field
	disp string         // display: Type.field
	at   token.Position // where it was acquired (or the annotated func)
}

// loAcquire is one Lock/RLock call, with the locks already held there.
type loAcquire struct {
	lock string
	disp string
	at   token.Position
	held []loHeld
}

// loCall is one statically resolved call into the analysis universe.
type loCall struct {
	callee string
	at     token.Position
	held   []loHeld
}

// loBlockOp is one directly blocking operation.
type loBlockOp struct {
	what string
	at   token.Position
	held []loHeld
}

// loFunc is the per-function summary accumulated during Run.
type loFunc struct {
	name     string // display: pkg.Type.Func
	acquires []loAcquire
	calls    []loCall
	blocks   []loBlockOp
}

func (c *LockOrder) applies(p *Pass) bool {
	for _, suffix := range c.Packages {
		if strings.HasSuffix(p.Path, suffix) {
			return true
		}
	}
	return false
}

// Run implements Analyzer: summarize every function of an in-scope package.
func (c *LockOrder) Run(p *Pass) {
	if !c.applies(p) {
		return
	}
	if c.funcs == nil {
		c.funcs = map[string]*loFunc{}
	}
	walkFuncs(p, func(_ *ast.File, fn *ast.FuncDecl) {
		obj, ok := p.Info.Defs[fn.Name].(*types.Func)
		if !ok {
			return
		}
		f := &loFunc{name: loShortPkg(p.Path) + "." + funcName(fn)}
		c.funcs[loFuncKey(obj)] = f
		s := &loScan{c: c, p: p, fn: f}
		held := c.entryHeld(p, fn)
		s.block(fn.Body.List, held)
	})
}

// entryHeld seeds the held-set from a //dashmm:locked Type.mu annotation.
func (c *LockOrder) entryHeld(p *Pass, fn *ast.FuncDecl) []loHeld {
	rest, ok := funcHasDirective(fn, "dashmm:locked")
	if !ok {
		return nil
	}
	spec, _, _ := strings.Cut(rest, " ")
	typeName, mutex, ok := strings.Cut(spec, ".")
	if !ok {
		return nil // lockguard reports the malformed annotation
	}
	named, _ := lookupNamed(p.Pkg, typeName)
	if named == nil {
		return nil
	}
	return []loHeld{{
		lock: p.Pkg.Path() + "." + typeName + "." + mutex,
		disp: typeName + "." + mutex,
		at:   p.Fset.Position(fn.Pos()),
	}}
}

// loFuncKey names a function uniquely across packages.
func loFuncKey(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := namedOf(sig.Recv().Type()); n != nil {
			return pkg + "." + n.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + "." + fn.Name()
}

func loShortPkg(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// loPos renders a position as base-filename:line for acquisition chains.
func loPos(p token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// ---- per-function held-set walk ----

type loScan struct {
	c  *LockOrder
	p  *Pass
	fn *loFunc
}

func cloneHeld(held []loHeld) []loHeld {
	return append([]loHeld(nil), held...)
}

func heldHas(held []loHeld, lock string) bool {
	for _, h := range held {
		if h.lock == lock {
			return true
		}
	}
	return false
}

func heldRemove(held []loHeld, lock string) []loHeld {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].lock == lock {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}

// intersectHeld keeps the locks of a that are also in b, in a's order.
func intersectHeld(a, b []loHeld) []loHeld {
	var out []loHeld
	for _, h := range a {
		if heldHas(b, h.lock) {
			out = append(out, h)
		}
	}
	return out
}

func (s *loScan) block(list []ast.Stmt, held []loHeld) []loHeld {
	for _, st := range list {
		held = s.stmt(st, held)
	}
	return held
}

// branch scans a statement list on a cloned held-set and reports whether
// the list definitely terminates the function (return/branch/panic), in
// which case its exit set never merges back.
func (s *loScan) branch(list []ast.Stmt, held []loHeld) (exit []loHeld, terminates bool) {
	exit = s.block(list, cloneHeld(held))
	return exit, loTerminates(list)
}

func loTerminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (s *loScan) stmt(st ast.Stmt, held []loHeld) []loHeld {
	switch t := st.(type) {
	case nil:
		return held
	case *ast.BlockStmt:
		return s.block(t.List, held)
	case *ast.LabeledStmt:
		return s.stmt(t.Stmt, held)
	case *ast.ExprStmt:
		return s.expr(t.X, held)
	case *ast.SendStmt:
		held = s.expr(t.Chan, held)
		held = s.expr(t.Value, held)
		s.blockOp("channel send", t.Arrow, held)
		return held
	case *ast.AssignStmt:
		for _, e := range t.Rhs {
			held = s.expr(e, held)
		}
		for _, e := range t.Lhs {
			held = s.expr(e, held)
		}
		return held
	case *ast.DeclStmt:
		if gd, ok := t.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						held = s.expr(e, held)
					}
				}
			}
		}
		return held
	case *ast.IncDecStmt:
		return s.expr(t.X, held)
	case *ast.ReturnStmt:
		for _, e := range t.Results {
			held = s.expr(e, held)
		}
		return held
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end, which the
		// model already assumes; any other deferred call runs at exit under
		// an unknown held-set and is not charged here.
		return held
	case *ast.GoStmt:
		// The spawned goroutine does not run under the caller's locks.
		return held
	case *ast.IfStmt:
		held = s.stmt(t.Init, held)
		held = s.expr(t.Cond, held)
		thenExit, thenTerm := s.branch(t.Body.List, held)
		elseExit, elseTerm := held, false
		if t.Else != nil {
			elseExit, elseTerm = s.branch([]ast.Stmt{t.Else}, held)
		}
		switch {
		case thenTerm && elseTerm:
			return held // code after is unreachable
		case thenTerm:
			return elseExit
		case elseTerm:
			return thenExit
		default:
			return intersectHeld(thenExit, elseExit)
		}
	case *ast.ForStmt:
		held = s.stmt(t.Init, held)
		held = s.expr(t.Cond, held)
		s.branch(t.Body.List, held)
		s.stmt(t.Post, cloneHeld(held))
		return held
	case *ast.RangeStmt:
		held = s.expr(t.X, held)
		if tv, ok := s.p.Info.Types[t.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				s.blockOp("channel receive (range)", t.For, held)
			}
		}
		s.branch(t.Body.List, held)
		return held
	case *ast.SwitchStmt:
		held = s.stmt(t.Init, held)
		held = s.expr(t.Tag, held)
		return s.caseExits(t.Body, held)
	case *ast.TypeSwitchStmt:
		held = s.stmt(t.Init, held)
		held = s.stmt(t.Assign, held)
		return s.caseExits(t.Body, held)
	case *ast.SelectStmt:
		hasDefault := false
		for _, cl := range t.Body.List {
			if comm, ok := cl.(*ast.CommClause); ok {
				if comm.Comm == nil {
					hasDefault = true
				}
				// The comm send/recv belongs to the select itself; only the
				// clause bodies are walked.
				s.branch(comm.Body, held)
			}
		}
		if !hasDefault {
			s.blockOp("blocking select", t.Select, held)
		}
		return held
	default:
		return held
	}
}

// caseExits walks every case clause of a switch body on a cloned held-set
// and merges the non-terminating exits (plus the fallthrough path when no
// default exists) by intersection.
func (s *loScan) caseExits(body *ast.BlockStmt, held []loHeld) []loHeld {
	exits := [][]loHeld{}
	hasDefault := false
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			held = s.expr(e, held)
		}
		if exit, term := s.branch(cc.Body, held); !term {
			exits = append(exits, exit)
		}
	}
	if !hasDefault {
		exits = append(exits, held)
	}
	if len(exits) == 0 {
		return held
	}
	out := exits[0]
	for _, e := range exits[1:] {
		out = intersectHeld(out, e)
	}
	return out
}

// expr walks one expression for lock, call and blocking events in source
// order. Function literals are skipped: they run later, not under the
// current held-set.
func (s *loScan) expr(e ast.Expr, held []loHeld) []loHeld {
	if e == nil {
		return held
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if t.Op == token.ARROW {
				s.blockOp("channel receive", t.OpPos, held)
			}
		case *ast.CallExpr:
			held = s.call(t, held)
		}
		return true
	})
	return held
}

// call classifies one call expression: mutex acquire/release, blocking
// operation, or a static call edge into the analysis universe.
func (s *loScan) call(t *ast.CallExpr, held []loHeld) []loHeld {
	if sel, ok := t.Fun.(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Lock", "RLock":
			if lock, disp, ok := s.lockOf(sel.X); ok {
				at := s.p.Fset.Position(sel.Pos())
				s.fn.acquires = append(s.fn.acquires, loAcquire{lock: lock, disp: disp, at: at, held: cloneHeld(held)})
				if !heldHas(held, lock) {
					held = append(cloneHeld(held), loHeld{lock: lock, disp: disp, at: at})
				}
				return held
			}
		case "Unlock", "RUnlock":
			if lock, _, ok := s.lockOf(sel.X); ok {
				return heldRemove(held, lock)
			}
		}
		if what, ok := s.blockingCall(sel); ok {
			s.blockOp(what, sel.Pos(), held)
			return held
		}
	}
	if callee := s.staticCallee(t); callee != nil {
		pkg := callee.Pkg()
		if pkg != nil && s.c.inUniverse(pkg.Path()) {
			if sig, ok := callee.Type().(*types.Signature); ok {
				if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
					return held // dynamic dispatch: no static edge
				}
			}
			s.fn.calls = append(s.fn.calls, loCall{
				callee: loFuncKey(callee),
				at:     s.p.Fset.Position(t.Pos()),
				held:   cloneHeld(held),
			})
		}
	}
	return held
}

func (c *LockOrder) inUniverse(path string) bool {
	for _, suffix := range c.Packages {
		if strings.HasSuffix(path, suffix) {
			return true
		}
	}
	return false
}

func (s *loScan) staticCallee(t *ast.CallExpr) *types.Func {
	switch f := t.Fun.(type) {
	case *ast.Ident:
		fn, _ := s.p.Info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel := s.p.Info.Selections[f]; sel != nil {
			if sel.Kind() == types.MethodVal {
				fn, _ := sel.Obj().(*types.Func)
				return fn
			}
			return nil
		}
		fn, _ := s.p.Info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// lockOf resolves the receiver of a Lock/Unlock call to a type-granular
// lock identity: x.mu (field), x.locks[i] (slice-of-mutex field), or a
// package-level mutex var. Local mutex variables are not tracked.
func (s *loScan) lockOf(x ast.Expr) (lock, disp string, ok bool) {
	tv, found := s.p.Info.Types[x]
	if !found || !isMutexType(tv.Type) {
		return "", "", false
	}
	switch t := x.(type) {
	case *ast.SelectorExpr:
		holderTV, found := s.p.Info.Types[t.X]
		if !found {
			return "", "", false
		}
		n := namedOf(holderTV.Type)
		if n == nil {
			return "", "", false
		}
		pkg := ""
		if n.Obj().Pkg() != nil {
			pkg = n.Obj().Pkg().Path()
		}
		return pkg + "." + n.Obj().Name() + "." + t.Sel.Name, n.Obj().Name() + "." + t.Sel.Name, true
	case *ast.IndexExpr:
		sel, isSel := t.X.(*ast.SelectorExpr)
		if !isSel {
			return "", "", false
		}
		holderTV, found := s.p.Info.Types[sel.X]
		if !found {
			return "", "", false
		}
		n := namedOf(holderTV.Type)
		if n == nil {
			return "", "", false
		}
		pkg := ""
		if n.Obj().Pkg() != nil {
			pkg = n.Obj().Pkg().Path()
		}
		return pkg + "." + n.Obj().Name() + "." + sel.Sel.Name + "[]", n.Obj().Name() + "." + sel.Sel.Name + "[]", true
	case *ast.Ident:
		v, isVar := s.p.Info.Uses[t].(*types.Var)
		if !isVar || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
			return "", "", false
		}
		return v.Pkg().Path() + "." + v.Name(), loShortPkg(v.Pkg().Path()) + "." + v.Name(), true
	}
	return "", "", false
}

// blockingCall classifies method/function calls that can block unboundedly.
// sync.Cond.Wait is deliberately absent: it releases the associated mutex
// while waiting, so holding that mutex across it is the intended idiom.
func (s *loScan) blockingCall(sel *ast.SelectorExpr) (string, bool) {
	name := sel.Sel.Name
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := s.p.Info.Uses[id].(*types.PkgName); ok {
			if pn.Imported().Path() == "time" && name == "Sleep" {
				return "time.Sleep", true
			}
			return "", false
		}
	}
	tv, ok := s.p.Info.Types[sel.X]
	if !ok {
		return "", false
	}
	n := namedOf(tv.Type)
	if n == nil {
		return "", false
	}
	obj := n.Obj()
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	switch {
	case pkg == "net" && obj.Name() == "Conn" && (name == "Write" || name == "Read"):
		return "net.Conn." + name, true
	case pkg == "net" && obj.Name() == "Listener" && name == "Accept":
		return "net.Listener.Accept", true
	case pkg == "sync" && obj.Name() == "WaitGroup" && name == "Wait":
		return "sync.WaitGroup.Wait", true
	case pkg == "bufio" && obj.Name() == "Writer" && name == "Flush":
		return "bufio.Writer.Flush", true
	case pkg == "os/exec" && obj.Name() == "Cmd" &&
		(name == "Wait" || name == "Run" || name == "Output" || name == "CombinedOutput"):
		return "exec.Cmd." + name, true
	case strings.HasSuffix(pkg, "internal/amt") && obj.Name() == "Transport" && name == "Send":
		return "Transport.Send", true
	}
	return "", false
}

func (s *loScan) blockOp(what string, pos token.Pos, held []loHeld) {
	s.fn.blocks = append(s.fn.blocks, loBlockOp{
		what: what,
		at:   s.p.Fset.Position(pos),
		held: cloneHeld(held),
	})
}

// ---- interprocedural fixpoint and reporting ----

// loWitness is one provable chain of steps ending at a terminal event.
type loWitness struct {
	chain []string
	pos   token.Position
}

// Finish implements Finisher: propagate acquisitions and blocking effects
// over the accumulated call graph and report cycles and blocking-while-
// locked sites.
func (c *LockOrder) Finish() []Diagnostic {
	keys := make([]string, 0, len(c.funcs))
	for k := range c.funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// mayAcquire: func -> lock -> first witness (deterministic because
	// functions, calls and callee locks are visited in sorted order).
	mayAcq := map[string]map[string]*loWitness{}
	for _, k := range keys {
		f := c.funcs[k]
		m := map[string]*loWitness{}
		for _, a := range f.acquires {
			if m[a.lock] == nil {
				m[a.lock] = &loWitness{
					chain: []string{fmt.Sprintf("%s acquired at %s (in %s)", a.disp, loPos(a.at), f.name)},
					pos:   a.at,
				}
			}
		}
		mayAcq[k] = m
	}
	for changed := true; changed; {
		changed = false
		for _, k := range keys {
			f := c.funcs[k]
			for _, call := range f.calls {
				gm := mayAcq[call.callee]
				if gm == nil {
					continue
				}
				for _, lk := range sortedWitnessKeys(gm) {
					if mayAcq[k][lk] != nil {
						continue
					}
					w := gm[lk]
					mayAcq[k][lk] = &loWitness{
						chain: append([]string{fmt.Sprintf("%s calls %s at %s", f.name, c.funcs[call.callee].name, loPos(call.at))}, w.chain...),
						pos:   w.pos,
					}
					changed = true
				}
			}
		}
	}

	// mayBlock: func -> terminal-event key -> witness, capped per function
	// to keep deep call chains from multiplying diagnostics.
	const maxBlockWitnesses = 6
	mayBlk := map[string]map[string]*loWitness{}
	for _, k := range keys {
		f := c.funcs[k]
		m := map[string]*loWitness{}
		for _, b := range f.blocks {
			bk := b.what + "@" + loPos(b.at)
			if m[bk] == nil && len(m) < maxBlockWitnesses {
				m[bk] = &loWitness{
					chain: []string{fmt.Sprintf("%s at %s (in %s)", b.what, loPos(b.at), f.name)},
					pos:   b.at,
				}
			}
		}
		mayBlk[k] = m
	}
	for changed := true; changed; {
		changed = false
		for _, k := range keys {
			f := c.funcs[k]
			for _, call := range f.calls {
				gm := mayBlk[call.callee]
				if gm == nil {
					continue
				}
				for _, bk := range sortedWitnessKeys(gm) {
					if mayBlk[k][bk] != nil || len(mayBlk[k]) >= maxBlockWitnesses {
						continue
					}
					w := gm[bk]
					mayBlk[k][bk] = &loWitness{
						chain: append([]string{fmt.Sprintf("%s calls %s at %s", f.name, c.funcs[call.callee].name, loPos(call.at))}, w.chain...),
						pos:   w.pos,
					}
					changed = true
				}
			}
		}
	}

	var out []Diagnostic

	// Blocking while locked: direct operations, then calls that reach one.
	for _, k := range keys {
		f := c.funcs[k]
		for _, b := range f.blocks {
			if len(b.held) == 0 {
				continue
			}
			out = append(out, Diagnostic{
				Check:   c.Name(),
				Pos:     b.at,
				Message: fmt.Sprintf("%s while holding %s", b.what, heldList(b.held)),
				Detail:  heldDetail(b.held),
			})
		}
		for _, call := range f.calls {
			if len(call.held) == 0 {
				continue
			}
			gm := mayBlk[call.callee]
			if len(gm) == 0 {
				continue
			}
			bk := sortedWitnessKeys(gm)[0]
			w := gm[bk]
			out = append(out, Diagnostic{
				Check: c.Name(),
				Pos:   call.at,
				Message: fmt.Sprintf("call to %s may reach %s (%s) while holding %s",
					c.funcs[call.callee].name, w.what(), loPos(w.pos), heldList(call.held)),
				Detail: heldDetail(call.held) + "\n" + strings.Join(w.chain, "\n"),
			})
		}
	}

	// Lock-order edges, then cycle detection over the edge graph.
	type loEdge struct {
		from, to string
		fromDisp string
		toDisp   string
		chain    []string
		pos      token.Position
	}
	edges := map[string]*loEdge{}
	edgeKeys := []string{}
	addEdge := func(e *loEdge) {
		k := e.from + " -> " + e.to
		if edges[k] == nil {
			edges[k] = e
			edgeKeys = append(edgeKeys, k)
		}
	}
	for _, k := range keys {
		f := c.funcs[k]
		for _, a := range f.acquires {
			for _, h := range a.held {
				addEdge(&loEdge{
					from: h.lock, to: a.lock, fromDisp: h.disp, toDisp: a.disp,
					chain: []string{
						fmt.Sprintf("%s acquired at %s", h.disp, loPos(h.at)),
						fmt.Sprintf("%s acquired at %s (in %s)", a.disp, loPos(a.at), f.name),
					},
					pos: a.at,
				})
			}
		}
		for _, call := range f.calls {
			if len(call.held) == 0 {
				continue
			}
			am := mayAcq[call.callee]
			if am == nil {
				continue
			}
			for _, lk := range sortedWitnessKeys(am) {
				w := am[lk]
				for _, h := range call.held {
					addEdge(&loEdge{
						from: h.lock, to: lk, fromDisp: h.disp, toDisp: lockDisp(lk, w),
						chain: append([]string{
							fmt.Sprintf("%s acquired at %s", h.disp, loPos(h.at)),
							fmt.Sprintf("%s calls %s at %s", f.name, c.funcs[call.callee].name, loPos(call.at)),
						}, w.chain...),
						pos: call.at,
					})
				}
			}
		}
	}

	// Strongly connected components of the lock graph: any SCC with more
	// than one lock (or a self-loop) is a potential deadlock; every edge
	// inside it is reported with its own witness chain.
	adj := map[string][]string{}
	for _, ek := range edgeKeys {
		e := edges[ek]
		adj[e.from] = append(adj[e.from], e.to)
	}
	scc := loSCC(adj)
	for _, ek := range edgeKeys {
		e := edges[ek]
		cyclic := e.from == e.to ||
			(scc[e.from] != 0 && scc[e.from] == scc[e.to])
		if !cyclic {
			continue
		}
		cycle := e.fromDisp + " -> " + e.toDisp
		if e.from != e.to {
			cycle += " -> " + e.fromDisp
		}
		out = append(out, Diagnostic{
			Check: c.Name(),
			Pos:   e.pos,
			Message: fmt.Sprintf("acquiring %s while holding %s completes a lock-order cycle (%s)",
				e.toDisp, e.fromDisp, cycle),
			Detail: strings.Join(e.chain, "\n"),
		})
	}
	return out
}

// what extracts the terminal event name from a blocking witness chain.
func (w *loWitness) what() string {
	last := w.chain[len(w.chain)-1]
	if i := strings.Index(last, " at "); i >= 0 {
		return last[:i]
	}
	return last
}

func lockDisp(lock string, w *loWitness) string {
	// The witness terminal line starts with the lock's display name.
	last := w.chain[len(w.chain)-1]
	if i := strings.Index(last, " acquired"); i >= 0 {
		return last[:i]
	}
	return lock
}

func sortedWitnessKeys(m map[string]*loWitness) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func heldList(held []loHeld) string {
	parts := make([]string, len(held))
	for i, h := range held {
		parts[i] = h.disp
	}
	return strings.Join(parts, ", ")
}

func heldDetail(held []loHeld) string {
	parts := make([]string, len(held))
	for i, h := range held {
		parts[i] = fmt.Sprintf("%s acquired at %s", h.disp, loPos(h.at))
	}
	return strings.Join(parts, "\n")
}

// loSCC labels every node on a multi-node strongly connected component
// with a nonzero component id (Tarjan's algorithm, iterative enough for
// the small lock graphs here; recursion depth is bounded by lock count).
func loSCC(adj map[string][]string) map[string]int {
	nodes := make([]string, 0, len(adj))
	seen := map[string]bool{}
	for n, outs := range adj {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
		for _, m := range outs {
			if !seen[m] {
				seen[m] = true
				nodes = append(nodes, m)
			}
		}
	}
	sort.Strings(nodes)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	comp := map[string]int{}
	next, compID := 1, 0

	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		outs := append([]string(nil), adj[v]...)
		sort.Strings(outs)
		for _, w := range outs {
			if index[w] == 0 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var members []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			if len(members) > 1 {
				compID++
				for _, m := range members {
					comp[m] = compID
				}
			}
		}
	}
	for _, n := range nodes {
		if index[n] == 0 {
			strong(n)
		}
	}
	return comp
}
