package serve

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/amt"
	"repro/internal/core"
)

// Worker-rank side of the serve pool. A worker is the same binary as the
// daemon, re-executed with DASHMM_SERVE_WORKER=1 (the stamped self-exec
// pattern from cmd/dashmm-bench): MaybeWorker intercepts startup, joins the
// coordinator's cluster, and loops — build the broadcast job's plan from a
// local cache, run core.DistRun as its rank, repeat — until the coordinator
// broadcasts EXIT or disappears.
//
// The design is crash-only: any worker-side failure (malformed job, plan
// build error, failed run) makes RunWorker return an error and the process
// exit; the supervisor on rank 0 observes the death verdict and respawns a
// fresh incarnation that REJOINs. No in-place repair, no half-alive states.

// Environment variable names for the worker re-exec handshake.
const (
	envWorkerFlag    = "DASHMM_SERVE_WORKER"
	envWorkerRank    = "DASHMM_SERVE_RANK"
	envWorkerWorld   = "DASHMM_SERVE_WORLD"
	envWorkerNet     = "DASHMM_SERVE_NET"
	envWorkerAddr    = "DASHMM_SERVE_ADDR"
	envWorkerStamp   = "DASHMM_SERVE_STAMP"
	envWorkerThreads = "DASHMM_SERVE_THREADS"
	envWorkerRejoin  = "DASHMM_SERVE_REJOIN"
	envWorkerHBMS    = "DASHMM_SERVE_HB_MS"
	envWorkerHBMiss  = "DASHMM_SERVE_HB_MISS"
	envWorkerJoinMS  = "DASHMM_SERVE_JOIN_MS"
)

// WorkerEnv is the spawn contract between the supervisor and a worker
// process.
type WorkerEnv struct {
	Rank, World int
	Network     string
	Addr        string
	Stamp       string
	Threads     int
	Rejoin      bool
	Heartbeat   amt.FailureDetectorConfig
	JoinTimeout time.Duration
}

// environ renders the env entries the supervisor appends to the worker's
// command environment.
func (e WorkerEnv) environ() []string {
	rejoin := "0"
	if e.Rejoin {
		rejoin = "1"
	}
	return []string{
		envWorkerFlag + "=1",
		envWorkerRank + "=" + strconv.Itoa(e.Rank),
		envWorkerWorld + "=" + strconv.Itoa(e.World),
		envWorkerNet + "=" + e.Network,
		envWorkerAddr + "=" + e.Addr,
		envWorkerStamp + "=" + e.Stamp,
		envWorkerThreads + "=" + strconv.Itoa(e.Threads),
		envWorkerRejoin + "=" + rejoin,
		envWorkerHBMS + "=" + strconv.FormatInt(e.Heartbeat.Interval.Milliseconds(), 10),
		envWorkerHBMiss + "=" + strconv.Itoa(e.Heartbeat.MissedBeats),
		envWorkerJoinMS + "=" + strconv.FormatInt(e.JoinTimeout.Milliseconds(), 10),
	}
}

func workerEnvFromOS() (WorkerEnv, error) {
	geti := func(key string) (int, error) {
		v, err := strconv.Atoi(os.Getenv(key))
		if err != nil {
			return 0, fmt.Errorf("%s=%q: %w", key, os.Getenv(key), err)
		}
		return v, nil
	}
	var e WorkerEnv
	var err error
	if e.Rank, err = geti(envWorkerRank); err != nil {
		return e, err
	}
	if e.World, err = geti(envWorkerWorld); err != nil {
		return e, err
	}
	if e.Threads, err = geti(envWorkerThreads); err != nil {
		return e, err
	}
	hbms, err := geti(envWorkerHBMS)
	if err != nil {
		return e, err
	}
	if e.Heartbeat.MissedBeats, err = geti(envWorkerHBMiss); err != nil {
		return e, err
	}
	joinms, err := geti(envWorkerJoinMS)
	if err != nil {
		return e, err
	}
	e.Heartbeat.Interval = time.Duration(hbms) * time.Millisecond
	e.JoinTimeout = time.Duration(joinms) * time.Millisecond
	e.Network = os.Getenv(envWorkerNet)
	e.Addr = os.Getenv(envWorkerAddr)
	e.Stamp = os.Getenv(envWorkerStamp)
	e.Rejoin = os.Getenv(envWorkerRejoin) == "1"
	return e, nil
}

// MaybeWorker intercepts a process started as a pool worker: if the worker
// environment flag is set it runs the worker loop and exits the process
// (status 0 on a clean EXIT, 1 on any error). Call it first thing in main
// (and in TestMain for packages whose tests spawn pools). Returns false in
// an ordinary daemon process.
func MaybeWorker() bool {
	if os.Getenv(envWorkerFlag) != "1" {
		return false
	}
	env, err := workerEnvFromOS()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dashmm-serve worker: bad environment:", err)
		os.Exit(1)
	}
	if err := RunWorker(env); err != nil {
		fmt.Fprintln(os.Stderr, "dashmm-serve worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
	return true
}

// RunWorker joins the pool's cluster and serves jobs until the coordinator
// broadcasts EXIT (nil) or anything fails (error). Exported for tests; the
// daemon reaches it through MaybeWorker.
func RunWorker(env WorkerEnv) error {
	cl, err := amt.NewCluster(amt.ClusterConfig{
		Rank:        env.Rank,
		World:       env.World,
		Network:     env.Network,
		Addr:        env.Addr,
		Stamp:       env.Stamp,
		Heartbeat:   env.Heartbeat,
		JoinTimeout: env.JoinTimeout,
		Rejoin:      env.Rejoin,
	})
	if err != nil {
		return err
	}
	defer cl.Close()

	// Jobs arrive on the control goroutine; run them here so the control
	// loop stays responsive (verdicts, membership updates) during a run.
	type jobMsg struct {
		gen     uint32
		payload []byte
	}
	jobs := make(chan jobMsg, 4)
	cl.OnJob(func(gen uint32, payload []byte) {
		select {
		case jobs <- jobMsg{gen: gen, payload: append([]byte(nil), payload...)}:
		default:
			// Jobs are serialized on rank 0; a full buffer means this worker
			// is wedged beyond repair. Crash-only: die, respawn.
			panic("serve: worker job buffer overrun")
		}
	})
	if err := cl.Start(); err != nil {
		return err
	}

	// Plans cached across jobs, exactly like the daemon's cache: a pool
	// serving a warm key re-runs without rebuilding anything.
	cache := newPlanCache(8)
	for {
		select {
		case <-cl.Done():
			return nil
		case j := <-jobs:
			if err := runWorkerJob(cl, cache, env.Threads, j.gen, j.payload); err != nil {
				return fmt.Errorf("rank %d job (gen %d): %w", env.Rank, j.gen, err)
			}
		}
	}
}

// runWorkerJob executes one broadcast job on a worker rank.
func runWorkerJob(cl *amt.Cluster, cache *planCache, threads int, gen uint32, payload []byte) error {
	spec, err := decodeJobSpec(payload)
	if err != nil {
		return fmt.Errorf("bad job payload: %w", err)
	}
	req, err := spec.planRequest()
	if err != nil {
		return fmt.Errorf("bad job scenario: %w", err)
	}
	entry, _, _ := cache.get(req.planKey())
	if err := entry.ensureBuilt(req); err != nil {
		cache.drop(req.planKey(), entry)
		return fmt.Errorf("plan build: %w", err)
	}
	// The worker's own timeout backstops a vanished run; it sits a grace
	// margin above rank 0's budget so the coordinator always times out
	// first and resolves the run (Shutdown) for everyone. Without the
	// margin, one slow request would mass-expire every worker at once.
	timeout := time.Duration(spec.TimeoutMS)*time.Millisecond + 15*time.Second
	entry.mu.Lock()
	defer entry.mu.Unlock()
	//lint:ignore lockorder entry.mu serializes evaluation of one plan by design (stampede protection): the critical section is the evaluation itself
	_, _, err = core.DistRun(entry.plan, cl, nil, core.DistOptions{
		Workers:    threads,
		Seed:       spec.RunSeed,
		Timeout:    timeout,
		Generation: gen,
		PreDead:    spec.PreDead,
	})
	return err
}
