package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/amt"
	"repro/internal/dag"
	"repro/internal/trace"
)

// testDetector is fast enough to keep the recovery tests snappy while
// leaving a slow CI machine plenty of beats before a false positive.
func testDetector() *amt.FailureDetectorConfig {
	return &amt.FailureDetectorConfig{Interval: time.Millisecond, MissedBeats: 8}
}

// TestCrashRecoveryMatchesSequential is the tentpole gate at unit scale:
// kill one of four localities at 25/50/75% DAG progress and require the
// recovered potentials to match the fault-free evaluation to 1e-12.
func TestCrashRecoveryMatchesSequential(t *testing.T) {
	plan, q, want := testPlan(t, dag.Advanced, 3000)
	for _, at := range []float64{0.25, 0.50, 0.75} {
		got, rep, err := plan.Evaluate(q, ExecOptions{
			Localities: 4, Workers: 2, Seed: 7,
			Detector: testDetector(),
			Crash:    []CrashPlan{{Rank: 1, At: at}},
		})
		if err != nil {
			t.Fatalf("crash at %.0f%%: %v", at*100, err)
		}
		assertSame(t, got, want, 1e-12)
		r := rep.Recovery
		if r.RanksKilled != 1 || r.Recoveries != 1 {
			t.Errorf("at %.0f%%: killed=%d recoveries=%d, want 1/1", at*100, r.RanksKilled, r.Recoveries)
		}
		// Late kills can legitimately rebuild nothing when the verdict lands
		// after the dead rank's nodes have all discharged (a loaded machine
		// stretches the detection window); an early kill must rebuild.
		if at <= 0.25 && r.NodesRebuilt == 0 {
			t.Errorf("at %.0f%%: no nodes rebuilt after an early crash", at*100)
		}
		if r.RecoveryWall <= 0 {
			t.Errorf("at %.0f%%: recovery wall time not recorded", at*100)
		}
		t.Logf("crash at %.0f%%: %s", at*100, r)
	}
}

// TestCrashRecoveryWithGradient: the rebuilt T nodes must re-zero their
// gradient slices too, or the force output double-counts. Gradients are
// gated at 1e-9 like TestGradientParallelMatchesSequential — signed
// component sums cancel, so parallel reassociation alone already exceeds
// 1e-12 on a fault-free run (potentials, mostly same-signed, stay at 1e-12).
func TestCrashRecoveryWithGradient(t *testing.T) {
	plan, q, _ := testPlan(t, dag.Advanced, 2000)
	wantPot, wantGrad, err := plan.EvaluateSequentialGrad(q)
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := plan.Evaluate(q, ExecOptions{
		Localities: 4, Workers: 2, Seed: 5, Gradient: true,
		Detector: testDetector(),
		Crash:    []CrashPlan{{Rank: 2, At: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, got, wantPot, 1e-12)
	var den float64
	for _, g := range wantGrad {
		for _, c := range []float64{g.X, g.Y, g.Z} {
			if m := math.Abs(c); m > den {
				den = m
			}
		}
	}
	for i := range wantGrad {
		dx := math.Abs(rep.Gradients[i].X - wantGrad[i].X)
		dy := math.Abs(rep.Gradients[i].Y - wantGrad[i].Y)
		dz := math.Abs(rep.Gradients[i].Z - wantGrad[i].Z)
		if (dx+dy+dz)/den > 1e-9 {
			t.Fatalf("gradient %d differs: %v vs %v", i, rep.Gradients[i], wantGrad[i])
		}
	}
	t.Logf("recovery: %s", rep.Recovery)
}

// TestCrashRecoveryDoubleCrash: two ranks dying at different progress
// points must still recover exactly — including re-deriving state a
// first-crash survivor recomputed and then lost to the second crash.
func TestCrashRecoveryDoubleCrash(t *testing.T) {
	plan, q, want := testPlan(t, dag.Advanced, 2500)
	got, rep, err := plan.Evaluate(q, ExecOptions{
		Localities: 4, Workers: 2, Seed: 13,
		Detector: testDetector(),
		Crash:    []CrashPlan{{Rank: 3, At: 0.3}, {Rank: 1, At: 0.7}},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, got, want, 1e-12)
	if rep.Recovery.RanksKilled != 2 || rep.Recovery.Recoveries != 2 {
		t.Errorf("killed=%d recoveries=%d, want 2/2", rep.Recovery.RanksKilled, rep.Recovery.Recoveries)
	}
}

// TestCrashRecoveryOverFaultyWire combines the PR 2 acceptance wire profile
// with a rank crash: reliability and recovery must compose.
func TestCrashRecoveryOverFaultyWire(t *testing.T) {
	plan, q, want := testPlan(t, dag.Advanced, 2000)
	got, rep, err := plan.Evaluate(q, ExecOptions{
		Localities: 4, Workers: 2, Seed: 21,
		Fault: &amt.FaultProfile{Seed: 21, Drop: 0.10, Duplicate: 0.10, Reorder: true},
		Delivery: amt.DeliveryConfig{
			RetryBase: 2 * time.Millisecond, Deadline: 120 * time.Second,
		},
		Detector: testDetector(),
		Crash:    []CrashPlan{{Rank: 1, At: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, got, want, 1e-12)
	t.Logf("recovery: %s", rep.Recovery)
	if rep.Runtime.Transport.Retried == 0 {
		t.Error("no retries under a 10% drop wire")
	}
}

// TestDetectorOnlyRunMatches: arming the detector without any crash must
// not change results, and must report zero recovery activity.
func TestDetectorOnlyRunMatches(t *testing.T) {
	plan, q, want := testPlan(t, dag.Advanced, 2000)
	got, rep, err := plan.Evaluate(q, ExecOptions{
		Localities: 4, Workers: 2, Seed: 3,
		Detector: testDetector(),
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, got, want, 1e-9)
	r := rep.Recovery
	if r.RanksKilled != 0 || r.Recoveries != 0 || r.NodesRebuilt != 0 || r.EdgesReplayed != 0 {
		t.Errorf("idle detector reported recovery work: %s", r)
	}
}

// TestCrashRecoveryReuse: a ParallelEvaluation context must be reusable
// after a crash-recovery run — the next Run resets the recovery state.
func TestCrashRecoveryReuse(t *testing.T) {
	plan, q, want := testPlan(t, dag.Advanced, 1500)
	pe, err := plan.NewParallelEvaluation(ExecOptions{
		Localities: 4, Workers: 2, Seed: 9,
		Detector: testDetector(),
		Crash:    []CrashPlan{{Rank: 2, At: 0.4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		got, rep, err := pe.Run(q)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		assertSame(t, got, want, 1e-12)
		if rep.Recovery.Recoveries != 1 {
			t.Fatalf("round %d: %d recoveries, want 1", round, rep.Recovery.Recoveries)
		}
	}
}

// TestAllRanksDeadFails: killing every locality must surface a fatal
// recovery error instead of hanging or fabricating results.
func TestAllRanksDeadFails(t *testing.T) {
	plan, q, _ := testPlan(t, dag.Advanced, 1000)
	_, _, err := plan.Evaluate(q, ExecOptions{
		Localities: 2, Workers: 1, Seed: 17,
		Detector: testDetector(),
		Crash:    []CrashPlan{{Rank: 0, At: 0.2}, {Rank: 1, At: 0.3}},
	})
	if err == nil {
		t.Fatal("evaluation with every locality dead reported success")
	}
	if !strings.Contains(err.Error(), "recovery impossible") {
		t.Errorf("error does not name the cause: %v", err)
	}
}

// TestCrashRequiresDetector: scheduling a crash without a detector is a
// configuration error, caught at context construction.
func TestCrashRequiresDetector(t *testing.T) {
	plan, q, _ := testPlan(t, dag.Advanced, 1000)
	_, _, err := plan.Evaluate(q, ExecOptions{
		Localities: 2, Crash: []CrashPlan{{Rank: 1, At: 0.5}},
	})
	if err == nil || !strings.Contains(err.Error(), "requires ExecOptions.Detector") {
		t.Fatalf("want a Detector configuration error, got %v", err)
	}
}

// TestWatchdogDiagnosesStall: a run that can make no progress (every
// remote parcel dropped, deadline far away) must be aborted by the
// watchdog with a diagnostic listing the unsatisfied LCOs.
func TestWatchdogDiagnosesStall(t *testing.T) {
	plan, q, _ := testPlan(t, dag.Advanced, 1000)
	start := time.Now()
	_, _, err := plan.Evaluate(q, ExecOptions{
		Localities: 2, Workers: 1, Seed: 3,
		Fault: &amt.FaultProfile{Seed: 3, Drop: 1.0},
		Delivery: amt.DeliveryConfig{
			RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond,
			Deadline: 120 * time.Second,
		},
		StallWindow: 300 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("stalled evaluation reported success")
	}
	if time.Since(start) > 30*time.Second {
		t.Fatalf("watchdog took %s to fire", time.Since(start))
	}
	msg := err.Error()
	if !strings.Contains(msg, "stalled") {
		t.Fatalf("error does not say stalled: %v", err)
	}
	if !strings.Contains(msg, "unsatisfied LCO") || !strings.Contains(msg, "inputs arrived") {
		t.Errorf("diagnostic does not list unsatisfied LCOs: %v", err)
	}
	if !strings.Contains(msg, "on rank") {
		t.Errorf("diagnostic does not name owner ranks: %v", err)
	}
}

// TestWatchdogQuietOnHealthyRun: the watchdog must not fire on a run that
// completes normally.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	plan, q, want := testPlan(t, dag.Advanced, 1500)
	got, _, err := plan.Evaluate(q, ExecOptions{
		Localities: 2, Workers: 2, StallWindow: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, got, want, 1e-9)
}

// TestRecoveryTraceMarkers: a crash-recovery run records the full marker
// lifecycle — kill, detect, failover, replay.
func TestRecoveryTraceMarkers(t *testing.T) {
	plan, q, _ := testPlan(t, dag.Advanced, 1500)
	tr := trace.New(4 * 2)
	_, _, err := plan.Evaluate(q, ExecOptions{
		Localities: 4, Workers: 2, Seed: 7, Tracer: tr,
		Detector: testDetector(),
		Crash:    []CrashPlan{{Rank: 1, At: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint8]int{}
	for _, ev := range tr.Snapshot() {
		seen[ev.Class]++
	}
	for _, c := range []uint8{trace.ClassRecoveryKill, trace.ClassRecoveryDetect,
		trace.ClassRecoveryFailover, trace.ClassRecoveryReplay} {
		if seen[c] != 1 {
			t.Errorf("marker %s recorded %d times, want 1", trace.NetClassName(c), seen[c])
		}
	}
}
