// Package geom provides the small amount of 3-D geometry used throughout the
// library: points, axis-aligned boxes, and the integer index arithmetic of a
// nested octree decomposition.
//
// The octree convention follows the paper: the computational domain is the
// smallest cube containing both ensembles; a child is produced by halving the
// parent along each dimension, and a box at level l has side
// domain.Size / 2^l. Boxes are addressed by an Index holding the level and
// the three integer coordinates of the box within the level-l grid.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in R^3. It doubles as a vector.
type Point struct {
	X, Y, Z float64
}

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y, p.Z + q.Z} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y, p.Z - q.Z} }

// Scale returns s * p.
func (p Point) Scale(s float64) Point { return Point{s * p.X, s * p.Y, s * p.Z} }

// Dot returns the inner product of p and q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y + p.Z*q.Z }

// Norm returns the Euclidean length of p.
func (p Point) Norm() float64 { return math.Sqrt(p.Dot(p)) }

// Norm2 returns the squared Euclidean length of p.
func (p Point) Norm2() float64 { return p.Dot(p) }

// Dist returns |p - q|.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// Min returns the componentwise minimum of p and q.
func (p Point) Min(q Point) Point {
	return Point{math.Min(p.X, q.X), math.Min(p.Y, q.Y), math.Min(p.Z, q.Z)}
}

// Max returns the componentwise maximum of p and q.
func (p Point) Max(q Point) Point {
	return Point{math.Max(p.X, q.X), math.Max(p.Y, q.Y), math.Max(p.Z, q.Z)}
}

// Cube is an axis-aligned cube described by its low corner and side length.
type Cube struct {
	Low  Point
	Side float64
}

// Center returns the center of the cube.
func (c Cube) Center() Point {
	h := c.Side / 2
	return Point{c.Low.X + h, c.Low.Y + h, c.Low.Z + h}
}

// Contains reports whether p lies inside the half-open cube [low, low+side).
// The high faces are treated as inside so the domain cube admits points on
// its boundary.
func (c Cube) Contains(p Point) bool {
	return p.X >= c.Low.X && p.X <= c.Low.X+c.Side &&
		p.Y >= c.Low.Y && p.Y <= c.Low.Y+c.Side &&
		p.Z >= c.Low.Z && p.Z <= c.Low.Z+c.Side
}

// BoundingCube returns the smallest cube that contains every point of the
// given slices, expanded by a tiny margin so boundary points classify
// unambiguously. It panics if both slices are empty.
func BoundingCube(ensembles ...[]Point) Cube {
	lo := Point{math.Inf(1), math.Inf(1), math.Inf(1)}
	hi := Point{math.Inf(-1), math.Inf(-1), math.Inf(-1)}
	n := 0
	for _, pts := range ensembles {
		for _, p := range pts {
			lo = lo.Min(p)
			hi = hi.Max(p)
			n++
		}
	}
	if n == 0 {
		panic("geom: BoundingCube of empty ensembles")
	}
	d := hi.Sub(lo)
	side := math.Max(d.X, math.Max(d.Y, d.Z))
	if side == 0 {
		side = 1
	}
	// Center the cube on the data and pad slightly so that points sitting
	// exactly on the high faces fall strictly inside child boxes.
	side *= 1 + 1e-12
	pad := side * 1e-9
	side += 2 * pad
	ctr := lo.Add(hi).Scale(0.5)
	h := side / 2
	return Cube{Low: Point{ctr.X - h, ctr.Y - h, ctr.Z - h}, Side: side}
}

// Index identifies a box in the nested octree decomposition of a domain
// cube: the box at Level l with integer coordinates (X, Y, Z) each in
// [0, 2^l).
type Index struct {
	Level   int8
	X, Y, Z int32
}

// Root is the index of the whole domain.
var Root = Index{}

// Child returns the index of the octant o (0..7) of the box, with bit 0 of o
// selecting high-x, bit 1 high-y, bit 2 high-z.
func (ix Index) Child(o int) Index {
	return Index{
		Level: ix.Level + 1,
		X:     2*ix.X + int32(o&1),
		Y:     2*ix.Y + int32(o>>1&1),
		Z:     2*ix.Z + int32(o>>2&1),
	}
}

// Parent returns the index of the enclosing box one level up. The root is
// its own parent.
func (ix Index) Parent() Index {
	if ix.Level == 0 {
		return ix
	}
	return Index{Level: ix.Level - 1, X: ix.X / 2, Y: ix.Y / 2, Z: ix.Z / 2}
}

// Octant returns which child of its parent this box is.
func (ix Index) Octant() int {
	return int(ix.X&1) | int(ix.Y&1)<<1 | int(ix.Z&1)<<2
}

// Valid reports whether the coordinates fit in the level-l grid.
func (ix Index) Valid() bool {
	n := int32(1) << uint(ix.Level)
	return ix.Level >= 0 && ix.X >= 0 && ix.X < n && ix.Y >= 0 && ix.Y < n &&
		ix.Z >= 0 && ix.Z < n
}

// Offset returns the integer offset (dx, dy, dz) from ix to other, which must
// be at the same level.
func (ix Index) Offset(other Index) (dx, dy, dz int32) {
	return other.X - ix.X, other.Y - ix.Y, other.Z - ix.Z
}

// WellSeparated reports whether two same-level boxes are well separated in
// the FMM sense used by the paper: they are not neighbors, i.e. some
// coordinate offset has magnitude at least 2. (For same-level cubic boxes
// this is the standard beta-dilation criterion in integer form.)
func (ix Index) WellSeparated(other Index) bool {
	dx, dy, dz := ix.Offset(other)
	return abs32(dx) > 1 || abs32(dy) > 1 || abs32(dz) > 1
}

// Adjacent reports whether two boxes, possibly at different levels, touch or
// overlap (share boundary or interior). It is the complement of
// well-separatedness for the adaptive lists.
func Adjacent(a, b Index) bool {
	// Compare at the deeper level by scaling the shallower index.
	for a.Level < b.Level {
		a, b = b, a
	}
	// Now a.Level >= b.Level. Box b spans a range of level-a coordinates.
	shift := uint(a.Level - b.Level)
	bx0, bx1 := b.X<<shift, (b.X+1)<<shift-1
	by0, by1 := b.Y<<shift, (b.Y+1)<<shift-1
	bz0, bz1 := b.Z<<shift, (b.Z+1)<<shift-1
	return a.X >= bx0-1 && a.X <= bx1+1 &&
		a.Y >= by0-1 && a.Y <= by1+1 &&
		a.Z >= bz0-1 && a.Z <= bz1+1
}

// Cube returns the spatial cube of the box within the given domain.
func (ix Index) Cube(domain Cube) Cube {
	side := domain.Side / float64(int64(1)<<uint(ix.Level))
	return Cube{
		Low: Point{
			domain.Low.X + float64(ix.X)*side,
			domain.Low.Y + float64(ix.Y)*side,
			domain.Low.Z + float64(ix.Z)*side,
		},
		Side: side,
	}
}

// ChildContaining returns the octant (0..7) of the child of the box whose
// cube within domain contains p.
func (ix Index) ChildContaining(domain Cube, p Point) int {
	c := ix.Cube(domain)
	mid := c.Center()
	o := 0
	if p.X >= mid.X {
		o |= 1
	}
	if p.Y >= mid.Y {
		o |= 2
	}
	if p.Z >= mid.Z {
		o |= 4
	}
	return o
}

// Key packs the index into a single uint64 suitable for map keys and
// ordering: 4 bits of level followed by the interleaved Morton code of the
// coordinates. Levels up to 20 are representable.
func (ix Index) Key() uint64 {
	return uint64(ix.Level)<<60 | Morton(uint32(ix.X), uint32(ix.Y), uint32(ix.Z))
}

// Morton interleaves the low 20 bits of x, y, z into a 60-bit Morton code.
func Morton(x, y, z uint32) uint64 {
	return spread(x) | spread(y)<<1 | spread(z)<<2
}

// spread distributes the low 20 bits of v so that consecutive bits land 3
// positions apart.
func spread(v uint32) uint64 {
	x := uint64(v) & 0xFFFFF
	x = (x | x<<32) & 0x1F00000000FFFF
	x = (x | x<<16) & 0x1F0000FF0000FF
	x = (x | x<<8) & 0x100F00F00F00F00F
	x = (x | x<<4) & 0x10C30C30C30C30C3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

// String renders the index for diagnostics.
func (ix Index) String() string {
	return fmt.Sprintf("L%d(%d,%d,%d)", ix.Level, ix.X, ix.Y, ix.Z)
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

// Direction labels the six axis directions used by the directional
// intermediate (plane-wave) expansions of the merge-and-shift FMM.
type Direction int8

// The six directions. Up/Down are ±z, North/South ±y, East/West ±x,
// following the convention of Greengard–Rokhlin (1997).
const (
	Up Direction = iota
	Down
	North
	South
	East
	West
	NumDirections = 6
)

var dirNames = [NumDirections]string{"up", "down", "north", "south", "east", "west"}

func (d Direction) String() string {
	if d < 0 || d >= NumDirections {
		return fmt.Sprintf("Direction(%d)", int(d))
	}
	return dirNames[d]
}

// Axis returns the coordinate axis (0=x, 1=y, 2=z) of the direction.
func (d Direction) Axis() int {
	switch d {
	case East, West:
		return 0
	case North, South:
		return 1
	default:
		return 2
	}
}

// Sign returns +1 for the positive directions (Up, North, East) and -1 for
// the negative ones.
func (d Direction) Sign() int {
	switch d {
	case Up, North, East:
		return 1
	default:
		return -1
	}
}

// Opposite returns the reversed direction.
func (d Direction) Opposite() Direction {
	switch d {
	case Up:
		return Down
	case Down:
		return Up
	case North:
		return South
	case South:
		return North
	case East:
		return West
	default:
		return East
	}
}

// RotateToUp maps a vector expressed in world coordinates into the frame in
// which direction d plays the role of +z. The rotations are axis
// permutations with signs, chosen so that RotateFromUp inverts them.
func (d Direction) RotateToUp(v Point) Point {
	switch d {
	case Up:
		return v
	case Down:
		return Point{v.X, -v.Y, -v.Z}
	case North:
		return Point{v.X, -v.Z, v.Y}
	case South:
		return Point{v.X, v.Z, -v.Y}
	case East:
		return Point{-v.Z, v.Y, v.X}
	default: // West
		return Point{v.Z, v.Y, -v.X}
	}
}

// RotateFromUp is the inverse of RotateToUp.
func (d Direction) RotateFromUp(v Point) Point {
	switch d {
	case Up:
		return v
	case Down:
		return Point{v.X, -v.Y, -v.Z}
	case North:
		return Point{v.X, v.Z, -v.Y}
	case South:
		return Point{v.X, -v.Z, v.Y}
	case East:
		return Point{v.Z, v.Y, -v.X}
	default: // West
		return Point{-v.Z, v.Y, v.X}
	}
}

// DirectionOf classifies the integer offset (dx,dy,dz) from a source box to
// a target box into the directional slab whose plane-wave expansion is
// valid for the pair, following the priority-ordered partition of
// Greengard–Rokhlin (1997): Up/Down capture |dz| >= 2 regardless of lateral
// offset (the quadrature is built for z in [1,4], rho <= 4 sqrt(2)), then
// North/South capture the remaining |dy| >= 2, then East/West |dx| >= 2.
// Well-separated same-level interaction-list offsets always classify; false
// is returned only for near offsets.
func DirectionOf(dx, dy, dz int32) (Direction, bool) {
	switch {
	case dz >= 2:
		return Up, true
	case dz <= -2:
		return Down, true
	case dy >= 2:
		return North, true
	case dy <= -2:
		return South, true
	case dx >= 2:
		return East, true
	case dx <= -2:
		return West, true
	}
	return 0, false
}
