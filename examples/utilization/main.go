// Utilization: trace a real evaluation on this machine's AMT runtime and
// print the per-interval utilization profile and per-operator cost table —
// the Section V-B methodology applied to a live run rather than the
// simulator.
//
//	go run ./examples/utilization
package main

import (
	"fmt"
	"log"
	"runtime"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/kernel"
	"repro/internal/points"
	"repro/internal/trace"
)

func main() {
	const n = 60000
	sp := points.Generate(points.Cube, n, 1)
	tp := points.Generate(points.Cube, n, 2)
	q := points.Charges(n, 3)
	k := kernel.NewLaplace(kernel.OrderForDigits(3))

	plan, err := core.NewPlan(sp, tp, k, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	tr := trace.New(workers)
	_, rep, err := plan.Evaluate(q, core.ExecOptions{Workers: workers, Tracer: tr})
	if err != nil {
		log.Fatal(err)
	}
	events := tr.Snapshot()
	fmt.Printf("run: %d workers, %v, %d operator events\n", workers, rep.Elapsed, len(events))

	// Per-operator averages (the Table II measurement on this machine).
	fmt.Println("\nper-operator average execution time:")
	avg := trace.AvgMicrosByClass(events)
	var ops []int
	for c := range avg {
		ops = append(ops, int(c))
	}
	sort.Ints(ops)
	for _, c := range ops {
		fmt.Printf("  %-5v %10.2f µs\n", dag.OpKind(c), avg[uint8(c)])
	}

	// Utilization in 50 intervals, drawn as a bar chart.
	start, end := trace.Span(events)
	u := trace.Analyze(events, workers, 50, start, end)
	fmt.Println("\nutilization profile (f_k):")
	for kk, v := range u.Total {
		bar := strings.Repeat("#", int(v*40+0.5))
		fmt.Printf("%3d %5.2f %s\n", kk, v, bar)
	}
	if first, last, plateau, found := u.Starvation(0.7); found {
		fmt.Printf("\nstarvation dip: intervals %d-%d below the %.2f plateau\n", first, last, plateau)
	} else {
		fmt.Println("\nno starvation dip at this worker count (expected: it emerges at scale)")
	}
}
