package dist

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/geom"
	"repro/internal/kernel"
	"repro/internal/points"
	"repro/internal/tree"
)

func distGraph(t testing.TB) *dag.Graph {
	t.Helper()
	sp := points.Generate(points.Cube, 20000, 1)
	tp := points.Generate(points.Cube, 20000, 2)
	dom := geom.BoundingCube(sp, tp)
	src := tree.Build(sp, dom, 60)
	tgt := tree.Build(tp, dom, 60)
	lists := tree.DualLists(tgt, src)
	k := kernel.NewLaplace(3)
	k.Prepare(dom.Side, 7)
	return dag.Build(dag.Config{Method: dag.Advanced}, src, tgt, lists, k)
}

func TestAllPoliciesAssignEveryNode(t *testing.T) {
	g := distGraph(t)
	for _, pol := range []Policy{Block{}, Cyclic{}, MinComm{}} {
		for _, L := range []int{1, 3, 8} {
			pol.Assign(g, L)
			for i := range g.Nodes {
				loc := g.Nodes[i].Locality
				if loc < 0 || loc >= int32(L) {
					t.Fatalf("%s/L=%d: node %d assigned to %d", pol.Name(), L, i, loc)
				}
			}
		}
	}
}

// The paper's hard constraint: S/T bundles and leaf M/L expansions are
// pinned to the locality owning the underlying points.
func TestLeafPinningConstraint(t *testing.T) {
	g := distGraph(t)
	const L = 4
	ns := len(g.Source.Pts)
	nt := len(g.Target.Pts)
	for _, pol := range []Policy{Block{}, Cyclic{}, MinComm{}} {
		pol.Assign(g, L)
		for i := range g.Nodes {
			n := &g.Nodes[i]
			var want int32 = -1
			switch {
			case n.Kind == dag.NodeS:
				want = owner(n.Box, ns, L)
			case n.Kind == dag.NodeT:
				want = owner(n.Box, nt, L)
			case n.Kind == dag.NodeM && n.Box.IsLeaf():
				want = owner(n.Box, ns, L)
			case n.Kind == dag.NodeL && n.Box.IsLeaf():
				want = owner(n.Box, nt, L)
			}
			if want >= 0 && n.Locality != want {
				t.Fatalf("%s: %v node of leaf %v at locality %d, pinned owner is %d",
					pol.Name(), n.Kind, n.Box.Index, n.Locality, want)
			}
		}
	}
}

func TestPolicyTrafficOrdering(t *testing.T) {
	g := distGraph(t)
	const L = 8
	bytes := map[string]int64{}
	for _, pol := range []Policy{Block{}, Cyclic{}, MinComm{}} {
		pol.Assign(g, L)
		bytes[pol.Name()] = RemoteBytes(g)
	}
	if bytes["mincomm"] > bytes["block"] {
		t.Errorf("mincomm (%d) worse than block (%d)", bytes["mincomm"], bytes["block"])
	}
	if bytes["block"] >= bytes["cyclic"] {
		t.Errorf("block (%d) not below cyclic (%d)", bytes["block"], bytes["cyclic"])
	}
}

func TestSingleLocalityHasNoRemoteTraffic(t *testing.T) {
	g := distGraph(t)
	MinComm{}.Assign(g, 1)
	if b := RemoteBytes(g); b != 0 {
		t.Errorf("remote bytes %d with one locality", b)
	}
	if e := RemoteEdges(g); e != 0 {
		t.Errorf("remote edges %d with one locality", e)
	}
}

// TestOwnerEdgeCases pins down the degenerate inputs of the block
// distribution: an empty ensemble, more localities than points, and the
// clamp that keeps the last point range from spilling past the final
// locality.
func TestOwnerEdgeCases(t *testing.T) {
	// Zero points: every box (necessarily empty) belongs to locality 0.
	empty := &tree.Box{Lo: 0, Hi: 0}
	if o := owner(empty, 0, 4); o != 0 {
		t.Errorf("owner with zero points = %d, want 0", o)
	}

	// More localities than points: owners stay in range and keep the
	// contiguous block order.
	const total = 3
	const L = 8
	prev := int32(-1)
	for lo := 0; lo < total; lo++ {
		b := &tree.Box{Lo: lo, Hi: lo + 1}
		o := owner(b, total, L)
		if o < 0 || o >= L {
			t.Fatalf("owner(%d..%d, total=%d, L=%d) = %d out of range", lo, lo+1, total, L, o)
		}
		if o < prev {
			t.Fatalf("owner order violated with localities > points: %d after %d", o, prev)
		}
		prev = o
	}

	// Clamp at the last locality: a box whose midpoint sits at the end of
	// the point range (Lo == Hi == total happens for the sentinel range of
	// an empty trailing box) must clamp to L-1, not index past it.
	end := &tree.Box{Lo: total, Hi: total}
	if o := owner(end, total, L); o != L-1 {
		t.Errorf("owner at the range end = %d, want clamp to %d", o, L-1)
	}
	// The last real point also lands on the final locality when blocks
	// divide evenly.
	last := &tree.Box{Lo: 9, Hi: 10}
	if o := owner(last, 10, 5); o != 4 {
		t.Errorf("owner of the last point = %d, want 4", o)
	}

	// One locality swallows everything.
	for lo := 0; lo < 10; lo++ {
		if o := owner(&tree.Box{Lo: lo, Hi: lo + 1}, 10, 1); o != 0 {
			t.Fatalf("single locality: owner = %d", o)
		}
	}
}

func TestOwnerIsContiguousAndBalanced(t *testing.T) {
	g := distGraph(t)
	const L = 5
	// Leaf owners must be non-decreasing in tree (Morton) order and cover
	// all localities roughly evenly.
	counts := make([]int, L)
	prev := int32(0)
	for _, b := range g.Source.Leaves {
		o := owner(b, len(g.Source.Pts), L)
		if o < prev {
			t.Fatalf("owner order violated at %v: %d after %d", b.Index, o, prev)
		}
		prev = o
		counts[o] += b.NPoints()
	}
	total := len(g.Source.Pts)
	for l, c := range counts {
		frac := float64(c) / float64(total)
		if frac < 0.5/L || frac > 2.0/L {
			t.Errorf("locality %d owns %.2f of the points; want about %.2f", l, frac, 1.0/L)
		}
	}
}

func TestFailoverRoundRobinDeterministic(t *testing.T) {
	homes := []int32{0, 1, 2, 1, 3, 1, 0, 1}
	// Dead entries pick survivors[i % len(survivors)] by node index, so the
	// same failure scenario always lands the same assignment.
	want := []int32{0, 2, 2, 0, 3, 3, 0, 2}
	survivors := []int32{0, 2, 3}
	moved := Failover(homes, 1, survivors)
	if moved != 4 {
		t.Errorf("moved %d nodes, want 4", moved)
	}
	for i := range homes {
		if homes[i] != want[i] {
			t.Errorf("homes[%d] = %d, want %d", i, homes[i], want[i])
		}
	}
	// Same inputs, same assignment: recovery must be replayable.
	again := []int32{0, 1, 2, 1, 3, 1, 0, 1}
	Failover(again, 1, survivors)
	for i := range again {
		if again[i] != homes[i] {
			t.Fatalf("failover is not deterministic at %d: %d vs %d", i, again[i], homes[i])
		}
	}
}

func TestFailoverSpreadsLoad(t *testing.T) {
	const n = 999
	homes := make([]int32, n)
	for i := range homes {
		homes[i] = 2
	}
	survivors := []int32{0, 1, 3}
	if moved := Failover(homes, 2, survivors); moved != n {
		t.Fatalf("moved %d, want %d", moved, n)
	}
	counts := map[int32]int{}
	for _, h := range homes {
		counts[h]++
	}
	for _, s := range survivors {
		if c := counts[s]; c != n/len(survivors) {
			t.Errorf("survivor %d got %d nodes, want %d", s, c, n/len(survivors))
		}
	}
}

func TestFailoverLeavesSurvivorsAlone(t *testing.T) {
	homes := []int32{0, 3, 0, 3}
	if moved := Failover(homes, 1, []int32{0, 3}); moved != 0 {
		t.Errorf("moved %d nodes of a rank that owned nothing", moved)
	}
	for i, h := range homes {
		if h != []int32{0, 3, 0, 3}[i] {
			t.Fatalf("survivor-owned node %d reassigned to %d", i, h)
		}
	}
}

func TestFailoverPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("no survivors", func() { Failover([]int32{1}, 1, nil) })
	expectPanic("dead in survivors", func() { Failover([]int32{1}, 1, []int32{0, 1}) })
}
