package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/amt"
	"repro/internal/dag"
	"repro/internal/dist"
	"repro/internal/kernel"
	"repro/internal/points"
	"repro/internal/trace"
)

func testPlan(t *testing.T, method dag.Method, n int) (*Plan, []float64, []float64) {
	t.Helper()
	sp := points.Generate(points.Cube, n, 1)
	tp := points.Generate(points.Cube, n, 2)
	q := points.Charges(n, 3)
	k := kernel.NewLaplace(6)
	plan, err := NewPlan(sp, tp, k, Options{Method: method, Threshold: 40})
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.EvaluateSequential(q)
	if err != nil {
		t.Fatal(err)
	}
	return plan, q, want
}

func assertSame(t *testing.T, got, want []float64, tol float64) {
	t.Helper()
	var den float64
	for i := range want {
		if m := math.Abs(want[i]); m > den {
			den = m
		}
	}
	for i := range got {
		if math.Abs(got[i]-want[i])/den > tol {
			t.Fatalf("potential %d differs: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	plan, q, want := testPlan(t, dag.Advanced, 3000)
	for _, cfg := range []struct{ locs, workers int }{
		{1, 1}, {1, 4}, {2, 2}, {4, 1}, {4, 4},
	} {
		got, rep, err := plan.Evaluate(q, ExecOptions{
			Localities: cfg.locs, Workers: cfg.workers,
		})
		if err != nil {
			t.Fatalf("%dx%d: %v", cfg.locs, cfg.workers, err)
		}
		// Floating-point addition order differs between runs, so allow a
		// tiny relative slack.
		assertSame(t, got, want, 1e-9)
		if cfg.locs > 1 && rep.Runtime.ParcelsSent == 0 {
			t.Errorf("%dx%d: no parcels sent across localities", cfg.locs, cfg.workers)
		}
		if cfg.locs == 1 && rep.Runtime.ParcelsSent != 0 {
			t.Errorf("single locality sent %d parcels", rep.Runtime.ParcelsSent)
		}
	}
}

func TestParallelAllPolicies(t *testing.T) {
	plan, q, want := testPlan(t, dag.Advanced, 2000)
	for _, pol := range []dist.Policy{dist.Block{}, dist.Cyclic{}, dist.MinComm{}} {
		got, _, err := plan.Evaluate(q, ExecOptions{Localities: 3, Workers: 2, Policy: pol})
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		assertSame(t, got, want, 1e-9)
	}
}

func TestParallelAllMethods(t *testing.T) {
	for _, m := range []dag.Method{dag.Advanced, dag.Basic, dag.BarnesHut} {
		plan, q, want := testPlan(t, m, 1500)
		got, _, err := plan.Evaluate(q, ExecOptions{Localities: 2, Workers: 3})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		assertSame(t, got, want, 1e-9)
	}
}

func TestMinCommReducesTraffic(t *testing.T) {
	plan, q, _ := testPlan(t, dag.Advanced, 4000)
	_, repCyc, err := plan.Evaluate(q, ExecOptions{Localities: 4, Policy: dist.Cyclic{}})
	if err != nil {
		t.Fatal(err)
	}
	_, repMin, err := plan.Evaluate(q, ExecOptions{Localities: 4, Policy: dist.MinComm{}})
	if err != nil {
		t.Fatal(err)
	}
	if repMin.RemoteBytes >= repCyc.RemoteBytes {
		t.Errorf("mincomm bytes %d not below cyclic %d", repMin.RemoteBytes, repCyc.RemoteBytes)
	}
	// Coalescing: parcels sent must be no more than remote edges.
	if repMin.Runtime.ParcelsSent > repMin.RemoteEdges {
		t.Errorf("parcels %d exceed remote edges %d: coalescing broken",
			repMin.Runtime.ParcelsSent, repMin.RemoteEdges)
	}
}

func TestTraceEventsCoverAllOps(t *testing.T) {
	plan, q, _ := testPlan(t, dag.Advanced, 3000)
	tr := trace.New(2 * 2)
	_, _, err := plan.Evaluate(q, ExecOptions{Localities: 2, Workers: 2, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	events := tr.Snapshot()
	if len(events) == 0 {
		t.Fatal("no trace events recorded")
	}
	// Every edge application records exactly one event.
	if int64(len(events)) != plan.Graph.NumEdges() {
		t.Errorf("%d events for %d edges", len(events), plan.Graph.NumEdges())
	}
	// All the advanced-FMM operator classes appear.
	seen := map[uint8]bool{}
	for _, ev := range events {
		if ev.End < ev.Start {
			t.Fatalf("event with negative duration: %+v", ev)
		}
		seen[ev.Class] = true
	}
	for _, op := range []dag.OpKind{dag.OpS2M, dag.OpM2M, dag.OpM2I, dag.OpI2I, dag.OpI2L, dag.OpL2L, dag.OpL2T, dag.OpS2T} {
		if !seen[uint8(op)] {
			t.Errorf("no events for %v", op)
		}
	}
	// Utilization analysis over the run must be positive and bounded.
	start, end := trace.Span(events)
	u := trace.Analyze(events, 4, 50, start, end)
	var maxU float64
	for _, v := range u.Total {
		if v > maxU {
			maxU = v
		}
	}
	if maxU <= 0 {
		t.Error("utilization all zero")
	}
}

// TestFaultInjectedEvaluationMatches: a lossy, duplicating, reordering wire
// must not change the computed potentials — the delivery layer retries lost
// parcels and dedups duplicated ones before any LCO input is applied.
func TestFaultInjectedEvaluationMatches(t *testing.T) {
	plan, q, want := testPlan(t, dag.Advanced, 2500)
	tr := trace.New(4 * 2)
	got, rep, err := plan.Evaluate(q, ExecOptions{
		Localities: 4, Workers: 2, Seed: 11, Tracer: tr,
		Fault: &amt.FaultProfile{Seed: 11, Drop: 0.1, Duplicate: 0.1, Reorder: true},
		Delivery: amt.DeliveryConfig{
			RetryBase: 2 * time.Millisecond,
			Deadline:  60 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, got, want, 1e-12)
	ts := rep.Runtime.Transport
	if ts.Dropped == 0 || ts.Duplicated == 0 {
		t.Errorf("fault profile injected nothing: %+v", ts)
	}
	if ts.Retried == 0 {
		t.Error("no retries despite 10%% drop")
	}
	if ts.Deduped == 0 {
		t.Error("no dedups despite 10%% duplication")
	}
	if ts.DeadlineExceeded != 0 {
		t.Errorf("%d parcels exceeded the deadline", ts.DeadlineExceeded)
	}
	// The fault markers land in the trace alongside operator events.
	var retries, wireFaults int
	for _, ev := range tr.Snapshot() {
		switch ev.Class {
		case trace.ClassNetRetry:
			retries++
		case trace.ClassNetDrop, trace.ClassNetDup:
			wireFaults++
		}
	}
	if retries == 0 || wireFaults == 0 {
		t.Errorf("trace recorded %d retry and %d wire-fault events, want both > 0", retries, wireFaults)
	}
}

// TestDeliveryDeadlineSurfacesInError: when parcels are abandoned the
// evaluation must fail loudly and name the transport as the cause.
func TestDeliveryDeadlineSurfacesInError(t *testing.T) {
	plan, q, _ := testPlan(t, dag.Advanced, 1000)
	_, _, err := plan.Evaluate(q, ExecOptions{
		Localities: 2, Workers: 1, Seed: 3,
		Fault: &amt.FaultProfile{Seed: 3, Drop: 1.0},
		Delivery: amt.DeliveryConfig{
			RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond,
			Deadline: 50 * time.Millisecond,
		},
	})
	if err == nil {
		t.Fatal("evaluation over a fully lossy wire reported success")
	}
	if !strings.Contains(err.Error(), "delivery deadline") {
		t.Errorf("error does not name the transport: %v", err)
	}
}

func TestLatencyInjection(t *testing.T) {
	plan, q, want := testPlan(t, dag.Advanced, 1000)
	t0 := time.Now()
	got, _, err := plan.Evaluate(q, ExecOptions{Localities: 2, Workers: 1, Latency: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(t0) < 2*time.Millisecond {
		t.Error("run finished faster than one latency")
	}
	assertSame(t, got, want, 1e-9)
}

func TestPriorityExecutionMatchesAndBiasesOrder(t *testing.T) {
	plan, q, want := testPlan(t, dag.Advanced, 3000)
	tr := trace.New(2)
	got, _, err := plan.Evaluate(q, ExecOptions{Workers: 2, Tracer: tr, Priority: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, got, want, 1e-9)
	// With priority hints the upward sweep (S->M, M->M) must complete
	// earlier in the run than without them.
	lastUp := func(events []trace.Event) float64 {
		start, end := trace.Span(events)
		var last int64
		for _, ev := range events {
			if ev.Class == uint8(dag.OpS2M) || ev.Class == uint8(dag.OpM2M) {
				if ev.End > last {
					last = ev.End
				}
			}
		}
		return float64(last-start) / float64(end-start)
	}
	withPrio := lastUp(tr.Snapshot())
	tr2 := trace.New(2)
	if _, _, err := plan.Evaluate(q, ExecOptions{Workers: 2, Tracer: tr2}); err != nil {
		t.Fatal(err)
	}
	withoutPrio := lastUp(tr2.Snapshot())
	if withPrio > withoutPrio+0.05 {
		t.Errorf("priority did not pull the upward sweep forward: %.2f vs %.2f",
			withPrio, withoutPrio)
	}
}
