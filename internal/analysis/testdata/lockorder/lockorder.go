// Package lockorder exercises the interprocedural lock-order checker:
// a two-lock cycle (one edge direct, one through a call), blocking
// operations under a held mutex (direct, via call, and via //dashmm:locked
// seeding), a suppressed finding, and clean early-return/unlock idioms
// that must stay silent.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

// lockAB establishes the edge A.mu -> B.mu directly.
func lockAB(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want "acquiring B.mu while holding A.mu completes a lock-order cycle"
	b.mu.Unlock()
	a.mu.Unlock()
}

// lockBA establishes the reverse edge B.mu -> A.mu through a call.
func lockBA(a *A, b *B) {
	b.mu.Lock()
	lockA(a) // want "acquiring A.mu while holding B.mu completes a lock-order cycle"
	b.mu.Unlock()
}

func lockA(a *A) {
	a.mu.Lock()
	a.mu.Unlock()
}

type C struct {
	mu sync.Mutex
	ch chan int
}

// sendLocked blocks directly under C.mu.
func sendLocked(c *C) {
	c.mu.Lock()
	c.ch <- 1 // want "channel send while holding C.mu"
	c.mu.Unlock()
}

// callBlocked reaches a blocking receive through a call under C.mu.
func callBlocked(c *C) {
	c.mu.Lock()
	recv(c) // want "call to lockorder.recv may reach channel receive"
	c.mu.Unlock()
}

func recv(c *C) {
	<-c.ch
}

// entrySeeded holds C.mu on entry per its annotation.
//
//dashmm:locked C.mu
func entrySeeded(c *C) {
	c.ch <- 2 // want "channel send while holding C.mu"
}

// suppressed is the same defect as sendLocked with a reasoned suppression;
// the harness fails this fixture if the checker still fires here.
func suppressed(c *C) {
	c.mu.Lock()
	//lint:ignore lockorder the channel is buffered to the worker count and drained unconditionally
	c.ch <- 3
	c.mu.Unlock()
}

// earlyReturn unlocks on every path before the send: a true negative that
// exercises the terminating-branch intersection.
func earlyReturn(c *C, fast bool) {
	c.mu.Lock()
	if fast {
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	c.ch <- 4
}

// spawned sends from a goroutine, which does not run under the spawning
// function's locks.
func spawned(c *C) {
	c.mu.Lock()
	go func() { c.ch <- 5 }()
	c.mu.Unlock()
}
