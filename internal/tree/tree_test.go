package tree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/points"
)

func buildPair(t *testing.T, n int, dist points.Distribution, threshold int) (src, tgt *Tree) {
	t.Helper()
	sp := points.Generate(dist, n, 1)
	tp := points.Generate(dist, n, 2)
	dom := geom.BoundingCube(sp, tp)
	return Build(sp, dom, threshold), Build(tp, dom, threshold)
}

func TestBuildPartitionInvariants(t *testing.T) {
	pts := points.Generate(points.Cube, 5000, 3)
	dom := geom.BoundingCube(pts)
	tr := Build(pts, dom, 25)
	// Every box's cube contains its points.
	for _, b := range tr.Boxes {
		cube := b.Index.Cube(dom)
		for _, p := range tr.Points(b) {
			if !cube.Contains(p) {
				t.Fatalf("%v does not contain %v", b, p)
			}
		}
	}
	// Leaves respect the threshold, except where refinement cannot separate
	// coincident points (not the case for random input).
	for _, l := range tr.Leaves {
		if l.NPoints() > 25 {
			t.Errorf("leaf %v has %d > 25 points", l, l.NPoints())
		}
		if l.NPoints() == 0 {
			t.Errorf("empty leaf %v survived pruning", l)
		}
	}
	// Leaf ranges partition the ensemble.
	total := 0
	for _, l := range tr.Leaves {
		total += l.NPoints()
	}
	if total != 5000 {
		t.Errorf("leaves cover %d of 5000 points", total)
	}
	// Perm is a permutation and maps reordered points back to originals.
	seen := make([]bool, 5000)
	for i, orig := range tr.Perm {
		if seen[orig] {
			t.Fatalf("Perm repeats %d", orig)
		}
		seen[orig] = true
		if tr.Pts[i] != pts[orig] {
			t.Fatalf("Pts[%d] != pts[Perm[%d]]", i, i)
		}
	}
}

func TestBuildChildRanges(t *testing.T) {
	pts := points.Generate(points.Sphere, 3000, 4)
	dom := geom.BoundingCube(pts)
	tr := Build(pts, dom, 40)
	for _, b := range tr.Boxes {
		if b.IsLeaf() {
			continue
		}
		// Children ranges tile the parent range in octant order.
		lo := b.Lo
		n := 0
		for o := 0; o < 8; o++ {
			c := b.Children[o]
			if c == nil {
				continue
			}
			if c.Lo < lo {
				t.Fatalf("%v: child %d range [%d,%d) overlaps predecessor", b, o, c.Lo, c.Hi)
			}
			lo = c.Hi
			n += c.NPoints()
			if c.Parent != b {
				t.Fatalf("%v: child parent link broken", b)
			}
		}
		if n != b.NPoints() {
			t.Fatalf("%v: children cover %d of %d points", b, n, b.NPoints())
		}
	}
}

func TestBFSOrderAndLookup(t *testing.T) {
	pts := points.Generate(points.Cube, 2000, 5)
	dom := geom.BoundingCube(pts)
	tr := Build(pts, dom, 30)
	prev := -1
	for i, b := range tr.Boxes {
		if b.Seq != i {
			t.Fatalf("Seq mismatch at %d", i)
		}
		if b.Level() < prev {
			t.Fatalf("BFS order violated at %d", i)
		}
		prev = b.Level()
		if tr.Lookup(b.Index) != b {
			t.Fatalf("Lookup(%v) failed", b.Index)
		}
	}
}

func TestUniformCubeTreeIsUniform(t *testing.T) {
	// The paper: cube data produces dual trees where every leaf has the same
	// depth (with enough points per box).
	pts := points.Generate(points.Cube, 16000, 6)
	dom := geom.BoundingCube(pts)
	tr := Build(pts, dom, 60)
	depth := tr.Leaves[0].Level()
	for _, l := range tr.Leaves {
		if l.Level() != depth {
			t.Errorf("leaf depth %d != %d: cube tree should be uniform", l.Level(), depth)
		}
	}
}

func TestSphereTreeIsAdaptive(t *testing.T) {
	// Sphere-surface data leaves the interior empty: the tree must be
	// non-uniform (this is what lengthens the critical path in the paper).
	pts := points.Generate(points.Sphere, 30000, 7)
	dom := geom.BoundingCube(pts)
	tr := Build(pts, dom, 60)
	minD, maxD := 99, 0
	for _, l := range tr.Leaves {
		if l.Level() < minD {
			minD = l.Level()
		}
		if l.Level() > maxD {
			maxD = l.Level()
		}
	}
	if minD == maxD {
		t.Errorf("sphere tree is uniform (depth %d); expected adaptivity", minD)
	}
	// And empty octants must be pruned: total box count well below the
	// complete octree of the max depth.
	full := 0
	for l := 0; l <= tr.MaxLevel; l++ {
		full += 1 << (3 * uint(l))
	}
	if len(tr.Boxes) >= full {
		t.Errorf("no pruning: %d boxes vs %d complete", len(tr.Boxes), full)
	}
}

// coverage checks the fundamental correctness property of the dual lists:
// for every leaf target box, every source leaf is accounted for exactly once
// along its ancestor chain, through exactly one of L1, L2, L3, L4 (of the
// leaf or of an ancestor).
func TestDualListsCoverEverySourceExactlyOnce(t *testing.T) {
	for _, dist := range []points.Distribution{points.Cube, points.Sphere} {
		src, tgt := buildPair(t, 4000, dist, 35)
		lists := DualLists(tgt, src)

		// For each source leaf, precompute its ancestor set (including
		// itself) so "covered by list entry e" is: e is the leaf, or e is an
		// ancestor, or e is a descendant (for L1/L3 descendants are
		// impossible per construction; L2 entries can be ancestors of many
		// leaves).
		for _, tl := range tgt.Leaves {
			if tl.Pruned {
				continue
			}
			// Walk the ancestor chain collecting list entries.
			counts := make(map[*Box]int) // source leaf -> times covered
			var mark func(e *Box)
			mark = func(e *Box) {
				if e.IsLeaf() {
					counts[e]++
					return
				}
				for _, c := range e.Children {
					if c != nil {
						mark(c)
					}
				}
			}
			for b := tl; b != nil; b = b.Parent {
				ls := lists[b.Seq]
				for _, e := range ls.L1 {
					mark(e)
				}
				for _, e := range ls.L2 {
					mark(e)
				}
				for _, e := range ls.L3 {
					mark(e)
				}
				for _, e := range ls.L4 {
					mark(e)
				}
			}
			for _, sl := range src.Leaves {
				if counts[sl] != 1 {
					t.Fatalf("%v: target leaf %v covers source leaf %v %d times",
						dist, tl.Index, sl.Index, counts[sl])
				}
			}
			// Only check a few leaves per distribution to keep the test fast.
			if tl.Seq%17 != 0 {
				continue
			}
		}
	}
}

func TestDualListsSeparationProperties(t *testing.T) {
	src, tgt := buildPair(t, 6000, points.Sphere, 35)
	lists := DualLists(tgt, src)
	for _, bt := range tgt.Boxes {
		ls := lists[bt.Seq]
		if len(ls.L1)+len(ls.L3) > 0 && !bt.IsLeaf() && !bt.Pruned {
			t.Errorf("%v: non-leaf target with L1/L3", bt.Index)
		}
		for _, e := range ls.L1 {
			if !e.IsLeaf() {
				t.Errorf("L1 entry %v is not a leaf", e.Index)
			}
			if !geom.Adjacent(bt.Index, e.Index) {
				t.Errorf("L1 entry %v not adjacent to %v", e.Index, bt.Index)
			}
		}
		for _, e := range ls.L2 {
			if e.Level() != bt.Level() {
				t.Errorf("L2 entry %v not at level of %v", e.Index, bt.Index)
			}
			if !e.Index.WellSeparated(bt.Index) {
				t.Errorf("L2 entry %v not well separated from %v", e.Index, bt.Index)
			}
			if e.Parent != nil && bt.Parent != nil &&
				e.Parent.Index.WellSeparated(bt.Parent.Index) {
				t.Errorf("L2 entry %v: parents already well separated", e.Index)
			}
		}
		for _, e := range ls.L3 {
			if geom.Adjacent(bt.Index, e.Index) {
				t.Errorf("L3 entry %v adjacent to %v", e.Index, bt.Index)
			}
			if e.Parent != nil && !geom.Adjacent(bt.Index, e.Parent.Index) {
				t.Errorf("L3 entry %v: parent not adjacent", e.Index)
			}
			if e.Level() <= bt.Level() {
				t.Errorf("L3 entry %v not finer than %v", e.Index, bt.Index)
			}
		}
		for _, e := range ls.L4 {
			if !e.IsLeaf() {
				t.Errorf("L4 entry %v is not a leaf", e.Index)
			}
			if geom.Adjacent(bt.Index, e.Index) {
				t.Errorf("L4 entry %v adjacent to %v", e.Index, bt.Index)
			}
			if bt.Parent != nil && !geom.Adjacent(bt.Parent.Index, e.Index) {
				t.Errorf("L4 entry %v: target parent not adjacent", e.Index)
			}
		}
	}
}

func TestIdenticalEnsemblesHaveEmptyL3L4OnUniformData(t *testing.T) {
	// Uniform cube data with identical ensembles: all leaves at one depth,
	// so only L1 and L2 appear (paper Table II has no S->L / M->T rows).
	pts := points.Generate(points.Cube, 16000, 8)
	dom := geom.BoundingCube(pts)
	tr := Build(pts, dom, 60)
	lists := DualLists(tr, tr)
	for _, b := range tr.Boxes {
		if len(lists[b.Seq].L3) != 0 || len(lists[b.Seq].L4) != 0 {
			t.Fatalf("uniform identical ensembles produced L3/L4 at %v", b.Index)
		}
	}
}

func TestDisjointEnsemblesPrune(t *testing.T) {
	// Source points in one corner octant, targets in the opposite corner:
	// most of the target tree is well-separated from the whole source tree
	// and must be pruned.
	rng := rand.New(rand.NewSource(9))
	sp := make([]geom.Point, 3000)
	tp := make([]geom.Point, 3000)
	for i := range sp {
		sp[i] = geom.Point{X: rng.Float64() * 0.2, Y: rng.Float64() * 0.2, Z: rng.Float64() * 0.2}
		tp[i] = geom.Point{X: 0.8 + rng.Float64()*0.2, Y: 0.8 + rng.Float64()*0.2, Z: 0.8 + rng.Float64()*0.2}
	}
	dom := geom.BoundingCube(sp, tp)
	src := Build(sp, dom, 30)
	tgt := Build(tp, dom, 30)
	DualLists(tgt, src)
	pruned := 0
	for _, b := range tgt.Boxes {
		if b.Pruned {
			pruned++
		}
	}
	if pruned == 0 {
		t.Error("no target boxes pruned for disjoint corner ensembles")
	}
}

func TestBuildPropertyThresholdRespected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(2000)
		th := 5 + rng.Intn(60)
		pts := points.Generate(points.Distribution(rng.Intn(3)), n, seed)
		dom := geom.BoundingCube(pts)
		tr := Build(pts, dom, th)
		total := 0
		for _, l := range tr.Leaves {
			if l.NPoints() > th || l.NPoints() == 0 {
				return false
			}
			total += l.NPoints()
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMortonKeysUnique(t *testing.T) {
	pts := points.Generate(points.Cube, 8000, 10)
	dom := geom.BoundingCube(pts)
	tr := Build(pts, dom, 20)
	seen := make(map[uint64]bool, len(tr.Boxes))
	for _, b := range tr.Boxes {
		k := b.Index.Key()
		if seen[k] {
			t.Fatalf("duplicate key for %v", b.Index)
		}
		seen[k] = true
	}
}

func TestBuildParallelMatchesSequential(t *testing.T) {
	for _, dist := range []points.Distribution{points.Cube, points.Sphere, points.Plummer} {
		pts := points.Generate(dist, 20000, 44)
		dom := geom.BoundingCube(pts)
		seq := Build(pts, dom, 50)
		par := BuildParallel(pts, dom, 50, 4)
		if len(seq.Boxes) != len(par.Boxes) || len(seq.Leaves) != len(par.Leaves) {
			t.Fatalf("%v: box/leaf counts differ: %d/%d vs %d/%d",
				dist, len(seq.Boxes), len(seq.Leaves), len(par.Boxes), len(par.Leaves))
		}
		// Same boxes with the same point ranges.
		for _, b := range seq.Boxes {
			pb := par.Lookup(b.Index)
			if pb == nil {
				t.Fatalf("%v: box %v missing from parallel tree", dist, b.Index)
			}
			if pb.Lo != b.Lo || pb.Hi != b.Hi {
				t.Fatalf("%v: box %v range [%d,%d) vs [%d,%d)",
					dist, b.Index, pb.Lo, pb.Hi, b.Lo, b.Hi)
			}
		}
		// The reordered point multisets agree per leaf (order within a leaf
		// may differ).
		for _, l := range seq.Leaves {
			pl := par.Lookup(l.Index)
			a := append([]geom.Point(nil), seq.Points(l)...)
			bb := append([]geom.Point(nil), par.Points(pl)...)
			sortPoints(a)
			sortPoints(bb)
			for i := range a {
				if a[i] != bb[i] {
					t.Fatalf("%v: leaf %v points differ", dist, l.Index)
				}
			}
		}
		// Perm is still a valid permutation mapping.
		for i, orig := range par.Perm {
			if par.Pts[i] != pts[orig] {
				t.Fatalf("%v: Perm broken at %d", dist, i)
			}
		}
	}
}

func TestBuildParallelSmallFallsBack(t *testing.T) {
	pts := points.Generate(points.Cube, 100, 1)
	dom := geom.BoundingCube(pts)
	tr := BuildParallel(pts, dom, 60, 8)
	if tr == nil || len(tr.Leaves) == 0 {
		t.Fatal("fallback build failed")
	}
}

func sortPoints(ps []geom.Point) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		if ps[i].Y != ps[j].Y {
			return ps[i].Y < ps[j].Y
		}
		return ps[i].Z < ps[j].Z
	})
}

func TestBuildParallelCollapsesSparseShallowBoxes(t *testing.T) {
	// Cluster nearly all points in one octant so some level-1 boxes hold
	// fewer than threshold points: the parallel builder must not split
	// them where the sequential one would not.
	rng := rand.New(rand.NewSource(50))
	pts := make([]geom.Point, 4000)
	for i := range pts {
		if i < 3960 {
			pts[i] = geom.Point{X: rng.Float64() * 0.4, Y: rng.Float64() * 0.4, Z: rng.Float64() * 0.4}
		} else {
			pts[i] = geom.Point{X: 0.6 + rng.Float64()*0.4, Y: 0.6 + rng.Float64()*0.4, Z: 0.6 + rng.Float64()*0.4}
		}
	}
	dom := geom.BoundingCube(pts)
	seq := Build(pts, dom, 60)
	par := BuildParallel(pts, dom, 60, 4)
	if len(seq.Boxes) != len(par.Boxes) {
		t.Fatalf("box counts differ: %d vs %d", len(seq.Boxes), len(par.Boxes))
	}
	for _, b := range seq.Boxes {
		pb := par.Lookup(b.Index)
		if pb == nil || pb.IsLeaf() != b.IsLeaf() {
			t.Fatalf("box %v leafness differs", b.Index)
		}
	}
}
