package baseline

import (
	"math"
	"testing"

	"repro/internal/kernel"
	"repro/internal/points"
)

func TestDirectMatchesSingleWorker(t *testing.T) {
	sp := points.Generate(points.Cube, 500, 1)
	tp := points.Generate(points.Cube, 400, 2)
	q := points.Charges(500, 3)
	k := kernel.NewLaplace(4)
	a := Direct(k, sp, q, tp, 1)
	b := Direct(k, sp, q, tp, 7)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12*math.Abs(a[i]) {
			t.Fatalf("worker-count dependence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDirectSampleAgreesWithDirect(t *testing.T) {
	sp := points.Generate(points.Sphere, 300, 4)
	tp := points.Generate(points.Sphere, 300, 5)
	q := points.Charges(300, 6)
	k := kernel.NewYukawa(4, 2.0)
	full := Direct(k, sp, q, tp, 4)
	sample := DirectSample(k, sp, q, tp, []int{0, 17, 99, 299})
	for i, v := range sample {
		if math.Abs(full[i]-v) > 1e-12*math.Max(1, math.Abs(v)) {
			t.Errorf("index %d: %v vs %v", i, full[i], v)
		}
	}
}

func TestDirectSelfInteractionExcluded(t *testing.T) {
	pts := points.Generate(points.Cube, 100, 7)
	q := points.UnitCharges(100)
	k := kernel.NewLaplace(4)
	pot := Direct(k, pts, q, pts, 3)
	for i, v := range pot {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("self-interaction leaked at %d: %v", i, v)
		}
	}
}
