// Command dashmm-lint runs the repository's concurrency & determinism
// checker suite (internal/analysis) over Go package patterns.
//
// Usage:
//
//	dashmm-lint [flags] [packages]
//
// With no packages, ./... is linted. Exit status is 1 when any diagnostic
// is reported, 2 on operational failure (unparseable package, bad flag).
//
// Flags:
//
//	-json          emit diagnostics as a JSON array instead of text
//	-checks LIST   comma-separated subset of checkers to run (default all)
//	-fix MODE      "suppress": instead of reporting, insert a
//	               //lint:ignore stub above each flagged line, for a human
//	               to either justify or fix
//	-list          print the available checkers and exit
//	-escape        run the compiler-backed escape gate instead of the
//	               analyzer suite: every //dashmm:noalloc function must be
//	               free of `go build -gcflags=-m` heap escapes
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("dashmm-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut = fs.Bool("json", false, "emit diagnostics as JSON")
		checks  = fs.String("checks", "", "comma-separated subset of checkers to run (default: all)")
		fixMode = fs.String("fix", "", `"suppress" inserts //lint:ignore stubs instead of reporting`)
		list    = fs.Bool("list", false, "list available checkers and exit")
		escape  = fs.Bool("escape", false, "run the compiler-backed //dashmm:noalloc escape gate")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	all := analysis.DefaultAnalyzers()
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	analyzers, err := selectAnalyzers(all, *checks)
	if err != nil {
		fmt.Fprintln(stderr, "dashmm-lint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "dashmm-lint:", err)
		return 2
	}

	var diags []analysis.Diagnostic
	if *escape {
		diags, err = analysis.RunEscapeGate(wd, patterns)
		if err != nil {
			fmt.Fprintln(stderr, "dashmm-lint:", err)
			return 2
		}
	} else {
		loader := analysis.NewLoader(wd)
		passes, err := loader.LoadPatterns(patterns...)
		if err != nil {
			fmt.Fprintln(stderr, "dashmm-lint:", err)
			return 2
		}
		diags = analysis.Run(passes, analyzers)
	}

	switch *fixMode {
	case "":
	case "suppress":
		n, err := suppressAll(diags)
		if err != nil {
			fmt.Fprintln(stderr, "dashmm-lint:", err)
			return 2
		}
		fmt.Fprintf(stdout, "dashmm-lint: inserted %d //lint:ignore stub(s); grep for %q and justify or fix them\n",
			n, stubReason)
		return 0
	default:
		fmt.Fprintf(stderr, "dashmm-lint: unknown -fix mode %q (only \"suppress\")\n", *fixMode)
		return 2
	}

	if *jsonOut {
		type jsonDiag struct {
			Check   string `json:"check"`
			File    string `json:"file"`
			Line    int    `json:"line"`
			Column  int    `json:"column"`
			Message string `json:"message"`
			// Detail carries the lockorder acquisition chain or the
			// wireproto field layout, newline-separated, for tooling.
			Detail string `json:"detail,omitempty"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				Check: d.Check, File: d.Pos.Filename,
				Line: d.Pos.Line, Column: d.Pos.Column, Message: d.Message,
				Detail: d.Detail,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "dashmm-lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stdout, "dashmm-lint: %d diagnostic(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// selectAnalyzers filters the registry down to the -checks subset.
func selectAnalyzers(all []analysis.Analyzer, checks string) ([]analysis.Analyzer, error) {
	if checks == "" {
		return all, nil
	}
	byName := map[string]analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name()] = a
	}
	var selected []analysis.Analyzer
	for _, name := range strings.Split(checks, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (run with -list to see the registry)", name)
		}
		selected = append(selected, a)
	}
	return selected, nil
}

const stubReason = "TODO(justify): inserted by dashmm-lint -fix=suppress"

// suppressAll inserts a //lint:ignore stub line above every diagnostic.
// Insertions are applied per file, bottom-up, so earlier line numbers stay
// valid. The pseudo-check "lint" (malformed suppressions) can't itself be
// suppressed and is skipped.
func suppressAll(diags []analysis.Diagnostic) (int, error) {
	perFile := map[string][]analysis.Diagnostic{}
	for _, d := range diags {
		if d.Check == "lint" {
			continue
		}
		perFile[d.Pos.Filename] = append(perFile[d.Pos.Filename], d)
	}
	total := 0
	for file, ds := range perFile {
		// Deepest line first; merge checks flagged on the same line.
		sort.Slice(ds, func(i, j int) bool { return ds[i].Pos.Line > ds[j].Pos.Line })
		data, err := os.ReadFile(file)
		if err != nil {
			return total, err
		}
		lines := strings.Split(string(data), "\n")
		lastLine := -1
		var lineChecks []string
		flush := func() error {
			if lastLine < 0 {
				return nil
			}
			idx := lastLine - 1 // 0-based index of the flagged line
			if idx < 0 || idx >= len(lines) {
				return fmt.Errorf("%s: diagnostic line %d out of range", file, lastLine)
			}
			indent := lines[idx][:len(lines[idx])-len(strings.TrimLeft(lines[idx], " \t"))]
			stub := indent + "//lint:ignore " + strings.Join(lineChecks, ",") + " " + stubReason
			lines = append(lines[:idx], append([]string{stub}, lines[idx:]...)...)
			total++
			return nil
		}
		for _, d := range ds {
			if d.Pos.Line != lastLine {
				if err := flush(); err != nil {
					return total, err
				}
				lastLine = d.Pos.Line
				lineChecks = lineChecks[:0]
			}
			dup := false
			for _, c := range lineChecks {
				dup = dup || c == d.Check
			}
			if !dup {
				lineChecks = append(lineChecks, d.Check)
			}
		}
		if err := flush(); err != nil {
			return total, err
		}
		if err := os.WriteFile(file, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
			return total, err
		}
	}
	return total, nil
}
