package amt

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestGenerateCorpus regenerates the checked-in seed corpus when run with
// REGEN_FUZZ_CORPUS=1; otherwise it only verifies the files decode.
func TestGenerateCorpus(t *testing.T) {
	if os.Getenv("REGEN_FUZZ_CORPUS") != "1" {
		t.Skip("set REGEN_FUZZ_CORPUS=1 to regenerate")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeFrame")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden := AppendFrame(nil, &Frame{Kind: 5, Src: 1, Dst: 2, Epoch: 3, Seq: 4, Payload: []byte{0xab, 0xcd, 0xef}})
	write("golden-frame", golden)
	write("truncated-crc-trailer", golden[:len(golden)-2])
	hostile := append([]byte(nil), golden[:FrameHeaderSize]...)
	hostile[24], hostile[25], hostile[26], hostile[27] = 0xff, 0xff, 0xff, 0x0f
	write("hostile-length", hostile)
}
