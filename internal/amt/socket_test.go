package amt

import (
	"bufio"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testClusterConfig builds one rank's config for an in-process unix-socket
// cluster rooted in dir.
func testClusterConfig(dir string, rank, world int) ClusterConfig {
	return ClusterConfig{
		Rank: rank, World: world,
		Network: "unix",
		Addr:    filepath.Join(dir, "rank0.sock"),
		Stamp:   "test-stamp-v1",
	}
}

// startTestCluster brings up a full world of in-process clusters: rank 0
// first (it must be accepting before workers dial), workers concurrently
// (their NewCluster blocks in the join handshake), then the Start barrier
// everywhere. reg, when non-nil, registers callbacks on each cluster before
// Start (the documented registration window).
func startTestCluster(t *testing.T, dir string, world int, mut func(*ClusterConfig), reg func(rank int, c *Cluster)) []*Cluster {
	t.Helper()
	cls := make([]*Cluster, world)
	cfg0 := testClusterConfig(dir, 0, world)
	if mut != nil {
		mut(&cfg0)
	}
	c0, err := NewCluster(cfg0)
	if err != nil {
		t.Fatalf("rank 0: %v", err)
	}
	cls[0] = c0
	var wg sync.WaitGroup
	errs := make([]error, world)
	for r := 1; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := testClusterConfig(dir, r, world)
			if mut != nil {
				mut(&cfg)
			}
			cls[r], errs[r] = NewCluster(cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if reg != nil {
		for r, c := range cls {
			reg(r, c)
		}
	}
	for r := world - 1; r >= 0; r-- {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = cls[r].Start()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d start: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, c := range cls {
			if c != nil {
				c.Close()
			}
		}
	})
	return cls
}

// Frames sent over the data plane arrive at the addressed rank, and the
// byte/message counters move on both ends.
func TestClusterDataPlane(t *testing.T) {
	cls := startTestCluster(t, t.TempDir(), 3, nil, nil)
	type rx struct {
		mu     sync.Mutex
		frames []Frame
	}
	sinks := make([]*rx, 3)
	for r, c := range cls {
		s := &rx{}
		sinks[r] = s
		c.Transport().OnFrame(func(f Frame) {
			s.mu.Lock()
			s.frames = append(s.frames, f)
			s.mu.Unlock()
		})
	}
	sends := []struct {
		src, dst int
		payload  string
	}{
		{0, 1, "zero to one"},
		{1, 2, "one to two"},
		{2, 0, "two to zero"},
		{1, 0, "one to zero"},
	}
	for _, s := range sends {
		cls[s.src].Transport().Send(Message{
			Src: s.src, Dst: s.dst, Seq: 1, Kind: 7, Payload: []byte(s.payload),
		})
	}
	deadline := time.Now().Add(5 * time.Second)
	for _, s := range sends {
		for {
			sinks[s.dst].mu.Lock()
			var found bool
			for _, f := range sinks[s.dst].frames {
				if f.Src == s.src && string(f.Payload) == s.payload {
					found = true
				}
			}
			sinks[s.dst].mu.Unlock()
			if found {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("frame %d→%d never arrived", s.src, s.dst)
			}
			time.Sleep(time.Millisecond)
		}
	}
	st := cls[1].Transport().Stats()
	if st.Messages < 2 || st.BytesOut == 0 {
		t.Fatalf("rank 1 outbound counters did not move: %+v", st)
	}
	if st.BytesIn == 0 {
		t.Fatalf("rank 1 inbound byte counter did not move: %+v", st)
	}
}

// A joiner built from different sources (different stamp) is rejected with
// the reason on the wire.
func TestJoinWrongStampRejected(t *testing.T) {
	dir := t.TempDir()
	c0, err := NewCluster(testClusterConfig(dir, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	cfg := testClusterConfig(dir, 1, 2)
	cfg.Stamp = "some-other-build"
	_, err = NewCluster(cfg)
	if err == nil || !strings.Contains(err.Error(), "stamp") {
		t.Fatalf("want stamp-mismatch rejection, got %v", err)
	}
}

// A second process claiming an already-joined rank is turned away.
func TestJoinDuplicateRankRejected(t *testing.T) {
	dir := t.TempDir()
	c0, err := NewCluster(testClusterConfig(dir, 0, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := NewCluster(testClusterConfig(dir, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	_, err = NewCluster(testClusterConfig(dir, 1, 3))
	if err == nil || !strings.Contains(err.Error(), "already joined") {
		t.Fatalf("want duplicate-rank rejection, got %v", err)
	}
}

// Once the run has started no join is admitted — including a crashed rank
// trying to rejoin under its old id.
func TestJoinAfterStartRejected(t *testing.T) {
	dir := t.TempDir()
	cls := startTestCluster(t, dir, 2, nil, nil)
	_ = cls
	_, err := NewCluster(testClusterConfig(dir, 1, 2))
	if err == nil || !strings.Contains(err.Error(), "already started") {
		t.Fatalf("want late-join rejection, got %v", err)
	}
}

// A world-size mismatch is a config error, not a hang.
func TestJoinWorldMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	c0, err := NewCluster(testClusterConfig(dir, 0, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	cfg := testClusterConfig(dir, 1, 3)
	cfg.World = 2
	// Rank 1 is valid in both worlds; only the world field disagrees.
	_, err = NewCluster(cfg)
	if err == nil || !strings.Contains(err.Error(), "world size mismatch") {
		t.Fatalf("want world-mismatch rejection, got %v", err)
	}
}

// Garbage, truncated preambles and unexpected frame kinds on the listener
// are counted and dropped without wedging the acceptor: a well-formed join
// still succeeds afterwards.
func TestHandshakeJunkDoesNotWedgeAcceptor(t *testing.T) {
	dir := t.TempDir()
	cfg0 := testClusterConfig(dir, 0, 2)
	cfg0.JoinTimeout = 2 * time.Second // bound the half-open preamble reads
	c0, err := NewCluster(cfg0)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()

	// Pure garbage: decodes as a bad magic.
	conn, err := net.Dial("unix", cfg0.Addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("this is not a frame at all, not even close......"))
	conn.Close()

	// A frame truncated mid-header.
	f := Frame{Kind: ctlHello, Src: 1, Payload: encodeHello(testClusterConfig(dir, 1, 2), "x")}
	enc := AppendFrame(nil, &f)
	conn, err = net.Dial("unix", cfg0.Addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write(enc[:FrameHeaderSize/2])
	conn.Close()

	// A valid frame of an unexpected kind.
	g := Frame{Kind: 0x0042, Src: 1}
	conn, err = net.Dial("unix", cfg0.Addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write(AppendFrame(nil, &g))
	conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for c0.Transport().Stats().HandshakeFailures < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("handshake failures = %d, want >= 3", c0.Transport().Stats().HandshakeFailures)
		}
		time.Sleep(time.Millisecond)
	}

	// The acceptor still serves a real join.
	c1, err := NewCluster(testClusterConfig(dir, 1, 2))
	if err != nil {
		t.Fatalf("valid join after junk: %v", err)
	}
	defer c1.Close()
}

// A rank that goes silent (its process died) is detected over the real wire
// by rank 0's heartbeat monitor, and the verdict reaches every survivor.
func TestHeartbeatDeathDetection(t *testing.T) {
	fast := func(cfg *ClusterConfig) {
		cfg.Heartbeat = FailureDetectorConfig{Interval: 10 * time.Millisecond, MissedBeats: 4}
	}
	verdicts := make(chan [2]int, 4)
	cls := startTestCluster(t, t.TempDir(), 3, fast, func(rank int, c *Cluster) {
		if rank < 2 {
			r := rank
			c.OnDeath(func(dead, epoch int) { verdicts <- [2]int{r, dead} })
		}
	})

	// Rank 2 "dies": its heartbeats stop, its sockets close.
	cls[2].Close()
	cls[2] = nil

	want := map[int]bool{0: false, 1: false}
	deadline := time.After(5 * time.Second)
	for !want[0] || !want[1] {
		select {
		case v := <-verdicts:
			if v[1] != 2 {
				t.Fatalf("rank %d got verdict for rank %d, want 2", v[0], v[1])
			}
			want[v[0]] = true
		case <-deadline:
			t.Fatalf("verdicts seen: rank0=%v rank1=%v", want[0], want[1])
		}
	}
	if cls[0].Alive(2) || cls[1].Alive(2) {
		t.Fatal("rank 2 still marked alive after the verdict")
	}
	if cls[0].Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", cls[0].Epoch())
	}
}

// A broken data-plane connection is redialed (with a fresh ATTACH preamble)
// and counted as a reconnect; frames lost with the old connection surface
// as wire loss, not as an error.
func TestWriterReconnect(t *testing.T) {
	cl := &Cluster{cfg: testClusterConfig(t.TempDir(), 1, 2).withDefaults()}
	cl.cfg.Network = "tcp"
	tp := newSocketTransport(cl)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	defer tp.close()

	attaches := make(chan Frame, 4)
	//dashmm:detached acceptor exits when the listener closes (deferred above)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			//dashmm:detached per-conn reader exits on its conn's EOF; the test closes the first conn itself and tp.close tears down the rest
			go func(conn net.Conn) {
				br := bufio.NewReader(conn)
				first, err := ReadFrame(br)
				if err != nil {
					conn.Close()
					return
				}
				attaches <- first
				// Read one data frame, then hang up mid-stream: everything
				// the writer had queued or in flight is lost.
				if _, err := ReadFrame(br); err == nil {
					conn.Close()
					return
				}
				conn.Close()
			}(conn)
		}
	}()

	var dead [2]atomic.Bool
	tp.setPeers([]string{ln.Addr().String(), ""}, dead[:])

	// The writer dials lazily — the ATTACH preamble rides ahead of the first
	// queued batch — so keep offering frames until both the initial attach
	// and, after the acceptor hangs up mid-stream, the re-attach arrive.
	deadline := time.Now().Add(10 * time.Second)
	var seq uint64
	for seen := 0; seen < 2; {
		seq++
		tp.Send(Message{Src: 1, Dst: 0, Seq: seq, Kind: 7, Payload: []byte("probe")})
		select {
		case f := <-attaches:
			if f.Kind != ctlAttach {
				t.Fatalf("preamble frame kind %#x, want ATTACH", f.Kind)
			}
			seen++
		case <-time.After(5 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatalf("saw %d attaches, no reconnect; stats %+v", seen, tp.Stats())
		}
	}
	if got := tp.Stats().Reconnects; got < 1 {
		t.Fatalf("Reconnects = %d, want >= 1", got)
	}
}
