// Quickstart: evaluate the Laplace potential of 20k random charges at 20k
// target points with the advanced (merge-and-shift) FMM on the AMT runtime,
// and verify a few values against direct summation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"runtime"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/points"
)

func main() {
	const n = 20000

	// 1. Make a problem: sources, targets, charges.
	sources := points.Generate(points.Cube, n, 1)
	targets := points.Generate(points.Cube, n, 2)
	charges := points.Charges(n, 3)

	// 2. Pick a kernel and an accuracy (the paper's setting: 3 digits).
	k := kernel.NewLaplace(kernel.OrderForDigits(3))

	// 3. Build a plan (tree + interaction lists + explicit DAG). Plans are
	// reusable across charge vectors.
	plan, err := core.NewPlan(sources, targets, k, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %d DAG nodes, %d edges, tree depth %d\n",
		len(plan.Graph.Nodes), plan.Graph.NumEdges(), plan.Target.MaxLevel)

	// 4. Evaluate on the AMT runtime.
	pot, rep, err := plan.Evaluate(charges, core.ExecOptions{
		Workers: runtime.GOMAXPROCS(0),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evaluated %d potentials in %v (%s)\n", len(pot), rep.Elapsed, rep.Runtime)

	// 5. Check a sample against the exact O(N^2) sum.
	idx := []int{0, n / 3, n - 1}
	exact := baseline.DirectSample(k, sources, charges, targets, idx)
	var worst float64
	for _, i := range idx {
		rel := math.Abs(pot[i]-exact[i]) / math.Abs(exact[i])
		fmt.Printf("target %5d: fmm=%+.6f exact=%+.6f rel.err=%.1e\n", i, pot[i], exact[i], rel)
		if rel > worst {
			worst = rel
		}
	}
	if worst < 1e-3 {
		fmt.Println("3-digit accuracy: OK")
	} else {
		fmt.Printf("accuracy miss: %.2e\n", worst)
	}
}
