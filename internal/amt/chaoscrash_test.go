// Crash-recovery chaos harness: the PR 3 counterpart of TestChaosProfiles.
// Full multipole evaluations (cube/sphere x Laplace/Yukawa) with one of
// four localities killed at 25/50/75% DAG progress — plus a combined
// profile layering the crash on the PR 2 acceptance wire (drops, dups,
// reorder, slow rank) — gated at 1e-12 relative against the fault-free
// potentials. Run the full matrix with `make chaos-crash`; `go test -short`
// (the ci target) keeps one mid-run crash point and the combined profile.
package amt_test

import (
	"testing"
	"time"

	"repro/internal/amt"
	"repro/internal/core"
	"repro/internal/points"
)

// chaosCrashDetector: quick beats so the harness spends milliseconds, not
// seconds, inside the detection window.
func chaosCrashDetector() *amt.FailureDetectorConfig {
	return &amt.FailureDetectorConfig{Interval: time.Millisecond, MissedBeats: 8}
}

type chaosCrashCase struct {
	name  string
	at    float64
	wired bool // layer the PR 2 acceptance wire profile under the crash
}

func chaosCrashCases(short bool) []chaosCrashCase {
	if short {
		return []chaosCrashCase{
			{name: "kill50", at: 0.50},
			{name: "kill50+wire", at: 0.50, wired: true},
		}
	}
	return []chaosCrashCase{
		{name: "kill25", at: 0.25},
		{name: "kill50", at: 0.50},
		{name: "kill75", at: 0.75},
		{name: "kill50+wire", at: 0.50, wired: true},
	}
}

// TestChaosCrash is the crash-recovery chaos entry point.
func TestChaosCrash(t *testing.T) {
	n := 1500
	if chaosRace {
		n = 800
	}
	cases := chaosCrashCases(testing.Short() || chaosRace)

	for _, wl := range chaosWorkloads() {
		wl := wl
		t.Run(wl.name, func(t *testing.T) {
			sp := points.Generate(wl.dist, n, 1)
			tp := points.Generate(wl.dist, n, 2)
			q := points.Charges(n, 3)
			plan, err := core.NewPlan(sp, tp, wl.kern(), core.Options{Threshold: 40})
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := plan.Evaluate(q, core.ExecOptions{
				Localities: chaosLocalities, Workers: chaosWorkers, Seed: 99,
			})
			if err != nil {
				t.Fatalf("fault-free reference run: %v", err)
			}

			for _, tc := range cases {
				tc := tc
				t.Run(tc.name, func(t *testing.T) {
					opts := core.ExecOptions{
						Localities: chaosLocalities, Workers: chaosWorkers, Seed: 99,
						Detector: chaosCrashDetector(),
						Crash:    []core.CrashPlan{{Rank: 1, At: tc.at}},
					}
					if tc.wired {
						opts.Fault = &amt.FaultProfile{
							Seed: 42,
							Drop: 0.10, Duplicate: 0.10,
							Reorder: true, ReorderJitter: time.Millisecond,
							SlowRank: 2, SlowDelay: 3 * time.Millisecond,
						}
						opts.Delivery = chaosDelivery()
					}
					got, rep, err := plan.Evaluate(q, opts)
					if err != nil {
						t.Fatalf("%s under %s: %v", wl.name, tc.name, err)
					}
					assertChaosClose(t, got, want)

					r := rep.Recovery
					t.Logf("%s/%s: %s", wl.name, tc.name, r)
					if r.RanksKilled != 1 || r.Recoveries != 1 {
						t.Errorf("killed=%d recoveries=%d, want 1/1", r.RanksKilled, r.Recoveries)
					}
					// NodesRebuilt is logged, not asserted: a kill can
					// legitimately rebuild nothing when the verdict lands
					// after the dead rank's nodes have all discharged (a
					// loaded machine stretches the detection window). The
					// kill/recovery counters above are deterministic — the
					// crash tombstone guarantees the verdict fires.
					if r.RecoveryWall <= 0 {
						t.Error("recovery wall time not recorded")
					}
					if tc.wired && rep.Runtime.Transport.Retried == 0 {
						t.Error("wired profile observed no retry")
					}
				})
			}
		})
	}
}
