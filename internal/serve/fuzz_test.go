package serve

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/kernel"
	"repro/internal/tree"
)

// FuzzJobSpec drives the control-plane job codec with arbitrary bytes.
// Decode must never panic; a spec it accepts must reach a fixpoint after
// one canonicalizing round trip (the first decode may normalize, e.g. an
// explicit empty pre_dead list re-encodes as absent, but after that the
// encoding must be stable).
func FuzzJobSpec(f *testing.F) {
	f.Add((&jobSpec{
		Gen: 1, Distribution: "cube", N: 64, Seed: 1,
		Kernel: "laplace", Digits: 3, Threshold: 40, RunSeed: 1, TimeoutMS: 500,
	}).encode())
	f.Add((&jobSpec{
		Gen: 2, PreDead: []int{1, 3}, Distribution: "sphere", N: 10, Seed: 3,
		Kernel: "yukawa", Lambda: 2.5, Digits: 6, Threshold: 10, RunSeed: 4, TimeoutMS: 100,
	}).encode())
	f.Add([]byte(`{"gen":7,"pre_dead":[],"n":-1,"lambda":1e300}`))
	f.Add([]byte(`{"gen":`))

	f.Fuzz(func(t *testing.T, data []byte) {
		j1, err := decodeJobSpec(data)
		if err != nil {
			return
		}
		canon := j1.encode()
		j2, err := decodeJobSpec(canon)
		if err != nil {
			t.Fatalf("re-decoding an encoding the codec produced: %v", err)
		}
		if enc2 := j2.encode(); !bytes.Equal(canon, enc2) {
			t.Fatalf("encoding not a fixpoint:\n first %s\nsecond %s", canon, enc2)
		}
		j3, err := decodeJobSpec(j2.encode())
		if err != nil {
			t.Fatalf("third decode: %v", err)
		}
		if !reflect.DeepEqual(j2, j3) {
			t.Fatalf("round-trip mismatch: %+v != %+v", j2, j3)
		}
	})
}

// FuzzStoreLoad drives the DMMP record payload codec. Decode must never
// panic, and a record it accepts must re-encode to a stable byte string:
// floats and complexes travel as raw IEEE bits (NaN payloads included), so
// the comparison is over encodings, which is bitwise, not over values,
// which NaN would break.
func FuzzStoreLoad(f *testing.F) {
	rec := &PlanRecord{
		Key:  "laplace/cube/64",
		Spec: Request{Distribution: "cube", N: 64, Seed: 1, Kernel: "laplace", Digits: 3},
		Source: tree.Skeleton{
			Domain: geom.Cube{Low: geom.Point{X: -1, Y: -1, Z: -1}, Side: 2},
			Perm:   []int{1, 0, 2},
			Boxes: []tree.SkeletonBox{
				{Index: geom.Index{Level: 0}, Lo: 0, Hi: 3},
				{Index: geom.Index{Level: 1, X: 1, Y: 0, Z: 1}, Lo: 0, Hi: 2},
			},
		},
		Target: tree.Skeleton{
			Domain: geom.Cube{Side: 1},
			Perm:   []int{0},
			Boxes:  []tree.SkeletonBox{{Lo: 0, Hi: 1}},
		},
		Ops: []kernel.OperatorTable{
			{Kind: 1, SideBits: 0x3ff0000000000000, DX: 1, DY: -1, DZ: 0,
				Mx: []complex128{complex(1.5, -2.5), complex(0, 3)}},
		},
	}
	f.Add(appendRecord(nil, rec))
	f.Add(appendRecord(nil, &PlanRecord{Key: "k", Spec: Request{}}))
	// Truncated and key-less corruptions.
	full := appendRecord(nil, rec)
	f.Add(full[:len(full)-5])
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec1, err := decodeRecord(data)
		if err != nil {
			return
		}
		enc1 := appendRecord(nil, rec1)
		rec2, err := decodeRecord(enc1)
		if err != nil {
			t.Fatalf("re-decoding an encoding the codec produced: %v", err)
		}
		enc2 := appendRecord(nil, rec2)
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encoding not a fixpoint: %d vs %d bytes", len(enc1), len(enc2))
		}
	})
}
