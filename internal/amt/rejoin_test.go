package amt

import (
	"sync"
	"testing"
	"time"
)

// A rank that died (heartbeat verdict) can rejoin: the coordinator
// re-admits it, bumps the wire generation, broadcasts the new membership to
// the survivors, and data flows again across the whole world.
func TestRejoinReadmission(t *testing.T) {
	dir := t.TempDir()
	fast := func(cfg *ClusterConfig) {
		cfg.Heartbeat = FailureDetectorConfig{Interval: 10 * time.Millisecond, MissedBeats: 6}
	}
	rejoined := make(chan [2]uint32, 1)
	cls := startTestCluster(t, dir, 3, fast, nil)
	cls[0].OnRejoin(func(rank int, gen uint32) {
		rejoined <- [2]uint32{uint32(rank), gen}
	})

	// Rank 1 dies; rank 0's monitor issues the verdict.
	cls[1].Close()
	select {
	case ev := <-cls[0].Deaths():
		if ev.Rank != 1 {
			t.Fatalf("verdict for rank %d, want 1", ev.Rank)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no death verdict for rank 1")
	}

	// A fresh incarnation rejoins. NewCluster's handshake waits out the
	// transient rejects (verdict racing the REJOIN) internally.
	cfg := testClusterConfig(dir, 1, 3)
	fast(&cfg)
	cfg.Rejoin = true
	nc, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	cls[1] = nc // Cleanup closes it
	if err := nc.Start(); err != nil {
		t.Fatalf("rejoin start: %v", err)
	}

	select {
	case ev := <-rejoined:
		if ev[0] != 1 || ev[1] != 1 {
			t.Fatalf("OnRejoin(rank=%d, gen=%d), want (1, 1)", ev[0], ev[1])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnRejoin never fired on rank 0")
	}
	if !cls[0].Alive(1) {
		t.Fatal("rank 1 still marked dead on rank 0 after re-admission")
	}
	if got := nc.Generation(); got != 1 {
		t.Fatalf("rejoiner generation = %d, want 1", got)
	}

	// The survivors adopt the new generation via the membership broadcast.
	deadline := time.Now().Add(5 * time.Second)
	for cls[2].Generation() != 1 || !cls[2].Alive(1) {
		if time.Now().After(deadline) {
			t.Fatalf("rank 2 never adopted gen 1 (gen=%d alive1=%v)",
				cls[2].Generation(), cls[2].Alive(1))
		}
		time.Sleep(time.Millisecond)
	}

	// Data flows at the new generation: fresh rank 1 -> survivor rank 2.
	var mu sync.Mutex
	var got []Frame
	cls[2].Transport().OnFrame(func(f Frame) {
		mu.Lock()
		got = append(got, f)
		mu.Unlock()
	})
	cls[1].Transport().Send(Message{Src: 1, Dst: 2, Seq: 9, Kind: 7, Epoch: 42, Payload: []byte("hello again")})
	deadline = time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		var f Frame
		if n > 0 {
			f = got[0]
		}
		mu.Unlock()
		if n > 0 {
			// The wire generation is stripped back off before delivery.
			if f.Epoch != 42 || string(f.Payload) != "hello again" {
				t.Fatalf("delivered frame = %+v", f)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("post-rejoin frame 1→2 never arrived")
		}
		time.Sleep(time.Millisecond)
	}
}

// A second incarnation is refused while the first is still alive: rejoin
// only re-admits ranks with a standing death verdict.
func TestRejoinWithoutVerdictRejected(t *testing.T) {
	dir := t.TempDir()
	startTestCluster(t, dir, 2, nil, nil)
	cfg := testClusterConfig(dir, 1, 2)
	cfg.Rejoin = true
	cfg.JoinTimeout = 500 * time.Millisecond
	if nc, err := NewCluster(cfg); err == nil {
		nc.Close()
		t.Fatal("rejoin admitted while the first incarnation is alive")
	}
}

// Frames stamped with a stale wire generation are dropped at the receiver
// (counted, never delivered); frames at the adopted generation flow.
func TestGenerationFenceDropsStaleFrames(t *testing.T) {
	cls := startTestCluster(t, t.TempDir(), 2, nil, nil)
	var mu sync.Mutex
	var got []Frame
	cls[0].Transport().OnFrame(func(f Frame) {
		mu.Lock()
		got = append(got, f)
		mu.Unlock()
	})

	// Rank 0 has moved to generation 1; rank 1 still stamps generation 0.
	cls[0].AdoptGeneration(1)
	cls[1].Transport().Send(Message{Src: 1, Dst: 0, Seq: 1, Kind: 7, Payload: []byte("stale")})
	deadline := time.Now().Add(5 * time.Second)
	for cls[0].Transport().Stats().StaleFenced == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stale frame was never fenced")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	if len(got) != 0 {
		t.Fatalf("stale frame delivered: %+v", got)
	}
	mu.Unlock()

	// Rank 1 adopts the generation; its next frame passes the fence.
	cls[1].AdoptGeneration(1)
	cls[1].Transport().Send(Message{Src: 1, Dst: 0, Seq: 2, Kind: 7, Epoch: 7, Payload: []byte("fresh")})
	deadline = time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		var f Frame
		if n > 0 {
			f = got[0]
		}
		mu.Unlock()
		if n > 0 {
			if string(f.Payload) != "fresh" || f.Epoch != 7 {
				t.Fatalf("delivered frame = %+v", f)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fresh frame never arrived")
		}
		time.Sleep(time.Millisecond)
	}
}
