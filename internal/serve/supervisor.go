package serve

import (
	"math/rand"
	"os"
	"sync"
	"time"

	"repro/internal/amt"
)

// Supervision: rank 0 watches the cluster's death-verdict feed and brings
// dead ranks back. The state machine per rank is
//
//	starting → up → (verdict) → respawning → up        (re-admitted)
//	                          ↘ dead                   (budget exhausted)
//
// A respawn attempt forks a fresh worker process with the REJOIN flag; the
// cluster admits it between jobs, bumps the wire generation and broadcasts
// the new membership (cluster.go). Failures are "strikes" in a sliding
// window — death verdicts and failed respawn attempts both count — and a
// rank striking out is abandoned: its state pins to "dead" and the circuit
// breaker is forced open, flipping the server into degraded mode until an
// operator intervenes or a later re-admission succeeds.

// rankState is the supervisor's view of one worker rank.
type rankState struct {
	rank int

	mu       sync.Mutex
	state    string      // guarded by mu: starting | up | respawning | dead
	restarts int64       // guarded by mu: successful re-admissions
	strikes  []time.Time // guarded by mu: sliding-window failure times
	lastDied time.Time   // guarded by mu: latest death verdict (zero: never)

	proc   *os.Process   // guarded by mu: current incarnation
	exited chan struct{} // guarded by mu: closed when proc is reaped

	admitMu  sync.Mutex
	admitted chan uint32 // guarded by admitMu: signaled by OnRejoin
}

func (rs *rankState) setState(s string) {
	rs.mu.Lock()
	rs.state = s
	rs.mu.Unlock()
}

func (rs *rankState) setProc(p *os.Process, exited chan struct{}) {
	rs.mu.Lock()
	rs.proc = p
	rs.exited = exited
	rs.mu.Unlock()
}

// strike records one failure and reports whether the budget is exhausted.
func (rs *rankState) strike(budget int, window time.Duration) bool {
	now := time.Now()
	rs.mu.Lock()
	defer rs.mu.Unlock()
	keep := rs.strikes[:0]
	for _, t := range rs.strikes {
		if now.Sub(t) <= window {
			keep = append(keep, t)
		}
	}
	rs.strikes = append(keep, now)
	return len(rs.strikes) > budget
}

// kill SIGKILLs the current incarnation (idempotent, tolerant of exited
// processes).
func (rs *rankState) kill() {
	rs.mu.Lock()
	p := rs.proc
	rs.mu.Unlock()
	if p != nil {
		p.Kill()
	}
}

// reap waits (until deadline) for the current incarnation to exit, then
// SIGKILLs and waits again. Used by Pool.Close so no worker outlives the
// daemon.
func (rs *rankState) reap(deadline time.Time) {
	rs.mu.Lock()
	exited := rs.exited
	rs.mu.Unlock()
	if exited == nil {
		return
	}
	select {
	case <-exited:
		return
	case <-time.After(time.Until(deadline)):
	}
	rs.kill()
	<-exited
}

// armAdmission installs a fresh admission channel for one respawn attempt.
func (rs *rankState) armAdmission() chan uint32 {
	ch := make(chan uint32, 1)
	rs.admitMu.Lock()
	rs.admitted = ch
	rs.admitMu.Unlock()
	return ch
}

// noteAdmitted signals the armed respawn attempt, if any.
func (rs *rankState) noteAdmitted(gen uint32) {
	rs.admitMu.Lock()
	ch := rs.admitted
	rs.admitted = nil
	rs.admitMu.Unlock()
	if ch != nil {
		ch <- gen
	}
}

func (rs *rankState) health(now time.Time, window time.Duration) RankHealth {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	live := 0
	for _, t := range rs.strikes {
		if now.Sub(t) <= window {
			live++
		}
	}
	age := int64(-1)
	if !rs.lastDied.IsZero() {
		age = now.Sub(rs.lastDied).Milliseconds()
	}
	pid := 0
	if rs.proc != nil {
		pid = rs.proc.Pid
	}
	return RankHealth{
		Rank:             rs.rank,
		State:            rs.state,
		PID:              pid,
		Restarts:         rs.restarts,
		Strikes:          live,
		LastVerdictAgeMS: age,
	}
}

// supervise is the pool's supervisor loop: one goroutine consuming the
// verdict feed and dispatching respawns.
//
//dashmm:detached exits on p.quit; Pool.Close closes quit and p.wg.Wait joins
func (p *Pool) supervise() {
	defer p.wg.Done()
	for {
		select {
		case <-p.quit:
			return
		case ev := <-p.cl.Deaths():
			p.onWorkerDeath(ev)
		}
	}
}

// onWorkerDeath handles one death verdict: strike the rank and either
// launch its respawn loop or abandon it.
//
//dashmm:detached respawnLoop exits on p.quit or at admission/abandonment; Pool.Close closes quit and p.wg.Wait joins
func (p *Pool) onWorkerDeath(ev amt.DeathEvent) {
	if ev.Rank < 1 || ev.Rank >= len(p.ranks) {
		return
	}
	rs := p.ranks[ev.Rank]
	rs.mu.Lock()
	if rs.state == "respawning" || rs.state == "dead" {
		// Already being handled (a re-verdict against a failed respawn's
		// half-admitted incarnation lands here).
		rs.mu.Unlock()
		return
	}
	rs.state = "respawning"
	rs.lastDied = time.Now()
	rs.mu.Unlock()
	if rs.strike(p.cfg.RestartBudget, p.cfg.RestartWindow) {
		p.abandon(rs)
		return
	}
	p.wg.Add(1)
	go p.respawnLoop(rs)
}

// respawnLoop brings one dead rank back: full-jitter exponential backoff
// between attempts, a strike per failure, abandonment when the budget is
// exhausted.
//
//dashmm:detached exits on p.quit or when the rank is admitted/abandoned; Pool.Close closes quit and p.wg.Wait joins
func (p *Pool) respawnLoop(rs *rankState) {
	defer p.wg.Done()
	rng := rand.New(rand.NewSource(int64(rs.rank)*2_654_435_761 + time.Now().UnixNano()))
	backoff := p.cfg.BackoffBase
	for {
		// Full jitter: sleep U[0, backoff] so N ranks respawning at once
		// do not hammer the coordinator in lockstep.
		sleep := time.Duration(rng.Int63n(int64(backoff) + 1))
		select {
		case <-p.quit:
			return
		case <-time.After(sleep):
		}
		if backoff *= 2; backoff > p.cfg.BackoffMax {
			backoff = p.cfg.BackoffMax
		}

		rs.kill() // make sure the previous incarnation is really gone
		admitted := rs.armAdmission()
		if err := p.spawn(rs, true); err != nil {
			if rs.strike(p.cfg.RestartBudget, p.cfg.RestartWindow) {
				p.abandon(rs)
				return
			}
			continue
		}
		rs.mu.Lock()
		exited := rs.exited
		rs.mu.Unlock()

		// The worker retries its REJOIN handshake internally (waiting out
		// "no verdict yet" and "job in flight" rejections) for its whole
		// JoinTimeout; give it that long plus slack before striking.
		wait := time.NewTimer(p.cfg.JoinTimeout + 5*time.Second)
		select {
		case <-p.quit:
			wait.Stop()
			return
		case gen := <-admitted:
			wait.Stop()
			rs.mu.Lock()
			rs.state = "up"
			rs.restarts++
			rs.mu.Unlock()
			// A successful re-admission after an abandon elsewhere proves
			// the fabric heals; only the forced-open state is cleared, an
			// organically-open breaker still waits out its cooldown.
			p.breaker.reset()
			_ = gen
			return
		case <-exited:
			// The incarnation died before being admitted (crash-looping
			// worker): strike immediately instead of waiting out the
			// admission timer.
			wait.Stop()
		case <-wait.C:
			// Spawned but never admitted within the window.
		}
		if rs.strike(p.cfg.RestartBudget, p.cfg.RestartWindow) {
			p.abandon(rs)
			return
		}
	}
}

// abandon gives up on a rank: budget exhausted, state pinned dead, breaker
// forced open.
func (p *Pool) abandon(rs *rankState) {
	rs.kill()
	rs.setState("dead")
	p.breaker.forceOpen()
}

// noteRejoin is the cluster's OnRejoin callback: a respawned rank completed
// its REJOIN handshake.
func (p *Pool) noteRejoin(rank int, gen uint32) {
	if rank < 1 || rank >= len(p.ranks) {
		return
	}
	p.ranks[rank].noteAdmitted(gen)
}
