package sim

import (
	"repro/internal/dag"
	"repro/internal/trace"
)

// Calibrate derives a cost model from a real traced execution of the same
// graph: for each operator class, the measured total time divided by the
// total work units of that class in the graph (the Table II methodology:
// average execution time per operation, here normalized per unit so costs
// extrapolate across problem sizes).
func Calibrate(g *dag.Graph, events []trace.Event) CostModel {
	var unitSum [dag.NumOpKinds]float64
	for i := range g.Nodes {
		n := &g.Nodes[i]
		for _, e := range n.Out {
			unitSum[e.Op] += Units(g, n, e)
		}
	}
	var timeSum [dag.NumOpKinds]float64
	for _, ev := range events {
		if int(ev.Class) < len(timeSum) {
			timeSum[ev.Class] += float64(ev.End - ev.Start)
		}
	}
	m := CostModel{TaskOverhead: 300}
	for op := 0; op < int(dag.NumOpKinds); op++ {
		if unitSum[op] > 0 && timeSum[op] > 0 {
			m.OpNanos[op] = timeSum[op] / unitSum[op]
		}
	}
	return m
}

// PaperCostModel returns per-unit costs derived from the measured averages
// in Table II of the paper (a 128-core Big Red II run of the Laplace
// kernel, threshold 60, ~14 points per leaf on average), plus a Gemini-like
// network. Use it to replay the paper's machine balance; use Calibrate for
// this machine's balance.
func PaperCostModel() CostModel {
	const leafPts = 14.0 // 30M points / 2.1M leaves
	var m CostModel
	m.OpNanos[dag.OpS2T] = 1890 / (leafPts * leafPts) // 1.89 us per leaf pair
	m.OpNanos[dag.OpS2M] = 10900 / leafPts            // 10.9 us per leaf
	m.OpNanos[dag.OpM2M] = 4600
	m.OpNanos[dag.OpM2I] = 29600
	m.OpNanos[dag.OpI2I] = 1750
	m.OpNanos[dag.OpI2L] = 38400
	m.OpNanos[dag.OpL2L] = 4450
	m.OpNanos[dag.OpL2T] = 13500 / leafPts
	// Not measured in the paper (absent from Table II for cube data);
	// plausible values in the same balance.
	m.OpNanos[dag.OpM2L] = 29600
	m.OpNanos[dag.OpS2L] = 10900 / leafPts
	m.OpNanos[dag.OpM2T] = 13500 / leafPts
	m.TaskOverhead = 1000
	// Effective software active-message latency of the HPX-5 + Photon
	// stack on Gemini (hardware RTT is ~1.5 us; the runtime's progress
	// engine and dynamic out-edge handling add the rest — the paper
	// attributes its ~10% utilization deficit to exactly these costs).
	m.LatencyNanos = 10000
	m.BytesPerNano = 6.0     // ~6 GB/s effective per-locality bandwidth
	m.RecvNanosPerByte = 1.0 // ~1 GB/s effective receive path (copy + dynamic allocation)
	return m
}

// YukawaScale scales every operator of a cost model by the given factor to
// emulate the heavier Yukawa grain size (the paper: "the specific
// operations for the Yukawa kernel are heavier than the equivalent for the
// Laplace kernel" — including the direct S->T interactions, which evaluate
// an exponential per pair). Task overhead and network costs are fixed costs
// of the runtime and do not scale, which is exactly why the paper sees
// better strong scaling for the heavier kernel.
func YukawaScale(m CostModel, factor float64) CostModel {
	for op := range m.OpNanos {
		m.OpNanos[op] *= factor
	}
	return m
}
