// Command traceview analyzes a trace written by the -trace-out flag of
// dashmm-bench (JSON lines of operator events): it prints the per-operator
// cost table (the Table II t_avg methodology) and the utilization profile
// of Section V-B, locating the starvation dip if present.
//
//	dashmm-bench -real -n 100000 -trace-out run.trace
//	traceview -workers 4 run.trace
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"repro/internal/dag"
	"repro/internal/trace"
)

func main() {
	var (
		workers   = flag.Int("workers", 1, "scheduler thread count n of the traced run")
		intervals = flag.Int("intervals", 100, "number of uniform analysis intervals M")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceview [-workers n] [-intervals m] <trace-file>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	events, err := trace.ReadJSON(f)
	if err != nil {
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			log.Fatal(err)
		}
		// A truncated trace is still analyzable — warn and use the prefix.
		fmt.Fprintf(os.Stderr, "traceview: warning: %v (analyzing the %d complete events)\n", err, len(events))
	}
	if len(events) == 0 {
		log.Fatal("traceview: empty trace")
	}
	start, end := trace.Span(events)
	fmt.Printf("%d events over %.3f ms\n", len(events), float64(end-start)/1e6)

	fmt.Println("\nper-operator average execution time:")
	avg := trace.AvgMicrosByClass(events)
	counts := map[uint8]int{}
	for _, ev := range events {
		counts[ev.Class]++
	}
	var classes []int
	for c := range avg {
		classes = append(classes, int(c))
	}
	sort.Ints(classes)
	for _, c := range classes {
		fmt.Printf("  %-5v %10d x %10.2f µs\n", dag.OpKind(c), counts[uint8(c)], avg[uint8(c)])
	}
	// Transport/recovery markers are zero-duration occurrence counters and
	// are excluded from the averages; list their counts separately.
	var markers []int
	for c := range counts {
		if trace.NetClassName(c) != "" {
			markers = append(markers, int(c))
		}
	}
	if len(markers) > 0 {
		sort.Ints(markers)
		fmt.Println("\nmarker events:")
		for _, c := range markers {
			fmt.Printf("  %-17s %10d\n", trace.NetClassName(uint8(c)), counts[uint8(c)])
		}
	}

	u := trace.Analyze(events, *workers, *intervals, start, end)
	fmt.Printf("\nutilization profile (f_k, n=%d, M=%d):\n", *workers, *intervals)
	for k, v := range u.Total {
		bar := strings.Repeat("#", int(v*40+0.5))
		fmt.Printf("%3d %5.2f %s\n", k, v, bar)
	}
	if first, last, plateau, found := u.Starvation(0.7); found {
		fmt.Printf("\nstarvation dip: intervals %d-%d below the %.2f plateau (width %d%% of run)\n",
			first, last, plateau, (last-first+1)*100 / *intervals)
	} else {
		fmt.Println("\nno starvation dip detected")
	}
}
