package kernel

import (
	"math"

	"repro/internal/sphharm"
)

// NewYukawa returns the scale-variant Yukawa (screened Coulomb) kernel
// e^{-lambda r}/r with screening parameter lambda > 0 and truncation order
// p.
//
// The radial basis is normalized so it degenerates smoothly to the Laplace
// basis as lambda -> 0:
//
//	R_n(r) = i_n(lambda r) (2n+1)!! / lambda^n        (-> r^n)
//	O_n(r) = k_n(lambda r) 2 lambda^{n+1} / (pi (2n-1)!!)  (-> r^{-n-1})
//
// With this normalization the Gegenbauer addition theorem takes exactly the
// Laplace form with the same moment prefactor c_n = 4 pi/(2n+1), so the
// whole spherical-harmonic engine is shared and well conditioned at every
// tree depth.
func NewYukawa(p int, lambda float64) Kernel {
	if lambda <= 0 {
		panic("kernel: Yukawa lambda must be positive")
	}
	cn := make([]float64, p+1)
	dfOdd := make([]float64, p+2) // (2n+1)!! for n = -1..p at index n+1
	dfOdd[0] = 1                  // (2*(-1)+1)!! = (-1)!! = 1
	for n := 0; n <= p; n++ {
		cn[n] = 4 * math.Pi / float64(2*n+1)
		dfOdd[n+1] = dfOdd[n] * float64(2*n+1)
	}
	b := newBase("yukawa", p,
		func(r float64, out []float64) { // R_n = i_n(lr) (2n+1)!!/l^n
			x := lambda * r
			sphharm.BesselI(p, x, out)
			ln := 1.0
			for n := 0; n <= p; n++ {
				out[n] *= dfOdd[n+1] / ln
				ln *= lambda
			}
		},
		func(r float64, out []float64) { // O_n = k_n(lr) 2 l^{n+1}/(pi (2n-1)!!)
			x := lambda * r
			sphharm.BesselK(p, x, out)
			ln := lambda
			for n := 0; n <= p; n++ {
				out[n] *= 2 * ln / (math.Pi * dfOdd[n])
				ln *= lambda
			}
		},
		cn)
	b.directF = func(r float64) float64 { return math.Exp(-lambda*r) / r }
	b.gradF = func(r float64) float64 {
		// d/dr e^{-lr}/r = -e^{-lr} (l r + 1) / r^2
		return -math.Exp(-lambda*r) * (lambda*r + 1) / (r * r)
	}
	b.p2pF = yukawaP2PTile(lambda)
	b.pwParams = defaultPWParams
	b.pwNodes = func(side float64) (u, mu, w []float64) {
		return yukawaNodes(lambda*side, b.pwParams)
	}
	b.wsp = newWSChan(b)
	return b
}
