package amt

import (
	"sync"
	"time"

	"repro/internal/trace"
)

// FailureDetectorConfig arms the runtime's heartbeat failure detector.
//
// Every live locality emits a heartbeat each Interval; a monitor declares a
// rank dead once its last heartbeat is older than Interval × MissedBeats.
// This is the classic heartbeat detector (the fixed-threshold special case
// of a phi-accrual detector): it is complete (a crashed rank stops beating
// and is eventually declared) but only eventually accurate (a wild
// threshold misjudges a slow rank). The runtime makes false positives
// harmless by fencing: the verdict path *kills* the suspected rank before
// anyone acts on the suspicion, so by the time OnFailure handlers run the
// rank really is dead and recovery is always sound.
//
// Heartbeats travel out-of-band, not over the (possibly faulty) parcel
// Transport — the stand-in for the dedicated, reliable control network most
// clusters run their membership service on. DESIGN.md records this
// simplification.
//
// Scope: in this in-process simulation a locality only stops beating when
// it has been explicitly crashed (Kill / the crash injector), so the
// detector confirms injected or fenced crashes after the missed-beat
// threshold — it never declares a live-but-wedged rank dead (the monitor
// refreshes live ranks' beats itself; see startDetector). The defense
// against a live-but-stuck run is ExecOptions.StallWindow, the evaluation
// watchdog.
type FailureDetectorConfig struct {
	// Interval between heartbeats (default 1ms).
	Interval time.Duration
	// MissedBeats before a silent rank is declared dead (default 8).
	MissedBeats int
}

func (c FailureDetectorConfig) withDefaults() FailureDetectorConfig {
	if c.Interval <= 0 {
		c.Interval = time.Millisecond
	}
	if c.MissedBeats <= 0 {
		c.MissedBeats = 8
	}
	return c
}

// OnFailure registers a handler invoked (on the detector goroutine) each
// time a rank is declared dead. By the time a handler runs the rank has been
// fenced — killed and severed from the transport — so handlers may safely
// reassign its work. Handlers must be registered before Run starts; the
// registration is not synchronized against a running detector.
func (rt *Runtime) OnFailure(h func(rank int)) {
	rt.handlers = append(rt.handlers, h)
}

// Dead reports whether a rank has crashed (injected or fenced).
func (rt *Runtime) Dead(rank int) bool {
	return rt.killable && rt.locs[rank].dead.Load()
}

// TasksExecuted returns the number of tasks run so far. Watchdogs sample it
// as a cheap progress indicator.
func (rt *Runtime) TasksExecuted() int64 { return rt.tasksRun.Load() }

// Kill crashes a locality at a task boundary: its dead flag stops and
// drains its workers, its inboxes close (queued tasks are dropped, racing
// spawns rejected), and all future spawns and parcels addressed to it are
// discarded — the software moral equivalent of yanking the node's power.
// Tasks already executing finish their current invocation (a finer-grained
// model would need preemption Go does not offer); DESIGN.md argues why
// task-boundary crashes still exercise every recovery path that matters.
//
// Kill requires a configured failure detector: the crash leaves the DAG
// permanently short of triggers, so without a detector (and a recovery
// handler) the run would hang. It panics if Config.Detector was nil.
// Idempotent; safe from any goroutine.
func (rt *Runtime) Kill(rank int) {
	if !rt.killable {
		panic("amt: Kill requires Config.Detector (a crash without detection hangs the run)")
	}
	loc := rt.locs[rank]
	if !loc.dead.CompareAndSwap(false, true) {
		return
	}
	// Tombstone: hold one pending unit from the crash until the detector
	// verdict has run its handlers, so the runtime cannot conclude the run
	// is complete inside the detection window (the crash may have destroyed
	// the only remaining work; completion must wait for recovery's say).
	rt.pending.Add(1)
	rt.ranksKilled.Add(1)
	for _, w := range loc.workers {
		dropped := w.in.close()
		if dropped > 0 {
			rt.tasksDropped.Add(int64(dropped))
			for i := 0; i < dropped; i++ {
				rt.finish()
			}
		}
	}
	if tr := rt.cfg.Tracer; tr.Enabled() {
		now := tr.Now()
		tr.RecordVirtual(trace.Event{Class: trace.ClassRecoveryKill, Locality: int32(rank), Start: now, End: now})
	}
}

// startDetector launches the heartbeat monitor goroutine; the returned
// function stops and joins it. A no-op when no detector is configured.
//
// The monitor collects each rank's heartbeat and checks the missed-beat
// threshold on the same tick: a live rank's beat is observed directly (the
// out-of-band control network is reliable and, in one process, free),
// while a crashed rank stops beating and crosses the threshold after
// MissedBeats intervals. Folding beat emission into the monitor rather
// than running one ticker goroutine per rank keeps Go scheduler jank —
// busy workers starving a ticker for tens of milliseconds — from
// masquerading as a rank death: a delayed monitor tick delays beats and
// verdicts equally, so detection latency still follows the configured
// threshold but false positives cannot arise from CPU oversubscription
// the simulated cluster does not have.
func (rt *Runtime) startDetector() func() {
	if rt.det == nil {
		return func() {}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	now := time.Now().UnixNano()
	for i := range rt.lastBeat {
		rt.lastBeat[i].Store(now)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		thresh := int64(rt.det.Interval) * int64(rt.det.MissedBeats)
		tick := time.NewTicker(rt.det.Interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				now := time.Now().UnixNano()
				for r, loc := range rt.locs {
					if !loc.dead.Load() {
						rt.lastBeat[r].Store(now)
						continue
					}
					if rt.deadDeclared[r].Load() {
						continue
					}
					if now-rt.lastBeat[r].Load() > thresh {
						rt.declareDead(r)
					}
				}
			}
		}
	}()
	return func() {
		close(stop)
		wg.Wait()
	}
}

// declareDead issues the detector verdict for a rank, exactly once:
// fence (Kill — making even a false suspicion true before anyone acts on
// it), sever the rank's transport endpoints (stopping retransmission loops
// and refusing its traffic), record the marker event, run the registered
// OnFailure handlers, and finally release the crash tombstone so the run
// can complete once recovery's work drains.
func (rt *Runtime) declareDead(rank int) {
	if !rt.deadDeclared[rank].CompareAndSwap(false, true) {
		return
	}
	rt.Kill(rank)
	rt.net.sever(rank)
	if tr := rt.cfg.Tracer; tr.Enabled() {
		now := tr.Now()
		tr.RecordVirtual(trace.Event{Class: trace.ClassRecoveryDetect, Locality: int32(rank), Start: now, End: now})
	}
	for _, h := range rt.handlers {
		h(rank)
	}
	rt.finish() // release the Kill tombstone
}
