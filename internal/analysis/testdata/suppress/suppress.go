// Package suppress is a fixture for malformed //lint:ignore directives:
// each one below is missing its check list or its mandatory reason and must
// surface as a diagnostic of the pseudo-check "lint". The test asserts the
// exact lines directly (a want marker cannot share the directive's line).
package suppress

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// missingReason has a check list but no justification.
func missingReason(g *guarded) int {
	//lint:ignore lockguard
	return g.n
}

// missingEverything is the bare directive.
func missingEverything(g *guarded) int {
	//lint:ignore
	return g.n
}

// wellFormed is the control: a justified suppression that must NOT be
// reported, and must silence the lockguard diagnostic below it.
func wellFormed(g *guarded) int {
	//lint:ignore lockguard fixture control: stale read is acceptable here
	return g.n
}
