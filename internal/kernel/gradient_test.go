package kernel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// directGrad computes the reference gradient by the analytic pointwise
// derivative.
func directGrad(k GradKernel, spts []geom.Point, q []float64, tpts []geom.Point) []geom.Point {
	out := make([]geom.Point, len(tpts))
	b := k.(*base)
	for ti, t := range tpts {
		for si, s := range spts {
			g := b.DirectGrad(t, s)
			out[ti] = out[ti].Add(g.Scale(q[si]))
		}
	}
	return out
}

func gradRelErr(got, want []geom.Point) float64 {
	var num, den float64
	for i := range got {
		if d := got[i].Sub(want[i]).Norm(); d > num {
			num = d
		}
		if m := want[i].Norm(); m > den {
			den = m
		}
	}
	return num / den
}

func TestS2TGradMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, tc := range kernels(t) {
		k := tc.k.(GradKernel)
		spts := randBox(rng, geom.Point{X: 0.3, Y: 0.3, Z: 0.3}, 0.2, 20)
		q := randCharges(rng, 20)
		tpts := randBox(rng, geom.Point{X: 0.7, Y: 0.6, Z: 0.4}, 0.2, 15)
		pot := make([]float64, len(tpts))
		grad := make([]geom.Point, len(tpts))
		k.S2TGrad(spts, q, tpts, pot, grad)
		want := directGrad(k, spts, q, tpts)
		if e := gradRelErr(grad, want); e > 1e-12 {
			t.Errorf("%s: S2TGrad rel err %.2e", tc.name, e)
		}
		// And the potential part must equal the plain S2T.
		pot2 := make([]float64, len(tpts))
		k.S2T(spts, q, tpts, pot2)
		for i := range pot {
			if math.Abs(pot[i]-pot2[i]) > 1e-13*math.Abs(pot2[i]) {
				t.Fatalf("%s: potential drift in S2TGrad", tc.name)
			}
		}
	}
}

func TestM2TGradAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, tc := range kernels(t) {
		k := tc.k.(GradKernel)
		c := geom.Point{X: 0.5, Y: 0.5, Z: 0.5}
		spts := randBox(rng, c, 0.25, 30)
		q := randCharges(rng, 30)
		tpts := randBox(rng, c.Add(geom.Point{X: 0.5, Y: -0.25, Z: 0.25}), 0.25, 15)
		m := make([]complex128, k.MLSize())
		k.S2M(c, spts, q, m)
		pot := make([]float64, len(tpts))
		grad := make([]geom.Point, len(tpts))
		k.M2TGrad(c, m, tpts, pot, grad)
		want := directGrad(k, spts, q, tpts)
		if e := gradRelErr(grad, want); e > 3e-3 {
			t.Errorf("%s: M2TGrad rel err %.2e", tc.name, e)
		}
	}
}

func TestL2TGradAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for _, tc := range kernels(t) {
		k := tc.k.(GradKernel)
		c := geom.Point{X: 0.5, Y: 0.5, Z: 0.5}
		spts := randBox(rng, c.Add(geom.Point{X: -0.5, Y: 0.5, Z: 0.25}), 0.25, 30)
		q := randCharges(rng, 30)
		tpts := randBox(rng, c, 0.25, 15)
		l := make([]complex128, k.MLSize())
		k.S2L(c, spts, q, l)
		pot := make([]float64, len(tpts))
		grad := make([]geom.Point, len(tpts))
		k.L2TGrad(c, l, tpts, pot, grad)
		want := directGrad(k, spts, q, tpts)
		if e := gradRelErr(grad, want); e > 3e-3 {
			t.Errorf("%s: L2TGrad rel err %.2e", tc.name, e)
		}
	}
}
