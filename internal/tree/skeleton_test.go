package tree

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/points"
)

// A tree survives Skeleton -> FromSkeleton exactly: same boxes in the same
// BFS order, same geometry, same ranges, same reordered points, and the
// interaction lists built on the reconstruction match the original's.
func TestSkeletonRoundTripReconstructsTree(t *testing.T) {
	for _, dist := range []points.Distribution{points.Cube, points.Sphere, points.Plummer} {
		pts := points.Generate(dist, 3000, 5)
		dom := geom.BoundingCube(pts)
		orig := Build(pts, dom, 40)

		got, err := FromSkeleton(pts, orig.Skeleton())
		if err != nil {
			t.Fatalf("%v: FromSkeleton: %v", dist, err)
		}
		if got.Root == nil || got.Root != got.Boxes[0] {
			t.Fatalf("%v: root not wired to the first BFS box", dist)
		}
		if got.Domain != orig.Domain {
			t.Fatalf("%v: domain %+v, want %+v", dist, got.Domain, orig.Domain)
		}
		if got.MaxLevel != orig.MaxLevel {
			t.Errorf("%v: max level %d, want %d", dist, got.MaxLevel, orig.MaxLevel)
		}
		if len(got.Boxes) != len(orig.Boxes) {
			t.Fatalf("%v: %d boxes, want %d", dist, len(got.Boxes), len(orig.Boxes))
		}
		for i, b := range got.Boxes {
			w := orig.Boxes[i]
			if b.Index != w.Index || b.Lo != w.Lo || b.Hi != w.Hi || b.Seq != w.Seq {
				t.Fatalf("%v: box %d is %v [%d,%d) seq %d, want %v [%d,%d) seq %d",
					dist, i, b.Index, b.Lo, b.Hi, b.Seq, w.Index, w.Lo, w.Hi, w.Seq)
			}
			if b.Center != w.Center || b.Side != w.Side {
				t.Fatalf("%v: box %d geometry %v/%g, want %v/%g", dist, i, b.Center, b.Side, w.Center, w.Side)
			}
			if b.NChildren != w.NChildren {
				t.Fatalf("%v: box %d has %d children, want %d", dist, i, b.NChildren, w.NChildren)
			}
			if (b.Parent == nil) != (w.Parent == nil) {
				t.Fatalf("%v: box %d parent mismatch", dist, i)
			}
			if b.Parent != nil && b.Parent.Index != w.Parent.Index {
				t.Fatalf("%v: box %d parent %v, want %v", dist, i, b.Parent.Index, w.Parent.Index)
			}
		}
		if len(got.Leaves) != len(orig.Leaves) {
			t.Fatalf("%v: %d leaves, want %d", dist, len(got.Leaves), len(orig.Leaves))
		}
		for i := range got.Pts {
			if got.Pts[i] != orig.Pts[i] {
				t.Fatalf("%v: reordered point %d differs", dist, i)
			}
		}
		// Lookup works on the reconstruction.
		for _, b := range orig.Boxes {
			if got.Lookup(b.Index) == nil {
				t.Fatalf("%v: reconstruction cannot look up %v", dist, b.Index)
			}
		}
	}
}

// Structurally corrupt skeletons surface as errors, never panics or silently
// wrong trees.
func TestFromSkeletonRejectsCorruptShapes(t *testing.T) {
	pts := points.Generate(points.Cube, 500, 9)
	dom := geom.BoundingCube(pts)
	good := Build(pts, dom, 30).Skeleton()

	cases := []struct {
		name   string
		mutate func(sk *Skeleton)
	}{
		{"short permutation", func(sk *Skeleton) { sk.Perm = sk.Perm[:len(sk.Perm)-1] }},
		{"repeated permutation entry", func(sk *Skeleton) { sk.Perm[0] = sk.Perm[1] }},
		{"out-of-range permutation entry", func(sk *Skeleton) { sk.Perm[0] = len(sk.Perm) }},
		{"no boxes", func(sk *Skeleton) { sk.Boxes = nil }},
		{"root not root", func(sk *Skeleton) { sk.Boxes[0].Index.Level = 1 }},
		{"root range short", func(sk *Skeleton) { sk.Boxes[0].Hi-- }},
		{"inverted range", func(sk *Skeleton) { b := &sk.Boxes[1]; b.Lo, b.Hi = b.Hi, b.Lo }},
		{"range outside parent", func(sk *Skeleton) { sk.Boxes[len(sk.Boxes)-1].Hi = len(sk.Perm) + 1 }},
		{"duplicate box", func(sk *Skeleton) { sk.Boxes[2] = sk.Boxes[1] }},
		{"orphan box", func(sk *Skeleton) {
			sk.Boxes[1].Index.Level = 5 // no level-4 parent exists
		}},
		{"invalid index", func(sk *Skeleton) { sk.Boxes[1].Index.X = -1 }},
	}
	for _, tc := range cases {
		sk := Skeleton{
			Domain: good.Domain,
			Perm:   append([]int(nil), good.Perm...),
			Boxes:  append([]SkeletonBox(nil), good.Boxes...),
		}
		tc.mutate(&sk)
		if _, err := FromSkeleton(pts, sk); err == nil {
			t.Errorf("%s: corrupt skeleton accepted", tc.name)
		}
	}
}
