package serve

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/geom"
	"repro/internal/kernel"
	"repro/internal/tree"
)

// TestGenerateCorpus regenerates the checked-in seed corpus when run with
// REGEN_FUZZ_CORPUS=1 (mirrors the amt codec corpus generator).
func TestGenerateCorpus(t *testing.T) {
	if os.Getenv("REGEN_FUZZ_CORPUS") != "1" {
		t.Skip("set REGEN_FUZZ_CORPUS=1 to regenerate")
	}
	write := func(target, name string, data []byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	write("FuzzJobSpec", "golden-spec",
		[]byte(`{"gen":1,"distribution":"cube","n":64,"seed":1,"kernel":"laplace","digits":3,"threshold":40,"run_seed":1,"timeout_ms":500}`))
	write("FuzzJobSpec", "empty-predead", []byte(`{"gen":7,"pre_dead":[],"lambda":1e300}`))

	rec := &PlanRecord{
		Key:  "laplace/cube/64",
		Spec: Request{Distribution: "cube", N: 64, Seed: 1, Kernel: "laplace", Digits: 3},
		Source: tree.Skeleton{
			Domain: geom.Cube{Low: geom.Point{X: -1, Y: -1, Z: -1}, Side: 2},
			Perm:   []int{1, 0, 2},
			Boxes:  []tree.SkeletonBox{{Index: geom.Index{Level: 1, X: 1}, Lo: 0, Hi: 2}},
		},
		Target: tree.Skeleton{Domain: geom.Cube{Side: 1}, Perm: []int{0}},
		Ops: []kernel.OperatorTable{
			{Kind: 1, SideBits: 0x3ff0000000000000, DX: 1, DY: -1,
				Mx: []complex128{complex(1.5, -2.5)}},
		},
	}
	golden := appendRecord(nil, rec)
	write("FuzzStoreLoad", "golden-record", golden)
	write("FuzzStoreLoad", "truncated-record", golden[:len(golden)-5])
}
