package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// planEntry is one cached plan: the built tree + DAG + kernel tables, plus
// one long-lived ParallelEvaluation context per execution shape that has
// been requested against it. The entry mutex serializes evaluations on the
// plan — ExecOptions.Policy.Assign mutates the shared Graph's node
// placement per Run, so two shapes (or even two runs of one shape) must not
// overlap.
type planEntry struct {
	key string

	build     sync.Once
	buildErr  error
	plan      *core.Plan
	buildTime time.Duration

	mu    sync.Mutex          // serializes build-shape + evaluate on this plan
	evals map[string]*evalCtx // "LxW" -> context; guarded by mu

	// fromStore marks an entry revived from the persistent plan store
	// (set before the entry is published, read-only after). stored marks
	// an entry already spilled, revived, or unspillable — guarded by mu
	fromStore bool
	stored    bool

	lastUsed int64 // cache clock tick; guarded by planCache.mu
}

// evalCtx is a pooled evaluation context for one execution shape: the
// ParallelEvaluation (payload buffers, LCO network, pooled runtime) and a
// permanently attached tracer that is enabled only for requests asking for
// a capture.
type evalCtx struct {
	pe     *core.ParallelEvaluation
	tracer *trace.Tracer
}

// planCache is an LRU cache of built plans keyed by Request.planKey().
type planCache struct {
	mu      sync.Mutex
	max     int
	clock   int64                 // guarded by mu
	entries map[string]*planEntry // guarded by mu
}

func newPlanCache(max int) *planCache {
	if max <= 0 {
		max = 1
	}
	return &planCache{max: max, entries: make(map[string]*planEntry)}
}

func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// get returns the entry for key, creating it if absent. hit reports whether
// the entry already existed; evicted how many plans the LRU dropped to make
// room. The returned entry is unbuilt on a miss — the caller builds it via
// ensureBuilt, so concurrent misses on one key build the plan exactly once.
func (c *planCache) get(key string) (e *planEntry, hit bool, evicted int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock++
	if e = c.entries[key]; e != nil {
		e.lastUsed = c.clock
		return e, true, 0
	}
	for len(c.entries) >= c.max {
		var oldest *planEntry
		for _, cand := range c.entries {
			if oldest == nil || cand.lastUsed < oldest.lastUsed {
				oldest = cand
			}
		}
		delete(c.entries, oldest.key)
		evicted++
	}
	e = &planEntry{key: key, evals: make(map[string]*evalCtx)}
	e.lastUsed = c.clock
	c.entries[key] = e
	return e, false, evicted
}

// put installs a pre-built entry (plan-store recovery), evicting LRU
// entries to make room exactly as get does. An existing entry under the
// same key is replaced.
func (c *planCache) put(key string, e *planEntry) (evicted int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock++
	if _, exists := c.entries[key]; !exists {
		for len(c.entries) >= c.max {
			var oldest *planEntry
			for _, cand := range c.entries {
				if oldest == nil || cand.lastUsed < oldest.lastUsed {
					oldest = cand
				}
			}
			delete(c.entries, oldest.key)
			evicted++
		}
	}
	e.lastUsed = c.clock
	c.entries[key] = e
	return evicted
}

// drop removes the entry for key if it is still e. A failed build latches
// its error in the entry's sync.Once forever, so the entry must leave the
// cache for the next request on the key to rebuild — without the pointer
// check a slow failure could evict an unrelated fresh entry that already
// replaced it.
func (c *planCache) drop(key string, e *planEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries[key] == e {
		delete(c.entries, key)
	}
}

// ensureBuilt builds the plan on first use: ensembles are materialized, the
// kernel constructed, and core.NewPlan runs the tree + list + DAG pipeline.
// Every later request for the same key skips all of it.
func (e *planEntry) ensureBuilt(r *Request) error {
	e.build.Do(func() {
		start := time.Now()
		src, tgt := r.ensembles()
		e.plan, e.buildErr = core.NewPlan(src, tgt, r.newKernel(), core.Options{Threshold: r.Threshold})
		e.buildTime = time.Since(start)
	})
	return e.buildErr
}

// shape returns (building if needed) the pooled evaluation context for the
// request's execution shape. Caller must hold e.mu.
//
//dashmm:locked planEntry.mu — documented precondition: handleEvaluate calls shape inside the entry's critical section.
func (e *planEntry) shape(r *Request) (*evalCtx, error) {
	key := fmt.Sprintf("%dx%d", r.Localities, r.Workers)
	if ctx := e.evals[key]; ctx != nil {
		return ctx, nil
	}
	tr := trace.New(r.Localities * r.Workers)
	tr.SetEnabled(false)
	pe, err := e.plan.NewParallelEvaluation(core.ExecOptions{
		Localities: r.Localities,
		Workers:    r.Workers,
		Tracer:     tr,
	})
	if err != nil {
		return nil, err
	}
	ctx := &evalCtx{pe: pe, tracer: tr}
	e.evals[key] = ctx
	return ctx, nil
}
