package points

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, d := range []Distribution{Cube, Sphere, Plummer} {
		a := Generate(d, 100, 42)
		b := Generate(d, 100, 42)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: not deterministic at %d", d, i)
			}
		}
		c := Generate(d, 100, 43)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%v: different seeds gave identical points", d)
		}
	}
}

func TestCubeInUnitCube(t *testing.T) {
	for _, p := range Generate(Cube, 2000, 1) {
		if p.X < 0 || p.X >= 1 || p.Y < 0 || p.Y >= 1 || p.Z < 0 || p.Z >= 1 {
			t.Fatalf("point %v outside unit cube", p)
		}
	}
}

func TestSphereOnSurface(t *testing.T) {
	c := geom.Point{X: 0.5, Y: 0.5, Z: 0.5}
	for _, p := range Generate(Sphere, 2000, 2) {
		if math.Abs(p.Dist(c)-0.5) > 1e-12 {
			t.Fatalf("point %v not on sphere surface (r=%v)", p, p.Dist(c))
		}
	}
}

func TestSphereRoughlyUniform(t *testing.T) {
	// Mean z over a uniform sphere surface is the center z.
	pts := Generate(Sphere, 50000, 3)
	var mz float64
	for _, p := range pts {
		mz += p.Z
	}
	mz /= float64(len(pts))
	if math.Abs(mz-0.5) > 0.01 {
		t.Errorf("mean z %v, want about 0.5", mz)
	}
}

func TestPlummerCentrallyConcentrated(t *testing.T) {
	c := geom.Point{X: 0.5, Y: 0.5, Z: 0.5}
	pts := Generate(Plummer, 20000, 4)
	inner := 0
	for _, p := range pts {
		if !((p.X >= 0 && p.X < 1) && (p.Y >= 0 && p.Y < 1) && (p.Z >= 0 && p.Z < 1)) {
			t.Fatalf("plummer point %v escaped the unit cube", p)
		}
		if p.Dist(c) < 0.15 {
			inner++
		}
	}
	if frac := float64(inner) / float64(len(pts)); frac < 0.4 {
		t.Errorf("only %.2f of plummer points within r=0.15; expected central concentration", frac)
	}
}

func TestCharges(t *testing.T) {
	q := Charges(1000, 5)
	var sum float64
	for _, v := range q {
		if v < -1 || v >= 1 {
			t.Fatalf("charge %v out of range", v)
		}
		sum += v
	}
	if math.Abs(sum)/1000 > 0.1 {
		t.Errorf("charges badly biased: mean %v", sum/1000)
	}
	u := UnitCharges(5)
	for _, v := range u {
		if v != 1 {
			t.Fatal("unit charge not 1")
		}
	}
}
