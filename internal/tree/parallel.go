package tree

import (
	"sync"

	"repro/internal/geom"
)

// BuildParallel constructs the same octree Build produces, using the
// three-step parallel strategy of the paper (Section IV): the points are
// first sorted at a coarse level (by the octant boxes of a shallow prefix
// of the tree), the coarse buckets are then partitioned concurrently by
// `workers` goroutines, and finally the per-bucket results are stitched
// into one tree with a compact sequential pass over the shallow prefix.
//
// The resulting tree is structurally identical to Build's (same boxes, same
// leaf ranges) though the intra-leaf point order may differ; every
// consumer of the tree is insensitive to intra-leaf order.
func BuildParallel(pts []geom.Point, domain geom.Cube, threshold, workers int) *Tree {
	if workers <= 1 || len(pts) <= 8*threshold {
		return Build(pts, domain, threshold)
	}
	// Step 1: coarse sort. Pick the coarse level so there are a few buckets
	// per worker; two levels (64 octants) is enough for any sane worker
	// count here.
	const coarseLevel = 2
	nb := 1 << (3 * coarseLevel) // 64
	// Bucket ids follow the octant path (Morton order) so that the
	// children of any shallow box occupy a contiguous bucket range — and
	// therefore a contiguous point range, the invariant internal boxes
	// rely on.
	key := func(p geom.Point) int {
		ix := geom.Root
		id := 0
		for l := 0; l < coarseLevel; l++ {
			o := ix.ChildContaining(domain, p)
			id = id<<3 | o
			ix = ix.Child(o)
		}
		return id
	}
	t := &Tree{
		Domain: domain,
		Pts:    append([]geom.Point(nil), pts...),
		Perm:   make([]int, len(pts)),
		byKey:  make(map[uint64]*Box),
	}
	for i := range t.Perm {
		t.Perm[i] = i
	}
	// Counting sort into coarse buckets.
	counts := make([]int, nb)
	for _, p := range t.Pts {
		counts[key(p)]++
	}
	starts := make([]int, nb+1)
	for b := 0; b < nb; b++ {
		starts[b+1] = starts[b] + counts[b]
	}
	sortedP := make([]geom.Point, len(pts))
	sortedI := make([]int, len(pts))
	pos := append([]int(nil), starts[:nb]...)
	for i, p := range t.Pts {
		b := key(p)
		sortedP[pos[b]] = p
		sortedI[pos[b]] = t.Perm[i]
		pos[b]++
	}
	copy(t.Pts, sortedP)
	copy(t.Perm, sortedI)

	// Step 2: each coarse bucket is an independent subtree rooted at a
	// level-2 box; partition them concurrently.
	type job struct {
		bucket int
		box    *Box
	}
	boxesAt := make([]*Box, nb)
	var jobs []job
	for b := 0; b < nb; b++ {
		if counts[b] == 0 {
			continue
		}
		ix := geom.Root
		for l := coarseLevel - 1; l >= 0; l-- {
			ix = ix.Child(b >> (3 * l) & 7)
		}
		cube := ix.Cube(domain)
		bx := &Box{
			Index:  ix,
			Center: cube.Center(),
			Side:   cube.Side,
			Lo:     starts[b],
			Hi:     starts[b] + counts[b],
		}
		boxesAt[b] = bx
		jobs = append(jobs, job{bucket: b, box: bx})
	}
	var wg sync.WaitGroup
	next := make(chan job, len(jobs))
	for _, j := range jobs {
		next <- j
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker scratch sized to the largest bucket it may see.
			var scratchP []geom.Point
			var scratchI []int
			for j := range next {
				if n := j.box.NPoints(); len(scratchP) < j.box.Hi {
					_ = n
					scratchP = make([]geom.Point, j.box.Hi)
					scratchI = make([]int, j.box.Hi)
				}
				t.split(j.box, threshold, scratchP, scratchI)
			}
		}()
	}
	wg.Wait()

	// Step 3: stitch the shallow prefix — create levels 0..coarseLevel-1
	// over the occupied coarse boxes — then BFS-number everything.
	t.Root = &Box{
		Index:  geom.Root,
		Center: domain.Center(),
		Side:   domain.Side,
		Lo:     0,
		Hi:     len(pts),
	}
	level1 := map[uint64]*Box{}
	for b := 0; b < nb; b++ {
		bx := boxesAt[b]
		if bx == nil {
			continue
		}
		pIx := bx.Index.Parent()
		parent := level1[pIx.Key()]
		if parent == nil {
			cube := pIx.Cube(domain)
			parent = &Box{
				Index:  pIx,
				Center: cube.Center(),
				Side:   cube.Side,
				Parent: t.Root,
				Lo:     bx.Lo,
				Hi:     bx.Hi,
			}
			level1[pIx.Key()] = parent
			t.Root.Children[pIx.Octant()] = parent
			t.Root.NChildren++
		}
		if bx.Lo < parent.Lo {
			parent.Lo = bx.Lo
		}
		if bx.Hi > parent.Hi {
			parent.Hi = bx.Hi
		}
		bx.Parent = parent
		parent.Children[bx.Index.Octant()] = bx
		parent.NChildren++
	}
	// Internal ranges span their children (contiguous by the Morton bucket
	// order).
	fixRanges(t.Root)
	// A shallow box that holds no more than threshold points would never
	// have been split by the sequential builder: collapse it back to a
	// leaf.
	for _, p := range t.Root.Children {
		if p != nil && p.NPoints() <= threshold {
			p.Children = [8]*Box{}
			p.NChildren = 0
		}
	}

	queue := []*Box{t.Root}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		b.Seq = len(t.Boxes)
		t.Boxes = append(t.Boxes, b)
		t.byKey[b.Index.Key()] = b
		if b.Level() > t.MaxLevel {
			t.MaxLevel = b.Level()
		}
		if b.IsLeaf() {
			t.Leaves = append(t.Leaves, b)
			continue
		}
		for _, c := range b.Children {
			if c != nil {
				queue = append(queue, c)
			}
		}
	}
	return t
}

// fixRanges recomputes internal ranges as the min/max over children.
func fixRanges(b *Box) {
	if b.IsLeaf() {
		return
	}
	lo, hi := 1<<62, -1
	for _, c := range b.Children {
		if c == nil {
			continue
		}
		fixRanges(c)
		if c.Lo < lo {
			lo = c.Lo
		}
		if c.Hi > hi {
			hi = c.Hi
		}
	}
	b.Lo, b.Hi = lo, hi
}
