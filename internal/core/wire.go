package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/dag"
	"repro/internal/geom"
)

// Typed wire payloads for multi-process evaluation (distrib.go). In-process
// parcels are closures over the shared evaluation state; across a process
// boundary the same information travels as values: the source node's
// expansion payload plus the indexes of the out-edges the receiver must
// apply. The receiver installs the payload into its own state's buffers for
// that node — state.apply then reads it exactly as it would a local
// payload, so the operator semantics stay single-definition. Every decoder
// is length-checked and errors (never panics) on truncated or malformed
// input; the sizes are implied by the shared Plan, which all ranks build
// identically.

// Application payload kinds carried in amt.Frame.Kind (must stay below the
// amt control-plane range 0xff00).
const (
	// wireKindCharges is the rank-0 charge broadcast: the full charge vector
	// in the caller's source order, from which every rank derives its
	// tree-ordered q exactly as a local run would.
	wireKindCharges uint16 = 1
	// wireKindParcel is one coalesced node parcel: source node payload plus
	// the out-edge indexes bound for the destination rank.
	wireKindParcel uint16 = 2
	// wireKindResult is a worker's completed-targets report to rank 0:
	// potentials (and gradients) of the T nodes it owns.
	wireKindResult uint16 = 3
)

func appendU32(b []byte, v uint32) []byte {
	var u [4]byte
	binary.LittleEndian.PutUint32(u[:], v)
	return append(b, u[:]...)
}

func appendF64s(b []byte, vs []float64) []byte {
	var u [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(u[:], math.Float64bits(v))
		b = append(b, u[:]...)
	}
	return b
}

func appendC128s(b []byte, vs []complex128) []byte {
	var u [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(u[:], math.Float64bits(real(v)))
		b = append(b, u[:]...)
		binary.LittleEndian.PutUint64(u[:], math.Float64bits(imag(v)))
		b = append(b, u[:]...)
	}
	return b
}

// wireReader is a bounds-checked little-endian cursor; every read reports
// truncation instead of slicing past the end.
type wireReader struct {
	b   []byte
	off int
}

func (r *wireReader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, fmt.Errorf("core: truncated wire payload at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *wireReader) f64s(dst []float64) error {
	if r.off+8*len(dst) > len(r.b) {
		return fmt.Errorf("core: truncated wire payload at offset %d", r.off)
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
		r.off += 8
	}
	return nil
}

func (r *wireReader) c128s(dst []complex128) error {
	if r.off+16*len(dst) > len(r.b) {
		return fmt.Errorf("core: truncated wire payload at offset %d", r.off)
	}
	for i := range dst {
		re := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off+8:]))
		dst[i] = complex(re, im)
		r.off += 16
	}
	return nil
}

func (r *wireReader) done() error {
	if r.off != len(r.b) {
		return fmt.Errorf("core: %d trailing bytes in wire payload", len(r.b)-r.off)
	}
	return nil
}

// encodeCharges serializes the charge vector for the rank-0 broadcast.
func encodeCharges(charges []float64) []byte {
	buf := make([]byte, 0, 4+8*len(charges))
	buf = appendU32(buf, uint32(len(charges)))
	return appendF64s(buf, charges)
}

func decodeCharges(b []byte, want int) ([]float64, error) {
	r := &wireReader{b: b}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int(n) != want {
		return nil, fmt.Errorf("core: charge broadcast carries %d charges, plan has %d sources", n, want)
	}
	out := make([]float64, n)
	if err := r.f64s(out); err != nil {
		return nil, err
	}
	return out, r.done()
}

// appendNodePayload serializes the live expansion payload of one node. The
// layout is implied by the node's kind and masks plus the kernel sizes, all
// of which every rank derives from the shared Plan: M/L nodes carry their
// expansion coefficients; I nodes carry their own-level then merged
// directional waves in direction order; S nodes carry nothing (the charge
// vector is globally broadcast) and T nodes are sinks that never send.
func (s *state) appendNodePayload(n *dag.Node, buf []byte) []byte {
	switch n.Kind {
	case dag.NodeM, dag.NodeL:
		buf = appendC128s(buf, s.exp[n.ID])
	case dag.NodeIs, dag.NodeIt:
		for d := 0; d < geom.NumDirections; d++ {
			buf = appendC128s(buf, s.own[n.ID][d])
		}
		for d := 0; d < geom.NumDirections; d++ {
			buf = appendC128s(buf, s.mrg[n.ID][d])
		}
	}
	return buf
}

// installNodePayload decodes a node payload into this rank's copy of the
// node's buffers (sized at newState from the same plan, so the shapes
// match by construction; mismatches mean a corrupt or foreign frame and
// surface as errors). Callers serialize against readers of the node's
// payload via the node's lock.
func (s *state) installNodePayload(n *dag.Node, r *wireReader) error {
	switch n.Kind {
	case dag.NodeM, dag.NodeL:
		return r.c128s(s.exp[n.ID])
	case dag.NodeIs, dag.NodeIt:
		for d := 0; d < geom.NumDirections; d++ {
			if err := r.c128s(s.own[n.ID][d]); err != nil {
				return err
			}
		}
		for d := 0; d < geom.NumDirections; d++ {
			if err := r.c128s(s.mrg[n.ID][d]); err != nil {
				return err
			}
		}
	}
	return nil
}

// encodeParcel serializes one coalesced node parcel: the source node, the
// global edge indexes bound for the destination (dedup keys at the
// receiver), and the node payload.
func (s *state) encodeParcel(n *dag.Node, outIdx []int32) []byte {
	buf := make([]byte, 0, 8+4*len(outIdx)+int(n.Bytes))
	buf = appendU32(buf, uint32(n.ID))
	buf = appendU32(buf, uint32(len(outIdx)))
	for _, j := range outIdx {
		buf = appendU32(buf, uint32(j))
	}
	return s.appendNodePayload(n, buf)
}

// decodeParcelHeader reads the source node and out-edge list of a parcel,
// leaving the reader positioned at the payload.
func decodeParcelHeader(g *dag.Graph, b []byte) (src int32, outIdx []int32, r *wireReader, err error) {
	r = &wireReader{b: b}
	s, err := r.u32()
	if err != nil {
		return 0, nil, nil, err
	}
	if int(s) >= len(g.Nodes) {
		return 0, nil, nil, fmt.Errorf("core: parcel source node %d out of range", s)
	}
	ne, err := r.u32()
	if err != nil {
		return 0, nil, nil, err
	}
	nOut := len(g.Nodes[s].Out)
	if int(ne) > nOut {
		return 0, nil, nil, fmt.Errorf("core: parcel carries %d edges, node %d has %d", ne, s, nOut)
	}
	outIdx = make([]int32, ne)
	for i := range outIdx {
		j, err := r.u32()
		if err != nil {
			return 0, nil, nil, err
		}
		if int(j) >= nOut {
			return 0, nil, nil, fmt.Errorf("core: parcel edge index %d out of range for node %d", j, s)
		}
		outIdx[i] = int32(j)
	}
	return int32(s), outIdx, r, nil
}

// encodeResult serializes the potentials (and gradients) of the given T
// nodes for the gather at rank 0.
func (s *state) encodeResult(ids []int32) []byte {
	g := s.p.Graph
	hasGrad := uint32(0)
	if s.grad != nil {
		hasGrad = 1
	}
	var buf []byte
	buf = appendU32(buf, hasGrad)
	buf = appendU32(buf, uint32(len(ids)))
	for _, id := range ids {
		b := g.Nodes[id].Box
		buf = appendU32(buf, uint32(id))
		buf = appendF64s(buf, s.pot[b.Lo:b.Hi])
		if s.grad != nil {
			for _, gp := range s.grad[b.Lo:b.Hi] {
				buf = appendF64s(buf, []float64{gp.X, gp.Y, gp.Z})
			}
		}
	}
	return buf
}

// installResult decodes a completed-targets report into the gather state,
// returning the T node IDs it covered. Overwrites are idempotent: a rank
// re-reporting after a failover carries the identical deterministic values.
func (s *state) installResult(b []byte) ([]int32, error) {
	g := s.p.Graph
	r := &wireReader{b: b}
	hasGrad, err := r.u32()
	if err != nil {
		return nil, err
	}
	if (hasGrad == 1) != (s.grad != nil) {
		return nil, fmt.Errorf("core: result gradient flag %d mismatches plan", hasGrad)
	}
	count, err := r.u32()
	if err != nil {
		return nil, err
	}
	ids := make([]int32, 0, count)
	for i := uint32(0); i < count; i++ {
		id, err := r.u32()
		if err != nil {
			return nil, err
		}
		if int(id) >= len(g.Nodes) || g.Nodes[id].Kind != dag.NodeT {
			return nil, fmt.Errorf("core: result node %d is not a target node", id)
		}
		box := g.Nodes[id].Box
		if err := r.f64s(s.pot[box.Lo:box.Hi]); err != nil {
			return nil, err
		}
		if s.grad != nil {
			var v [3]float64
			for j := box.Lo; j < box.Hi; j++ {
				if err := r.f64s(v[:]); err != nil {
					return nil, err
				}
				s.grad[j] = geom.Point{X: v[0], Y: v[1], Z: v[2]}
			}
		}
		ids = append(ids, int32(id))
	}
	return ids, r.done()
}
