package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc enforces //dashmm:noalloc: functions so annotated are the
// runtime's hot paths (spawn, deque push/pop, LCO input, parcel delivery)
// and must not contain allocation idioms. The check is syntactic — it flags
// the constructs that allocate or that famously escape, not a full escape
// analysis:
//
//   - make(...) and new(...);
//   - slice and map composite literals, and &CompositeLit (escapes to heap
//     when the pointer outlives the frame — in a hot path, assume it does);
//   - function literals that capture variables (closure allocation);
//   - any call into fmt (formatting allocates);
//   - append whose destination differs from its first argument — growing a
//     fresh slice. In-place x = append(x, ...) and the reuse idiom
//     x = append(x[:0], ...) are allowed.
//
// Plain struct-value composite literals (trace.Event{...}) stay on the
// stack and are allowed.
type NoAlloc struct{}

// NewNoAlloc returns the hotpath-noalloc analyzer.
func NewNoAlloc() *NoAlloc { return &NoAlloc{} }

// Name implements Analyzer.
func (*NoAlloc) Name() string { return "hotpath-noalloc" }

// Doc implements Analyzer.
func (*NoAlloc) Doc() string {
	return "//dashmm:noalloc functions must not contain allocation idioms"
}

// Run implements Analyzer.
func (c *NoAlloc) Run(p *Pass) {
	walkFuncs(p, func(_ *ast.File, fn *ast.FuncDecl) {
		if _, ok := funcHasDirective(fn, "dashmm:noalloc"); !ok {
			return
		}
		c.checkBody(p, fn)
	})
}

func (c *NoAlloc) checkBody(p *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			c.checkCall(p, node)
		case *ast.CompositeLit:
			tv, ok := p.Info.Types[node]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				p.Report(node.Pos(), "slice literal allocates")
			case *types.Map:
				p.Report(node.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if cl, ok := node.X.(*ast.CompositeLit); ok {
					p.Report(cl.Pos(), "&composite literal escapes to the heap")
					return false
				}
			}
		case *ast.FuncLit:
			if capturesVariables(p, node) {
				p.Report(node.Pos(), "closure captures variables and allocates")
			}
			return false // don't descend: the literal runs later, off the hot path
		case *ast.AssignStmt:
			c.checkAppendAssign(p, node)
		}
		return true
	})
}

// checkCall flags make/new builtins and fmt calls.
func (c *NoAlloc) checkCall(p *Pass, call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make":
			if isBuiltin(p, fun) {
				p.Report(call.Pos(), "make allocates")
			}
		case "new":
			if isBuiltin(p, fun) {
				p.Report(call.Pos(), "new allocates")
			}
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := p.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				p.Report(call.Pos(), "fmt.%s allocates (formatting, boxing of ...any args)", fun.Sel.Name)
			}
		}
	}
}

// checkAppendAssign flags `dst = append(src, ...)` where dst and src differ:
// that grows a fresh backing array. dst = append(dst, ...) and the reset
// idiom dst = append(dst[:0], ...) amortize to zero and are allowed.
func (c *NoAlloc) checkAppendAssign(p *Pass, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" || !isBuiltin(p, id) {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		src := call.Args[0]
		// Unwrap the x[:0] reuse idiom down to x.
		if sl, ok := src.(*ast.SliceExpr); ok {
			src = sl.X
		}
		if types.ExprString(as.Lhs[i]) != types.ExprString(src) {
			p.Report(call.Pos(), "append into a different slice than its source allocates a fresh backing array")
		}
	}
}

// isBuiltin reports whether the identifier resolves to a Go builtin (and not
// a shadowing local).
func isBuiltin(p *Pass, id *ast.Ident) bool {
	_, ok := p.Info.Uses[id].(*types.Builtin)
	return ok
}

// capturesVariables reports whether a function literal references any
// identifier declared outside itself (forcing a closure allocation).
func capturesVariables(p *Pass, fl *ast.FuncLit) bool {
	captured := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		obj, ok := p.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if obj.Parent() == nil {
			// Struct fields etc. — not closed-over variables.
			return true
		}
		if obj.Pos() < fl.Pos() || obj.Pos() > fl.End() {
			// Declared outside the literal: package-level vars don't force
			// an allocation, locals do.
			if obj.Parent() != p.Pkg.Scope() {
				captured = true
			}
		}
		return true
	})
	return captured
}
