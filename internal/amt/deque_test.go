package amt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDequeOwnerLIFOThiefFIFO checks the two consumption orders of the
// Chase–Lev deque.
func TestDequeOwnerLIFOThiefFIFO(t *testing.T) {
	var d wsDeque
	d.init()
	var got []int
	for i := 0; i < 4; i++ {
		i := i
		d.push(func(*Worker) { got = append(got, i) })
	}
	// Owner pops newest first.
	for want := 3; want >= 2; want-- {
		task, ok := d.pop()
		if !ok {
			t.Fatal("pop on non-empty deque failed")
		}
		task(nil)
		if got[len(got)-1] != want {
			t.Fatalf("owner pop order: got %v, want newest-first", got)
		}
	}
	// Thief steals oldest first.
	for want := 0; want <= 1; want++ {
		task, ok := d.steal()
		if !ok {
			t.Fatal("steal on non-empty deque failed")
		}
		task(nil)
		if got[len(got)-1] != want {
			t.Fatalf("thief steal order: got %v, want oldest-first", got)
		}
	}
	if _, ok := d.pop(); ok {
		t.Fatal("pop on empty deque succeeded")
	}
	if _, ok := d.steal(); ok {
		t.Fatal("steal on empty deque succeeded")
	}
}

// TestDequeGrowth pushes far beyond the initial ring and checks nothing is
// lost or duplicated across the generations.
func TestDequeGrowth(t *testing.T) {
	var d wsDeque
	d.init()
	const n = 10 * initialRingSize
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		d.push(func(*Worker) { counts[i]++ })
	}
	if c := d.capacity(); c < n {
		t.Fatalf("capacity %d after %d pushes", c, n)
	}
	for i := 0; i < n; i++ {
		task, ok := d.pop()
		if !ok {
			t.Fatalf("pop %d failed", i)
		}
		task(nil)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("task %d ran %d times", i, c)
		}
	}
}

// TestDequeCapacityStableUnderChurn is the retention regression test of
// the ISSUE (the old slice lanes grew their backing arrays monotonically
// under steal traffic: w.high = w.high[1:] never released the prefix).
// Sustained push/pop/steal churn at a bounded live size must not grow the
// ring.
func TestDequeCapacityStableUnderChurn(t *testing.T) {
	var d wsDeque
	d.init()
	cap0 := d.capacity()
	nop := Task(func(*Worker) {})
	for cycle := 0; cycle < 10000; cycle++ {
		for i := 0; i < 8; i++ {
			d.push(nop)
		}
		// Mixed consumption: half stolen (FIFO, the old leak path), half
		// popped.
		for i := 0; i < 4; i++ {
			if _, ok := d.steal(); !ok {
				t.Fatal("steal failed on non-empty deque")
			}
		}
		for i := 0; i < 4; i++ {
			if _, ok := d.pop(); !ok {
				t.Fatal("pop failed on non-empty deque")
			}
		}
	}
	if c := d.capacity(); c != cap0 {
		t.Fatalf("ring grew from %d to %d under bounded churn", cap0, c)
	}
}

// TestDequePopClearsSlots checks that owner pops drop the task reference
// (both the multi-element plain-clear path and the last-element CAS path)
// so a drained deque does not retain arbitrary task graphs.
func TestDequePopClearsSlots(t *testing.T) {
	var d wsDeque
	d.init()
	live := Task(func(*Worker) {})
	d.push(live)
	d.push(live)
	if _, ok := d.pop(); !ok { // b > t path
		t.Fatal("pop failed")
	}
	if _, ok := d.pop(); !ok { // last-element CAS path
		t.Fatal("pop failed")
	}
	r := d.buf.Load()
	for i := range r.slot {
		if p := atomic.LoadPointer(&r.slot[i]); p != nil {
			t.Fatalf("slot %d retains a task pointer after pops", i)
		}
	}
}

// TestDequeStealContentionExactlyOnce hammers the racy last-element path:
// many rounds of 1-element deques fought over by owner pop and concurrent
// thieves; every task must run exactly once.
func TestDequeStealContentionExactlyOnce(t *testing.T) {
	const (
		rounds  = 20000
		thieves = 4
	)
	var d wsDeque
	d.init()
	var executed atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if task, ok := d.steal(); ok {
					task(nil)
				}
			}
		}()
	}
	one := Task(func(*Worker) { executed.Add(1) })
	for r := 0; r < rounds; r++ {
		d.push(one)
		if task, ok := d.pop(); ok {
			task(nil)
		}
	}
	// Wait for thieves to drain any leftovers before stopping them
	// (wg.Wait then guarantees every claimed task finished executing).
	for d.size() > 0 {
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if got := executed.Load(); got != rounds {
		t.Fatalf("executed %d of %d tasks (lost or duplicated under contention)", got, rounds)
	}
}

// TestDequeConcurrentStealsPartition checks that a batch pushed by the
// owner is partitioned exactly among concurrent thieves and the owner.
func TestDequeConcurrentStealsPartition(t *testing.T) {
	const n = 50000
	var d wsDeque
	d.init()
	counts := make([]atomic.Int32, n)
	for i := 0; i < n; i++ {
		i := i
		d.push(func(*Worker) { counts[i].Add(1) })
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				task, ok := d.steal()
				if !ok {
					if d.size() == 0 {
						return
					}
					continue
				}
				task(nil)
			}
		}()
	}
	for {
		task, ok := d.pop()
		if !ok {
			break
		}
		task(nil)
	}
	wg.Wait()
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("task %d ran %d times", i, c)
		}
	}
}

// TestInboxDrainRecyclesBuffers checks the inbox drain swaps buffers
// without retaining task references and without allocating in steady
// state (the spare double-buffer).
func TestInboxDrainRecyclesBuffers(t *testing.T) {
	w := &Worker{}
	w.normal.init()
	w.high.init()
	ran := 0
	for cycle := 0; cycle < 100; cycle++ {
		for i := 0; i < 16; i++ {
			w.in.add(func(*Worker) { ran++ }, i%2 == 0)
		}
		if !w.in.drain(w) {
			t.Fatal("drain moved nothing")
		}
		if w.in.n.Load() != 0 {
			t.Fatal("inbox count nonzero after drain")
		}
		for {
			task, ok := w.pop()
			if !ok {
				break
			}
			task(nil)
		}
	}
	if ran != 100*16 {
		t.Fatalf("ran %d of %d inbox tasks", ran, 100*16)
	}
	for _, s := range [][]Task{w.spareHigh[:cap(w.spareHigh)], w.spareNormal[:cap(w.spareNormal)]} {
		for i, task := range s {
			if task != nil {
				t.Fatalf("spare buffer slot %d retains a task reference", i)
			}
		}
	}
}

// TestInboxStealPrefersHigh checks thieves take priority tasks out of an
// inbox first.
func TestInboxStealPrefersHigh(t *testing.T) {
	var in inbox
	order := []string{}
	in.add(func(*Worker) { order = append(order, "low") }, false)
	in.add(func(*Worker) { order = append(order, "high") }, true)
	task, ok := in.steal()
	if !ok {
		t.Fatal("inbox steal failed")
	}
	task(nil)
	if order[0] != "high" {
		t.Fatalf("inbox steal took %q first, want high", order[0])
	}
}
