// Benchmarks indexed to the paper's evaluation: one benchmark per table and
// figure (see DESIGN.md's per-experiment index), plus one per operator class
// for the t_avg column of Table II and ablation benches for the design
// choices the paper discusses.
//
//	go test -bench=. -benchmem
//
// Custom metrics reported via b.ReportMetric:
//
//	nodes, edges           DAG census sizes (Tables I, II)
//	eff-<cores>            simulated strong-scaling efficiency (Fig. 3, E6)
//	dip-width-<cores>      starvation-dip width in % of the run (Fig. 4)
//	plateau                utilization plateau (Figs. 4, 5)
//	speedup-priority       priority-scheduling gain (Section VI, E7)
//	slowdown-levelwise     level-by-level BSP penalty (E8)
package repro

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/amt"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dist"
	"repro/internal/geom"
	"repro/internal/kernel"
	"repro/internal/points"
	"repro/internal/sim"
	"repro/internal/trace"
)

// benchN is the ensemble size of the DAG-shape benchmarks. The paper uses
// 30M–60M points; this size keeps a full bench run in minutes on one core
// while preserving a 4–5 level tree. Scale with cmd/dagstat and cmd/scaling
// for larger runs.
const benchN = 120000

var planCache sync.Map // key string -> *core.Plan

func cachedPlan(b *testing.B, key string, build func() *core.Plan) *core.Plan {
	if v, ok := planCache.Load(key); ok {
		return v.(*core.Plan)
	}
	b.StopTimer()
	p := build()
	planCache.Store(key, p)
	b.StartTimer()
	return p
}

func cubePlan(b *testing.B, method dag.Method) *core.Plan {
	return cachedPlan(b, "cube/"+method.String(), func() *core.Plan {
		sp := points.Generate(points.Cube, benchN, 1)
		tp := points.Generate(points.Cube, benchN, 2)
		p, err := core.NewPlan(sp, tp, kernel.NewLaplace(kernel.OrderForDigits(3)),
			core.Options{Method: method})
		if err != nil {
			b.Fatal(err)
		}
		return p
	})
}

func spherePlan(b *testing.B) *core.Plan {
	return cachedPlan(b, "sphere", func() *core.Plan {
		n := benchN * 7 / 10
		sp := points.Generate(points.Sphere, n, 1)
		tp := points.Generate(points.Sphere, n, 2)
		p, err := core.NewPlan(sp, tp, kernel.NewLaplace(kernel.OrderForDigits(3)),
			core.Options{Method: dag.Advanced})
		if err != nil {
			b.Fatal(err)
		}
		return p
	})
}

// BenchmarkTable1NodeCensus builds the explicit DAG of the paper's cube
// workload and reports the Table I node census.
func BenchmarkTable1NodeCensus(b *testing.B) {
	var nodes []dag.NodeCensus
	for i := 0; i < b.N; i++ {
		sp := points.Generate(points.Cube, benchN, 1)
		tp := points.Generate(points.Cube, benchN, 2)
		p, err := core.NewPlan(sp, tp, kernel.NewLaplace(kernel.OrderForDigits(3)), core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		nodes, _ = p.Graph.Census()
	}
	for _, c := range nodes {
		b.ReportMetric(float64(c.Count), "nodes-"+c.Kind.String())
	}
}

// BenchmarkTable2EdgeCensus executes the DAG once per iteration with
// tracing and reports the measured average per-operator time — the t_avg
// column of Table II.
func BenchmarkTable2EdgeCensus(b *testing.B) {
	p := cubePlan(b, dag.Advanced)
	q := points.Charges(benchN, 3)
	tr := trace.New(1)
	for i := 0; i < b.N; i++ {
		tr.Reset()
		if _, _, err := p.Evaluate(q, core.ExecOptions{Workers: 1, Tracer: tr}); err != nil {
			b.Fatal(err)
		}
	}
	_, edges := p.Graph.Census()
	avg := trace.AvgMicrosByClass(tr.Snapshot())
	for _, e := range edges {
		b.ReportMetric(float64(e.Count), "edges-"+e.Op.String())
		b.ReportMetric(avg[uint8(e.Op)], "us-"+e.Op.String())
	}
}

// Per-operator microbenchmarks: the t_avg column of Table II measured in
// isolation, for both kernels.

func opKernels(b *testing.B) map[string]kernel.Kernel {
	p := kernel.OrderForDigits(3)
	lap := kernel.NewLaplace(p)
	yuk := kernel.NewYukawa(p, 4.0)
	lap.Prepare(1, 4)
	yuk.Prepare(1, 4)
	return map[string]kernel.Kernel{"laplace": lap, "yukawa": yuk}
}

func opData(k kernel.Kernel) (spts []geom.Point, q []float64, tpts []geom.Point, m, l, x, xr []complex128) {
	rng := rand.New(rand.NewSource(1))
	c := geom.Point{X: 0.5, Y: 0.5, Z: 0.5}
	spts = make([]geom.Point, 60) // the paper's threshold: 60 points/leaf
	tpts = make([]geom.Point, 60)
	for i := range spts {
		spts[i] = geom.Point{X: c.X + 0.1*(rng.Float64()-0.5), Y: c.Y + 0.1*(rng.Float64()-0.5), Z: c.Z + 0.1*(rng.Float64()-0.5)}
		tpts[i] = geom.Point{X: 0.1 * rng.Float64(), Y: 0.1 * rng.Float64(), Z: 0.1 * rng.Float64()}
	}
	q = points.Charges(60, 2)
	m = make([]complex128, k.MLSize())
	l = make([]complex128, k.MLSize())
	x = make([]complex128, k.ISize(3))
	xr = make([]complex128, k.ISize(3))
	k.S2M(c, spts, q, m)
	return
}

func BenchmarkOpS2M(b *testing.B) {
	for name, k := range opKernels(b) {
		b.Run(name, func(b *testing.B) {
			spts, q, _, m, _, _, _ := opData(k)
			c := geom.Point{X: 0.5, Y: 0.5, Z: 0.5}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.S2M(c, spts, q, m)
			}
		})
	}
}

func BenchmarkOpM2M(b *testing.B) {
	for name, k := range opKernels(b) {
		b.Run(name, func(b *testing.B) {
			_, _, _, m, l, _, _ := opData(k)
			from := geom.Point{X: 0.5, Y: 0.5, Z: 0.5}
			to := geom.Point{X: 0.5625, Y: 0.4375, Z: 0.5625}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.M2M(from, to, 0.125, m, l)
			}
		})
	}
}

func BenchmarkOpM2L(b *testing.B) {
	for name, k := range opKernels(b) {
		b.Run(name, func(b *testing.B) {
			_, _, _, m, l, _, _ := opData(k)
			from := geom.Point{X: 0.5, Y: 0.5, Z: 0.5}
			to := geom.Point{X: 0.75, Y: 0.5, Z: 0.625}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.M2L(from, to, 0.125, m, l)
			}
		})
	}
}

func BenchmarkOpL2L(b *testing.B) {
	for name, k := range opKernels(b) {
		b.Run(name, func(b *testing.B) {
			_, _, _, m, l, _, _ := opData(k)
			from := geom.Point{X: 0.5, Y: 0.5, Z: 0.5}
			to := geom.Point{X: 0.53125, Y: 0.46875, Z: 0.53125}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.L2L(from, to, 0.0625, m, l)
			}
		})
	}
}

func BenchmarkOpM2I(b *testing.B) {
	for name, k := range opKernels(b) {
		b.Run(name, func(b *testing.B) {
			_, _, _, m, _, x, _ := opData(k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.M2I(geom.Up, 3, m, x)
			}
		})
	}
}

func BenchmarkOpI2I(b *testing.B) {
	for name, k := range opKernels(b) {
		b.Run(name, func(b *testing.B) {
			_, _, _, _, _, x, xr := opData(k)
			shift := geom.Point{Z: 0.25}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.I2I(geom.Up, 3, shift, x, xr)
			}
		})
	}
}

func BenchmarkOpI2L(b *testing.B) {
	for name, k := range opKernels(b) {
		b.Run(name, func(b *testing.B) {
			_, _, _, _, l, x, _ := opData(k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.I2L(geom.Up, 3, x, l)
			}
		})
	}
}

func BenchmarkOpL2T(b *testing.B) {
	for name, k := range opKernels(b) {
		b.Run(name, func(b *testing.B) {
			_, _, tpts, _, l, _, _ := opData(k)
			c := geom.Point{X: 0.05, Y: 0.05, Z: 0.05}
			pot := make([]float64, len(tpts))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.L2T(c, l, tpts, pot)
			}
		})
	}
}

func BenchmarkOpS2T(b *testing.B) {
	for name, k := range opKernels(b) {
		b.Run(name, func(b *testing.B) {
			spts, q, tpts, _, _, _, _ := opData(k)
			pot := make([]float64, len(tpts))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.S2T(spts, q, tpts, pot)
			}
		})
	}
}

// m2lLatticeOffsets enumerates the full interaction lattice of one level:
// every offset with Chebyshev norm 2 or 3, the 316 distinct cached dense
// operators list-2 edges can apply.
func m2lLatticeOffsets() []kernel.M2LOffset {
	var offs []kernel.M2LOffset
	for dx := -3; dx <= 3; dx++ {
		for dy := -3; dy <= 3; dy++ {
			for dz := -3; dz <= 3; dz++ {
				m := dx
				if m < 0 {
					m = -m
				}
				if v := dy; v > m || -v > m {
					m = v
					if m < 0 {
						m = -m
					}
				}
				if v := dz; v > m || -v > m {
					m = v
					if m < 0 {
						m = -m
					}
				}
				if m >= 2 {
					offs = append(offs, kernel.M2LOffset{DX: int8(dx), DY: int8(dy), DZ: int8(dz)})
				}
			}
		}
	}
	return offs
}

// BenchmarkM2LBatchedVsSingle is the batched-execution acceptance
// microbenchmark, modeling one level's list-2 edge stream: the full
// 316-operator interaction lattice (~50 MB of cached dense operators, far
// beyond cache) with 4 edges per operator. "single" applies the edges in
// the executor's per-edge order — operator varying fastest, so every apply
// re-streams its 160 KB operator from memory — while "batched" is the
// batch descriptor's order, grouped by operator, so each operator streams
// once per multi-RHS block. The ratio is the far-field memory-bandwidth
// win batching buys.
func BenchmarkM2LBatchedVsSingle(b *testing.B) {
	const nPer = 4 // edges per operator
	const side = 0.25
	lattice := m2lLatticeOffsets()
	for name, k := range opKernels(b) {
		bk := k.(kernel.BatchKernel)
		sq := k.MLSize()
		rng := rand.New(rand.NewSource(9))
		ins := make([][]complex128, nPer)
		outs := make([][]complex128, nPer)
		for r := range ins {
			ins[r] = make([]complex128, sq)
			for j := range ins[r] {
				ins[r][j] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			outs[r] = make([]complex128, sq)
		}
		from := geom.Point{X: 0.5, Y: 0.5, Z: 0.5}
		for _, off := range lattice { // build every cached operator up front
			k.M2L(from, from.Add(off.Scale(side)), side, ins[0], outs[0])
		}
		// The batched view of the same edge set: nPer-long runs per offset.
		gOffs := make([]kernel.M2LOffset, 0, len(lattice)*nPer)
		gIns := make([][]complex128, 0, len(lattice)*nPer)
		gOuts := make([][]complex128, 0, len(lattice)*nPer)
		for _, off := range lattice {
			for r := 0; r < nPer; r++ {
				gOffs = append(gOffs, off)
				gIns = append(gIns, ins[r])
				gOuts = append(gOuts, outs[r])
			}
		}
		b.Run("single/"+name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := 0; r < nPer; r++ {
					for _, off := range lattice {
						k.M2L(from, from.Add(off.Scale(side)), side, ins[r], outs[r])
					}
				}
			}
		})
		b.Run("batched/"+name, func(b *testing.B) {
			bk.M2LBatch(gOffs, side, 2, gIns, gOuts) // warm
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bk.M2LBatch(gOffs, side, 2, gIns, gOuts)
			}
		})
	}
}

// BenchmarkFig3StrongScaling simulates the strong-scaling sweep of Fig. 3
// (32..1024 cores here; use cmd/scaling for the full 4096) and reports the
// efficiency at each scale.
func BenchmarkFig3StrongScaling(b *testing.B) {
	p := cubePlan(b, dag.Advanced)
	cm := sim.PaperCostModel()
	var eff = map[int]float64{}
	for i := 0; i < b.N; i++ {
		var t32 float64
		for cores := 32; cores <= 1024; cores *= 2 {
			L := cores / 32
			dist.MinComm{}.Assign(p.Graph, L)
			r := sim.Run(p.Graph, sim.Config{Localities: L, Cores: 32, Model: cm, Sched: sim.FIFO})
			if cores == 32 {
				t32 = r.Makespan
			}
			eff[cores] = t32 / r.Makespan / float64(L)
		}
	}
	for cores, e := range eff {
		b.ReportMetric(e, "eff-"+itoa(cores))
	}
}

// BenchmarkFig4Utilization simulates the Fig. 4 runs (64/128/512 cores) and
// reports the starvation-dip width and plateau of each.
func BenchmarkFig4Utilization(b *testing.B) {
	p := cubePlan(b, dag.Advanced)
	cm := sim.PaperCostModel()
	type res struct {
		width    int
		plateau  float64
		makespan float64
	}
	out := map[int]res{}
	for i := 0; i < b.N; i++ {
		for _, cores := range []int{64, 128, 512} {
			L := cores / 32
			dist.MinComm{}.Assign(p.Graph, L)
			r := sim.Run(p.Graph, sim.Config{Localities: L, Cores: 32, Model: cm,
				Sched: sim.FIFO, CollectEvents: true})
			u := trace.Analyze(r.Events, cores, 100, 0, int64(r.Makespan))
			first, last, plateau, found := u.Starvation(0.7)
			w := 0
			if found {
				w = last - first + 1
			}
			out[cores] = res{w, plateau, r.Makespan}
		}
	}
	for cores, r := range out {
		b.ReportMetric(float64(r.width), "dip-width-"+itoa(cores))
		b.ReportMetric(r.plateau, "plateau-"+itoa(cores))
	}
}

// BenchmarkFig5ClassUtilization simulates the 128-core run of Fig. 5 and
// reports how late the upward-sweep work is scheduled under oblivious FIFO
// (the paper finds S->M / M->M stretching to ~83% of the run).
func BenchmarkFig5ClassUtilization(b *testing.B) {
	p := cubePlan(b, dag.Advanced)
	cm := sim.PaperCostModel()
	lastActive := map[dag.OpKind]int{}
	for i := 0; i < b.N; i++ {
		dist.MinComm{}.Assign(p.Graph, 4)
		r := sim.Run(p.Graph, sim.Config{Localities: 4, Cores: 32, Model: cm,
			Sched: sim.FIFO, CollectEvents: true})
		u := trace.Analyze(r.Events, 128, 100, 0, int64(r.Makespan))
		for _, op := range []dag.OpKind{dag.OpS2M, dag.OpM2M, dag.OpI2I, dag.OpL2T} {
			if s := u.ByClass[uint8(op)]; s != nil {
				for k, v := range s {
					if v > 1e-6 {
						lastActive[op] = k
					}
				}
			}
		}
	}
	for op, k := range lastActive {
		b.ReportMetric(float64(k), "last-"+op.String())
	}
}

// BenchmarkPrioritySchedulingAblation quantifies the Section VI estimate:
// priority hints for the upward sweep recover the starved region.
func BenchmarkPrioritySchedulingAblation(b *testing.B) {
	p := spherePlan(b)
	cm := sim.PaperCostModel()
	var gain float64
	for i := 0; i < b.N; i++ {
		dist.MinComm{}.Assign(p.Graph, 16)
		f := sim.Run(p.Graph, sim.Config{Localities: 16, Cores: 32, Model: cm, Sched: sim.FIFO})
		pr := sim.Run(p.Graph, sim.Config{Localities: 16, Cores: 32, Model: cm, Sched: sim.Priority})
		gain = f.Makespan / pr.Makespan
	}
	b.ReportMetric(gain, "speedup-priority")
}

// BenchmarkLevelwiseVsAMT quantifies the introduction's motivation: strict
// level-by-level (SPMD) execution vs asynchronous dataflow.
func BenchmarkLevelwiseVsAMT(b *testing.B) {
	p := spherePlan(b)
	cm := sim.PaperCostModel()
	var slowdown float64
	for i := 0; i < b.N; i++ {
		dist.MinComm{}.Assign(p.Graph, 8)
		f := sim.Run(p.Graph, sim.Config{Localities: 8, Cores: 32, Model: cm, Sched: sim.FIFO})
		lv := sim.Run(p.Graph, sim.Config{Localities: 8, Cores: 32, Model: cm, Sched: sim.Levelwise})
		slowdown = lv.Makespan / f.Makespan
	}
	b.ReportMetric(slowdown, "slowdown-levelwise")
}

// BenchmarkDistributionPolicies is the placement ablation: remote traffic
// under the paper's merge-and-shift-aware policy vs block and cyclic.
func BenchmarkDistributionPolicies(b *testing.B) {
	p := cubePlan(b, dag.Advanced)
	for _, pol := range []dist.Policy{dist.Block{}, dist.Cyclic{}, dist.MinComm{}} {
		b.Run(pol.Name(), func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				pol.Assign(p.Graph, 8)
				bytes = dist.RemoteBytes(p.Graph)
			}
			b.ReportMetric(float64(bytes), "remote-bytes")
		})
	}
}

// BenchmarkMergeAndShift is the advanced-vs-basic ablation: DAG size and
// simulated makespan of the two FMM variants on identical trees.
func BenchmarkMergeAndShift(b *testing.B) {
	adv := cubePlan(b, dag.Advanced)
	bas := cubePlan(b, dag.Basic)
	cm := sim.PaperCostModel()
	var mAdv, mBas float64
	for i := 0; i < b.N; i++ {
		dist.MinComm{}.Assign(adv.Graph, 4)
		dist.MinComm{}.Assign(bas.Graph, 4)
		mAdv = sim.Run(adv.Graph, sim.Config{Localities: 4, Cores: 32, Model: cm}).Makespan
		mBas = sim.Run(bas.Graph, sim.Config{Localities: 4, Cores: 32, Model: cm}).Makespan
	}
	b.ReportMetric(float64(adv.Graph.EdgeCount[dag.OpI2I]), "edges-I2I")
	b.ReportMetric(float64(bas.Graph.EdgeCount[dag.OpM2L]), "edges-M2L")
	b.ReportMetric(mBas/mAdv, "speedup-merge-and-shift")
}

// BenchmarkEvaluateRealRuntime is the end-to-end wall-clock benchmark of the
// goroutine runtime on this machine (one locality).
func BenchmarkEvaluateRealRuntime(b *testing.B) {
	p := cachedPlan(b, "real", func() *core.Plan {
		sp := points.Generate(points.Cube, 30000, 1)
		tp := points.Generate(points.Cube, 30000, 2)
		pl, err := core.NewPlan(sp, tp, kernel.NewLaplace(kernel.OrderForDigits(3)), core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		return pl
	})
	q := points.Charges(30000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Evaluate(q, core.ExecOptions{Workers: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// hotPathLoop runs the steady-state evaluation loop with per-edge
// normalized memory metrics: bytes/edge and allocs/edge from MemStats
// deltas across the timed region, plus the raw edge census. These are the
// numbers the alloc gates bound, reported so scripts/bench.sh tracks them
// run over run in BENCH_hotpath.json.
func hotPathLoop(b *testing.B, p *core.Plan, pe *core.ParallelEvaluation, q []float64) {
	b.Helper()
	if _, _, err := pe.Run(q); err != nil { // warm the operator caches
		b.Fatal(err)
	}
	edges := float64(p.Graph.NumEdges())
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pe.Run(q); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	den := float64(b.N) * edges
	b.ReportMetric(float64(after.TotalAlloc-before.TotalAlloc)/den, "bytes/edge")
	b.ReportMetric(float64(after.Mallocs-before.Mallocs)/den, "allocs/edge")
	b.ReportMetric(edges, "edges")
}

// BenchmarkEvaluateHotPath is the end-to-end acceptance benchmark of the
// hot-path overhaul: repeated evaluation of one plan (cube, Laplace,
// N=50k) through a reusable ParallelEvaluation, the steady-state shape of
// a time-stepping application. The default advanced method carries list 2
// as plane waves, so batched execution covers the near field here (tiled
// P2P); allocs/op divided by the edges metric is the per-edge allocation
// count, which the executor keeps at ~0 via the prebuilt node tasks and
// pooled parcel batches.
func BenchmarkEvaluateHotPath(b *testing.B) {
	const n = 50000
	p := cachedPlan(b, "hotpath", func() *core.Plan {
		sp := points.Generate(points.Cube, n, 1)
		tp := points.Generate(points.Cube, n, 2)
		pl, err := core.NewPlan(sp, tp, kernel.NewLaplace(kernel.OrderForDigits(3)), core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		return pl
	})
	q := points.Charges(n, 3)
	pe, err := p.NewParallelEvaluation(core.ExecOptions{Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	hotPathLoop(b, p, pe, q)
}

// BenchmarkEvaluateHotPathBatched is the batched-execution end-to-end
// gate on the method it targets hardest: the basic FMM carries all list-2
// traffic as dense M->L edges, which the batch descriptors group by cached
// operator into multi-RHS applies. The per-edge reference is the same plan
// with ExecOptions.PerEdge, reported as the "per-edge" sub-benchmark; the
// ratio is the end-to-end batching win.
func BenchmarkEvaluateHotPathBatched(b *testing.B) {
	const n = 50000
	p := cachedPlan(b, "hotpath-basic", func() *core.Plan {
		sp := points.Generate(points.Cube, n, 1)
		tp := points.Generate(points.Cube, n, 2)
		pl, err := core.NewPlan(sp, tp, kernel.NewLaplace(kernel.OrderForDigits(3)),
			core.Options{Method: dag.Basic})
		if err != nil {
			b.Fatal(err)
		}
		return pl
	})
	q := points.Charges(n, 3)
	for _, mode := range []struct {
		name    string
		perEdge bool
	}{
		{"batched", false},
		{"per-edge", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			pe, err := p.NewParallelEvaluation(core.ExecOptions{Workers: 2, PerEdge: mode.perEdge})
			if err != nil {
				b.Fatal(err)
			}
			hotPathLoop(b, p, pe, q)
		})
	}
}

// BenchmarkEvaluateHotPathDetector is BenchmarkEvaluateHotPath with the
// heartbeat failure detector armed and no crash injected: the cost of
// being crash-recoverable when nothing goes wrong. The delta against
// BenchmarkEvaluateHotPath is the recovery tax — the per-edge applied-bit
// bookkeeping, the pair-locked delivery, and the detector goroutine —
// which scripts/bench.sh tracks run over run.
func BenchmarkEvaluateHotPathDetector(b *testing.B) {
	const n = 50000
	p := cachedPlan(b, "hotpath", func() *core.Plan {
		sp := points.Generate(points.Cube, n, 1)
		tp := points.Generate(points.Cube, n, 2)
		pl, err := core.NewPlan(sp, tp, kernel.NewLaplace(kernel.OrderForDigits(3)), core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		return pl
	})
	q := points.Charges(n, 3)
	pe, err := p.NewParallelEvaluation(core.ExecOptions{
		Workers:  2,
		Detector: &amt.FailureDetectorConfig{},
	})
	if err != nil {
		b.Fatal(err)
	}
	hotPathLoop(b, p, pe, q)
}

// BenchmarkDirectSum measures the O(N^2) baseline so the FMM crossover is
// visible next to BenchmarkEvaluateRealRuntime.
func BenchmarkDirectSum(b *testing.B) {
	const n = 30000
	sp := points.Generate(points.Cube, n, 1)
	tp := points.Generate(points.Cube, n, 2)
	q := points.Charges(n, 3)
	k := kernel.NewLaplace(kernel.OrderForDigits(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.Direct(k, sp, q, tp, 2)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
