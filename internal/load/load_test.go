package load

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/serve"
)

func testConfig() Config {
	return Config{
		Seed:    7,
		Tenants: 6,
		Phases: []PhaseSpec{
			{Kind: KindCold, Duration: 2 * time.Second, RateRPS: 20},
			{Kind: KindWarm, Duration: 2 * time.Second, RateRPS: 50},
			{Kind: KindMixed, Duration: 2 * time.Second, RateRPS: 50, ColdFraction: 0.25},
		},
	}
}

// The schedule is a pure function of the config: same seed, identical
// arrivals; different seed, a different schedule.
func TestScheduleDeterministicUnderSeed(t *testing.T) {
	c1, c2 := testConfig(), testConfig()
	s1, err := Schedule(&c1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Schedule(&c2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Error("two schedules from one seed differ")
	}
	c3 := testConfig()
	c3.Seed = 8
	s3, err := Schedule(&c3)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(s1, s3) {
		t.Error("different seeds produced the identical schedule")
	}
}

// Phase arrivals respect the script: strictly increasing offsets within the
// duration, cold phases use globally unique never-repeating keys, warm
// phases draw Zipf-skewed tenants (most traffic on the head tenant), and
// mixed phases fold in roughly the scripted cold fraction.
func TestSchedulePhaseShapes(t *testing.T) {
	cfg := testConfig()
	cfg.Phases[1].Duration = 20 * time.Second // more warm draws for the skew check
	phases, err := Schedule(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 3 {
		t.Fatalf("%d phases, want 3", len(phases))
	}

	seenCold := map[int64]bool{}
	for pi, arrivals := range phases {
		spec := cfg.Phases[pi]
		if len(arrivals) == 0 {
			t.Fatalf("phase %d scheduled no arrivals", pi)
		}
		last := time.Duration(-1)
		for _, a := range arrivals {
			if a.At <= last {
				t.Fatalf("phase %d arrivals not strictly increasing: %v after %v", pi, a.At, last)
			}
			last = a.At
			if a.At >= spec.Duration {
				t.Fatalf("phase %d arrival at %v beyond duration %v", pi, a.At, spec.Duration)
			}
			if a.ChargeSeed < 1 || a.ChargeSeed > int64(cfg.ChargeVariants) {
				t.Fatalf("charge seed %d out of [1,%d]", a.ChargeSeed, cfg.ChargeVariants)
			}
			if a.Tenant == -1 {
				if a.Seed < coldSeedBase {
					t.Fatalf("cold arrival with warm seed %d", a.Seed)
				}
				if seenCold[a.Seed] {
					t.Fatalf("cold key %d repeats", a.Seed)
				}
				seenCold[a.Seed] = true
			} else {
				if want := warmSeedBase + int64(a.Tenant); a.Seed != want {
					t.Fatalf("tenant %d has seed %d, want %d", a.Tenant, a.Seed, want)
				}
			}
		}
		// Expected count for a Poisson process is rate*duration; allow wide
		// slack (5 sigma-ish) so the test never flakes.
		mean := spec.RateRPS * spec.Duration.Seconds()
		if f := float64(len(arrivals)); f < mean/2 || f > mean*2 {
			t.Errorf("phase %d scheduled %d arrivals for mean %g", pi, len(arrivals), mean)
		}
	}

	// Cold phase: every arrival cold.
	for _, a := range phases[0] {
		if a.Tenant != -1 {
			t.Fatal("cold phase scheduled a warm arrival")
		}
	}
	// Warm phase: every arrival warm, and the head tenant dominates.
	counts := make([]int, cfg.Tenants)
	for _, a := range phases[1] {
		if a.Tenant < 0 || a.Tenant >= cfg.Tenants {
			t.Fatalf("warm arrival tenant %d out of range", a.Tenant)
		}
		counts[a.Tenant]++
	}
	for tnt := 1; tnt < cfg.Tenants; tnt++ {
		if counts[tnt] > counts[0] {
			t.Errorf("tenant %d drew %d > head tenant's %d (Zipf skew inverted)",
				tnt, counts[tnt], counts[0])
		}
	}
	// Mixed phase: cold fraction in a generous band around the script.
	cold := 0
	for _, a := range phases[2] {
		if a.Tenant == -1 {
			cold++
		}
	}
	frac := float64(cold) / float64(len(phases[2]))
	if frac < 0.05 || frac > 0.60 {
		t.Errorf("mixed phase cold fraction %.2f far from scripted 0.25", frac)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Phases: []PhaseSpec{{Kind: "hot", Duration: time.Second, RateRPS: 1}}},
		{Phases: []PhaseSpec{{Kind: KindCold, RateRPS: 1}}},
		{Phases: []PhaseSpec{{Kind: KindCold, Duration: time.Second}}},
		{Phases: []PhaseSpec{{Kind: KindMixed, Duration: time.Second, RateRPS: 1, ColdFraction: 2}}},
		{ZipfS: 0.5, Phases: []PhaseSpec{{Kind: KindCold, Duration: time.Second, RateRPS: 1}}},
		{}, // no phases
	}
	for i, cfg := range bad {
		if err := cfg.Defaults(); err == nil {
			t.Errorf("config %d validated", i)
		}
	}
}

// End-to-end harness run against an in-process daemon: a short cold/warm
// script produces a well-formed Output whose warm phase hits the cache, and
// Verify accepts the emitted JSON.
func TestRunnerAgainstLiveServer(t *testing.T) {
	s := serve.New(serve.Config{MaxQueue: 256, MaxConcurrent: 4, CacheSize: 32})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	runner, err := NewRunner(Config{
		BaseURL: ts.URL,
		Seed:    3,
		Tenants: 3,
		N:       600,
		Phases: []PhaseSpec{
			{Kind: KindCold, Duration: 500 * time.Millisecond, RateRPS: 10},
			{Kind: KindWarm, Duration: 500 * time.Millisecond, RateRPS: 30},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := runner.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// cold, prime, warm.
	if len(out.Phases) != 3 {
		t.Fatalf("%d phases, want 3 (cold, prime, warm)", len(out.Phases))
	}
	if out.Phases[0].Kind != KindCold || out.Phases[1].Kind != KindPrime || out.Phases[2].Kind != KindWarm {
		t.Fatalf("phase order %q %q %q", out.Phases[0].Kind, out.Phases[1].Kind, out.Phases[2].Kind)
	}
	warm := out.Phases[2]
	if warm.OK == 0 {
		t.Fatal("warm phase served nothing")
	}
	if warm.CacheHits == 0 {
		t.Error("warm phase recorded no cache hits")
	}
	if out.Server == nil {
		t.Error("server metrics delta missing")
	} else if out.Server.OK == 0 {
		t.Error("server metrics delta recorded no OKs")
	}

	data, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(data, true); err != nil {
		t.Errorf("emitted output fails verification: %v", err)
	}
}

func TestVerifyRejectsMalformedOutputs(t *testing.T) {
	ok := Output{
		Bench: "load",
		Phases: []PhaseResult{{
			Name: "warm-0", Kind: KindWarm,
			Offered: 10, Sent: 9, ClientDropped: 1,
			OK: 8, Shed: 1, CacheHits: 4,
			P50US: 10, P99US: 20, P999US: 20, MaxUS: 25,
		}},
	}
	enc := func(o Output) []byte {
		b, err := json.Marshal(o)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if err := Verify(enc(ok), true); err != nil {
		t.Fatalf("valid output rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(o *Output)
	}{
		{"wrong bench tag", func(o *Output) { o.Bench = "hotpath" }},
		{"no phases", func(o *Output) { o.Phases = nil }},
		{"outcomes do not add up", func(o *Output) { o.Phases[0].OK++ }},
		{"offered mismatch", func(o *Output) { o.Phases[0].Offered++ }},
		{"quantiles not monotone", func(o *Output) { o.Phases[0].P50US = 100 }},
		{"unknown kind", func(o *Output) { o.Phases[0].Kind = "tepid" }},
	}
	for _, tc := range cases {
		o := ok
		o.Phases = append([]PhaseResult(nil), ok.Phases...)
		tc.mutate(&o)
		if err := Verify(enc(o), false); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if err := Verify([]byte("{not json"), false); err == nil {
		t.Error("non-JSON accepted")
	}
	noHits := ok
	noHits.Phases = append([]PhaseResult(nil), ok.Phases...)
	noHits.Phases[0].CacheHits = 0
	if err := Verify(enc(noHits), true); err == nil {
		t.Error("zero warm hits accepted with -require-warm-hits")
	}
}
