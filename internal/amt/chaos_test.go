// Chaos harness: full multipole evaluations (cube/sphere x Laplace/Yukawa)
// executed over a fault-injected parcel wire, gated bit-for-bit-tight
// (1e-12 relative) against the fault-free run. This is the acceptance
// harness for the transport stack: the DAG tolerates arbitrary edge
// reordering (Ltaief & Yokota; Agullo et al.), so at-least-once delivery
// with exactly-once effect must leave the potentials unchanged under drops,
// duplication, reordering, and a paused locality.
//
// Run the full matrix with `make chaos`; `go test -short` (the ci target)
// keeps the acceptance profile on all four workloads.
package amt_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/amt"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/points"
)

const (
	chaosLocalities = 4
	chaosWorkers    = 2
	chaosTol        = 1e-12
)

type chaosWorkload struct {
	name string
	dist points.Distribution
	kern func() kernel.Kernel
}

func chaosWorkloads() []chaosWorkload {
	p := kernel.OrderForDigits(3)
	return []chaosWorkload{
		{"cube/laplace", points.Cube, func() kernel.Kernel { return kernel.NewLaplace(p) }},
		{"cube/yukawa", points.Cube, func() kernel.Kernel { return kernel.NewYukawa(p, 4.0) }},
		{"sphere/laplace", points.Sphere, func() kernel.Kernel { return kernel.NewLaplace(p) }},
		{"sphere/yukawa", points.Sphere, func() kernel.Kernel { return kernel.NewYukawa(p, 4.0) }},
	}
}

type chaosProfile struct {
	name  string
	fault amt.FaultProfile
	// acceptance marks the ISSUE's gating profile: drop=10%, dup=10%,
	// reorder on, one paused locality — it must observe at least one retry
	// and one dedup.
	acceptance bool
}

func chaosProfiles() []chaosProfile {
	return []chaosProfile{
		{name: "drop10", fault: amt.FaultProfile{Drop: 0.10}},
		{name: "dup10", fault: amt.FaultProfile{Duplicate: 0.10}},
		{name: "reorder", fault: amt.FaultProfile{Reorder: true, Delay: 200 * time.Microsecond}},
		{name: "slowrank", fault: amt.FaultProfile{SlowRank: 1, SlowDelay: 3 * time.Millisecond}},
		{name: "chaos", acceptance: true, fault: amt.FaultProfile{
			Drop: 0.10, Duplicate: 0.10,
			Reorder: true, ReorderJitter: time.Millisecond,
			SlowRank: 1, SlowDelay: 3 * time.Millisecond,
		}},
	}
}

// chaosDelivery: the retry clock is tuned to the profiles' delay scale —
// base backoff above one slow-rank round trip would hide spurious retries,
// but spurious retransmits are harmless (deduped), so a snappy base keeps
// the harness fast.
func chaosDelivery() amt.DeliveryConfig {
	return amt.DeliveryConfig{
		RetryBase: 4 * time.Millisecond,
		RetryMax:  64 * time.Millisecond,
		Deadline:  120 * time.Second,
	}
}

// TestChaosProfiles is the chaos harness entry point.
func TestChaosProfiles(t *testing.T) {
	n := 1500
	if chaosRace {
		n = 800
	}
	profiles := chaosProfiles()
	if testing.Short() || chaosRace {
		// Short/instrumented runs keep only the acceptance profile (which
		// subsumes every fault class) across all four workloads.
		var keep []chaosProfile
		for _, pf := range profiles {
			if pf.acceptance {
				keep = append(keep, pf)
			}
		}
		profiles = keep
	}

	for _, wl := range chaosWorkloads() {
		wl := wl
		t.Run(wl.name, func(t *testing.T) {
			sp := points.Generate(wl.dist, n, 1)
			tp := points.Generate(wl.dist, n, 2)
			q := points.Charges(n, 3)
			plan, err := core.NewPlan(sp, tp, wl.kern(), core.Options{Threshold: 40})
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := plan.Evaluate(q, core.ExecOptions{
				Localities: chaosLocalities, Workers: chaosWorkers, Seed: 99,
			})
			if err != nil {
				t.Fatalf("fault-free reference run: %v", err)
			}

			for _, pf := range profiles {
				pf := pf
				t.Run(pf.name, func(t *testing.T) {
					fault := pf.fault
					fault.Seed = 42
					got, rep, err := plan.Evaluate(q, core.ExecOptions{
						Localities: chaosLocalities, Workers: chaosWorkers, Seed: 99,
						Fault: &fault, Delivery: chaosDelivery(),
					})
					if err != nil {
						t.Fatalf("%s under %s: %v", wl.name, pf.name, err)
					}
					assertChaosClose(t, got, want)

					ts := rep.Runtime.Transport
					t.Logf("%s/%s: %+v", wl.name, pf.name, ts)
					if ts.DeadlineExceeded != 0 {
						t.Errorf("%d parcels exceeded the delivery deadline", ts.DeadlineExceeded)
					}
					if ts.Delivered != ts.Sent {
						t.Errorf("delivered %d of %d parcels", ts.Delivered, ts.Sent)
					}
					if pf.acceptance {
						if ts.Retried < 1 {
							t.Error("acceptance profile observed no retry")
						}
						if ts.Deduped < 1 {
							t.Error("acceptance profile observed no dedup")
						}
						if ts.Dropped < 1 || ts.Duplicated < 1 {
							t.Errorf("wire injected dropped=%d duplicated=%d, want both >= 1",
								ts.Dropped, ts.Duplicated)
						}
					}
				})
			}
		})
	}
}

// assertChaosClose gates the faulted potentials against the fault-free run
// at 1e-12 relative to the largest potential magnitude — only floating-point
// reassociation from input-arrival order may differ, never a lost or
// double-applied edge (either would blow past the gate by many orders).
func assertChaosClose(t *testing.T, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d potentials, want %d", len(got), len(want))
	}
	var den float64
	for _, w := range want {
		if m := math.Abs(w); m > den {
			den = m
		}
	}
	worst := 0.0
	worstAt := -1
	for i := range got {
		if d := math.Abs(got[i]-want[i]) / den; d > worst {
			worst, worstAt = d, i
		}
	}
	if worst > chaosTol {
		t.Fatalf("potential %d differs by %.3e relative (gate %.0e): %v vs %v",
			worstAt, worst, chaosTol, got[worstAt], want[worstAt])
	}
}
