package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Loader parses and type-checks packages without golang.org/x/tools: the
// target package is parsed from source, and every import is satisfied from
// the compiler's export data, located by shelling out to `go list -export`
// (the toolchain writes it to the build cache). This keeps the framework
// stdlib-only while still giving checkers full go/types information.
type Loader struct {
	Fset *token.FileSet
	// Dir is the directory `go list` runs in (any directory inside the
	// module).
	Dir string

	exports map[string]string // import path -> export file
	imp     types.ImporterFrom
}

// NewLoader returns a loader rooted at dir.
func NewLoader(dir string) *Loader {
	l := &Loader{Fset: token.NewFileSet(), Dir: dir, exports: map[string]string{}}
	l.imp = importer.ForCompiler(l.Fset, "gc", l.lookup).(types.ImporterFrom)
	return l
}

// lookup feeds export data to the gc importer.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	file, ok := l.exports[path]
	if !ok || file == "" {
		// Lazy fallback for paths not pre-seeded (shouldn't happen when
		// ensureExports ran over the package's deps, but keeps LoadDir
		// usable with hand-written fixture imports).
		if err := l.ensureExports([]string{path}); err != nil {
			return nil, err
		}
		file = l.exports[path]
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
	}
	return os.Open(file)
}

// goList runs the go tool in l.Dir and returns stdout.
func (l *Loader) goList(args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	return out.Bytes(), nil
}

// ensureExports populates l.exports for the given packages and all their
// dependencies (compiling them if the build cache is cold).
func (l *Loader) ensureExports(pkgs []string) error {
	args := append([]string{"list", "-deps", "-export", "-f", "{{.ImportPath}}\t{{.Export}}"}, pkgs...)
	out, err := l.goList(args...)
	if err != nil {
		return err
	}
	for _, line := range strings.Split(string(out), "\n") {
		path, file, ok := strings.Cut(line, "\t")
		if !ok {
			continue
		}
		if _, seen := l.exports[path]; !seen || file != "" {
			l.exports[path] = file
		}
	}
	return nil
}

// listedPkg is the subset of `go list -json` this loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
}

// LoadPatterns loads every package matching the go package patterns (e.g.
// "./...") into type-checked passes. Test files are excluded: the invariants
// the checkers enforce live in production code, and linting external test
// packages would double-load every package.
func (l *Loader) LoadPatterns(patterns ...string) ([]*Pass, error) {
	out, err := l.goList(append([]string{"list", "-json=ImportPath,Dir,Name,GoFiles,Imports"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	var targets []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	importSet := map[string]bool{}
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -json: %v", err)
		}
		targets = append(targets, p)
		for _, im := range p.Imports {
			importSet[im] = true
		}
	}
	var imports []string
	for im := range importSet {
		if im != "unsafe" && im != "C" {
			imports = append(imports, im)
		}
	}
	if len(imports) > 0 {
		if err := l.ensureExports(imports); err != nil {
			return nil, err
		}
	}
	var passes []*Pass
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []string
		for _, f := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, f))
		}
		pass, err := l.check(t.ImportPath, t.Name, files)
		if err != nil {
			return nil, err
		}
		passes = append(passes, pass)
	}
	return passes, nil
}

// LoadDir loads a single directory of Go files as one package under the
// given import path. Used by the fixture tests, whose packages live under
// testdata/ where the go tool does not look.
func (l *Loader) LoadDir(dir, importPath string) (*Pass, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, e.Name()))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return l.check(importPath, "", files)
}

// check parses and type-checks one package.
func (l *Loader) check(importPath, name string, files []string) (*Pass, error) {
	var asts []*ast.File
	importSet := map[string]bool{}
	for _, f := range files {
		af, err := parser.ParseFile(l.Fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, af)
		for _, im := range af.Imports {
			p := strings.Trim(im.Path.Value, `"`)
			if p != "unsafe" && p != "C" {
				importSet[p] = true
			}
		}
	}
	var missing []string
	for im := range importSet {
		if l.exports[im] == "" {
			missing = append(missing, im)
		}
	}
	if len(missing) > 0 {
		if err := l.ensureExports(missing); err != nil {
			return nil, err
		}
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(importPath, l.Fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	_ = name
	return &Pass{Fset: l.Fset, Files: asts, Pkg: pkg, Info: info, Path: importPath}, nil
}

// Import implements types.Importer (unused path; ImportFrom does the work).
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Dir, 0)
}

// ImportFrom implements types.ImporterFrom by delegating to the gc export
// importer, special-casing unsafe.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return l.imp.ImportFrom(path, dir, mode)
}
