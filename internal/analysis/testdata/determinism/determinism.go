// Package determinism is a fixture for the determinism analyzer; the test
// configures the checker with this package's import path.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

// seededOK builds an explicitly seeded generator: true negative.
func seededOK() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

// nowBad reads the wall clock: true positive.
func nowBad() int64 {
	return time.Now().UnixNano() // want "wall clock"
}

// sinceBad measures wall time: true positive.
func sinceBad(t0 time.Time) time.Duration {
	return time.Since(t0) // want "wall clock"
}

// globalRandBad draws from the process-global source: true positive.
func globalRandBad() float64 {
	return rand.Float64() // want "process-global"
}

// nowSuppressed is the wall-clock read with a justified suppression.
func nowSuppressed() time.Time {
	//lint:ignore determinism benchmark scaffolding, excluded from results
	return time.Now()
}

// mapRangeBad builds ordered output from randomized map iteration: true
// positive.
func mapRangeBad(m map[int]float64) []float64 {
	var out []float64
	for _, v := range m { // want "map iteration"
		out = append(out, v)
	}
	return out
}

// sortedKeysOK ranges the map via sorted keys — the range over the key
// slice is fine; only the collection loop touches the map, suppressed with
// an explanation of why it commutes.
func sortedKeysOK(m map[int]float64) []float64 {
	keys := make([]int, 0, len(m))
	//lint:ignore determinism key collection commutes; output is ordered by the sort below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]float64, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// sliceRangeOK ranges a slice: true negative.
func sliceRangeOK(s []float64) float64 {
	var t float64
	for _, v := range s {
		t += v
	}
	return t
}
