// Package analysis is a stdlib-only static-analysis framework for this
// repository's concurrency and determinism invariants, plus the checker
// suite behind cmd/dashmm-lint.
//
// The AMT runtime's correctness rests on hand-written contracts — "this
// field is only touched under that mutex", "this counter is only accessed
// through sync/atomic", "this hot path must not allocate", "this package
// must stay deterministic" — that reviews enforced by vigilance. The
// checkers here enforce them mechanically. Everything is built on go/ast,
// go/parser, go/types and go/token; no golang.org/x/tools dependency.
//
// Contracts are declared in source with three annotations (see DESIGN.md,
// "Invariant catalog"):
//
//	// guarded by mu            on a struct field: only touch under <mu>
//	// guarded by Type.mu       same, with the mutex on another struct
//	//dashmm:locked Type.mu — reason
//	                            on a func: caller/callee holds the mutex
//	//dashmm:noalloc            on a func: hot path, no allocation idioms
//	//dashmm:detached reason    on a func with a go statement that has no
//	                            lexical teardown (fire-and-forget)
//
// False positives are silenced per line with
//
//	//lint:ignore <check>[,<check>...] reason
//
// on the flagged line or the line above it. The reason is mandatory: an
// unexplained suppression is itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, anchored to a source position. Detail, when
// set, carries the multi-line supporting evidence — an acquisition chain
// for lockorder, the field-by-field wire layout for wireproto — that is
// too long for the one-line Message but belongs in -json output.
type Diagnostic struct {
	Check   string
	Pos     token.Position
	Message string
	Detail  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzer is one checker. Run inspects the package in the Pass and reports
// findings through Pass.Report; the driver handles suppression, sorting and
// rendering.
type Analyzer interface {
	// Name is the short identifier used in output and //lint:ignore.
	Name() string
	// Doc is a one-line description.
	Doc() string
	// Run analyzes one type-checked package.
	Run(p *Pass)
}

// Finisher is an optional Analyzer extension for interprocedural checkers:
// Run accumulates per-package facts, and after every pass has been visited
// the driver calls Finish once for the cross-package findings (which are
// still subject to //lint:ignore suppression, keyed by Diagnostic.Check).
type Finisher interface {
	Analyzer
	Finish() []Diagnostic
}

// Pass is one type-checked package presented to an Analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Path is the package's import path ("repro/internal/amt").
	Path string

	current Analyzer
	diags   []Diagnostic
}

// Report records a finding of the running analyzer at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Check:   p.current.Name(),
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over the passes, drops suppressed diagnostics,
// and returns the rest sorted by position. Malformed suppression comments
// are reported as diagnostics of the pseudo-check "lint".
func Run(passes []*Pass, analyzers []Analyzer) []Diagnostic {
	// The suppression table is merged across passes (it is keyed by
	// filename, so entries cannot leak between packages) because Finisher
	// analyzers report after every pass has run, possibly into files of
	// any earlier pass.
	sup := newSuppressions()
	var out []Diagnostic
	for _, p := range passes {
		out = append(out, sup.collect(p.Fset, p.Files)...)
	}
	for _, p := range passes {
		for _, a := range analyzers {
			p.current = a
			p.diags = p.diags[:0]
			a.Run(p)
			for _, d := range p.diags {
				if !sup.suppressed(a.Name(), d.Pos) {
					out = append(out, d)
				}
			}
		}
		p.current = nil
	}
	for _, a := range analyzers {
		f, ok := a.(Finisher)
		if !ok {
			continue
		}
		for _, d := range f.Finish() {
			if !sup.suppressed(d.Check, d.Pos) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Check < out[j].Check
	})
	return out
}

// DefaultAnalyzers returns the full checker suite in its canonical order.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		NewLockGuard(),
		NewAtomicField(),
		NewDeterminism(),
		NewNoAlloc(),
		NewGoroutine(),
		NewLockOrder(),
		NewWireProto(),
	}
}

// ---- shared annotation helpers ----

// commentHasDirective reports whether the comment group contains the given
// directive (e.g. "dashmm:noalloc") and returns the rest of its line. Only
// the strict Go directive form matches — `//dashmm:...` with no space after
// the slashes — so prose that merely mentions a directive does not.
func commentHasDirective(cg *ast.CommentGroup, directive string) (rest string, ok bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		text, found := strings.CutPrefix(c.Text, "//"+directive)
		if !found {
			continue
		}
		if text == "" {
			return "", true
		}
		if strings.HasPrefix(text, " ") {
			return strings.TrimSpace(text), true
		}
	}
	return "", false
}

// funcHasDirective checks a function's doc comment for a //dashmm:...
// directive.
func funcHasDirective(fn *ast.FuncDecl, directive string) (rest string, ok bool) {
	return commentHasDirective(fn.Doc, directive)
}

// namedOf unwraps pointers and returns the named type of t, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return nil
		}
	}
}

// isMutexType reports whether t (after unwrapping pointers) is sync.Mutex
// or sync.RWMutex.
func isMutexType(t types.Type) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// structFieldByName returns the field named name of struct type st, or nil.
func structFieldByName(st *types.Struct, name string) *types.Var {
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == name {
			return f
		}
	}
	return nil
}

// lookupNamed resolves a type name in the package scope to its named type
// with struct underlying, or nil.
func lookupNamed(pkg *types.Package, name string) (*types.Named, *types.Struct) {
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return nil, nil
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil, nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return named, nil
	}
	return named, st
}

// sameNamed reports whether two types refer to the same named type after
// unwrapping pointers.
func sameNamed(a, b types.Type) bool {
	na, nb := namedOf(a), namedOf(b)
	return na != nil && nb != nil && na.Obj() == nb.Obj()
}

// walkFuncs visits every top-level function declaration with a body.
func walkFuncs(p *Pass, visit func(file *ast.File, fn *ast.FuncDecl)) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			visit(f, fn)
		}
	}
}

// recvNamed returns the named type of a method's receiver, or nil for plain
// functions.
func recvNamed(p *Pass, fn *ast.FuncDecl) *types.Named {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return nil
	}
	tv, ok := p.Info.Types[fn.Recv.List[0].Type]
	if !ok {
		return nil
	}
	return namedOf(tv.Type)
}
