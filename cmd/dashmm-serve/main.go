// Command dashmm-serve is the long-lived evaluation daemon: it keeps built
// plans (tree + DAG + kernel tables), evaluation contexts and amt runtimes
// warm across requests, so the iterative-evaluation amortization of the
// paper's Section IV extends across clients of a service.
//
// Endpoints:
//
//	POST /evaluate      JSON evaluation request -> potentials + report
//	GET  /healthz       liveness
//	GET  /metrics       counters, gauges and per-phase latency histograms
//	GET  /debug/pprof/  standard pprof handlers
//
// A minimal request is {"n": 10000}; see internal/serve.Request for the
// full schema (distribution / inline points, kernel, accuracy, execution
// shape, charges, deadline_ms, trace).
//
// Example:
//
//	dashmm-serve -addr :8075 &
//	curl -s localhost:8075/evaluate -d '{"n":20000,"workers":4}' | head -c 200
//	curl -s localhost:8075/metrics
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8075", "listen address")
		maxQueue   = flag.Int("max-queue", 64, "admission queue depth; excess requests get 429")
		maxConc    = flag.Int("max-concurrent", 2, "evaluations running at once")
		cacheSize  = flag.Int("cache-size", 16, "plan-cache capacity (plans)")
		deadline   = flag.Duration("default-deadline", 30*time.Second, "deadline for requests without deadline_ms")
		maxPoints  = flag.Int("max-points", 200000, "largest accepted ensemble (-1 = unlimited)")
		drainGrace = flag.Duration("drain", 10*time.Second, "shutdown grace period")
	)
	flag.Parse()

	srv := serve.New(serve.Config{
		MaxQueue:        *maxQueue,
		MaxConcurrent:   *maxConc,
		CacheSize:       *cacheSize,
		DefaultDeadline: *deadline,
		MaxPoints:       *maxPoints,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("dashmm-serve: draining (up to %v)", *drainGrace)
		ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("dashmm-serve: forced shutdown: %v", err)
		}
		close(done)
	}()

	log.Printf("dashmm-serve: listening on %s (queue=%d, concurrent=%d, cache=%d plans)",
		*addr, *maxQueue, *maxConc, *cacheSize)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
}
