// Package repro is a from-scratch Go reproduction of "Scalable Hierarchical
// Multipole Methods using an Asynchronous Many-Tasking Runtime System"
// (DeBuhr, Zhang, D'Alessandro; IPDPSW 2017): the DASHMM framework — generic
// FMM/Barnes–Hut evaluation driven by a dataflow DAG of LCOs — on an
// HPX-5-style AMT runtime substrate, together with the discrete-event
// machinery that regenerates every table and figure of the paper's
// evaluation.
//
// The library lives under internal/: see internal/core for the DASHMM-style
// user API, internal/amt for the runtime, internal/kernel for the Laplace
// and Yukawa operators, and DESIGN.md for the full system inventory. The
// benchmarks in bench_test.go index the paper's tables and figures; the
// companion commands cmd/dagstat, cmd/scaling and cmd/dashmm-bench print
// them in the paper's layout.
package repro
