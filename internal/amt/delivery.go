package amt

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// Reliable parcel delivery over an unreliable Transport: per-(src,dst)
// sequence numbers, receiver-side dedup, acks, and retransmission with
// exponential backoff + jitter under a delivery deadline. The wire contract
// is at-least-once; the dedup filter turns it into exactly-once effect, so
// every parcel's LCO inputs are applied once no matter how many copies
// arrive. Over a Transport that declares itself Reliable the whole mechanism
// is bypassed (no sequence numbers, no acks, no timers) — the hot path stays
// identical to the pre-transport runtime.

// DeliveryConfig tunes the reliable-delivery layer. The zero value picks the
// defaults noted on each field.
type DeliveryConfig struct {
	// RetryBase is the backoff before the first retransmission (default
	// 2ms); each further attempt doubles it up to RetryMax (default 64ms).
	RetryBase time.Duration
	RetryMax  time.Duration
	// RetryJitter widens each backoff by a uniform multiplicative factor in
	// [1, 1+RetryJitter], decorrelating retransmission bursts (default 0.5).
	RetryJitter float64
	// Deadline bounds how long a parcel may stay unacked before the sender
	// gives up (default 10s). A deadline-exceeded parcel is counted and its
	// action is abandoned — the evaluation will report the missing inputs.
	Deadline time.Duration
}

func (c DeliveryConfig) withDefaults() DeliveryConfig {
	if c.RetryBase <= 0 {
		c.RetryBase = 2 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 64 * time.Millisecond
	}
	if c.RetryJitter <= 0 {
		c.RetryJitter = 0.5
	}
	if c.Deadline <= 0 {
		c.Deadline = 10 * time.Second
	}
	return c
}

// TransportStats counts parcel-transport activity during one Run: the
// delivery layer's view (sent/retried/acked/deadline, delivered/deduped) plus
// the wire's own fault counters (dropped/duplicated).
type TransportStats struct {
	// Sender side.
	Sent             int64 // application parcels handed to the wire
	Retried          int64 // retransmissions
	Acked            int64 // parcels settled by an ack
	DeadlineExceeded int64 // parcels abandoned: delivery deadline or run teardown
	// Receiver side.
	Delivered int64 // first copies: the parcel action was spawned
	Deduped   int64 // redundant copies suppressed by the sequence filter
	// Crash handling.
	Severed   int64 // parcels abandoned because an endpoint rank died
	LateDrops int64 // copies arriving after the runtime shut down
	// Wire faults (from Transport.Stats).
	Dropped    int64
	Duplicated int64
	// Wire volume and connection health (from Transport.Stats): messages and
	// bytes actually carried (modeled bytes on in-process wires, encoded
	// frame bytes on socket wires), plus the socket transport's reconnect and
	// rejected-handshake counters.
	WireMessages      int64
	BytesOut, BytesIn int64
	Reconnects        int64
	HandshakeFailures int64
	StaleFenced       int64
}

// pairKey identifies one directed (src, dst) parcel channel.
type pairKey struct{ src, dst int32 }

// sendEntry is the sender-side record of one unacked parcel. Every mutable
// field is owned by the delivery engine's critical section.
type sendEntry struct {
	key      pairKey
	seq      uint64
	bytes    int
	deadline time.Time
	backoff  time.Duration // guarded by delivery.mu
	timer    *time.Timer   // guarded by delivery.mu
	settled  bool          // guarded by delivery.mu
}

// delivery is the per-runtime parcel delivery engine.
type delivery struct {
	rt   *Runtime
	cfg  DeliveryConfig
	wire Transport
	// fastPath short-circuits SendParcel straight to Locality.Spawn for the
	// zero-latency perfect wire, keeping the steady-state remote send
	// allocation-free.
	fastPath bool

	mu      sync.Mutex
	rng     *rand.Rand                        // guarded by mu
	nextSeq map[pairKey]uint64                // guarded by mu
	unacked map[pairKey]map[uint64]*sendEntry // guarded by mu
	// seen is the receiver-side dedup filter. In-process it simply grows
	// with the parcel count of one single-shot run; a long-lived transport
	// would compact it with a cumulative-ack watermark.
	seen map[pairKey]map[uint64]bool // guarded by mu

	// dead marks ranks whose endpoints have been severed by a failure
	// verdict. Allocated only on killable runtimes; sized from the config
	// because newDelivery runs before the localities are built.
	dead []atomic.Bool

	sent             atomic.Int64
	retried          atomic.Int64
	acked            atomic.Int64
	deadlineExceeded atomic.Int64
	delivered        atomic.Int64
	deduped          atomic.Int64
	severed          atomic.Int64
	lateDrops        atomic.Int64
}

func newDelivery(rt *Runtime, wire Transport, cfg DeliveryConfig, seed int64) *delivery {
	pt, perfect := wire.(*PerfectTransport)
	d := &delivery{
		rt:       rt,
		cfg:      cfg.withDefaults(),
		wire:     wire,
		fastPath: perfect && pt.Latency == 0,
		rng:      rand.New(rand.NewSource(seed*6364136223846793005 + 1442695040888963407)),
		nextSeq:  make(map[pairKey]uint64),
		unacked:  make(map[pairKey]map[uint64]*sendEntry),
		seen:     make(map[pairKey]map[uint64]bool),
	}
	if rt.killable || rt.cfg.World > 1 {
		// Wire mode fences by global rank, so the dead table spans the world
		// even though only one locality lives in this process.
		n := rt.cfg.Localities
		if rt.cfg.World > n {
			n = rt.cfg.World
		}
		d.dead = make([]atomic.Bool, n)
	}
	return d
}

// sever tears down a dead rank's transport endpoints: future sends to it
// are refused, every in-flight unacked parcel touching it (either
// direction) is settled — stopping its retransmission timer and releasing
// its pending unit — so retry loops aimed at a corpse end at the detector
// verdict instead of hammering the wire until the delivery deadline.
func (d *delivery) sever(rank int) {
	if d.dead == nil {
		return
	}
	d.dead[rank].Store(true)
	var timers []*time.Timer
	n := 0
	d.mu.Lock()
	for key, um := range d.unacked {
		if int(key.src) != rank && int(key.dst) != rank {
			continue
		}
		for seq, e := range um {
			if e.settled {
				continue
			}
			e.settled = true
			delete(um, seq)
			if e.timer != nil {
				timers = append(timers, e.timer)
			}
			n++
		}
	}
	d.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
	if n > 0 {
		d.severed.Add(int64(n))
		for i := 0; i < n; i++ {
			d.rt.finish()
		}
	}
}

// purge settles every outstanding unacked parcel regardless of endpoint:
// retransmission timers are stopped and the pending units released. Called
// at Run teardown so a failed or aborted run's stragglers cannot keep
// retransmitting into the transport after Run returns. On a long-lived wire
// the next run shares the socket, and a re-emitted frame is stamped with
// the *current* cluster generation at send time — a dead run's payload
// would ride straight through the next run's generation fence and shadow
// its real broadcast. A clean run has nothing unacked, so this is a no-op
// on the success path (and always on the fast path, which never registers
// entries).
func (d *delivery) purge() {
	var timers []*time.Timer
	n := 0
	d.mu.Lock()
	for _, um := range d.unacked {
		for seq, e := range um {
			if e.settled {
				continue
			}
			e.settled = true
			delete(um, seq)
			if e.timer != nil {
				timers = append(timers, e.timer)
			}
			n++
		}
	}
	d.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
	if n > 0 {
		d.deadlineExceeded.Add(int64(n))
		for i := 0; i < n; i++ {
			d.rt.finish()
		}
	}
}

// rankDead reports whether a rank's endpoints have been severed.
func (d *delivery) rankDead(rank int32) bool {
	return d.dead != nil && d.dead[rank].Load()
}

// stats merges the delivery-layer counters with the wire's fault counters.
func (d *delivery) stats() TransportStats {
	w := d.wire.Stats()
	return TransportStats{
		Sent:              d.sent.Load(),
		Retried:           d.retried.Load(),
		Acked:             d.acked.Load(),
		DeadlineExceeded:  d.deadlineExceeded.Load(),
		Delivered:         d.delivered.Load(),
		Deduped:           d.deduped.Load(),
		Severed:           d.severed.Load(),
		LateDrops:         d.lateDrops.Load(),
		Dropped:           w.Dropped,
		Duplicated:        w.Duplicated,
		WireMessages:      w.Messages,
		BytesOut:          w.BytesOut,
		BytesIn:           w.BytesIn,
		Reconnects:        w.Reconnects,
		HandshakeFailures: w.HandshakeFailures,
		StaleFenced:       w.StaleFenced,
	}
}

// send conveys one remote parcel. Over a reliable wire it is a single
// (possibly latency-delayed) hop; over an unreliable wire it allocates a
// sequence number, registers the parcel for retransmission, and holds one
// runtime pending unit until the parcel settles (ack or deadline) so Run
// cannot drain while deliveries are outstanding.
func (d *delivery) send(src, dst, bytes int, action Task) {
	rt := d.rt
	if d.rankDead(int32(dst)) {
		// The destination has been declared dead: refuse the send outright
		// rather than spinning a retransmission loop at a corpse.
		d.severed.Add(1)
		return
	}
	if d.wire.Reliable() {
		rt.pending.Add(1)
		d.wire.Send(Message{Src: src, Dst: dst, Bytes: bytes, Deliver: func() {
			rt.locs[dst].Spawn(action)
			rt.finish()
		}})
		return
	}

	key := pairKey{int32(src), int32(dst)}
	d.mu.Lock()
	seq := d.nextSeq[key] + 1
	d.nextSeq[key] = seq
	e := &sendEntry{
		key:      key,
		seq:      seq,
		bytes:    bytes,
		deadline: time.Now().Add(d.cfg.Deadline),
		backoff:  d.cfg.RetryBase,
	}
	um := d.unacked[key]
	if um == nil {
		um = make(map[uint64]*sendEntry)
		d.unacked[key] = um
	}
	um[seq] = e
	d.mu.Unlock()

	rt.pending.Add(1) // released when the entry settles
	d.sent.Add(1)
	d.transmit(e, action)
}

// transmit puts one copy of the parcel on the wire and arms the
// retransmission timer with the entry's current (jittered) backoff.
func (d *delivery) transmit(e *sendEntry, action Task) {
	m := Message{
		Src: int(e.key.src), Dst: int(e.key.dst), Bytes: e.bytes, Seq: e.seq,
		Deliver: func() { d.onData(e.key, e.seq, action) },
	}
	d.mu.Lock()
	if e.settled {
		d.mu.Unlock()
		return
	}
	wait := time.Duration(float64(e.backoff) * (1 + d.rng.Float64()*d.cfg.RetryJitter))
	if e.backoff < d.cfg.RetryMax {
		e.backoff *= 2
		if e.backoff > d.cfg.RetryMax {
			e.backoff = d.cfg.RetryMax
		}
	}
	e.timer = time.AfterFunc(wait, func() { d.retry(e, action) })
	d.mu.Unlock()
	d.wire.Send(m)
}

// retry fires when a parcel stayed unacked for one backoff period: give up
// past the deadline, otherwise retransmit. A retransmission the receiver had
// in fact already processed is harmless — the dedup filter suppresses it and
// re-acks.
func (d *delivery) retry(e *sendEntry, action Task) {
	severed := d.rankDead(e.key.dst) || d.rankDead(e.key.src)
	d.mu.Lock()
	if e.settled {
		d.mu.Unlock()
		return
	}
	expired := time.Now().After(e.deadline)
	if expired || severed {
		e.settled = true
		delete(d.unacked[e.key], e.seq)
	}
	d.mu.Unlock()
	if severed {
		// An endpoint died after this entry was registered (or the sever
		// sweep raced this timer): stop retransmitting and settle.
		d.severed.Add(1)
		d.rt.finish()
		return
	}
	if expired {
		d.deadlineExceeded.Add(1)
		d.record(trace.ClassNetDeadline)
		d.rt.finish()
		return
	}
	d.retried.Add(1)
	d.record(trace.ClassNetRetry)
	d.transmit(e, action)
}

// onData runs at the destination for every arriving copy of a data parcel:
// the first copy spawns the action, later copies only bump the dedup
// counter. Every copy acks (the previous ack may have been lost).
func (d *delivery) onData(key pairKey, seq uint64, action Task) {
	if d.rankDead(key.dst) || d.rt.Dead(int(key.dst)) {
		// A dead rank processes nothing and acks nothing — even inside the
		// detection window, before the verdict severs the endpoint. The
		// sender retries until sever (or the deadline) settles the entry.
		return
	}
	if d.rt.shuttingDown.Load() {
		// A copy straggling in after the run completed: count it (never
		// silently lose it) and still ack so the sender settles.
		d.lateDrops.Add(1)
		d.wire.Send(Message{
			Src: int(key.dst), Dst: int(key.src), Seq: seq, Ack: true,
			Deliver: func() { d.onAck(key, seq) },
		})
		return
	}
	d.mu.Lock()
	sm := d.seen[key]
	if sm == nil {
		sm = make(map[uint64]bool)
		d.seen[key] = sm
	}
	dup := sm[seq]
	sm[seq] = true
	d.mu.Unlock()

	if dup {
		d.deduped.Add(1)
	} else {
		d.delivered.Add(1)
		d.rt.locs[key.dst].Spawn(action)
	}
	d.wire.Send(Message{
		Src: int(key.dst), Dst: int(key.src), Seq: seq, Ack: true,
		Deliver: func() { d.onAck(key, seq) },
	})
}

// onAck settles the entry on the first ack; duplicate acks (and acks for
// parcels already abandoned at the deadline) are no-ops.
func (d *delivery) onAck(key pairKey, seq uint64) {
	d.mu.Lock()
	e := d.unacked[key][seq]
	var timer *time.Timer
	if e != nil && !e.settled {
		e.settled = true
		delete(d.unacked[key], seq)
		timer = e.timer
	} else {
		e = nil
	}
	d.mu.Unlock()
	if e == nil {
		return
	}
	if timer != nil {
		timer.Stop()
	}
	d.acked.Add(1)
	d.rt.finish()
}

func (d *delivery) record(class uint8) {
	tr := d.rt.cfg.Tracer
	if !tr.Enabled() {
		return
	}
	now := tr.Now()
	tr.RecordVirtual(trace.Event{Class: class, Worker: -1, Locality: -1, Start: now, End: now})
}
