package dist

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/geom"
	"repro/internal/kernel"
	"repro/internal/points"
	"repro/internal/tree"
)

func distGraph(t testing.TB) *dag.Graph {
	t.Helper()
	sp := points.Generate(points.Cube, 20000, 1)
	tp := points.Generate(points.Cube, 20000, 2)
	dom := geom.BoundingCube(sp, tp)
	src := tree.Build(sp, dom, 60)
	tgt := tree.Build(tp, dom, 60)
	lists := tree.DualLists(tgt, src)
	k := kernel.NewLaplace(3)
	k.Prepare(dom.Side, 7)
	return dag.Build(dag.Config{Method: dag.Advanced}, src, tgt, lists, k)
}

func TestAllPoliciesAssignEveryNode(t *testing.T) {
	g := distGraph(t)
	for _, pol := range []Policy{Block{}, Cyclic{}, MinComm{}} {
		for _, L := range []int{1, 3, 8} {
			pol.Assign(g, L)
			for i := range g.Nodes {
				loc := g.Nodes[i].Locality
				if loc < 0 || loc >= int32(L) {
					t.Fatalf("%s/L=%d: node %d assigned to %d", pol.Name(), L, i, loc)
				}
			}
		}
	}
}

// The paper's hard constraint: S/T bundles and leaf M/L expansions are
// pinned to the locality owning the underlying points.
func TestLeafPinningConstraint(t *testing.T) {
	g := distGraph(t)
	const L = 4
	ns := len(g.Source.Pts)
	nt := len(g.Target.Pts)
	for _, pol := range []Policy{Block{}, Cyclic{}, MinComm{}} {
		pol.Assign(g, L)
		for i := range g.Nodes {
			n := &g.Nodes[i]
			var want int32 = -1
			switch {
			case n.Kind == dag.NodeS:
				want = owner(n.Box, ns, L)
			case n.Kind == dag.NodeT:
				want = owner(n.Box, nt, L)
			case n.Kind == dag.NodeM && n.Box.IsLeaf():
				want = owner(n.Box, ns, L)
			case n.Kind == dag.NodeL && n.Box.IsLeaf():
				want = owner(n.Box, nt, L)
			}
			if want >= 0 && n.Locality != want {
				t.Fatalf("%s: %v node of leaf %v at locality %d, pinned owner is %d",
					pol.Name(), n.Kind, n.Box.Index, n.Locality, want)
			}
		}
	}
}

func TestPolicyTrafficOrdering(t *testing.T) {
	g := distGraph(t)
	const L = 8
	bytes := map[string]int64{}
	for _, pol := range []Policy{Block{}, Cyclic{}, MinComm{}} {
		pol.Assign(g, L)
		bytes[pol.Name()] = RemoteBytes(g)
	}
	if bytes["mincomm"] > bytes["block"] {
		t.Errorf("mincomm (%d) worse than block (%d)", bytes["mincomm"], bytes["block"])
	}
	if bytes["block"] >= bytes["cyclic"] {
		t.Errorf("block (%d) not below cyclic (%d)", bytes["block"], bytes["cyclic"])
	}
}

func TestSingleLocalityHasNoRemoteTraffic(t *testing.T) {
	g := distGraph(t)
	MinComm{}.Assign(g, 1)
	if b := RemoteBytes(g); b != 0 {
		t.Errorf("remote bytes %d with one locality", b)
	}
	if e := RemoteEdges(g); e != 0 {
		t.Errorf("remote edges %d with one locality", e)
	}
}

func TestOwnerIsContiguousAndBalanced(t *testing.T) {
	g := distGraph(t)
	const L = 5
	// Leaf owners must be non-decreasing in tree (Morton) order and cover
	// all localities roughly evenly.
	counts := make([]int, L)
	prev := int32(0)
	for _, b := range g.Source.Leaves {
		o := owner(b, len(g.Source.Pts), L)
		if o < prev {
			t.Fatalf("owner order violated at %v: %d after %d", b.Index, o, prev)
		}
		prev = o
		counts[o] += b.NPoints()
	}
	total := len(g.Source.Pts)
	for l, c := range counts {
		frac := float64(c) / float64(total)
		if frac < 0.5/L || frac > 2.0/L {
			t.Errorf("locality %d owns %.2f of the points; want about %.2f", l, frac, 1.0/L)
		}
	}
}
