package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/geom"
	"repro/internal/kernel"
	"repro/internal/points"
)

// directRef computes reference potentials with the O(N^2) sum on a sample
// of target indices (full direct sums are too slow for the larger cases).
func directRef(k kernel.Kernel, spts []geom.Point, q []float64, tpts []geom.Point, sample []int) map[int]float64 {
	out := make(map[int]float64, len(sample))
	for _, ti := range sample {
		var acc float64
		for si, sp := range spts {
			acc += q[si] * k.Direct(tpts[ti], sp)
		}
		out[ti] = acc
	}
	return out
}

func sampleIdx(rng *rand.Rand, n, count int) []int {
	idx := make([]int, count)
	for i := range idx {
		idx[i] = rng.Intn(n)
	}
	return idx
}

// maxRelErr compares got against the reference sample, normalizing by the
// largest reference magnitude (the standard FMM accuracy metric).
func maxRelErr(got []float64, ref map[int]float64) float64 {
	var num, den float64
	for i, want := range ref {
		if d := math.Abs(got[i] - want); d > num {
			num = d
		}
		if m := math.Abs(want); m > den {
			den = m
		}
	}
	return num / den
}

// TestAccuracyEndToEnd is the paper's 3-digit accuracy gate (Section V-A):
// both kernels, both distributions, distinct source and target ensembles,
// threshold 60.
func TestAccuracyEndToEnd(t *testing.T) {
	if raceEnabled {
		t.Skip("sequential accuracy gate: no concurrency to instrument, ~10x slower under race")
	}
	const n = 6000
	p := kernel.OrderForDigits(3)
	for _, distrib := range []points.Distribution{points.Cube, points.Sphere} {
		sp := points.Generate(distrib, n, 11)
		tp := points.Generate(distrib, n, 22)
		q := points.Charges(n, 33)
		for _, k := range []kernel.Kernel{kernel.NewLaplace(p), kernel.NewYukawa(p, 4.0)} {
			plan, err := NewPlan(sp, tp, k, Options{Threshold: 60})
			if err != nil {
				t.Fatal(err)
			}
			got, err := plan.EvaluateSequential(q)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(44))
			ref := directRef(k, sp, q, tp, sampleIdx(rng, n, 50))
			if e := maxRelErr(got, ref); e > 1.5e-3 {
				t.Errorf("%v/%s: rel err %.2e > 1.5e-3", distrib, k.Name(), e)
			} else {
				t.Logf("%v/%s: rel err %.2e", distrib, k.Name(), e)
			}
		}
	}
}

// TestAccuracyM2LPaths extends the E9 gate to the hot-path overhaul's
// M→L operator cache: the basic method's M2L edges are evaluated once
// through the cached dense translation matrices and once through the
// projection fallback, and both must pass the 3-digit gate against direct
// summation — for both kernels, on the cube and sphere distributions.
// The two paths must also agree with each other to near machine
// precision, since the cached matrix is built from the same translation
// operator it replaces.
func TestAccuracyM2LPaths(t *testing.T) {
	if raceEnabled {
		t.Skip("sequential accuracy gate: no concurrency to instrument, ~10x slower under race")
	}
	const n = 600
	p := kernel.OrderForDigits(3)
	for _, distrib := range []points.Distribution{points.Cube, points.Sphere} {
		sp := points.Generate(distrib, n, 11)
		tp := points.Generate(distrib, n, 22)
		q := points.Charges(n, 33)
		for _, k := range []kernel.Kernel{kernel.NewLaplace(p), kernel.NewYukawa(p, 4.0)} {
			ck, ok := k.(interface{ SetM2LCache(bool) })
			if !ok {
				t.Fatalf("%s kernel does not expose the M2L cache toggle", k.Name())
			}
			plan, err := NewPlan(sp, tp, k, Options{Method: dag.Basic, Threshold: 60})
			if err != nil {
				t.Fatal(err)
			}
			// Guard against a vacuous pass: the plan must actually carry
			// M2L edges for the cache to translate.
			if plan.Graph.EdgeCount[dag.OpM2L] == 0 {
				t.Fatalf("%v/%s: basic plan has no M2L edges", distrib, k.Name())
			}
			cached, err := plan.EvaluateSequential(q)
			if err != nil {
				t.Fatal(err)
			}
			ck.SetM2LCache(false)
			projected, err := plan.EvaluateSequential(q)
			ck.SetM2LCache(true)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(44))
			ref := directRef(k, sp, q, tp, sampleIdx(rng, n, 50))
			if e := maxRelErr(cached, ref); e > 1.5e-3 {
				t.Errorf("%v/%s cached M2L: rel err %.2e > 1.5e-3", distrib, k.Name(), e)
			}
			if e := maxRelErr(projected, ref); e > 1.5e-3 {
				t.Errorf("%v/%s projected M2L: rel err %.2e > 1.5e-3", distrib, k.Name(), e)
			}
			var den float64
			for i := range projected {
				if m := math.Abs(projected[i]); m > den {
					den = m
				}
			}
			for i := range cached {
				if math.Abs(cached[i]-projected[i])/den > 1e-9 {
					t.Fatalf("%v/%s: cached and projected M2L diverge at %d: %v vs %v",
						distrib, k.Name(), i, cached[i], projected[i])
				}
			}
		}
	}
}

func TestAccuracyBasicMethodMatchesAdvanced(t *testing.T) {
	if raceEnabled {
		t.Skip("sequential accuracy gate: no concurrency to instrument, ~10x slower under race")
	}
	const n = 4000
	sp := points.Generate(points.Cube, n, 1)
	tp := points.Generate(points.Cube, n, 2)
	q := points.Charges(n, 3)
	k := kernel.NewLaplace(kernel.OrderForDigits(3))
	adv, err := NewPlan(sp, tp, k, Options{Method: dag.Advanced, Threshold: 40})
	if err != nil {
		t.Fatal(err)
	}
	bas, err := NewPlan(sp, tp, k, Options{Method: dag.Basic, Threshold: 40})
	if err != nil {
		t.Fatal(err)
	}
	a, err := adv.EvaluateSequential(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bas.EvaluateSequential(q)
	if err != nil {
		t.Fatal(err)
	}
	var den float64
	for i := range b {
		if m := math.Abs(b[i]); m > den {
			den = m
		}
	}
	for i := range a {
		if math.Abs(a[i]-b[i])/den > 2e-3 {
			t.Fatalf("advanced and basic disagree at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestAccuracyBarnesHut(t *testing.T) {
	const n = 5000
	sp := points.Generate(points.Plummer, n, 5)
	tp := points.Generate(points.Plummer, n, 6)
	q := points.UnitCharges(n)
	k := kernel.NewLaplace(6)
	plan, err := NewPlan(sp, tp, k, Options{Method: dag.BarnesHut, Threshold: 30, Theta: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.EvaluateSequential(q)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	ref := directRef(k, sp, q, tp, sampleIdx(rng, n, 40))
	if e := maxRelErr(got, ref); e > 5e-3 {
		t.Errorf("barnes-hut rel err %.2e > 5e-3", e)
	}
}

func TestIdenticalEnsembles(t *testing.T) {
	// The traditional N-body case: each point is both source and target;
	// self-interaction must be excluded.
	const n = 3000
	pts := points.Generate(points.Cube, n, 9)
	q := points.Charges(n, 10)
	k := kernel.NewLaplace(kernel.OrderForDigits(3))
	plan, err := NewPlan(pts, pts, k, Options{Threshold: 40})
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.EvaluateSequential(q)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	ref := directRef(k, pts, q, pts, sampleIdx(rng, n, 40))
	if e := maxRelErr(got, ref); e > 1.5e-3 {
		t.Errorf("identical ensembles rel err %.2e", e)
	}
}

func TestDisjointEnsemblesWithPruning(t *testing.T) {
	// Disjoint corner clusters exercise target-subtree pruning end to end.
	rng := rand.New(rand.NewSource(12))
	const n = 3000
	sp := make([]geom.Point, n)
	tp := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		sp[i] = geom.Point{X: rng.Float64() * 0.25, Y: rng.Float64() * 0.25, Z: rng.Float64() * 0.25}
		tp[i] = geom.Point{X: 0.7 + rng.Float64()*0.3, Y: 0.7 + rng.Float64()*0.3, Z: 0.7 + rng.Float64()*0.3}
	}
	q := points.Charges(n, 13)
	k := kernel.NewLaplace(kernel.OrderForDigits(3))
	plan, err := NewPlan(sp, tp, k, Options{Threshold: 30})
	if err != nil {
		t.Fatal(err)
	}
	pruned := 0
	for _, b := range plan.Target.Boxes {
		if b.Pruned {
			pruned++
		}
	}
	if pruned == 0 {
		t.Error("expected pruned target boxes for disjoint ensembles")
	}
	got, err := plan.EvaluateSequential(q)
	if err != nil {
		t.Fatal(err)
	}
	ref := directRef(k, sp, q, tp, sampleIdx(rng, n, 40))
	if e := maxRelErr(got, ref); e > 1.5e-3 {
		t.Errorf("disjoint ensembles rel err %.2e", e)
	}
}

func TestPlanReuseAcrossCharges(t *testing.T) {
	// The paper's iterative use case: one DAG, many charge vectors.
	const n = 2000
	sp := points.Generate(points.Cube, n, 14)
	tp := points.Generate(points.Cube, n, 15)
	k := kernel.NewLaplace(7)
	plan, err := NewPlan(sp, tp, k, Options{Threshold: 40})
	if err != nil {
		t.Fatal(err)
	}
	q1 := points.Charges(n, 16)
	q2 := points.Charges(n, 17)
	a1, _ := plan.EvaluateSequential(q1)
	a2, _ := plan.EvaluateSequential(q2)
	// Linearity: evaluating q1+q2 must equal the sum of the evaluations.
	q3 := make([]float64, n)
	for i := range q3 {
		q3[i] = q1[i] + q2[i]
	}
	a3, _ := plan.EvaluateSequential(q3)
	var den float64
	for i := range a3 {
		if m := math.Abs(a3[i]); m > den {
			den = m
		}
	}
	for i := range a3 {
		if math.Abs(a3[i]-a1[i]-a2[i])/den > 1e-12 {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}

func TestNewPlanRejectsEmpty(t *testing.T) {
	k := kernel.NewLaplace(4)
	if _, err := NewPlan(nil, points.Generate(points.Cube, 10, 1), k, Options{}); err == nil {
		t.Error("empty sources accepted")
	}
	if _, err := NewPlan(points.Generate(points.Cube, 10, 1), nil, k, Options{}); err == nil {
		t.Error("empty targets accepted")
	}
}

func TestEvaluateRejectsWrongChargeCount(t *testing.T) {
	sp := points.Generate(points.Cube, 100, 1)
	tp := points.Generate(points.Cube, 100, 2)
	k := kernel.NewLaplace(4)
	plan, err := NewPlan(sp, tp, k, Options{Threshold: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.EvaluateSequential(make([]float64, 99)); err == nil {
		t.Error("wrong charge count accepted")
	}
}

func TestParallelTreeConstructionGivesSameAnswers(t *testing.T) {
	const n = 4000
	sp := points.Generate(points.Sphere, n, 61)
	tp := points.Generate(points.Sphere, n, 62)
	q := points.Charges(n, 63)
	k := kernel.NewLaplace(6)
	seqPlan, err := NewPlan(sp, tp, k, Options{Threshold: 40})
	if err != nil {
		t.Fatal(err)
	}
	parPlan, err := NewPlan(sp, tp, kernel.NewLaplace(6), Options{Threshold: 40, TreeWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqPlan.Graph.Nodes) != len(parPlan.Graph.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(seqPlan.Graph.Nodes), len(parPlan.Graph.Nodes))
	}
	a, err := seqPlan.EvaluateSequential(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parPlan.EvaluateSequential(q)
	if err != nil {
		t.Fatal(err)
	}
	var den float64
	for i := range a {
		if m := math.Abs(a[i]); m > den {
			den = m
		}
	}
	for i := range a {
		if math.Abs(a[i]-b[i])/den > 1e-9 {
			t.Fatalf("mismatch at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
