package kernel

import "repro/internal/geom"

// Batched kernel execution (DESIGN.md, "Batched execution"): the list-2
// far field applies the same small set of dense M->L operators across
// thousands of edges per level, and the per-edge cached apply of api.go is
// memory-bandwidth bound — each 160 KB operator streams through the cache
// once per edge. Grouping the edges that share one (side, lattice-offset)
// operator into a multi-RHS apply streams the operator once per block of
// right-hand sides instead, turning many GEMVs into one small GEMM.

// M2LOffset is the integer lattice offset (to - from) / side of a list-2
// M->L translation. Together with the box side it identifies one cached
// dense operator.
type M2LOffset struct {
	DX, DY, DZ int8
}

// Scale returns the world-frame translation vector of the offset for boxes
// of the given side.
func (o M2LOffset) Scale(side float64) geom.Point {
	return geom.Point{X: float64(o.DX) * side, Y: float64(o.DY) * side, Z: float64(o.DZ) * side}
}

// BatchKernel is the batched execution surface of a kernel: lattice
// classification for plan-build-time batching, the blocked multi-RHS M->L
// apply, and the tiled near-field P2P (p2p.go). Both built-in kernels
// implement it.
type BatchKernel interface {
	Kernel
	// M2LOffsetOf classifies a translation against the list-2 lattice;
	// ok=false means the geometry is off-lattice and the edge must be
	// applied individually.
	M2LOffsetOf(from, to geom.Point, side float64) (M2LOffset, bool)
	// M2LBatch applies the M->L operator of each offs[i] (boxes of side
	// `side` at tree level `level`) to ins[i], accumulating into outs[i].
	// Runs of equal consecutive offsets share one operator fetch and one
	// blocked multi-RHS apply; callers sort their batches by offset to
	// maximize run length. With the operator cache disabled every edge
	// falls back to spectral projection, matching M2L exactly.
	M2LBatch(offs []M2LOffset, side float64, level int, ins, outs [][]complex128)
	// P2P accumulates the direct interaction of the source chunks into the
	// targets, tiled for cache reuse (see p2p.go).
	P2P(chunks []P2PChunk, tpts []geom.Point, pot []float64)
}

// M2LBatch implements BatchKernel. The level parameter is diagnostic: the
// operator is fully determined by (side, offset) — the scale-variant Yukawa
// kernel varies per level only through the side, which the cache keys on.
//
//dashmm:noalloc
func (b *base) M2LBatch(offs []M2LOffset, side float64, level int, ins, outs [][]complex128) {
	for lo := 0; lo < len(offs); {
		hi := lo + 1
		for hi < len(offs) && offs[hi] == offs[lo] {
			hi++
		}
		if mx := b.m2lMatrixOff(offs[lo], side); mx != nil {
			applyMatrixMulti(mx, ins[lo:hi], outs[lo:hi])
		} else {
			// Cache disabled: per-RHS spectral projection about the origin —
			// the operator depends only on the offset vector, so projecting
			// from the origin to offset*side reproduces the per-edge result.
			//lint:ignore escape-gate pool miss path: newWorkspace (inlined here) allocates only when the free list is empty; steady state recycles workspaces, so the hot path stays allocation-free
			ws := b.wsp.get(b)
			toP := offs[lo].Scale(side)
			for i := lo; i < hi; i++ {
				b.translate(ws, geom.Point{}, toP, b.aM2L*side, ins[i], b.radOut, b.radReg, outs[i])
			}
			b.wsp.put(ws)
		}
		lo = hi
	}
}

// applyMatrixMulti accumulates outs[r] += mx * ins[r] for a dense sq x sq
// operator shared by every right-hand side. Two RHS travel per pass over
// the operator: each 16-byte matrix element fetched feeds two
// multiply-adds, and the two independent accumulator chains double the
// instruction-level parallelism of the scalarized complex inner loop.
// Width 2 is the measured sweet spot on amd64 — a 4-wide unroll needs more
// live float64 values than the 16 XMM registers hold and spills, coming
// out slower than 2-wide despite touching the operator half as often.
//
//dashmm:noalloc
func applyMatrixMulti(mx []complex128, ins, outs [][]complex128) {
	if len(ins) == 0 {
		return
	}
	sq := len(ins[0])
	r := 0
	for ; r+2 <= len(ins); r += 2 {
		in0, in1 := ins[r][:sq], ins[r+1][:sq]
		out0, out1 := outs[r], outs[r+1]
		for i := 0; i < sq; i++ {
			row := mx[i*sq : (i+1)*sq : (i+1)*sq]
			var a0, a1 complex128
			for j, v := range row {
				a0 += v * in0[j]
				a1 += v * in1[j]
			}
			out0[i] += a0
			out1[i] += a1
		}
	}
	for ; r < len(ins); r++ {
		applyMatrix(mx, ins[r], outs[r])
	}
}
