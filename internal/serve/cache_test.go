package serve

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// A transient plan-build failure must not poison the cache key: the failed
// entry's sync.Once latches the error forever, so the entry has to leave
// the cache with the 500 and the next request for the same key must rebuild
// and succeed (regression: one flaky build used to 500 every later request
// until LRU eviction).
func TestServeTransientBuildFailureDoesNotPoisonKey(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := Request{N: 900}
	nr := req
	if err := nr.normalize(s.cfg); err != nil {
		t.Fatal(err)
	}
	// Inject the failure the way a flaky build would leave it: the entry is
	// in the cache with its build Once already fired on an error.
	entry, hit, _ := s.cache.get(nr.planKey())
	if hit {
		t.Fatal("fresh cache reported a hit")
	}
	entry.build.Do(func() { entry.buildErr = errors.New("injected transient failure") })

	code, _, eb := post(t, ts.URL, req)
	if code != http.StatusInternalServerError {
		t.Fatalf("poisoned request: HTTP %d, want 500", code)
	}
	if !strings.Contains(eb.Error, "injected transient failure") {
		t.Errorf("error = %q, want the injected build failure", eb.Error)
	}
	if got := s.cache.len(); got != 0 {
		t.Fatalf("failed entry still cached (%d entries), want 0", got)
	}

	// Same key again: a fresh entry builds and serves.
	code, resp, _ := post(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("retry after transient failure: HTTP %d, want 200", code)
	}
	if resp.Report.CacheHit {
		t.Error("retry reported a cache hit; it should have rebuilt")
	}
	if got := s.cache.len(); got != 1 {
		t.Errorf("cache holds %d entries after the rebuild, want 1", got)
	}
}

// drop is pointer-checked: when a fresh entry has already replaced the
// failed one under the same key, dropping the stale pointer must not evict
// the replacement.
func TestPlanCacheDropIsPointerChecked(t *testing.T) {
	c := newPlanCache(4)
	stale, _, _ := c.get("k")
	c.drop("k", stale)
	fresh, hit, _ := c.get("k")
	if hit {
		t.Fatal("dropped entry still in the cache")
	}
	if fresh == stale {
		t.Fatal("cache returned the dropped entry")
	}
	c.drop("k", stale) // stale pointer: must be a no-op
	if got, hit, _ := c.get("k"); !hit || got != fresh {
		t.Error("drop with a stale pointer evicted the replacement entry")
	}
}
