package amt

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// wsDeque is a Chase–Lev work-stealing deque (Chase & Lev, "Dynamic
// Circular Work-Stealing Deque", SPAA'05) specialized for Task values.
//
// Exactly one goroutine — the owner — may call push and pop; any number of
// goroutines may call steal concurrently. The owner works LIFO at the
// bottom (cache locality, as in HPX-5's default scheduler); thieves take
// FIFO from the top. The only synchronization is the atomic top/bottom
// indexes: push and the common pop path are wait-free, and a
// compare-and-swap on top is needed only on the racy last-element pop and
// on every steal. Go's sync/atomic operations are sequentially
// consistent, which supplies the fences the original algorithm requires.
//
// A Task is a func value, which the gc toolchain represents as a single
// pointer (to the code/closure object), so ring slots store that pointer
// directly and slot accesses are single atomic pointer operations; the
// speculative slot read a losing thief performs is a defined (and
// discarded) atomic load rather than a data race.
//
// Slot lifetime: a slot the owner pops is cleared (so drained deques do
// not retain task closures — the retention bug the old slice-based lanes
// had, where steal's slice re-heading grew the backing array without
// bound). In the multi-element pop path the Chase–Lev protocol makes the
// slot unreachable to thieves — a thief that read top == b must then read
// bottom <= b and give up — so a plain store suffices there. A stolen
// slot cannot be cleared by the thief (the owner may already be reusing
// it once top advances), so it keeps its reference until the index wraps;
// that window is bounded by the ring capacity.
type wsDeque struct {
	bottom atomic.Int64 // next push index; written only by the owner
	top    atomic.Int64 // next steal index; CAS by thieves and racy pop
	buf    atomic.Pointer[taskRing]

	// freeBound is an owner-private lower bound on top+capacity: while
	// bottom < freeBound the ring provably has room and push can skip
	// reading top (top only moves forward). Refreshed when exhausted.
	freeBound int64
}

// taskRing is one power-of-two circular buffer generation. Grown rings are
// replaced, never mutated in place, so thieves holding the old generation
// still read valid slots for the indexes they were published with.
type taskRing struct {
	mask int64
	slot []unsafe.Pointer // funcval pointers, accessed via sync/atomic
}

const initialRingSize = 64

// taskToPtr and ptrToTask convert between a Task func value and its
// single-pointer representation. The conversion keeps the closure visible
// to the garbage collector: unsafe.Pointer slots are scanned as pointers.
func taskToPtr(t Task) unsafe.Pointer {
	return *(*unsafe.Pointer)(unsafe.Pointer(&t))
}

func ptrToTask(p unsafe.Pointer) Task {
	return *(*Task)(unsafe.Pointer(&p))
}

func newTaskRing(n int64) *taskRing {
	return &taskRing{mask: n - 1, slot: make([]unsafe.Pointer, n)}
}

func (r *taskRing) get(i int64) Task {
	p := atomic.LoadPointer(&r.slot[i&r.mask])
	if p == nil {
		return nil
	}
	return ptrToTask(p)
}

func (r *taskRing) put(i int64, t Task) {
	atomic.StorePointer(&r.slot[i&r.mask], taskToPtr(t))
}

// grow returns a ring of twice the capacity holding the live window
// [top, bottom). Called only by the owner.
func (r *taskRing) grow(top, bottom int64) *taskRing {
	nr := newTaskRing(2 * int64(len(r.slot)))
	for i := top; i < bottom; i++ {
		nr.put(i, r.get(i))
	}
	return nr
}

func (d *wsDeque) init() {
	d.buf.Store(newTaskRing(initialRingSize))
}

// push adds a task at the bottom. Owner only. Allocation-free except when
// the ring must grow (and the ring never shrinks, so steady-state churn at
// any live size the deque has already seen does not allocate).
//
//dashmm:noalloc
func (d *wsDeque) push(t Task) {
	b := d.bottom.Load()
	r := d.buf.Load()
	if b >= d.freeBound {
		top := d.top.Load()
		if b-top >= int64(len(r.slot)) {
			r = r.grow(top, b)
			d.buf.Store(r)
		}
		d.freeBound = top + int64(len(r.slot))
	}
	r.put(b, t)
	d.bottom.Store(b + 1)
}

// pop removes the most recently pushed task. Owner only.
//
//dashmm:noalloc
func (d *wsDeque) pop() (Task, bool) {
	// Empty fast path with no stores: bottom is owner-written and top only
	// advances, so bottom <= top means empty for good until the next push.
	// This keeps polling an idle lane (the usual state of the high-priority
	// deque) down to two plain loads instead of the full racy decrement.
	if d.bottom.Load() <= d.top.Load() {
		return nil, false
	}
	b := d.bottom.Load() - 1
	r := d.buf.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if b < t {
		// Empty: restore the canonical empty state bottom == top.
		d.bottom.Store(t)
		return nil, false
	}
	task := r.get(b)
	if b > t {
		// More than one element: no thief can reach index b (it would
		// have to observe top == b and then bottom > b, which the
		// sequentially consistent protocol forbids), so the slot is
		// exclusively ours — a plain clear is race-free.
		//lint:ignore atomicfield Chase–Lev multi-element pop: thieves provably cannot reach this slot, plain clear is part of the published algorithm.
		r.slot[b&r.mask] = nil
		return task, true
	}
	// Last element: race thieves for it via top. Losing thieves may still
	// load the slot speculatively, so this clear must stay atomic.
	won := d.top.CompareAndSwap(t, t+1)
	d.bottom.Store(t + 1)
	if !won {
		return nil, false
	}
	atomic.StorePointer(&r.slot[b&r.mask], nil)
	return task, true
}

// steal removes the oldest task. Safe for any goroutine. A failed CAS
// (lost race with the owner or another thief) reports false so the caller
// can move on to the next victim rather than spin.
//
//dashmm:noalloc
func (d *wsDeque) steal() (Task, bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil, false
	}
	r := d.buf.Load()
	task := r.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil, false
	}
	return task, true
}

// size is an owner-accurate, thief-approximate element count.
func (d *wsDeque) size() int64 {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return n
}

// capacity reports the current ring capacity (for the retention tests).
func (d *wsDeque) capacity() int {
	return len(d.buf.Load().slot)
}

// inbox is the multi-producer side entrance of a worker: Locality.Spawn,
// parcel delivery and LCO continuations arrive here from goroutines that
// do not own the worker's deques. The owner drains it into its lock-free
// deques before popping; idle thieves may take single tasks with a
// non-blocking TryLock so an inbox backlog behind a busy owner cannot
// starve the locality.
//
// Backing arrays are recycled: the owner swaps in spare buffers on drain
// and clears task references before reuse, so steady-state submission is
// allocation-free and nothing is retained after a drain.
type inbox struct {
	mu     sync.Mutex
	n      atomic.Int64 // high + normal length, for lock-free empty checks
	high   []Task       // guarded by mu
	normal []Task       // guarded by mu
	// closed marks the inbox of a crashed locality: add is rejected so a
	// racing producer cannot strand a task (and its pending unit) in a
	// queue no worker will ever drain again.
	closed bool // guarded by mu
}

// add enqueues a task; it reports false when the inbox has been closed by a
// locality crash, in which case the caller still owns the task.
//
//dashmm:noalloc
func (q *inbox) add(t Task, high bool) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	if high {
		q.high = append(q.high, t)
	} else {
		q.normal = append(q.normal, t)
	}
	q.n.Add(1)
	q.mu.Unlock()
	return true
}

// close rejects all future adds and discards what is queued, returning the
// number of discarded tasks (the caller settles their pending units).
// Idempotent: a second close returns 0.
func (q *inbox) close() int {
	q.mu.Lock()
	dropped := len(q.high) + len(q.normal)
	for i := range q.high {
		q.high[i] = nil
	}
	for i := range q.normal {
		q.normal[i] = nil
	}
	q.high, q.normal = q.high[:0], q.normal[:0]
	q.n.Store(0)
	q.closed = true
	q.mu.Unlock()
	return dropped
}

// drain moves every queued task into the worker's own deques (high lane
// first), swapping the inbox buffers with the worker's cleared spares.
// Returns whether any task was moved.
//
//dashmm:noalloc
func (q *inbox) drain(w *Worker) bool {
	if q.n.Load() == 0 {
		return false
	}
	q.mu.Lock()
	hi, lo := q.high, q.normal
	q.high, q.normal = w.spareHigh[:0], w.spareNormal[:0]
	q.n.Store(0)
	q.mu.Unlock()
	for _, t := range hi {
		w.high.push(t)
	}
	for _, t := range lo {
		w.normal.push(t)
	}
	for i := range hi {
		hi[i] = nil
	}
	for i := range lo {
		lo[i] = nil
	}
	w.spareHigh, w.spareNormal = hi[:0], lo[:0]
	return len(hi)+len(lo) > 0
}

// steal takes one task (preferring the high lane, from the tail — the
// inbox carries no ordering promise) without blocking. Used by thieves
// after every victim deque came up empty.
//
//dashmm:noalloc
func (q *inbox) steal() (Task, bool) {
	if q.n.Load() == 0 {
		return nil, false
	}
	if !q.mu.TryLock() {
		return nil, false
	}
	defer q.mu.Unlock()
	if n := len(q.high); n > 0 {
		t := q.high[n-1]
		q.high[n-1] = nil
		q.high = q.high[:n-1]
		q.n.Add(-1)
		return t, true
	}
	if n := len(q.normal); n > 0 {
		t := q.normal[n-1]
		q.normal[n-1] = nil
		q.normal = q.normal[:n-1]
		q.n.Add(-1)
		return t, true
	}
	return nil, false
}
