package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// suppressions records which checks are silenced on which lines of which
// files. A //lint:ignore comment silences the named checks on its own line
// and on the line directly below it (so it can trail the flagged statement
// or sit on its own line above it).
type suppressions struct {
	// byFileLine maps filename -> line -> set of check names.
	byFileLine map[string]map[int]map[string]bool
}

func (s *suppressions) suppressed(check string, pos token.Position) bool {
	lines := s.byFileLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, ln := range [2]int{pos.Line, pos.Line - 1} {
		if checks := lines[ln]; checks != nil && (checks[check] || checks["*"]) {
			return true
		}
	}
	return false
}

const ignorePrefix = "lint:ignore"

func newSuppressions() *suppressions {
	return &suppressions{byFileLine: map[string]map[int]map[string]bool{}}
}

// collect scans every comment of the files for //lint:ignore directives and
// merges them into the table. Malformed directives (no check list, or no
// reason) are returned as diagnostics of the pseudo-check "lint" so a
// suppression can never silently rot into a no-op.
func (s *suppressions) collect(fset *token.FileSet, files []*ast.File) []Diagnostic {
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Strict directive form only: //lint:ignore with no space
				// after the slashes.
				text, found := strings.CutPrefix(c.Text, "//"+ignorePrefix)
				if !found || (text != "" && !strings.HasPrefix(text, " ")) {
					continue
				}
				rest := strings.TrimSpace(text)
				checksField, reason, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				if checksField == "" || strings.TrimSpace(reason) == "" {
					diags = append(diags, Diagnostic{
						Check: "lint",
						Pos:   pos,
						Message: "malformed //lint:ignore: want \"//lint:ignore <check>[,<check>] reason\" " +
							"(the reason is mandatory)",
					})
					continue
				}
				lines := s.byFileLine[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					s.byFileLine[pos.Filename] = lines
				}
				checks := lines[pos.Line]
				if checks == nil {
					checks = map[string]bool{}
					lines[pos.Line] = checks
				}
				for _, name := range strings.Split(checksField, ",") {
					if name = strings.TrimSpace(name); name != "" {
						checks[name] = true
					}
				}
			}
		}
	}
	return diags
}
