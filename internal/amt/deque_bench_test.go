package amt

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// mutexDeque replicates the pre-lock-free scheduler queue (one mutex
// around a slice pair) so the benchmarks can quantify the change; it is
// kept test-only.
type mutexDeque struct {
	mu    sync.Mutex
	tasks []Task
}

func (d *mutexDeque) push(t Task) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

func (d *mutexDeque) pop() (Task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.tasks)
	if n == 0 {
		return nil, false
	}
	t := d.tasks[n-1]
	d.tasks[n-1] = nil
	d.tasks = d.tasks[:n-1]
	return t, true
}

func (d *mutexDeque) steal() (Task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return nil, false
	}
	t := d.tasks[0]
	d.tasks[0] = nil
	d.tasks = d.tasks[1:]
	return t, true
}

// taskDeque is the owner/thief surface both implementations share.
type taskDeque interface {
	push(Task)
	pop() (Task, bool)
	steal() (Task, bool)
}

func newLockFree() taskDeque {
	d := &wsDeque{}
	d.init()
	return d
}

// BenchmarkDequePushPop measures the uncontended owner fast path: one
// goroutine alternating push and pop (the dominant pattern during the
// saturated plateau, when every worker feeds on its own deque).
func BenchmarkDequePushPop(b *testing.B) {
	nop := Task(func(*Worker) {})
	for _, impl := range []struct {
		name string
		d    taskDeque
	}{
		{"lockfree", newLockFree()},
		{"mutex", &mutexDeque{}},
	} {
		b.Run(impl.name, func(b *testing.B) {
			d := impl.d
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d.push(nop)
				if _, ok := d.pop(); !ok {
					b.Fatal("pop failed")
				}
			}
		})
	}
}

// BenchmarkStealContention is the ISSUE acceptance benchmark: one owner
// working its deque while the other 7 simulated workers steal from it.
// The owner produces a net surplus (two pushes, one pop per iteration) so
// steals land on a non-empty deque and the thieves perform real deque
// mutations; a thief that finds nothing yields, like the scheduler's
// backoff loop, rather than burning the timeslice. Reported ns/op is the
// owner's push/push/pop cycle under that steal traffic: for the mutex
// deque every owner operation queues on the lock behind the thieves
// (and a preemption inside the critical section stalls the whole system),
// while the Chase–Lev owner is wait-free and at worst loses a last-element
// CAS. steals/op close to 1.0 confirms the thieves kept up with the
// surplus.
func BenchmarkStealContention(b *testing.B) {
	const workers = 8
	prev := runtime.GOMAXPROCS(workers)
	defer runtime.GOMAXPROCS(prev)
	nop := Task(func(*Worker) {})
	for _, impl := range []struct {
		name string
		mk   func() taskDeque
	}{
		{"lockfree", newLockFree},
		{"mutex", func() taskDeque { return &mutexDeque{} }},
	} {
		b.Run(impl.name, func(b *testing.B) {
			d := impl.mk()
			var stop atomic.Bool
			var stolen atomic.Int64
			var wg sync.WaitGroup
			for i := 0; i < workers-1; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for !stop.Load() {
						if _, ok := d.steal(); ok {
							stolen.Add(1)
						} else {
							runtime.Gosched()
						}
					}
				}()
			}
			// Seed the deque so thieves have work from the first iteration.
			for i := 0; i < 256; i++ {
				d.push(nop)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.push(nop)
				d.push(nop)
				d.pop()
			}
			b.StopTimer()
			stop.Store(true)
			wg.Wait()
			for _, ok := d.steal(); ok; _, ok = d.steal() {
			}
			b.ReportMetric(float64(stolen.Load())/float64(b.N), "steals/op")
		})
	}
}
