// Screened: the screened Coulomb (Yukawa) interaction of charges on a
// sphere surface — the scale-variant kernel and the non-uniform data set of
// the paper's evaluation, in one example. Charged particles on a spherical
// membrane interact through an ionic solvent with Debye screening length
// 1/lambda; the potential at probe points just outside the membrane is
// evaluated with the advanced FMM.
//
//	go run ./examples/screened
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/points"
)

func main() {
	const (
		n      = 25000
		lambda = 8.0 // screening: e^{-lambda r} / r
	)
	// Membrane charges on the sphere surface; probes on a slightly larger
	// sphere (distinct, partially overlapping ensembles — the dual-tree
	// case of Fig. 1a).
	srcs := points.Generate(points.Sphere, n, 11)
	rng := rand.New(rand.NewSource(12))
	probes := points.Generate(points.Sphere, n, 13)
	for i := range probes {
		// Push each probe 4% outward from the sphere center.
		c := probes[i]
		probes[i].X = 0.5 + (c.X-0.5)*1.04
		probes[i].Y = 0.5 + (c.Y-0.5)*1.04
		probes[i].Z = 0.5 + (c.Z-0.5)*1.04
	}
	charges := points.Charges(n, 14)

	k := kernel.NewYukawa(kernel.OrderForDigits(3), lambda)
	plan, err := core.NewPlan(srcs, probes, k, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// The scale-variant kernel makes the intermediate expansion length
	// depend on tree depth (paper, Section V-A).
	fmt.Printf("intermediate expansion length by level:")
	for l := 2; l <= plan.Target.MaxLevel; l++ {
		fmt.Printf(" L%d=%d", l, k.ISize(l))
	}
	fmt.Println()

	pot, rep, err := plan.Evaluate(charges, core.ExecOptions{Workers: runtime.GOMAXPROCS(0)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evaluated %d probes in %v\n", len(pot), rep.Elapsed)

	sample := make([]int, 20)
	for i := range sample {
		sample[i] = rng.Intn(n)
	}
	exact := baseline.DirectSample(k, srcs, charges, probes, sample)
	var worst, scale float64
	for _, i := range sample {
		if a := abs(exact[i]); a > scale {
			scale = a
		}
	}
	for _, i := range sample {
		if rel := abs(pot[i]-exact[i]) / scale; rel > worst {
			worst = rel
		}
	}
	fmt.Printf("worst sampled relative error: %.1e (target 1e-3)\n", worst)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
