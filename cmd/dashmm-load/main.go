// Command dashmm-load is the production load harness for dashmm-serve: it
// drives a live daemon over HTTP with open-loop (Poisson) arrivals, plan
// keys Zipf-skewed across simulated tenants, through scripted cold / warm /
// mixed phases, and writes per-phase latency quantiles (p50/p99/p999) and
// shed / deadline / coalesce / degraded rates as machine-readable JSON.
//
// The whole request schedule derives from -seed, so a run is reproducible:
// same seed, same arrival times, same key sequence.
//
// Phases are scripted as a comma-separated list of kind:duration:rate
// entries, e.g. -phases "cold:5s:10,warm:10s:40,mixed:5s:30". Before the
// first warm or mixed phase the harness primes every tenant's plan serially
// (reported as a synthetic "prime" phase).
//
// Examples:
//
//	dashmm-serve -addr :8075 -store /tmp/plans &
//	dashmm-load -url http://localhost:8075 -out BENCH_load.json
//	dashmm-load -verify BENCH_load.json -require-warm-hits
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/load"
)

func main() {
	var (
		url     = flag.String("url", "http://localhost:8075", "dashmm-serve base URL")
		seed    = flag.Int64("seed", 1, "schedule seed (arrivals, tenant draws, cold keys)")
		tenants = flag.Int("tenants", 8, "distinct warm plan keys")
		zipfS   = flag.Float64("zipf-s", 1.2, "Zipf skew exponent (> 1)")
		zipfV   = flag.Float64("zipf-v", 1, "Zipf v parameter (>= 1)")

		n         = flag.Int("n", 4000, "points per evaluation request")
		digits    = flag.Int("digits", 3, "accuracy digits per request")
		workers   = flag.Int("workers", 1, "workers per request")
		deadline  = flag.Int("deadline-ms", 0, "per-request deadline (0 = server default)")
		variants  = flag.Int("charge-variants", 4, "charge seeds cycled per key (coalescing pressure)")
		inflight  = flag.Int("max-inflight", 512, "client-side cap on outstanding requests")
		phasesArg = flag.String("phases", "cold:5s:10,warm:10s:40,mixed:5s:30",
			"comma-separated kind:duration:rate phases; mixed takes an optional :coldfraction")

		wait            = flag.Duration("wait", 0, "poll the server's /healthz this long before starting")
		out             = flag.String("out", "", "write BENCH_load.json here (empty = stdout)")
		verifyArg       = flag.String("verify", "", "verify an existing BENCH_load.json and exit")
		requireWarmHits = flag.Bool("require-warm-hits", false,
			"with -verify: fail unless warm phases recorded cache hits")
	)
	flag.Parse()

	if *verifyArg != "" {
		data, err := os.ReadFile(*verifyArg)
		if err != nil {
			log.Fatalf("dashmm-load: %v", err)
		}
		if err := load.Verify(data, *requireWarmHits); err != nil {
			log.Fatalf("dashmm-load: %v", err)
		}
		fmt.Printf("dashmm-load: %s verifies\n", *verifyArg)
		return
	}

	phases, err := parsePhases(*phasesArg)
	if err != nil {
		log.Fatalf("dashmm-load: %v", err)
	}
	runner, err := load.NewRunner(load.Config{
		BaseURL:        *url,
		Seed:           *seed,
		Tenants:        *tenants,
		ZipfS:          *zipfS,
		ZipfV:          *zipfV,
		N:              *n,
		Digits:         *digits,
		Workers:        *workers,
		ChargeVariants: *variants,
		DeadlineMS:     *deadline,
		MaxInflight:    *inflight,
		Phases:         phases,
	})
	if err != nil {
		log.Fatalf("dashmm-load: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *wait > 0 {
		if err := waitHealthy(ctx, *url, *wait); err != nil {
			log.Fatalf("dashmm-load: %v", err)
		}
	}

	result, err := runner.Run(ctx)
	if err != nil {
		log.Fatalf("dashmm-load: %v", err)
	}
	data, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		log.Fatalf("dashmm-load: %v", err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatalf("dashmm-load: %v", err)
		}
		log.Printf("dashmm-load: wrote %s", *out)
	}
	for _, p := range result.Phases {
		log.Printf("dashmm-load: %-8s sent=%d ok=%d shed=%d deadline=%d err=%d hits=%d store=%d p50=%dus p99=%dus p999=%dus",
			p.Name, p.Sent, p.OK, p.Shed, p.Deadline, p.Errors, p.CacheHits, p.StoreHits,
			p.P50US, p.P99US, p.P999US)
	}
}

// waitHealthy polls /healthz until the daemon answers or the budget runs
// out, so scripts can start server and harness back to back.
func waitHealthy(ctx context.Context, url string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %v", url, budget)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// parsePhases decodes "kind:duration:rate[,kind:duration:rate...]"; mixed
// phases accept a fourth field for the cold fraction (default 0.2).
func parsePhases(s string) ([]load.PhaseSpec, error) {
	var specs []load.PhaseSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 3 {
			return nil, fmt.Errorf("phase %q: want kind:duration:rate", part)
		}
		kind := strings.ToLower(strings.TrimSpace(fields[0]))
		dur, err := time.ParseDuration(fields[1])
		if err != nil {
			return nil, fmt.Errorf("phase %q: %v", part, err)
		}
		var rate float64
		if _, err := fmt.Sscanf(fields[2], "%g", &rate); err != nil {
			return nil, fmt.Errorf("phase %q: bad rate %q", part, fields[2])
		}
		spec := load.PhaseSpec{Kind: kind, Duration: dur, RateRPS: rate}
		if kind == load.KindMixed {
			spec.ColdFraction = 0.2
			if len(fields) > 3 {
				if _, err := fmt.Sscanf(fields[3], "%g", &spec.ColdFraction); err != nil {
					return nil, fmt.Errorf("phase %q: bad cold fraction %q", part, fields[3])
				}
			}
		} else if len(fields) > 3 {
			return nil, fmt.Errorf("phase %q: only mixed phases take a fourth field", part)
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no phases in %q", s)
	}
	return specs, nil
}
