// Package goroutine is a fixture for the goroutine-hygiene analyzer; the
// test configures the checker with this package's import path.
package goroutine

import "sync"

// waitOK pairs its goroutine with a WaitGroup: true negative.
func waitOK() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// closeOK pairs its goroutine with a stop-channel close: true negative.
func closeOK() {
	stop := make(chan struct{})
	go loop(stop)
	close(stop)
}

// recvOK blocks on the goroutine's completion signal: true negative.
func recvOK() {
	done := make(chan struct{})
	go func() {
		done <- struct{}{}
	}()
	<-done
}

func loop(stop <-chan struct{}) {}

// fireAndForgetBad spawns with no teardown and no annotation: true
// positive.
func fireAndForgetBad(ch chan<- int) {
	go func() { ch <- 1 }() // want "no lexical teardown"
}

// detachedOK declares the goroutine fire-and-forget with a reason: true
// negative.
//
//dashmm:detached metrics flusher lives for the process lifetime.
func detachedOK(ch chan<- int) {
	go func() { ch <- 1 }()
}

//dashmm:detached
func detachedMissingReason(ch chan<- int) { // want "needs a reason"
	go func() { ch <- 1 }()
}

// suppressedGo silences one spawn site with a justification.
func suppressedGo(ch chan<- int) {
	//lint:ignore goroutine-hygiene teardown lives in the caller, audited in review
	go func() { ch <- 1 }()
}
