package core

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/amt"
	"repro/internal/dag"
	"repro/internal/kernel"
	"repro/internal/points"
)

// distScenario builds the plan every rank constructs identically from the
// shared scenario parameters (SPMD: no plan is ever shipped over the wire).
func distScenario(t *testing.T, n int) (*Plan, []float64) {
	t.Helper()
	sp := points.Generate(points.Cube, n, 1)
	tp := points.Generate(points.Cube, n, 2)
	q := points.Charges(n, 3)
	k := kernel.NewLaplace(6)
	plan, err := NewPlan(sp, tp, k, Options{Method: dag.Advanced, Threshold: 40})
	if err != nil {
		t.Fatal(err)
	}
	return plan, q
}

// distClusters brings up a world of in-process clusters joined over unix
// sockets: rank 0 first (its listener must exist before workers dial), then
// the workers concurrently (their NewCluster blocks until WELCOME).
func distClusters(t *testing.T, world int, mut func(*amt.ClusterConfig)) []*amt.Cluster {
	t.Helper()
	addr := filepath.Join(t.TempDir(), "rank0.sock")
	cfg := func(rank int) amt.ClusterConfig {
		c := amt.ClusterConfig{
			Rank: rank, World: world, Network: "unix", Addr: addr,
			Stamp: "distrib-test-v1",
		}
		if mut != nil {
			mut(&c)
		}
		return c
	}
	cls := make([]*amt.Cluster, world)
	var err error
	if cls[0], err = amt.NewCluster(cfg(0)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, world)
	for r := 1; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cls[r], errs[r] = amt.NewCluster(cfg(r))
		}(r)
	}
	wg.Wait()
	t.Cleanup(func() {
		for _, cl := range cls {
			if cl != nil {
				cl.Close()
			}
		}
	})
	for r := 1; r < world; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d join: %v", r, errs[r])
		}
	}
	return cls
}

// Four ranks over a real unix-socket mesh must reproduce the sequential
// potentials exactly (modulo summation-order rounding): the 1e-12 gate the
// multi-process smoke run enforces.
func TestDistRunMatchesSequential(t *testing.T) {
	const world, n = 4, 1500
	refPlan, q := distScenario(t, n)
	want, err := refPlan.EvaluateSequential(q)
	if err != nil {
		t.Fatal(err)
	}

	// Four clusters plus four runtimes share this test process: the 200ms
	// default detector can falsely declare a busy rank dead on loaded CI, so
	// give heartbeats a full second of slack (detection speed is irrelevant
	// in a fault-free run).
	cls := distClusters(t, world, func(c *amt.ClusterConfig) {
		c.Heartbeat = amt.FailureDetectorConfig{Interval: 50 * time.Millisecond, MissedBeats: 20}
	})
	pots := make([][]float64, world)
	reps := make([]ExecReport, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			plan, charges := distScenario(t, n)
			if r != 0 {
				charges = nil
			}
			pots[r], reps[r], errs[r] = DistRun(plan, cls[r], charges, DistOptions{
				Seed: int64(100 + r), Timeout: 60 * time.Second,
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	assertSame(t, pots[0], want, 1e-12)
	for r := 1; r < world; r++ {
		if pots[r] != nil {
			t.Errorf("rank %d returned potentials; only rank 0 gathers", r)
		}
	}
	rep := reps[0]
	if rep.Localities != world {
		t.Errorf("Localities = %d, want %d", rep.Localities, world)
	}
	if rep.Runtime.ParcelsSent == 0 {
		t.Error("rank 0 sent no wire parcels")
	}
	if tr := rep.Runtime.Transport; tr.WireMessages == 0 || tr.BytesOut == 0 {
		t.Errorf("transport counters empty: %+v", tr)
	}
	if rep.Recovery.RanksKilled != 0 {
		t.Errorf("fault-free run reported %d killed ranks", rep.Recovery.RanksKilled)
	}
}

// Killing a worker rank mid-run (simulated by closing its cluster, which
// silences its heartbeats and severs its sockets exactly as SIGKILL would)
// must still produce 1e-12 potentials at rank 0, with the recovery counters
// reporting the failover.
func TestDistRunRecoversFromRankDeath(t *testing.T) {
	const world, n = 4, 1500
	const victim = world - 1
	refPlan, q := distScenario(t, n)
	want, err := refPlan.EvaluateSequential(q)
	if err != nil {
		t.Fatal(err)
	}

	// A lazier detector than the 200ms default keeps loaded CI (and -race)
	// from declaring healthy ranks dead; the victim's silence is still
	// detected within a second.
	cls := distClusters(t, world, func(c *amt.ClusterConfig) {
		c.Heartbeat = amt.FailureDetectorConfig{Interval: 50 * time.Millisecond, MissedBeats: 20}
	})

	pots := make([][]float64, world)
	reps := make([]ExecReport, world)
	errs := make([]error, world)
	var die sync.Once
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			plan, charges := distScenario(t, n)
			if r != 0 {
				charges = nil
			}
			opts := DistOptions{Seed: int64(200 + r), Timeout: 90 * time.Second}
			if r == victim {
				// Drop dead at half of the victim's local progress. Close
				// tears down every socket and stops the heartbeat sender, so
				// from the survivors' side this is indistinguishable from a
				// SIGKILL'd process.
				opts.Timeout = 10 * time.Second
				opts.OnProgress = func(fired, owned int) {
					if owned > 0 && fired*2 >= owned {
						die.Do(func() { cls[victim].Close() })
					}
				}
			}
			pots[r], reps[r], errs[r] = DistRun(plan, cls[r], charges, opts)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if r == victim {
			if err == nil {
				t.Errorf("victim rank %d finished cleanly; expected an error after Close", r)
			}
			continue
		}
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	assertSame(t, pots[0], want, 1e-12)
	rec := reps[0].Recovery
	if rec.RanksKilled != 1 {
		t.Errorf("RanksKilled = %d, want 1", rec.RanksKilled)
	}
	if rec.NodesRebuilt == 0 {
		t.Error("no nodes rebuilt despite a rank death")
	}
}
