package amt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Rank bootstrap and membership for multi-process localities (DESIGN.md,
// "Distribution"). The control plane is a star: rank 0 listens at a
// well-known address, every worker rank joins with a handshake (rank id,
// world size, build/version stamp, its own data-plane listen address) and
// keeps the join connection open as its control channel. Rank 0 validates
// joins — wrong stamp, out-of-range or duplicate rank, and joins after the
// run has started are rejected with a reason — and once all ranks are
// present broadcasts START carrying the full peer address list. From then
// on the data plane is a mesh of SocketTransport connections (socket.go),
// while heartbeats keep flowing worker→rank 0 over the control star: rank 0
// is the single membership authority, declaring a silent rank dead after
// the missed-beat threshold (the same policy as the in-process detector in
// failure.go, now over a real wire) and broadcasting the verdict, with an
// epoch number, to every survivor. A worker that loses its control
// connection treats the coordinator as dead and aborts.
//
// A standing cluster (the serve worker pool) additionally supports
// generation-based re-admission: a respawned worker presents a REJOIN
// handshake, which rank 0 admits between runs — allocating a fresh wire
// generation, resurrecting the rank's transport links and broadcasting the
// updated membership to every survivor. Every data frame is stamped with
// the sender's adopted generation (socket.go) and fenced at the receiver
// (serveData), so a corpse's stragglers from an earlier incarnation can
// never leak into a later run. Jobs are application payloads rank 0
// broadcasts over the control star (StartJob); while a job is running,
// re-admission is deferred so membership never shifts under a placement.

// Cluster-internal control frame kinds. Application payload kinds must stay
// below ctlBase.
const (
	ctlBase     uint16 = 0xff00
	ctlHello    uint16 = 0xff01 // worker → rank0: join request
	ctlWelcome  uint16 = 0xff02 // rank0 → worker: join accepted
	ctlReject   uint16 = 0xff03 // rank0 → worker: join refused (payload: reason)
	ctlStart    uint16 = 0xff04 // rank0 → workers: peer address list, run begins
	ctlBeat     uint16 = 0xff05 // worker → rank0: heartbeat
	ctlDead     uint16 = 0xff06 // rank0 → workers: death verdict (payload: rank, epoch)
	ctlShutdown uint16 = 0xff07 // rank0 → workers: run complete, drain and exit
	ctlAttach   uint16 = 0xff08 // data-plane connection preamble
	ctlRejoin   uint16 = 0xff09 // worker → rank0: re-admission request after a respawn
	ctlGen      uint16 = 0xff0a // rank0 → workers: membership update (generation, epoch, addrs, dead ranks)
	ctlJob      uint16 = 0xff0b // rank0 → workers: application job broadcast (frame epoch = wire generation)
	ctlExit     uint16 = 0xff0c // rank0 → workers: pool teardown, exit the process
)

// retryPrefix marks a REJECT reason as transient: the joiner should back
// off and retry the handshake instead of giving up.
const retryPrefix = "retry: "

// ClusterConfig configures one rank's view of a multi-process cluster.
type ClusterConfig struct {
	// Rank is this process's locality id in [0, World); rank 0 coordinates.
	Rank, World int
	// Network is "tcp" or "unix".
	Network string
	// Addr is rank 0's well-known address: the bind address on rank 0, the
	// join target on workers.
	Addr string
	// Stamp is the build/version + scenario stamp; every rank must present
	// an identical stamp or the join is rejected.
	Stamp string
	// Heartbeat tunes the membership detector (zero value = the failure.go
	// defaults scaled for a real wire: 25ms interval, 8 missed beats).
	Heartbeat FailureDetectorConfig
	// DialBase/DialMax bound the data-plane dial retry backoff (defaults
	// 5ms and 500ms).
	DialBase, DialMax time.Duration
	// MaxQueue bounds each peer's outbound frame queue; overflow is dropped
	// and surfaces as wire loss (default 8192).
	MaxQueue int
	// JoinTimeout bounds the bootstrap: workers dialing rank 0 and rank 0
	// awaiting the full roster (default 30s).
	JoinTimeout time.Duration
	// CtlWriteTimeout bounds each control-plane frame write. Without it, a
	// wedged peer socket (full buffer, half-dead host) blocks
	// controlConn.send forever while the sender holds wmu — and bcastMu
	// above it — freezing every broadcast on rank 0, including the death
	// verdict that would have severed the wedged peer (default 5s).
	CtlWriteTimeout time.Duration
	// Rejoin makes a worker re-enter an already-started cluster (a
	// respawned rank): the handshake is a REJOIN, and the WELCOME carries
	// the live membership (generation, epoch, peer addresses, dead ranks)
	// instead of waiting for a START broadcast.
	Rejoin bool
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Heartbeat.Interval <= 0 {
		c.Heartbeat.Interval = 25 * time.Millisecond
	}
	if c.Heartbeat.MissedBeats <= 0 {
		c.Heartbeat.MissedBeats = 8
	}
	if c.DialBase <= 0 {
		c.DialBase = 5 * time.Millisecond
	}
	if c.DialMax <= 0 {
		c.DialMax = 500 * time.Millisecond
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 8192
	}
	if c.JoinTimeout <= 0 {
		c.JoinTimeout = 30 * time.Second
	}
	if c.CtlWriteTimeout <= 0 {
		c.CtlWriteTimeout = 5 * time.Second
	}
	return c
}

// controlConn is one end of a control-star connection with a write lock (the
// monitor, Start and Shutdown broadcast concurrently).
type controlConn struct {
	conn net.Conn
	wmu  sync.Mutex
	// writeTimeout bounds each Write (ClusterConfig.CtlWriteTimeout): a
	// wedged peer must error out of the wmu critical section, not park in
	// it with every broadcaster queued behind.
	writeTimeout time.Duration
}

func (cc *controlConn) send(f *Frame) error {
	buf := AppendFrame(nil, f)
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	if cc.writeTimeout > 0 {
		cc.conn.SetWriteDeadline(time.Now().Add(cc.writeTimeout))
		defer cc.conn.SetWriteDeadline(time.Time{})
	}
	//lint:ignore lockorder the write IS wmu's critical section (wmu only serializes concurrent control writes) and writeTimeout bounds it
	_, err := cc.conn.Write(buf)
	return err
}

// Cluster is one rank's membership endpoint.
type Cluster struct {
	cfg ClusterConfig
	ln  net.Listener
	tp  *SocketTransport

	mu        sync.Mutex
	started   bool                 // guarded by mu: START sent/received
	running   bool                 // guarded by mu; rank0: a job is in flight, defer rejoins
	joined    map[int]*controlConn // guarded by mu; rank0 only
	peerAddrs []string             // guarded by mu: data-plane listen address per rank
	deadOrder []int                // guarded by mu: dead ranks in verdict broadcast order
	genCount  uint32               // guarded by mu; rank0: last allocated wire generation

	ctl *controlConn // worker side: the join connection to rank 0

	dead     []atomic.Bool
	epoch    atomic.Int32  // death verdicts issued/processed
	gen      atomic.Uint32 // adopted wire generation, stamped into data frames
	lastBeat []atomic.Int64

	// bcastMu serializes every rank-0 control broadcast (verdicts, jobs,
	// membership updates, shutdown, exit) so all workers observe them in one
	// total order; membership admission happens under it too, which pins the
	// gen→job ordering a rejoin depends on. Lock order: bcastMu before mu.
	bcastMu sync.Mutex

	// cbMu guards the callback slots and is held across an invocation, so
	// ClearRunHandlers quiesces in-flight callbacks before a run's executor
	// is torn down.
	cbMu        sync.Mutex
	onDeath     func(rank, epoch int)            // guarded by cbMu
	onShutdown  func()                           // guarded by cbMu
	onCoordLost func(err error)                  // guarded by cbMu
	onJob       func(gen uint32, payload []byte) // guarded by cbMu
	onRejoin    func(rank int, gen uint32)       // guarded by cbMu; rank0
	pendingJob  *pendingJob                      // guarded by cbMu: job that beat OnJob registration

	deaths chan DeathEvent // buffered verdict feed for a supervisor (rank0)

	startCh   chan struct{} // closed when START is received/sent
	startOnce sync.Once
	doneCh    chan struct{} // closed on ctlExit or coordinator loss (workers)
	doneOnce  sync.Once
	quit      chan struct{}
	wg        sync.WaitGroup
	closeMu   sync.Mutex
	closed    bool

	// connMu/conns tracks every accepted connection so Close can unblock
	// their reader goroutines without waiting for the peer to hang up.
	connMu    sync.Mutex
	conns     map[net.Conn]struct{} // guarded by connMu
	connsDone bool                  // guarded by connMu: Close ran, admit no more
}

// NewCluster binds this rank's listener and, on workers, joins rank 0's
// control star (blocking until the join is accepted or rejected). Rank 0
// returns immediately after binding; call Start to run the join barrier.
// Register callbacks (OnDeath, OnShutdown, OnCoordinatorLost) before Start.
//
//dashmm:detached acceptLoop exits when Close closes the listener and quit; c.wg.Wait joins it
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.World < 2 {
		return nil, fmt.Errorf("amt: cluster needs World >= 2, got %d", cfg.World)
	}
	if cfg.Rank < 0 || cfg.Rank >= cfg.World {
		return nil, fmt.Errorf("amt: rank %d out of range [0,%d)", cfg.Rank, cfg.World)
	}
	if cfg.Network != "tcp" && cfg.Network != "unix" {
		return nil, fmt.Errorf("amt: unsupported network %q (want tcp or unix)", cfg.Network)
	}
	c := &Cluster{
		cfg:      cfg,
		dead:     make([]atomic.Bool, cfg.World),
		lastBeat: make([]atomic.Int64, cfg.World),
		deaths:   make(chan DeathEvent, 4*cfg.World),
		startCh:  make(chan struct{}),
		doneCh:   make(chan struct{}),
		quit:     make(chan struct{}),
		conns:    map[net.Conn]struct{}{},
	}
	bind := cfg.Addr
	if cfg.Rank != 0 {
		bind = workerBindAddr(cfg)
	}
	ln, err := net.Listen(cfg.Network, bind)
	if err != nil {
		return nil, fmt.Errorf("amt: rank %d listen %s %s: %w", cfg.Rank, cfg.Network, bind, err)
	}
	c.ln = ln
	c.tp = newSocketTransport(c)
	c.mu.Lock()
	c.peerAddrs = make([]string, cfg.World)
	c.peerAddrs[0] = cfg.Addr
	c.peerAddrs[cfg.Rank] = ln.Addr().String()
	if cfg.Rank == 0 {
		c.joined = map[int]*controlConn{}
	}
	c.mu.Unlock()
	c.wg.Add(1)
	go c.acceptLoop()
	if cfg.Rank != 0 {
		if err := c.join(); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// bindSerial uniquifies unix socket paths when several clusters share one
// process (tests, in-process simulations); pid alone would collide.
var bindSerial atomic.Int64

// workerBindAddr picks a worker's data-plane listen address: an ephemeral
// TCP port, or a per-rank socket file next to rank 0's for unix.
func workerBindAddr(cfg ClusterConfig) string {
	if cfg.Network == "tcp" {
		return "127.0.0.1:0"
	}
	dir := filepath.Dir(cfg.Addr)
	return filepath.Join(dir, fmt.Sprintf("dashmm-r%d-%d-%d.sock", cfg.Rank, os.Getpid(), bindSerial.Add(1)))
}

// DeathEvent is one death verdict, delivered on the Deaths channel.
type DeathEvent struct {
	Rank, Epoch int
}

// OnDeath registers the death-verdict handler (survivor ranks, including
// rank 0). Invoked from a cluster goroutine under the callback lock.
func (c *Cluster) OnDeath(fn func(rank, epoch int)) {
	c.cbMu.Lock()
	c.onDeath = fn
	c.cbMu.Unlock()
}

// OnShutdown registers the run-complete handler (worker ranks).
func (c *Cluster) OnShutdown(fn func()) {
	c.cbMu.Lock()
	c.onShutdown = fn
	c.cbMu.Unlock()
}

// OnCoordinatorLost registers the handler for a broken control connection
// to rank 0 (worker ranks): the coordinator is gone and the run cannot
// complete.
func (c *Cluster) OnCoordinatorLost(fn func(err error)) {
	c.cbMu.Lock()
	c.onCoordLost = fn
	c.cbMu.Unlock()
}

// pendingJob parks a job broadcast that arrived before OnJob was
// registered (a worker admitted into a busy pool can see the first job
// frame land between the handshake and its handler registration).
type pendingJob struct {
	gen     uint32
	payload []byte
}

// OnJob registers the job-broadcast handler (worker ranks). Unlike the
// per-run handlers it is persistent: ClearRunHandlers leaves it in place.
// A job that arrived before registration is delivered immediately.
func (c *Cluster) OnJob(fn func(gen uint32, payload []byte)) {
	c.cbMu.Lock()
	c.onJob = fn
	if p := c.pendingJob; p != nil {
		c.pendingJob = nil
		fn(p.gen, p.payload)
	}
	c.cbMu.Unlock()
}

// OnRejoin registers the re-admission handler (rank 0): invoked after a
// respawned rank is welcomed back, with its fresh wire generation.
func (c *Cluster) OnRejoin(fn func(rank int, gen uint32)) {
	c.cbMu.Lock()
	c.onRejoin = fn
	c.cbMu.Unlock()
}

// ClearRunHandlers detaches the per-run membership callbacks (OnDeath,
// OnShutdown, OnCoordinatorLost), blocking until any in-flight invocation
// returns. A run that shares a standing cluster calls this before its
// executor state is discarded, so a between-runs verdict can never land in
// a dead executor. OnJob and OnRejoin survive: they belong to the pool,
// not the run.
func (c *Cluster) ClearRunHandlers() {
	c.cbMu.Lock()
	c.onDeath, c.onShutdown, c.onCoordLost = nil, nil, nil
	c.cbMu.Unlock()
}

func (c *Cluster) fireDeath(rank, epoch int) {
	c.cbMu.Lock()
	if c.onDeath != nil {
		c.onDeath(rank, epoch)
	}
	c.cbMu.Unlock()
}

func (c *Cluster) fireShutdown() {
	c.cbMu.Lock()
	if c.onShutdown != nil {
		c.onShutdown()
	}
	c.cbMu.Unlock()
}

func (c *Cluster) fireCoordLost(err error) {
	c.cbMu.Lock()
	if c.onCoordLost != nil {
		c.onCoordLost(err)
	}
	c.cbMu.Unlock()
}

func (c *Cluster) fireJob(gen uint32, payload []byte) {
	c.cbMu.Lock()
	if c.onJob != nil {
		c.onJob(gen, payload)
	} else {
		c.pendingJob = &pendingJob{gen: gen, payload: append([]byte(nil), payload...)}
	}
	c.cbMu.Unlock()
}

func (c *Cluster) fireRejoin(rank int, gen uint32) {
	c.cbMu.Lock()
	if c.onRejoin != nil {
		c.onRejoin(rank, gen)
	}
	c.cbMu.Unlock()
}

// Deaths exposes the verdict feed: every death verdict this rank issues
// (rank 0) is also delivered here, for a supervisor that respawns ranks.
func (c *Cluster) Deaths() <-chan DeathEvent { return c.deaths }

func (c *Cluster) emitDeath(ev DeathEvent) {
	select {
	case c.deaths <- ev:
	default: // supervisor far behind: the rank state is still authoritative
	}
}

// Done is closed when this rank should exit: the coordinator broadcast
// EXIT, or (workers) the control connection to rank 0 broke.
func (c *Cluster) Done() <-chan struct{} { return c.doneCh }

func (c *Cluster) signalDone() { c.doneOnce.Do(func() { close(c.doneCh) }) }

func (c *Cluster) markStarted() { c.startOnce.Do(func() { close(c.startCh) }) }

// Transport returns the cluster's data-plane transport.
func (c *Cluster) Transport() *SocketTransport { return c.tp }

// Epoch returns the number of death verdicts issued (rank 0) or processed
// (workers) so far.
func (c *Cluster) Epoch() uint32 { return uint32(c.epoch.Load()) }

// Generation returns this rank's adopted wire generation. The transport
// stamps it into every outbound data frame; serveData fences inbound
// frames whose stamp disagrees.
func (c *Cluster) Generation() uint32 { return c.gen.Load() }

// AdoptGeneration switches this rank's wire generation. A run adopts its
// job's generation only after its frame sink is registered, so a frame of
// the new generation can never be acked-and-dropped by the previous run's
// shut-down runtime.
func (c *Cluster) AdoptGeneration(gen uint32) { c.gen.Store(gen) }

// DeadOrder returns the currently-dead ranks in verdict broadcast order.
// Failover composition is order-sensitive, so a run starting with pre-dead
// ranks must replay their failovers in exactly this order.
func (c *Cluster) DeadOrder() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.deadOrder...)
}

// LiveWorkers counts worker ranks not currently declared dead.
func (c *Cluster) LiveWorkers() int {
	n := 0
	for r := 1; r < c.cfg.World; r++ {
		if !c.dead[r].Load() {
			n++
		}
	}
	return n
}

// StartJob allocates a fresh wire generation, snapshots the dead-rank
// order, and broadcasts an application job to every live worker (rank 0
// only). The build callback renders the job payload from that consistent
// (generation, deadOrder) pair. Until EndJob, re-admissions are deferred —
// membership cannot shift under the job's placement. The broadcast and the
// admission path share bcastMu, so every worker observes membership
// updates and jobs in the same order.
func (c *Cluster) StartJob(build func(gen uint32, deadOrder []int) []byte) (uint32, []int) {
	c.bcastMu.Lock()
	defer c.bcastMu.Unlock()
	c.mu.Lock()
	c.running = true
	c.genCount++
	gen := c.genCount
	deadOrder := append([]int(nil), c.deadOrder...)
	conns := c.liveConnsLocked()
	c.mu.Unlock()
	f := &Frame{Kind: ctlJob, Src: 0, Epoch: gen, Payload: build(gen, deadOrder)}
	for _, cc := range conns {
		//lint:ignore lockorder bcastMu held across the fan-out IS the total-order guarantee for control frames; each send is bounded by CtlWriteTimeout
		cc.send(f) // a failed send surfaces via that rank's own heartbeat
	}
	return gen, deadOrder
}

// EndJob re-opens re-admission after a job completes (rank 0 only).
func (c *Cluster) EndJob() {
	c.mu.Lock()
	c.running = false
	c.mu.Unlock()
}

// liveConnsLocked snapshots the control connections of live workers.
//
//dashmm:locked Cluster.mu — documented precondition: every caller snapshots under the membership lock.
func (c *Cluster) liveConnsLocked() []*controlConn {
	conns := make([]*controlConn, 0, len(c.joined))
	for r, cc := range c.joined {
		if !c.dead[r].Load() {
			conns = append(conns, cc)
		}
	}
	return conns
}

// Alive reports whether a rank has not been declared dead.
func (c *Cluster) Alive(rank int) bool { return !c.dead[rank].Load() }

// Rank returns this process's rank.
func (c *Cluster) Rank() int { return c.cfg.Rank }

// World returns the cluster size.
func (c *Cluster) World() int { return c.cfg.World }

// join dials rank 0 and runs the worker side of the handshake; the accepted
// connection becomes the control channel.
//
//dashmm:detached workerControlLoop exits when the control conn closes and beatLoop on c.quit; Close closes both and c.wg.Wait joins
func (c *Cluster) join() error {
	deadline := time.Now().Add(c.cfg.JoinTimeout)
	// Full jitter on the dial/retry backoff (the same policy as
	// SocketTransport.dialPeer): N respawned workers racing back to a
	// recovering coordinator must not stampede it in lockstep.
	rng := rand.New(rand.NewSource(int64(c.cfg.Rank)*1_000_003 + int64(os.Getpid())*7919 + 1))
	backoff := c.cfg.DialBase
	sleepJittered := func() {
		time.Sleep(backoff + time.Duration(rng.Int63n(int64(backoff)+1)))
		if backoff *= 2; backoff > c.cfg.DialMax {
			backoff = c.cfg.DialMax
		}
	}
	kind := ctlHello
	if c.cfg.Rejoin {
		kind = ctlRejoin
	}
	var lastErr error
	for {
		if time.Now().After(deadline) {
			if lastErr == nil {
				lastErr = fmt.Errorf("join timeout")
			}
			return fmt.Errorf("amt: rank %d join %s: %w", c.cfg.Rank, c.cfg.Addr, lastErr)
		}
		conn, err := net.DialTimeout(c.cfg.Network, c.cfg.Addr, time.Second)
		if err != nil {
			lastErr = err
			sleepJittered()
			continue
		}
		cc := &controlConn{conn: conn, writeTimeout: c.cfg.CtlWriteTimeout}
		hello := &Frame{Kind: kind, Src: c.cfg.Rank, Payload: encodeHello(c.cfg, c.ln.Addr().String())}
		if err := cc.send(hello); err != nil {
			conn.Close()
			return fmt.Errorf("amt: rank %d hello: %w", c.cfg.Rank, err)
		}
		conn.SetReadDeadline(time.Now().Add(c.cfg.JoinTimeout))
		br := bufio.NewReader(conn)
		resp, err := ReadFrame(br)
		if err != nil {
			conn.Close()
			return fmt.Errorf("amt: rank %d awaiting welcome: %w", c.cfg.Rank, err)
		}
		switch resp.Kind {
		case ctlWelcome:
		case ctlReject:
			conn.Close()
			reason := string(resp.Payload)
			// A transient rejection (a job is mid-flight) is retried in
			// place instead of burning a whole process respawn.
			if c.cfg.Rejoin && strings.HasPrefix(reason, retryPrefix) {
				lastErr = fmt.Errorf("rejected: %s", reason)
				sleepJittered()
				continue
			}
			return fmt.Errorf("amt: rank %d join rejected: %s", c.cfg.Rank, reason)
		default:
			conn.Close()
			return fmt.Errorf("amt: rank %d unexpected join response kind %#x", c.cfg.Rank, resp.Kind)
		}
		conn.SetReadDeadline(time.Time{})
		// A rejoin WELCOME carries the live membership: adopt it and mark
		// the cluster started without waiting for a START broadcast.
		if len(resp.Payload) > 0 {
			if err := c.adoptMembership(resp.Payload); err != nil {
				conn.Close()
				return fmt.Errorf("amt: rank %d rejoin welcome: %w", c.cfg.Rank, err)
			}
		}
		c.ctl = cc
		c.wg.Add(2)
		go c.workerControlLoop(br)
		go c.beatLoop()
		return nil
	}
}

// adoptMembership installs a membership snapshot broadcast by rank 0: the
// wire generation, verdict epoch, peer addresses and dead-rank order. A
// rank listed dead is severed; a rank no longer listed (a re-admitted
// respawn) is revived at its new address.
func (c *Cluster) adoptMembership(payload []byte) error {
	gen, epoch, addrs, deadOrder, err := decodeMembership(payload)
	if err != nil {
		return err
	}
	if len(addrs) != c.cfg.World {
		return fmt.Errorf("membership lists %d ranks, world is %d", len(addrs), c.cfg.World)
	}
	deadSet := make([]bool, c.cfg.World)
	for _, r := range deadOrder {
		if r >= 0 && r < c.cfg.World {
			deadSet[r] = true
		}
	}
	c.mu.Lock()
	c.started = true
	c.peerAddrs = append([]string(nil), addrs...)
	c.deadOrder = append([]int(nil), deadOrder...)
	c.mu.Unlock()
	for r := 0; r < c.cfg.World; r++ {
		if r == c.cfg.Rank {
			continue
		}
		if deadSet[r] {
			if c.dead[r].CompareAndSwap(false, true) {
				c.tp.severPeer(r)
			}
		} else if c.dead[r].CompareAndSwap(true, false) {
			c.tp.revivePeer(r, addrs[r])
		}
	}
	c.epoch.Store(int32(epoch))
	c.gen.Store(gen)
	c.tp.setPeers(addrs, c.dead[:])
	c.markStarted()
	return nil
}

// Start runs the join barrier: rank 0 waits for the full roster and
// broadcasts START with the peer address list; workers wait for START.
// After Start returns successfully the data plane is usable. On a cluster
// that already started (a standing pool running many jobs, a rejoined
// worker) Start returns immediately.
func (c *Cluster) Start() error {
	if c.cfg.Rank == 0 {
		c.mu.Lock()
		already := c.started
		c.mu.Unlock()
		if already {
			return nil
		}
		deadline := time.NewTimer(c.cfg.JoinTimeout)
		defer deadline.Stop()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			c.mu.Lock()
			n := len(c.joined)
			c.mu.Unlock()
			if n == c.cfg.World-1 {
				break
			}
			select {
			case <-deadline.C:
				return fmt.Errorf("amt: join barrier timed out with %d/%d workers", n, c.cfg.World-1)
			case <-c.quit:
				return fmt.Errorf("amt: cluster closed during join barrier")
			case <-tick.C:
			}
		}
		c.mu.Lock()
		c.started = true
		addrs := append([]string(nil), c.peerAddrs...)
		conns := make(map[int]*controlConn, len(c.joined))
		for r, cc := range c.joined {
			conns[r] = cc
		}
		c.mu.Unlock()
		now := time.Now().UnixNano()
		for r := range c.lastBeat {
			c.lastBeat[r].Store(now)
		}
		start := &Frame{Kind: ctlStart, Src: 0, Payload: encodeAddrs(addrs)}
		for r, cc := range conns {
			if err := cc.send(start); err != nil {
				return fmt.Errorf("amt: START to rank %d: %w", r, err)
			}
		}
		c.markStarted()
		c.tp.setPeers(addrs, c.dead[:])
		c.wg.Add(1)
		go c.monitorLoop()
		return nil
	}
	select {
	case <-c.startCh:
		return nil
	case <-c.quit:
		return fmt.Errorf("amt: cluster closed before START")
	case <-time.After(c.cfg.JoinTimeout):
		return fmt.Errorf("amt: rank %d timed out waiting for START", c.cfg.Rank)
	}
}

// acceptLoop serves the rank's listener: first frame classifies the
// connection as a control join (rank 0 only) or a data-plane attach.
//
//dashmm:detached joined by Close: close(c.quit) unblocks the loop via listener Close and c.wg.Wait joins it
func (c *Cluster) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			select {
			case <-c.quit:
				return
			default:
			}
			// Transient accept error: keep serving unless shutting down.
			time.Sleep(time.Millisecond)
			continue
		}
		c.wg.Add(1)
		go c.serveConn(conn)
	}
}

// serveConn classifies and serves one inbound connection.
//
//dashmm:detached reader goroutines exit when their conn closes; Close closes every conn and c.wg.Wait joins them
func (c *Cluster) serveConn(conn net.Conn) {
	defer c.wg.Done()
	if !c.trackConn(conn) {
		conn.Close()
		return
	}
	defer c.untrackConn(conn)
	// A peer that connects and never completes its preamble must not wedge
	// the acceptor's bookkeeping: bound the handshake.
	conn.SetReadDeadline(time.Now().Add(c.cfg.JoinTimeout))
	br := bufio.NewReaderSize(conn, 64<<10)
	first, err := ReadFrame(br)
	if err != nil {
		c.tp.handshakeFails.Add(1)
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	switch first.Kind {
	case ctlHello:
		c.serveJoin(conn, br, first, false)
	case ctlRejoin:
		c.serveJoin(conn, br, first, true)
	case ctlAttach:
		c.serveData(conn, br, first)
	default:
		c.tp.handshakeFails.Add(1)
		conn.Close()
	}
}

// serveJoin handles one worker's join (or rejoin) request on rank 0.
//
//dashmm:detached coordControlLoop exits when its conn closes; Close closes every joined conn and c.wg.Wait joins
func (c *Cluster) serveJoin(conn net.Conn, br *bufio.Reader, hello Frame, rejoin bool) {
	reject := func(reason string) {
		c.tp.handshakeFails.Add(1)
		cc := &controlConn{conn: conn, writeTimeout: c.cfg.CtlWriteTimeout}
		cc.send(&Frame{Kind: ctlReject, Src: 0, Payload: []byte(reason)})
		conn.Close()
	}
	if c.cfg.Rank != 0 {
		reject("join sent to a non-coordinator rank")
		return
	}
	rank, world, stamp, addr, err := decodeHello(hello.Payload)
	if err != nil {
		reject("malformed hello: " + err.Error())
		return
	}
	if world != c.cfg.World {
		reject(fmt.Sprintf("world size mismatch: coordinator runs %d, joiner built for %d", c.cfg.World, world))
		return
	}
	if stamp != c.cfg.Stamp {
		reject(fmt.Sprintf("version stamp mismatch: coordinator %q, joiner %q", c.cfg.Stamp, stamp))
		return
	}
	if rank <= 0 || rank >= c.cfg.World {
		reject(fmt.Sprintf("rank %d out of range [1,%d)", rank, c.cfg.World))
		return
	}
	// Admission and the membership broadcast it triggers are one atomic
	// step with respect to every other rank-0 broadcast (jobs, verdicts):
	// workers must observe "rank r is back, generation g" strictly before
	// any job placed against that membership.
	c.bcastMu.Lock()
	c.mu.Lock()
	if !c.started {
		// Pre-START (re)join: the barrier has not released, the roster
		// simply fills in. A respawn racing the initial bootstrap lands
		// here too and is indistinguishable from a first join.
		if _, dup := c.joined[rank]; dup {
			c.mu.Unlock()
			c.bcastMu.Unlock()
			reject(fmt.Sprintf("rank %d already joined", rank))
			return
		}
		cc := &controlConn{conn: conn, writeTimeout: c.cfg.CtlWriteTimeout}
		c.joined[rank] = cc
		c.peerAddrs[rank] = addr
		c.mu.Unlock()
		c.bcastMu.Unlock()
		c.lastBeat[rank].Store(time.Now().UnixNano())
		if err := cc.send(&Frame{Kind: ctlWelcome, Src: 0}); err != nil {
			conn.Close()
			return
		}
		c.wg.Add(1)
		go c.coordControlLoop(rank, br)
		return
	}
	if !rejoin {
		// After START a plain join — including a crashed rank's restart
		// that predates re-admission — would be handed a stale peer list
		// mid-run; only the REJOIN handshake is admitted.
		c.mu.Unlock()
		c.bcastMu.Unlock()
		reject("run already started: late joiners are not admitted")
		return
	}
	if !c.dead[rank].Load() {
		// The rank is still a live member: either a duplicate process, or
		// the old incarnation's silence has not yet crossed the verdict
		// threshold. The latter resolves itself — tell the joiner to retry.
		c.mu.Unlock()
		c.bcastMu.Unlock()
		reject(fmt.Sprintf(retryPrefix+"rank %d is still a live member (no death verdict yet)", rank))
		return
	}
	if c.running {
		// Membership must not shift under a placed job; the joiner backs
		// off and retries between runs.
		c.mu.Unlock()
		c.bcastMu.Unlock()
		reject(retryPrefix + "job in flight: re-admission is deferred between runs")
		return
	}
	// Re-admission: allocate a fresh wire generation, resurrect the rank,
	// and broadcast the new membership to every survivor. Frames from the
	// corpse's incarnation carry an older generation and are fenced.
	c.genCount++
	gen := c.genCount
	if old := c.joined[rank]; old != nil {
		old.conn.Close() // the corpse's control conn, if still half-open
	}
	cc := &controlConn{conn: conn, writeTimeout: c.cfg.CtlWriteTimeout}
	c.joined[rank] = cc
	c.peerAddrs[rank] = addr
	do := c.deadOrder[:0]
	for _, r := range c.deadOrder {
		if r != rank {
			do = append(do, r)
		}
	}
	c.deadOrder = do
	addrs := append([]string(nil), c.peerAddrs...)
	deadOrder := append([]int(nil), c.deadOrder...)
	epoch := uint32(c.epoch.Load())
	c.mu.Unlock()
	// Fresh heartbeat before clearing the dead flag, or the monitor would
	// re-verdict the rank off the corpse's stale timestamp.
	c.lastBeat[rank].Store(time.Now().UnixNano())
	c.dead[rank].Store(false)
	c.tp.revivePeer(rank, addr)
	c.gen.Store(gen)
	payload := encodeMembership(gen, epoch, addrs, deadOrder)
	gf := &Frame{Kind: ctlGen, Src: 0, Payload: payload}
	c.mu.Lock()
	conns := make(map[int]*controlConn, len(c.joined))
	for r, occ := range c.joined {
		if r != rank && !c.dead[r].Load() {
			conns[r] = occ
		}
	}
	c.mu.Unlock()
	for _, occ := range conns {
		//lint:ignore lockorder bcastMu held across the fan-out IS the total-order guarantee for control frames; each send is bounded by CtlWriteTimeout
		occ.send(gf) // a failed send surfaces via that rank's own heartbeat
	}
	//lint:ignore lockorder the welcome must be ordered after the revive broadcast (bcastMu holds that order); send is bounded by CtlWriteTimeout
	welcomeErr := cc.send(&Frame{Kind: ctlWelcome, Src: 0, Payload: payload})
	c.bcastMu.Unlock()
	if welcomeErr != nil {
		// The joiner vanished mid-handshake; it is now marked live with a
		// dead control conn, so the heartbeat monitor re-verdicts it and
		// the supervisor tries again.
		conn.Close()
		return
	}
	c.wg.Add(1)
	go c.coordControlLoop(rank, br)
	c.fireRejoin(rank, gen)
}

// serveData validates a data-plane attach and runs its read loop,
// delivering decoded frames to the transport sink.
func (c *Cluster) serveData(conn net.Conn, br *bufio.Reader, attach Frame) {
	rank, world, stamp, _, err := decodeHello(attach.Payload)
	if err != nil || world != c.cfg.World || stamp != c.cfg.Stamp ||
		rank < 0 || rank >= c.cfg.World || c.dead[rank].Load() {
		c.tp.handshakeFails.Add(1)
		conn.Close()
		return
	}
	for {
		f, err := ReadFrame(br)
		if err != nil {
			// EOF, truncation or corruption: drop the connection. Whatever
			// was in flight is wire loss; the peer redials and the delivery
			// layer retransmits.
			conn.Close()
			return
		}
		c.tp.noteReceived(FrameHeaderSize + len(f.Payload))
		// Generation fence: the sender stamped its adopted wire generation
		// into the frame epoch's high 16 bits (socket.go). A mismatch means
		// the frame belongs to another incarnation of the cluster — a
		// corpse's straggler, or a fresh generation arriving before this
		// rank adopts it. Drop it unacknowledged: the former dies with its
		// sender, the latter is retransmitted once the gap closes.
		fgen := uint16(f.Epoch >> 16)
		if fgen != uint16(c.gen.Load()) {
			c.tp.staleFenced.Add(1)
			continue
		}
		f.Epoch &= 0xffff
		c.tp.deliver(f)
	}
}

// coordControlLoop is rank 0's per-worker control reader: heartbeats in,
// silence handled by the monitor.
//
//dashmm:detached exits when the worker's control conn closes; Close closes all conns and c.wg.Wait joins
func (c *Cluster) coordControlLoop(rank int, br *bufio.Reader) {
	defer c.wg.Done()
	for {
		f, err := ReadFrame(br)
		if err != nil {
			// The control connection broke. Not an immediate verdict — the
			// heartbeat monitor owns death declarations — but stop reading.
			return
		}
		if f.Kind == ctlBeat {
			c.lastBeat[rank].Store(time.Now().UnixNano())
		}
	}
}

// workerControlLoop is the worker-side control reader: START, death
// verdicts, membership updates, jobs, shutdown; a read error means the
// coordinator is gone.
//
//dashmm:detached exits when the control conn closes; Close closes it and c.wg.Wait joins
func (c *Cluster) workerControlLoop(br *bufio.Reader) {
	defer c.wg.Done()
	for {
		f, err := ReadFrame(br)
		if err != nil {
			select {
			case <-c.quit:
				return
			default:
			}
			c.mu.Lock()
			started := c.started
			c.mu.Unlock()
			if started {
				c.fireCoordLost(fmt.Errorf("amt: control connection to rank 0 lost: %w", err))
			}
			// Without a coordinator there is nothing left to wait for: a
			// pool worker parked on Done must exit and be respawned against
			// whatever coordinator comes next.
			c.signalDone()
			return
		}
		switch f.Kind {
		case ctlStart:
			addrs, err := decodeAddrs(f.Payload)
			if err != nil || len(addrs) != c.cfg.World {
				c.fireCoordLost(fmt.Errorf("amt: malformed START frame"))
				c.signalDone()
				return
			}
			c.mu.Lock()
			already := c.started
			c.started = true
			c.peerAddrs = addrs
			c.mu.Unlock()
			if !already {
				c.tp.setPeers(addrs, c.dead[:])
				c.markStarted()
			}
		case ctlDead:
			if len(f.Payload) < 6 {
				continue
			}
			rank := int(binary.LittleEndian.Uint16(f.Payload))
			epoch := int(binary.LittleEndian.Uint32(f.Payload[2:]))
			c.applyVerdict(rank, epoch)
		case ctlGen:
			// Membership update after a re-admission elsewhere in the
			// cluster: adopt the new generation, addresses and dead set.
			if err := c.adoptMembership(f.Payload); err != nil {
				c.fireCoordLost(fmt.Errorf("amt: malformed membership update: %w", err))
				c.signalDone()
				return
			}
		case ctlJob:
			c.fireJob(f.Epoch, f.Payload)
		case ctlShutdown:
			c.fireShutdown()
		case ctlExit:
			c.signalDone()
		}
	}
}

// beatLoop emits the worker's heartbeats to rank 0.
//
//dashmm:detached ticker goroutine exits on c.quit; Close closes quit and c.wg.Wait joins
func (c *Cluster) beatLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.Heartbeat.Interval)
	defer tick.Stop()
	for {
		select {
		case <-c.quit:
			return
		case <-tick.C:
			if err := c.ctl.send(&Frame{Kind: ctlBeat, Src: c.cfg.Rank}); err != nil {
				// The control conn is gone; workerControlLoop reports it.
				return
			}
		}
	}
}

// monitorLoop is rank 0's membership detector: a rank whose last heartbeat
// is older than Interval×MissedBeats is declared dead.
//
//dashmm:detached exits on c.quit; Close closes quit and c.wg.Wait joins
func (c *Cluster) monitorLoop() {
	defer c.wg.Done()
	hb := c.cfg.Heartbeat
	thresh := int64(hb.Interval) * int64(hb.MissedBeats)
	tick := time.NewTicker(hb.Interval)
	defer tick.Stop()
	for {
		select {
		case <-c.quit:
			return
		case <-tick.C:
			now := time.Now().UnixNano()
			for r := 1; r < c.cfg.World; r++ {
				if c.dead[r].Load() {
					continue
				}
				if now-c.lastBeat[r].Load() > thresh {
					c.DeclareDead(r)
				}
			}
		}
	}
}

// DeclareDead issues a death verdict for a rank (rank 0 only; also the
// test hook for injected deaths): mark, fence the transport, broadcast the
// verdict with its epoch to every surviving worker, and run the local
// OnDeath handler. Idempotent.
func (c *Cluster) DeclareDead(rank int) {
	if c.cfg.Rank != 0 || rank <= 0 || rank >= c.cfg.World {
		return
	}
	// Serialized with jobs and re-admissions: a verdict broadcast must not
	// interleave into the middle of a membership update.
	c.bcastMu.Lock()
	if !c.dead[rank].CompareAndSwap(false, true) {
		c.bcastMu.Unlock()
		return
	}
	epoch := int(c.epoch.Add(1))
	c.tp.severPeer(rank)
	var payload [6]byte
	binary.LittleEndian.PutUint16(payload[0:], uint16(rank))
	binary.LittleEndian.PutUint32(payload[2:], uint32(epoch))
	c.mu.Lock()
	c.deadOrder = append(c.deadOrder, rank)
	conns := make(map[int]*controlConn, len(c.joined))
	for r, cc := range c.joined {
		if !c.dead[r].Load() {
			conns[r] = cc
		}
	}
	c.mu.Unlock()
	f := &Frame{Kind: ctlDead, Src: 0, Payload: payload[:]}
	for _, cc := range conns {
		//lint:ignore lockorder bcastMu held across the fan-out IS the total-order guarantee for control frames; each send is bounded by CtlWriteTimeout
		cc.send(f) // a failed send surfaces via that rank's own heartbeat
	}
	c.bcastMu.Unlock()
	c.fireDeath(rank, epoch)
	c.emitDeath(DeathEvent{Rank: rank, Epoch: epoch})
}

// applyVerdict processes a death verdict on a worker.
func (c *Cluster) applyVerdict(rank, epoch int) {
	if rank < 0 || rank >= c.cfg.World {
		return
	}
	if !c.dead[rank].CompareAndSwap(false, true) {
		return
	}
	c.epoch.Store(int32(epoch))
	c.mu.Lock()
	c.deadOrder = append(c.deadOrder, rank)
	c.mu.Unlock()
	c.tp.severPeer(rank)
	c.fireDeath(rank, epoch)
}

// Shutdown broadcasts the run-complete signal to every live worker (rank 0
// only).
func (c *Cluster) Shutdown() {
	c.broadcastCtl(ctlShutdown)
}

// BroadcastExit tells every live worker to exit its process: the pool is
// being torn down (rank 0 only). Workers observe it via Done.
func (c *Cluster) BroadcastExit() {
	c.broadcastCtl(ctlExit)
}

func (c *Cluster) broadcastCtl(kind uint16) {
	if c.cfg.Rank != 0 {
		return
	}
	c.bcastMu.Lock()
	defer c.bcastMu.Unlock()
	c.mu.Lock()
	conns := c.liveConnsLocked()
	c.mu.Unlock()
	f := &Frame{Kind: kind, Src: 0}
	for _, cc := range conns {
		//lint:ignore lockorder bcastMu held across the fan-out IS the total-order guarantee for control frames; each send is bounded by CtlWriteTimeout
		cc.send(f)
	}
}

// Close tears the cluster down: listener, control connections, data-plane
// peers, and every cluster goroutine is stopped and joined.
func (c *Cluster) Close() error {
	c.closeMu.Lock()
	if c.closed {
		c.closeMu.Unlock()
		return nil
	}
	c.closed = true
	c.closeMu.Unlock()
	close(c.quit)
	c.ln.Close()
	if c.ctl != nil {
		c.ctl.conn.Close()
	}
	c.mu.Lock()
	for _, cc := range c.joined {
		cc.conn.Close()
	}
	c.mu.Unlock()
	// Unblock every accepted-connection reader: a peer that never hangs up
	// (or is this same process, in tests) must not stall the teardown.
	c.connMu.Lock()
	c.connsDone = true
	for conn := range c.conns {
		conn.Close()
	}
	c.connMu.Unlock()
	c.tp.close()
	c.wg.Wait()
	return nil
}

// trackConn registers an accepted connection for teardown; false means the
// cluster is already closing and the conn must not be served.
func (c *Cluster) trackConn(conn net.Conn) bool {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.connsDone {
		return false
	}
	c.conns[conn] = struct{}{}
	return true
}

func (c *Cluster) untrackConn(conn net.Conn) {
	c.connMu.Lock()
	delete(c.conns, conn)
	c.connMu.Unlock()
}

// encodeHello serializes a join/attach preamble.
func encodeHello(cfg ClusterConfig, listenAddr string) []byte {
	buf := make([]byte, 0, 8+len(cfg.Stamp)+len(listenAddr))
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(cfg.Rank))
	buf = append(buf, u16[:]...)
	binary.LittleEndian.PutUint16(u16[:], uint16(cfg.World))
	buf = append(buf, u16[:]...)
	binary.LittleEndian.PutUint16(u16[:], uint16(len(cfg.Stamp)))
	buf = append(buf, u16[:]...)
	buf = append(buf, cfg.Stamp...)
	binary.LittleEndian.PutUint16(u16[:], uint16(len(listenAddr)))
	buf = append(buf, u16[:]...)
	buf = append(buf, listenAddr...)
	return buf
}

func decodeHello(b []byte) (rank, world int, stamp, addr string, err error) {
	get16 := func() (int, bool) {
		if len(b) < 2 {
			return 0, false
		}
		v := int(binary.LittleEndian.Uint16(b))
		b = b[2:]
		return v, true
	}
	getStr := func() (string, bool) {
		n, ok := get16()
		if !ok || len(b) < n {
			return "", false
		}
		s := string(b[:n])
		b = b[n:]
		return s, true
	}
	var ok bool
	if rank, ok = get16(); !ok {
		return 0, 0, "", "", fmt.Errorf("short hello (rank)")
	}
	if world, ok = get16(); !ok {
		return 0, 0, "", "", fmt.Errorf("short hello (world)")
	}
	if stamp, ok = getStr(); !ok {
		return 0, 0, "", "", fmt.Errorf("short hello (stamp)")
	}
	if addr, ok = getStr(); !ok {
		return 0, 0, "", "", fmt.Errorf("short hello (addr)")
	}
	return rank, world, stamp, addr, nil
}

// encodeAddrs serializes the START peer-address list.
func encodeAddrs(addrs []string) []byte {
	var buf []byte
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(addrs)))
	buf = append(buf, u16[:]...)
	for _, a := range addrs {
		binary.LittleEndian.PutUint16(u16[:], uint16(len(a)))
		buf = append(buf, u16[:]...)
		buf = append(buf, a...)
	}
	return buf
}

func decodeAddrs(b []byte) ([]string, error) {
	addrs, rest, err := decodeAddrsRest(b)
	if err != nil {
		return nil, err
	}
	_ = rest
	return addrs, nil
}

func decodeAddrsRest(b []byte) ([]string, []byte, error) {
	if len(b) < 2 {
		return nil, nil, fmt.Errorf("short address list")
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 2 {
			return nil, nil, fmt.Errorf("short address list entry")
		}
		l := int(binary.LittleEndian.Uint16(b))
		b = b[2:]
		if len(b) < l {
			return nil, nil, fmt.Errorf("short address list entry")
		}
		addrs = append(addrs, string(b[:l]))
		b = b[l:]
	}
	return addrs, b, nil
}

// encodeMembership serializes a membership snapshot: wire generation,
// verdict epoch, peer address list, and the dead ranks in verdict order.
func encodeMembership(gen, epoch uint32, addrs []string, deadOrder []int) []byte {
	var u32 [4]byte
	var u16 [2]byte
	buf := make([]byte, 0, 10+16*len(addrs)+2*len(deadOrder))
	binary.LittleEndian.PutUint32(u32[:], gen)
	buf = append(buf, u32[:]...)
	binary.LittleEndian.PutUint32(u32[:], epoch)
	buf = append(buf, u32[:]...)
	buf = append(buf, encodeAddrs(addrs)...)
	binary.LittleEndian.PutUint16(u16[:], uint16(len(deadOrder)))
	buf = append(buf, u16[:]...)
	for _, r := range deadOrder {
		binary.LittleEndian.PutUint16(u16[:], uint16(r))
		buf = append(buf, u16[:]...)
	}
	return buf
}

func decodeMembership(b []byte) (gen, epoch uint32, addrs []string, deadOrder []int, err error) {
	if len(b) < 8 {
		return 0, 0, nil, nil, fmt.Errorf("short membership")
	}
	gen = binary.LittleEndian.Uint32(b)
	epoch = binary.LittleEndian.Uint32(b[4:])
	addrs, rest, err := decodeAddrsRest(b[8:])
	if err != nil {
		return 0, 0, nil, nil, err
	}
	if len(rest) < 2 {
		return 0, 0, nil, nil, fmt.Errorf("short membership (dead list)")
	}
	n := int(binary.LittleEndian.Uint16(rest))
	rest = rest[2:]
	if len(rest) < 2*n {
		return 0, 0, nil, nil, fmt.Errorf("short membership (dead entries)")
	}
	deadOrder = make([]int, 0, n)
	for i := 0; i < n; i++ {
		deadOrder = append(deadOrder, int(binary.LittleEndian.Uint16(rest[2*i:])))
	}
	return gen, epoch, addrs, deadOrder, nil
}
