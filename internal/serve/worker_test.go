package serve

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/amt"
)

// TestMain diverts worker re-execs: the pool's default WorkerCommand is
// this test binary, so a forked rank must run the worker loop instead of
// the test suite.
func TestMain(m *testing.M) {
	if MaybeWorker() {
		return // unreachable: MaybeWorker exits the process
	}
	os.Exit(m.Run())
}

// fastPool is a small real pool (forked worker processes) tuned for tests.
func fastPool(t *testing.T, workers int, mut func(*PoolConfig)) *Pool {
	t.Helper()
	cfg := PoolConfig{
		Workers:     workers,
		RankThreads: 1,
		Heartbeat:   amt.FailureDetectorConfig{Interval: 25 * time.Millisecond, MissedBeats: 20},
		JoinTimeout: 30 * time.Second,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	p, err := NewPool(cfg)
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	t.Cleanup(p.Close)
	return p
}

// A worker whose coordinator dies mid-run returns promptly instead of
// wedging: the lost control connection fails the in-flight DistRun.
// RunWorker runs in-process here so the test can watch its return value.
func TestWorkerExitsOnCoordinatorLossMidRun(t *testing.T) {
	dir := t.TempDir()
	addr := filepath.Join(dir, "coord.sock")
	stamp := "worker-test-v1"
	hb := amt.FailureDetectorConfig{Interval: 25 * time.Millisecond, MissedBeats: 20}
	coord, err := amt.NewCluster(amt.ClusterConfig{
		Rank: 0, World: 2, Network: "unix", Addr: addr, Stamp: stamp, Heartbeat: hb,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	workerDone := make(chan error, 1)
	go func() {
		workerDone <- RunWorker(WorkerEnv{
			Rank: 1, World: 2, Network: "unix", Addr: addr, Stamp: stamp,
			Threads: 1, Heartbeat: hb, JoinTimeout: 30 * time.Second,
		})
	}()
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}

	// Broadcast a job but never run rank 0's side of it: the worker enters
	// DistRun and blocks waiting for the charge broadcast...
	spec := &jobSpec{Distribution: "cube", N: 400, Seed: 1, Kernel: "laplace",
		Digits: 3, RunSeed: 7, TimeoutMS: 60_000}
	coord.StartJob(func(gen uint32, deadOrder []int) []byte {
		spec.Gen = gen
		spec.PreDead = deadOrder
		return spec.encode()
	})

	// ...give it a moment to get there, then the coordinator dies.
	time.Sleep(300 * time.Millisecond)
	coord.Close()

	select {
	case err := <-workerDone:
		if err == nil {
			t.Fatal("worker returned nil after losing the coordinator mid-run; want an error (crash-only exit)")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker wedged after coordinator death")
	}
}

// An idle worker whose coordinator disappears also exits (cleanly: the
// Done signal, not an error, when the control conn just closes is still a
// return — no orphan loop).
func TestWorkerExitsOnCoordinatorLossIdle(t *testing.T) {
	dir := t.TempDir()
	addr := filepath.Join(dir, "coord.sock")
	stamp := "worker-test-v2"
	coord, err := amt.NewCluster(amt.ClusterConfig{
		Rank: 0, World: 2, Network: "unix", Addr: addr, Stamp: stamp,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- RunWorker(WorkerEnv{
			Rank: 1, World: 2, Network: "unix", Addr: addr, Stamp: stamp,
			Threads: 1, JoinTimeout: 30 * time.Second,
		})
	}()
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	coord.Close()
	select {
	case <-workerDone:
	case <-time.After(30 * time.Second):
		t.Fatal("idle worker wedged after coordinator death")
	}
}

// A crash-looping worker (respawns exit immediately) burns through the
// restart budget and is abandoned: rank pinned "dead", breaker forced
// open, Evaluate degrading from then on.
func TestSupervisorRestartBudgetAbandonsCrashLoop(t *testing.T) {
	p := fastPool(t, 1, func(cfg *PoolConfig) {
		cfg.RestartBudget = 3
		cfg.RestartWindow = time.Minute
	})

	// Respawns now hit a stub that dies instantly, long before joining.
	p.SetWorkerCommand([]string{"/bin/sh", "-c", "exit 1"})
	p.ranks[1].kill() // the real worker dies; the crash loop begins

	deadline := time.Now().Add(60 * time.Second)
	for {
		s := p.Snapshot()
		if s.Ranks[0].State == "dead" && s.Breaker == "forced-open" {
			if s.Ranks[0].Strikes <= p.cfg.RestartBudget {
				t.Fatalf("abandoned with %d strikes, want > budget %d",
					s.Ranks[0].Strikes, p.cfg.RestartBudget)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rank never abandoned: %+v", s.Ranks[0])
		}
		time.Sleep(10 * time.Millisecond)
	}

	req := &Request{N: 5000}
	if err := req.normalize(Config{}.withDefaults()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, _, err := p.Evaluate(ctx, req, nil, nil)
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("Evaluate after abandon: %v, want ErrDegraded", err)
	}
}
