package amt

import (
	"sync/atomic"
	"testing"
	"time"
)

func quickDetector() *FailureDetectorConfig {
	return &FailureDetectorConfig{Interval: time.Millisecond, MissedBeats: 5}
}

// TestHeartbeatDetectorDeclaresKilledRank: a killed locality stops beating
// and the detector declares it within the missed-beat threshold, invoking
// the registered failure handlers exactly once with the rank fenced.
func TestHeartbeatDetectorDeclaresKilledRank(t *testing.T) {
	rt := New(Config{Localities: 3, Workers: 2, Detector: quickDetector()})
	var declared atomic.Int64
	var declaredRank atomic.Int64
	rt.OnFailure(func(rank int) {
		declared.Add(1)
		declaredRank.Store(int64(rank))
		if !rt.Dead(rank) {
			t.Errorf("handler ran before rank %d was fenced", rank)
		}
	})
	start := time.Now()
	stats := rt.Run(func() {
		rt.Locality(0).Spawn(func(w *Worker) { rt.Kill(1) })
	})
	// The crash tombstone holds the run open until the verdict, so by the
	// time Run returns the handler must have fired.
	if declared.Load() != 1 {
		t.Fatalf("handler invoked %d times, want 1", declared.Load())
	}
	if declaredRank.Load() != 1 {
		t.Fatalf("declared rank %d, want 1", declaredRank.Load())
	}
	if !rt.Dead(1) || rt.Dead(0) || rt.Dead(2) {
		t.Error("Dead() does not reflect the verdict")
	}
	if stats.RanksKilled != 1 {
		t.Errorf("stats report %d ranks killed, want 1", stats.RanksKilled)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("detection took %s, want well under the test deadline", el)
	}
}

// TestKillDropsQueuedTasksAndSpawns: tasks queued on a killed rank are
// discarded and accounted, and later spawns addressed to it are rejected
// rather than executed or leaked into the pending count (which would hang
// the run).
func TestKillDropsQueuedTasksAndSpawns(t *testing.T) {
	rt := New(Config{Localities: 2, Workers: 1, Detector: quickDetector()})
	rt.OnFailure(func(int) {})
	var ranOnDead atomic.Int64
	stats := rt.Run(func() {
		rt.Locality(0).Spawn(func(w *Worker) {
			rt.Kill(1)
			for i := 0; i < 10; i++ {
				rt.Locality(1).Spawn(func(*Worker) { ranOnDead.Add(1) })
			}
		})
	})
	if ranOnDead.Load() != 0 {
		t.Fatalf("%d tasks ran on a dead rank", ranOnDead.Load())
	}
	if stats.TasksDropped < 10 {
		t.Errorf("stats report %d dropped tasks, want >= 10", stats.TasksDropped)
	}
}

// TestShutdownSpawnNeverSilentlyLost is the shutdown-drain regression test:
// a task spawned while the runtime is already completing (here: after an
// Abort) must either execute during the drain or be counted as a late
// spawn — never vanish.
func TestShutdownSpawnNeverSilentlyLost(t *testing.T) {
	for round := 0; round < 20; round++ {
		rt := New(Config{Localities: 2, Workers: 2})
		var ran atomic.Int64
		const spawned = 64
		rt.Run(func() {
			rt.Locality(0).Spawn(func(w *Worker) {
				// Completing the runtime and spawning afterwards races the
				// worker stop path — exactly the window where parcels used
				// to be dropped from undrained inboxes.
				rt.Abort()
				for i := 0; i < spawned; i++ {
					rt.Locality(i % 2).Spawn(func(*Worker) { ran.Add(1) })
				}
			})
		})
		st := rt.StatsNow()
		if got := ran.Load() + st.LateSpawns; got != spawned {
			t.Fatalf("round %d: %d executed + %d late != %d spawned",
				round, ran.Load(), st.LateSpawns, spawned)
		}
	}
}

// TestLCOReset: Reset re-arms a triggered LCO for crash-recovery rebuild —
// fresh input count, cleared continuations, optional re-homing — and the
// re-armed LCO fires again after exactly the new number of inputs.
func TestLCOReset(t *testing.T) {
	rt := New(Config{Localities: 2, Workers: 1})
	lco := NewLCO(rt.Locality(0), 2)
	var fired atomic.Int64
	firedOn := make(chan int, 4)
	rt.Run(func() {
		loc := rt.Locality(0)
		lco.Register(func(w *Worker) { fired.Add(1); firedOn <- w.Rank() })
		loc.Spawn(func(w *Worker) {
			lco.Input(nil)
			lco.Input(nil)
		})
	})
	if fired.Load() != 1 {
		t.Fatalf("LCO fired %d times before reset, want 1", fired.Load())
	}

	// Re-arm with one more input than before, homed on the other locality.
	lco.Reset(rt.Locality(1), 3)
	if lco.Triggered() || lco.Arrived() != 0 || lco.Needed() != 3 || lco.Overflow() != 0 {
		t.Fatalf("reset LCO state: triggered=%v arrived=%d needed=%d overflow=%d",
			lco.Triggered(), lco.Arrived(), lco.Needed(), lco.Overflow())
	}
	if lco.Home() != rt.Locality(1) {
		t.Fatal("reset did not re-home the LCO")
	}

	rt2 := New(Config{Localities: 2, Workers: 1})
	// The LCO's home locality belongs to the finished runtime; re-home it
	// onto the fresh one (recovery re-homes onto live localities the same
	// way).
	lco.Reset(rt2.Locality(1), 3)
	rt2.Run(func() {
		lco.Register(func(w *Worker) { fired.Add(1); firedOn <- w.Rank() })
		rt2.Locality(0).Spawn(func(w *Worker) {
			lco.Input(nil)
			lco.Input(nil)
			lco.Input(nil)
			lco.Input(nil) // overflow: must not double-fire
		})
	})
	if fired.Load() != 2 {
		t.Fatalf("LCO fired %d times total, want 2", fired.Load())
	}
	if lco.Overflow() != 1 {
		t.Errorf("overflow = %d, want 1", lco.Overflow())
	}
	close(firedOn)
	ranks := []int{}
	for r := range firedOn {
		ranks = append(ranks, r)
	}
	if len(ranks) != 2 || ranks[0] != 0 || ranks[1] != 1 {
		t.Errorf("continuations ran on ranks %v, want [0 1] (pre/post re-home)", ranks)
	}

	// Reset to zero inputs leaves the LCO triggered, matching NewLCO.
	lco.Reset(nil, 0)
	if !lco.Triggered() {
		t.Error("reset to zero inputs should leave the LCO triggered")
	}
}

// TestKillRequiresDetector: crashing a rank without a failure detector
// would hang the run, so Kill refuses to.
func TestKillRequiresDetector(t *testing.T) {
	rt := New(Config{Localities: 2, Workers: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("Kill without a detector did not panic")
		}
	}()
	rt.Kill(1)
}

// TestSeverStopsRetransmissionToDeadRank is the delivery-teardown test: a
// dead rank never acks, so senders retransmit until the detector verdict
// severs its endpoints — at which point every unacked entry settles
// (Severed), the retry timers die (Retried stops moving), and no goroutine
// is leaked spinning on the dead destination.
func TestSeverStopsRetransmissionToDeadRank(t *testing.T) {
	rt := New(Config{
		Localities: 2, Workers: 1,
		Detector: &FailureDetectorConfig{Interval: time.Millisecond, MissedBeats: 25},
		// A real (non-bypassed) transport with no injected faults: every
		// parcel to the dead rank reaches it and is refused, exercising the
		// retransmission loop rather than the wire.
		Transport: NewFaultyTransport(FaultProfile{Seed: 1}),
		Delivery: DeliveryConfig{
			RetryBase: time.Millisecond,
			RetryMax:  4 * time.Millisecond,
			Deadline:  120 * time.Second,
		},
	})
	rt.OnFailure(func(int) {})
	var ranOnDead atomic.Int64
	stats := rt.Run(func() {
		rt.Locality(0).Spawn(func(w *Worker) {
			rt.Kill(1)
			// The long detection window (25ms) leaves these parcels
			// retransmitting to a silent rank until the verdict severs it.
			for i := 0; i < 8; i++ {
				w.SendParcel(1, 100, func(*Worker) { ranOnDead.Add(1) })
			}
		})
	})
	if ranOnDead.Load() != 0 {
		t.Fatalf("%d parcels executed on a dead rank", ranOnDead.Load())
	}
	ts := stats.Transport
	if ts.Severed == 0 {
		t.Error("no parcels were settled by the sever")
	}
	if ts.Retried == 0 {
		t.Error("no retransmissions before the verdict; the loop was never exercised")
	}
	if ts.DeadlineExceeded != 0 {
		t.Errorf("%d parcels hit the deadline; sever should have settled them first", ts.DeadlineExceeded)
	}
	// Leak check: all retry timers must be dead. Any survivor would bump
	// Retried after the run.
	before := rt.StatsNow().Transport.Retried
	time.Sleep(30 * time.Millisecond)
	if after := rt.StatsNow().Transport.Retried; after != before {
		t.Errorf("retransmissions continued after the run: %d -> %d", before, after)
	}
}
