// Capacitance: the paper's motivating use case for amortizing DAG
// construction — an iterative procedure that evaluates the same DAG many
// times with different inputs (Section IV).
//
// We solve a first-kind boundary integral equation: find the charge
// distribution q on a conducting sphere held at unit potential,
//
//	sum_j q_j / |x_i - x_j| = 1   for every panel point x_i,
//
// by the positivity-preserving multiplicative fixed point q_i <- q_i / phi_i
// (charge flows away from over-potential regions), using the FMM evaluation
// as the matrix-vector product. The plan (tree + lists + DAG + operator
// tables) is built once; each iteration reuses it through the Evaluation
// context. The converged total charge approximates the analytic capacitance
// of a sphere (C = R in Gaussian units; R = 0.5 here).
//
//	go run ./examples/capacitance
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/points"
)

func main() {
	const (
		n     = 15000
		iters = 25
	)
	pts := points.Generate(points.Sphere, n, 21) // radius 0.5 around (.5,.5,.5)
	k := kernel.NewLaplace(kernel.OrderForDigits(3))

	plan, err := core.NewPlan(pts, pts, k, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ev, err := plan.NewEvaluation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan built once: %d nodes, %d edges; iterating %d times\n",
		len(plan.Graph.Nodes), plan.Graph.NumEdges(), iters)

	// Initial guess: uniform positive charge.
	q := make([]float64, n)
	for i := range q {
		q[i] = 1.0 / n
	}
	for it := 0; it < iters; it++ {
		pot, err := ev.Run(q)
		if err != nil {
			log.Fatal(err)
		}
		var res, tot float64
		for i := range q {
			r := 1 - pot[i]
			q[i] /= pot[i] // multiplicative update toward phi_i = 1
			res += r * r
			tot += q[i]
		}
		if it%5 == 0 || it == iters-1 {
			fmt.Printf("iter %2d: residual %.3e  total charge %.6f\n",
				it, math.Sqrt(res/float64(n)), tot)
		}
	}
	var tot float64
	for _, v := range q {
		tot += v
	}
	fmt.Printf("capacitance: Q/V = %.4f (analytic sphere value: R = 0.5)\n", tot)
}
