// Package trace implements the event tracing and utilization analysis of
// Section V-B of the paper. Executors record one event per operator
// application (class, worker, start, end); the analysis divides the
// evaluation into M uniform intervals and computes the utilization fraction
//
//	f_k^(i) = dt_k^(i) / (n dt_k)         (paper Eq. 1)
//	f_k     = sum_i f_k^(i)               (paper Eq. 2)
//
// where dt_k^(i) is the time spent in operator class i during interval k
// and n is the total number of scheduler threads.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Transport event classes: the parcel delivery layer records one
// zero-duration marker event per injected or recovered fault (retry,
// wire drop, wire duplication, delivery deadline exceeded). The values sit
// at the top of the uint8 range, far above the dag.OpKind operator classes,
// so fault markers never collide with operator events in an analysis.
const (
	ClassNetRetry    uint8 = 0xF0
	ClassNetDrop     uint8 = 0xF1
	ClassNetDup      uint8 = 0xF2
	ClassNetDeadline uint8 = 0xF3
)

// Recovery event classes: the crash-recovery machinery records one
// zero-duration marker per lifecycle step — a locality killed (injected
// crash or detector fencing), a failure-detector verdict, an ownership
// failover, and the seeding of an orphaned-subgraph replay. They occupy
// 0xE0.. so they collide with neither operator classes nor the 0xF0..
// transport markers.
const (
	ClassRecoveryKill     uint8 = 0xE0
	ClassRecoveryDetect   uint8 = 0xE1
	ClassRecoveryFailover uint8 = 0xE2
	ClassRecoveryReplay   uint8 = 0xE3
)

// NetClassName names a transport or recovery marker event class ("" for
// operator classes).
func NetClassName(c uint8) string {
	switch c {
	case ClassNetRetry:
		return "net-retry"
	case ClassNetDrop:
		return "net-drop"
	case ClassNetDup:
		return "net-dup"
	case ClassNetDeadline:
		return "net-deadline"
	case ClassRecoveryKill:
		return "recovery-kill"
	case ClassRecoveryDetect:
		return "recovery-detect"
	case ClassRecoveryFailover:
		return "recovery-failover"
	case ClassRecoveryReplay:
		return "recovery-replay"
	}
	return ""
}

// Event is one recorded operator execution. Times are nanoseconds on the
// executor's clock (wall time for the real runtime, virtual time for the
// simulator).
type Event struct {
	Class    uint8
	Worker   int32 // global worker id (locality * workersPerLocality + w)
	Locality int32
	Start    int64
	End      int64
}

// Tracer collects events from concurrent workers. Each worker writes to its
// own buffer; virtual events (simulator, transport fault markers) go to a
// separate mutex-guarded buffer so they never race a live worker's
// lock-free appends. Snapshot merges everything.
type Tracer struct {
	mu sync.Mutex
	// buffers is sliced per worker: buffers[w] is owned by worker w while it
	// runs (see Record), and the whole slice is guarded by mu whenever any
	// cross-worker reader (Snapshot, Reset) touches it.
	buffers [][]Event // guarded by mu
	virtual []Event   // guarded by mu
	epoch   time.Time // guarded by mu
	enabled bool
}

// New returns a Tracer with per-worker buffers for the given worker count.
func New(workers int) *Tracer {
	return &Tracer{buffers: make([][]Event, workers), epoch: time.Now(), enabled: true}
}

// Enabled reports whether the tracer records events; a nil Tracer is
// disabled.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled }

// SetEnabled switches event recording on or off. A long-lived evaluation
// context can keep a tracer attached permanently and enable it only for
// requests that asked for a capture; the disabled state costs one boolean
// check per recorded event. It must not be flipped while workers are
// actively recording (the serving layer serializes it with evaluations).
func (t *Tracer) SetEnabled(on bool) {
	if t == nil {
		return
	}
	t.enabled = on
}

// Now returns the tracer-relative timestamp in nanoseconds.
//
//lint:ignore lockguard epoch is immutable while workers run; Reset rewrites it only between evaluations.
func (t *Tracer) Now() int64 { return int64(time.Since(t.epoch)) }

// Record appends an event to worker w's buffer. It must be called only from
// that worker.
func (t *Tracer) Record(w int, ev Event) {
	if t == nil || !t.enabled {
		return
	}
	//lint:ignore lockguard per-worker buffer: only worker w appends to buffers[w], and Snapshot/Reset run only between evaluations.
	t.buffers[w] = append(t.buffers[w], ev)
}

// RecordVirtual appends an event on behalf of a simulator or the parcel
// transport (any goroutine); it takes the tracer lock.
func (t *Tracer) RecordVirtual(ev Event) {
	if t == nil || !t.enabled {
		return
	}
	t.mu.Lock()
	t.virtual = append(t.virtual, ev)
	t.mu.Unlock()
}

// Snapshot returns all events recorded so far, sorted by start time.
func (t *Tracer) Snapshot() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	var all []Event
	for _, b := range t.buffers {
		all = append(all, b...)
	}
	all = append(all, t.virtual...)
	sort.Slice(all, func(i, j int) bool { return all[i].Start < all[j].Start })
	return all
}

// Reset discards all recorded events and restarts the clock.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.buffers {
		t.buffers[i] = t.buffers[i][:0]
	}
	t.virtual = t.virtual[:0]
	t.epoch = time.Now()
}

// Utilization is the result of the interval analysis.
type Utilization struct {
	// Intervals is M, the number of uniform intervals.
	Intervals int
	// Workers is n, the number of scheduler threads.
	Workers int
	// Span is the analyzed time range.
	Start, End int64
	// Total[k] is f_k.
	Total []float64
	// ByClass[c][k] is f_k^(c) for every class that appears.
	ByClass map[uint8][]float64
}

// Analyze computes the utilization fractions over m uniform intervals of
// the span [start, end] for n workers. Events outside the span are clipped.
func Analyze(events []Event, n, m int, start, end int64) *Utilization {
	if end <= start || m <= 0 || n <= 0 {
		return &Utilization{Intervals: m, Workers: n, Start: start, End: end,
			Total: make([]float64, m), ByClass: map[uint8][]float64{}}
	}
	u := &Utilization{
		Intervals: m, Workers: n, Start: start, End: end,
		Total:   make([]float64, m),
		ByClass: make(map[uint8][]float64),
	}
	span := end - start
	dt := float64(span) / float64(m)
	for _, ev := range events {
		s, e := ev.Start, ev.End
		if s < start {
			s = start
		}
		if e > end {
			e = end
		}
		if e <= s {
			continue
		}
		cls := u.ByClass[ev.Class]
		if cls == nil {
			cls = make([]float64, m)
			u.ByClass[ev.Class] = cls
		}
		// Distribute the event's duration over the intervals it spans.
		k0 := int(float64(s-start) / dt)
		k1 := int(float64(e-start) / dt)
		if k0 >= m {
			k0 = m - 1
		}
		if k1 >= m {
			k1 = m - 1
		}
		for k := k0; k <= k1; k++ {
			ivStart := start + int64(float64(k)*dt)
			ivEnd := start + int64(float64(k+1)*dt)
			a, b := s, e
			if a < ivStart {
				a = ivStart
			}
			if b > ivEnd {
				b = ivEnd
			}
			if b > a {
				cls[k] += float64(b - a)
			}
		}
	}
	norm := float64(n) * dt
	for c, vals := range u.ByClass {
		for k := range vals {
			vals[k] /= norm
			u.Total[k] += vals[k]
		}
		u.ByClass[c] = vals
	}
	return u
}

// Span returns the [min start, max end] of the events.
func Span(events []Event) (start, end int64) {
	if len(events) == 0 {
		return 0, 0
	}
	start, end = events[0].Start, events[0].End
	for _, ev := range events {
		if ev.Start < start {
			start = ev.Start
		}
		if ev.End > end {
			end = ev.End
		}
	}
	return start, end
}

// AvgMicrosByClass returns the average event duration per class in
// microseconds (the t_avg column of Table II). Transport and recovery
// marker classes (the zero-duration 0xE0../0xF0.. events) are excluded:
// they are occurrence counters, not timed operator executions, and
// averaging them would emit meaningless 0µs rows in the Table II output.
func AvgMicrosByClass(events []Event) map[uint8]float64 {
	sum := map[uint8]float64{}
	cnt := map[uint8]int{}
	for _, ev := range events {
		if NetClassName(ev.Class) != "" {
			continue
		}
		sum[ev.Class] += float64(ev.End - ev.Start)
		cnt[ev.Class]++
	}
	out := make(map[uint8]float64, len(sum))
	for c, s := range sum {
		out[c] = s / float64(cnt[c]) / 1000
	}
	return out
}

// starvationExitFrac is the explicit exit hysteresis of the dip scan: once
// a dip has been entered (utilization below frac*plateau), it persists
// until utilization recovers above starvationExitFrac*plateau. The exit
// threshold sits above any sensible entry threshold so a dip that wobbles
// around the entry level is reported as one dip, not many.
const starvationExitFrac = 0.97

// Starvation locates the end-of-run underutilization dip the paper observes
// (Fig. 4): the longest run of trailing intervals, ending before the final
// ramp-down, whose utilization is below frac of the plateau. It returns the
// dip's first and last interval indices and the plateau level; found is
// false if utilization never drops below frac*plateau after the warmup.
//
// Entry and exit use explicit hysteresis: the dip starts at the first
// interval below frac*plateau and extends while utilization stays below
// starvationExitFrac*plateau. Because the exit threshold is looser than the
// entry one, an unguarded scan would run straight through the run's final
// ramp-down (the last intervals, where utilization falls to zero simply
// because the work drains) and overstate the dip width; the trailing
// monotone decline that touches the end of the run is therefore trimmed
// back off the reported dip.
func (u *Utilization) Starvation(frac float64) (first, last int, plateau float64, found bool) {
	m := u.Intervals
	if m == 0 {
		return 0, 0, 0, false
	}
	// Plateau: median of the middle half of the run. For runs analyzed over
	// very few intervals the middle-half slice [m/4, 3m/4) can be empty
	// (m < 4) — fall back to the median of the whole profile instead of
	// silently reporting "no dip".
	mid := append([]float64(nil), u.Total[m/4:3*m/4]...)
	if len(mid) == 0 {
		mid = append(mid, u.Total...)
	}
	sort.Float64s(mid)
	plateau = mid[len(mid)/2]
	thresh := frac * plateau
	exit := starvationExitFrac * plateau
	if exit < thresh {
		exit = thresh // hysteresis must never be tighter than the entry
	}
	// Scan from 20% (skipping the startup ramp) for the first dip.
	for k := m / 5; k < m; k++ {
		if u.Total[k] < thresh {
			first = k
			last = k
			for last+1 < m && u.Total[last+1] < exit {
				last++
			}
			// If the hysteresis carried the dip into the terminal
			// ramp-down, trim the monotone non-increasing tail that ends
			// the run: those intervals are the evaluation finishing, not
			// scheduler starvation.
			if last == m-1 {
				for last > first && u.Total[last] <= u.Total[last-1] && u.Total[last] < thresh {
					last--
				}
			}
			return first, last, plateau, true
		}
	}
	return 0, 0, plateau, false
}

// Format renders the total utilization as a two-column table.
func (u *Utilization) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%4s %8s\n", "k", "f_k")
	for k, v := range u.Total {
		fmt.Fprintf(&sb, "%4d %8.4f\n", k, v)
	}
	return sb.String()
}
