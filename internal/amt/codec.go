package amt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// The wire frame codec for multi-process parcel transport (DESIGN.md,
// "Distribution"). Framing is hand-rolled and length-prefixed: a fixed
// 32-byte header carrying a magic tag, a codec version, the message
// metadata the delivery layer needs (src/dst rank, sequence number, ack
// flag, recovery epoch, payload kind) and a CRC32 over header+payload, then
// the payload bytes. The decoder errors — never panics, never hangs — on a
// truncated, corrupted or oversized frame; the transport reacts by dropping
// the connection, which the delivery layer experiences as wire loss.
//
// Layout (little endian):
//
//	off  size  field
//	0    4     magic "DMM1"
//	4    1     codec version
//	5    1     flags (bit 0: ack)
//	6    2     kind  (payload type tag, app-defined)
//	8    2     src rank
//	10   2     dst rank
//	12   4     recovery epoch
//	16   8     sequence number
//	24   4     payload length
//	28   4     CRC32 (IEEE) over header[0:28] + payload
//	32   ...   payload

const (
	frameMagic   = 0x444d4d31 // "DMM1"
	CodecVersion = 1
	// FrameHeaderSize is the fixed frame header length in bytes.
	FrameHeaderSize = 32
	// MaxFramePayload bounds a single frame's payload so a corrupted or
	// hostile length field cannot make the decoder allocate absurd buffers.
	MaxFramePayload = 1 << 28 // 256 MiB
)

// Frame flags.
const (
	// FlagAck marks a delivery-layer acknowledgment frame.
	FlagAck = 1 << 0
)

// Codec decode errors. Truncations surface as io.ErrUnexpectedEOF wrapped
// with position context.
var (
	ErrBadMagic     = errors.New("amt: bad frame magic")
	ErrBadVersion   = errors.New("amt: frame codec version mismatch")
	ErrBadChecksum  = errors.New("amt: frame checksum mismatch")
	ErrFrameTooBig  = errors.New("amt: frame payload exceeds limit")
	errShortPayload = errors.New("amt: truncated frame payload")
)

// Frame is one decoded wire message: the delivery-layer metadata plus the
// opaque typed payload. It is the wire form of Message for transports that
// cross a process boundary.
type Frame struct {
	Kind     uint16
	Flags    uint8
	Src, Dst int
	Epoch    uint32
	Seq      uint64
	Payload  []byte
}

// Ack reports whether the frame is a delivery-layer acknowledgment.
func (f *Frame) Ack() bool { return f.Flags&FlagAck != 0 }

// AppendFrame encodes the frame onto dst and returns the extended slice.
//
//dashmm:wire frame encode Frame
func AppendFrame(dst []byte, f *Frame) []byte {
	base := len(dst)
	dst = append(dst, make([]byte, FrameHeaderSize)...)
	h := dst[base:]
	binary.LittleEndian.PutUint32(h[0:], frameMagic)
	h[4] = CodecVersion
	h[5] = f.Flags
	binary.LittleEndian.PutUint16(h[6:], f.Kind)
	binary.LittleEndian.PutUint16(h[8:], uint16(f.Src))
	binary.LittleEndian.PutUint16(h[10:], uint16(f.Dst))
	binary.LittleEndian.PutUint32(h[12:], f.Epoch)
	binary.LittleEndian.PutUint64(h[16:], f.Seq)
	binary.LittleEndian.PutUint32(h[24:], uint32(len(f.Payload)))
	crc := crc32.NewIEEE()
	crc.Write(h[0:28])
	crc.Write(f.Payload)
	binary.LittleEndian.PutUint32(h[28:], crc.Sum32())
	return append(dst, f.Payload...)
}

// ReadFrame decodes one frame from the stream. A clean EOF before the first
// header byte returns io.EOF; any mid-frame truncation returns an error
// wrapping io.ErrUnexpectedEOF. The returned payload is freshly allocated
// (the frame owns it).
//
//dashmm:wire frame decode Frame
func ReadFrame(br *bufio.Reader) (Frame, error) {
	var h [FrameHeaderSize]byte
	if _, err := io.ReadFull(br, h[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("amt: truncated frame header: %w", io.ErrUnexpectedEOF)
	}
	if binary.LittleEndian.Uint32(h[0:]) != frameMagic {
		return Frame{}, ErrBadMagic
	}
	if h[4] != CodecVersion {
		return Frame{}, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, h[4], CodecVersion)
	}
	plen := binary.LittleEndian.Uint32(h[24:])
	if plen > MaxFramePayload {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, plen)
	}
	f := Frame{
		Flags: h[5],
		Kind:  binary.LittleEndian.Uint16(h[6:]),
		Src:   int(binary.LittleEndian.Uint16(h[8:])),
		Dst:   int(binary.LittleEndian.Uint16(h[10:])),
		Epoch: binary.LittleEndian.Uint32(h[12:]),
		Seq:   binary.LittleEndian.Uint64(h[16:]),
	}
	if plen > 0 {
		payload, err := readPayload(br, int(plen))
		if err != nil {
			return Frame{}, fmt.Errorf("%w: %w", errShortPayload, io.ErrUnexpectedEOF)
		}
		f.Payload = payload
	}
	crc := crc32.NewIEEE()
	crc.Write(h[0:28])
	crc.Write(f.Payload)
	if crc.Sum32() != binary.LittleEndian.Uint32(h[28:]) {
		return Frame{}, ErrBadChecksum
	}
	return f, nil
}

// readPayload reads exactly n payload bytes, growing the buffer in 1 MiB
// chunks as data actually arrives. The header's length field is attacker
// (or corruption) controlled: committing the full MaxFramePayload up front
// would let a 32-byte header pin 256 MiB per connection, so allocation must
// track received bytes, not the advertised length.
func readPayload(br *bufio.Reader, n int) ([]byte, error) {
	const chunk = 1 << 20
	buf := make([]byte, 0, min(n, chunk))
	for len(buf) < n {
		m := min(n-len(buf), chunk)
		start := len(buf)
		buf = append(buf, make([]byte, m)...)
		if _, err := io.ReadFull(br, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}
