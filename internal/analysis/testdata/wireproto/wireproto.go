// Package wireproto exercises the encoder/decoder coverage checker: a
// binary pair with a lost field and an order swap, a clean pair, a
// suppressed legacy field, a both-sides-JSON pair with a duplicate tag,
// and a json-on-one-side mismatch.
package wireproto

import (
	"encoding/binary"
	"encoding/json"
)

func putU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

func u32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }

// Rec is the defective pair's subject: encode writes A B C D (C and D
// through a helper), decode loses B and swaps C and D.
type Rec struct {
	A uint32
	B uint32
	C uint32
	D uint32
}

//dashmm:wire rec encode Rec
func encodeRec(dst []byte, r *Rec) []byte {
	dst = putU32(dst, r.A)
	dst = putU32(dst, r.B) // want "field Rec.B is written by encode encodeRec but never read by decode decodeRec"
	dst = encodeTail(dst, r)
	return dst
}

func encodeTail(dst []byte, r *Rec) []byte {
	dst = putU32(dst, r.C)
	dst = putU32(dst, r.D)
	return dst
}

//dashmm:wire rec decode Rec
func decodeRec(b []byte) Rec {
	var r Rec
	r.A = u32(b[0:])
	r.D = u32(b[4:]) // want "decode decodeRec reads Rec.D out of order"
	r.C = u32(b[8:])
	return r
}

// Pair is the clean control: same fields, same order, no diagnostics.
type Pair struct {
	X uint32
	Y uint32
}

//dashmm:wire pair encode Pair
func encodePair(dst []byte, p *Pair) []byte {
	dst = putU32(dst, p.X)
	dst = putU32(dst, p.Y)
	return dst
}

//dashmm:wire pair decode Pair
func decodePair(b []byte) Pair {
	return Pair{X: u32(b[0:]), Y: u32(b[4:])}
}

// Rec3 carries a legacy pad field the decoder deliberately skips; the
// harness fails this fixture if the suppression does not hold.
type Rec3 struct {
	P      uint32
	Legacy uint32
}

//dashmm:wire rec3 encode Rec3
func encodeRec3(dst []byte, r *Rec3) []byte {
	dst = putU32(dst, r.P)
	//lint:ignore wireproto Legacy is pad bytes kept for wire compatibility; decoders skip the trailing word
	dst = putU32(dst, r.Legacy)
	return dst
}

//dashmm:wire rec3 decode Rec3
func decodeRec3(b []byte) Rec3 {
	return Rec3{P: u32(b[0:])}
}

// JRec is json on both sides: exempt from ordering, but its tags collide.
type JRec struct {
	Name  string `json:"name"`
	Alias string `json:"name"`
}

//dashmm:wire jrec encode JRec
func encodeJRec(r *JRec) []byte { // want "duplicate json key"
	b, _ := json.Marshal(r)
	return b
}

//dashmm:wire jrec decode JRec
func decodeJRec(b []byte) (*JRec, error) {
	var r JRec
	err := json.Unmarshal(b, &r)
	return &r, err
}

// Half is json-marshaled by encode but hand-decoded: the exact shape of a
// silent cross-version corruption.
type Half struct{ V uint32 }

//dashmm:wire half encode Half
func encodeHalf(r *Half) []byte {
	b, _ := json.Marshal(r)
	return b
}

//dashmm:wire half decode Half
func decodeHalf(b []byte) Half { // want "Half is json-encoded by encodeHalf but decoded field-by-field by decodeHalf"
	var r Half
	r.V = u32(b[0:])
	return r
}
