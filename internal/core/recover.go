package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/amt"
	"repro/internal/dag"
	"repro/internal/dist"
	"repro/internal/trace"
)

// Crash recovery (DESIGN.md, "Robustness"): when the failure detector
// declares a locality dead, the DAG itself carries enough dependency
// information to re-derive everything the dead rank took with it — the
// insight of the data-driven FMM literature the paper builds on. The
// coordinator below (1) fails ownership of the dead rank's nodes over to
// the survivors (dist.Failover, deterministic), (2) computes the orphaned
// subgraph — every lost node that had not fully discharged its role, plus
// the upstream closure needed to recompute it — (3) resets those LCOs
// idempotently (payload re-zeroed, inputs re-armed, per-edge applied bits
// cleared so contributions are applied exactly once no matter how often a
// copy arrives), and (4) re-drives the subgraph's frontier: inputs from
// already-triggered surviving nodes are re-applied directly, roots are
// re-seeded, and everything else re-flows through normal data-driven
// execution.

// CrashPlan schedules one injected locality crash.
type CrashPlan struct {
	// Rank to kill.
	Rank int
	// At is the DAG progress fraction (triggered nodes / total nodes) at
	// which the kill fires.
	At float64
}

// RecoveryStats reports the crash-recovery work of one evaluation.
type RecoveryStats struct {
	// RanksKilled counts localities that died (injected or fenced).
	RanksKilled int
	// Recoveries counts detector verdicts handled by the coordinator.
	Recoveries int
	// NodesRebuilt counts DAG nodes whose LCO was reset and re-executed.
	NodesRebuilt int64
	// EdgesReplayed counts frontier inputs re-applied by the coordinator
	// (re-sent contributions from already-triggered surviving nodes).
	EdgesReplayed int64
	// StaleDropped counts deliveries and triggers discarded because their
	// source was rebuilt after they were issued (the exactly-once filter).
	StaleDropped int64
	// RecoveryWall is the total wall time spent inside the coordinator.
	RecoveryWall time.Duration
}

func (r RecoveryStats) String() string {
	return fmt.Sprintf("killed=%d recoveries=%d rebuilt=%d replayed=%d stale=%d wall=%s",
		r.RanksKilled, r.Recoveries, r.NodesRebuilt, r.EdgesReplayed, r.StaleDropped, r.RecoveryWall)
}

// inRef locates one in-edge of a node: source node and the index of the
// edge within the source's Out list.
type inRef struct {
	src int32
	out int32
}

// inflightSlot is one worker's in-flight fast-path delivery counter, padded
// to its own cache line (adjacent counters would false-share on every edge).
type inflightSlot struct {
	n atomic.Int64
	_ [56]byte
}

// recovery is the crash-recovery state of one evaluation context. It is
// allocated only when ExecOptions.Detector is set; a nil recovery leaves
// the PR 1 hot path byte-identical.
type recovery struct {
	ex *executor

	// crashed flips once per run at the first failure verdict and stays
	// set. Until then deliveries take the pre-crash fast path — the target
	// lock only, exactly like the crash-free executor, plus the applied-bit
	// bookkeeping a later recovery depends on. The coordinator drains
	// inflight (one counter per worker) after setting crashed and before
	// touching any node state, so no fast-path apply — which does not hold
	// its source's lock — can overlap a reset that zeroes that source.
	crashed  atomic.Bool
	inflight []inflightSlot

	// mu serializes failure verdicts (one coordinator at a time) and guards
	// the plain-slice bookkeeping below it.
	mu          sync.Mutex
	deadRanks   []bool // guarded by mu
	lostPayload []bool // guarded by mu; node had un-recomputed state on a rank that died
	fatalErr    error  // guarded by mu; set when recovery is impossible (no survivors)

	// epoch increments per recovery; rebuiltAt[id] is the epoch at which a
	// node was last reset. A delivery or trigger carrying an older epoch
	// than its source's rebuild is stale: the payload it saw is gone.
	epoch     atomic.Int64
	rebuiltAt []atomic.Int64

	// homes is the live node→locality assignment. The executor reads it
	// instead of dag.Node.Locality so failover cannot race the hot path.
	homes []atomic.Int32

	// applied[edgeBase[id]+j] records that out-edge j of node id has been
	// reduced into its target — the idempotence bit that makes re-delivery
	// (replay, duplicate, stale race) apply-at-most-once.
	edgeBase []int32
	applied  []atomic.Bool

	// inEdges is the reverse adjacency, for resets and frontier replay.
	inEdges [][]inRef

	// revTopo is the graph's topological order reversed (sinks first), the
	// direction the orphaned-subgraph closure is computed in.
	revTopo []int32

	// triggers counts unique node-incarnation executions — the DAG progress
	// the crash injector and the watchdog sample. firedAt[id] is the rebuild
	// incarnation (rebuiltAt value) whose trigger has already been counted,
	// so a stale pre-rebuild trigger racing the rebuilt node's own re-trigger
	// cannot double-count progress (execution itself is not gated — the
	// applied bits dedupe deliveries, and gating execution could drop the
	// incarnation's only live trigger).
	triggers atomic.Int64
	firedAt  []atomic.Int64

	// Armed crash schedule (see armCrash/maybeKill): plans sorted by At,
	// their thresholds in trigger counts, and the index of the next unfired
	// plan.
	killPlans  []CrashPlan
	killThresh []int64
	killNext   atomic.Int32

	nodesRebuilt  atomic.Int64
	edgesReplayed atomic.Int64
	staleDropped  atomic.Int64
	recoveries    atomic.Int64
	recoveryWall  atomic.Int64 // ns

	stallMu  sync.Mutex
	stallErr error // guarded by stallMu
}

// newRecovery builds the per-context recovery state (graph-shaped arrays,
// reverse adjacency, reverse topological order).
func newRecovery(ex *executor) (*recovery, error) {
	g := ex.g
	n := len(g.Nodes)
	rec := &recovery{
		ex:        ex,
		rebuiltAt: make([]atomic.Int64, n),
		firedAt:   make([]atomic.Int64, n),
		homes:     make([]atomic.Int32, n),
		edgeBase:  make([]int32, n+1),
		inEdges:   make([][]inRef, n),
	}
	var edges int32
	for i := range g.Nodes {
		rec.edgeBase[i] = edges
		edges += int32(len(g.Nodes[i].Out))
	}
	rec.edgeBase[n] = edges
	rec.applied = make([]atomic.Bool, edges)
	for i := range g.Nodes {
		for j, e := range g.Nodes[i].Out {
			rec.inEdges[e.To] = append(rec.inEdges[e.To], inRef{src: int32(i), out: int32(j)})
		}
	}
	topo := g.TopoOrder()
	if len(topo) != n {
		return nil, fmt.Errorf("core: graph is not a DAG")
	}
	rec.revTopo = make([]int32, n)
	for i, id := range topo {
		rec.revTopo[n-1-i] = id
	}
	return rec, nil
}

// resetRun re-arms the recovery state for a fresh evaluation of the same
// context.
func (rec *recovery) resetRun(localities, workers int) {
	g := rec.ex.g
	rec.mu.Lock()
	rec.deadRanks = make([]bool, localities)
	rec.lostPayload = make([]bool, len(g.Nodes))
	rec.fatalErr = nil
	rec.mu.Unlock()
	rec.crashed.Store(false)
	if tw := localities * workers; len(rec.inflight) != tw {
		rec.inflight = make([]inflightSlot, tw)
	} else {
		for i := range rec.inflight {
			rec.inflight[i].n.Store(0)
		}
	}
	rec.epoch.Store(0)
	for i := range rec.rebuiltAt {
		rec.rebuiltAt[i].Store(0)
		rec.firedAt[i].Store(-1)
		rec.homes[i].Store(g.Nodes[i].Locality)
	}
	for i := range rec.applied {
		rec.applied[i].Store(false)
	}
	rec.triggers.Store(0)
	rec.killPlans = nil
	rec.killThresh = rec.killThresh[:0]
	rec.killNext.Store(0)
	rec.nodesRebuilt.Store(0)
	rec.edgesReplayed.Store(0)
	rec.staleDropped.Store(0)
	rec.recoveries.Store(0)
	rec.recoveryWall.Store(0)
	rec.stallMu.Lock()
	rec.stallErr = nil
	rec.stallMu.Unlock()
}

func (rec *recovery) stats() RecoveryStats {
	return RecoveryStats{
		Recoveries:    int(rec.recoveries.Load()),
		NodesRebuilt:  rec.nodesRebuilt.Load(),
		EdgesReplayed: rec.edgesReplayed.Load(),
		StaleDropped:  rec.staleDropped.Load(),
		RecoveryWall:  time.Duration(rec.recoveryWall.Load()),
	}
}

func (rec *recovery) fatal() error {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.fatalErr
}

// allOutApplied reports whether every out-edge of a node has been reduced
// into its target (racy reads; callers tolerate a conservative false).
func (rec *recovery) allOutApplied(id int32) bool {
	base := rec.edgeBase[id]
	for j := base; j < rec.edgeBase[id+1]; j++ {
		if !rec.applied[j].Load() {
			return false
		}
	}
	return true
}

// onRankFailure is the OnFailure handler: it runs on the detector goroutine
// after the dead rank has been fenced (killed and severed), while the crash
// tombstone still holds the run open.
func (rec *recovery) onRankFailure(rank int) {
	start := time.Now()
	ex := rec.ex
	g := ex.g
	rec.mu.Lock()
	defer rec.mu.Unlock()
	defer func() { rec.recoveryWall.Add(int64(time.Since(start))) }()

	// Quiesce the pre-crash fast path: once crashed is set, every new
	// delivery takes the two-lock slow path; draining the in-flight
	// counters then guarantees no fast-path apply — which holds only its
	// target's lock — is still reading a source payload the reset pass
	// below may zero.
	rec.crashed.Store(true)
	for i := range rec.inflight {
		for rec.inflight[i].n.Load() != 0 {
			//lint:ignore lockorder deliberate stop-the-world quiesce: the failure handler spins under rec.mu until in-flight appliers drain, and appliers never take rec.mu, so the wait cannot deadlock
			time.Sleep(10 * time.Microsecond)
		}
	}

	rec.deadRanks[rank] = true
	var survivors []int32
	for r, dead := range rec.deadRanks {
		if !dead {
			survivors = append(survivors, int32(r))
		}
	}
	if len(survivors) == 0 {
		rec.fatalErr = fmt.Errorf("core: all %d localities dead, recovery impossible", len(rec.deadRanks))
		ex.rt.Abort()
		return
	}
	ep := rec.epoch.Add(1)

	// Anything whose live state sat on the dead rank is lost. The flag
	// persists across recoveries: a lost-but-finished node may still be
	// pulled into a later rebuild set when a future crash orphans one of
	// its dependents, and only an actual rebuild (recompute on a survivor)
	// clears it.
	for i := range g.Nodes {
		if rec.homes[i].Load() == int32(rank) {
			rec.lostPayload[i] = true
		}
	}

	// Orphaned-subgraph closure, sinks first: a lost node is rebuilt if it
	// has not fully discharged its role — it never triggered, some out-edge
	// was never applied, or a dependent being rebuilt needs its payload
	// re-sent. (Racy counter/bit reads only over-approximate the set, which
	// is safe: a rebuild too many is recomputation, never corruption.)
	inSet := make([]bool, len(g.Nodes))
	var setIDs []int32
	for _, id := range rec.revTopo {
		if !rec.lostPayload[id] {
			continue
		}
		need := ex.remaining[id].Load() != 0 || !rec.allOutApplied(id)
		if !need {
			for _, e := range g.Nodes[id].Out {
				if inSet[e.To] {
					need = true
					break
				}
			}
		}
		if need {
			inSet[id] = true
			setIDs = append(setIDs, id)
		}
	}

	// Ownership failover: deterministic round-robin of the dead rank's
	// nodes over the sorted survivors, stored back into the atomic homes
	// the executor reads. Every re-execution of the same failure scenario
	// picks identical new owners.
	plain := make([]int32, len(g.Nodes))
	for i := range plain {
		plain[i] = rec.homes[i].Load()
	}
	dist.Failover(plain, int32(rank), survivors)
	for i := range plain {
		rec.homes[i].Store(plain[i])
	}
	if tr := ex.tracer; tr.Enabled() {
		now := tr.Now()
		tr.RecordVirtual(trace.Event{Class: trace.ClassRecoveryFailover, Locality: int32(rank), Start: now, End: now})
	}

	// Reset each orphaned LCO under its lock: stamp the rebuild epoch
	// (stale-dropping every in-flight delivery and trigger that saw the old
	// payload), zero the payload, clear the in-edge applied bits, re-arm
	// the input count. Holding the target's lock excludes concurrent
	// deliveries into it (they take both endpoint locks).
	for _, id := range setIDs {
		n := &g.Nodes[id]
		ex.locks[id].Lock()
		rec.rebuiltAt[id].Store(ep)
		ex.st.zeroNode(n)
		for _, ref := range rec.inEdges[id] {
			rec.applied[rec.edgeBase[ref.src]+ref.out].Store(false)
		}
		ex.remaining[id].Store(n.In)
		rec.lostPayload[id] = false
		ex.locks[id].Unlock()
	}
	rec.nodesRebuilt.Add(int64(len(setIDs)))

	// Frontier replay: an in-edge of a rebuilt node whose source survives
	// and has already triggered will never be re-sent naturally — re-apply
	// it here (the applied bit dedupes against any racing copy). Sources
	// inside the set re-trigger and re-send on their own; untriggered
	// sources deliver in due course. Rebuilt roots are re-seeded.
	replayed := int64(0)
	for _, id := range setIDs {
		for _, ref := range rec.inEdges[id] {
			if inSet[ref.src] || ex.remaining[ref.src].Load() != 0 {
				continue
			}
			src, out := ref.src, ref.out
			home := ex.rt.Locality(int(rec.homes[id].Load()))
			replayed++
			home.Spawn(func(w *amt.Worker) {
				from := &ex.g.Nodes[src]
				ex.deliverRecov(w, from, rec.edgeBase[src]+out, from.Out[out], ep)
			})
		}
		if g.Nodes[id].In == 0 {
			home := ex.rt.Locality(int(rec.homes[id].Load()))
			if ex.isHigh(id) {
				home.SpawnHigh(ex.tasks[id])
			} else {
				home.Spawn(ex.tasks[id])
			}
		}
	}
	// Batch demotion: the crash retires the batch pending counters (see
	// runNodeRecov) and may have lost in-flight batch tasks with the dead
	// rank, so any batched edge of an already-complete source that no batch
	// applied would otherwise never be delivered — its source will not
	// re-trigger, and post-crash triggers only carry their own edges. Scan
	// every enabled batch's members and replay the unapplied ones whose
	// source is complete; sources being rebuilt (or still accumulating)
	// re-send inline when they re-trigger, and the applied bits dedupe
	// against any batch task that raced the verdict.
	if ex.m2lOn || ex.p2pOn {
		demote := func(edges []dag.BatchEdge) {
			for _, be := range edges {
				gidx := rec.edgeBase[be.From] + be.Out
				if rec.applied[gidx].Load() || inSet[be.From] {
					continue
				}
				if g.Nodes[be.From].In > 0 && ex.remaining[be.From].Load() != 0 {
					continue
				}
				src, out := be.From, be.Out
				home := ex.rt.Locality(int(rec.homes[be.To].Load()))
				replayed++
				home.Spawn(func(w *amt.Worker) {
					from := &ex.g.Nodes[src]
					ex.deliverRecov(w, from, rec.edgeBase[src]+out, from.Out[out], ep)
				})
			}
		}
		if ex.m2lOn {
			for i := range ex.batches.M2L {
				demote(ex.batches.M2L[i].Edges)
			}
		}
		if ex.p2pOn {
			for i := range ex.batches.P2P {
				demote(ex.batches.P2P[i].Edges)
			}
		}
	}
	rec.edgesReplayed.Add(replayed)
	rec.recoveries.Add(1)
	if tr := ex.tracer; tr.Enabled() {
		now := tr.Now()
		tr.RecordVirtual(trace.Event{Class: trace.ClassRecoveryReplay, Locality: int32(rank), Start: now, End: now})
	}
}

// armCrash schedules the planned kills for the coming run. Plans fire
// synchronously from the trigger path (maybeKill) the moment DAG progress
// crosses each threshold — not from a polling goroutine, which could be
// starved past run completion and land its Kill on a finished runtime where
// no detector verdict (and hence no recovery) can ever fire. Firing inside
// a trigger also pins the exact progress fraction: the crash lands at the
// planned trigger count, deterministically, while the firing task's own
// pending unit keeps the run live until Kill's tombstone is in place.
func (rec *recovery) armCrash(plans []CrashPlan, totalNodes int) {
	sorted := append([]CrashPlan(nil), plans...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	rec.killPlans = sorted
	rec.killThresh = rec.killThresh[:0]
	for _, p := range sorted {
		rec.killThresh = append(rec.killThresh, int64(p.At*float64(totalNodes)))
	}
	rec.killNext.Store(0)
}

// maybeKill fires every armed crash plan whose threshold the given progress
// count has reached. The CAS on killNext makes each plan fire exactly once
// even when triggers race past a threshold on several workers at once.
func (rec *recovery) maybeKill(progress int64) {
	for {
		i := rec.killNext.Load()
		if int(i) >= len(rec.killThresh) || progress < rec.killThresh[i] {
			return
		}
		if rec.killNext.CompareAndSwap(i, i+1) {
			rec.ex.rt.Kill(rec.killPlans[i].Rank)
		}
	}
}

// runWatchdog samples execution progress and, if no task runs for a full
// window, diagnoses the stall — listing every unsatisfied LCO with its
// owner rank and arrived/needed counts — and aborts the run instead of
// hanging. The returned stop function joins the goroutine.
func (ex *executor) runWatchdog(rt *amt.Runtime, window time.Duration) func() {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		last := rt.TasksExecuted()
		lastChange := time.Now()
		tick := time.NewTicker(window / 4)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				cur := rt.TasksExecuted()
				if cur != last {
					last = cur
					lastChange = time.Now()
					continue
				}
				if time.Since(lastChange) < window {
					continue
				}
				err := ex.diagnoseStall(window)
				if ex.rec != nil {
					ex.rec.stallMu.Lock()
					ex.rec.stallErr = err
					ex.rec.stallMu.Unlock()
				} else {
					ex.stallMu.Lock()
					ex.stallErr = err
					ex.stallMu.Unlock()
				}
				rt.Abort()
				return
			}
		}
	}()
	return func() {
		close(stop)
		<-done
	}
}

// diagnoseStall renders the unsatisfied-LCO listing of a stalled run.
func (ex *executor) diagnoseStall(window time.Duration) error {
	const maxListed = 16
	var sb strings.Builder
	stuck := 0
	for i := range ex.remaining {
		rem := ex.remaining[i].Load()
		if rem <= 0 {
			continue
		}
		stuck++
		if stuck > maxListed {
			continue
		}
		n := &ex.g.Nodes[i]
		owner := n.Locality
		if ex.rec != nil {
			owner = ex.rec.homes[i].Load()
		}
		fmt.Fprintf(&sb, "\n  node %d (%v) on rank %d: %d/%d inputs arrived",
			i, n.Kind, owner, n.In-rem, n.In)
	}
	if stuck > maxListed {
		fmt.Fprintf(&sb, "\n  ... and %d more", stuck-maxListed)
	}
	return fmt.Errorf("core: evaluation stalled (no task ran for %s); %d unsatisfied LCOs:%s",
		window, stuck, sb.String())
}

// stallError returns the watchdog's diagnosis, if any.
func (ex *executor) stallError() error {
	if ex.rec != nil {
		ex.rec.stallMu.Lock()
		defer ex.rec.stallMu.Unlock()
		return ex.rec.stallErr
	}
	ex.stallMu.Lock()
	defer ex.stallMu.Unlock()
	return ex.stallErr
}

// runNodeRecov is the recovery-mode node continuation: the hot-path
// semantics of runNode plus the bookkeeping that makes re-execution safe —
// a staleness guard against triggers outliving a rebuild, an epoch snapshot
// pinned to every delivery this trigger issues, and ownership reads from
// the live homes table instead of the static placement.
func (ex *executor) runNodeRecov(w *amt.Worker, id int32) {
	rec := ex.rec
	if ex.remaining[id].Load() != 0 {
		// The node was reset after this trigger was spawned: its payload is
		// no longer the one that fired. The rebuilt incarnation re-triggers.
		rec.staleDropped.Add(1)
		return
	}
	ep := rec.epoch.Load()
	// Count DAG progress once per node incarnation: a stale pre-rebuild
	// trigger that slipped past the staleness check above (the rebuilt node
	// has already re-satisfied) must not advance the injector's progress
	// fraction a second time. It still executes — applied bits make the
	// duplicate deliveries no-ops.
	inc := rec.rebuiltAt[id].Load()
	for {
		prev := rec.firedAt[id].Load()
		if prev >= inc {
			break
		}
		if rec.firedAt[id].CompareAndSwap(prev, inc) {
			rec.maybeKill(rec.triggers.Add(1))
			break
		}
	}
	n := &ex.g.Nodes[id]
	myLoc := int32(w.Rank())
	base := rec.edgeBase[id]
	var batch *remoteBatch
	for j, e := range n.Out {
		// Pre-crash, batched edges ride their batch task (the counter
		// decrement below fires it). After a crash verdict the batch
		// counters are abandoned — deliver inline; the applied bits dedupe
		// against any batch task that did fire.
		if e.Batched && ex.batchEdgeOn(e.Op) && !rec.crashed.Load() {
			continue
		}
		dest := rec.homes[e.To].Load()
		if dest == myLoc {
			ex.deliverRecov(w, n, base+int32(j), e, ep)
			continue
		}
		if batch == nil {
			batch = remoteBatchPool.Get().(*remoteBatch)
		}
		batch.addIdx(dest, e, base+int32(j))
	}
	if batch != nil {
		for i, dest := range batch.dests {
			pe := batch.lists[i]
			bytes := int(n.Bytes) + parcelOverhead*len(pe.edges)
			w.SendParcel(int(dest), bytes, func(w2 *amt.Worker) {
				for k, e := range pe.edges {
					ex.deliverRecov(w2, n, pe.idx[k], e, ep)
				}
				pe.edges = pe.edges[:0]
				pe.idx = pe.idx[:0]
				parcelEdgesPool.Put(pe)
			})
		}
		batch.release()
	}
	// A node whose batched edges were skipped above must still count
	// against its batches — but only pre-crash: once crashed is set, the
	// counters are dead (a skipped edge here and a skipped decrement there
	// would deadlock a batch) and the demotion scan in onRankFailure plus
	// the inline path above carry every batched edge. If the verdict lands
	// between the loop and this check, the skipped edges are unapplied
	// edges of a complete source — exactly what the demotion scan replays.
	if !rec.crashed.Load() {
		ex.noteBatchSources(w, id)
	}
}

// deliverRecov applies one edge with exactly-once semantics under crash
// recovery. Both endpoint locks are taken (ordered by node ID) so the
// source payload cannot be zeroed mid-read and the target's applied bit,
// payload reduction and input count move as one unit against a concurrent
// reset. A delivery whose source was rebuilt after the carried epoch is
// stale — the payload it was computed from no longer exists — and is
// dropped; the rebuilt source re-sends.
//
//dashmm:noalloc
func (ex *executor) deliverRecov(w *amt.Worker, from *dag.Node, gidx int32, e dag.Edge, ep int64) {
	rec := ex.rec
	if !rec.crashed.Load() {
		// Pre-crash fast path, guarded by this worker's in-flight counter:
		// re-checking crashed after the increment closes the race with a
		// concurrent verdict — either the coordinator's store is visible
		// here (fall through to the slow path) or the increment is visible
		// to the coordinator's quiescence drain, which then waits the apply
		// out before resetting anything.
		slot := &rec.inflight[w.GlobalID].n
		slot.Add(1)
		if !rec.crashed.Load() {
			ex.deliverRecovFast(w, from, gidx, e)
			slot.Add(-1)
			return
		}
		slot.Add(-1)
	}
	var t0 int64
	if ex.tracer.Enabled() {
		t0 = ex.tracer.Now()
	}
	a, b := from.ID, e.To
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	ex.locks[lo].Lock()
	//lint:ignore lockorder two-lock protocol acquires in global index order (lo < hi after the swap above); the type-granular lock graph cannot see the ordering
	ex.locks[hi].Lock()
	if rec.rebuiltAt[a].Load() > ep {
		ex.locks[hi].Unlock()
		ex.locks[lo].Unlock()
		rec.staleDropped.Add(1)
		return
	}
	// The payload is not carried by the delivery — st.apply reads the
	// source's live buffers — so the epoch alone cannot prove validity: a
	// trigger that slipped in between the coordinator's epoch bump and its
	// reset pass snapshots the new epoch yet may deliver after its source
	// was zeroed. What an apply actually requires is that the source is
	// complete *right now*, under its lock: all inputs reduced (roots are
	// always complete — their payload is the static input). If the source
	// is mid-(re)accumulation this copy is stale; its re-trigger re-sends.
	if from.In > 0 && ex.remaining[a].Load() != 0 {
		ex.locks[hi].Unlock()
		ex.locks[lo].Unlock()
		rec.staleDropped.Add(1)
		return
	}
	if rec.applied[gidx].Load() {
		ex.locks[hi].Unlock()
		ex.locks[lo].Unlock()
		return
	}
	ex.st.apply(from, e)
	rec.applied[gidx].Store(true)
	rem := ex.remaining[b].Add(-1)
	ex.locks[hi].Unlock()
	ex.locks[lo].Unlock()
	if ex.tracer.Enabled() {
		ex.tracer.Record(w.GlobalID, trace.Event{
			Class:    uint8(e.Op),
			Worker:   int32(w.GlobalID),
			Locality: int32(w.Rank()),
			Start:    t0,
			End:      ex.tracer.Now(),
		})
	}
	if rem == 0 {
		home := rec.homes[b].Load()
		high := ex.isHigh(b)
		switch {
		case int32(w.Rank()) == home && high:
			w.SpawnHigh(ex.tasks[b])
		case int32(w.Rank()) == home:
			w.Spawn(ex.tasks[b])
		case high:
			ex.rt.Locality(int(home)).SpawnHigh(ex.tasks[b])
		default:
			ex.rt.Locality(int(home)).Spawn(ex.tasks[b])
		}
	}
}

// deliverRecovFast applies one edge before any failure has been declared:
// no node has ever been reset, a triggered source is complete and stays
// complete (the quiescence guard in deliverRecov keeps the first reset from
// overlapping this call), so the single target lock of the crash-free path
// suffices. Only the applied bit is recorded on top — the orphaned-closure
// computation and replay dedupe of a later crash depend on it.
//
//dashmm:noalloc
func (ex *executor) deliverRecovFast(w *amt.Worker, from *dag.Node, gidx int32, e dag.Edge) {
	rec := ex.rec
	var t0 int64
	if ex.tracer.Enabled() {
		t0 = ex.tracer.Now()
	}
	b := e.To
	ex.locks[b].Lock()
	if rec.applied[gidx].Load() {
		ex.locks[b].Unlock()
		return
	}
	ex.st.apply(from, e)
	rec.applied[gidx].Store(true)
	rem := ex.remaining[b].Add(-1)
	ex.locks[b].Unlock()
	if ex.tracer.Enabled() {
		ex.tracer.Record(w.GlobalID, trace.Event{
			Class:    uint8(e.Op),
			Worker:   int32(w.GlobalID),
			Locality: int32(w.Rank()),
			Start:    t0,
			End:      ex.tracer.Now(),
		})
	}
	if rem == 0 {
		home := rec.homes[b].Load()
		high := ex.isHigh(b)
		switch {
		case int32(w.Rank()) == home && high:
			w.SpawnHigh(ex.tasks[b])
		case int32(w.Rank()) == home:
			w.Spawn(ex.tasks[b])
		case high:
			ex.rt.Locality(int(home)).SpawnHigh(ex.tasks[b])
		default:
			ex.rt.Locality(int(home)).Spawn(ex.tasks[b])
		}
	}
}
