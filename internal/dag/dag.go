// Package dag builds the explicit DAG of an HMM evaluation (paper, Section
// IV): nodes are the expansions (and the source/target point bundles), edges
// are the operator applications that move influence from the source ensemble
// through the approximations to the targets. The explicit DAG is consumed by
// the distribution policy, by the LCO-based executor, by the discrete-event
// simulator, and by the census benchmarks reproducing Tables I and II.
package dag

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/tree"
)

// NodeKind enumerates the six DAG node classes of Table I. The subscripts on
// the two intermediate classes indicate the tree the node is associated
// with: Is lives with a source box, It with a target box.
type NodeKind uint8

// Node classes.
const (
	NodeS  NodeKind = iota // source point bundle of a source leaf
	NodeM                  // multipole expansion of a source box
	NodeIs                 // outgoing (source-side) plane-wave expansions
	NodeIt                 // incoming (target-side) plane-wave expansions
	NodeL                  // local expansion of a target box
	NodeT                  // target point bundle of a target leaf
	NumNodeKinds
)

var nodeKindNames = [NumNodeKinds]string{"S", "M", "Is", "It", "L", "T"}

func (k NodeKind) String() string {
	if int(k) < len(nodeKindNames) {
		return nodeKindNames[k]
	}
	return fmt.Sprintf("NodeKind(%d)", int(k))
}

// OpKind enumerates the eleven FMM operators (the eight basic operators of
// Fig. 1c plus the three merge-and-shift operators).
type OpKind uint8

// Operator classes.
const (
	OpS2M OpKind = iota
	OpM2M
	OpM2L
	OpL2L
	OpL2T
	OpM2T
	OpS2L
	OpS2T
	OpM2I
	OpI2I
	OpI2L
	NumOpKinds
)

var opKindNames = [NumOpKinds]string{
	"S→M", "M→M", "M→L", "L→L", "L→T", "M→T", "S→L", "S→T", "M→I", "I→I", "I→L",
}

func (o OpKind) String() string {
	if int(o) < len(opKindNames) {
		return opKindNames[o]
	}
	return fmt.Sprintf("OpKind(%d)", int(o))
}

// Edge is one dependence of the DAG: when the owning node triggers, Op is
// applied to its payload and the result is delivered to node To.
type Edge struct {
	To int32
	Op OpKind
	// Dir is the plane-wave direction of an I->I transfer edge (-1
	// otherwise).
	Dir int8
	// DirMask is the set of directions carried by M->I edges, merge I->I
	// edges and distribution I->I edges (bit d set = direction d).
	DirMask uint8
	// FromMerged marks an I->I edge reading the sender's merged/shared
	// child-level waves rather than its own-level waves.
	FromMerged bool
	// ToMerged marks an I->I edge writing into the receiver's
	// merged/shared child-level waves rather than its own-level
	// accumulation.
	ToMerged bool
	// Batched marks an edge owned by a batch descriptor (see BuildBatches):
	// a batch-aware executor skips it on the per-edge path and applies it
	// through the batch instead. Off-lattice M->L edges stay unbatched.
	Batched bool
	// Bytes is the payload size transferred along the edge, for the network
	// model and the Table II census.
	Bytes int32
}

// Node is one vertex of the explicit DAG.
type Node struct {
	ID   int32
	Kind NodeKind
	// Box is the tree box the node belongs to (source tree for S, M, Is;
	// target tree for It, L, T).
	Box *tree.Box
	// In is the number of inputs that must arrive before the node
	// triggers.
	In int32
	// Out lists the dependents.
	Out []Edge
	// Bytes is the size of the node's payload, for Table I.
	Bytes int32
	// Locality is assigned by the distribution policy before execution.
	Locality int32
	// OwnMask is the set of directions this node carries at its own level:
	// for Is, the outgoing waves it computes from its multipole; for It,
	// the incoming waves it accumulates for its own local expansion.
	OwnMask uint8
	// MergedMask is the set of directions of the node's child-level waves:
	// for Is, the merged outgoing waves of its children; for It, the
	// shared incoming waves it receives once on behalf of all its children
	// and then distributes (the two halves of merge-and-shift).
	MergedMask uint8
}

// Level returns the tree level of the node's box.
func (n *Node) Level() int { return n.Box.Level() }

// Method selects the HMM variant the DAG encodes; DASHMM is generic over
// this choice (paper, Section I).
type Method uint8

// Methods.
const (
	// Advanced is the merge-and-shift FMM evaluated in the paper: list 2 is
	// carried by directional plane-wave expansions through M->I, I->I, I->L.
	Advanced Method = iota
	// Basic is the eight-operator FMM of Fig. 1c: list 2 is M->L.
	Basic
	// BarnesHut uses only multipole expansions and a multipole-acceptance
	// criterion; no local expansions.
	BarnesHut
)

func (m Method) String() string {
	switch m {
	case Advanced:
		return "fmm-advanced"
	case Basic:
		return "fmm-basic"
	case BarnesHut:
		return "barnes-hut"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Config controls DAG construction.
type Config struct {
	Method Method
	// Theta is the Barnes–Hut opening angle (ignored by the FMM methods).
	// Zero means the default 0.5.
	Theta float64
}

// Graph is the explicit DAG plus the lookup tables connecting it back to
// the dual tree.
type Graph struct {
	Method Method
	Source *tree.Tree
	Target *tree.Tree
	Kernel kernel.Kernel
	Nodes  []Node

	// Per-box node ids, indexed by Box.Seq; -1 where the node does not
	// exist.
	SOf, MOf, IsOf []int32 // source tree
	ItOf, LOf, TOf []int32 // target tree

	// EdgeCount tallies edges per operator.
	EdgeCount [NumOpKinds]int64
}

// node returns a pointer to node id.
func (g *Graph) node(id int32) *Node { return &g.Nodes[id] }

// addNode appends a node and returns its id.
func (g *Graph) addNode(kind NodeKind, box *tree.Box, bytes int) int32 {
	id := int32(len(g.Nodes))
	g.Nodes = append(g.Nodes, Node{ID: id, Kind: kind, Box: box, Bytes: int32(bytes), Locality: -1})
	return id
}

// addEdge links from -> to and bumps the receiver's input count.
func (g *Graph) addEdge(from int32, e Edge) {
	n := g.node(from)
	n.Out = append(n.Out, e)
	g.node(e.To).In++
	g.EdgeCount[e.Op]++
}

// NumEdges returns the total edge count.
func (g *Graph) NumEdges() int64 {
	var n int64
	for _, c := range g.EdgeCount {
		n += c
	}
	return n
}

// Roots returns the ids of nodes with no inputs (the initially runnable
// tasks: S nodes, plus any expansion with no dependence).
func (g *Graph) Roots() []int32 {
	var r []int32
	for i := range g.Nodes {
		if g.Nodes[i].In == 0 {
			r = append(r, g.Nodes[i].ID)
		}
	}
	return r
}
