package serve

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"

	"repro/internal/amt"
)

// Metrics is the server's expvar-style counter set, exposed as JSON at
// /metrics. Counters are monotonically increasing atomics; gauges
// (queue depth, in-flight evaluations) are sampled at render time.
type Metrics struct {
	Requests   atomic.Int64 // evaluation requests received
	OK         atomic.Int64 // 200 responses
	BadRequest atomic.Int64 // 400 responses
	Shed       atomic.Int64 // 429 responses (queue full)
	Deadline   atomic.Int64 // 503 responses (deadline expired while queued)
	Failed     atomic.Int64 // 500 responses (evaluation errors)

	CacheHits    atomic.Int64 // plan served from the cache
	CacheMisses  atomic.Int64 // plan built for the request
	CacheEvicted atomic.Int64 // plans dropped by the LRU
	Coalesced    atomic.Int64 // requests piggybacked on an identical in-flight one

	// Persistent plan-store counters (all zero when serving without -store).
	StoreRecovered atomic.Int64 // plans recovered from the store at startup
	StoreHits      atomic.Int64 // requests served from a store-recovered plan
	StoreWrites    atomic.Int64 // plan records spilled to the store
	StoreBytes     atomic.Int64 // bytes written to the store
	StoreCorrupt   atomic.Int64 // corrupt/truncated store records skipped
	StoreFailed    atomic.Int64 // store writes that errored (disk trouble)

	RuntimeReuses atomic.Int64 // evaluations on a pooled runtime generation
	Traces        atomic.Int64 // per-request trace captures

	DistRequests atomic.Int64 // evaluations attempted over the worker pool
	DistOK       atomic.Int64 // evaluations completed over the worker pool
	DistFailed   atomic.Int64 // pool attempts that failed or were refused
	DegradedOK   atomic.Int64 // eligible requests served in-process instead

	// Cumulative parcel-transport counters across evaluations, so wire
	// health (encode/decode volume, retransmissions, socket reconnects,
	// rejected handshakes) is visible at /metrics without scraping logs.
	WireMessages     atomic.Int64
	WireBytesOut     atomic.Int64
	WireBytesIn      atomic.Int64
	WireReconnects   atomic.Int64
	WireHandshakes   atomic.Int64 // failed handshakes
	WireRetried      atomic.Int64
	WireDeadlineLost atomic.Int64 // parcels abandoned at the delivery deadline
	WireStaleFenced  atomic.Int64 // frames dropped by the generation fence

	queued   atomic.Int64 // requests waiting for an evaluation slot (gauge)
	inflight atomic.Int64 // evaluations currently running (gauge)

	// Per-phase latency histograms.
	QueueWait Histogram
	PlanBuild Histogram
	Evaluate  Histogram
	Total     Histogram
}

// observeTransport folds one evaluation's transport counters into the
// cumulative wire metrics.
func (m *Metrics) observeTransport(ts amt.TransportStats) {
	m.WireMessages.Add(ts.WireMessages)
	m.WireBytesOut.Add(ts.BytesOut)
	m.WireBytesIn.Add(ts.BytesIn)
	m.WireReconnects.Add(ts.Reconnects)
	m.WireHandshakes.Add(ts.HandshakeFailures)
	m.WireRetried.Add(ts.Retried)
	m.WireDeadlineLost.Add(ts.DeadlineExceeded)
	m.WireStaleFenced.Add(ts.StaleFenced)
}

// histBuckets is the number of power-of-two latency buckets; bucket 0
// covers everything at or below 1µs and bucket i > 0 covers (2^(i-1), 2^i]
// microseconds, so a duration of exactly 2^i µs lands in the bucket whose
// "us<=2^i" label names it and the quantile upper bounds are tight at
// boundary values. The last bucket is open-ended (> ~35min).
const histBuckets = 32

// Histogram is a lock-free log2-bucketed latency histogram in microseconds.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumUS   atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	b := 0
	if us > 1 {
		// bits.Len64(us-1) is ceil(log2(us)): exact powers of two stay in
		// their own bucket instead of rounding one bucket up.
		b = bits.Len64(uint64(us - 1))
		if b >= histBuckets {
			b = histBuckets - 1
		}
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
}

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	SumUS int64 `json:"sum_us"`
	// MeanUS and the quantiles are derived from the buckets; quantiles are
	// upper bucket bounds, i.e. conservative estimates.
	MeanUS float64          `json:"mean_us"`
	P50US  int64            `json:"p50_us"`
	P90US  int64            `json:"p90_us"`
	P99US  int64            `json:"p99_us"`
	MaxUS  int64            `json:"max_us_bucket"`
	Bucket map[string]int64 `json:"buckets,omitempty"` // "us<=N" -> count
}

// Snapshot renders the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{Count: h.count.Load(), SumUS: h.sumUS.Load()}
	if s.Count > 0 {
		s.MeanUS = float64(s.SumUS) / float64(s.Count)
	}
	if total == 0 {
		return s
	}
	bound := func(i int) int64 {
		if i >= 63 {
			return math.MaxInt64
		}
		return 1 << uint(i) // inclusive upper bound of bucket i (see Observe)
	}
	quantile := func(q float64) int64 {
		target := int64(math.Ceil(q * float64(total)))
		var cum int64
		for i := 0; i < histBuckets; i++ {
			cum += counts[i]
			if cum >= target {
				return bound(i)
			}
		}
		return bound(histBuckets)
	}
	s.P50US = quantile(0.50)
	s.P90US = quantile(0.90)
	s.P99US = quantile(0.99)
	s.Bucket = map[string]int64{}
	for i := 0; i < histBuckets; i++ {
		if counts[i] == 0 {
			continue
		}
		s.Bucket[bucketLabel(i)] = counts[i]
		s.MaxUS = bound(i)
	}
	return s
}

func bucketLabel(i int) string {
	if i == 0 {
		return "us<=1"
	}
	return "us<=" + itoa(1<<uint(i))
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// MetricsSnapshot is the JSON body of /metrics.
type MetricsSnapshot struct {
	Requests   int64 `json:"requests"`
	OK         int64 `json:"ok"`
	BadRequest int64 `json:"bad_request"`
	Shed       int64 `json:"shed"`
	Deadline   int64 `json:"deadline"`
	Failed     int64 `json:"failed"`

	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheEvicted int64 `json:"cache_evicted"`
	CachedPlans  int64 `json:"cached_plans"`
	Coalesced    int64 `json:"coalesced"`

	StoreRecovered int64 `json:"store_recovered"`
	StoreHits      int64 `json:"store_hits"`
	StoreWrites    int64 `json:"store_writes"`
	StoreBytes     int64 `json:"store_bytes"`
	StoreCorrupt   int64 `json:"store_corrupt"`
	StoreFailed    int64 `json:"store_write_failed"`

	RuntimeReuses int64 `json:"runtime_reuses"`
	Traces        int64 `json:"traces"`

	DistRequests int64 `json:"dist_requests"`
	DistOK       int64 `json:"dist_ok"`
	DistFailed   int64 `json:"dist_failed"`
	DegradedOK   int64 `json:"degraded"`

	WireMessages     int64 `json:"wire_messages"`
	WireBytesOut     int64 `json:"wire_bytes_out"`
	WireBytesIn      int64 `json:"wire_bytes_in"`
	WireReconnects   int64 `json:"wire_reconnects"`
	WireHandshakes   int64 `json:"wire_handshake_failures"`
	WireRetried      int64 `json:"wire_retried"`
	WireDeadlineLost int64 `json:"wire_deadline_exceeded"`
	WireStaleFenced  int64 `json:"wire_stale_fenced"`

	QueueDepth int64 `json:"queue_depth"`
	Inflight   int64 `json:"inflight"`

	QueueWait HistogramSnapshot `json:"queue_wait"`
	PlanBuild HistogramSnapshot `json:"plan_build"`
	Evaluate  HistogramSnapshot `json:"evaluate"`
	Total     HistogramSnapshot `json:"total"`

	// Dist is the worker-rank pool's health (nil when serving without one):
	// per-rank supervision state, restart counts, breaker state, generation.
	Dist *PoolSnapshot `json:"dist,omitempty"`
}

func (m *Metrics) snapshot(cachedPlans int, dist *PoolSnapshot) MetricsSnapshot {
	return MetricsSnapshot{
		Requests:      m.Requests.Load(),
		OK:            m.OK.Load(),
		BadRequest:    m.BadRequest.Load(),
		Shed:          m.Shed.Load(),
		Deadline:      m.Deadline.Load(),
		Failed:        m.Failed.Load(),
		CacheHits:     m.CacheHits.Load(),
		CacheMisses:   m.CacheMisses.Load(),
		CacheEvicted:  m.CacheEvicted.Load(),
		CachedPlans:   int64(cachedPlans),
		Coalesced:     m.Coalesced.Load(),
		RuntimeReuses: m.RuntimeReuses.Load(),
		Traces:        m.Traces.Load(),

		StoreRecovered: m.StoreRecovered.Load(),
		StoreHits:      m.StoreHits.Load(),
		StoreWrites:    m.StoreWrites.Load(),
		StoreBytes:     m.StoreBytes.Load(),
		StoreCorrupt:   m.StoreCorrupt.Load(),
		StoreFailed:    m.StoreFailed.Load(),

		DistRequests: m.DistRequests.Load(),
		DistOK:       m.DistOK.Load(),
		DistFailed:   m.DistFailed.Load(),
		DegradedOK:   m.DegradedOK.Load(),

		WireMessages:     m.WireMessages.Load(),
		WireBytesOut:     m.WireBytesOut.Load(),
		WireBytesIn:      m.WireBytesIn.Load(),
		WireReconnects:   m.WireReconnects.Load(),
		WireHandshakes:   m.WireHandshakes.Load(),
		WireRetried:      m.WireRetried.Load(),
		WireDeadlineLost: m.WireDeadlineLost.Load(),
		WireStaleFenced:  m.WireStaleFenced.Load(),
		QueueDepth:       m.queued.Load(),
		Inflight:         m.inflight.Load(),
		QueueWait:        m.QueueWait.Snapshot(),
		PlanBuild:        m.PlanBuild.Snapshot(),
		Evaluate:         m.Evaluate.Snapshot(),
		Total:            m.Total.Snapshot(),
		Dist:             dist,
	}
}
