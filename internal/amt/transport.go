package amt

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// The parcel wire. HPX-5 assumes a reliable network (Photon/MPI underneath);
// this runtime makes that assumption explicit and pluggable: parcels between
// localities travel over a Transport, and an unreliable Transport is wrapped
// by the delivery layer (delivery.go) that restores at-least-once wire
// delivery with exactly-once effect at the receiver. DESIGN.md ("Robustness")
// records the deviation from the paper's reliable-network model.

// Message is one wire-level transmission between localities: either a data
// parcel (carrying the coalesced-edge action) or an ack flowing back to the
// sender. Deliver runs when the message "arrives"; a Transport may invoke it
// zero times (drop), once, or several times (duplication), possibly delayed
// and out of order with respect to other messages.
//
// In-process transports carry the action as the Deliver closure and Bytes is
// a modeled payload size. A multi-process transport (SocketTransport) cannot
// ship a closure: such messages instead carry a typed, encoded Payload plus
// its Kind tag (see codec.go), and the receiving process reconstructs the
// action through the runtime's registered wire handler.
type Message struct {
	Src, Dst int
	Bytes    int
	Seq      uint64
	Ack      bool
	Deliver  func()
	// Kind tags the encoded payload type for wire transports; Payload is the
	// encoded bytes. Both are nil/zero for in-process closure delivery.
	Kind    uint16
	Epoch   uint32
	Payload []byte
}

// WireStats counts what a Transport did to the messages it carried: the
// injected or genuine faults (dropped, duplicated, delayed) plus the carried
// traffic itself. In-process transports report modeled byte counts (the
// Message.Bytes field); socket transports report real encoded frame bytes,
// so amt.Stats/ExecReport byte totals stay meaningful on both wires.
type WireStats struct {
	Dropped    int64
	Duplicated int64
	Delayed    int64
	// Messages counts messages handed to the wire (data + acks, before
	// faults). BytesOut is the total outbound payload volume: modeled bytes
	// for in-process transports, encoded frame bytes for socket transports.
	// BytesIn counts received frame bytes (zero for in-process transports,
	// whose deliveries never cross an encode/decode boundary).
	Messages int64
	BytesOut int64
	BytesIn  int64
	// Reconnects counts re-established peer connections and
	// HandshakeFailures rejected connection attempts (socket transports).
	Reconnects        int64
	HandshakeFailures int64
	// StaleFenced counts inbound frames dropped by the generation fence: a
	// dead incarnation's stragglers, or early frames from a generation this
	// rank had not yet adopted (socket transports).
	StaleFenced int64
}

// Transport is the pluggable wire between localities.
type Transport interface {
	// Name identifies the transport in reports.
	Name() string
	// Reliable reports whether the wire delivers every message exactly
	// once. For a reliable wire the runtime skips the sequence/ack/retry
	// bookkeeping entirely; for an unreliable one the delivery layer
	// engages.
	Reliable() bool
	// Send conveys one message toward Message.Dst, invoking
	// Message.Deliver per the transport's fault model.
	Send(m Message)
	// Stats returns the wire-level fault counters.
	Stats() WireStats
}

// PerfectTransport is the in-process wire the runtime has always had: every
// message arrives exactly once, optionally after a fixed injected latency.
type PerfectTransport struct {
	Latency time.Duration

	messages atomic.Int64
	bytesOut atomic.Int64
}

// Name implements Transport.
func (t *PerfectTransport) Name() string { return "perfect" }

// Reliable implements Transport.
func (t *PerfectTransport) Reliable() bool { return true }

// Stats implements Transport: the perfect wire injects no faults but still
// accounts the (modeled) traffic it carried. Note the zero-latency perfect
// wire is bypassed entirely by the delivery fast path, so these counters
// only move when Latency > 0; the runtime-level ParcelBytes counter covers
// the fast path.
func (t *PerfectTransport) Stats() WireStats {
	return WireStats{
		Messages: t.messages.Load(),
		BytesOut: t.bytesOut.Load(),
	}
}

// Send implements Transport.
func (t *PerfectTransport) Send(m Message) {
	t.messages.Add(1)
	t.bytesOut.Add(int64(m.Bytes))
	if t.Latency > 0 {
		time.AfterFunc(t.Latency, m.Deliver)
		return
	}
	m.Deliver()
}

// FaultProfile configures a FaultyTransport. The zero value injects nothing;
// each field switches on one fault class.
type FaultProfile struct {
	// Seed seeds the fault RNG; equal seeds reproduce the same fault
	// sequence for the same sequence of Send calls.
	Seed int64
	// Drop is the probability a message is silently lost.
	Drop float64
	// Duplicate is the probability a message is delivered twice.
	Duplicate float64
	// Delay is a base one-way delay added to every message.
	Delay time.Duration
	// Reorder adds a uniform random delay in [0, ReorderJitter] to every
	// message, scrambling arrival order between concurrent sends.
	Reorder bool
	// ReorderJitter bounds the reorder delay (default 1ms when Reorder is
	// set).
	ReorderJitter time.Duration
	// SlowRank pauses one locality: every message to or from this rank is
	// delayed by an extra SlowDelay. Active only when SlowDelay > 0.
	SlowRank  int
	SlowDelay time.Duration
}

// FaultyTransport injects configurable drop/duplicate/delay/reorder faults
// and a per-locality pause from a seeded RNG. It is safe for concurrent use.
type FaultyTransport struct {
	// Tracer, when enabled, receives one virtual event per injected drop
	// and duplication (trace.ClassNetDrop / trace.ClassNetDup).
	Tracer *trace.Tracer

	prof FaultProfile

	mu  sync.Mutex
	rng *rand.Rand // guarded by mu

	dropped    atomic.Int64
	duplicated atomic.Int64
	delayed    atomic.Int64
	messages   atomic.Int64
	bytesOut   atomic.Int64
}

// NewFaultyTransport builds a transport injecting the profile's faults.
func NewFaultyTransport(p FaultProfile) *FaultyTransport {
	if p.Reorder && p.ReorderJitter <= 0 {
		p.ReorderJitter = time.Millisecond
	}
	return &FaultyTransport{
		prof: p,
		rng:  rand.New(rand.NewSource(p.Seed*2654435761 + 97)),
	}
}

// Name implements Transport.
func (t *FaultyTransport) Name() string { return "faulty" }

// Reliable implements Transport: a faulty wire needs the delivery layer.
func (t *FaultyTransport) Reliable() bool { return false }

// Stats implements Transport.
func (t *FaultyTransport) Stats() WireStats {
	return WireStats{
		Dropped:    t.dropped.Load(),
		Duplicated: t.duplicated.Load(),
		Delayed:    t.delayed.Load(),
		Messages:   t.messages.Load(),
		BytesOut:   t.bytesOut.Load(),
	}
}

// Send implements Transport: draw the fate of the message (drop, duplicate,
// or single delivery) and a delay for each surviving copy, then schedule the
// deliveries.
func (t *FaultyTransport) Send(m Message) {
	t.messages.Add(1)
	t.bytesOut.Add(int64(m.Bytes))
	var delays [2]time.Duration
	t.mu.Lock()
	copies := 1
	switch r := t.rng.Float64(); {
	case r < t.prof.Drop:
		copies = 0
	case r < t.prof.Drop+t.prof.Duplicate:
		copies = 2
	}
	for i := 0; i < copies; i++ {
		d := t.prof.Delay
		if t.prof.SlowDelay > 0 && (m.Src == t.prof.SlowRank || m.Dst == t.prof.SlowRank) {
			d += t.prof.SlowDelay
		}
		if t.prof.Reorder {
			d += time.Duration(t.rng.Int63n(int64(t.prof.ReorderJitter) + 1))
		}
		delays[i] = d
	}
	t.mu.Unlock()

	switch copies {
	case 0:
		t.dropped.Add(1)
		t.record(trace.ClassNetDrop)
		return
	case 2:
		t.duplicated.Add(1)
		t.record(trace.ClassNetDup)
	}
	for i := 0; i < copies; i++ {
		if d := delays[i]; d > 0 {
			t.delayed.Add(1)
			time.AfterFunc(d, m.Deliver)
		} else {
			m.Deliver()
		}
	}
}

func (t *FaultyTransport) record(class uint8) {
	if !t.Tracer.Enabled() {
		return
	}
	now := t.Tracer.Now()
	t.Tracer.RecordVirtual(trace.Event{Class: class, Worker: -1, Locality: -1, Start: now, End: now})
}
