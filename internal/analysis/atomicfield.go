package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicField enforces the all-or-nothing rule of sync/atomic: once any code
// path accesses a field through the atomic package, every access must.
//
// Two field populations are checked:
//
//  1. Address-taken atomics (the legacy style): a field whose address — or
//     whose element's address, for slices/arrays — is passed to a
//     sync/atomic function anywhere in the package. A plain (non-atomic)
//     read or write of that field (or of its elements, in the element case)
//     elsewhere is a diagnostic: it races the atomic accesses.
//
//  2. Typed atomics (atomic.Int64, atomic.Bool, atomic.Pointer[T], ...): the
//     only legal uses of such a field are calling its methods and taking its
//     address. Copying the value (assignment, argument passing, range) both
//     races concurrent writers and detaches the copy's internal state.
//
// For address-taken slice fields the nuance matters: `len(r.slot)` reads the
// immutable slice header, not an element, so whole-field reads stay legal
// while plain element loads/stores (`r.slot[i] = nil`) are flagged.
type AtomicField struct{}

// NewAtomicField returns the atomicfield analyzer.
func NewAtomicField() *AtomicField { return &AtomicField{} }

// Name implements Analyzer.
func (*AtomicField) Name() string { return "atomicfield" }

// Doc implements Analyzer.
func (*AtomicField) Doc() string {
	return "fields accessed via sync/atomic must never be touched by a plain load/store"
}

// atomicMode distinguishes whole-field atomics from element atomics.
type atomicMode int

const (
	fieldAtomic atomicMode = iota // &s.f passed to sync/atomic
	elemAtomic                    // &s.f[i] passed to sync/atomic
)

// Run implements Analyzer.
func (c *AtomicField) Run(p *Pass) {
	addrTaken := map[*types.Var]atomicMode{}
	var sanctioned posRanges // argument ranges inside sync/atomic calls

	// Pass 1: find fields whose address feeds sync/atomic.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !c.isAtomicCall(p, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sanctioned = append(sanctioned, [2]int{int(un.Pos()), int(un.End())})
				switch operand := un.X.(type) {
				case *ast.SelectorExpr:
					if v := fieldVar(p, operand); v != nil {
						addrTaken[v] = fieldAtomic
					}
				case *ast.IndexExpr:
					if sel, ok := operand.X.(*ast.SelectorExpr); ok {
						if v := fieldVar(p, sel); v != nil {
							if _, exists := addrTaken[v]; !exists {
								addrTaken[v] = elemAtomic
							}
						}
					}
				}
			}
			return true
		})
	}

	// Pass 2a: plain accesses of address-taken fields.
	if len(addrTaken) > 0 {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.SelectorExpr:
					v := fieldVar(p, node)
					if v == nil {
						return true
					}
					mode, tracked := addrTaken[v]
					if !tracked || mode != fieldAtomic || sanctioned.contains(node.Pos()) {
						return true
					}
					p.Report(node.Sel.Pos(),
						"field %s is accessed via sync/atomic elsewhere; this plain access races it",
						node.Sel.Name)
					return true
				case *ast.IndexExpr:
					sel, ok := node.X.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					v := fieldVar(p, sel)
					if v == nil {
						return true
					}
					mode, tracked := addrTaken[v]
					if !tracked || mode != elemAtomic || sanctioned.contains(node.Pos()) {
						return true
					}
					p.Report(node.Pos(),
						"elements of field %s are accessed via sync/atomic elsewhere; this plain element access races them",
						sel.Sel.Name)
					return false // don't re-flag the inner selector
				}
				return true
			})
		}
	}

	// Pass 2b: value copies of typed-atomic fields.
	for _, f := range p.Files {
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			v := fieldVar(p, sel)
			if v == nil || !isAtomicType(v.Type()) {
				return true
			}
			switch parent := parents[sel].(type) {
			case *ast.SelectorExpr:
				// s.cnt.Load — method selection on the atomic value.
				if parent.X == sel {
					return true
				}
			case *ast.UnaryExpr:
				if parent.Op.String() == "&" {
					return true // address-of, e.g. handing a slot pointer around
				}
			}
			p.Report(sel.Sel.Pos(),
				"plain use of sync/atomic-typed field %s copies its value non-atomically; call its methods instead",
				sel.Sel.Name)
			return true
		})
	}
}

// isAtomicCall reports whether call invokes a function of sync/atomic.
func (c *AtomicField) isAtomicCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// fieldVar resolves a selector to the struct field it selects, or nil.
func fieldVar(p *Pass, sel *ast.SelectorExpr) *types.Var {
	selection := p.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return nil
	}
	v, _ := selection.Obj().(*types.Var)
	return v
}

// isAtomicType reports whether t is a named type of package sync/atomic.
func isAtomicType(t types.Type) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// buildParents maps every node of the file to its syntactic parent.
func buildParents(f *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
