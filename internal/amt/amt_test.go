package amt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunDrainsAllTasks(t *testing.T) {
	rt := New(Config{Localities: 2, Workers: 3})
	var count atomic.Int64
	stats := rt.Run(func() {
		for l := 0; l < 2; l++ {
			loc := rt.Locality(l)
			for i := 0; i < 100; i++ {
				loc.Spawn(func(w *Worker) { count.Add(1) })
			}
		}
	})
	if count.Load() != 200 {
		t.Fatalf("ran %d of 200 tasks", count.Load())
	}
	if stats.TasksRun != 200 {
		t.Fatalf("stats report %d tasks", stats.TasksRun)
	}
}

func TestNestedSpawns(t *testing.T) {
	rt := New(Config{Localities: 1, Workers: 4})
	var count atomic.Int64
	rt.Run(func() {
		rt.Locality(0).Spawn(func(w *Worker) {
			// A task tree of depth 10, fanout 2.
			var rec func(d int) Task
			rec = func(d int) Task {
				return func(w *Worker) {
					count.Add(1)
					if d > 0 {
						w.Spawn(rec(d - 1))
						w.Spawn(rec(d - 1))
					}
				}
			}
			rec(9)(w)
		})
	})
	if count.Load() != 1<<10-1 {
		t.Fatalf("count = %d, want %d", count.Load(), 1<<10-1)
	}
}

func TestParcelCrossLocality(t *testing.T) {
	rt := New(Config{Localities: 4, Workers: 2})
	var delivered atomic.Int64
	ranks := make(chan int, 64)
	stats := rt.Run(func() {
		rt.Locality(0).Spawn(func(w *Worker) {
			for dest := 0; dest < 4; dest++ {
				d := dest
				w.SendParcel(d, 1000, func(w2 *Worker) {
					delivered.Add(1)
					ranks <- w2.Rank()
				})
			}
		})
	})
	close(ranks)
	if delivered.Load() != 4 {
		t.Fatalf("delivered %d of 4 parcels", delivered.Load())
	}
	seen := map[int]bool{}
	for r := range ranks {
		seen[r] = true
	}
	for dest := 0; dest < 4; dest++ {
		if !seen[dest] {
			t.Errorf("parcel to locality %d executed elsewhere", dest)
		}
	}
	// Local sends are not parcels: 3 remote sends.
	if stats.ParcelsSent != 3 {
		t.Errorf("parcelsSent = %d, want 3 (local delivery is not a parcel)", stats.ParcelsSent)
	}
	if stats.ParcelBytes != 3000 {
		t.Errorf("parcelBytes = %d, want 3000", stats.ParcelBytes)
	}
}

func TestParcelLatency(t *testing.T) {
	rt := New(Config{Localities: 2, Workers: 1, Latency: 5 * time.Millisecond})
	start := time.Now()
	var when time.Duration
	rt.Run(func() {
		rt.Locality(0).Spawn(func(w *Worker) {
			w.SendParcel(1, 10, func(w2 *Worker) { when = time.Since(start) })
		})
	})
	if when < 5*time.Millisecond {
		t.Errorf("parcel delivered after %v, want >= 5ms", when)
	}
}

func TestLCOTriggersOnceAllInputsArrive(t *testing.T) {
	rt := New(Config{Localities: 1, Workers: 4})
	var sum atomic.Int64
	var fired atomic.Int64
	rt.Run(func() {
		loc := rt.Locality(0)
		lco := NewLCO(loc, 10)
		lco.Register(func(w *Worker) { fired.Add(1) })
		for i := 1; i <= 10; i++ {
			v := int64(i)
			loc.Spawn(func(w *Worker) {
				lco.Input(func() { sum.Add(v) })
			})
		}
	})
	if fired.Load() != 1 {
		t.Fatalf("LCO fired %d times", fired.Load())
	}
	if sum.Load() != 55 {
		t.Fatalf("reduction sum %d, want 55", sum.Load())
	}
}

func TestLCOLateRegistration(t *testing.T) {
	rt := New(Config{Localities: 1, Workers: 2})
	var ran atomic.Bool
	rt.Run(func() {
		loc := rt.Locality(0)
		lco := NewLCO(loc, 1)
		lco.Input(nil)
		if !lco.Triggered() {
			t.Error("LCO not triggered after final input")
		}
		// Registration after the trigger must still run.
		loc.Spawn(func(w *Worker) {
			lco.Register(func(w *Worker) { ran.Store(true) })
		})
	})
	if !ran.Load() {
		t.Fatal("late-registered continuation did not run")
	}
}

func TestFuture(t *testing.T) {
	rt := New(Config{Localities: 2, Workers: 1})
	got := make(chan any, 1)
	rt.Run(func() {
		f := NewFuture(rt.Locality(1))
		f.Then(func(w *Worker, v any) {
			if w.Rank() != 1 {
				t.Errorf("future continuation ran on rank %d", w.Rank())
			}
			got <- v
		})
		rt.Locality(0).Spawn(func(w *Worker) { f.Set("hello") })
	})
	if v := <-got; v != "hello" {
		t.Fatalf("future value %v", v)
	}
}

func TestReduction(t *testing.T) {
	rt := New(Config{Localities: 1, Workers: 3})
	got := make(chan float64, 1)
	rt.Run(func() {
		loc := rt.Locality(0)
		r := NewReduction(loc, 5, 0, func(a, b float64) float64 { return a + b })
		r.Then(func(w *Worker, v float64) { got <- v })
		for i := 1; i <= 5; i++ {
			v := float64(i)
			loc.Spawn(func(w *Worker) { r.Input(v) })
		}
	})
	if v := <-got; v != 15 {
		t.Fatalf("reduction = %v, want 15", v)
	}
}

func TestWorkStealingSpreadsLoad(t *testing.T) {
	// One worker receives all spawns; with stealing, others must run some.
	rt := New(Config{Localities: 1, Workers: 4})
	var perWorker [4]atomic.Int64
	rt.Run(func() {
		loc := rt.Locality(0)
		loc.Spawn(func(w *Worker) {
			for i := 0; i < 400; i++ {
				w.Spawn(func(w2 *Worker) {
					perWorker[w2.ID].Add(1)
					time.Sleep(100 * time.Microsecond)
				})
			}
		})
	})
	others := int64(0)
	for i := 1; i < 4; i++ {
		others += perWorker[i].Load()
	}
	if others == 0 {
		t.Error("no tasks were stolen by idle workers")
	}
}

func TestDeterministicSeeding(t *testing.T) {
	// Two runtimes with the same seed produce workers with identical RNG
	// streams (scheduling itself is still timing-dependent, but the steal
	// order source is reproducible).
	a := New(Config{Localities: 1, Workers: 2, Seed: 42})
	b := New(Config{Localities: 1, Workers: 2, Seed: 42})
	for i := 0; i < 2; i++ {
		wa := a.Locality(0).workers[i]
		wb := b.Locality(0).workers[i]
		for j := 0; j < 10; j++ {
			if wa.rng.Int63() != wb.rng.Int63() {
				t.Fatal("worker RNGs differ for equal seeds")
			}
		}
	}
}

func TestPriorityTasksRunFirst(t *testing.T) {
	// One worker; queue low tasks then high tasks before releasing the
	// worker: the high tasks must all run before any low task.
	rt := New(Config{Localities: 1, Workers: 1})
	var order []string
	var mu sync.Mutex
	rt.Run(func() {
		loc := rt.Locality(0)
		loc.Spawn(func(w *Worker) {
			for i := 0; i < 5; i++ {
				w.Spawn(func(w2 *Worker) {
					mu.Lock()
					order = append(order, "low")
					mu.Unlock()
				})
			}
			for i := 0; i < 5; i++ {
				w.SpawnHigh(func(w2 *Worker) {
					mu.Lock()
					order = append(order, "high")
					mu.Unlock()
				})
			}
		})
	})
	if len(order) != 10 {
		t.Fatalf("ran %d of 10 tasks", len(order))
	}
	for i := 0; i < 5; i++ {
		if order[i] != "high" {
			t.Fatalf("task %d was %q; priority tasks must run first: %v", i, order[i], order)
		}
	}
}

func TestPriorityTasksStolenFirst(t *testing.T) {
	rt := New(Config{Localities: 1, Workers: 2})
	var first atomic.Value
	rt.Run(func() {
		loc := rt.Locality(0)
		loc.Spawn(func(w *Worker) {
			// Fill this worker's queues; the idle second worker steals and
			// must grab the high task first.
			w.Spawn(func(w2 *Worker) { first.CompareAndSwap(nil, "low") })
			w.SpawnHigh(func(w2 *Worker) { first.CompareAndSwap(nil, "high") })
			time.Sleep(2 * time.Millisecond) // hold the owner busy
		})
	})
	if v := first.Load(); v != "high" {
		t.Errorf("first stolen task was %v, want high", v)
	}
}

// A Reset runtime must execute a second generation of work exactly like a
// fresh one, with per-generation stats and a bumped generation counter.
func TestRuntimeResetMultiShot(t *testing.T) {
	rt := New(Config{Localities: 2, Workers: 3})
	var count atomic.Int64
	run := func(n int) Stats {
		return rt.Run(func() {
			for l := 0; l < 2; l++ {
				loc := rt.Locality(l)
				for i := 0; i < n; i++ {
					loc.Spawn(func(w *Worker) { count.Add(1) })
				}
			}
		})
	}
	if s := run(100); s.TasksRun != 200 {
		t.Fatalf("gen 0 ran %d tasks, want 200", s.TasksRun)
	}
	for gen := 1; gen <= 3; gen++ {
		if err := rt.Reset(); err != nil {
			t.Fatalf("Reset gen %d: %v", gen, err)
		}
		if rt.Generation() != gen {
			t.Fatalf("generation = %d, want %d", rt.Generation(), gen)
		}
		if s := run(50); s.TasksRun != 100 {
			t.Fatalf("gen %d ran %d tasks, want 100 (stats must restart per generation)", gen, s.TasksRun)
		}
	}
	if count.Load() != 200+3*100 {
		t.Fatalf("total tasks %d, want %d", count.Load(), 200+3*100)
	}
}

// Cross-locality parcels must keep working after a Reset (the delivery
// fast path carries no per-run state).
func TestRuntimeResetParcels(t *testing.T) {
	rt := New(Config{Localities: 3, Workers: 2})
	for gen := 0; gen < 2; gen++ {
		var delivered atomic.Int64
		stats := rt.Run(func() {
			rt.Locality(0).Spawn(func(w *Worker) {
				for dest := 1; dest < 3; dest++ {
					w.SendParcel(dest, 64, func(w2 *Worker) { delivered.Add(1) })
				}
			})
		})
		if delivered.Load() != 2 {
			t.Fatalf("gen %d delivered %d parcels, want 2", gen, delivered.Load())
		}
		if stats.ParcelsSent != 2 || stats.ParcelBytes != 128 {
			t.Fatalf("gen %d parcel stats %+v", gen, stats)
		}
		if gen == 0 {
			if err := rt.Reset(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// Reset must refuse configurations whose state is single-shot: an aborted
// run with pending work, an armed failure detector, an unreliable wire.
func TestRuntimeResetRefusals(t *testing.T) {
	// Undrained pending work (the signature of a stalled/aborted run whose
	// queues still hold context-less tasks) must be refused. An ordinary
	// Abort drains via sweepLeftovers, so inject the pending unit directly.
	rt := New(Config{Localities: 1, Workers: 1})
	rt.Run(func() { rt.Locality(0).Spawn(func(*Worker) {}) })
	rt.pending.Add(1)
	if err := rt.Reset(); err == nil {
		t.Fatal("Reset accepted a runtime with pending work")
	}
	rt.pending.Add(-1)
	if err := rt.Reset(); err != nil {
		t.Fatalf("Reset refused a drained runtime: %v", err)
	}

	det := New(Config{Localities: 2, Workers: 1, Detector: &FailureDetectorConfig{}})
	det.Run(func() { det.Locality(0).Spawn(func(*Worker) {}) })
	if err := det.Reset(); err == nil {
		t.Fatal("Reset accepted a detector-armed runtime")
	}

	faulty := New(Config{Localities: 2, Workers: 1, Transport: NewFaultyTransport(FaultProfile{Seed: 1})})
	faulty.Run(func() { faulty.Locality(0).Spawn(func(*Worker) {}) })
	if err := faulty.Reset(); err == nil {
		t.Fatal("Reset accepted an unreliable-transport runtime")
	}
}
