package kernel

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// List-3 geometry (paper Fig. 1b): a small source box Bs whose parent is
// adjacent to the leaf target box Bt, but Bs itself is well separated from
// Bt. The multipole of Bs is evaluated directly at the target points (M->T)
// across a separation of only one fine box — the weakest separation ratio
// in the method.
func TestM2TListThreeGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, tc := range kernels(t) {
		fine := 0.125 // source box side (one level deeper than the target)
		sc := geom.Point{X: 0.5, Y: 0.5, Z: 0.5}
		spts := randBox(rng, sc, fine, 20)
		q := randCharges(rng, 20)
		m := make([]complex128, tc.k.MLSize())
		tc.k.S2M(sc, spts, q, m)
		// Leaf target box of twice the side, separated by one fine box.
		tcenter := sc.Add(geom.Point{X: 2.5 * fine, Y: 0.5 * fine, Z: -0.5 * fine})
		tpts := randBox(rng, tcenter, 2*fine, 20)
		pot := make([]float64, len(tpts))
		tc.k.M2T(sc, m, tpts, pot)
		want := direct(tc.k, spts, q, tpts)
		// The list-3 ratio sqrt(3)/2 : 2 holds only box-to-box; points in
		// the big target box can come within one fine box of the source, so
		// accept a slightly looser tolerance than the list-2 paths.
		if e := relErr(pot, want); e > 5e-3 {
			t.Errorf("%s: list-3 M2T rel err %.2e", tc.name, e)
		}
	}
}

// List-4 geometry: a coarse leaf source box adjacent to the target's parent
// but separated from the target box itself; its points are converted
// directly into the target's local expansion (S->L).
func TestS2LListFourGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for _, tc := range kernels(t) {
		coarse := 0.25
		fine := 0.125
		// Coarse source box.
		sc := geom.Point{X: 0.5, Y: 0.5, Z: 0.5}
		spts := randBox(rng, sc, coarse, 25)
		q := randCharges(rng, 25)
		// Fine target box separated by one fine box from the coarse box's
		// face.
		tcenter := sc.Add(geom.Point{X: coarse/2 + 1.5*fine, Y: 0.25 * fine, Z: -0.25 * fine})
		tpts := randBox(rng, tcenter, fine, 20)
		l := make([]complex128, tc.k.MLSize())
		tc.k.S2L(tcenter, spts, q, l)
		pot := make([]float64, len(tpts))
		tc.k.L2T(tcenter, l, tpts, pot)
		want := direct(tc.k, spts, q, tpts)
		if e := relErr(pot, want); e > 5e-3 {
			t.Errorf("%s: list-4 S2L rel err %.2e", tc.name, e)
		}
	}
}

// The translation matrix cache must produce results identical to the direct
// projection path (same operator, different evaluation strategy).
func TestMatrixCacheMatchesDirectTranslate(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, tc := range kernels(t) {
		b := tc.k.(*base)
		childSide := 0.125
		from := geom.Point{X: 0.4, Y: 0.6, Z: 0.5}
		to := from.Add(geom.Point{X: childSide / 2, Y: -childSide / 2, Z: childSide / 2})
		in := make([]complex128, tc.k.MLSize())
		for i := range in {
			in[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		viaCache := make([]complex128, tc.k.MLSize())
		tc.k.M2M(from, to, childSide, in, viaCache)
		// Direct projection path.
		ws := b.newWorkspace()
		directOut := make([]complex128, tc.k.MLSize())
		b.translate(ws, from, to, b.aM2M*2*childSide, in, b.radOut, b.radOut, directOut)
		for i := range viaCache {
			if cAbs(viaCache[i]-directOut[i]) > 1e-9*(1+cAbs(directOut[i])) {
				t.Fatalf("%s: cache mismatch at %d: %v vs %v", tc.name, i, viaCache[i], directOut[i])
			}
		}
		// Non-octant offsets must bypass the cache and still work.
		odd := from.Add(geom.Point{X: 0.3 * childSide, Y: 0, Z: 0})
		out := make([]complex128, tc.k.MLSize())
		tc.k.M2M(from, odd, childSide, in, out) // must not panic
	}
}
