package dag

import (
	"math"
	"math/bits"

	"repro/internal/geom"
	"repro/internal/kernel"
	"repro/internal/tree"
)

// Per-point payload sizes used for the census (positions + charge for
// sources; positions + potential + index for targets), mirroring the
// 32 B/source and 40 B/target granularity visible in Table I.
const (
	srcPointBytes = 32
	tgtPointBytes = 40
	cplxBytes     = 16
)

// Build constructs the explicit DAG for one evaluation. lists must be the
// result of tree.DualLists(tgt, src); it is ignored by the Barnes–Hut
// method.
func Build(cfg Config, src, tgt *tree.Tree, lists []tree.Lists, k kernel.Kernel) *Graph {
	g := &Graph{
		Method: cfg.Method,
		Source: src,
		Target: tgt,
		Kernel: k,
		SOf:    fill(len(src.Boxes)),
		MOf:    fill(len(src.Boxes)),
		IsOf:   fill(len(src.Boxes)),
		ItOf:   fill(len(tgt.Boxes)),
		LOf:    fill(len(tgt.Boxes)),
		TOf:    fill(len(tgt.Boxes)),
	}
	if cfg.Method == BarnesHut {
		g.buildBarnesHut(cfg)
		return g
	}
	g.buildFMM(cfg, lists)
	return g
}

func fill(n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = -1
	}
	return s
}

// visible reports whether a target box participates in the DAG: boxes below
// a pruned box are subsumed by the pruned box's terminal evaluation.
func visible(b *tree.Box) bool {
	return !(b.Pruned && b.Parent != nil && b.Parent.Pruned)
}

// terminal reports whether evaluation bottoms out at this target box: a
// true leaf, or the first pruned box of a pruned subtree.
func terminal(b *tree.Box) bool {
	if b.Pruned {
		return b.Parent == nil || !b.Parent.Pruned
	}
	return b.IsLeaf()
}

func (g *Graph) buildFMM(cfg Config, lists []tree.Lists) {
	src, tgt, k := g.Source, g.Target, g.Kernel
	mlBytes := k.MLSize() * cplxBytes

	// Pass 1: mark the source boxes whose multipole expansion is consumed
	// (list-2 members, list-3 members), then close downward: a needed
	// parent is assembled from its children.
	neededM := make([]bool, len(src.Boxes))
	for _, bt := range tgt.Boxes {
		if !visible(bt) {
			continue
		}
		ls := &lists[bt.Seq]
		for _, e := range ls.L2 {
			neededM[e.Seq] = true
		}
		for _, e := range ls.L3 {
			neededM[e.Seq] = true
		}
	}
	for _, b := range src.Boxes { // BFS: parents first
		if !neededM[b.Seq] {
			continue
		}
		for _, c := range b.Children {
			if c != nil {
				neededM[c.Seq] = true
			}
		}
	}

	// Pass 2: S nodes for every source leaf, M nodes for needed boxes,
	// S->M and M->M edges.
	for _, b := range src.Leaves {
		g.SOf[b.Seq] = g.addNode(NodeS, b, b.NPoints()*srcPointBytes)
	}
	for _, b := range src.Boxes {
		if neededM[b.Seq] {
			g.MOf[b.Seq] = g.addNode(NodeM, b, mlBytes)
		}
	}
	for _, b := range src.Boxes {
		mid := g.MOf[b.Seq]
		if mid < 0 {
			continue
		}
		if b.IsLeaf() {
			g.addEdge(g.SOf[b.Seq], Edge{To: mid, Op: OpS2M, Dir: -1, Bytes: int32(mlBytes)})
			continue
		}
		for _, c := range b.Children {
			if c == nil {
				continue
			}
			cid := g.MOf[c.Seq]
			if cid < 0 {
				// A needed parent closes over all children.
				panic("dag: needed M with unneeded child")
			}
			g.addEdge(cid, Edge{To: mid, Op: OpM2M, Dir: -1, Bytes: int32(mlBytes)})
		}
	}

	// Pass 3 (advanced method): plan the plane-wave pipeline. For each
	// target box, partition list 2 by direction cone and group each cone's
	// boxes by source parent. The two halves of the paper's merge-and-shift
	// then cut the translation count: (merge) a complete sibling group of
	// sources is routed through the parent's merged wave with one
	// translation; (shift) a transfer common to every child of a target
	// parent is delivered once to the parent's shared wave and then
	// distributed to the children with cheap local shifts.
	var ownNeed, mergedNeed []uint8
	var transfers [][]pwTransfer // per target box seq: own-level incoming
	var shared [][]pwTransfer    // per target box seq: child-level, once for all children
	if cfg.Method == Advanced {
		ownNeed = make([]uint8, len(src.Boxes))
		mergedNeed = make([]uint8, len(src.Boxes))
		transfers = make([][]pwTransfer, len(tgt.Boxes))
		shared = make([][]pwTransfer, len(tgt.Boxes))
		// Raw cone-classified list-2 pairs per target box.
		pairs := make([][]pwPair, len(tgt.Boxes))
		for _, bt := range tgt.Boxes {
			if !visible(bt) {
				continue
			}
			for _, bs := range lists[bt.Seq].L2 {
				dx, dy, dz := bs.Index.Offset(bt.Index)
				d, ok := geom.DirectionOf(dx, dy, dz)
				if !ok {
					panic("dag: list-2 offset without direction cone")
				}
				pairs[bt.Seq] = append(pairs[bt.Seq], pwPair{bs: bs, d: int8(d)})
			}
		}
		// Shift half first (the CGR "Uall" sets): a pair common to every
		// child of a target parent is delivered once to the parent's shared
		// wave and distributed with one local shift per child. (Cone
		// membership of every child is guaranteed because each child
		// classified the pair into the same direction.)
		type pkey struct {
			seq int32
			d   int8
		}
		for _, q := range tgt.Boxes {
			if q.IsLeaf() || !visible(q) || q.Pruned || q.NChildren < 2 {
				continue
			}
			counts := make(map[pkey]int)
			for _, c := range q.Children {
				if c == nil {
					continue
				}
				for _, pr := range pairs[c.Seq] {
					counts[pkey{int32(pr.bs.Seq), pr.d}]++
				}
			}
			var hoisted []pwPair
			promoted := make(map[pkey]bool)
			for _, c := range q.Children {
				if c == nil {
					continue
				}
				kept := pairs[c.Seq][:0]
				for _, pr := range pairs[c.Seq] {
					k := pkey{int32(pr.bs.Seq), pr.d}
					if counts[k] == q.NChildren {
						if !promoted[k] {
							promoted[k] = true
							hoisted = append(hoisted, pr)
						}
						continue
					}
					kept = append(kept, pr)
				}
				pairs[c.Seq] = kept
			}
			shared[q.Seq] = mergeGroups(hoisted)
		}
		// Merge half: group each box's residual pairs by (direction,
		// source parent); complete sibling groups consume the parent's
		// merged wave with a single translation.
		for _, bt := range tgt.Boxes {
			if len(pairs[bt.Seq]) > 0 {
				transfers[bt.Seq] = mergeGroups(pairs[bt.Seq])
			}
		}
		// Record which outgoing waves each source box must produce.
		need := func(tr pwTransfer) {
			if tr.merged {
				mergedNeed[tr.fromSeq] |= 1 << uint(tr.dir)
			} else {
				ownNeed[tr.fromSeq] |= 1 << uint(tr.dir)
			}
		}
		for _, bt := range tgt.Boxes {
			for _, tr := range transfers[bt.Seq] {
				need(tr)
			}
			for _, tr := range shared[bt.Seq] {
				need(tr)
			}
		}
		// Children of merge parents must produce the directions being
		// merged.
		for _, b := range src.Boxes {
			if mergedNeed[b.Seq] == 0 {
				continue
			}
			for _, c := range b.Children {
				if c != nil {
					ownNeed[c.Seq] |= mergedNeed[b.Seq]
				}
			}
		}
		// Materialize Is nodes and M->I / merge I->I edges.
		for _, b := range src.Boxes {
			own, mrg := ownNeed[b.Seq], mergedNeed[b.Seq]
			if own == 0 && mrg == 0 {
				continue
			}
			bytes := bits.OnesCount8(own) * k.ISize(b.Level()) * cplxBytes
			if mrg != 0 {
				bytes += bits.OnesCount8(mrg) * k.ISize(b.Level()+1) * cplxBytes
			}
			g.IsOf[b.Seq] = g.addNode(NodeIs, b, bytes)
		}
		for _, b := range src.Boxes {
			isID := g.IsOf[b.Seq]
			if isID < 0 {
				continue
			}
			g.node(isID).OwnMask = ownNeed[b.Seq]
			g.node(isID).MergedMask = mergedNeed[b.Seq]
			if own := ownNeed[b.Seq]; own != 0 {
				g.addEdge(g.MOf[b.Seq], Edge{
					To: isID, Op: OpM2I, Dir: -1, DirMask: own,
					Bytes: int32(bits.OnesCount8(own) * k.ISize(b.Level()) * cplxBytes),
				})
			}
			if mrg := mergedNeed[b.Seq]; mrg != 0 {
				for _, c := range b.Children {
					if c == nil {
						continue
					}
					g.addEdge(g.IsOf[c.Seq], Edge{
						To: isID, Op: OpI2I, Dir: -1, DirMask: mrg, ToMerged: true,
						Bytes: int32(bits.OnesCount8(mrg) * k.ISize(c.Level()) * cplxBytes),
					})
				}
			}
		}
	}

	// Pass 4: It nodes, transfer and distribution edges; L activity.
	activeL := make([]bool, len(tgt.Boxes))
	if cfg.Method == Advanced {
		// Create It nodes top-down so a parent's shared waves exist before
		// the children's distribution edges reference them.
		for _, bt := range tgt.Boxes {
			if !visible(bt) {
				continue
			}
			var own, shr uint8
			for _, tr := range transfers[bt.Seq] {
				own |= 1 << uint(tr.dir)
			}
			for _, tr := range shared[bt.Seq] {
				shr |= 1 << uint(tr.dir)
			}
			if bt.Parent != nil {
				if pid := g.ItOf[bt.Parent.Seq]; pid >= 0 {
					// Distributed shares arrive into our own-level
					// accumulation (parent's child-level == our level).
					own |= g.node(pid).MergedMask
				}
			}
			if own == 0 && shr == 0 {
				continue
			}
			iwOwn := k.ISize(bt.Level()) * cplxBytes
			bytes := bits.OnesCount8(own) * iwOwn
			if shr != 0 {
				bytes += bits.OnesCount8(shr) * k.ISize(bt.Level()+1) * cplxBytes
			}
			itID := g.addNode(NodeIt, bt, bytes)
			g.node(itID).OwnMask = own
			g.node(itID).MergedMask = shr
			g.ItOf[bt.Seq] = itID
		}
		// Edges into and out of It nodes.
		for _, bt := range tgt.Boxes {
			itID := g.ItOf[bt.Seq]
			if itID < 0 {
				continue
			}
			iwOwn := int32(k.ISize(bt.Level()) * cplxBytes)
			iwChild := int32(0)
			if g.node(itID).MergedMask != 0 {
				iwChild = int32(k.ISize(bt.Level()+1) * cplxBytes)
			}
			for _, tr := range transfers[bt.Seq] {
				g.addEdge(g.IsOf[tr.fromSeq], Edge{
					To: itID, Op: OpI2I, Dir: tr.dir, FromMerged: tr.merged,
					Bytes: iwOwn,
				})
			}
			for _, tr := range shared[bt.Seq] {
				g.addEdge(g.IsOf[tr.fromSeq], Edge{
					To: itID, Op: OpI2I, Dir: tr.dir, FromMerged: tr.merged,
					ToMerged: true, Bytes: iwChild,
				})
			}
			// Distribution to children.
			if shr := g.node(itID).MergedMask; shr != 0 {
				for _, c := range bt.Children {
					if c == nil {
						continue
					}
					cid := g.ItOf[c.Seq]
					if cid < 0 {
						panic("dag: shared waves with missing child It")
					}
					g.addEdge(itID, Edge{
						To: cid, Op: OpI2I, Dir: -1, DirMask: shr,
						FromMerged: true, Bytes: iwChild,
					})
				}
			}
		}
	}
	for _, bt := range tgt.Boxes {
		if !visible(bt) {
			continue
		}
		ls := &lists[bt.Seq]
		hasInput := len(ls.L4) > 0
		if itID := g.ItOf[bt.Seq]; itID >= 0 && g.node(itID).OwnMask != 0 {
			hasInput = true
		}
		if cfg.Method == Basic && len(ls.L2) > 0 {
			hasInput = true
		}
		if bt.Parent != nil && activeL[bt.Parent.Seq] {
			hasInput = true
		}
		activeL[bt.Seq] = hasInput
	}

	// Pass 5: L nodes and the downward edges.
	mlB := int32(mlBytes)
	for _, bt := range tgt.Boxes {
		if visible(bt) && activeL[bt.Seq] {
			g.LOf[bt.Seq] = g.addNode(NodeL, bt, mlBytes)
		}
	}
	for _, bt := range tgt.Boxes {
		if !visible(bt) {
			continue
		}
		lid := g.LOf[bt.Seq]
		if lid < 0 {
			continue
		}
		ls := &lists[bt.Seq]
		if itID := g.ItOf[bt.Seq]; itID >= 0 && g.node(itID).OwnMask != 0 {
			g.addEdge(itID, Edge{To: lid, Op: OpI2L, Dir: -1, Bytes: mlB})
		}
		if cfg.Method == Basic {
			for _, bs := range ls.L2 {
				g.addEdge(g.MOf[bs.Seq], Edge{To: lid, Op: OpM2L, Dir: -1, Bytes: mlB})
			}
		}
		for _, bs := range ls.L4 {
			g.addEdge(g.SOf[bs.Seq], Edge{
				To: lid, Op: OpS2L, Dir: -1, Bytes: int32(bs.NPoints() * srcPointBytes),
			})
		}
		if bt.Parent != nil {
			if pid := g.LOf[bt.Parent.Seq]; pid >= 0 {
				g.addEdge(pid, Edge{To: lid, Op: OpL2L, Dir: -1, Bytes: mlB})
			}
		}
	}

	// Pass 6: T nodes and the final edges.
	for _, bt := range tgt.Boxes {
		if !visible(bt) || !terminal(bt) {
			continue
		}
		tid := g.addNode(NodeT, bt, bt.NPoints()*tgtPointBytes)
		g.TOf[bt.Seq] = tid
		ls := &lists[bt.Seq]
		if lid := g.LOf[bt.Seq]; lid >= 0 {
			g.addEdge(lid, Edge{To: tid, Op: OpL2T, Dir: -1, Bytes: mlB})
		}
		for _, bs := range ls.L3 {
			g.addEdge(g.MOf[bs.Seq], Edge{To: tid, Op: OpM2T, Dir: -1, Bytes: mlB})
		}
		for _, bs := range ls.L1 {
			g.addEdge(g.SOf[bs.Seq], Edge{
				To: tid, Op: OpS2T, Dir: -1, Bytes: int32(bs.NPoints() * srcPointBytes),
			})
		}
	}
}

// buildBarnesHut builds the Barnes–Hut DAG: a multipole acceptance
// traversal per target leaf producing M->T and S->T edges only.
func (g *Graph) buildBarnesHut(cfg Config) {
	src, tgt, k := g.Source, g.Target, g.Kernel
	theta := cfg.Theta
	if theta <= 0 {
		theta = 0.5
	}
	mlBytes := k.MLSize() * cplxBytes

	// Traverse once per target leaf to find the accepted set; collect
	// which M nodes are needed.
	neededM := make([]bool, len(src.Boxes))
	type accept struct {
		box   *tree.Box
		multi bool // true: M->T; false: S->T
	}
	acc := make([][]accept, len(tgt.Leaves))
	for li, bt := range tgt.Leaves {
		tr := (math.Sqrt(3) / 2) * bt.Side // target box circumradius
		var walk func(s *tree.Box)
		walk = func(s *tree.Box) {
			d := s.Center.Dist(bt.Center) - tr
			if d > 0 && s.Side/d <= theta {
				acc[li] = append(acc[li], accept{box: s, multi: true})
				neededM[s.Seq] = true
				return
			}
			if s.IsLeaf() {
				acc[li] = append(acc[li], accept{box: s, multi: false})
				return
			}
			for _, c := range s.Children {
				if c != nil {
					walk(c)
				}
			}
		}
		walk(src.Root)
	}
	for _, b := range src.Boxes {
		if !neededM[b.Seq] {
			continue
		}
		for _, c := range b.Children {
			if c != nil {
				neededM[c.Seq] = true
			}
		}
	}
	for _, b := range src.Leaves {
		g.SOf[b.Seq] = g.addNode(NodeS, b, b.NPoints()*srcPointBytes)
	}
	for _, b := range src.Boxes {
		if neededM[b.Seq] {
			g.MOf[b.Seq] = g.addNode(NodeM, b, mlBytes)
		}
	}
	for _, b := range src.Boxes {
		mid := g.MOf[b.Seq]
		if mid < 0 {
			continue
		}
		if b.IsLeaf() {
			g.addEdge(g.SOf[b.Seq], Edge{To: mid, Op: OpS2M, Dir: -1, Bytes: int32(mlBytes)})
			continue
		}
		for _, c := range b.Children {
			if c != nil {
				g.addEdge(g.MOf[c.Seq], Edge{To: mid, Op: OpM2M, Dir: -1, Bytes: int32(mlBytes)})
			}
		}
	}
	for li, bt := range tgt.Leaves {
		tid := g.addNode(NodeT, bt, bt.NPoints()*tgtPointBytes)
		g.TOf[bt.Seq] = tid
		for _, a := range acc[li] {
			if a.multi {
				g.addEdge(g.MOf[a.box.Seq], Edge{To: tid, Op: OpM2T, Dir: -1, Bytes: int32(mlBytes)})
			} else {
				g.addEdge(g.SOf[a.box.Seq], Edge{
					To: tid, Op: OpS2T, Dir: -1, Bytes: int32(a.box.NPoints() * srcPointBytes),
				})
			}
		}
	}
}

// pwPair is a cone-classified list-2 interaction: source box bs sends its
// direction-d plane wave to the target under consideration.
type pwPair struct {
	bs *tree.Box
	d  int8
}

// pwTransfer is a planned I->I translation into a target-side wave: from
// the source box's own wave, or from its parent's merged child waves.
type pwTransfer struct {
	fromSeq int32
	dir     int8
	merged  bool
}

// mergeGroups applies the merge half of merge-and-shift to a set of pairs:
// pairs grouped by (direction, source parent) that cover every child of the
// parent are replaced by a single transfer from the parent's merged wave.
func mergeGroups(prs []pwPair) []pwTransfer {
	type gkey struct {
		parentSeq int32
		d         int8
	}
	groups := make(map[gkey][]*tree.Box)
	var keys []gkey
	for _, pr := range prs {
		k := gkey{int32(pr.bs.Parent.Seq), pr.d}
		if groups[k] == nil {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], pr.bs)
	}
	// Emit groups in first-appearance order: the transfer list feeds the DAG
	// edge order, which must be identical across ranks and runs.
	var out []pwTransfer
	for _, k := range keys {
		boxes := groups[k]
		if len(boxes) == boxes[0].Parent.NChildren && len(boxes) > 1 {
			out = append(out, pwTransfer{fromSeq: k.parentSeq, dir: k.d, merged: true})
			continue
		}
		for _, bs := range boxes {
			out = append(out, pwTransfer{fromSeq: int32(bs.Seq), dir: k.d, merged: false})
		}
	}
	return out
}
