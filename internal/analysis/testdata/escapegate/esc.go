// Package esc is compiled in a throwaway module by TestEscapeGate: one
// //dashmm:noalloc function with a genuine compiler-proved escape, one with
// a suppressed deliberate escape, one clean, and one unannotated function
// whose escapes must not be reported.
package esc

// Leak violates its annotation: x is moved to the heap.
//
//dashmm:noalloc
func Leak() *int {
	x := 42
	return &x
}

// LeakOK escapes too, but carries a reasoned suppression.
//
//dashmm:noalloc
func LeakOK() *int {
	//lint:ignore escape-gate deliberate escape exercising the suppression path of the gate
	y := 7
	return &y
}

// Sum honors the contract: everything stays on the stack.
//
//dashmm:noalloc
func Sum(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}

// Unannotated allocates freely; the gate only polices annotated functions.
func Unannotated() *[]int {
	s := make([]int, 8)
	return &s
}
