package kernel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// pwGeom holds a source box / target box pair at list-2 separation for the
// plane-wave tests: boxes of the given side with integer offset (dx,dy,dz).
func pwPair(rng *rand.Rand, side float64, dx, dy, dz int32, ns, nt int) (sc, tc geom.Point, spts []geom.Point, q []float64, tpts []geom.Point) {
	sc = geom.Point{X: 0.5, Y: 0.5, Z: 0.5}
	tc = sc.Add(geom.Point{X: float64(dx) * side, Y: float64(dy) * side, Z: float64(dz) * side})
	spts = randBox(rng, sc, side, ns)
	q = randCharges(rng, ns)
	tpts = randBox(rng, tc, side, nt)
	return
}

// runPW pushes sources through S2M -> M2I -> I2I -> I2L -> L2T for the
// direction classifying the offset and returns the relative error against
// the direct sum.
func runPW(t *testing.T, k Kernel, level int, side float64, dx, dy, dz int32, seed int64) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sc, tcn, spts, q, tpts := pwPair(rng, side, dx, dy, dz, 25, 20)
	dir, ok := geom.DirectionOf(dx, dy, dz)
	if !ok {
		t.Fatalf("offset (%d,%d,%d) has no direction", dx, dy, dz)
	}
	m := make([]complex128, k.MLSize())
	k.S2M(sc, spts, q, m)
	x := make([]complex128, k.ISize(level))
	k.M2I(dir, level, m, x)
	xr := make([]complex128, k.ISize(level))
	k.I2I(dir, level, tcn.Sub(sc), x, xr)
	l := make([]complex128, k.MLSize())
	k.I2L(dir, level, xr, l)
	pot := make([]float64, len(tpts))
	k.L2T(tcn, l, tpts, pot)
	want := direct(k, spts, q, tpts)
	return relErr(pot, want)
}

func TestPlaneWaveUpDirection(t *testing.T) {
	for _, tc := range kernels(t) {
		// Level 2 boxes of the unit domain have side 0.25.
		if e := runPW(t, tc.k, 2, 0.25, 0, 0, 2, 11); e > tc.tol {
			t.Errorf("%s: up (0,0,2) rel err %.2e > %.0e", tc.name, e, tc.tol)
		}
	}
}

func TestPlaneWaveAllDirections(t *testing.T) {
	offsets := []struct{ dx, dy, dz int32 }{
		{0, 0, 2}, {0, 0, -2}, {0, 2, 0}, {0, -2, 0}, {2, 0, 0}, {-2, 0, 0},
	}
	for _, tc := range kernels(t) {
		for _, o := range offsets {
			if e := runPW(t, tc.k, 2, 0.25, o.dx, o.dy, o.dz, 13); e > tc.tol {
				t.Errorf("%s: offset (%d,%d,%d) rel err %.2e > %.0e",
					tc.name, o.dx, o.dy, o.dz, e, tc.tol)
			}
		}
	}
}

func TestPlaneWaveWorstOffsets(t *testing.T) {
	// The hardest list-2 geometries: minimum separation along the cone axis
	// with maximum lateral offset, and the far corner.
	offsets := []struct{ dx, dy, dz int32 }{
		{2, 2, 2}, {3, 3, 3}, {3, 3, 2}, {-3, 2, 3}, {1, 1, 2}, {-1, 1, -2},
		{0, 3, 2}, {2, -1, 0},
	}
	for _, tc := range kernels(t) {
		for _, o := range offsets {
			if _, ok := geom.DirectionOf(o.dx, o.dy, o.dz); !ok {
				continue
			}
			if e := runPW(t, tc.k, 2, 0.25, o.dx, o.dy, o.dz, 17); e > tc.tol {
				t.Errorf("%s: offset (%d,%d,%d) rel err %.2e > %.0e",
					tc.name, o.dx, o.dy, o.dz, e, tc.tol)
			}
		}
	}
}

func TestPlaneWaveMergeAtParent(t *testing.T) {
	// Merge-and-shift validity: the waves of all children of a source
	// parent, shifted to the parent center and summed, must equal the sum of
	// the individual waves for any target in the cone of every child.
	for _, tc := range kernels(t) {
		rng := rand.New(rand.NewSource(19))
		level := 3
		side := 1.0 / 8 // level-3 box side of the unit domain
		parent := geom.Point{X: 0.5, Y: 0.5, Z: 0.5}
		xm := make([]complex128, tc.k.ISize(level))
		var allS []geom.Point
		var allQ []float64
		for o := 0; o < 8; o++ {
			cc := parent.Add(geom.Point{
				X: side / 2 * float64(2*(o&1)-1),
				Y: side / 2 * float64(2*(o>>1&1)-1),
				Z: side / 2 * float64(2*(o>>2&1)-1),
			})
			spts := randBox(rng, cc, side, 12)
			q := randCharges(rng, 12)
			m := make([]complex128, tc.k.MLSize())
			tc.k.S2M(cc, spts, q, m)
			x := make([]complex128, tc.k.ISize(level))
			tc.k.M2I(geom.Up, level, m, x)
			// Merge into the parent-centered wave.
			tc.k.I2I(geom.Up, level, parent.Sub(cc), x, xm)
			allS = append(allS, spts...)
			allQ = append(allQ, q...)
		}
		// A target box three child-boxes up from the upper children is in
		// the Up cone of every child (dz = 3 or 4, lateral <= 1).
		tcn := parent.Add(geom.Point{X: side / 2, Y: -side / 2, Z: side/2 + 3*side})
		tpts := randBox(rng, tcn, side, 15)
		xr := make([]complex128, tc.k.ISize(level))
		tc.k.I2I(geom.Up, level, tcn.Sub(parent), xm, xr)
		l := make([]complex128, tc.k.MLSize())
		tc.k.I2L(geom.Up, level, xr, l)
		pot := make([]float64, len(tpts))
		tc.k.L2T(tcn, l, tpts, pot)
		want := direct(tc.k, allS, allQ, tpts)
		if e := relErr(pot, want); e > tc.tol {
			t.Errorf("%s: merged wave rel err %.2e > %.0e", tc.name, e, tc.tol)
		}
	}
}

func TestPlaneWaveShiftComposition(t *testing.T) {
	// I2I(a+b) must equal I2I(a) followed by I2I(b): the translations are
	// exact group actions on the wave coefficients.
	for _, tc := range kernels(t) {
		level := 2
		rng := rand.New(rand.NewSource(23))
		x := make([]complex128, tc.k.ISize(level))
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		a := geom.Point{X: 0.1, Y: -0.05, Z: 0.2}
		b := geom.Point{X: -0.02, Y: 0.07, Z: 0.15}
		oneShot := make([]complex128, len(x))
		tc.k.I2I(geom.Up, level, a.Add(b), x, oneShot)
		step1 := make([]complex128, len(x))
		tc.k.I2I(geom.Up, level, a, x, step1)
		step2 := make([]complex128, len(x))
		tc.k.I2I(geom.Up, level, b, step1, step2)
		for i := range x {
			if cAbs(oneShot[i]-step2[i]) > 1e-10*(1+cAbs(oneShot[i])) {
				t.Fatalf("%s: shift composition violated at %d: %v vs %v",
					tc.name, i, oneShot[i], step2[i])
			}
		}
	}
}

func TestYukawaISizeVariesWithDepth(t *testing.T) {
	// Scale variance: the Yukawa intermediate expansion length depends on
	// the level (paper, Section V-A), while Laplace's does not.
	p := OrderForDigits(3)
	yuk := NewYukawa(p, 40)
	yuk.Prepare(1.0, 6)
	lap := NewLaplace(p)
	lap.Prepare(1.0, 6)
	if yuk.ISize(0) == yuk.ISize(6) {
		t.Errorf("yukawa ISize constant across levels: %d", yuk.ISize(0))
	}
	if lap.ISize(0) != lap.ISize(6) {
		t.Errorf("laplace ISize varies: %d vs %d", lap.ISize(0), lap.ISize(6))
	}
}

func TestPlaneWaveLevelConsistency(t *testing.T) {
	// The same physical configuration must give the same answer whether the
	// boxes are treated as level-2 or level-3 boxes (with sides to match).
	for _, tc := range kernels(t) {
		e2 := runPW(t, tc.k, 2, 0.25, 2, 1, 0, 29)
		e3 := runPW(t, tc.k, 3, 0.125, 2, 1, 0, 29)
		if e2 > tc.tol || e3 > tc.tol {
			t.Errorf("%s: level consistency errs %.2e / %.2e", tc.name, e2, e3)
		}
	}
}

func TestDirectionOfCoversList2(t *testing.T) {
	// Every well-separated same-level offset within the interaction range
	// must classify into exactly one direction cone.
	for dx := int32(-3); dx <= 3; dx++ {
		for dy := int32(-3); dy <= 3; dy++ {
			for dz := int32(-3); dz <= 3; dz++ {
				ws := dx > 1 || dx < -1 || dy > 1 || dy < -1 || dz > 1 || dz < -1
				_, ok := geom.DirectionOf(dx, dy, dz)
				if ws && !ok {
					t.Errorf("list-2 offset (%d,%d,%d) has no direction", dx, dy, dz)
				}
				if !ws && ok {
					t.Errorf("near offset (%d,%d,%d) classified", dx, dy, dz)
				}
			}
		}
	}
}

func TestRotationsAreOrthogonal(t *testing.T) {
	dirs := []geom.Direction{geom.Up, geom.Down, geom.North, geom.South, geom.East, geom.West}
	v := geom.Point{X: 0.3, Y: -0.7, Z: 1.1}
	for _, d := range dirs {
		r := d.RotateToUp(v)
		if math.Abs(r.Norm()-v.Norm()) > 1e-14 {
			t.Errorf("%v: rotation changes length", d)
		}
		back := d.RotateFromUp(r)
		if back.Sub(v).Norm() > 1e-14 {
			t.Errorf("%v: RotateFromUp does not invert RotateToUp", d)
		}
		// The direction axis must map to +z.
		axis := geom.Point{}
		switch d.Axis() {
		case 0:
			axis.X = float64(d.Sign())
		case 1:
			axis.Y = float64(d.Sign())
		case 2:
			axis.Z = float64(d.Sign())
		}
		up := d.RotateToUp(axis)
		if up.Sub(geom.Point{Z: 1}).Norm() > 1e-14 {
			t.Errorf("%v: axis %v maps to %v, want +z", d, axis, up)
		}
	}
}
