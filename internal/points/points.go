// Package points generates the source and target ensembles used by the
// paper's experiments: points distributed uniformly in a cube and uniformly
// on the surface of a sphere. A Plummer model is included as a common
// astrophysics extension. All generators are deterministic for a given seed.
package points

import (
	"math"
	"math/rand"

	"repro/internal/geom"
)

// Distribution names a point distribution.
type Distribution int

// Supported distributions.
const (
	Cube Distribution = iota
	Sphere
	Plummer
)

func (d Distribution) String() string {
	switch d {
	case Cube:
		return "cube"
	case Sphere:
		return "sphere"
	case Plummer:
		return "plummer"
	default:
		return "unknown"
	}
}

// Generate returns n points drawn from the distribution with the given seed.
// Cube fills the unit cube [0,1)^3; Sphere places points uniformly on the
// surface of the sphere of radius 0.5 centered at (0.5,0.5,0.5); Plummer
// draws from a Plummer sphere with scale radius 0.1 clipped to the unit
// cube around its center.
func Generate(d Distribution, n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	switch d {
	case Cube:
		for i := range pts {
			pts[i] = geom.Point{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		}
	case Sphere:
		for i := range pts {
			pts[i] = onSphere(rng, geom.Point{X: 0.5, Y: 0.5, Z: 0.5}, 0.5)
		}
	case Plummer:
		for i := range pts {
			pts[i] = plummer(rng, geom.Point{X: 0.5, Y: 0.5, Z: 0.5}, 0.1)
		}
	default:
		panic("points: unknown distribution")
	}
	return pts
}

// onSphere draws a point uniformly from the sphere surface of the given
// center and radius using the Archimedes cylinder projection.
func onSphere(rng *rand.Rand, c geom.Point, r float64) geom.Point {
	z := 2*rng.Float64() - 1
	phi := 2 * math.Pi * rng.Float64()
	s := math.Sqrt(1 - z*z)
	return geom.Point{
		X: c.X + r*s*math.Cos(phi),
		Y: c.Y + r*s*math.Sin(phi),
		Z: c.Z + r*z,
	}
}

// plummer draws a point from a Plummer sphere of scale radius a, rejecting
// samples that fall outside the unit cube around the center so the domain
// stays bounded.
func plummer(rng *rand.Rand, c geom.Point, a float64) geom.Point {
	for {
		// Inverse-CDF radius for the Plummer cumulative mass profile.
		m := rng.Float64()
		if m >= 0.999 {
			continue // clip the unbounded tail
		}
		r := a / math.Sqrt(math.Pow(m, -2.0/3.0)-1)
		p := onSphere(rng, c, r)
		if p.X >= c.X-0.5 && p.X < c.X+0.5 &&
			p.Y >= c.Y-0.5 && p.Y < c.Y+0.5 &&
			p.Z >= c.Z-0.5 && p.Z < c.Z+0.5 {
			return p
		}
	}
}

// Charges returns n deterministic charges in [-1, 1) with the given seed.
// The paper evaluates potentials due to unit-style charges; signed charges
// exercise cancellation in the accuracy tests.
func Charges(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	q := make([]float64, n)
	for i := range q {
		q[i] = 2*rng.Float64() - 1
	}
	return q
}

// UnitCharges returns n charges all equal to one.
func UnitCharges(n int) []float64 {
	q := make([]float64, n)
	for i := range q {
		q[i] = 1
	}
	return q
}
