// Package atomicfield is a fixture for the atomicfield analyzer.
package atomicfield

import "sync/atomic"

type stats struct {
	hits  int64 // accessed via atomic.AddInt64/LoadInt64
	typed atomic.Int64
	slots []int64 // elements accessed via sync/atomic
	plain int64   // never touched atomically
}

// inc establishes hits as an address-taken atomic: sanctioned access.
func (s *stats) inc() {
	atomic.AddInt64(&s.hits, 1)
}

// readOK loads atomically: a true negative.
func (s *stats) readOK() int64 {
	return atomic.LoadInt64(&s.hits)
}

// readBad does a plain read of the atomically-written counter: true
// positive.
func (s *stats) readBad() int64 {
	return s.hits // want "races"
}

// readSuppressed is the same plain read with a justified suppression.
func (s *stats) readSuppressed() int64 {
	//lint:ignore atomicfield report path runs after all writers joined
	return s.hits
}

// plainOK reads a field that is never accessed atomically: true negative.
func (s *stats) plainOK() int64 {
	s.plain++
	return s.plain
}

// typedOK calls a method on the typed atomic: true negative.
func (s *stats) typedOK() int64 {
	return s.typed.Load()
}

// typedBad copies the typed atomic by value: true positive.
func (s *stats) typedBad() int64 {
	v := s.typed // want "copies its value"
	_ = v
	return 0
}

// elemAtomic establishes slots as an element-atomic field.
func (s *stats) elemAtomic(i int) int64 {
	return atomic.LoadInt64(&s.slots[i])
}

// elemBad stores a slot element plainly: true positive.
func (s *stats) elemBad(i int) {
	s.slots[i] = 0 // want "element"
}

// lenOK reads the immutable slice header, not an element: true negative.
func (s *stats) lenOK() int {
	return len(s.slots)
}
