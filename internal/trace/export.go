package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// The paper's evaluation used "a mild modification of ... DASHMM that added
// the ability to trace DASHMM execution events". This file is that
// facility's serialization: traces are written as JSON lines so external
// tooling (or a later analysis run) can consume them.

// WriteJSON writes the events as one JSON object per line. Every line,
// including the last, is newline-terminated; ReadJSON relies on that to
// detect truncated files.
func WriteJSON(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSON reads events written by WriteJSON.
//
// A trace file cut short (an interrupted writer, a partial copy) ends in a
// line that is either incomplete JSON or missing its terminating newline.
// Both cases return the successfully parsed prefix together with an error
// wrapping io.ErrUnexpectedEOF, instead of silently dropping the tail and
// reporting success: a truncated trace skews every downstream analysis
// (utilization span, per-class averages) and must be visible to the caller.
// Callers that can live with a partial trace may keep the returned events
// when errors.Is(err, io.ErrUnexpectedEOF).
func ReadJSON(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	var out []Event
	for line := 1; ; line++ {
		raw, err := br.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return out, err
		}
		complete := err == nil // saw the terminating newline
		if !complete && len(trimSpace(raw)) == 0 {
			return out, nil // clean EOF (or trailing whitespace only)
		}
		var ev Event
		if uerr := json.Unmarshal(raw, &ev); uerr != nil {
			if !complete {
				// Partial final line: the writer was cut off mid-record.
				return out, fmt.Errorf("trace: truncated event on line %d: %w", line, io.ErrUnexpectedEOF)
			}
			return out, fmt.Errorf("trace: malformed event on line %d: %w", line, uerr)
		}
		if !complete {
			// The line parses but lacks its newline: WriteJSON terminates
			// every record, so the file was still truncated — the record
			// may itself be a cut-down prefix of a longer one (e.g. a
			// number losing trailing digits still decodes). Keep it, but
			// tell the caller the file is incomplete.
			out = append(out, ev)
			return out, fmt.Errorf("trace: unterminated final event on line %d: %w", line, io.ErrUnexpectedEOF)
		}
		out = append(out, ev)
	}
}

// trimSpace returns b without leading/trailing JSON whitespace.
func trimSpace(b []byte) []byte {
	for len(b) > 0 && isSpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && isSpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }
