// Plane-wave ("intermediate", I) expansions for the merge-and-shift FMM.
//
// For a target strictly above a source (z_t - z_s >= z_min in box units) the
// kernels admit exponential integral representations:
//
//	Laplace:  1/r        = int_0^inf e^{-u z} J0(u rho) du
//	Yukawa:   e^{-kr}/r  = int_0^inf u/mu e^{-mu z} J0(u rho) du,  mu = sqrt(u^2+k^2)
//
// with J0(u rho) = (1/M) sum_j e^{i u (x cos a_j + y sin a_j)} by the
// trapezoid rule. Discretizing u with mapped Gauss–Legendre quadrature gives
// the directional plane-wave expansion
//
//	X[k,j] = sum_s q_s e^{+mu_k zeta_s} e^{-i u_k (xi_s cos a_j + eta_s sin a_j)}
//
// about the box center, where (xi, eta, zeta) are source coordinates rotated
// so the expansion direction plays the role of +z. Translating X to a new
// center is a pointwise multiply (the paper's cheap, numerous I->I edge);
// M->I and I->L are dense matrices precomputed per (direction, level) by
// projecting the plane-wave basis functions — which satisfy the same PDE as
// the kernel — onto the spherical-harmonic basis (see DESIGN.md for why
// this substitutes for the Yarvin–Rokhlin generalized quadratures).
//
// The quadrature is generated in box units (z in [1, 4], rho <= 4*sqrt(2))
// and rescaled per tree level; for the scale-variant Yukawa kernel the
// number of terms depends on kappa*side and hence on the level, reproducing
// the depth-dependent I-expansion length noted in the paper.
package kernel

import (
	"math"
	"math/cmplx"
	"sync"

	"repro/internal/geom"
	"repro/internal/sphharm"
)

// pwRule is a plane-wave quadrature in world units for one tree level.
type pwRule struct {
	u     []float64 // radial (oscillation) frequencies
	mu    []float64 // decay rates (Laplace: mu = u)
	w     []float64 // weights, including the u/mu factor for Yukawa
	m     []int     // alpha nodes per u-node
	off   []int     // start of the k-th block of coefficients
	total int       // sum of m: complex coefficients per direction
	cosA  [][]float64
	sinA  [][]float64
}

// pwGenParams tunes the quadrature generation; exercised by the ablation
// benchmarks.
type pwGenParams struct {
	umax   float64 // box-unit integration cutoff (Laplace)
	nu     int     // number of Gauss–Legendre u-nodes (Laplace)
	alphaC float64 // alpha count: m_k = ceil(alphaC * u_k * rhoMax) + alphaB
	alphaB int
}

var defaultPWParams = pwGenParams{umax: 13, nu: 20, alphaC: 1.0, alphaB: 10}

const pwRhoMax = 5.657 // 4*sqrt(2): max lateral offset in box units

// makeRule assembles a rule from box-unit nodes (uh, muh, wh) for boxes of
// the given world side.
func makeRule(uh, muh, wh []float64, side float64, prm pwGenParams) *pwRule {
	r := &pwRule{
		u:  make([]float64, len(uh)),
		mu: make([]float64, len(uh)),
		w:  make([]float64, len(uh)),
		m:  make([]int, len(uh)),
	}
	for k := range uh {
		r.u[k] = uh[k] / side
		r.mu[k] = muh[k] / side
		r.w[k] = wh[k] / side
		mk := int(math.Ceil(prm.alphaC*uh[k]*pwRhoMax)) + prm.alphaB
		r.m[k] = mk
		r.off = append(r.off, r.total)
		r.total += mk
		ca := make([]float64, mk)
		sa := make([]float64, mk)
		for j := 0; j < mk; j++ {
			a := 2 * math.Pi * float64(j) / float64(mk)
			ca[j] = math.Cos(a)
			sa[j] = math.Sin(a)
		}
		r.cosA = append(r.cosA, ca)
		r.sinA = append(r.sinA, sa)
	}
	return r
}

// laplaceNodes returns box-unit Gauss–Legendre nodes for the Laplace
// exponential integral on [0, umax].
func laplaceNodes(prm pwGenParams) (u, mu, w []float64) {
	xs, ws := sphharm.GaussLegendre(prm.nu)
	u = make([]float64, prm.nu)
	mu = make([]float64, prm.nu)
	w = make([]float64, prm.nu)
	for k := range xs {
		u[k] = prm.umax * (xs[k] + 1) / 2
		mu[k] = u[k]
		w[k] = ws[k] * prm.umax / 2
	}
	return u, mu, w
}

// yukawaNodes returns box-unit nodes for the Sommerfeld integral with
// kappa*side = x. The cutoff adapts to x: the tail is negligible once
// e^{-mu z_min} is below eps relative to the leading e^{-x} scale, so
// umax = sqrt((x+umax0)^2 - x^2); fewer oscillations are needed for large
// x, which is the scale variance the paper exploits.
func yukawaNodes(x float64, prm pwGenParams) (u, mu, w []float64) {
	umax := math.Sqrt((x+prm.umax)*(x+prm.umax) - x*x)
	nu := prm.nu
	if grow := umax / prm.umax; grow > 1 {
		nu = int(math.Ceil(float64(prm.nu) * grow))
	}
	xs, ws := sphharm.GaussLegendre(nu)
	u = make([]float64, nu)
	mu = make([]float64, nu)
	w = make([]float64, nu)
	for k := range xs {
		uk := umax * (xs[k] + 1) / 2
		muk := math.Sqrt(uk*uk + x*x)
		u[k] = uk
		mu[k] = muk
		w[k] = ws[k] * umax / 2 * uk / muk
	}
	return u, mu, w
}

// pwTables holds, per tree level, the quadrature rule and the lazily built
// M->I and I->L matrices for each of the six directions.
type pwTables struct {
	b      *base
	levels []*pwLevel
}

type pwLevel struct {
	rule *pwRule
	side float64
	once [geom.NumDirections]sync.Once
	m2i  [geom.NumDirections][]complex128 // total x sq, row-major per coefficient
	i2l  [geom.NumDirections][]complex128 // sq x total, weights folded in
}

func (b *base) preparePW(rootSide float64, maxLevel int) {
	t := &pwTables{b: b}
	for l := 0; l <= maxLevel; l++ {
		side := rootSide / float64(int64(1)<<uint(l))
		uh, muh, wh := b.pwNodes(side)
		lv := &pwLevel{
			rule: makeRule(uh, muh, wh, side, b.pwParams),
			side: side,
		}
		b.adoptPendingPW(lv)
		t.levels = append(t.levels, lv)
	}
	b.pw = t
}

// adoptPendingPW installs imported plane-wave matrices (ImportOperators)
// whose side matches this level bit-exactly and whose sizes match the
// level's quadrature rule — a record from different accuracy settings must
// not corrupt the tables. An adopted direction trips its once so matrices()
// never rebuilds it.
func (b *base) adoptPendingPW(lv *pwLevel) {
	if len(b.pwPending) == 0 {
		return
	}
	sq := sphharm.SqSize(b.p)
	sideBits := math.Float64bits(lv.side)
	for dir := geom.Direction(0); dir < geom.NumDirections; dir++ {
		m2i := b.pwPending[xlKey{kind: pwM2IKind, sideBits: sideBits, ox: int8(dir)}]
		i2l := b.pwPending[xlKey{kind: pwI2LKind, sideBits: sideBits, ox: int8(dir)}]
		if len(m2i) != lv.rule.total*sq || len(i2l) != sq*lv.rule.total {
			continue
		}
		lv.m2i[dir], lv.i2l[dir] = m2i, i2l
		lv.once[dir].Do(func() {})
	}
}

func (t *pwTables) level(l int) *pwLevel {
	return t.levels[l]
}

// matrices returns the M->I and I->L matrices for (dir, level), building
// them on first use.
func (t *pwTables) matrices(dir geom.Direction, l int) (m2i, i2l []complex128) {
	lv := t.level(l)
	lv.once[dir].Do(func() { t.build(dir, lv) })
	return lv.m2i[dir], lv.i2l[dir]
}

// build constructs both matrices by projecting the plane-wave basis
// functions onto the spherical-harmonic basis on a sphere of radius
// 0.9*side (enclosing every in-box point) about the box center.
func (t *pwTables) build(dir geom.Direction, lv *pwLevel) {
	b := t.b
	p := b.p
	sq := sphharm.SqSize(p)
	r := lv.rule
	a := 0.9 * lv.side
	radA := make([]float64, p+1)
	b.radReg(a, radA)

	m2i := make([]complex128, r.total*sq)
	i2l := make([]complex128, sq*r.total)
	// Per-coefficient work buffers.
	gOut := make([]complex128, len(b.sph)) // outgoing basis g at sphere nodes
	gIn := make([]complex128, len(b.sph))  // incoming basis E at sphere nodes
	coef := make([]complex128, sq)

	for k := range r.u {
		for j := 0; j < r.m[k]; j++ {
			tcoef := r.off[k] + j
			// Evaluate both basis functions at the sphere nodes.
			for q, n := range b.sph {
				v := dir.RotateToUp(n.dir.Scale(a))
				ph := r.u[k] * (v.X*r.cosA[k][j] + v.Y*r.sinA[k][j])
				// Outgoing: e^{+mu zeta - i u (.)} ; incoming: e^{-mu zeta + i u (.)}.
				e := math.Exp(r.mu[k] * v.Z)
				gOut[q] = complex(e*math.Cos(ph), -e*math.Sin(ph))
				gIn[q] = complex(math.Cos(ph)/e, math.Sin(ph)/e)
			}
			// M->I row: X[t] = sum_nm (gcoef_{n,-m} / c_n) M[n,m].
			projectSphere(b, gOut, radA, coef)
			row := m2i[tcoef*sq : (tcoef+1)*sq]
			for n := 0; n <= p; n++ {
				for m := -n; m <= n; m++ {
					row[sphharm.SqIndex(n, m)] = coef[sphharm.SqIndex(n, -m)] / complex(b.cn[n], 0)
				}
			}
			// I->L column: L[n,m] += (w_k / M_k) Ecoef_{n,m} X[t].
			projectSphere(b, gIn, radA, coef)
			wk := complex(r.w[k]/float64(r.m[k]), 0)
			for idx := 0; idx < sq; idx++ {
				i2l[idx*r.total+tcoef] = wk * coef[idx]
			}
		}
	}
	lv.m2i[dir] = m2i
	lv.i2l[dir] = i2l
}

// projectSphere computes coef[n,m] = (sum_q w_q f(q) conj(Y_nm(q))) / rad[n]
// from samples f at the base's sphere nodes.
func projectSphere(b *base, f []complex128, rad []float64, coef []complex128) {
	sq := sphharm.SqSize(b.p)
	for i := range coef {
		coef[i] = 0
	}
	for q, n := range b.sph {
		fw := f[q] * complex(n.w, 0)
		for idx := 0; idx < sq; idx++ {
			coef[idx] += fw * cmplx.Conj(n.y[idx])
		}
	}
	for nn := 0; nn <= b.p; nn++ {
		inv := complex(1/rad[nn], 0)
		for m := -nn; m <= nn; m++ {
			coef[sphharm.SqIndex(nn, m)] *= inv
		}
	}
}

// ISize implements Kernel.
func (b *base) ISize(level int) int { return b.pw.level(level).rule.total }

// M2I implements Kernel: out[t] += sum_idx A[t, idx] in[idx].
func (b *base) M2I(dir geom.Direction, level int, in, out []complex128) {
	m2i, _ := b.pw.matrices(dir, level)
	sq := len(in)
	for t := range out {
		row := m2i[t*sq : (t+1)*sq]
		var acc complex128
		for idx, mv := range in {
			acc += row[idx] * mv
		}
		out[t] += acc
	}
}

// I2I implements Kernel: the diagonal translation out[t] += in[t]*E_t(shift).
// shift is the world-frame vector from the old center to the new center.
func (b *base) I2I(dir geom.Direction, level int, shift geom.Point, in, out []complex128) {
	r := b.pw.level(level).rule
	v := dir.RotateToUp(shift)
	for k := range r.u {
		// Outgoing expansions about c satisfy X_{c'}[t] = X_c[t] * E_t(c'-c)
		// with E_t(v) = e^{-mu zeta + i u (xi cos a + eta sin a)}.
		e := math.Exp(-r.mu[k] * v.Z)
		base := r.off[k]
		for j := 0; j < r.m[k]; j++ {
			ph := r.u[k] * (v.X*r.cosA[k][j] + v.Y*r.sinA[k][j])
			f := complex(e*math.Cos(ph), e*math.Sin(ph))
			out[base+j] += in[base+j] * f
		}
	}
}

// I2L implements Kernel: out[n,m] += sum_t B[(n,m), t] in[t].
func (b *base) I2L(dir geom.Direction, level int, in, out []complex128) {
	_, i2l := b.pw.matrices(dir, level)
	total := len(in)
	for idx := range out {
		row := i2l[idx*total : (idx+1)*total]
		var acc complex128
		for t, xv := range in {
			acc += row[t] * xv
		}
		out[idx] += acc
	}
}
