package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// WireProto statically verifies encoder/decoder field coverage for the
// repository's framed wire formats. A codec declares itself with a pair of
// annotations on the two functions:
//
//	//dashmm:wire <pair> encode <SubjectType>
//	//dashmm:wire <pair> decode <SubjectType>
//
// The checker walks each side's body in source order — following calls to
// helpers in the repository, so nested appendX/readX encoders count — and
// records every field access of the subject type and of any module-internal
// struct type reachable from it through fields, slices, maps and pointers.
// The two sides must then agree per type: a field touched by encode but
// never by decode (or vice versa) is a lost wire field, and fields common
// to both sides must appear in the same first-occurrence order, since a
// manual binary codec's field order IS its byte layout.
//
// A subject (or nested) type handled by encoding/json on both sides is
// exempt from ordering — JSON is self-describing — but its struct tags are
// checked for duplicate effective keys, and a type json-marshaled on one
// side but hand-decoded (or ignored) on the other is reported: that is the
// exact shape of a silent cross-version corruption.
type WireProto struct {
	sides     map[string][]*wpSide
	pairOrder []string
	index     map[string]*wpIndexed
}

// NewWireProto returns the wireproto analyzer.
func NewWireProto() *WireProto { return &WireProto{} }

// Name implements Analyzer.
func (*WireProto) Name() string { return "wireproto" }

// Doc implements Analyzer.
func (*WireProto) Doc() string {
	return "encoder/decoder pairs annotated //dashmm:wire must cover the same fields in the same order"
}

// wpIndexed is one function body available for helper traversal.
type wpIndexed struct {
	p  *Pass
	fn *ast.FuncDecl
}

// wpField is one declared struct field of a subject type.
type wpField struct {
	name     string
	tag      string
	exported bool
}

// wpType is one struct type in a subject graph.
type wpType struct {
	key    string // pkgpath.Name
	disp   string // Name
	fields []wpField
}

// wpEvent is one field access, in source order.
type wpEvent struct {
	typ   string
	field string
	pos   token.Position
}

// wpSide is one annotated encode or decode function.
type wpSide struct {
	pair       string
	mode       string // "encode" or "decode"
	subjectKey string
	graph      map[string]*wpType
	graphOrder []string
	fnKey      string
	fnName     string
	pos        token.Position
	events     []wpEvent
	jsonOn     map[string]token.Position
}

// Run implements Analyzer: index every function body (for helper
// traversal) and collect the //dashmm:wire annotations. Event collection
// waits for Finish, when helpers from every package are indexed.
func (c *WireProto) Run(p *Pass) {
	if c.index == nil {
		c.index = map[string]*wpIndexed{}
		c.sides = map[string][]*wpSide{}
	}
	walkFuncs(p, func(_ *ast.File, fn *ast.FuncDecl) {
		obj, ok := p.Info.Defs[fn.Name].(*types.Func)
		if !ok {
			return
		}
		c.index[loFuncKey(obj)] = &wpIndexed{p: p, fn: fn}

		rest, ok := funcHasDirective(fn, "dashmm:wire")
		if !ok {
			return
		}
		fields := strings.Fields(rest)
		if len(fields) < 3 {
			p.Report(fn.Pos(), "malformed //dashmm:wire %q: want \"<pair> <encode|decode> <SubjectType>\"", rest)
			return
		}
		pair, mode, typeName := fields[0], fields[1], fields[2]
		if mode != "encode" && mode != "decode" {
			p.Report(fn.Pos(), "//dashmm:wire mode %q: want \"encode\" or \"decode\"", mode)
			return
		}
		named, st := lookupNamed(p.Pkg, typeName)
		if named == nil || st == nil {
			p.Report(fn.Pos(), "//dashmm:wire names unknown struct type %q in package %s", typeName, p.Pkg.Path())
			return
		}
		side := &wpSide{
			pair:       pair,
			mode:       mode,
			subjectKey: wpTypeKey(named),
			fnKey:      loFuncKey(obj),
			fnName:     funcName(fn),
			pos:        p.Fset.Position(fn.Pos()),
			jsonOn:     map[string]token.Position{},
		}
		side.graph, side.graphOrder = wpBuildGraph(named)
		if c.sides[pair] == nil {
			c.pairOrder = append(c.pairOrder, pair)
		}
		c.sides[pair] = append(c.sides[pair], side)
	})
}

// wpTypeKey names a type uniquely across packages.
func wpTypeKey(n *types.Named) string {
	pkg := ""
	if n.Obj().Pkg() != nil {
		pkg = n.Obj().Pkg().Path()
	}
	return pkg + "." + n.Obj().Name()
}

// wpBuildGraph returns every module-internal named struct type reachable
// from the root through fields, slice/array/map elements and pointers.
// "Module-internal" means sharing the root package path's first segment,
// which keeps time.Time and friends out of coverage.
func wpBuildGraph(root *types.Named) (map[string]*wpType, []string) {
	module := ""
	if root.Obj().Pkg() != nil {
		module, _, _ = strings.Cut(root.Obj().Pkg().Path(), "/")
	}
	graph := map[string]*wpType{}
	var order []string
	var add func(n *types.Named)
	var visit func(t types.Type)
	visit = func(t types.Type) {
		switch u := t.(type) {
		case *types.Pointer:
			visit(u.Elem())
		case *types.Slice:
			visit(u.Elem())
		case *types.Array:
			visit(u.Elem())
		case *types.Map:
			visit(u.Key())
			visit(u.Elem())
		case *types.Named:
			add(u)
		case *types.Alias:
			visit(types.Unalias(u))
		}
	}
	add = func(n *types.Named) {
		pkg := ""
		if n.Obj().Pkg() != nil {
			pkg, _, _ = strings.Cut(n.Obj().Pkg().Path(), "/")
		}
		if pkg != module {
			return
		}
		st, ok := n.Underlying().(*types.Struct)
		if !ok {
			return
		}
		key := wpTypeKey(n)
		if graph[key] != nil {
			return
		}
		wt := &wpType{key: key, disp: n.Obj().Name()}
		graph[key] = wt
		order = append(order, key)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			wt.fields = append(wt.fields, wpField{name: f.Name(), tag: st.Tag(i), exported: f.Exported()})
			visit(f.Type())
		}
	}
	add(root)
	return graph, order
}

// collect walks one side's function body, following static calls to
// indexed (repository) functions, and records subject-graph field accesses
// and json.Marshal/Unmarshal usage in source order.
func (c *WireProto) collect(side *wpSide) {
	visited := map[string]bool{}
	var walk func(ix *wpIndexed, depth int)
	walk = func(ix *wpIndexed, depth int) {
		if depth > 8 {
			return
		}
		ast.Inspect(ix.fn.Body, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.SelectorExpr:
				sel := ix.p.Info.Selections[t]
				if sel == nil || sel.Kind() != types.FieldVal {
					return true
				}
				recv := namedOf(sel.Recv())
				if recv == nil {
					return true
				}
				if wt := side.graph[wpTypeKey(recv)]; wt != nil {
					side.events = append(side.events, wpEvent{
						typ: wt.key, field: t.Sel.Name, pos: ix.p.Fset.Position(t.Sel.Pos()),
					})
				}
			case *ast.CompositeLit:
				tv, ok := ix.p.Info.Types[t]
				if !ok {
					return true
				}
				named := namedOf(tv.Type)
				if named == nil {
					return true
				}
				wt := side.graph[wpTypeKey(named)]
				if wt == nil {
					return true
				}
				keyed := false
				for _, el := range t.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						keyed = true
						if id, ok := kv.Key.(*ast.Ident); ok {
							side.events = append(side.events, wpEvent{
								typ: wt.key, field: id.Name, pos: ix.p.Fset.Position(kv.Key.Pos()),
							})
						}
					}
				}
				if !keyed && len(t.Elts) > 0 {
					// A positional literal touches every field in order.
					for _, f := range wt.fields {
						side.events = append(side.events, wpEvent{
							typ: wt.key, field: f.name, pos: ix.p.Fset.Position(t.Pos()),
						})
					}
				}
			case *ast.CallExpr:
				if c.noteJSON(side, ix, t) {
					return true
				}
				if callee := wpStaticCallee(ix.p, t); callee != nil {
					key := loFuncKey(callee)
					if ix2 := c.index[key]; ix2 != nil && !visited[key] {
						visited[key] = true
						walk(ix2, depth+1)
					}
				}
			}
			return true
		})
	}
	if ix := c.index[side.fnKey]; ix != nil {
		visited[side.fnKey] = true
		walk(ix, 0)
	}
}

// noteJSON records json.Marshal/Unmarshal applied to a subject-graph type.
func (c *WireProto) noteJSON(side *wpSide, ix *wpIndexed, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := ix.p.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "encoding/json" {
		return false
	}
	if sel.Sel.Name != "Marshal" && sel.Sel.Name != "Unmarshal" &&
		sel.Sel.Name != "MarshalIndent" {
		return false
	}
	for _, arg := range call.Args {
		e := arg
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = u.X
		}
		tv, ok := ix.p.Info.Types[e]
		if !ok {
			continue
		}
		n := namedOf(tv.Type)
		if n == nil {
			continue
		}
		key := wpTypeKey(n)
		if side.graph[key] != nil {
			if _, seen := side.jsonOn[key]; !seen {
				side.jsonOn[key] = ix.p.Fset.Position(call.Pos())
			}
		}
	}
	return true
}

func wpStaticCallee(p *Pass, t *ast.CallExpr) *types.Func {
	switch f := t.Fun.(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel := p.Info.Selections[f]; sel != nil {
			if sel.Kind() == types.MethodVal {
				fn, _ := sel.Obj().(*types.Func)
				return fn
			}
			return nil
		}
		fn, _ := p.Info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// Finish implements Finisher: pair up the annotated sides and compare
// field coverage and order per subject-graph type.
func (c *WireProto) Finish() []Diagnostic {
	var out []Diagnostic
	pairs := append([]string(nil), c.pairOrder...)
	sort.Strings(pairs)
	for _, pair := range pairs {
		var enc, dec *wpSide
		for _, s := range c.sides[pair] {
			switch {
			case s.mode == "encode" && enc == nil:
				enc = s
			case s.mode == "decode" && dec == nil:
				dec = s
			default:
				out = append(out, Diagnostic{
					Check: c.Name(), Pos: s.pos,
					Message: fmt.Sprintf("wire pair %q has more than one %s function", pair, s.mode),
				})
			}
		}
		if enc == nil || dec == nil {
			present := enc
			missing := "decode"
			if present == nil {
				present, missing = dec, "encode"
			}
			out = append(out, Diagnostic{
				Check: c.Name(), Pos: present.pos,
				Message: fmt.Sprintf("wire pair %q has no %s function", pair, missing),
			})
			continue
		}
		if enc.subjectKey != dec.subjectKey {
			out = append(out, Diagnostic{
				Check: c.Name(), Pos: dec.pos,
				Message: fmt.Sprintf("wire pair %q: encode subject %s but decode subject %s",
					pair, enc.subjectKey, dec.subjectKey),
			})
			continue
		}
		c.collect(enc)
		c.collect(dec)
		for _, tk := range enc.graphOrder {
			out = append(out, c.compareType(pair, enc.graph[tk], enc, dec)...)
		}
	}
	return out
}

// compareType checks one subject-graph type across the two sides.
func (c *WireProto) compareType(pair string, wt *wpType, enc, dec *wpSide) []Diagnostic {
	_, encJSON := enc.jsonOn[wt.key]
	_, decJSON := dec.jsonOn[wt.key]
	encF := wpFirstOccurrence(enc.events, wt.key)
	decF := wpFirstOccurrence(dec.events, wt.key)

	switch {
	case encJSON && decJSON:
		return c.dupTagDiags(wt, enc)
	case encJSON && !decJSON:
		if len(decF) == 0 && !wpAnySideEvents(dec, wt.key) {
			return []Diagnostic{{
				Check: c.Name(), Pos: dec.pos,
				Message: fmt.Sprintf("wire pair %q: %s is json-encoded by %s but never read by decode %s",
					pair, wt.disp, enc.fnName, dec.fnName),
			}}
		}
		return []Diagnostic{{
			Check: c.Name(), Pos: dec.pos,
			Message: fmt.Sprintf("wire pair %q: %s is json-encoded by %s but decoded field-by-field by %s",
				pair, wt.disp, enc.fnName, dec.fnName),
		}}
	case decJSON && !encJSON:
		if len(encF) == 0 {
			return []Diagnostic{{
				Check: c.Name(), Pos: enc.pos,
				Message: fmt.Sprintf("wire pair %q: %s is json-decoded by %s but never written by encode %s",
					pair, wt.disp, dec.fnName, enc.fnName),
			}}
		}
		return []Diagnostic{{
			Check: c.Name(), Pos: enc.pos,
			Message: fmt.Sprintf("wire pair %q: %s is json-decoded by %s but encoded field-by-field by %s",
				pair, wt.disp, dec.fnName, enc.fnName),
		}}
	}

	var out []Diagnostic
	detail := wpLayoutDetail(wt, encF, decF)
	decSet := wpFieldSet(decF)
	encSet := wpFieldSet(encF)
	for _, e := range encF {
		if !decSet[e.field] {
			out = append(out, Diagnostic{
				Check: c.Name(), Pos: e.pos,
				Message: fmt.Sprintf("field %s.%s is written by encode %s but never read by decode %s",
					wt.disp, e.field, enc.fnName, dec.fnName),
				Detail: detail,
			})
		}
	}
	for _, d := range decF {
		if !encSet[d.field] {
			out = append(out, Diagnostic{
				Check: c.Name(), Pos: d.pos,
				Message: fmt.Sprintf("field %s.%s is read by decode %s but never written by encode %s",
					wt.disp, d.field, dec.fnName, enc.fnName),
				Detail: detail,
			})
		}
	}
	// Order check over the fields both sides cover.
	var encC, decC []wpEvent
	for _, e := range encF {
		if decSet[e.field] {
			encC = append(encC, e)
		}
	}
	for _, d := range decF {
		if encSet[d.field] {
			decC = append(decC, d)
		}
	}
	for i := range decC {
		if decC[i].field != encC[i].field {
			out = append(out, Diagnostic{
				Check: c.Name(), Pos: decC[i].pos,
				Message: fmt.Sprintf("decode %s reads %s.%s out of order: encode %s writes [%s], decode reads [%s]",
					dec.fnName, wt.disp, decC[i].field, enc.fnName,
					wpFieldNames(encC), wpFieldNames(decC)),
				Detail: detail,
			})
			break
		}
	}
	return out
}

// dupTagDiags flags exported fields whose effective json keys collide.
func (c *WireProto) dupTagDiags(wt *wpType, enc *wpSide) []Diagnostic {
	var out []Diagnostic
	seen := map[string]string{}
	for _, f := range wt.fields {
		if !f.exported {
			continue
		}
		name := f.name
		if tag := reflect.StructTag(f.tag).Get("json"); tag != "" {
			key, _, _ := strings.Cut(tag, ",")
			if key == "-" {
				continue
			}
			if key != "" {
				name = key
			}
		}
		if prev, dup := seen[name]; dup {
			out = append(out, Diagnostic{
				Check: c.Name(), Pos: enc.pos,
				Message: fmt.Sprintf("duplicate json key %q on %s fields %s and %s",
					name, wt.disp, prev, f.name),
			})
			continue
		}
		seen[name] = f.name
	}
	return out
}

func wpAnySideEvents(s *wpSide, typ string) bool {
	for _, e := range s.events {
		if e.typ == typ {
			return true
		}
	}
	return false
}

func wpFirstOccurrence(events []wpEvent, typ string) []wpEvent {
	var out []wpEvent
	seen := map[string]bool{}
	for _, e := range events {
		if e.typ != typ || seen[e.field] {
			continue
		}
		seen[e.field] = true
		out = append(out, e)
	}
	return out
}

func wpFieldSet(events []wpEvent) map[string]bool {
	s := map[string]bool{}
	for _, e := range events {
		s[e.field] = true
	}
	return s
}

func wpFieldNames(events []wpEvent) string {
	parts := make([]string, len(events))
	for i, e := range events {
		parts[i] = e.field
	}
	return strings.Join(parts, " ")
}

// wpLayoutDetail renders both sides' ordered field paths for -json output.
func wpLayoutDetail(wt *wpType, encF, decF []wpEvent) string {
	line := func(label string, evs []wpEvent) string {
		parts := make([]string, len(evs))
		for i, e := range evs {
			parts[i] = fmt.Sprintf("%s.%s (%s)", wt.disp, e.field, loPos(e.pos))
		}
		return label + ": " + strings.Join(parts, ", ")
	}
	return line("encode", encF) + "\n" + line("decode", decF)
}
