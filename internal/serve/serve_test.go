package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/points"
	"repro/internal/trace"
)

func post(t *testing.T, url string, req Request) (int, *Response, *errorBody) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(url+"/evaluate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode == http.StatusOK {
		var resp Response
		if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
			t.Fatalf("decoding 200 body: %v", err)
		}
		return hr.StatusCode, &resp, nil
	}
	var eb errorBody
	if err := json.NewDecoder(hr.Body).Decode(&eb); err != nil {
		t.Fatalf("decoding %d body: %v", hr.StatusCode, err)
	}
	return hr.StatusCode, nil, &eb
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// Cold vs warm requests: the first request builds the plan (cache miss), the
// second serves from the cache on a pooled runtime, and both match a direct
// core evaluation of the same problem to 1e-12.
func TestServeCacheHitMatchesDirectEvaluation(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := Request{N: 2000, Workers: 1, Localities: 1}
	code, cold, _ := post(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("cold request: HTTP %d", code)
	}
	if cold.Report.CacheHit {
		t.Error("first request reported a cache hit")
	}
	if cold.Report.PlanBuild <= 0 {
		t.Error("cold request reports no plan-build time")
	}

	code, warm, _ := post(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("warm request: HTTP %d", code)
	}
	if !warm.Report.CacheHit {
		t.Error("second identical request missed the cache")
	}
	if !warm.Report.RuntimeReused {
		t.Error("second identical request did not reuse the pooled runtime")
	}
	if warm.Report.PlanBuild != 0 {
		t.Errorf("warm request reports plan-build time %v", warm.Report.PlanBuild)
	}

	// Direct core evaluation of the identical problem, same execution
	// shape: the served potentials must match to 1e-12 (same DAG, same
	// single-worker execution order), and cold must match warm exactly as
	// tightly (cached state fully reset between runs).
	sp := points.Generate(points.Cube, 2000, 1)
	tp := points.Generate(points.Cube, 2000, 2)
	k := kernel.NewLaplace(kernel.OrderForDigits(3))
	plan, err := core.NewPlan(sp, tp, k, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := plan.Evaluate(points.Charges(2000, 3), core.ExecOptions{Localities: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Potentials) != len(want) {
		t.Fatalf("%d potentials, want %d", len(cold.Potentials), len(want))
	}
	for i := range want {
		scale := math.Max(1, math.Abs(want[i]))
		if d := math.Abs(cold.Potentials[i]-want[i]) / scale; d > 1e-12 {
			t.Fatalf("cold potential %d off by %.2e", i, d)
		}
		if d := math.Abs(warm.Potentials[i]-want[i]) / scale; d > 1e-12 {
			t.Fatalf("warm potential %d off by %.2e", i, d)
		}
	}

	m := s.metrics.snapshot(s.cache.len(), nil)
	if m.CacheMisses != 1 || m.CacheHits != 1 {
		t.Errorf("cache counters: %d misses, %d hits, want 1 and 1", m.CacheMisses, m.CacheHits)
	}
	if m.CachedPlans != 1 {
		t.Errorf("cached_plans=%d, want 1", m.CachedPlans)
	}
	if m.RuntimeReuses != 1 {
		t.Errorf("runtime_reuses=%d, want 1", m.RuntimeReuses)
	}
}

// Identical concurrent requests coalesce into one evaluation: with the only
// evaluation slot held externally, a queued leader accumulates duplicates,
// and all of them get the leader's potentials.
func TestServeCoalescesDuplicates(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, MaxQueue: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.sem <- struct{}{} // hold the only evaluation slot
	req := Request{N: 1200, Workers: 2}

	const dupes = 3
	results := make(chan *Response, 1+dupes)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		code, resp, _ := post(t, ts.URL, req)
		if code != http.StatusOK {
			t.Errorf("leader: HTTP %d", code)
			results <- nil
			return
		}
		results <- resp
	}()
	waitFor(t, "leader to queue", func() bool { return s.metrics.queued.Load() == 1 })

	for i := 0; i < dupes; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, resp, _ := post(t, ts.URL, req)
			if code != http.StatusOK {
				t.Errorf("duplicate: HTTP %d", code)
				results <- nil
				return
			}
			results <- resp
		}()
	}
	waitFor(t, "duplicates to coalesce", func() bool { return s.metrics.Coalesced.Load() == dupes })
	<-s.sem // release the slot; the leader evaluates

	wg.Wait()
	close(results)
	var coalesced int
	var first []float64
	for resp := range results {
		if resp == nil {
			continue
		}
		if resp.Report.Coalesced {
			coalesced++
		}
		if first == nil {
			first = resp.Potentials
			continue
		}
		for i := range first {
			if resp.Potentials[i] != first[i] {
				t.Fatalf("coalesced responses disagree at potential %d", i)
			}
		}
	}
	if coalesced != dupes {
		t.Errorf("%d responses marked coalesced, want %d", coalesced, dupes)
	}
	if got := s.metrics.Evaluate.count.Load(); got != 1 {
		t.Errorf("%d evaluations ran for %d identical requests, want 1", got, 1+dupes)
	}
}

// A full queue sheds with 429; a request whose deadline expires while
// queued gets 503. Neither leaves the server wedged.
func TestServeShedsUnderLoad(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, MaxQueue: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.sem <- struct{}{} // hold the only evaluation slot

	// Occupy the single queue slot with a leader.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		code, _, _ := post(t, ts.URL, Request{N: 800, ChargeSeed: 10})
		if code != http.StatusOK {
			t.Errorf("queued request: HTTP %d", code)
		}
	}()
	waitFor(t, "queue to fill", func() bool { return s.metrics.queued.Load() == 1 })

	// A distinct request now overflows the queue.
	code, _, eb := post(t, ts.URL, Request{N: 800, ChargeSeed: 11})
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow request: HTTP %d, want 429", code)
	}
	if !strings.Contains(eb.Error, "queue full") {
		t.Errorf("shed error = %q", eb.Error)
	}
	if s.metrics.Shed.Load() != 1 {
		t.Errorf("shed counter = %d, want 1", s.metrics.Shed.Load())
	}

	// A duplicate of the queued leader still coalesces (no queue slot
	// needed) but then times out on its own deadline.
	code, _, eb = post(t, ts.URL, Request{N: 800, ChargeSeed: 10, DeadlineMS: 50})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("deadline duplicate: HTTP %d, want 503", code)
	}
	if !strings.Contains(eb.Error, "deadline") {
		t.Errorf("deadline error = %q", eb.Error)
	}

	<-s.sem // release; the queued leader completes
	wg.Wait()

	// The server still serves after shedding.
	if code, _, _ := post(t, ts.URL, Request{N: 800, ChargeSeed: 12}); code != http.StatusOK {
		t.Fatalf("post-shed request: HTTP %d", code)
	}
}

// A request with deadline_ms expiring while queued is refused with 503 and
// unregistered, so a later identical request succeeds.
func TestServeDeadlineWhileQueued(t *testing.T) {
	s := New(Config{MaxConcurrent: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.sem <- struct{}{}
	code, _, eb := post(t, ts.URL, Request{N: 800, DeadlineMS: 50})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("HTTP %d, want 503", code)
	}
	if !strings.Contains(eb.Error, "deadline") {
		t.Errorf("error = %q", eb.Error)
	}
	if s.metrics.Deadline.Load() != 1 {
		t.Errorf("deadline counter = %d, want 1", s.metrics.Deadline.Load())
	}
	<-s.sem
	if code, _, _ := post(t, ts.URL, Request{N: 800}); code != http.StatusOK {
		t.Fatalf("follow-up request: HTTP %d (stale in-flight registration?)", code)
	}
}

// Malformed requests get 400 with a diagnostic, not 500.
func TestServeRejectsBadRequests(t *testing.T) {
	s := New(Config{MaxPoints: 5000})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"zero points", Request{}, "n must be positive"},
		{"too many points", Request{N: 6000}, "server limit"},
		{"bad distribution", Request{N: 100, Distribution: "torus"}, "unknown distribution"},
		{"bad kernel", Request{N: 100, Kernel: "helmholtz"}, "unknown kernel"},
		{"bad digits", Request{N: 100, Digits: 13}, "out of range"},
		{"charge mismatch", Request{N: 100, Charges: []float64{1, 2}}, "charges for"},
	}
	for _, c := range cases {
		code, _, eb := post(t, ts.URL, c.req)
		if code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", c.name, code)
			continue
		}
		if !strings.Contains(eb.Error, c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, eb.Error, c.want)
		}
	}
	if got := s.metrics.BadRequest.Load(); got != int64(len(cases)) {
		t.Errorf("bad_request counter = %d, want %d", got, len(cases))
	}
}

// A traced request returns the evaluation's event log in trace.WriteJSON
// format, and the capture does not leak into untraced requests.
func TestServePerRequestTrace(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, resp, _ := post(t, ts.URL, Request{N: 1200, Workers: 2, Trace: true})
	if code != http.StatusOK {
		t.Fatalf("traced request: HTTP %d", code)
	}
	if resp.TraceJSONL == "" {
		t.Fatal("traced request returned no trace")
	}
	events, err := trace.ReadJSON(strings.NewReader(resp.TraceJSONL))
	if err != nil {
		t.Fatalf("returned trace does not parse: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("returned trace is empty")
	}
	if int64(len(events)) < resp.Report.TasksRun/2 {
		t.Errorf("trace has %d events for %d tasks", len(events), resp.Report.TasksRun)
	}

	code, resp, _ = post(t, ts.URL, Request{N: 1200, Workers: 2})
	if code != http.StatusOK {
		t.Fatalf("untraced request: HTTP %d", code)
	}
	if resp.TraceJSONL != "" {
		t.Error("untraced request returned a trace")
	}
}

// /healthz and /metrics respond with well-formed JSON.
func TestServeObservabilityEndpoints(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if health["status"] != "ok" {
		t.Errorf("healthz status = %v", health["status"])
	}

	if code, _, _ := post(t, ts.URL, Request{N: 600}); code != http.StatusOK {
		t.Fatalf("request: HTTP %d", code)
	}
	hr, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m MetricsSnapshot
	if err := json.NewDecoder(hr.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if m.Requests != 1 || m.OK != 1 || m.CacheMisses != 1 {
		t.Errorf("metrics after one request: %+v", m)
	}
	if m.Total.Count != 1 || m.Evaluate.Count != 1 || m.Total.P50US <= 0 {
		t.Errorf("latency histograms not populated: total=%+v evaluate=%+v", m.Total, m.Evaluate)
	}
}

// The ci smoke test: concurrent mixed requests (different problems, shapes,
// charge vectors, some duplicates, one trace) all succeed, the metrics add
// up, and the server leaks no goroutines.
func TestServeSmoke(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{MaxConcurrent: 2, MaxQueue: 64})
	ts := httptest.NewServer(s.Handler())

	reqs := []Request{
		{N: 900},
		{N: 900},                          // duplicate of the first (coalesces or hits)
		{N: 900, Workers: 2},              // same plan, new shape
		{N: 900, ChargeSeed: 7},           // same plan, new charges
		{N: 1100, Distribution: "sphere"}, // second plan
		{N: 1100, Distribution: "sphere", Trace: true},
		{N: 700, Kernel: "yukawa", Digits: 2}, // third plan
		{N: 900, Localities: 2, Workers: 2},   // multi-locality shape
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(reqs))
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r Request) {
			defer wg.Done()
			code, resp, eb := post(t, ts.URL, r)
			if code != http.StatusOK {
				errs <- fmt.Errorf("request %d: HTTP %d (%v)", i, code, eb)
				return
			}
			if len(resp.Potentials) != r.N && len(resp.Potentials) != 0 {
				if r.N == 0 {
					return
				}
				errs <- fmt.Errorf("request %d: %d potentials for n=%d", i, len(resp.Potentials), r.N)
			}
		}(i, r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := s.metrics.snapshot(s.cache.len(), nil)
	if m.Requests != int64(len(reqs)) {
		t.Errorf("requests=%d, want %d", m.Requests, len(reqs))
	}
	if m.OK != int64(len(reqs)) {
		t.Errorf("ok=%d, want %d", m.OK, len(reqs))
	}
	if m.Shed != 0 || m.Failed != 0 || m.Deadline != 0 {
		t.Errorf("unexpected failures: shed=%d failed=%d deadline=%d", m.Shed, m.Failed, m.Deadline)
	}
	if m.CacheMisses != 3 {
		t.Errorf("cache_misses=%d, want 3 (three distinct plans)", m.CacheMisses)
	}
	if m.CacheHits+m.Coalesced != int64(len(reqs))-3 {
		t.Errorf("hits=%d + coalesced=%d, want %d together", m.CacheHits, m.Coalesced, len(reqs)-3)
	}
	if m.QueueDepth != 0 || m.Inflight != 0 {
		t.Errorf("gauges not drained: queue=%d inflight=%d", m.QueueDepth, m.Inflight)
	}
	if m.Traces != 1 {
		t.Errorf("traces=%d, want 1", m.Traces)
	}
	if m.Total.Count != m.OK-m.Coalesced {
		t.Errorf("total histogram count=%d, want %d", m.Total.Count, m.OK-m.Coalesced)
	}

	ts.Close()
	// Goroutine-leak soft check: pooled runtimes park their workers inside
	// Run, so after the server quiesces the count must return to baseline.
	waitFor(t, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})
}
