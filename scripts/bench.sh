#!/bin/sh
# Runs the hot-path benchmark suite (lock-free deque, cached M→L
# operators, zero-allocation evaluation) and writes the results as
# machine-readable JSON to BENCH_hotpath.json in the repository root.
#
# Usage: scripts/bench.sh [extra go test args...]
set -eu

cd "$(dirname "$0")/.."

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test ./internal/amt -run '^$' \
    -bench 'BenchmarkDequePushPop|BenchmarkStealContention' \
    -benchmem "$@" | tee "$raw"
go test ./internal/kernel -run '^$' \
    -bench 'BenchmarkM2LCachedVsProjected' \
    -benchmem "$@" | tee -a "$raw"
go test . -run '^$' \
    -bench 'BenchmarkEvaluateHotPath' \
    -benchtime 3x "$@" | tee -a "$raw"

# Convert `go test -bench` lines into a JSON array: one object per
# benchmark with ns/op, allocations, and any custom ReportMetric columns.
awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1; iters = $2
    if (!first) printf ",\n"
    first = 0
    printf "  {\"name\": \"%s\", \"iterations\": %s", name, iters
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/[^A-Za-z0-9_]/, "_", unit)
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
}
END { print "\n]" }
' "$raw" > BENCH_hotpath.json

echo "wrote BENCH_hotpath.json"
