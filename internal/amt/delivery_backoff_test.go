package amt

import (
	"sync"
	"testing"
	"time"
)

// recordingWire is an unreliable transport that swallows every data message
// (recording its send time) so the delivery layer's retransmission schedule
// can be observed directly.
type recordingWire struct {
	mu    sync.Mutex
	times []time.Time
}

func (r *recordingWire) Name() string     { return "recording" }
func (r *recordingWire) Reliable() bool   { return false }
func (r *recordingWire) Stats() WireStats { return WireStats{} }

func (r *recordingWire) Send(m Message) {
	if m.Ack {
		return
	}
	r.mu.Lock()
	r.times = append(r.times, time.Now())
	r.mu.Unlock()
}

func (r *recordingWire) sends() []time.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Time(nil), r.times...)
}

// The retransmission schedule is a contract the chaos suites lean on: each
// gap at least the current backoff step, at most the step widened by the
// jitter factor (plus scheduling slack), the step doubling up to RetryMax
// and then pinned there, and the whole loop ending at the deadline with the
// parcel counted abandoned — not retried forever, not given up early.
func TestDeliveryBackoffEnvelope(t *testing.T) {
	const (
		base     = 20 * time.Millisecond
		max      = 80 * time.Millisecond
		jitter   = 0.5
		deadline = 700 * time.Millisecond
		slack    = 60 * time.Millisecond // timer-firing lateness under CI load
	)
	rw := &recordingWire{}
	rt := New(Config{
		World: 2, Rank: 0, Workers: 1, Seed: 3, Transport: rw,
		Delivery: DeliveryConfig{RetryBase: base, RetryMax: max, RetryJitter: jitter, Deadline: deadline},
	})
	start := time.Now()
	stats := rt.Run(func() {
		rt.SendWire(1, 1, 0, []byte("never acked"))
	})
	elapsed := time.Since(start)

	if got := stats.Transport.DeadlineExceeded; got != 1 {
		t.Fatalf("DeadlineExceeded = %d, want 1", got)
	}
	if stats.Transport.Acked != 0 {
		t.Fatalf("Acked = %d, want 0", stats.Transport.Acked)
	}
	if elapsed < deadline {
		t.Fatalf("run settled after %v, before the %v deadline", elapsed, deadline)
	}

	times := rw.sends()
	if len(times) < 4 {
		t.Fatalf("only %d transmissions before the deadline; backoff cap not honored?", len(times))
	}
	if int64(stats.Transport.Retried) != int64(len(times)-1) {
		t.Fatalf("Retried = %d, but %d retransmissions hit the wire", stats.Transport.Retried, len(times)-1)
	}
	// Expected backoff step per gap: base doubling to max, then flat.
	step := base
	for i := 1; i < len(times); i++ {
		gap := times[i].Sub(times[i-1])
		lo := step - 2*time.Millisecond // timer granularity
		hi := time.Duration(float64(step)*(1+jitter)) + slack
		if gap < lo || gap > hi {
			t.Fatalf("gap %d = %v outside jittered envelope [%v, %v] (step %v)", i, gap, lo, hi, step)
		}
		if step < max {
			step *= 2
			if step > max {
				step = max
			}
		}
	}
	// The loop must stop at the deadline: the last transmission fits inside
	// it, and the count is bounded by the capped schedule.
	if last := times[len(times)-1].Sub(times[0]); last > deadline+time.Duration(float64(max)*(1+jitter))+slack {
		t.Fatalf("last retransmission at %v, past the deadline window", last)
	}
	if len(times) > 16 {
		t.Fatalf("%d transmissions in %v: backoff not slowing down", len(times), deadline)
	}
}

// An ack settles the entry and stops the retransmission loop immediately.
func TestDeliveryBackoffStopsOnAck(t *testing.T) {
	rw := &recordingWire{}
	rt := New(Config{
		World: 2, Rank: 0, Workers: 1, Seed: 4, Transport: rw,
		Delivery: DeliveryConfig{RetryBase: 10 * time.Millisecond, RetryMax: 40 * time.Millisecond, Deadline: 5 * time.Second},
	})
	start := time.Now()
	stats := rt.Run(func() {
		rt.SendWire(1, 1, 0, []byte("acked late"))
		// Let two copies hit the wire, then deliver the ack.
		go func() {
			for {
				if len(rw.sends()) >= 2 {
					// The ack frame as rank 1 would emit it: src 1, dst 0,
					// settling rank 0's entry for (0→1, seq 1).
					rt.DeliverWireFrame(Frame{Flags: FlagAck, Src: 1, Dst: 0, Seq: 1})
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	})
	elapsed := time.Since(start)
	if stats.Transport.Acked != 1 {
		t.Fatalf("Acked = %d, want 1", stats.Transport.Acked)
	}
	if stats.Transport.DeadlineExceeded != 0 {
		t.Fatalf("DeadlineExceeded = %d, want 0", stats.Transport.DeadlineExceeded)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("run took %v; ack did not stop the retransmission loop", elapsed)
	}
	n := len(rw.sends())
	time.Sleep(100 * time.Millisecond)
	if m := len(rw.sends()); m != n {
		t.Fatalf("%d transmissions after the ack settled the entry", m-n)
	}
}
