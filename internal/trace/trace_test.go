package trace

import (
	"bytes"
	"errors"
	"io"
	"math"
	"sync"
	"testing"
)

func TestAnalyzeFullUtilization(t *testing.T) {
	// Two workers busy over the whole span: f_k must be 1 everywhere.
	var events []Event
	for w := 0; w < 2; w++ {
		for s := int64(0); s < 1000; s += 100 {
			events = append(events, Event{Class: 1, Worker: int32(w), Start: s, End: s + 100})
		}
	}
	u := Analyze(events, 2, 10, 0, 1000)
	for k, v := range u.Total {
		if math.Abs(v-1) > 1e-9 {
			t.Errorf("f_%d = %v, want 1", k, v)
		}
	}
}

func TestAnalyzeHalfUtilization(t *testing.T) {
	// One of two workers busy: f_k = 0.5.
	var events []Event
	for s := int64(0); s < 1000; s += 50 {
		events = append(events, Event{Class: 2, Start: s, End: s + 50})
	}
	u := Analyze(events, 2, 4, 0, 1000)
	for k, v := range u.Total {
		if math.Abs(v-0.5) > 1e-9 {
			t.Errorf("f_%d = %v, want 0.5", k, v)
		}
	}
}

func TestAnalyzeEventSpanningIntervals(t *testing.T) {
	// A single event spanning the whole range distributes evenly.
	events := []Event{{Class: 3, Start: 0, End: 1000}}
	u := Analyze(events, 1, 10, 0, 1000)
	for k, v := range u.Total {
		if math.Abs(v-1) > 1e-9 {
			t.Errorf("f_%d = %v, want 1", k, v)
		}
	}
}

func TestAnalyzeByClassSumsToTotal(t *testing.T) {
	events := []Event{
		{Class: 0, Start: 0, End: 300},
		{Class: 1, Start: 300, End: 600},
		{Class: 2, Start: 500, End: 900},
	}
	u := Analyze(events, 2, 9, 0, 900)
	for k := range u.Total {
		var sum float64
		for _, vals := range u.ByClass {
			sum += vals[k]
		}
		if math.Abs(sum-u.Total[k]) > 1e-9 {
			t.Errorf("interval %d: class sum %v != total %v", k, sum, u.Total[k])
		}
	}
}

func TestAnalyzeClipsOutOfRange(t *testing.T) {
	events := []Event{{Class: 0, Start: -500, End: 1500}}
	u := Analyze(events, 1, 4, 0, 1000)
	var total float64
	for _, v := range u.Total {
		total += v
	}
	if math.Abs(total-4) > 1e-9 { // each interval fully covered
		t.Errorf("clipped totals %v", u.Total)
	}
}

func TestStarvationDetectsDip(t *testing.T) {
	// Construct a profile: ramp, plateau at 0.9, dip to 0.3 at 70-85%, and
	// recovery.
	m := 100
	events := []Event{}
	span := int64(100000)
	dt := span / int64(m)
	level := func(k int) float64 {
		switch {
		case k < 10:
			return float64(k) / 10 * 0.9
		case k >= 70 && k < 85:
			return 0.3
		default:
			return 0.9
		}
	}
	for k := 0; k < m; k++ {
		dur := int64(level(k) * float64(dt))
		if dur > 0 {
			events = append(events, Event{Class: 0, Start: int64(k) * dt, End: int64(k)*dt + dur})
		}
	}
	u := Analyze(events, 1, m, 0, span)
	first, last, plateau, found := u.Starvation(0.7)
	if !found {
		t.Fatal("dip not found")
	}
	if first < 68 || first > 72 || last < 80 || last > 90 {
		t.Errorf("dip located at [%d,%d], want about [70,85]", first, last)
	}
	if math.Abs(plateau-0.9) > 0.05 {
		t.Errorf("plateau %v, want about 0.9", plateau)
	}
}

// syntheticProfile turns a per-interval utilization level function into an
// event list whose Analyze output reproduces those levels for one worker.
func syntheticProfile(m int, span int64, level func(k int) float64) []Event {
	dt := span / int64(m)
	var events []Event
	for k := 0; k < m; k++ {
		dur := int64(level(k) * float64(dt))
		if dur > 0 {
			events = append(events, Event{Class: 0, Start: int64(k) * dt, End: int64(k)*dt + dur})
		}
	}
	return events
}

// Regression: for m < 4 the middle-half plateau slice u.Total[m/4:3m/4] is
// empty and Starvation used to return a silent false; it must fall back to
// the whole-profile median and still find an obvious dip.
func TestStarvationSmallIntervalCount(t *testing.T) {
	for m := 1; m < 8; m++ {
		span := int64(1000 * m)
		u := Analyze(syntheticProfile(m, span, func(k int) float64 {
			if m >= 2 && k == m-1 {
				return 0.1 // dip in the last interval
			}
			return 0.9
		}), 1, m, 0, span)
		_, _, plateau, found := u.Starvation(0.7)
		if m == 1 {
			// A single 0.9 interval: no dip, but the plateau must still be
			// computed rather than bailing out.
			if found || plateau == 0 {
				t.Errorf("m=1: found=%v plateau=%v", found, plateau)
			}
			continue
		}
		if !found {
			t.Errorf("m=%d: dip in final interval not found (plateau %v)", m, plateau)
		}
	}
}

// Regression: the dip-extension hysteresis (exit at starvationExitFrac of
// the plateau) used to run straight through the final ramp-down, reporting
// a dip that extended to the last interval even though the trailing
// intervals are just the run finishing. The trailing monotone decline must
// be trimmed off the reported width.
func TestStarvationTrimsFinalRampDown(t *testing.T) {
	m := 100
	span := int64(100000)
	u := Analyze(syntheticProfile(m, span, func(k int) float64 {
		switch {
		case k < 10: // startup ramp
			return float64(k) / 10 * 0.9
		case k >= 70 && k < 85: // the genuine starvation dip
			return 0.3
		case k >= 85 && k < 95: // partial recovery below the 0.97 hysteresis
			return 0.8
		case k >= 95: // final ramp-down to zero as work drains
			return 0.8 * float64(m-1-k) / 5
		default:
			return 0.9
		}
	}), 1, m, 0, span)
	first, last, plateau, found := u.Starvation(0.7)
	if !found {
		t.Fatal("dip not found")
	}
	if math.Abs(plateau-0.9) > 0.05 {
		t.Errorf("plateau %v, want about 0.9", plateau)
	}
	if first < 68 || first > 72 {
		t.Errorf("dip starts at %d, want about 70", first)
	}
	// The 0.8 recovery sits below 0.97*0.9 so the hysteresis keeps the dip
	// open through it — but the ramp-down tail from k=95 must be trimmed:
	// the dip must not extend to the final interval.
	if last >= m-1 {
		t.Errorf("dip ran through the final ramp-down: last=%d", last)
	}
	if last > 95 {
		t.Errorf("dip ends at %d, want at or before the ramp-down start (95)", last)
	}
}

func TestStarvationAbsentOnFlatProfile(t *testing.T) {
	m := 50
	span := int64(50000)
	dt := span / int64(m)
	var events []Event
	for k := 0; k < m; k++ {
		events = append(events, Event{Class: 0, Start: int64(k) * dt, End: int64(k)*dt + dt*9/10})
	}
	u := Analyze(events, 1, m, 0, span)
	if _, _, _, found := u.Starvation(0.7); found {
		t.Error("found a dip in a flat profile")
	}
}

func TestTracerRoundTrip(t *testing.T) {
	tr := New(3)
	tr.Record(0, Event{Class: 1, Start: 10, End: 20})
	tr.Record(2, Event{Class: 2, Start: 5, End: 8})
	tr.Record(1, Event{Class: 3, Start: 30, End: 40})
	evs := tr.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	// Sorted by start.
	if evs[0].Class != 2 || evs[1].Class != 1 || evs[2].Class != 3 {
		t.Errorf("wrong order: %+v", evs)
	}
	tr.Reset()
	if len(tr.Snapshot()) != 0 {
		t.Error("reset did not clear events")
	}
}

// Worker-local Record and any-goroutine RecordVirtual must be safe to mix:
// the transport layer records fault markers while workers are live.
func TestRecordVirtualConcurrentWithRecord(t *testing.T) {
	const workers, perWorker, virtual = 4, 100, 200
	tr := New(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr.Record(w, Event{Class: 1, Worker: int32(w), Start: int64(i), End: int64(i + 1)})
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < virtual; i++ {
			tr.RecordVirtual(Event{Class: 2, Worker: -1, Start: int64(i), End: int64(i)})
		}
	}()
	wg.Wait()
	if got := len(tr.Snapshot()); got != workers*perWorker+virtual {
		t.Fatalf("got %d events, want %d", got, workers*perWorker+virtual)
	}
}

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer enabled")
	}
	tr.Record(0, Event{}) // must not panic
	tr.RecordVirtual(Event{})
}

func TestAvgMicrosByClass(t *testing.T) {
	events := []Event{
		{Class: 7, Start: 0, End: 1000},
		{Class: 7, Start: 0, End: 3000},
		{Class: 9, Start: 0, End: 500},
	}
	avg := AvgMicrosByClass(events)
	if math.Abs(avg[7]-2) > 1e-9 {
		t.Errorf("avg class 7 = %v, want 2", avg[7])
	}
	if math.Abs(avg[9]-0.5) > 1e-9 {
		t.Errorf("avg class 9 = %v, want 0.5", avg[9])
	}
}

// Regression: the zero-duration transport/recovery marker classes must not
// appear in the Table II averages — they are occurrence counters, and their
// 0µs rows used to pollute the table (and any operator class that shared a
// class byte with a marker would have had its average dragged down).
func TestAvgMicrosByClassExcludesMarkers(t *testing.T) {
	events := []Event{
		{Class: 7, Start: 0, End: 2000},
		{Class: ClassNetRetry, Start: 100, End: 100},
		{Class: ClassNetDrop, Start: 200, End: 200},
		{Class: ClassRecoveryKill, Start: 300, End: 300},
		{Class: ClassRecoveryReplay, Start: 400, End: 400},
	}
	avg := AvgMicrosByClass(events)
	if len(avg) != 1 {
		t.Fatalf("got %d classes, want only the operator class: %v", len(avg), avg)
	}
	if math.Abs(avg[7]-2) > 1e-9 {
		t.Errorf("avg class 7 = %v, want 2", avg[7])
	}
	for _, c := range []uint8{ClassNetRetry, ClassNetDrop, ClassNetDup, ClassNetDeadline,
		ClassRecoveryKill, ClassRecoveryDetect, ClassRecoveryFailover, ClassRecoveryReplay} {
		if _, ok := avg[c]; ok {
			t.Errorf("marker class %#x (%s) present in averages", c, NetClassName(c))
		}
	}
}

func TestSpan(t *testing.T) {
	s, e := Span([]Event{{Start: 5, End: 10}, {Start: 2, End: 7}, {Start: 6, End: 20}})
	if s != 2 || e != 20 {
		t.Errorf("span [%d,%d], want [2,20]", s, e)
	}
	s, e = Span(nil)
	if s != 0 || e != 0 {
		t.Errorf("empty span [%d,%d]", s, e)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	events := []Event{
		{Class: 1, Worker: 0, Locality: 0, Start: 10, End: 20},
		{Class: 9, Worker: 3, Locality: 1, Start: 15, End: 40},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("got %d events", len(got))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Errorf("event %d: %+v vs %+v", i, got[i], events[i])
		}
	}
	// Empty round trip.
	buf.Reset()
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadJSON(&buf); err != nil || len(got) != 0 {
		t.Errorf("empty round trip: %v %v", got, err)
	}
}

// Round trip including the zero-duration transport/recovery marker classes:
// markers travel the same serialization as operator events and must survive
// unchanged (class byte, zero duration, negative worker id).
func TestJSONRoundTripMarkerClasses(t *testing.T) {
	events := []Event{
		{Class: 1, Worker: 0, Locality: 0, Start: 10, End: 20},
		{Class: ClassNetRetry, Worker: -1, Locality: 2, Start: 15, End: 15},
		{Class: ClassNetDeadline, Worker: -1, Locality: 0, Start: 16, End: 16},
		{Class: ClassRecoveryKill, Worker: -1, Locality: 1, Start: 17, End: 17},
		{Class: ClassRecoveryFailover, Worker: -1, Locality: 3, Start: 18, End: 18},
		{Class: 9, Worker: 3, Locality: 1, Start: 25, End: 40},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("got %d events, want %d", len(got), len(events))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Errorf("event %d: %+v vs %+v", i, got[i], events[i])
		}
	}
}

// Regression: a trace file cut off mid-record must surface
// io.ErrUnexpectedEOF (with the complete prefix still returned) instead of
// silently succeeding with the tail dropped.
func TestReadJSONTruncated(t *testing.T) {
	events := []Event{
		{Class: 1, Worker: 0, Start: 10, End: 20},
		{Class: 2, Worker: 1, Start: 30, End: 45},
		{Class: 3, Worker: 0, Start: 50, End: 60},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, events); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut inside the final record (drop the last 5 bytes: "}\n" and part of
	// the value before it).
	cut := full[:len(full)-5]
	got, err := ReadJSON(bytes.NewReader(cut))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("mid-record truncation: err=%v, want io.ErrUnexpectedEOF", err)
	}
	if len(got) != 2 {
		t.Errorf("got %d complete events, want 2", len(got))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Errorf("prefix event %d: %+v vs %+v", i, got[i], events[i])
		}
	}
	// Cut exactly the final newline: the last record parses but the file is
	// still flagged as truncated (WriteJSON terminates every line).
	got, err = ReadJSON(bytes.NewReader(full[:len(full)-1]))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("missing final newline: err=%v, want io.ErrUnexpectedEOF", err)
	}
	if len(got) != 3 {
		t.Errorf("got %d events, want all 3", len(got))
	}
	// Interior corruption is a malformed-event error, not a truncation.
	corrupt := append([]byte("this is not json\n"), full...)
	if _, err := ReadJSON(bytes.NewReader(corrupt)); err == nil || errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("corrupt line: err=%v, want a malformed-event error", err)
	}
	// An intact file still reads cleanly.
	if got, err := ReadJSON(bytes.NewReader(full)); err != nil || len(got) != 3 {
		t.Errorf("intact file: %d events, err=%v", len(got), err)
	}
}
