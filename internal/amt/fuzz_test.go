package amt

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzDecodeFrame drives ReadFrame with arbitrary streams. The decoder must
// never panic; when it accepts a frame, re-encoding it must reproduce the
// consumed bytes exactly (the header is fully canonical) and decode back to
// the same frame.
func FuzzDecodeFrame(f *testing.F) {
	seed := func(fr *Frame) {
		f.Add(AppendFrame(nil, fr))
	}
	seed(&Frame{Kind: 3, Src: 1, Dst: 2, Epoch: 7, Seq: 42, Payload: []byte("hello, frame")})
	seed(&Frame{Flags: FlagAck, Kind: 1, Src: 2, Dst: 0, Seq: 9})
	seed(&Frame{Kind: 0xffff, Src: 65535, Dst: 65535, Epoch: ^uint32(0), Seq: ^uint64(0)})

	// Adversarial seeds: truncated header, truncated payload, corrupted
	// CRC trailer, hostile length field.
	golden := AppendFrame(nil, &Frame{Kind: 5, Payload: bytes.Repeat([]byte{0xab}, 64)})
	f.Add(golden[:FrameHeaderSize-1])
	f.Add(golden[:FrameHeaderSize+7])
	crcFlipped := append([]byte(nil), golden...)
	crcFlipped[28] ^= 0xff
	f.Add(crcFlipped)
	hostile := append([]byte(nil), golden[:FrameHeaderSize]...)
	hostile[24], hostile[25], hostile[26], hostile[27] = 0xff, 0xff, 0xff, 0x0f
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		enc := AppendFrame(nil, &fr)
		if len(enc) > len(data) {
			t.Fatalf("re-encoded frame is %d bytes but only %d were available", len(enc), len(data))
		}
		if !bytes.Equal(enc, data[:len(enc)]) {
			t.Fatalf("encode(decode(x)) != x:\n got %x\nwant %x", enc, data[:len(enc)])
		}
		fr2, err := ReadFrame(bufio.NewReader(bytes.NewReader(enc)))
		if err != nil {
			t.Fatalf("re-decoding a frame the decoder produced: %v", err)
		}
		if fr2.Kind != fr.Kind || fr2.Flags != fr.Flags || fr2.Src != fr.Src ||
			fr2.Dst != fr.Dst || fr2.Epoch != fr.Epoch || fr2.Seq != fr.Seq ||
			!bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("round-trip mismatch: %+v != %+v", fr2, fr)
		}
	})
}
