package amt

import "sync"

// LCO is a local control object (paper, Section III): an event-driven
// synchronization object with input slots, a predicate that decides when it
// has been triggered (here: an input count, the reduction style DASHMM
// uses), and continuations executed as lightweight threads once triggered.
//
// The payload reduction itself is performed by the caller inside Input's
// critical section via the reduce callback, mirroring the DASHMM custom LCO
// that "continuously reduce[s] input data into the stored expansion data".
type LCO struct {
	mu        sync.Mutex
	needed    int    // guarded by mu
	arrived   int    // guarded by mu
	overflow  int    // guarded by mu
	triggered bool   // guarded by mu
	conts     []Task // guarded by mu
	home      *Locality
}

// NewLCO creates an LCO expecting `inputs` inputs, homed on the given
// locality (where its continuations will execute). An LCO expecting zero
// inputs is born triggered.
func NewLCO(home *Locality, inputs int) *LCO {
	return &LCO{needed: inputs, home: home, triggered: inputs <= 0}
}

// Home returns the locality owning the LCO.
func (l *LCO) Home() *Locality { return l.home }

// Register adds a continuation to run once the LCO triggers. If the LCO has
// already triggered the continuation is spawned immediately (HPX-5
// semantics for late registration).
func (l *LCO) Register(t Task) {
	l.mu.Lock()
	if l.triggered {
		l.mu.Unlock()
		l.home.Spawn(t)
		return
	}
	l.conts = append(l.conts, t)
	l.mu.Unlock()
}

// Input delivers one input: reduce runs under the LCO lock (serializing
// concurrent reductions into the payload), and if this was the last
// expected input the LCO triggers, spawning every registered continuation
// on the home locality.
//
// An input past `needed` is rejected — reduce does not run, the overflow
// counter bumps, and Input returns false. This makes a duplicated wire
// delivery (or a buggy caller) unable to corrupt the reduced payload or
// re-trigger the LCO: at-least-once input delivery yields exactly-once
// effect.
//
//dashmm:noalloc
func (l *LCO) Input(reduce func()) bool {
	l.mu.Lock()
	if l.arrived >= l.needed {
		l.overflow++
		l.mu.Unlock()
		return false
	}
	if reduce != nil {
		reduce()
	}
	l.arrived++
	fire := !l.triggered && l.arrived >= l.needed
	var conts []Task
	if fire {
		l.triggered = true
		conts = l.conts
		l.conts = nil
	}
	l.mu.Unlock()
	for _, t := range conts {
		l.home.Spawn(t)
	}
	return true
}

// Reset re-arms the LCO to expect `inputs` fresh inputs, discarding its
// arrival/overflow counts and any still-registered continuations. Crash
// recovery uses it to rebuild an LCO whose partial state was lost with its
// owner: the payload is re-zeroed by the caller (outside the LCO, which
// does not own it), the counts restart, and re-sent contributions reduce
// into it again — idempotent re-registration instead of double-counting.
// It also re-homes the LCO if the owner moved. Resetting to zero inputs
// leaves the LCO triggered (matching NewLCO).
func (l *LCO) Reset(home *Locality, inputs int) {
	l.mu.Lock()
	l.needed = inputs
	l.arrived = 0
	l.overflow = 0
	l.triggered = inputs <= 0
	l.conts = nil
	if home != nil {
		l.home = home
	}
	l.mu.Unlock()
}

// Triggered reports whether the LCO has fired.
func (l *LCO) Triggered() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.triggered
}

// Arrived returns how many inputs have been accepted so far.
func (l *LCO) Arrived() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.arrived
}

// Needed returns the LCO's input-count trigger threshold.
func (l *LCO) Needed() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.needed
}

// Overflow returns how many inputs were rejected past Needed.
func (l *LCO) Overflow() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.overflow
}

// Future is a single-assignment LCO carrying a value, one of the built-in
// LCO classes HPX-5 ships (Section III).
type Future struct {
	lco LCO
	val any
}

// NewFuture creates an unset future homed on the locality.
func NewFuture(home *Locality) *Future {
	return &Future{lco: LCO{needed: 1, home: home}}
}

// Set assigns the value and triggers the future. Setting twice panics.
func (f *Future) Set(v any) {
	f.lco.mu.Lock()
	if f.lco.triggered {
		f.lco.mu.Unlock()
		panic("amt: future set twice")
	}
	f.val = v
	f.lco.triggered = true
	conts := f.lco.conts
	f.lco.conts = nil
	f.lco.mu.Unlock()
	for _, t := range conts {
		f.lco.home.Spawn(t)
	}
}

// Then runs t (receiving the value) once the future is set.
func (f *Future) Then(t func(w *Worker, v any)) {
	f.lco.Register(func(w *Worker) { t(w, f.val) })
}

// Reduction is an LCO that folds inputs with a user operation and exposes
// the final value, e.g. a sum across contributors (the example in Section
// III).
type Reduction struct {
	lco LCO
	val float64 // guarded by LCO.mu
	op  func(acc, in float64) float64
}

// NewReduction creates a reduction over `inputs` inputs with the given fold
// and initial value.
func NewReduction(home *Locality, inputs int, init float64, op func(acc, in float64) float64) *Reduction {
	return &Reduction{lco: LCO{needed: inputs, home: home}, val: init, op: op}
}

// Input folds one value into the reduction.
//
//dashmm:locked LCO.mu — the fold closure runs inside LCO.Input's critical section, which is the lock guarding val.
func (r *Reduction) Input(v float64) {
	//lint:ignore lockorder the dashmm:locked line documents the fold closure's context inside LCO.Input, not Input's caller — nothing is held at this call
	r.lco.Input(func() { r.val = r.op(r.val, v) })
}

// Then runs t with the final value once all inputs have arrived.
func (r *Reduction) Then(t func(w *Worker, v float64)) {
	r.lco.Register(func(w *Worker) {
		r.lco.mu.Lock()
		v := r.val
		r.lco.mu.Unlock()
		t(w, v)
	})
}
