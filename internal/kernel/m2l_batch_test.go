package kernel

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// batchOffs is a mixed offset sequence: maximal runs of repeated offsets
// (the GEMM path sees multi-RHS blocks) interleaved with singletons.
var batchOffs = []M2LOffset{
	{DX: 2, DY: 0, DZ: 0},
	{DX: 2, DY: 0, DZ: 0},
	{DX: 2, DY: 0, DZ: 0},
	{DX: -2, DY: 1, DZ: 1},
	{DX: 3, DY: 3, DZ: 3},
	{DX: 3, DY: 3, DZ: 3},
	{DX: 0, DY: -3, DZ: 2},
}

// TestM2LBatchMatchesPerEdge checks that the multi-RHS batched apply is the
// same linear operator as the per-edge M2L, run by run, for both kernels —
// with the operator cache on (dense GEMM path) and off (projection
// fallback inside the batch).
func TestM2LBatchMatchesPerEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const side = 0.125
	for _, cacheOn := range []bool{true, false} {
		for _, tc := range kernels(t) {
			k := tc.k.(interface {
				BatchKernel
				SetM2LCache(bool)
			})
			k.SetM2LCache(cacheOn)
			sq := k.MLSize()
			ins := make([][]complex128, len(batchOffs))
			got := make([][]complex128, len(batchOffs))
			want := make([][]complex128, len(batchOffs))
			for i := range ins {
				ins[i] = make([]complex128, sq)
				for j := range ins[i] {
					ins[i][j] = complex(rng.NormFloat64(), rng.NormFloat64())
				}
				got[i] = make([]complex128, sq)
				want[i] = make([]complex128, sq)
			}
			k.M2LBatch(batchOffs, side, 3, ins, got)
			from := geom.Point{X: 0.5, Y: 0.5, Z: 0.5}
			for i, off := range batchOffs {
				to := from.Add(off.Scale(side))
				k.M2L(from, to, side, ins[i], want[i])
			}
			for i := range got {
				if e := maxCoefDiff(got[i], want[i]); e > 1e-12 {
					t.Errorf("%s cache=%v edge %d off %+v: batched vs per-edge rel diff %.2e",
						tc.name, cacheOn, i, batchOffs[i], e)
				}
			}
			k.SetM2LCache(true)
		}
	}
}

// TestM2LBatchAccumulates checks that the batched apply adds into the
// target expansions rather than overwriting them, like every operator.
func TestM2LBatchAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, tc := range kernels(t) {
		k := tc.k.(BatchKernel)
		sq := k.MLSize()
		in := make([]complex128, sq)
		for j := range in {
			in[j] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		offs := []M2LOffset{{DX: 2, DY: 0, DZ: 0}}
		once := make([]complex128, sq)
		twice := make([]complex128, sq)
		k.M2LBatch(offs, 0.125, 3, [][]complex128{in}, [][]complex128{once})
		k.M2LBatch(offs, 0.125, 3, [][]complex128{in}, [][]complex128{twice})
		k.M2LBatch(offs, 0.125, 3, [][]complex128{in}, [][]complex128{twice})
		for j := range twice {
			twice[j] /= 2
		}
		if e := maxCoefDiff(twice, once); e > 1e-14 {
			t.Errorf("%s: M2LBatch does not accumulate: rel diff %.2e", tc.name, e)
		}
	}
}

// TestP2PTiledMatchesDirect checks the cache-tiled multi-chunk P2P against
// the per-pair S2T it replaces, including the specialized Laplace and
// Yukawa tile loops, with more targets than one tile to cover the
// remainder handling.
func TestP2PTiledMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, tc := range kernels(t) {
		k := tc.k.(BatchKernel)
		center := geom.Point{X: 0.5, Y: 0.5, Z: 0.5}
		tpts := randBox(rng, center, 0.125, 150) // > 2 tiles of 64
		var chunks []P2PChunk
		want := make([]float64, len(tpts))
		for c := 0; c < 3; c++ {
			sc := center.Add(geom.Point{X: float64(c+1) * 0.125})
			spts := randBox(rng, sc, 0.125, 37)
			q := randCharges(rng, 37)
			chunks = append(chunks, P2PChunk{Pts: spts, Q: q})
			k.S2T(spts, q, tpts, want)
		}
		got := make([]float64, len(tpts))
		k.P2P(chunks, tpts, got)
		if e := relErr(got, want); e > 1e-13 {
			t.Errorf("%s: tiled P2P vs per-chunk S2T rel err %.2e", tc.name, e)
		}
	}
}

// TestM2LBatchSteadyStateAllocs gates the batched apply at zero
// steady-state allocations for both the GEMM path and the projection
// fallback (cache off), matching the //dashmm:noalloc annotations.
func TestM2LBatchSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, cacheOn := range []bool{true, false} {
		for _, tc := range kernels(t) {
			k := tc.k.(interface {
				BatchKernel
				SetM2LCache(bool)
			})
			k.SetM2LCache(cacheOn)
			sq := k.MLSize()
			ins := make([][]complex128, len(batchOffs))
			outs := make([][]complex128, len(batchOffs))
			for i := range ins {
				ins[i] = make([]complex128, sq)
				for j := range ins[i] {
					ins[i][j] = complex(rng.NormFloat64(), rng.NormFloat64())
				}
				outs[i] = make([]complex128, sq)
			}
			k.M2LBatch(batchOffs, 0.125, 3, ins, outs) // warm cache + workspace
			allocs := testing.AllocsPerRun(10, func() {
				k.M2LBatch(batchOffs, 0.125, 3, ins, outs)
			})
			if allocs != 0 {
				t.Errorf("%s cache=%v: M2LBatch allocates %.1f/op in steady state", tc.name, cacheOn, allocs)
			}
			k.SetM2LCache(true)
		}
	}
}

// TestYukawaProjectedM2LNoAlloc pins the fix for the projected Yukawa M->L
// path, whose Bessel recurrence allocated its backward-recursion scratch on
// every call (208 B/op before the fixed-size buffer in sphharm).
func TestYukawaProjectedM2LNoAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	p := OrderForDigits(3)
	yuk := NewYukawa(p, 4.0)
	yuk.Prepare(1.0, 5)
	k := yuk.(interface {
		Kernel
		SetM2LCache(bool)
	})
	k.SetM2LCache(false)
	defer k.SetM2LCache(true)
	m := make([]complex128, k.MLSize())
	for i := range m {
		m[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	l := make([]complex128, k.MLSize())
	from := geom.Point{X: 0.5, Y: 0.5, Z: 0.5}
	to := from.Add(geom.Point{X: 0.25, Y: 0.125, Z: -0.125})
	k.M2L(from, to, 0.125, m, l) // warm the workspace pool
	allocs := testing.AllocsPerRun(10, func() {
		k.M2L(from, to, 0.125, m, l)
	})
	if allocs != 0 {
		t.Errorf("projected Yukawa M2L allocates %.1f/op in steady state", allocs)
	}
}
