//go:build race

package amt_test

// chaosRace reports whether the race detector instruments this build; the
// chaos harness shrinks its workload matrix under it (each evaluation is
// ~10x slower instrumented).
const chaosRace = true
