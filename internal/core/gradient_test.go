package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/kernel"
	"repro/internal/points"
)

// directGradSample computes reference gradients at sampled targets.
func directGradSample(k kernel.Kernel, spts []geom.Point, q []float64, tpts []geom.Point, idx []int) map[int]geom.Point {
	out := make(map[int]geom.Point, len(idx))
	for _, ti := range idx {
		t := tpts[ti]
		var g geom.Point
		for si, s := range spts {
			d := t.Sub(s)
			r := d.Norm()
			if r == 0 {
				continue
			}
			// Numerically differentiate the pointwise kernel; exact enough
			// as an independent oracle.
			h := 1e-7 * r
			f := q[si] * (k.Direct(t.Add(d.Scale(h/r)), s) - k.Direct(t.Sub(d.Scale(h/r)), s)) / (2 * h)
			g = g.Add(d.Scale(f / r))
		}
		out[ti] = g
	}
	return out
}

func TestGradientEndToEnd(t *testing.T) {
	if raceEnabled {
		t.Skip("sequential accuracy gate: no concurrency to instrument, ~10x slower under race")
	}
	const n = 4000
	p := kernel.OrderForDigits(3)
	for _, mk := range []func() kernel.Kernel{
		func() kernel.Kernel { return kernel.NewLaplace(p) },
		func() kernel.Kernel { return kernel.NewYukawa(p, 4.0) },
	} {
		k := mk()
		sp := points.Generate(points.Cube, n, 81)
		tp := points.Generate(points.Cube, n, 82)
		q := points.Charges(n, 83)
		plan, err := NewPlan(sp, tp, k, Options{Threshold: 40})
		if err != nil {
			t.Fatal(err)
		}
		pot, grad, err := plan.EvaluateSequentialGrad(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(grad) != n {
			t.Fatalf("got %d gradients", len(grad))
		}
		rng := rand.New(rand.NewSource(84))
		idx := sampleIdx(rng, n, 25)
		ref := directGradSample(k, sp, q, tp, idx)
		var num, den float64
		for _, i := range idx {
			if d := grad[i].Sub(ref[i]).Norm(); d > num {
				num = d
			}
			if m := ref[i].Norm(); m > den {
				den = m
			}
		}
		if num/den > 2e-3 {
			t.Errorf("%s: gradient rel err %.2e", k.Name(), num/den)
		}
		// Potentials from the gradient path must match the plain path.
		pot2, err := plan.EvaluateSequential(q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range pot {
			if math.Abs(pot[i]-pot2[i]) > 1e-12*math.Max(1, math.Abs(pot2[i])) {
				t.Fatalf("%s: potential drift in gradient path at %d", k.Name(), i)
			}
		}
	}
}

func TestGradientParallelMatchesSequential(t *testing.T) {
	const n = 2500
	sp := points.Generate(points.Cube, n, 85)
	tp := points.Generate(points.Cube, n, 86)
	q := points.Charges(n, 87)
	k := kernel.NewLaplace(6)
	plan, err := NewPlan(sp, tp, k, Options{Threshold: 40})
	if err != nil {
		t.Fatal(err)
	}
	_, want, err := plan.EvaluateSequentialGrad(q)
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := plan.Evaluate(q, ExecOptions{Localities: 2, Workers: 2, Gradient: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Gradients == nil {
		t.Fatal("no gradients returned")
	}
	var den float64
	for i := range want {
		if m := want[i].Norm(); m > den {
			den = m
		}
	}
	for i := range want {
		if rep.Gradients[i].Sub(want[i]).Norm()/den > 1e-9 {
			t.Fatalf("gradient mismatch at %d", i)
		}
	}
}

func TestNewtonThirdLawOnIdenticalEnsembles(t *testing.T) {
	// For an isolated self-interacting system, internal forces sum to zero
	// (momentum conservation): sum_i q_i * grad_i = 0 for the symmetric
	// kernel.
	const n = 3000
	pts := points.Generate(points.Plummer, n, 88)
	q := points.UnitCharges(n)
	k := kernel.NewLaplace(kernel.OrderForDigits(3))
	plan, err := NewPlan(pts, pts, k, Options{Threshold: 40})
	if err != nil {
		t.Fatal(err)
	}
	_, grad, err := plan.EvaluateSequentialGrad(q)
	if err != nil {
		t.Fatal(err)
	}
	var total geom.Point
	var scale float64
	for i := range grad {
		total = total.Add(grad[i].Scale(q[i]))
		scale += grad[i].Norm()
	}
	if total.Norm()/scale > 1e-4 {
		t.Errorf("net internal force %.2e of total force magnitude", total.Norm()/scale)
	}
}

func TestGradientRejectsUnsupportedKernel(t *testing.T) {
	// All built-in kernels support gradients; the error path is still
	// exercised through the interface check with a wrapper.
	const n = 200
	sp := points.Generate(points.Cube, n, 90)
	tp := points.Generate(points.Cube, n, 91)
	plan, err := NewPlan(sp, tp, nonGradKernel{kernel.NewLaplace(4)}, Options{Threshold: 30})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := plan.EvaluateSequentialGrad(points.Charges(n, 92)); err == nil {
		t.Error("gradient evaluation accepted a kernel without gradient support")
	}
}

// nonGradKernel hides the GradKernel methods of the wrapped kernel.
type nonGradKernel struct{ kernel.Kernel }
