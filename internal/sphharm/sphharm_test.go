package sphharm

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLegendreKnownValues(t *testing.T) {
	out := make([]float64, 6)
	Legendre(5, 0.5, out)
	want := []float64{1, 0.5, -0.125, -0.4375, -0.2890625, 0.08984375}
	for n, w := range want {
		if math.Abs(out[n]-w) > 1e-14 {
			t.Errorf("P_%d(0.5) = %v, want %v", n, out[n], w)
		}
	}
}

func TestLegendreEndpoints(t *testing.T) {
	out := make([]float64, 11)
	Legendre(10, 1, out)
	for n := 0; n <= 10; n++ {
		if math.Abs(out[n]-1) > 1e-13 {
			t.Errorf("P_%d(1) = %v, want 1", n, out[n])
		}
	}
	Legendre(10, -1, out)
	for n := 0; n <= 10; n++ {
		want := 1.0
		if n%2 == 1 {
			want = -1
		}
		if math.Abs(out[n]-want) > 1e-13 {
			t.Errorf("P_%d(-1) = %v, want %v", n, out[n], want)
		}
	}
}

func TestAssocLegendreMatchesLegendre(t *testing.T) {
	// P_n^0 must equal P_n.
	p := 12
	tri := make([]float64, TriSize(p))
	leg := make([]float64, p+1)
	for _, x := range []float64{-0.9, -0.3, 0, 0.4, 0.77, 0.999} {
		AssocLegendre(p, x, tri)
		Legendre(p, x, leg)
		for n := 0; n <= p; n++ {
			if math.Abs(tri[TriIndex(n, 0)]-leg[n]) > 1e-12*math.Max(1, math.Abs(leg[n])) {
				t.Errorf("x=%v: P_%d^0 = %v, want %v", x, n, tri[TriIndex(n, 0)], leg[n])
			}
		}
	}
}

func TestAssocLegendreKnownValues(t *testing.T) {
	// Without Condon–Shortley phase: P_1^1 = sin(theta), P_2^1 = 3 x sin,
	// P_2^2 = 3 sin^2.
	x := 0.3
	s := math.Sqrt(1 - x*x)
	tri := make([]float64, TriSize(3))
	AssocLegendre(3, x, tri)
	cases := []struct {
		n, m int
		want float64
	}{
		{1, 1, s},
		{2, 1, 3 * x * s},
		{2, 2, 3 * s * s},
		{3, 3, 15 * s * s * s},
		{3, 1, 1.5 * s * (5*x*x - 1)},
	}
	for _, c := range cases {
		got := tri[TriIndex(c.n, c.m)]
		if math.Abs(got-c.want) > 1e-13 {
			t.Errorf("P_%d^%d(%v) = %v, want %v", c.n, c.m, x, got, c.want)
		}
	}
}

func TestYnmOrthonormality(t *testing.T) {
	// Numerically integrate Y_a conj(Y_b) over the sphere with a product
	// Gauss–Legendre x trapezoid rule and check the identity matrix appears.
	p := 6
	c := NewCoef(p)
	nth := p + 2
	nph := 2*p + 3
	xs, ws := GaussLegendre(nth)
	ylm := make([]complex128, SqSize(p))
	scratch := make([]float64, TriSize(p))
	gram := make([]complex128, SqSize(p)*SqSize(p))
	for i := 0; i < nth; i++ {
		for j := 0; j < nph; j++ {
			phi := 2 * math.Pi * float64(j) / float64(nph)
			c.Ynm(xs[i], phi, ylm, scratch)
			w := ws[i] * 2 * math.Pi / float64(nph)
			for a := 0; a < SqSize(p); a++ {
				for b := 0; b < SqSize(p); b++ {
					gram[a*SqSize(p)+b] += complex(w, 0) * ylm[a] * cmplx.Conj(ylm[b])
				}
			}
		}
	}
	for a := 0; a < SqSize(p); a++ {
		for b := 0; b < SqSize(p); b++ {
			want := complex(0, 0)
			if a == b {
				want = 1
			}
			if cmplx.Abs(gram[a*SqSize(p)+b]-want) > 1e-10 {
				t.Fatalf("gram[%d,%d] = %v, want %v", a, b, gram[a*SqSize(p)+b], want)
			}
		}
	}
}

func TestYnmAdditionTheorem(t *testing.T) {
	// sum_m Y_n^m(a) conj(Y_n^m(b)) = (2n+1)/(4 pi) P_n(cos gamma).
	p := 10
	c := NewCoef(p)
	rng := rand.New(rand.NewSource(7))
	ya := make([]complex128, SqSize(p))
	yb := make([]complex128, SqSize(p))
	scratch := make([]float64, TriSize(p))
	leg := make([]float64, p+1)
	for trial := 0; trial < 20; trial++ {
		ct1 := 2*rng.Float64() - 1
		ph1 := 2 * math.Pi * rng.Float64()
		ct2 := 2*rng.Float64() - 1
		ph2 := 2 * math.Pi * rng.Float64()
		c.Ynm(ct1, ph1, ya, scratch)
		c.Ynm(ct2, ph2, yb, scratch)
		st1 := math.Sqrt(1 - ct1*ct1)
		st2 := math.Sqrt(1 - ct2*ct2)
		cosg := ct1*ct2 + st1*st2*math.Cos(ph1-ph2)
		Legendre(p, cosg, leg)
		for n := 0; n <= p; n++ {
			var sum complex128
			for m := -n; m <= n; m++ {
				sum += ya[SqIndex(n, m)] * cmplx.Conj(yb[SqIndex(n, m)])
			}
			want := float64(2*n+1) / (4 * math.Pi) * leg[n]
			if math.Abs(real(sum)-want) > 1e-11 || math.Abs(imag(sum)) > 1e-11 {
				t.Fatalf("trial %d n=%d: sum=%v want %v", trial, n, sum, want)
			}
		}
	}
}

func TestGaussLegendreExactness(t *testing.T) {
	// n-point Gauss–Legendre is exact for polynomials of degree 2n-1.
	for _, n := range []int{1, 2, 3, 5, 8, 16, 31} {
		x, w := GaussLegendre(n)
		for deg := 0; deg <= 2*n-1; deg++ {
			var got float64
			for i := range x {
				got += w[i] * math.Pow(x[i], float64(deg))
			}
			want := 0.0
			if deg%2 == 0 {
				want = 2 / float64(deg+1)
			}
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("n=%d deg=%d: integral=%v want %v", n, deg, got, want)
			}
		}
	}
}

func TestGaussLegendreWeightsSum(t *testing.T) {
	for _, n := range []int{1, 4, 9, 33, 64} {
		_, w := GaussLegendre(n)
		var s float64
		for _, v := range w {
			s += v
		}
		if math.Abs(s-2) > 1e-12 {
			t.Errorf("n=%d: weight sum %v, want 2", n, s)
		}
	}
}

func TestBesselIKnownValues(t *testing.T) {
	out := make([]float64, 4)
	for _, x := range []float64{0.1, 1, 3, 10} {
		BesselI(3, x, out)
		i0 := math.Sinh(x) / x
		i1 := (x*math.Cosh(x) - math.Sinh(x)) / (x * x)
		i2 := ((x*x+3)*math.Sinh(x) - 3*x*math.Cosh(x)) / (x * x * x)
		for n, want := range []float64{i0, i1, i2} {
			if math.Abs(out[n]-want) > 1e-12*math.Max(1, math.Abs(want)) {
				t.Errorf("i_%d(%v) = %v, want %v", n, x, out[n], want)
			}
		}
	}
}

func TestBesselKKnownValues(t *testing.T) {
	out := make([]float64, 3)
	for _, x := range []float64{0.2, 1, 5, 40} {
		BesselK(2, x, out)
		k0 := math.Pi / 2 * math.Exp(-x) / x
		k1 := math.Pi / 2 * math.Exp(-x) * (1/x + 1/(x*x))
		k2 := math.Pi / 2 * math.Exp(-x) * (1/x + 3/(x*x) + 3/(x*x*x))
		for n, want := range []float64{k0, k1, k2} {
			if math.Abs(out[n]-want) > 1e-12*math.Abs(want) {
				t.Errorf("k_%d(%v) = %v, want %v", n, x, out[n], want)
			}
		}
	}
}

func TestBesselWronskian(t *testing.T) {
	// i_n(x) k_{n+1}(x) + i_{n+1}(x) k_n(x) = pi / (2 x^2).
	p := 15
	iv := make([]float64, p+2)
	kv := make([]float64, p+2)
	for _, x := range []float64{0.05, 0.7, 2, 9, 35, 120} {
		BesselI(p+1, x, iv)
		BesselK(p+1, x, kv)
		want := math.Pi / (2 * x * x)
		for n := 0; n <= p; n++ {
			got := iv[n]*kv[n+1] + iv[n+1]*kv[n]
			if math.Abs(got-want) > 1e-10*want {
				t.Errorf("x=%v n=%d: Wronskian %v, want %v", x, n, got, want)
			}
		}
	}
}

func TestBesselIScaledMatches(t *testing.T) {
	p := 10
	a := make([]float64, p+1)
	b := make([]float64, p+1)
	for _, x := range []float64{0.3, 5, 50, 250, 400, 800} {
		BesselIScaled(p, x, a)
		if x < 290 {
			BesselI(p, x, b)
			s := math.Exp(-x)
			for n := 0; n <= p; n++ {
				if math.Abs(a[n]-b[n]*s) > 1e-12*math.Max(1e-300, math.Abs(b[n]*s)) {
					t.Errorf("x=%v n=%d: scaled %v vs %v", x, n, a[n], b[n]*s)
				}
			}
		}
		// Scaled i_0 closed form.
		want := (1 - math.Exp(-2*x)) / (2 * x)
		if math.Abs(a[0]-want) > 1e-12*want {
			t.Errorf("x=%v: scaled i_0 = %v, want %v", x, a[0], want)
		}
	}
}

func TestBesselRecurrenceProperty(t *testing.T) {
	// Property: i_{n-1} - i_{n+1} = (2n+1)/x i_n for random x.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := 0.05 + 20*rng.Float64()
		p := 8
		iv := make([]float64, p+2)
		BesselI(p+1, x, iv)
		for n := 1; n <= p; n++ {
			lhs := iv[n-1] - iv[n+1]
			rhs := float64(2*n+1) / x * iv[n]
			if math.Abs(lhs-rhs) > 1e-9*math.Max(1e-30, math.Abs(lhs)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTriSqIndexing(t *testing.T) {
	// The packed layouts must be bijective and in-bounds.
	p := 9
	seen := make(map[int]bool)
	for n := 0; n <= p; n++ {
		for m := 0; m <= n; m++ {
			i := TriIndex(n, m)
			if i < 0 || i >= TriSize(p) || seen[i] {
				t.Fatalf("TriIndex(%d,%d) = %d invalid or duplicate", n, m, i)
			}
			seen[i] = true
		}
	}
	if len(seen) != TriSize(p) {
		t.Fatalf("TriIndex covers %d of %d slots", len(seen), TriSize(p))
	}
	seen = make(map[int]bool)
	for n := 0; n <= p; n++ {
		for m := -n; m <= n; m++ {
			i := SqIndex(n, m)
			if i < 0 || i >= SqSize(p) || seen[i] {
				t.Fatalf("SqIndex(%d,%d) = %d invalid or duplicate", n, m, i)
			}
			seen[i] = true
		}
	}
	if len(seen) != SqSize(p) {
		t.Fatalf("SqIndex covers %d of %d slots", len(seen), SqSize(p))
	}
}
