package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/points"
)

// TestServeChaos is the self-healing gate (`make serve-chaos`): a daemon
// with a real forked worker pool serves concurrent distributed requests
// while one worker is SIGKILLed mid-load. Every request must either return
// potentials matching the sequential reference at 1e-12 (distributed, or
// degraded in-process) or fail closed as a degraded 503 — never hang,
// never return silently-wrong values. Afterwards the supervisor must have
// respawned and re-admitted the worker (generation bump visible in
// /metrics) and distributed service must resume.
func TestServeChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("forks worker processes")
	}
	const n = 2500
	const chargeSeeds = 4

	// Sequential references, one per charge vector in play, built exactly
	// as planEntry.ensureBuilt builds the served plan (digits-derived order,
	// default method and threshold).
	sp := points.Generate(points.Cube, n, 1)
	tp := points.Generate(points.Cube, n, 2)
	k := kernel.NewLaplace(kernel.OrderForDigits(3))
	refPlan, err := core.NewPlan(sp, tp, k, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[int64][]float64, chargeSeeds)
	for seed := int64(3); seed < 3+chargeSeeds; seed++ {
		w, err := refPlan.EvaluateSequential(points.Charges(n, seed))
		if err != nil {
			t.Fatal(err)
		}
		want[seed] = w
	}

	pool := fastPool(t, 2, func(cfg *PoolConfig) {
		cfg.BreakerCooldown = 500 * time.Millisecond
	})
	srv := New(Config{DistThreshold: 1000, MaxQueue: 64, MaxConcurrent: 2})
	srv.AttachPool(pool)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	check := func(t *testing.T, seed int64, status int, resp *Response, eb *errorBody) (distributed bool) {
		t.Helper()
		switch status {
		case http.StatusOK:
			if len(resp.Potentials) != n {
				t.Fatalf("%d potentials, want %d", len(resp.Potentials), n)
			}
			for i, w := range want[seed] {
				if math.Abs(resp.Potentials[i]-w) > 1e-12 {
					t.Fatalf("seed %d potential %d differs: %v vs %v (distributed=%v degraded=%v)",
						seed, i, resp.Potentials[i], w, resp.Report.Distributed, resp.Report.Degraded)
				}
			}
			return resp.Report.Distributed
		case http.StatusServiceUnavailable:
			// Acceptable only as an honest degraded refusal.
			if eb == nil || !eb.Degraded {
				t.Fatalf("503 without the degraded marker: %+v", eb)
			}
			return false
		default:
			t.Fatalf("status %d: %+v", status, eb)
			return false
		}
	}

	// Warm-up: the first request must go over the fabric and hit the gate.
	status, resp, eb := post(t, hs.URL, Request{N: n, ChargeSeed: 3, DeadlineMS: 60_000})
	if status != http.StatusOK || !resp.Report.Distributed {
		t.Fatalf("warm-up: status=%d report=%+v err=%+v", status, resp, eb)
	}
	check(t, 3, status, resp, eb)

	// Concurrent load; one worker is SIGKILLed while it flows.
	type result struct {
		seed   int64
		status int
		resp   *Response
		eb     *errorBody
	}
	var wg sync.WaitGroup
	results := make(chan result, 3*chargeSeeds)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < chargeSeeds; i++ {
				seed := int64(3 + (g+i)%chargeSeeds)
				st, r, e := post(t, hs.URL, Request{N: n, ChargeSeed: seed, DeadlineMS: 60_000})
				results <- result{seed, st, r, e}
			}
		}(g)
	}
	time.Sleep(150 * time.Millisecond)
	pool.ranks[1].kill() // SIGKILL mid-load
	wg.Wait()
	close(results)
	sawDistributed := false
	for r := range results {
		if check(t, r.seed, r.status, r.resp, r.eb) {
			sawDistributed = true
		}
	}
	if !sawDistributed {
		t.Error("no request completed distributed during the chaos window")
	}

	// Self-healing: the supervisor respawns the corpse, the cluster
	// re-admits it with a bumped generation, and /metrics shows it.
	deadline := time.Now().Add(60 * time.Second)
	for {
		s := pool.Snapshot()
		healed := s.Generation >= 1
		for _, rh := range s.Ranks {
			if rh.State != "up" {
				healed = false
			}
		}
		if healed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never healed: %+v", s)
		}
		time.Sleep(20 * time.Millisecond)
	}
	mr, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var ms MetricsSnapshot
	if err := json.NewDecoder(mr.Body).Decode(&ms); err != nil {
		t.Fatal(err)
	}
	mr.Body.Close()
	if ms.Dist == nil || ms.Dist.Generation < 1 {
		t.Fatalf("/metrics dist = %+v, want generation >= 1", ms.Dist)
	}

	// Distributed service resumes on the healed pool (the breaker may need
	// its cooldown plus one probe; keep asking until a request goes over
	// the fabric again).
	deadline = time.Now().Add(60 * time.Second)
	for {
		status, resp, eb = post(t, hs.URL, Request{N: n, ChargeSeed: 4, DeadlineMS: 60_000})
		if check(t, 4, status, resp, eb) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("distributed service never resumed after the heal")
		}
		time.Sleep(200 * time.Millisecond)
	}
}
