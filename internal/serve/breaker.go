package serve

import (
	"sync"
	"time"
)

// Circuit breaker for the distributed path. Closed: distributed requests
// flow. A run of consecutive failures opens it; while open, every
// distributed-eligible request short-circuits straight to the in-process
// fallback (marked Degraded) instead of burning its deadline against a
// broken fabric. After a cooldown the breaker goes half-open: one probe
// request is let through, and its outcome closes or re-opens the breaker.
// ForceOpen pins it open — the supervisor pulls that lever when a rank's
// restart budget is exhausted, because no amount of probing brings an
// abandoned rank back; only Reset (a successful re-admission) unpins it.
type breaker struct {
	threshold int           // consecutive failures that open the breaker
	cooldown  time.Duration // open → half-open delay

	mu       sync.Mutex
	failures int       // guarded by mu: consecutive failures
	state    string    // guarded by mu: closed | open | half-open | forced-open
	openedAt time.Time // guarded by mu
	probing  bool      // guarded by mu: a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown, state: "closed"}
}

// allow reports whether a distributed attempt may proceed.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case "closed":
		return true
	case "forced-open":
		return false
	case "open":
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = "half-open"
		b.probing = true
		return true
	case "half-open":
		// One probe at a time; everyone else stays degraded until it lands.
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// success records a completed distributed evaluation.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == "forced-open" {
		return
	}
	b.failures = 0
	b.probing = false
	b.state = "closed"
}

// failure records a failed distributed evaluation.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == "forced-open" {
		return
	}
	b.failures++
	b.probing = false
	if b.state == "half-open" || b.failures >= b.threshold {
		b.state = "open"
		b.openedAt = time.Now()
	}
}

// forceOpen pins the breaker open until Reset.
func (b *breaker) forceOpen() {
	b.mu.Lock()
	b.state = "forced-open"
	b.probing = false
	b.mu.Unlock()
}

// reset returns a forced-open breaker to service (a rank was successfully
// re-admitted after an abandon). No-op otherwise.
func (b *breaker) reset() {
	b.mu.Lock()
	if b.state == "forced-open" {
		b.state = "closed"
		b.failures = 0
	}
	b.mu.Unlock()
}

// current reports the breaker state for /metrics.
func (b *breaker) current() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
