#!/bin/sh
# Runs the hot-path benchmark suite (lock-free deque, cached M→L
# operators, batched multi-RHS M→L, zero-allocation evaluation, and the
# detector-armed hot path — the 'BenchmarkEvaluateHotPath' pattern matches
# the plain, Detector, and Batched variants) and writes the results as
# machine-readable JSON to BENCH_hotpath.json in the repository root.
# A pre-existing BENCH_hotpath.json is kept as BENCH_hotpath.prev.json and
# a ns/op comparison is printed; a missing prior file is fine — the
# comparison is simply skipped.
#
# Usage: scripts/bench.sh [extra go test args...]
#        scripts/bench.sh serve   # warm-vs-cold serving benchmark -> BENCH_serve.json
#        scripts/bench.sh load    # production load harness -> BENCH_load.json
set -eu

cd "$(dirname "$0")/.."

# Production load harness: start a real dashmm-serve (with a persistent plan
# store in a scratch directory), drive it with dashmm-load's scripted
# cold/warm/mixed phases, and verify the emitted BENCH_load.json — including
# that warm traffic actually hit the plan cache. Every failure is loud: a
# server that will not start, a harness error, or malformed/hollow JSON all
# exit non-zero without writing a final BENCH_load.json.
# Override the phase script with LOAD_PHASES, the listen address with
# LOAD_ADDR; extra args go to dashmm-load.
if [ "${1:-}" = "load" ]; then
    shift
    addr="${LOAD_ADDR:-127.0.0.1:18075}"
    phases="${LOAD_PHASES:-cold:3s:8,warm:6s:25,mixed:4s:20}"
    bin=$(mktemp -d)
    store=$(mktemp -d)
    srv=""
    cleanup() {
        [ -n "$srv" ] && kill "$srv" 2>/dev/null || true
        [ -n "$srv" ] && wait "$srv" 2>/dev/null || true
        rm -rf "$bin" "$store"
    }
    trap cleanup EXIT
    go build -o "$bin" ./cmd/dashmm-serve ./cmd/dashmm-load

    "$bin/dashmm-serve" -addr "$addr" -store "$store" \
        -max-queue 256 -max-concurrent 4 -cache-size 64 &
    srv=$!

    # -wait polls /healthz, so server and harness start back to back; the
    # output goes to a temp file first so a failed run never leaves a
    # half-written BENCH_load.json behind.
    out=$(mktemp)
    if ! "$bin/dashmm-load" -url "http://$addr" -wait 15s \
        -n 2000 -tenants 4 -phases "$phases" -out "$out" "$@"; then
        rm -f "$out"
        echo "bench.sh: dashmm-load failed; not writing BENCH_load.json" >&2
        exit 1
    fi
    if ! "$bin/dashmm-load" -verify "$out" -require-warm-hits; then
        rm -f "$out"
        echo "bench.sh: BENCH_load.json failed verification" >&2
        exit 1
    fi
    mv "$out" BENCH_load.json
    echo "wrote BENCH_load.json"
    exit 0
fi

# run_bench go-test-args...: run `go test` echoing its output and appending
# it to $raw, failing the whole script when go test fails. The previous
# `go test ... | tee` form swallowed failures — a pipeline's exit status is
# the last command's (tee's), so a compile error or benchmark panic still
# produced a BENCH_*.json with partial (or no) data. POSIX sh has no
# pipefail, so capture to a file and test the status explicitly.
run_bench() {
    _out=$(mktemp)
    if ! go test "$@" >"$_out" 2>&1; then
        cat "$_out" >&2
        rm -f "$_out"
        echo "bench.sh: 'go test $*' failed; not writing benchmark JSON" >&2
        exit 1
    fi
    cat "$_out"
    cat "$_out" >>"$raw"
    rm -f "$_out"
}

# Serving throughput: cold requests (fresh plan + operators + runtime per
# request) against the warm steady state (plan cache + pooled runtime).
# The printed speedup is the number EXPERIMENTS.md quotes.
if [ "${1:-}" = "serve" ]; then
    shift
    raw=$(mktemp)
    trap 'rm -f "$raw"' EXIT
    run_bench ./internal/serve -run '^$' \
        -bench 'BenchmarkServe(Cold|Warm)' \
        -benchtime 3x -timeout 20m "$@"
    awk '
    BEGIN { print "["; first = 1 }
    /^Benchmark/ {
        name = $1; iters = $2
        if (!first) printf ",\n"
        first = 0
        printf "  {\"name\": \"%s\", \"iterations\": %s", name, iters
        for (i = 3; i < NF; i += 2) {
            unit = $(i + 1)
            gsub(/\//, "_per_", unit)
            gsub(/[^A-Za-z0-9_]/, "_", unit)
            printf ", \"%s\": %s", unit, $i
        }
        printf "}"
    }
    END { print "\n]" }
    ' "$raw" > BENCH_serve.json
    echo "wrote BENCH_serve.json"
    awk '
    match($0, /"name": "[^"]*"/) {
        name = substr($0, RSTART + 9, RLENGTH - 10)
        if (match($0, /"ns_per_op": [0-9.e+]*/))
            ns[name] = substr($0, RSTART + 13, RLENGTH - 13)
    }
    END {
        cold = ns["BenchmarkServeCold"]
        warm = ns["BenchmarkServeWarm"]
        if (cold + 0 > 0 && warm + 0 > 0)
            printf "warm-cache speedup: cold %s -> warm %s ns/op (%.1fx)\n", cold, warm, cold / warm
    }
    ' BENCH_serve.json
    exit 0
fi

prev=""
if [ -f BENCH_hotpath.json ]; then
    prev=BENCH_hotpath.prev.json
    cp BENCH_hotpath.json "$prev"
else
    echo "no prior BENCH_hotpath.json — skipping comparison"
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

run_bench ./internal/amt -run '^$' \
    -bench 'BenchmarkDequePushPop|BenchmarkStealContention' \
    -benchmem "$@"
run_bench ./internal/kernel -run '^$' \
    -bench 'BenchmarkM2LCachedVsProjected' \
    -benchmem "$@"
run_bench . -run '^$' \
    -bench 'BenchmarkEvaluateHotPath|BenchmarkM2LBatchedVsSingle' \
    -benchtime 3x -timeout 40m "$@"

# Convert `go test -bench` lines into a JSON array: one object per
# benchmark with ns/op, allocations, and any custom ReportMetric columns.
awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1; iters = $2
    if (!first) printf ",\n"
    first = 0
    printf "  {\"name\": \"%s\", \"iterations\": %s", name, iters
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/[^A-Za-z0-9_]/, "_", unit)
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
}
END { print "\n]" }
' "$raw" > BENCH_hotpath.json

echo "wrote BENCH_hotpath.json"

# Failure-detector overhead on a crash-free run: the Detector variant of
# the evaluation benchmark against the plain one from the same run. The
# heartbeat is one atomic counter bump per task plus an idle monitor
# goroutine, so this is expected to sit within run-to-run noise.
awk '
match($0, /"name": "[^"]*"/) {
    name = substr($0, RSTART + 9, RLENGTH - 10)
    if (match($0, /"ns_per_op": [0-9.e+]*/))
        ns[name] = substr($0, RSTART + 13, RLENGTH - 13)
}
END {
    base = ns["BenchmarkEvaluateHotPath"]
    det = ns["BenchmarkEvaluateHotPathDetector"]
    if (base + 0 > 0 && det + 0 > 0)
        printf "detector-enabled no-crash overhead: %s -> %s ns/op (%+.1f%%)\n", base, det, (det - base) / base * 100
}
' BENCH_hotpath.json

# Batched-execution win on the dense-M2L method: the per-edge sub-benchmark
# of the Basic-method hot path against the batched default from the same
# run (tentpole acceptance: batched must be faster end to end).
awk '
match($0, /"name": "[^"]*"/) {
    name = substr($0, RSTART + 9, RLENGTH - 10)
    if (match($0, /"ns_per_op": [0-9.e+]*/))
        ns[name] = substr($0, RSTART + 13, RLENGTH - 13)
}
END {
    per = ns["BenchmarkEvaluateHotPathBatched/per-edge"]
    bat = ns["BenchmarkEvaluateHotPathBatched/batched"]
    if (per + 0 > 0 && bat + 0 > 0)
        printf "batched-execution end-to-end win: per-edge %s -> batched %s ns/op (%.2fx)\n", per, bat, per / bat
}
' BENCH_hotpath.json

# Compare ns/op against the prior run, when one exists.
if [ -n "$prev" ]; then
    echo "ns/op vs $prev:"
    awk '
    # Both files are one-object-per-line JSON arrays produced above; pull
    # out (name, ns_per_op) pairs without needing a JSON parser.
    match($0, /"name": "[^"]*"/) {
        name = substr($0, RSTART + 9, RLENGTH - 10)
        ns = ""
        if (match($0, /"ns_per_op": [0-9.e+]*/))
            ns = substr($0, RSTART + 13, RLENGTH - 13)
        if (ns == "") next
        if (NR == FNR) { old[name] = ns; next }
        if (name in old && old[name] + 0 > 0)
            printf "  %-60s %12s -> %12s  (%+.1f%%)\n", name, old[name], ns, (ns - old[name]) / old[name] * 100
        else
            printf "  %-60s %12s -> %12s  (new)\n", name, "-", ns
    }
    ' "$prev" BENCH_hotpath.json
fi
