package amt

import (
	"sync/atomic"
	"testing"
	"time"
)

// sendN fires n parcels from locality 0 to locality 1 and returns how many
// times each action ran plus the run's stats.
func sendN(t *testing.T, cfg Config, n int) ([]int64, Stats) {
	t.Helper()
	rt := New(cfg)
	runs := make([]int64, n)
	stats := rt.Run(func() {
		rt.Locality(0).Spawn(func(w *Worker) {
			for i := 0; i < n; i++ {
				i := i
				w.SendParcel(1, 64, func(w2 *Worker) {
					atomic.AddInt64(&runs[i], 1)
				})
			}
		})
	})
	return runs, stats
}

func assertExactlyOnce(t *testing.T, runs []int64) {
	t.Helper()
	for i, r := range runs {
		if r != 1 {
			t.Fatalf("parcel %d action ran %d times, want exactly 1", i, r)
		}
	}
}

func TestPerfectTransportIsBypassed(t *testing.T) {
	runs, stats := sendN(t, Config{Localities: 2, Workers: 2}, 50)
	assertExactlyOnce(t, runs)
	tr := stats.Transport
	if tr.Sent != 0 || tr.Retried != 0 || tr.Deduped != 0 {
		t.Errorf("perfect zero-latency wire took the reliable path: %+v", tr)
	}
	if stats.ParcelsSent != 50 {
		t.Errorf("parcelsSent = %d, want 50", stats.ParcelsSent)
	}
}

func TestReliableDeliveryUnderDrop(t *testing.T) {
	const n = 200
	cfg := Config{
		Localities: 2, Workers: 2, Seed: 1,
		Transport: NewFaultyTransport(FaultProfile{Seed: 1, Drop: 0.3}),
		Delivery:  DeliveryConfig{RetryBase: time.Millisecond, Deadline: 20 * time.Second},
	}
	runs, stats := sendN(t, cfg, n)
	assertExactlyOnce(t, runs)
	tr := stats.Transport
	if tr.Sent != n {
		t.Errorf("sent = %d, want %d", tr.Sent, n)
	}
	if tr.Delivered != n {
		t.Errorf("delivered = %d, want %d", tr.Delivered, n)
	}
	if tr.Dropped == 0 {
		t.Error("30%% drop rate injected no drops")
	}
	if tr.Retried == 0 {
		t.Error("drops recovered without a single retry")
	}
	if tr.DeadlineExceeded != 0 {
		t.Errorf("%d parcels exceeded the deadline", tr.DeadlineExceeded)
	}
	if tr.Acked != n {
		t.Errorf("acked = %d, want %d", tr.Acked, n)
	}
}

func TestDedupUnderDuplication(t *testing.T) {
	const n = 200
	cfg := Config{
		Localities: 2, Workers: 2, Seed: 2,
		Transport: NewFaultyTransport(FaultProfile{Seed: 2, Duplicate: 0.5}),
	}
	runs, stats := sendN(t, cfg, n)
	assertExactlyOnce(t, runs)
	tr := stats.Transport
	if tr.Duplicated == 0 {
		t.Error("50%% duplication injected no duplicates")
	}
	if tr.Deduped == 0 {
		t.Error("duplicated deliveries were not deduplicated")
	}
}

func TestReorderAndDelayStillDeliverAll(t *testing.T) {
	const n = 100
	cfg := Config{
		Localities: 3, Workers: 2, Seed: 3,
		Transport: NewFaultyTransport(FaultProfile{
			Seed: 3, Delay: 200 * time.Microsecond,
			Reorder: true, ReorderJitter: 2 * time.Millisecond,
		}),
	}
	rt := New(cfg)
	runs := make([]int64, n)
	rt.Run(func() {
		rt.Locality(0).Spawn(func(w *Worker) {
			for i := 0; i < n; i++ {
				i := i
				w.SendParcel(1+i%2, 64, func(w2 *Worker) {
					atomic.AddInt64(&runs[i], 1)
				})
			}
		})
	})
	assertExactlyOnce(t, runs)
}

func TestSlowRankDelaysItsParcels(t *testing.T) {
	const pause = 10 * time.Millisecond
	cfg := Config{
		Localities: 2, Workers: 1, Seed: 4,
		Transport: NewFaultyTransport(FaultProfile{Seed: 4, SlowRank: 1, SlowDelay: pause}),
	}
	rt := New(cfg)
	start := time.Now()
	var arrived time.Duration
	rt.Run(func() {
		rt.Locality(0).Spawn(func(w *Worker) {
			w.SendParcel(1, 8, func(w2 *Worker) { arrived = time.Since(start) })
		})
	})
	if arrived < pause {
		t.Errorf("parcel to the paused rank arrived after %v, want >= %v", arrived, pause)
	}
}

// TestDeliveryDeadlineExceeded: with every message dropped the sender must
// eventually give up, count the failure, and let the runtime drain rather
// than hang.
func TestDeliveryDeadlineExceeded(t *testing.T) {
	const n = 5
	cfg := Config{
		Localities: 2, Workers: 1, Seed: 5,
		Transport: NewFaultyTransport(FaultProfile{Seed: 5, Drop: 1.0}),
		Delivery: DeliveryConfig{
			RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond,
			Deadline: 50 * time.Millisecond,
		},
	}
	done := make(chan struct{})
	var runs []int64
	var stats Stats
	go func() {
		runs, stats = sendN(t, cfg, n)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("runtime hung on undeliverable parcels")
	}
	for i, r := range runs {
		if r != 0 {
			t.Errorf("parcel %d ran %d times over a fully lossy wire", i, r)
		}
	}
	if stats.Transport.DeadlineExceeded != n {
		t.Errorf("deadlineExceeded = %d, want %d", stats.Transport.DeadlineExceeded, n)
	}
}

// TestLCOExactlyOnceOverFaultyWire wires the two halves together: parcel
// inputs into an LCO over a dropping+duplicating wire must trigger it
// exactly once with zero overflow — the delivery layer dedups before the
// LCO ever sees an input.
func TestLCOExactlyOnceOverFaultyWire(t *testing.T) {
	const inputs = 64
	rt := New(Config{
		Localities: 2, Workers: 2, Seed: 6,
		Transport: NewFaultyTransport(FaultProfile{Seed: 6, Drop: 0.2, Duplicate: 0.2}),
		Delivery:  DeliveryConfig{RetryBase: time.Millisecond},
	})
	var sum atomic.Int64
	var fired atomic.Int64
	lco := NewLCO(rt.Locality(1), inputs)
	rt.Run(func() {
		lco.Register(func(w *Worker) { fired.Add(1) })
		rt.Locality(0).Spawn(func(w *Worker) {
			for i := 1; i <= inputs; i++ {
				v := int64(i)
				w.SendParcel(1, 32, func(w2 *Worker) {
					lco.Input(func() { sum.Add(v) })
				})
			}
		})
	})
	if fired.Load() != 1 {
		t.Fatalf("LCO fired %d times", fired.Load())
	}
	if sum.Load() != inputs*(inputs+1)/2 {
		t.Errorf("reduction = %d, want %d", sum.Load(), inputs*(inputs+1)/2)
	}
	if lco.Overflow() != 0 {
		t.Errorf("overflow = %d: duplicate wire deliveries reached the LCO", lco.Overflow())
	}
}

// TestMemputExactlyOnceOverFaultyWire: GAS writes ride SendParcel, so they
// inherit reliable delivery — the done continuation runs exactly once.
func TestMemputExactlyOnceOverFaultyWire(t *testing.T) {
	rt := New(Config{
		Localities: 2, Workers: 2, Seed: 7,
		Transport: NewFaultyTransport(FaultProfile{Seed: 7, Drop: 0.3, Duplicate: 0.3}),
		Delivery:  DeliveryConfig{RetryBase: time.Millisecond},
	})
	addr := rt.Alloc(1, 8)
	var done atomic.Int64
	var got []byte
	rt.Run(func() {
		rt.Locality(0).Spawn(func(w *Worker) {
			w.Memput(addr, 0, []byte("parcels!"), func(w2 *Worker) {
				done.Add(1)
				b, ok := w2.TryPin(addr)
				if !ok {
					t.Error("memput destination not pinnable at owner")
					return
				}
				got = append([]byte(nil), b...)
			})
		})
	})
	if done.Load() != 1 {
		t.Fatalf("memput done continuation ran %d times", done.Load())
	}
	if string(got) != "parcels!" {
		t.Errorf("block = %q after memput", got)
	}
}
