package amt

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// The HPX-5 global address space (paper, Section III): a global shared
// memory abstraction over the localities. Allocation is performed through
// dynamic allocators (individual or block-cyclic), access goes through an
// asynchronous memput/memget API with modeled network accounting, and raw
// global addresses serve as targets for parcels. Within this in-process
// runtime a block is a byte slice owned by one locality; remote access
// costs a parcel, local access is direct — the same shared/distributed
// abstraction HPX-5 provides.

// GlobalAddr names a block of global memory: the owning locality and a
// runtime-unique block id.
type GlobalAddr struct {
	Locality int32
	Block    uint32
}

func (a GlobalAddr) String() string { return fmt.Sprintf("gas://%d/%d", a.Locality, a.Block) }

// gas is the per-runtime global address space state.
type gas struct {
	mu     sync.Mutex
	blocks map[GlobalAddr][]byte // guarded by mu
	next   atomic.Uint32
}

func (rt *Runtime) gasInit() {
	if rt.mem == nil {
		rt.mem = &gas{blocks: make(map[GlobalAddr][]byte)}
	}
}

// Alloc allocates one block of the given size owned by locality loc.
func (rt *Runtime) Alloc(loc int, size int) GlobalAddr {
	rt.gasInit()
	a := GlobalAddr{Locality: int32(loc), Block: rt.mem.next.Add(1)}
	rt.mem.mu.Lock()
	rt.mem.blocks[a] = make([]byte, size)
	rt.mem.mu.Unlock()
	return a
}

// AllocCyclic allocates n blocks of the given size distributed round-robin
// across the localities (the HPX-5 block-cyclic allocator).
func (rt *Runtime) AllocCyclic(n, size int) []GlobalAddr {
	out := make([]GlobalAddr, n)
	for i := range out {
		out[i] = rt.Alloc(i%len(rt.locs), size)
	}
	return out
}

// Free releases a block.
func (rt *Runtime) Free(a GlobalAddr) {
	rt.gasInit()
	rt.mem.mu.Lock()
	delete(rt.mem.blocks, a)
	rt.mem.mu.Unlock()
}

// TryPin resolves a global address to the local virtual alias of its block,
// as HPX-5's explicit address translation does. It fails if the block lives
// on another locality (translation is only valid on the owner).
func (w *Worker) TryPin(a GlobalAddr) ([]byte, bool) {
	if int32(w.Rank()) != a.Locality {
		return nil, false
	}
	rt := w.loc.rt
	rt.gasInit()
	rt.mem.mu.Lock()
	b, ok := rt.mem.blocks[a]
	rt.mem.mu.Unlock()
	return b, ok
}

// Memput asynchronously copies data into the block at a; done (which may be
// nil) runs at the destination locality after the write. Remote writes are
// accounted as parcels.
func (w *Worker) Memput(a GlobalAddr, offset int, data []byte, done Task) {
	payload := append([]byte(nil), data...)
	action := func(w2 *Worker) {
		rt := w2.loc.rt
		rt.mem.mu.Lock()
		b, ok := rt.mem.blocks[a]
		if ok {
			copy(b[offset:], payload)
		}
		rt.mem.mu.Unlock()
		if !ok {
			panic("amt: memput to freed block " + a.String())
		}
		if done != nil {
			done(w2)
		}
	}
	w.loc.rt.gasInit()
	w.SendParcel(int(a.Locality), len(data), action)
}

// Memget asynchronously reads size bytes at offset from the block at a and
// delivers them to the continuation on the caller's locality.
func (w *Worker) Memget(a GlobalAddr, offset, size int, cont func(w *Worker, data []byte)) {
	home := w.loc.Rank
	w.loc.rt.gasInit()
	w.SendParcel(int(a.Locality), 16, func(w2 *Worker) {
		rt := w2.loc.rt
		rt.mem.mu.Lock()
		b, ok := rt.mem.blocks[a]
		var out []byte
		if ok {
			out = append([]byte(nil), b[offset:offset+size]...)
		}
		rt.mem.mu.Unlock()
		if !ok {
			panic("amt: memget from freed block " + a.String())
		}
		w2.SendParcel(home, size, func(w3 *Worker) { cont(w3, out) })
	})
}
