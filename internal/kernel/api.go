package kernel

import (
	"math"

	"repro/internal/geom"
)

// The exported operator set, implemented on the shared engine. Each method
// borrows a scratch workspace from the kernel's free list so concurrent
// callers do not contend or allocate in steady state.

// Prepare implements Kernel.
func (b *base) Prepare(rootSide float64, maxLevel int) {
	b.preparePW(rootSide, maxLevel)
}

// Direct implements Kernel.
func (b *base) Direct(t, s geom.Point) float64 {
	r := t.Dist(s)
	if r == 0 {
		return 0
	}
	return b.directF(r)
}

// S2T implements Kernel. Coincident source/target pairs contribute nothing,
// which makes the traditional identical-ensemble N-body case (where each
// point is both a source and a target) come out right.
func (b *base) S2T(spts []geom.Point, q []float64, tpts []geom.Point, pot []float64) {
	for ti, t := range tpts {
		var acc float64
		for si, s := range spts {
			r := t.Dist(s)
			if r == 0 {
				continue
			}
			acc += q[si] * b.directF(r)
		}
		pot[ti] += acc
	}
}

// S2M implements Kernel.
func (b *base) S2M(c geom.Point, spts []geom.Point, q []float64, out []complex128) {
	ws := b.wsp.get(b)
	b.s2m(ws, c, spts, q, out)
	b.wsp.put(ws)
}

// S2L implements Kernel.
func (b *base) S2L(c geom.Point, spts []geom.Point, q []float64, out []complex128) {
	ws := b.wsp.get(b)
	b.s2l(ws, c, spts, q, out)
	b.wsp.put(ws)
}

// M2T implements Kernel.
func (b *base) M2T(c geom.Point, m []complex128, tpts []geom.Point, pot []float64) {
	ws := b.wsp.get(b)
	b.m2t(ws, c, m, tpts, pot)
	b.wsp.put(ws)
}

// L2T implements Kernel.
func (b *base) L2T(c geom.Point, l []complex128, tpts []geom.Point, pot []float64) {
	ws := b.wsp.get(b)
	b.l2t(ws, c, l, tpts, pot)
	b.wsp.put(ws)
}

// M2M implements Kernel. The projection sphere radius scales with the
// parent box so aliasing stays level-independent. The eight parent/child
// offsets recur for every box of a level, so the dense translation matrix
// is built once per (level, octant) and replayed (exactly the same linear
// operator, precomputed).
func (b *base) M2M(from, to geom.Point, childSide float64, in, out []complex128) {
	if mx := b.xlMatrix(0, to.Sub(from), childSide, b.radOut, b.radOut, b.aM2M*2*childSide); mx != nil {
		applyMatrix(mx, in, out)
		return
	}
	ws := b.wsp.get(b)
	b.translate(ws, from, to, b.aM2M*2*childSide, in, b.radOut, b.radOut, out)
	b.wsp.put(ws)
}

// M2L implements Kernel. The list-2 interaction offsets of same-level
// boxes recur for every box of a level (the classic 189-offset interaction
// list, up to 316 distinct lattice offsets with |d|∞ in [2,3]), so the
// dense M->L operator is built once per (kernel, box side, lattice offset)
// and replayed as a single matrix–vector multiply. Geometry off that
// lattice (or with the cache disabled) falls back to spectral projection.
func (b *base) M2L(from, to geom.Point, side float64, in, out []complex128) {
	if mx := b.m2lMatrix(from, to, side); mx != nil {
		applyMatrix(mx, in, out)
		return
	}
	ws := b.wsp.get(b)
	b.translate(ws, from, to, b.aM2L*side, in, b.radOut, b.radReg, out)
	b.wsp.put(ws)
}

// L2L implements Kernel. Like M2M, the eight offsets are matrix-cached.
func (b *base) L2L(from, to geom.Point, childSide float64, in, out []complex128) {
	if mx := b.xlMatrix(1, to.Sub(from), childSide, b.radReg, b.radReg, b.aL2L*childSide); mx != nil {
		applyMatrix(mx, in, out)
		return
	}
	ws := b.wsp.get(b)
	b.translate(ws, from, to, b.aL2L*childSide, in, b.radReg, b.radReg, out)
	b.wsp.put(ws)
}

// xlKey identifies one cached translation matrix: operator kind, box side
// (exact halvings of the root side, so float bits are a stable key) and the
// octant sign pattern of the offset.
type xlKey struct {
	kind       uint8
	sideBits   uint64
	ox, oy, oz int8
}

// xlMatrix returns the cached dense matrix for a parent/child translation,
// building it on first use, or nil when the offset is not one of the eight
// half-side octant offsets (callers then fall back to direct projection).
func (b *base) xlMatrix(kind uint8, off geom.Point, childSide float64, inRF, outRF radialFunc, a float64) []complex128 {
	h := childSide / 2
	ox, okx := signOf(off.X, h)
	oy, oky := signOf(off.Y, h)
	oz, okz := signOf(off.Z, h)
	if !okx || !oky || !okz {
		return nil
	}
	key := xlKey{kind: kind, sideBits: math.Float64bits(childSide), ox: ox, oy: oy, oz: oz}
	if v, ok := b.xl.Load(key); ok {
		return v.([]complex128)
	}
	sq := b.MLSize()
	mx := make([]complex128, sq*sq)
	ws := b.newWorkspace()
	e := make([]complex128, sq)
	col := make([]complex128, sq)
	to := geom.Point{X: float64(ox) * h, Y: float64(oy) * h, Z: float64(oz) * h}
	for j := 0; j < sq; j++ {
		e[j] = 1
		for i := range col {
			col[i] = 0
		}
		b.translate(ws, geom.Point{}, to, a, e, inRF, outRF, col)
		for i := range col {
			mx[i*sq+j] = col[i]
		}
		e[j] = 0
	}
	actual, _ := b.xl.LoadOrStore(key, mx)
	return actual.([]complex128)
}

// m2lCacheKinds start above the M2M/L2L kinds in the shared xl cache.
const m2lKind = 2

// SetM2LCache enables or disables the cached-operator M->L path (enabled
// by default). The accuracy tests toggle it to compare the cached matrices
// against pure spectral projection; it is not safe to flip concurrently
// with operator calls.
func (b *base) SetM2LCache(on bool) { b.m2lCacheOff = !on }

// m2lMatrix returns the cached dense M->L matrix for a same-level list-2
// translation, building it on first use, or nil when the offset is not on
// the well-separated interaction lattice (callers then fall back to
// projection). Keyed by exact box side bits plus the integer offset, so
// the scale-variant Yukawa kernel gets per-level operators for free.
func (b *base) m2lMatrix(from, to geom.Point, side float64) []complex128 {
	if b.m2lCacheOff {
		return nil
	}
	off, ok := b.M2LOffsetOf(from, to, side)
	if !ok {
		return nil
	}
	return b.m2lMatrixOff(off, side)
}

// M2LOffsetOf implements BatchKernel: it classifies the translation from ->
// to against the list-2 interaction lattice of boxes with the given side. An
// offset is cacheable when every component is an integer multiple of the
// side and the Chebyshev norm lies in [2, 3] — nearer pairs are not
// well-separated (the projection sphere would not enclose the targets) and
// farther ones are off the bounded list-2 key space.
func (b *base) M2LOffsetOf(from, to geom.Point, side float64) (M2LOffset, bool) {
	off := to.Sub(from)
	dx, okx := latticeCoord(off.X, side)
	dy, oky := latticeCoord(off.Y, side)
	dz, okz := latticeCoord(off.Z, side)
	if !okx || !oky || !okz {
		return M2LOffset{}, false
	}
	max := abs8(dx)
	if v := abs8(dy); v > max {
		max = v
	}
	if v := abs8(dz); v > max {
		max = v
	}
	if max < 2 || max > 3 {
		return M2LOffset{}, false
	}
	return M2LOffset{DX: dx, DY: dy, DZ: dz}, true
}

// m2lMatrixOff returns the cached dense M->L operator for one lattice
// offset, building it on first use, or nil with the cache disabled. The
// operator depends only on the offset vector (never on the absolute
// centers), which is what makes one matrix serve every edge of a batch.
func (b *base) m2lMatrixOff(off M2LOffset, side float64) []complex128 {
	if b.m2lCacheOff {
		return nil
	}
	key := xlKey{kind: m2lKind, sideBits: math.Float64bits(side), ox: off.DX, oy: off.DY, oz: off.DZ}
	if v, ok := b.xl.Load(key); ok {
		return v.([]complex128)
	}
	sq := b.MLSize()
	mx := make([]complex128, sq*sq)
	ws := b.newWorkspace()
	e := make([]complex128, sq)
	col := make([]complex128, sq)
	toP := off.Scale(side)
	for j := 0; j < sq; j++ {
		e[j] = 1
		for i := range col {
			col[i] = 0
		}
		b.translate(ws, geom.Point{}, toP, b.aM2L*side, e, b.radOut, b.radReg, col)
		for i := range col {
			mx[i*sq+j] = col[i]
		}
		e[j] = 0
	}
	actual, _ := b.xl.LoadOrStore(key, mx)
	return actual.([]complex128)
}

// latticeCoord reports whether v is (to rounding) an integer multiple of
// the box side within the interaction range, and which multiple.
func latticeCoord(v, side float64) (int8, bool) {
	d := v / side
	r := math.Round(d)
	if math.Abs(d-r) > 1e-9*math.Max(1, math.Abs(d)) || math.Abs(r) > 3 {
		return 0, false
	}
	return int8(r), true
}

func abs8(v int8) int8 {
	if v < 0 {
		return -v
	}
	return v
}

// signOf reports whether v is (to rounding) +h or -h and with which sign.
func signOf(v, h float64) (int8, bool) {
	const tol = 1e-9
	switch {
	case math.Abs(v-h) <= tol*math.Max(1, h):
		return 1, true
	case math.Abs(v+h) <= tol*math.Max(1, h):
		return -1, true
	}
	return 0, false
}

// applyMatrix accumulates out += mx * in for a dense sq x sq matrix.
func applyMatrix(mx, in, out []complex128) {
	sq := len(in)
	for i := range out {
		row := mx[i*sq : (i+1)*sq]
		var acc complex128
		for j, v := range in {
			acc += row[j] * v
		}
		out[i] += acc
	}
}

// OrderForDigits returns the truncation order p that delivers roughly the
// requested number of accurate digits for the standard list-2 separation
// ratio sqrt(3)/2 : 2 of the adaptive FMM.
func OrderForDigits(digits int) int {
	ratio := math.Sqrt(3) / 2 / 2 // worst-case r_src / r_eval for list 2
	p := int(math.Ceil(float64(digits) * math.Ln10 / -math.Log(ratio)))
	if p < 2 {
		p = 2
	}
	return p
}
