package serve

import (
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/points"
)

// Round trip at the codec level: a record survives encode -> decode exactly.
func TestStoreRecordCodecRoundTrip(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Deep enough that the multipole path runs: the operator tables are
	// built lazily by the first evaluation's M->M / M->L / L->L calls, and a
	// shallow all-near-field problem would never touch them.
	req := Request{N: 2000}
	if err := req.normalize(Config{}); err != nil {
		t.Fatal(err)
	}
	src, tgt := req.ensembles()
	plan, err := core.NewPlan(src, tgt, req.newKernel(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate once so the kernel's lazily built operator tables exist.
	if _, _, err := plan.Evaluate(req.chargeVector(), core.ExecOptions{Localities: 1, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	rec := recordFor(&req, plan)
	if len(rec.Ops) == 0 {
		t.Fatal("warmed plan exported no operator tables")
	}

	if _, err := st.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, err := readRecordFile(st.recordPath(rec.Key))
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != rec.Key {
		t.Errorf("key %q, want %q", got.Key, rec.Key)
	}
	if got.Spec.planKey() != rec.Spec.planKey() {
		t.Errorf("spec %+v, want %+v", got.Spec, rec.Spec)
	}
	if len(got.Source.Perm) != len(rec.Source.Perm) || len(got.Source.Boxes) != len(rec.Source.Boxes) {
		t.Errorf("source skeleton %d perm / %d boxes, want %d / %d",
			len(got.Source.Perm), len(got.Source.Boxes), len(rec.Source.Perm), len(rec.Source.Boxes))
	}
	if len(got.Ops) != len(rec.Ops) {
		t.Fatalf("%d operator tables, want %d", len(got.Ops), len(rec.Ops))
	}
	for i, op := range got.Ops {
		want := rec.Ops[i]
		if op.Kind != want.Kind || op.SideBits != want.SideBits ||
			op.DX != want.DX || op.DY != want.DY || op.DZ != want.DZ {
			t.Fatalf("op %d header %+v, want %+v", i, op, want)
		}
		for j := range op.Mx {
			if op.Mx[j] != want.Mx[j] {
				t.Fatalf("op %d element %d: %v, want %v", i, j, op.Mx[j], want.Mx[j])
			}
		}
	}
}

// The acceptance path: a server with a store spills its warm plan; a second
// server ("restarted") over the same directory recovers it and serves the
// previously-warm key as a cache hit with zero plan rebuilds, matching a
// direct evaluation of the same problem to 1e-12.
func TestStoreRestartServesWarmKeyWithoutRebuild(t *testing.T) {
	dir := t.TempDir()
	req := Request{N: 1500, Workers: 1, Localities: 1}

	// First life: cold build + evaluation spills the record.
	s1 := New(Config{})
	st1, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1.UseStore(st1)
	ts1 := httptest.NewServer(s1.Handler())
	code, first, _ := post(t, ts1.URL, req)
	ts1.Close()
	if code != http.StatusOK {
		t.Fatalf("first-life request: HTTP %d", code)
	}
	if first.Report.CacheHit || first.Report.StoreHit {
		t.Fatalf("first-life request should be cold: %+v", first.Report)
	}
	m1 := s1.metrics.snapshot(s1.cache.len(), nil)
	if m1.StoreWrites != 1 || m1.StoreBytes <= 0 {
		t.Fatalf("store_writes=%d store_bytes=%d after cold evaluation, want 1 write",
			m1.StoreWrites, m1.StoreBytes)
	}

	// Second life: a fresh server over the same directory.
	s2 := New(Config{})
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2.UseStore(st2)
	recovered, skipped, err := s2.RecoverFromStore()
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 1 || skipped != 0 {
		t.Fatalf("recovered %d, skipped %d, want 1 and 0", recovered, skipped)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	code, warm, _ := post(t, ts2.URL, req)
	if code != http.StatusOK {
		t.Fatalf("post-restart request: HTTP %d", code)
	}
	if !warm.Report.CacheHit || !warm.Report.StoreHit {
		t.Fatalf("post-restart request not served from the store: %+v", warm.Report)
	}
	if warm.Report.PlanBuild != 0 {
		t.Errorf("post-restart request rebuilt the plan (%v)", warm.Report.PlanBuild)
	}
	m2 := s2.metrics.snapshot(s2.cache.len(), nil)
	if m2.StoreRecovered != 1 || m2.StoreHits != 1 {
		t.Errorf("store_recovered=%d store_hits=%d, want 1 and 1", m2.StoreRecovered, m2.StoreHits)
	}
	if m2.CacheMisses != 0 || m2.PlanBuild.Count != 0 {
		t.Errorf("recovered key cost a rebuild: misses=%d builds=%d", m2.CacheMisses, m2.PlanBuild.Count)
	}
	if m2.StoreWrites != 0 {
		t.Errorf("recovered entry was re-spilled (%d writes)", m2.StoreWrites)
	}

	// Both lives match a direct core evaluation of the identical problem.
	sp := points.Generate(points.Cube, 1500, 1)
	tp := points.Generate(points.Cube, 1500, 2)
	plan, err := core.NewPlan(sp, tp, kernel.NewLaplace(kernel.OrderForDigits(3)), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := plan.Evaluate(points.Charges(1500, 3), core.ExecOptions{Localities: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Potentials) != len(want) {
		t.Fatalf("%d potentials, want %d", len(warm.Potentials), len(want))
	}
	for i := range want {
		scale := math.Max(1, math.Abs(want[i]))
		if d := math.Abs(warm.Potentials[i]-want[i]) / scale; d > 1e-12 {
			t.Fatalf("recovered potential %d off by %.2e", i, d)
		}
	}
}

// Corrupt, truncated and alien records are skipped and counted during
// recovery — never a crash, and they never block the readable records.
func TestStoreCorruptRecordsSkippedNeverFatal(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	// One good record.
	req := Request{N: 400}
	if err := req.normalize(Config{}); err != nil {
		t.Fatal(err)
	}
	src, tgt := req.ensembles()
	plan, err := core.NewPlan(src, tgt, req.newKernel(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(recordFor(&req, plan)); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(st.recordPath(req.planKey()))
	if err != nil {
		t.Fatal(err)
	}

	// Damaged neighbours, one per failure mode.
	write := func(name string, b []byte) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	truncated := append([]byte(nil), good[:len(good)/2]...)
	write("truncated.plan", truncated)
	flipped := append([]byte(nil), good...)
	flipped[storeHeaderSize+10] ^= 0xff
	write("bitflip.plan", flipped)
	badMagic := append([]byte(nil), good...)
	badMagic[0] = 'X'
	write("magic.plan", badMagic)
	badVersion := append([]byte(nil), good...)
	badVersion[4] = storeVersion + 1
	write("version.plan", badVersion)
	write("short.plan", []byte("junk"))

	s := New(Config{})
	s.UseStore(st)
	recovered, skipped, err := s.RecoverFromStore()
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 1 {
		t.Errorf("recovered %d records, want 1", recovered)
	}
	if skipped != 5 {
		t.Errorf("skipped %d records, want 5", skipped)
	}
	if got := s.metrics.StoreCorrupt.Load(); got != 5 {
		t.Errorf("store_corrupt=%d, want 5", got)
	}
	if s.cache.len() != 1 {
		t.Errorf("cache holds %d plans after recovery, want 1", s.cache.len())
	}
}

// A record whose spec no longer reproduces its key (e.g. hand-edited or from
// a different keying scheme) is skipped, not served under the wrong key.
func TestStoreKeyMismatchSkipped(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{N: 400}
	if err := req.normalize(Config{}); err != nil {
		t.Fatal(err)
	}
	src, tgt := req.ensembles()
	plan, err := core.NewPlan(src, tgt, req.newKernel(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := recordFor(&req, plan)
	rec.Key = "cube/n=999/seed=1/laplace/d=3/thr=0" // lies about the spec
	if _, err := st.Put(rec); err != nil {
		t.Fatal(err)
	}

	s := New(Config{})
	s.UseStore(st)
	recovered, skipped, err := s.RecoverFromStore()
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 0 || skipped != 1 {
		t.Errorf("recovered %d, skipped %d, want 0 and 1", recovered, skipped)
	}
}

// Inline-ensemble plans never spill: their geometry is not seed-replayable.
func TestStoreSkipsInlinePlans(t *testing.T) {
	s := New(Config{})
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.UseStore(st)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	pts := make([][3]float64, 60)
	g := points.Generate(points.Cube, 60, 7)
	for i, p := range g {
		pts[i] = [3]float64{p.X, p.Y, p.Z}
	}
	code, _, _ := post(t, ts.URL, Request{Sources: pts, Targets: pts})
	if code != http.StatusOK {
		t.Fatalf("inline request: HTTP %d", code)
	}
	if got := s.metrics.StoreWrites.Load(); got != 0 {
		t.Errorf("inline plan spilled (%d writes)", got)
	}
	recs, _, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("store holds %d records after inline request, want 0", len(recs))
	}
}
