package serve

import (
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the bucket semantics: bucket 0 holds
// everything at or below 1µs, bucket i > 0 holds (2^(i-1), 2^i]. The
// regression this guards: an exact power of two (us=4) used to land one
// bucket high ("us<=8"), doubling the reported quantile upper bound at
// boundary values.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		us     int64
		bucket int
	}{
		{0, 0},
		{1, 0},
		{2, 1},
		{3, 2},
		{4, 2}, // the off-by-one: must be "us<=4", not "us<=8"
		{5, 3},
		{7, 3},
		{8, 3},
		{9, 4},
		{16, 4},
		{17, 5},
		{1023, 10},
		{1024, 10},
		{1025, 11},
		{1 << 31, 31},
		{1 << 40, 31}, // clamped into the open-ended last bucket
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(time.Duration(c.us) * time.Microsecond)
		got := -1
		for i := 0; i < histBuckets; i++ {
			if h.buckets[i].Load() == 1 {
				if got != -1 {
					t.Fatalf("us=%d recorded in two buckets (%d and %d)", c.us, got, i)
				}
				got = i
			}
		}
		if got != c.bucket {
			t.Errorf("us=%d landed in bucket %d, want %d", c.us, got, c.bucket)
		}
	}
}

// A single observation of exactly 2^i µs must report quantiles of exactly
// 2^i, not 2^(i+1), and the snapshot's bucket label must name that bound.
func TestHistogramQuantileTightAtPowerOfTwo(t *testing.T) {
	var h Histogram
	h.Observe(4 * time.Microsecond)
	s := h.Snapshot()
	if s.P50US != 4 || s.P99US != 4 {
		t.Errorf("quantiles of a single 4µs sample: p50=%d p99=%d, want 4 and 4", s.P50US, s.P99US)
	}
	if s.MaxUS != 4 {
		t.Errorf("max bucket bound = %d, want 4", s.MaxUS)
	}
	if _, ok := s.Bucket["us<=4"]; !ok {
		t.Errorf("bucket labels = %v, want a us<=4 entry", s.Bucket)
	}
}
