package dag

import (
	"math/bits"
	"testing"

	"repro/internal/geom"
	"repro/internal/kernel"
	"repro/internal/points"
	"repro/internal/tree"
)

func buildGraph(t testing.TB, method Method, dist points.Distribution, n, threshold int) *Graph {
	t.Helper()
	sp := points.Generate(dist, n, 1)
	tp := points.Generate(dist, n, 2)
	dom := geom.BoundingCube(sp, tp)
	src := tree.Build(sp, dom, threshold)
	tgt := tree.Build(tp, dom, threshold)
	lists := tree.DualLists(tgt, src)
	k := kernel.NewLaplace(5)
	k.Prepare(dom.Side, max(src.MaxLevel, tgt.MaxLevel))
	return Build(Config{Method: method}, src, tgt, lists, k)
}

func TestGraphValidates(t *testing.T) {
	for _, m := range []Method{Advanced, Basic, BarnesHut} {
		for _, d := range []points.Distribution{points.Cube, points.Sphere} {
			g := buildGraph(t, m, d, 4000, 40)
			if err := g.Validate(); err != nil {
				t.Errorf("%v/%v: %v", m, d, err)
			}
		}
	}
}

func TestAdvancedHasPlaneWavePipeline(t *testing.T) {
	g := buildGraph(t, Advanced, points.Cube, 8000, 40)
	if g.EdgeCount[OpM2I] == 0 || g.EdgeCount[OpI2I] == 0 || g.EdgeCount[OpI2L] == 0 {
		t.Fatalf("advanced DAG missing plane-wave edges: %v", g.EdgeCount)
	}
	if g.EdgeCount[OpM2L] != 0 {
		t.Errorf("advanced DAG must not contain M->L edges, got %d", g.EdgeCount[OpM2L])
	}
	// I->I must dominate every other expansion-to-expansion operator
	// (Table II: it is the single largest contributor).
	for _, op := range []OpKind{OpS2M, OpM2M, OpM2I, OpI2L, OpL2L, OpL2T} {
		if g.EdgeCount[OpI2I] <= g.EdgeCount[op] {
			t.Errorf("I->I count %d not above %v count %d",
				g.EdgeCount[OpI2I], op, g.EdgeCount[op])
		}
	}
}

func TestBasicUsesM2L(t *testing.T) {
	g := buildGraph(t, Basic, points.Cube, 8000, 40)
	if g.EdgeCount[OpM2L] == 0 {
		t.Fatal("basic DAG has no M->L edges")
	}
	for _, op := range []OpKind{OpM2I, OpI2I, OpI2L} {
		if g.EdgeCount[op] != 0 {
			t.Errorf("basic DAG contains %v edges", op)
		}
	}
}

func TestBarnesHutShape(t *testing.T) {
	g := buildGraph(t, BarnesHut, points.Plummer, 6000, 40)
	if g.EdgeCount[OpM2T] == 0 || g.EdgeCount[OpS2T] == 0 {
		t.Fatal("Barnes-Hut DAG missing M->T or S->T edges")
	}
	for _, op := range []OpKind{OpM2L, OpM2I, OpI2I, OpI2L, OpL2L, OpL2T, OpS2L} {
		if g.EdgeCount[op] != 0 {
			t.Errorf("Barnes-Hut DAG contains %v edges", op)
		}
	}
}

func TestMergeAndShiftReducesTransfers(t *testing.T) {
	// The merge-and-shift DAG must carry far fewer I->I transfers per
	// target box than the 189 direct list-2 translations of the basic
	// method (paper: ~189 -> ~40).
	adv := buildGraph(t, Advanced, points.Cube, 30000, 60)
	bas := buildGraph(t, Basic, points.Cube, 30000, 60)
	if adv.EdgeCount[OpI2I] >= bas.EdgeCount[OpM2L] {
		t.Errorf("merge-and-shift did not reduce translations: I->I %d vs M->L %d",
			adv.EdgeCount[OpI2I], bas.EdgeCount[OpM2L])
	}
	// A meaningful reduction, not a marginal one.
	if float64(adv.EdgeCount[OpI2I]) > 0.6*float64(bas.EdgeCount[OpM2L]) {
		t.Errorf("reduction too small: I->I %d vs M->L %d",
			adv.EdgeCount[OpI2I], bas.EdgeCount[OpM2L])
	}
}

func TestNodeMasksConsistent(t *testing.T) {
	g := buildGraph(t, Advanced, points.Sphere, 6000, 40)
	for i := range g.Nodes {
		n := &g.Nodes[i]
		switch n.Kind {
		case NodeIs:
			if n.OwnMask == 0 && n.MergedMask == 0 {
				t.Errorf("Is node %d with empty masks", i)
			}
			for _, e := range n.Out {
				if e.Op != OpI2I {
					t.Errorf("Is node %d has out edge %v", i, e.Op)
					continue
				}
				if g.Nodes[e.To].Kind != NodeIt {
					continue
				}
				if e.FromMerged {
					// Transfer of merged waves: direction must be in our
					// merged mask.
					if n.MergedMask&(1<<uint(e.Dir)) == 0 {
						t.Errorf("Is node %d: merged transfer dir %d not in mask %x",
							i, e.Dir, n.MergedMask)
					}
				} else if n.OwnMask&(1<<uint(e.Dir)) == 0 {
					t.Errorf("Is node %d: transfer dir %d not in own mask %x",
						i, e.Dir, n.OwnMask)
				}
			}
		case NodeIt:
			if n.OwnMask == 0 && n.MergedMask == 0 {
				t.Errorf("It node %d with empty masks", i)
			}
			i2l, dist := 0, 0
			for _, e := range n.Out {
				switch e.Op {
				case OpI2L:
					i2l++
				case OpI2I:
					dist++
					if !e.FromMerged || e.DirMask == 0 {
						t.Errorf("It node %d: bad distribution edge", i)
					}
				default:
					t.Errorf("It node %d has out edge %v", i, e.Op)
				}
			}
			if n.OwnMask != 0 && i2l != 1 {
				t.Errorf("It node %d: %d I->L edges, want 1", i, i2l)
			}
			if n.OwnMask == 0 && i2l != 0 {
				t.Errorf("It node %d: I->L edge without own waves", i)
			}
			if n.MergedMask != 0 && dist == 0 {
				t.Errorf("It node %d: shared waves but no distribution", i)
			}
		case NodeT:
			if len(n.Out) != 0 {
				t.Errorf("T node %d has out edges", i)
			}
		case NodeS:
			if n.In != 0 {
				t.Errorf("S node %d has inputs", i)
			}
		}
	}
}

func TestCensusShape(t *testing.T) {
	g := buildGraph(t, Advanced, points.Cube, 20000, 60)
	nodes, edges := g.Census()
	byKind := map[NodeKind]NodeCensus{}
	for _, c := range nodes {
		byKind[c.Kind] = c
	}
	// All six classes of Table I must be present for cube data.
	for k := NodeKind(0); k < NumNodeKinds; k++ {
		if byKind[k].Count == 0 {
			t.Errorf("node class %v missing from census", k)
		}
	}
	// S and T counts equal the leaf counts.
	if got := byKind[NodeS].Count; got != int64(len(g.Source.Leaves)) {
		t.Errorf("S count %d != %d source leaves", got, len(g.Source.Leaves))
	}
	// Consistency between edge census and edge counters.
	for _, e := range edges {
		if e.Count != g.EdgeCount[e.Op] {
			t.Errorf("census count mismatch for %v", e.Op)
		}
	}
	// The formatted tables must include every row.
	txt := FormatNodeCensus(nodes)
	if len(txt) == 0 {
		t.Error("empty node census")
	}
	txt = FormatEdgeCensus(edges, map[OpKind]float64{OpI2I: 1.75})
	if len(txt) == 0 {
		t.Error("empty edge census")
	}
}

func TestCriticalPathProperties(t *testing.T) {
	g := buildGraph(t, Advanced, points.Cube, 8000, 40)
	crit, total := g.CriticalPath(nil)
	if crit <= 0 || total <= 0 || crit > total {
		t.Fatalf("critical=%v total=%v", crit, total)
	}
	// The up-down sweep spans at least 2*depth + the bridge.
	minDepth := float64(g.Source.MaxLevel + g.Target.MaxLevel)
	if crit < minDepth {
		t.Errorf("critical path %v shorter than tree depth bound %v", crit, minDepth)
	}
	// Sphere trees are deeper and must have a longer critical path than
	// cube trees of the same size (the paper's motivation for the two data
	// sets).
	gs := buildGraph(t, Advanced, points.Sphere, 8000, 40)
	cs, _ := gs.CriticalPath(nil)
	if cs <= crit {
		t.Errorf("sphere critical path %v not longer than cube %v", cs, crit)
	}
}

func TestTopoOrderIsTopological(t *testing.T) {
	g := buildGraph(t, Advanced, points.Sphere, 3000, 30)
	order := g.TopoOrder()
	if len(order) != len(g.Nodes) {
		t.Fatalf("topo order covers %d of %d", len(order), len(g.Nodes))
	}
	pos := make([]int, len(g.Nodes))
	for i, id := range order {
		pos[id] = i
	}
	for i := range g.Nodes {
		for _, e := range g.Nodes[i].Out {
			if pos[i] >= pos[e.To] {
				t.Fatalf("edge %d->%d violates topo order", i, e.To)
			}
		}
	}
}

func TestMergedEdgesReferenceCompleteSiblingGroups(t *testing.T) {
	g := buildGraph(t, Advanced, points.Cube, 20000, 60)
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if n.Kind != NodeIs || n.MergedMask == 0 {
			continue
		}
		// A merge parent must receive one merge edge per child.
		merges := 0
		for j := range g.Nodes {
			for _, e := range g.Nodes[j].Out {
				if e.To == n.ID && e.Op == OpI2I && e.ToMerged && g.Nodes[j].Kind == NodeIs {
					merges++
				}
			}
		}
		if merges != n.Box.NChildren {
			t.Fatalf("Is node %d: %d merge edges for %d children", i, merges, n.Box.NChildren)
		}
		break // one exhaustive scan is enough; it is O(V*E)
	}
	_ = bits.OnesCount8
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestValidateDetectsCorruption(t *testing.T) {
	g := buildGraph(t, Advanced, points.Cube, 2000, 30)
	if err := g.Validate(); err != nil {
		t.Fatalf("fresh graph invalid: %v", err)
	}
	// Corrupt an input count.
	for i := range g.Nodes {
		if g.Nodes[i].In > 0 {
			g.Nodes[i].In++
			if err := g.Validate(); err == nil {
				t.Error("Validate missed a wrong input count")
			}
			g.Nodes[i].In--
			break
		}
	}
	// Introduce a cycle: point some edge back at a node with out-edges.
	var from, to int32 = -1, -1
	for i := range g.Nodes {
		if len(g.Nodes[i].Out) > 0 && g.Nodes[i].In > 0 {
			to = int32(i)
			break
		}
	}
	for i := range g.Nodes {
		for j := range g.Nodes[i].Out {
			if g.Nodes[i].Out[j].To == to {
				from = int32(i)
				// Redirect the receiving node's first edge back to `from`,
				// forming a cycle from -> to -> ... -> from.
				_ = j
				break
			}
		}
		if from >= 0 {
			break
		}
	}
	if from >= 0 && len(g.Nodes[to].Out) > 0 {
		old := g.Nodes[to].Out[0]
		g.Nodes[to].Out[0].To = from
		g.Nodes[from].In++
		g.Nodes[old.To].In--
		if err := g.Validate(); err == nil {
			t.Error("Validate missed a cycle")
		}
	}
}

func TestRootsAreSourceBundles(t *testing.T) {
	g := buildGraph(t, Advanced, points.Cube, 3000, 40)
	for _, id := range g.Roots() {
		n := &g.Nodes[id]
		if n.In != 0 {
			t.Fatalf("root %d has inputs", id)
		}
		if n.Kind != NodeS && n.Kind != NodeT {
			t.Errorf("unexpected root kind %v", n.Kind)
		}
	}
}
