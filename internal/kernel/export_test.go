package kernel

import (
	"testing"

	"repro/internal/geom"
)

// Exported operators re-imported into a fresh kernel are adopted verbatim:
// the dense xl matrices land in the cache, and the plane-wave tables are
// installed by Prepare without rebuilding (the adopted slices share backing
// arrays with the import).
func TestOperatorExportImportRoundTrip(t *testing.T) {
	k1 := NewLaplace(6).(*base)
	k1.Prepare(1.0, 3)

	// Warm a few operators of every family.
	sq := k1.MLSize()
	in := make([]complex128, sq)
	out := make([]complex128, sq)
	k1.M2M(geom.Point{X: 0.125, Y: 0.125, Z: 0.125}, geom.Point{X: 0.25, Y: 0.25, Z: 0.25}, 0.25, in, out)
	k1.L2L(geom.Point{X: 0.25, Y: 0.25, Z: 0.25}, geom.Point{X: 0.125, Y: 0.125, Z: 0.125}, 0.25, in, out)
	k1.M2L(geom.Point{X: 0.125, Y: 0.125, Z: 0.125}, geom.Point{X: 0.625, Y: 0.125, Z: 0.125}, 0.25, in, out)
	k1.pw.matrices(geom.Direction(0), 2)
	k1.pw.matrices(geom.Direction(3), 1)

	ops := k1.ExportOperators()
	if len(ops) < 3+4 {
		t.Fatalf("exported %d tables, want >= 7 (3 dense + 2 pw pairs)", len(ops))
	}
	for i := 1; i < len(ops); i++ {
		a, b := ops[i-1], ops[i]
		if a.Kind > b.Kind || (a.Kind == b.Kind && a.SideBits > b.SideBits) {
			t.Fatalf("export order not deterministic at %d: %+v after %+v", i, b, a)
		}
	}

	k2 := NewLaplace(6).(*base)
	k2.ImportOperators(ops)
	k2.Prepare(1.0, 3)

	// Dense cache adopted.
	xlCount := 0
	k2.xl.Range(func(_, _ any) bool { xlCount++; return true })
	if xlCount != 3 {
		t.Errorf("imported xl cache holds %d matrices, want 3", xlCount)
	}
	// Plane-wave tables adopted without a rebuild: same backing arrays.
	m2i1, i2l1 := k1.pw.matrices(geom.Direction(0), 2)
	m2i2, i2l2 := k2.pw.matrices(geom.Direction(0), 2)
	if &m2i2[0] != &m2i1[0] || &i2l2[0] != &i2l1[0] {
		t.Error("plane-wave tables rebuilt instead of adopted from the import")
	}

	// A wrong-accuracy import is ignored, never adopted.
	k3 := NewLaplace(9).(*base)
	k3.ImportOperators(ops)
	k3.Prepare(1.0, 3)
	xlCount = 0
	k3.xl.Range(func(_, _ any) bool { xlCount++; return true })
	if xlCount != 0 {
		t.Errorf("wrong-accuracy import adopted %d dense matrices", xlCount)
	}
	m2i3, _ := k3.pw.matrices(geom.Direction(0), 2)
	if &m2i3[0] == &m2i1[0] {
		t.Error("wrong-accuracy plane-wave table adopted")
	}
}
