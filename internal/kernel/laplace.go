package kernel

import "math"

// NewLaplace returns the scale-invariant Laplace kernel 1/r (the potential
// of electrostatics and Newtonian gravitation) with multipole truncation
// order p. Use OrderForDigits to pick p from an accuracy requirement.
func NewLaplace(p int) Kernel {
	cn := make([]float64, p+1)
	for n := 0; n <= p; n++ {
		cn[n] = 4 * math.Pi / float64(2*n+1)
	}
	b := newBase("laplace", p,
		func(r float64, out []float64) { // R_n = r^n
			v := 1.0
			for n := 0; n <= p; n++ {
				out[n] = v
				v *= r
			}
		},
		func(r float64, out []float64) { // O_n = r^{-n-1}
			v := 1 / r
			for n := 0; n <= p; n++ {
				out[n] = v
				v /= r
			}
		},
		cn)
	b.directF = func(r float64) float64 { return 1 / r }
	b.gradF = func(r float64) float64 { return -1 / (r * r) }
	b.p2pF = laplaceP2PTile
	b.pwParams = defaultPWParams
	b.pwNodes = func(side float64) (u, mu, w []float64) {
		return laplaceNodes(b.pwParams)
	}
	b.wsp = newWSChan(b)
	return b
}
