// Package sphharm supplies the special functions underlying the multipole
// kernels: associated Legendre functions, orthonormal complex spherical
// harmonics, Gauss–Legendre quadrature, and modified spherical Bessel
// functions i_n and k_n.
//
// Spherical-harmonic convention: Y_n^m(theta, phi) =
// K_n^m P_n^{|m|}(cos theta) e^{i m phi} with
// K_n^m = sqrt((2n+1)/(4 pi) * (n-|m|)!/(n+|m|)!) and no Condon–Shortley
// phase; the basis is orthonormal on the unit sphere and satisfies the
// addition theorem sum_m Y_n^m(a) conj(Y_n^m(b)) = (2n+1)/(4 pi) P_n(cos g).
package sphharm

import (
	"math"
	"math/cmplx"
)

// Legendre fills out[n] with the Legendre polynomials P_n(x) for n = 0..p.
// out must have length at least p+1.
func Legendre(p int, x float64, out []float64) {
	out[0] = 1
	if p == 0 {
		return
	}
	out[1] = x
	for n := 2; n <= p; n++ {
		out[n] = (float64(2*n-1)*x*out[n-1] - float64(n-1)*out[n-2]) / float64(n)
	}
}

// AssocLegendre computes the associated Legendre functions P_n^m(x) without
// the Condon–Shortley phase for 0 <= m <= n <= p, storing P_n^m at
// out[TriIndex(n, m)]. out must have length at least TriSize(p).
// x must lie in [-1, 1].
func AssocLegendre(p int, x float64, out []float64) {
	somx2 := math.Sqrt((1 - x) * (1 + x)) // sin(theta), non-negative
	// Diagonal: P_m^m = (2m-1)!! (sin theta)^m  (no (-1)^m phase).
	pmm := 1.0
	out[TriIndex(0, 0)] = 1
	for m := 1; m <= p; m++ {
		pmm *= float64(2*m-1) * somx2
		out[TriIndex(m, m)] = pmm
	}
	// First superdiagonal: P_{m+1}^m = (2m+1) x P_m^m.
	for m := 0; m < p; m++ {
		out[TriIndex(m+1, m)] = float64(2*m+1) * x * out[TriIndex(m, m)]
	}
	// Upward recurrence in n for fixed m.
	for m := 0; m <= p; m++ {
		for n := m + 2; n <= p; n++ {
			out[TriIndex(n, m)] = (float64(2*n-1)*x*out[TriIndex(n-1, m)] -
				float64(n+m-1)*out[TriIndex(n-2, m)]) / float64(n-m)
		}
	}
}

// TriIndex maps (n, m) with 0 <= m <= n to a linear index into the packed
// lower-triangular layout used by AssocLegendre.
func TriIndex(n, m int) int { return n*(n+1)/2 + m }

// TriSize is the packed size needed for orders up to p inclusive.
func TriSize(p int) int { return (p + 1) * (p + 2) / 2 }

// Coef holds the orthonormalization constants K_n^m for n <= p.
type Coef struct {
	P int
	k []float64 // K_n^m at TriIndex(n, m), m >= 0
}

// NewCoef precomputes the K_n^m constants up to order p.
func NewCoef(p int) *Coef {
	c := &Coef{P: p, k: make([]float64, TriSize(p))}
	for n := 0; n <= p; n++ {
		for m := 0; m <= n; m++ {
			// K = sqrt((2n+1)/(4 pi) * (n-m)!/(n+m)!), computed as a product
			// to avoid factorial overflow.
			v := float64(2*n+1) / (4 * math.Pi)
			for k := n - m + 1; k <= n+m; k++ {
				v /= float64(k)
			}
			c.k[TriIndex(n, m)] = math.Sqrt(v)
		}
	}
	return c
}

// K returns K_n^{|m|}.
func (c *Coef) K(n, m int) float64 {
	if m < 0 {
		m = -m
	}
	return c.k[TriIndex(n, m)]
}

// Ynm evaluates the full set of orthonormal spherical harmonics
// Y_n^m(theta, phi) for 0 <= n <= p, -n <= m <= n at the direction given by
// cosTheta and phi, storing Y_n^m at out[SqIndex(n, m)]. scratch must have
// length at least TriSize(p); out at least SqSize(p).
func (c *Coef) Ynm(cosTheta, phi float64, out []complex128, scratch []float64) {
	p := c.P
	AssocLegendre(p, cosTheta, scratch)
	// e^{i m phi} for m = 0..p, built incrementally.
	eiphi := cmplx.Exp(complex(0, phi))
	em := complex(1, 0)
	for m := 0; m <= p; m++ {
		for n := m; n <= p; n++ {
			v := complex(c.k[TriIndex(n, m)]*scratch[TriIndex(n, m)], 0)
			out[SqIndex(n, m)] = v * em
			if m > 0 {
				// No Condon–Shortley phase: Y_n^{-m} = conj(Y_n^m).
				out[SqIndex(n, -m)] = cmplx.Conj(v * em)
			}
		}
		em *= eiphi
	}
}

// SqIndex maps (n, m) with -n <= m <= n to a linear index in the dense
// (p+1)^2 layout: n^2 + n + m.
func SqIndex(n, m int) int { return n*n + n + m }

// SqSize is the dense size needed for orders up to p inclusive.
func SqSize(p int) int { return (p + 1) * (p + 1) }

// GaussLegendre returns the n nodes and weights of Gauss–Legendre quadrature
// on [-1, 1], computed by Newton iteration on P_n.
func GaussLegendre(n int) (x, w []float64) {
	x = make([]float64, n)
	w = make([]float64, n)
	for i := 0; i < (n+1)/2; i++ {
		// Initial guess (Abramowitz & Stegun 25.4.29 style).
		t := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var pp float64
		for it := 0; it < 100; it++ {
			p0, p1 := 1.0, t
			for k := 2; k <= n; k++ {
				p0, p1 = p1, (float64(2*k-1)*t*p1-float64(k-1)*p0)/float64(k)
			}
			if n == 1 {
				p1 = t
				p0 = 1
			}
			pp = float64(n) * (t*p1 - p0) / (t*t - 1)
			dt := p1 / pp
			t -= dt
			if math.Abs(dt) < 1e-15 {
				break
			}
		}
		x[i] = -t
		x[n-1-i] = t
		w[i] = 2 / ((1 - t*t) * pp * pp)
		w[n-1-i] = w[i]
	}
	if n%2 == 1 && n > 1 {
		// Ensure the central node is exactly zero for symmetry.
		x[n/2] = 0
	}
	return x, w
}

// besselScratch is the stack buffer covering the Miller-recurrence scratch
// of every argument the FMM operators produce (start = p + 16 + x for the
// unscaled recurrence): the downward passes stay allocation-free on the hot
// M->L projection path, with a heap fallback for extreme arguments.
const besselScratch = 192

// BesselI fills out[n] with the modified spherical Bessel functions of the
// first kind i_n(x) = sqrt(pi/(2x)) I_{n+1/2}(x) for n = 0..p, using
// downward (Miller) recurrence normalized by i_0 = sinh(x)/x. out must have
// length at least p+1. For x = 0, i_0 = 1 and i_n = 0 for n > 0.
func BesselI(p int, x float64, out []float64) {
	if x == 0 {
		out[0] = 1
		for n := 1; n <= p; n++ {
			out[n] = 0
		}
		return
	}
	// For tiny x, use the leading series term i_n ~ x^n / (2n+1)!!.
	if x < 1e-8 {
		df, xp := 1.0, 1.0
		for n := 0; n <= p; n++ {
			out[n] = xp / df
			xp *= x
			df *= float64(2*n + 3)
		}
		return
	}
	// Miller's algorithm: run the downward recurrence
	// f_{n-1} = f_{n+1} + (2n+1)/x f_n from a start order well above p,
	// then scale so that f_0 matches sinh(x)/x.
	start := p + 16 + int(x)
	fp1, fn := 0.0, 1.0
	var buf [besselScratch]float64
	vals := buf[:]
	if start+1 > len(buf) {
		vals = make([]float64, start+1)
	} else {
		vals = vals[:start+1]
	}
	vals[start] = fn
	for n := start; n >= 1; n-- {
		fm1 := fp1 + float64(2*n+1)/x*fn
		fp1, fn = fn, fm1
		vals[n-1] = fn
		if math.Abs(fn) > 1e250 {
			// Rescale to avoid overflow.
			for k := n - 1; k <= start; k++ {
				vals[k] *= 1e-250
			}
			fn *= 1e-250
			fp1 *= 1e-250
		}
	}
	var i0 float64
	if x > 300 {
		i0 = math.Exp(x-math.Log(2*x)) * (1 - math.Exp(-2*x))
	} else {
		i0 = math.Sinh(x) / x
	}
	scale := i0 / vals[0]
	for n := 0; n <= p; n++ {
		out[n] = vals[n] * scale
	}
}

// BesselK fills out[n] with the modified spherical Bessel functions of the
// second kind k_n(x) = sqrt(pi/(2x)) K_{n+1/2}(x) for n = 0..p using the
// stable upward recurrence from k_0 = (pi/2) e^{-x}/x and
// k_1 = (pi/2) e^{-x} (1/x + 1/x^2). x must be positive.
func BesselK(p int, x float64, out []float64) {
	e := math.Exp(-x) * math.Pi / 2
	out[0] = e / x
	if p == 0 {
		return
	}
	out[1] = e * (1/x + 1/(x*x))
	for n := 2; n <= p; n++ {
		out[n] = out[n-2] + float64(2*n-1)/x*out[n-1]
	}
}

// BesselIScaled fills out[n] with e^{-x} i_n(x), which stays representable
// for large x where i_n itself overflows.
func BesselIScaled(p int, x float64, out []float64) {
	if x < 300 {
		BesselI(p, x, out)
		s := math.Exp(-x)
		for n := 0; n <= p; n++ {
			out[n] *= s
		}
		return
	}
	// Downward recurrence directly on the scaled values; the scaled i_0 is
	// (1 - e^{-2x}) / (2x).
	start := p + 16 + int(math.Sqrt(x))
	fp1, fn := 0.0, 1.0
	var buf [besselScratch]float64
	vals := buf[:]
	if start+1 > len(buf) {
		vals = make([]float64, start+1)
	} else {
		vals = vals[:start+1]
	}
	vals[start] = fn
	for n := start; n >= 1; n-- {
		fm1 := fp1 + float64(2*n+1)/x*fn
		fp1, fn = fn, fm1
		vals[n-1] = fn
		if math.Abs(fn) > 1e250 {
			for k := n - 1; k <= start; k++ {
				vals[k] *= 1e-250
			}
			fn *= 1e-250
			fp1 *= 1e-250
		}
	}
	i0 := (1 - math.Exp(-2*x)) / (2 * x)
	scale := i0 / vals[0]
	for n := 0; n <= p; n++ {
		out[n] = vals[n] * scale
	}
}
